#include <algorithm>
#include <numeric>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "distance/emd.h"
#include "distance/emd_bounds.h"
#include "distance/qi_space.h"
#include "microagg/aggregate.h"
#include "microagg/mdav.h"
#include "privacy/kanonymity.h"
#include "privacy/tcloseness.h"
#include "tclose/anonymizer.h"
#include "tclose/kanon_first.h"
#include "tclose/merge.h"
#include "tclose/tclose_first.h"

namespace tcm {
namespace {

double MaxClusterEmd(const EmdCalculator& emd, const Partition& partition) {
  double worst = 0.0;
  for (const Cluster& cluster : partition.clusters) {
    worst = std::max(worst, emd.ClusterEmd(cluster));
  }
  return worst;
}

// ------------------------------------------------- Algorithm 1 (merge)

TEST(MergeTest, AlreadyTClosePartitionIsUntouched) {
  Dataset data = MakeUniformDataset(100, 2, 3);
  QiSpace space(data);
  EmdCalculator emd(data);
  auto initial = Mdav(space, 10);
  ASSERT_TRUE(initial.ok());
  size_t before = initial->NumClusters();
  MergeStats stats;
  auto merged = MergeUntilTClose(space, emd, /*t=*/1.0, *initial, &stats);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->NumClusters(), before);
  EXPECT_EQ(stats.merges, 0u);
}

TEST(MergeTest, TZeroCollapsesToSingleCluster) {
  Dataset data = MakeUniformDataset(60, 2, 3);
  QiSpace space(data);
  EmdCalculator emd(data);
  auto initial = Mdav(space, 3);
  ASSERT_TRUE(initial.ok());
  MergeStats stats;
  auto merged = MergeUntilTClose(space, emd, 0.0, *initial, &stats);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->NumClusters(), 1u);
  EXPECT_NEAR(stats.final_max_emd, 0.0, 1e-12);
}

TEST(MergeTest, ResultAlwaysSatisfiesT) {
  Dataset data = MakeMcdDataset();
  QiSpace space(data);
  EmdCalculator emd(data);
  for (double t : {0.05, 0.1, 0.2}) {
    MergeStats stats;
    auto merged = MergeTCloseness(space, emd, 5, t, {}, &stats);
    ASSERT_TRUE(merged.ok());
    EXPECT_LE(MaxClusterEmd(emd, *merged), t + 1e-12) << "t=" << t;
    EXPECT_LE(stats.final_max_emd, t + 1e-12);
  }
}

TEST(MergeTest, PreservesKAnonymityOfInitialPartition) {
  Dataset data = MakeMcdDataset();
  QiSpace space(data);
  EmdCalculator emd(data);
  auto merged = MergeTCloseness(space, emd, 8, 0.1);
  ASSERT_TRUE(merged.ok());
  EXPECT_TRUE(ValidatePartition(*merged, data.NumRecords(), 8).ok());
}

TEST(MergeTest, TighterTNeverGivesSmallerClusters) {
  Dataset data = MakeMcdDataset();
  QiSpace space(data);
  EmdCalculator emd(data);
  double previous_avg = 0.0;
  for (double t : {0.25, 0.15, 0.05}) {
    auto merged = MergeTCloseness(space, emd, 3, t);
    ASSERT_TRUE(merged.ok());
    EXPECT_GE(merged->AverageClusterSize(), previous_avg);
    previous_avg = merged->AverageClusterSize();
  }
}

TEST(MergeTest, RejectsInvalidInputs) {
  Dataset data = MakeUniformDataset(20, 2, 3);
  QiSpace space(data);
  EmdCalculator emd(data);
  Partition bad;  // does not cover the dataset
  bad.clusters = {{0, 1}};
  EXPECT_FALSE(MergeUntilTClose(space, emd, 0.1, bad).ok());
  auto initial = Mdav(space, 2);
  ASSERT_TRUE(initial.ok());
  EXPECT_FALSE(MergeUntilTClose(space, emd, -0.5, *initial).ok());
}

// Pin for the compacted merge loop: every merge removes exactly one live
// cluster, so the cluster-count delta must equal the reported merge count
// for any t. A compaction bug that dropped or double-counted a slot would
// break this ledger before it broke a verdict.
TEST(MergeTest, MergeCountMatchesClusterCountDelta) {
  Dataset data = MakeMcdDataset();
  QiSpace space(data);
  EmdCalculator emd(data);
  auto initial = Mdav(space, 4);
  ASSERT_TRUE(initial.ok());
  for (double t : {0.02, 0.05, 0.1, 0.3}) {
    MergeStats stats;
    auto merged = MergeUntilTClose(space, emd, t, *initial, &stats);
    ASSERT_TRUE(merged.ok()) << "t=" << t;
    EXPECT_EQ(initial->NumClusters() - merged->NumClusters(), stats.merges)
        << "t=" << t;
    EXPECT_EQ(stats.candidate_checks, stats.pruned_checks + stats.exact_checks)
        << "t=" << t;
  }
}

// The hierarchical engine with bound pruning delivers the same guarantees
// as the sequential loop, whether the subtrees run on a pool or inline
// (pool == nullptr), and the partition is identical in both cases: the
// subtree layout is a function of the data, never of the executor.
TEST(MergeTest, HierarchicalMatchesSequentialGuarantees) {
  Dataset data = MakeUniformDataset(600, 2, 11);
  QiSpace space(data);
  EmdCalculator emd(data);
  auto initial = Mdav(space, 3);
  ASSERT_TRUE(initial.ok());
  const double t = 0.08;

  auto sequential = MergeUntilTClose(space, emd, t, *initial);
  ASSERT_TRUE(sequential.ok());

  MergeOptions options;
  options.strategy = MergeStrategy::kHierarchical;
  options.prune = true;
  ThreadPool pool(4);
  options.pool = &pool;
  MergeStats pooled_stats;
  auto pooled = MergeUntilTCloseWith(space, {&emd}, t, *initial, options,
                                     &pooled_stats);
  ASSERT_TRUE(pooled.ok());

  options.pool = nullptr;  // inline subtree execution
  MergeStats inline_stats;
  auto inlined = MergeUntilTCloseWith(space, {&emd}, t, *initial, options,
                                      &inline_stats);
  ASSERT_TRUE(inlined.ok());

  EXPECT_EQ(pooled->clusters, inlined->clusters);
  EXPECT_EQ(pooled_stats.merges, inline_stats.merges);
  EXPECT_EQ(pooled_stats.num_subtrees, inline_stats.num_subtrees);
  EXPECT_EQ(pooled_stats.subtree_merges + pooled_stats.tail_merges,
            pooled_stats.merges);
  EXPECT_EQ(pooled_stats.candidate_checks,
            pooled_stats.pruned_checks + pooled_stats.exact_checks);

  // Same guarantee, independently of which engine produced the partition.
  EXPECT_LE(MaxClusterEmd(emd, *sequential), t + 1e-12);
  EXPECT_LE(MaxClusterEmd(emd, *pooled), t + 1e-12);
  EXPECT_TRUE(
      ValidatePartition(*pooled, data.NumRecords(), /*min_size=*/1).ok());
}

// ------------------------------------------- Algorithm 2 (k-anon-first)

TEST(KAnonFirstTest, PartitionIsKAnonymousEvenWithoutMerge) {
  Dataset data = MakeMcdDataset();
  QiSpace space(data);
  EmdCalculator emd(data);
  for (size_t k : {2u, 5u, 15u}) {
    auto partition = KAnonFirstPartition(space, emd, k, 0.1);
    ASSERT_TRUE(partition.ok());
    EXPECT_TRUE(ValidatePartition(*partition, data.NumRecords(), k).ok())
        << "k=" << k;
  }
}

TEST(KAnonFirstTest, FullAlgorithmSatisfiesT) {
  Dataset data = MakeHcdDataset();
  QiSpace space(data);
  EmdCalculator emd(data);
  for (double t : {0.05, 0.15, 0.25}) {
    KAnonFirstStats stats;
    auto partition = KAnonFirstTCloseness(space, emd, 4, t, {}, &stats);
    ASSERT_TRUE(partition.ok());
    EXPECT_LE(MaxClusterEmd(emd, *partition), t + 1e-12) << "t=" << t;
  }
}

TEST(KAnonFirstTest, SwapsReduceClusterEmd) {
  // With swaps enabled, clusters need fewer/smaller merges than without:
  // the refined partition's max EMD must not be worse.
  Dataset data = MakeMcdDataset();
  QiSpace space(data);
  EmdCalculator emd(data);
  KAnonFirstOptions with_swaps;
  KAnonFirstOptions without_swaps;
  without_swaps.enable_swaps = false;
  auto refined = KAnonFirstPartition(space, emd, 5, 0.08, with_swaps);
  auto plain = KAnonFirstPartition(space, emd, 5, 0.08, without_swaps);
  ASSERT_TRUE(refined.ok() && plain.ok());
  EXPECT_LE(MaxClusterEmd(emd, *refined), MaxClusterEmd(emd, *plain) + 1e-12);
}

TEST(KAnonFirstTest, StatsCountSwaps) {
  Dataset data = MakeMcdDataset();
  QiSpace space(data);
  EmdCalculator emd(data);
  KAnonFirstStats stats;
  auto partition = KAnonFirstPartition(space, emd, 5, 0.02, {}, &stats);
  ASSERT_TRUE(partition.ok());
  EXPECT_GT(stats.swap_candidates, 0u);
  EXPECT_GT(stats.swaps, 0u);
  EXPECT_GE(stats.swap_candidates, stats.swaps);
}

TEST(KAnonFirstTest, LooseTRequiresNoSwaps) {
  Dataset data = MakeUniformDataset(100, 2, 5);
  QiSpace space(data);
  EmdCalculator emd(data);
  KAnonFirstStats stats;
  auto partition = KAnonFirstPartition(space, emd, 2, 1.0, {}, &stats);
  ASSERT_TRUE(partition.ok());
  EXPECT_EQ(stats.swaps, 0u);
}

TEST(KAnonFirstTest, RejectsInvalidArguments) {
  Dataset data = MakeUniformDataset(20, 2, 3);
  QiSpace space(data);
  EmdCalculator emd(data);
  EXPECT_FALSE(KAnonFirstPartition(space, emd, 0, 0.1).ok());
  EXPECT_FALSE(KAnonFirstPartition(space, emd, 21, 0.1).ok());
  EXPECT_FALSE(KAnonFirstPartition(space, emd, 2, -0.1).ok());
}

// ----------------------------------------- Algorithm 3 (t-close-first)

TEST(TCloseFirstTest, EffectiveKMatchesAnalyticFormula) {
  Dataset data = MakeMcdDataset();
  QiSpace space(data);
  EmdCalculator emd(data);
  const size_t n = data.NumRecords();
  for (double t : {0.01, 0.05, 0.13, 0.25}) {
    TCloseFirstStats stats;
    auto partition = TCloseFirstTCloseness(space, emd, 2, t, &stats);
    ASSERT_TRUE(partition.ok());
    size_t expected =
        AdjustClusterSizeForRemainder(n, RequiredClusterSize(n, 2, t));
    EXPECT_EQ(stats.effective_k, expected) << "t=" << t;
    EXPECT_EQ(partition->MinClusterSize(), expected);
  }
}

TEST(TCloseFirstTest, PerfectlyBalancedWhenKStarDividesN) {
  // Paper Table 3: minimum == average for (almost) every cell because
  // 1080 is divisible by the k* values the grid produces.
  Dataset data = MakeHcdDataset();
  QiSpace space(data);
  EmdCalculator emd(data);
  for (size_t k : {2u, 5u, 10u, 15u, 20u}) {
    for (double t : {0.05, 0.13, 0.25}) {
      auto partition = TCloseFirstTCloseness(space, emd, k, t);
      ASSERT_TRUE(partition.ok());
      EXPECT_EQ(partition->MinClusterSize(), partition->MaxClusterSize())
          << "k=" << k << " t=" << t;
    }
  }
}

TEST(TCloseFirstTest, SatisfiesTByConstructionWhenDivisible) {
  Dataset data = MakeMcdDataset();
  QiSpace space(data);
  EmdCalculator emd(data);
  for (double t : {0.05, 0.09, 0.13, 0.17, 0.25}) {
    auto partition = TCloseFirstTCloseness(space, emd, 2, t);
    ASSERT_TRUE(partition.ok());
    EXPECT_LE(MaxClusterEmd(emd, *partition), t + 1e-12) << "t=" << t;
  }
}

TEST(TCloseFirstTest, NonDivisibleNStillMeetsT) {
  // n = 997 (prime): every k* leaves leftovers, exercising the Eq. (4)
  // path and the central-subset extras.
  Dataset data = MakeUniformDataset(997, 2, 23);
  QiSpace space(data);
  EmdCalculator emd(data);
  for (double t : {0.02, 0.05, 0.11, 0.2}) {
    auto partition = TCloseFirstTCloseness(space, emd, 3, t);
    ASSERT_TRUE(partition.ok());
    EXPECT_TRUE(ValidatePartition(*partition, 997, 3).ok());
    // With extras the Prop. 2 bound is approximate (paper Sec. 7 uses it
    // anyway); allow the one-extra-record slack.
    EXPECT_LE(MaxClusterEmd(emd, *partition), t * 1.25 + 1e-9) << "t=" << t;
  }
}

TEST(TCloseFirstTest, ClusterSizesAreKStarOrKStarPlusOne) {
  Dataset data = MakeUniformDataset(997, 2, 29);
  QiSpace space(data);
  EmdCalculator emd(data);
  TCloseFirstStats stats;
  auto partition = TCloseFirstTCloseness(space, emd, 4, 0.06, &stats);
  ASSERT_TRUE(partition.ok());
  for (const Cluster& cluster : partition->clusters) {
    EXPECT_GE(cluster.size(), stats.effective_k);
    EXPECT_LE(cluster.size(), stats.effective_k + 1);
  }
}

TEST(TCloseFirstTest, TZeroCollapsesToOneCluster) {
  Dataset data = MakeUniformDataset(50, 2, 31);
  QiSpace space(data);
  EmdCalculator emd(data);
  auto partition = TCloseFirstTCloseness(space, emd, 2, 0.0);
  ASSERT_TRUE(partition.ok());
  EXPECT_EQ(partition->NumClusters(), 1u);
}

TEST(TCloseFirstTest, EachClusterDrawsAcrossTheConfidentialRange) {
  // One record per subset means every cluster spans the confidential
  // distribution: its rank spread must cover most of [0, n).
  Dataset data = MakeMcdDataset();
  QiSpace space(data);
  EmdCalculator emd(data);
  auto partition = TCloseFirstTCloseness(space, emd, 10, 0.05);
  ASSERT_TRUE(partition.ok());
  const size_t n = data.NumRecords();
  for (const Cluster& cluster : partition->clusters) {
    uint32_t lo = n, hi = 0;
    for (size_t row : cluster) {
      lo = std::min(lo, emd.RankOf(row));
      hi = std::max(hi, emd.RankOf(row));
    }
    // First member within the first subset, last within the last.
    EXPECT_LT(lo, n / 10 + 1);
    EXPECT_GE(hi, n - n / 10 - 1);
  }
}

TEST(TCloseFirstTest, SubsetDrawPartitionHonorsExplicitBucketCount) {
  Dataset data = MakeUniformDataset(120, 2, 37);
  QiSpace space(data);
  EmdCalculator emd(data);
  auto partition = SubsetDrawPartition(space, emd, 8);
  ASSERT_TRUE(partition.ok());
  EXPECT_EQ(partition->MinClusterSize(), 8u);
  EXPECT_EQ(partition->NumClusters(), 15u);
}

TEST(TCloseFirstTest, RejectsInvalidArguments) {
  Dataset data = MakeUniformDataset(20, 2, 3);
  QiSpace space(data);
  EmdCalculator emd(data);
  EXPECT_FALSE(TCloseFirstTCloseness(space, emd, 0, 0.1).ok());
  EXPECT_FALSE(TCloseFirstTCloseness(space, emd, 21, 0.1).ok());
  EXPECT_FALSE(TCloseFirstTCloseness(space, emd, 2, -1.0).ok());
  EXPECT_FALSE(SubsetDrawPartition(space, emd, 0).ok());
}

// -------------------------------------------------- Cross-algorithm sweep

struct SweepParam {
  size_t k;
  double t;
  bool highly_correlated;
};

class AlgorithmSweepTest : public ::testing::TestWithParam<SweepParam> {
 protected:
  static Dataset MakeData(bool highly_correlated) {
    CensusLikeOptions options;
    options.num_records = 540;  // divisible by the tested k values
    return highly_correlated ? MakeHcdDataset(options)
                             : MakeMcdDataset(options);
  }
};

TEST_P(AlgorithmSweepTest, AllThreeAlgorithmsMeetBothGuarantees) {
  const SweepParam& param = GetParam();
  Dataset data = MakeData(param.highly_correlated);
  for (TCloseAlgorithm algorithm :
       {TCloseAlgorithm::kMicroaggregationMerge,
        TCloseAlgorithm::kKAnonymityFirst,
        TCloseAlgorithm::kTClosenessFirst}) {
    AnonymizerOptions options;
    options.k = param.k;
    options.t = param.t;
    options.algorithm = algorithm;
    auto result = Anonymize(data, options);
    ASSERT_TRUE(result.ok()) << TCloseAlgorithmName(algorithm);

    // The partition is a valid k-anonymous cover.
    EXPECT_TRUE(
        ValidatePartition(result->partition, data.NumRecords(), param.k).ok())
        << TCloseAlgorithmName(algorithm);

    // The released data set verifies independently.
    auto k_anon = IsKAnonymous(result->anonymized, param.k);
    ASSERT_TRUE(k_anon.ok());
    EXPECT_TRUE(*k_anon) << TCloseAlgorithmName(algorithm);
    auto t_close = IsTClose(result->anonymized, param.t);
    ASSERT_TRUE(t_close.ok());
    EXPECT_TRUE(*t_close) << TCloseAlgorithmName(algorithm)
                          << " k=" << param.k << " t=" << param.t;

    // Report fields are consistent.
    EXPECT_EQ(result->min_cluster_size,
              result->partition.MinClusterSize());
    EXPECT_LE(result->max_cluster_emd, param.t + 1e-9);
    EXPECT_GE(result->normalized_sse, 0.0);
    EXPECT_LE(result->normalized_sse, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AlgorithmSweepTest,
    ::testing::Values(SweepParam{2, 0.05, false}, SweepParam{2, 0.05, true},
                      SweepParam{2, 0.15, false}, SweepParam{2, 0.15, true},
                      SweepParam{5, 0.1, false}, SweepParam{5, 0.1, true},
                      SweepParam{10, 0.2, false}, SweepParam{10, 0.2, true},
                      SweepParam{20, 0.25, false},
                      SweepParam{20, 0.25, true}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return "k" + std::to_string(info.param.k) + "_t" +
             std::to_string(static_cast<int>(info.param.t * 100)) +
             (info.param.highly_correlated ? "_hcd" : "_mcd");
    });

// ------------------------------------------------------------ Anonymizer

TEST(AnonymizerTest, RejectsInvalidConfigurations) {
  Dataset data = MakeUniformDataset(20, 2, 3);
  AnonymizerOptions options;
  options.k = 0;
  EXPECT_FALSE(Anonymize(data, options).ok());
  options.k = 21;
  EXPECT_FALSE(Anonymize(data, options).ok());
  options.k = 2;
  options.t = -0.1;
  EXPECT_FALSE(Anonymize(data, options).ok());
  options.t = 0.1;
  options.confidential_offset = 5;
  EXPECT_FALSE(Anonymize(data, options).ok());
}

TEST(AnonymizerTest, RejectsDatasetsWithoutRoles) {
  auto no_conf = DatasetFromColumns(
      {"a", "b"}, {{1, 2, 3}, {4, 5, 6}},
      {AttributeRole::kQuasiIdentifier, AttributeRole::kOther});
  ASSERT_TRUE(no_conf.ok());
  EXPECT_FALSE(Anonymize(*no_conf, {}).ok());
  auto no_qi = DatasetFromColumns(
      {"a", "b"}, {{1, 2, 3}, {4, 5, 6}},
      {AttributeRole::kOther, AttributeRole::kConfidential});
  ASSERT_TRUE(no_qi.ok());
  EXPECT_FALSE(Anonymize(*no_qi, {}).ok());
}

TEST(AnonymizerTest, ConfidentialColumnIsNeverPerturbed) {
  Dataset data = MakeMcdDataset();
  AnonymizerOptions options;
  options.k = 5;
  options.t = 0.1;
  for (TCloseAlgorithm algorithm :
       {TCloseAlgorithm::kMicroaggregationMerge,
        TCloseAlgorithm::kKAnonymityFirst,
        TCloseAlgorithm::kTClosenessFirst}) {
    options.algorithm = algorithm;
    auto result = Anonymize(data, options);
    ASSERT_TRUE(result.ok());
    size_t conf = data.schema().ConfidentialIndices()[0];
    EXPECT_EQ(result->anonymized.ColumnAsDouble(conf),
              data.ColumnAsDouble(conf))
        << TCloseAlgorithmName(algorithm);
  }
}

TEST(AnonymizerTest, SecondConfidentialAttributeSelectable) {
  // Census-like data with both FEDTAX and FICA confidential; offset picks.
  Dataset data = MakeCensusLike();
  auto schema = data.schema().WithRole("FEDTAX", AttributeRole::kConfidential);
  ASSERT_TRUE(schema.ok());
  auto schema2 = schema->WithRole("FICA", AttributeRole::kConfidential);
  ASSERT_TRUE(schema2.ok());
  ASSERT_TRUE(data.ReplaceSchema(std::move(schema2).value()).ok());

  AnonymizerOptions options;
  options.k = 4;
  options.t = 0.1;
  options.confidential_offset = 1;  // FICA
  auto result = Anonymize(data, options);
  ASSERT_TRUE(result.ok());
  auto report = EvaluateTCloseness(result->anonymized, 1);
  ASSERT_TRUE(report.ok());
  EXPECT_LE(report->max_emd, 0.1 + 1e-9);
}

TEST(AnonymizerTest, AlgorithmNamesAreStable) {
  EXPECT_STREQ(TCloseAlgorithmName(TCloseAlgorithm::kMicroaggregationMerge),
               "microaggregation+merge");
  EXPECT_STREQ(TCloseAlgorithmName(TCloseAlgorithm::kKAnonymityFirst),
               "k-anonymity-first");
  EXPECT_STREQ(TCloseAlgorithmName(TCloseAlgorithm::kTClosenessFirst),
               "t-closeness-first");
}

TEST(AnonymizerTest, Paper_TClosenessFirstHasBestUtilityAtSmallT) {
  // Fig. 6's headline: the earlier t-closeness enters cluster formation,
  // the better the utility. At k=2 and strict t the ordering is
  // SSE(Alg3) <= SSE(Alg2) and SSE(Alg3) <= SSE(Alg1).
  Dataset data = MakeMcdDataset();
  AnonymizerOptions options;
  options.k = 2;
  options.t = 0.05;
  options.algorithm = TCloseAlgorithm::kMicroaggregationMerge;
  auto alg1 = Anonymize(data, options);
  options.algorithm = TCloseAlgorithm::kKAnonymityFirst;
  auto alg2 = Anonymize(data, options);
  options.algorithm = TCloseAlgorithm::kTClosenessFirst;
  auto alg3 = Anonymize(data, options);
  ASSERT_TRUE(alg1.ok() && alg2.ok() && alg3.ok());
  EXPECT_LE(alg3->normalized_sse, alg2->normalized_sse);
  EXPECT_LE(alg3->normalized_sse, alg1->normalized_sse);
}

TEST(AnonymizerTest, Paper_Table3SizesIndependentOfCorrelation) {
  // Table 3: Algorithm 3's cluster sizes are identical for MCD and HCD.
  AnonymizerOptions options;
  options.algorithm = TCloseAlgorithm::kTClosenessFirst;
  for (double t : {0.05, 0.13, 0.25}) {
    options.k = 2;
    options.t = t;
    auto mcd = Anonymize(MakeMcdDataset(), options);
    auto hcd = Anonymize(MakeHcdDataset(), options);
    ASSERT_TRUE(mcd.ok() && hcd.ok());
    EXPECT_EQ(mcd->min_cluster_size, hcd->min_cluster_size);
    EXPECT_EQ(mcd->max_cluster_size, hcd->max_cluster_size);
  }
}

}  // namespace
}  // namespace tcm
