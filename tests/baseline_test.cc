#include <vector>

#include <gtest/gtest.h>

#include "baseline/mondrian.h"
#include "baseline/recoding.h"
#include "baseline/sabre_like.h"
#include "data/generator.h"
#include "distance/emd.h"
#include "distance/emd_bounds.h"
#include "distance/qi_space.h"
#include "microagg/aggregate.h"
#include "microagg/mdav.h"
#include "privacy/kanonymity.h"
#include "privacy/tcloseness.h"
#include "tclose/anonymizer.h"
#include "utility/sse.h"

namespace tcm {
namespace {

double MaxClusterEmd(const EmdCalculator& emd, const Partition& partition) {
  double worst = 0.0;
  for (const Cluster& cluster : partition.clusters) {
    worst = std::max(worst, emd.ClusterEmd(cluster));
  }
  return worst;
}

// ---------------------------------------------------------------- Mondrian

class MondrianTest : public ::testing::TestWithParam<size_t> {};

TEST_P(MondrianTest, ValidKAnonymousPartition) {
  const size_t k = GetParam();
  Dataset data = MakeUniformDataset(500, 3, 41);
  QiSpace space(data);
  auto partition = MondrianPartition(space, k);
  ASSERT_TRUE(partition.ok());
  EXPECT_TRUE(ValidatePartition(*partition, 500, k).ok());
  // Median splits leave leaves below 2k + 1 records.
  EXPECT_LE(partition->MaxClusterSize(), 2 * k + 1);
}

INSTANTIATE_TEST_SUITE_P(Ks, MondrianTest, ::testing::Values(2, 3, 7, 25));

TEST(MondrianTest, SplitsAlongTheWidestDimension) {
  // Data elongated along q1: the first split must separate low from high
  // q1, so no leaf spans both extremes.
  std::vector<double> q1, q2, c;
  for (int i = 0; i < 40; ++i) {
    q1.push_back(i < 20 ? i : 1000.0 + i);
    q2.push_back(i % 5);
    c.push_back(i);
  }
  auto data = DatasetFromColumns(
      {"q1", "q2", "c"}, {q1, q2, c},
      {AttributeRole::kQuasiIdentifier, AttributeRole::kQuasiIdentifier,
       AttributeRole::kConfidential});
  ASSERT_TRUE(data.ok());
  QiSpace space(*data);
  auto partition = MondrianPartition(space, 5);
  ASSERT_TRUE(partition.ok());
  for (const Cluster& cluster : partition->clusters) {
    bool has_low = false, has_high = false;
    for (size_t row : cluster) {
      (row < 20 ? has_low : has_high) = true;
    }
    EXPECT_FALSE(has_low && has_high);
  }
}

TEST(MondrianTest, IdenticalRecordsFormOneLeaf) {
  auto data = DatasetFromColumns(
      {"q", "c"}, {{1, 1, 1, 1, 1, 1}, {1, 2, 3, 4, 5, 6}},
      {AttributeRole::kQuasiIdentifier, AttributeRole::kConfidential});
  ASSERT_TRUE(data.ok());
  QiSpace space(*data);
  auto partition = MondrianPartition(space, 2);
  ASSERT_TRUE(partition.ok());
  EXPECT_EQ(partition->NumClusters(), 1u);
}

TEST(MondrianTest, TCloseVariantSatisfiesT) {
  Dataset data = MakeMcdDataset();
  QiSpace space(data);
  EmdCalculator emd(data);
  for (double t : {0.05, 0.15}) {
    auto partition = MondrianTClosePartition(space, emd, 3, t);
    ASSERT_TRUE(partition.ok());
    EXPECT_TRUE(ValidatePartition(*partition, data.NumRecords(), 3).ok());
    EXPECT_LE(MaxClusterEmd(emd, *partition), t + 1e-12) << "t=" << t;
  }
}

TEST(MondrianTest, TighterTMeansFewerClusters) {
  Dataset data = MakeMcdDataset();
  QiSpace space(data);
  EmdCalculator emd(data);
  auto loose = MondrianTClosePartition(space, emd, 2, 0.25);
  auto strict = MondrianTClosePartition(space, emd, 2, 0.02);
  ASSERT_TRUE(loose.ok() && strict.ok());
  EXPECT_GE(loose->NumClusters(), strict->NumClusters());
}

TEST(MondrianTest, RejectsBadK) {
  Dataset data = MakeUniformDataset(10, 2, 1);
  QiSpace space(data);
  EXPECT_FALSE(MondrianPartition(space, 0).ok());
  EXPECT_FALSE(MondrianPartition(space, 11).ok());
}

// -------------------------------------------------------------- SABRE-like

TEST(SabreLikeTest, SatisfiesBothGuarantees) {
  Dataset data = MakeMcdDataset();
  QiSpace space(data);
  EmdCalculator emd(data);
  for (double t : {0.05, 0.1, 0.2}) {
    SabreLikeStats stats;
    auto partition = SabreLikePartition(space, emd, 2, t, {}, &stats);
    ASSERT_TRUE(partition.ok());
    EXPECT_TRUE(ValidatePartition(*partition, data.NumRecords(), 2).ok());
    EXPECT_LE(MaxClusterEmd(emd, *partition), t + 1e-12) << "t=" << t;
  }
}

TEST(SabreLikeTest, GreedyBucketingUsesMoreBucketsThanAnalytic) {
  Dataset data = MakeMcdDataset();
  QiSpace space(data);
  EmdCalculator emd(data);
  SabreLikeStats stats;
  auto partition = SabreLikePartition(space, emd, 2, 0.05, {}, &stats);
  ASSERT_TRUE(partition.ok());
  EXPECT_GT(stats.buckets, stats.analytic_k);
}

TEST(SabreLikeTest, MoreBucketsMeansMoreInformationLossThanAlgorithm3) {
  // The comparison the paper makes against SABRE: a larger bucket count
  // forces larger equivalence classes and hence higher SSE.
  Dataset data = MakeMcdDataset();
  QiSpace space(data);
  EmdCalculator emd(data);
  AnonymizerOptions options;
  options.k = 2;
  options.t = 0.05;
  options.algorithm = TCloseAlgorithm::kTClosenessFirst;
  auto alg3 = Anonymize(data, options);
  ASSERT_TRUE(alg3.ok());

  auto sabre = SabreLikePartition(space, emd, 2, 0.05);
  ASSERT_TRUE(sabre.ok());
  auto sabre_release = AggregatePartition(data, *sabre);
  ASSERT_TRUE(sabre_release.ok());
  auto sabre_sse = NormalizedSse(data, *sabre_release);
  ASSERT_TRUE(sabre_sse.ok());
  EXPECT_GE(*sabre_sse, alg3->normalized_sse);
}

TEST(SabreLikeTest, OversamplingOneMatchesAnalyticBuckets) {
  Dataset data = MakeMcdDataset();
  QiSpace space(data);
  EmdCalculator emd(data);
  SabreLikeOptions options;
  options.bucket_oversampling = 1.0;
  SabreLikeStats stats;
  auto partition = SabreLikePartition(space, emd, 2, 0.05, options, &stats);
  ASSERT_TRUE(partition.ok());
  EXPECT_EQ(stats.buckets,
            AdjustClusterSizeForRemainder(data.NumRecords(),
                                          stats.analytic_k));
}

TEST(SabreLikeTest, RejectsBadArguments) {
  Dataset data = MakeUniformDataset(20, 2, 1);
  QiSpace space(data);
  EmdCalculator emd(data);
  EXPECT_FALSE(SabreLikePartition(space, emd, 0, 0.1).ok());
  EXPECT_FALSE(SabreLikePartition(space, emd, 21, 0.1).ok());
  EXPECT_FALSE(SabreLikePartition(space, emd, 2, -0.1).ok());
  SabreLikeOptions options;
  options.bucket_oversampling = 0.5;
  EXPECT_FALSE(SabreLikePartition(space, emd, 2, 0.1, options).ok());
}

// ---------------------------------------------------------------- Recoding

TEST(RecodingTest, ProducesKAnonymousRelease) {
  Dataset data = MakeMcdDataset();
  auto result = GlobalRecodingAnonymize(data, 4);
  ASSERT_TRUE(result.ok());
  auto k_anon = IsKAnonymous(result->anonymized, 4);
  ASSERT_TRUE(k_anon.ok());
  EXPECT_TRUE(*k_anon);
}

TEST(RecodingTest, TConstraintIsHonored) {
  Dataset data = MakeMcdDataset();
  RecodingOptions options;
  options.t = 0.1;
  auto result = GlobalRecodingAnonymize(data, 2, options);
  ASSERT_TRUE(result.ok());
  auto t_close = IsTClose(result->anonymized, 0.1);
  ASSERT_TRUE(t_close.ok());
  EXPECT_TRUE(*t_close);
}

TEST(RecodingTest, CoarseningReducesBinCounts) {
  Dataset data = MakeMcdDataset();
  RecodingOptions options;
  options.initial_bins = 64;
  auto result = GlobalRecodingAnonymize(data, 10, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->coarsenings, 0u);
  for (size_t bins : result->bins_per_attribute) {
    EXPECT_LT(bins, 64u);
  }
}

TEST(RecodingTest, GranularityLossExceedsMicroaggregation) {
  // Section 4's argument: generalization loses more granularity than
  // microaggregation for the same k. Compare SSE at equal k (no t).
  Dataset data = MakeMcdDataset();
  auto recoded = GlobalRecodingAnonymize(data, 5);
  ASSERT_TRUE(recoded.ok());
  auto recoding_sse = NormalizedSse(data, recoded->anonymized);
  ASSERT_TRUE(recoding_sse.ok());

  QiSpace space(data);
  auto mdav = Mdav(space, 5);
  ASSERT_TRUE(mdav.ok());
  auto microagg_release = AggregatePartition(data, *mdav);
  ASSERT_TRUE(microagg_release.ok());
  auto microagg_sse = NormalizedSse(data, *microagg_release);
  ASSERT_TRUE(microagg_sse.ok());

  EXPECT_GT(*recoding_sse, *microagg_sse);
}

TEST(RecodingTest, RejectsBadArguments) {
  Dataset data = MakeUniformDataset(10, 2, 1);
  EXPECT_FALSE(GlobalRecodingAnonymize(data, 0).ok());
  EXPECT_FALSE(GlobalRecodingAnonymize(data, 11).ok());
  RecodingOptions options;
  options.initial_bins = 0;
  EXPECT_FALSE(GlobalRecodingAnonymize(data, 2, options).ok());
}

TEST(RecodingTest, SingleBinIsAlwaysFeasible) {
  // k = n forces full generalization; must terminate with one class.
  Dataset data = MakeUniformDataset(30, 2, 3);
  auto result = GlobalRecodingAnonymize(data, 30);
  ASSERT_TRUE(result.ok());
  auto report = EvaluateKAnonymity(result->anonymized);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->num_equivalence_classes, 1u);
}

}  // namespace
}  // namespace tcm
