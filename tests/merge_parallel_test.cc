// Property wall for the hierarchical parallel merge engine: every
// registry algorithm, at several thread counts, under both merge
// strategies, must deliver the SAME privacy verdicts as the sequential
// legacy loop — and each strategy must be deterministic (byte-identical
// releases) no matter how many threads execute it. The merge engine's
// bound-pruning ledger is also pinned: every candidate merge is either
// pruned by a closed-form EMD bound or evaluated exactly, never dropped.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/csv.h"
#include "data/generator.h"
#include "engine/registry.h"
#include "engine/sharded.h"
#include "engine/thread_pool.h"
#include "privacy/kanonymity.h"
#include "privacy/tcloseness.h"
#include "tclose/merge.h"

namespace tcm {
namespace {

// The eight concrete registry algorithms (aliases excluded: they resolve
// to the same functions and would only duplicate runs).
const char* const kAlgorithms[] = {
    "merge",       "merge_vmdav", "merge_projection", "merge_chunked",
    "kanon_first", "tclose_first", "mondrian",         "sabre",
};

constexpr size_t kRows = 1200;
constexpr size_t kK = 5;
constexpr double kT = 0.12;

struct RunOutcome {
  std::string release_csv;
  ShardedAnonymizeStats stats;
};

RunOutcome RunWith(const Dataset& data, const std::string& algorithm,
                   MergeStrategy strategy, size_t threads) {
  ShardedAnonymizeOptions options;
  options.algorithm = algorithm;
  options.params.k = kK;
  options.params.t = kT;
  options.params.seed = 77;
  options.shard_size = 150;
  options.merge_strategy = strategy;
  ThreadPool pool(threads);
  ShardedAnonymizeStats stats;
  auto result = ShardedAnonymize(data, options, &pool, &stats);
  EXPECT_TRUE(result.ok()) << algorithm << "/"
                           << MergeStrategyName(strategy) << "@" << threads
                           << " threads: " << result.status().ToString();
  RunOutcome outcome;
  outcome.stats = stats;
  if (result.ok()) {
    outcome.release_csv = WriteCsvString(result->anonymized);
    // Both guarantees hold for every algorithm x strategy x threads cell.
    auto k_anonymous = IsKAnonymous(result->anonymized, kK);
    auto t_close = IsTClose(result->anonymized, kT);
    EXPECT_TRUE(k_anonymous.ok() && t_close.ok())
        << k_anonymous.status().ToString() << " / "
        << t_close.status().ToString();
    if (!k_anonymous.ok() || !t_close.ok()) return outcome;
    EXPECT_TRUE(*k_anonymous)
        << algorithm << "/" << MergeStrategyName(strategy)
        << " lost k-anonymity";
    EXPECT_TRUE(*t_close) << algorithm << "/" << MergeStrategyName(strategy)
                          << " lost t-closeness";
  }
  return outcome;
}

void CheckStatsLedger(const ShardedAnonymizeStats& stats,
                      MergeStrategy strategy, const std::string& label) {
  // Every candidate merge was either pruned by a bound or computed
  // exactly — the pruning fast path never silently drops work.
  EXPECT_EQ(stats.candidate_checks,
            stats.pruned_checks + stats.exact_checks)
      << label;
  // Subtree and tail merges partition the total merge count.
  EXPECT_EQ(stats.subtree_merges + stats.tail_merges, stats.final_merges)
      << label;
  if (strategy == MergeStrategy::kSequential) {
    EXPECT_EQ(stats.merge_subtrees, 0u) << label;
    EXPECT_EQ(stats.subtree_merges, 0u) << label;
    EXPECT_EQ(stats.pruned_checks, 0u) << label;
  }
}

class MergeStrategyMatrixTest
    : public ::testing::TestWithParam<const char*> {};

// The core property grid: for one algorithm, both strategies at 1/4/8
// threads produce k-anonymous + t-close releases; each strategy's bytes
// are identical across thread counts (scheduling never leaks into the
// release); and the merge ledger balances in every cell.
TEST_P(MergeStrategyMatrixTest, VerdictsHoldAndThreadsDoNotChangeBytes) {
  const std::string algorithm = GetParam();
  Dataset data = MakeUniformDataset(kRows, 3, 404);

  for (MergeStrategy strategy :
       {MergeStrategy::kSequential, MergeStrategy::kHierarchical}) {
    std::string reference;
    for (size_t threads : {size_t{1}, size_t{4}, size_t{8}}) {
      const std::string label = algorithm + "/" +
                                MergeStrategyName(strategy) + "@" +
                                std::to_string(threads);
      RunOutcome outcome = RunWith(data, algorithm, strategy, threads);
      CheckStatsLedger(outcome.stats, strategy, label);
      if (reference.empty()) {
        reference = outcome.release_csv;
      } else {
        EXPECT_EQ(outcome.release_csv, reference)
            << label << ": release bytes depend on thread count";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, MergeStrategyMatrixTest,
                         ::testing::ValuesIn(kAlgorithms));

// Repeated identical runs are bitwise-stable (no hidden global state in
// either engine), pinned on the algorithm with the busiest repair pass.
TEST(MergeStrategyDeterminismTest, RepeatedRunsAreByteIdentical) {
  Dataset data = MakeUniformDataset(kRows, 3, 404);
  for (MergeStrategy strategy :
       {MergeStrategy::kSequential, MergeStrategy::kHierarchical}) {
    RunOutcome first = RunWith(data, "merge_projection", strategy, 4);
    RunOutcome second = RunWith(data, "merge_projection", strategy, 4);
    EXPECT_EQ(first.release_csv, second.release_csv)
        << MergeStrategyName(strategy);
    EXPECT_EQ(first.stats.final_merges, second.stats.final_merges);
    EXPECT_EQ(first.stats.candidate_checks, second.stats.candidate_checks);
    EXPECT_EQ(first.stats.pruned_checks, second.stats.pruned_checks);
  }
}

// The hierarchical engine actually fans out on a repair-heavy workload:
// multiple subtrees run (their merges counted separately from the tail)
// and the EMD lower/upper bounds prune some exact evaluations. Guards
// the tentpole from silently degrading into the sequential path.
TEST(MergeStrategyDeterminismTest, HierarchicalFansOutAndPrunes) {
  Dataset data = MakeUniformDataset(2000, 3, 505);
  ShardedAnonymizeOptions options;
  options.algorithm = "merge_projection";
  options.params.k = kK;
  options.params.t = 0.1;
  options.params.seed = 99;
  options.shard_size = 250;
  options.merge_strategy = MergeStrategy::kHierarchical;
  ThreadPool pool(4);
  ShardedAnonymizeStats stats;
  auto result = ShardedAnonymize(data, options, &pool, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(stats.merge_subtrees, 1u);
  EXPECT_GT(stats.pruned_checks, 0u);
  EXPECT_EQ(stats.candidate_checks,
            stats.pruned_checks + stats.exact_checks);
  EXPECT_EQ(stats.subtree_merges + stats.tail_merges, stats.final_merges);
  auto t_close = IsTClose(result->anonymized, 0.1);
  ASSERT_TRUE(t_close.ok());
  EXPECT_TRUE(*t_close);
}

}  // namespace
}  // namespace tcm
