// Tests for the paper's "research directions" implementations: nominal
// (categorical) t-closeness, (n,t)-closeness, and the interval-disclosure
// risk measure.

#include <map>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generator.h"
#include "distance/qi_space.h"
#include "microagg/aggregate.h"
#include "microagg/mdav.h"
#include "privacy/interval_disclosure.h"
#include "privacy/ntcloseness.h"
#include "tclose/anonymizer.h"
#include "tclose/nominal.h"

namespace tcm {
namespace {

// Records with 2 numeric QIs and a nominal confidential code attribute.
struct NominalFixture {
  Dataset data;
  std::vector<int32_t> categories;
};

NominalFixture MakeNominalData(size_t n, size_t num_categories,
                               uint64_t seed) {
  Rng rng(seed);
  std::vector<double> q1(n), q2(n), conf(n);
  std::vector<int32_t> categories(n);
  for (size_t i = 0; i < n; ++i) {
    q1[i] = rng.NextDouble() * 100;
    q2[i] = rng.NextDouble() * 10;
    // Category weakly follows q1 so QI-local clusters are skewed (the
    // hard case for nominal t-closeness).
    size_t bucket = static_cast<size_t>(q1[i] / (100.0 / num_categories));
    if (rng.NextDouble() < 0.3) bucket = rng.NextBounded(num_categories);
    categories[i] =
        static_cast<int32_t>(std::min(bucket, num_categories - 1));
    conf[i] = categories[i];
  }
  auto data = DatasetFromColumns(
      {"q1", "q2", "conf"}, {q1, q2, conf},
      {AttributeRole::kQuasiIdentifier, AttributeRole::kQuasiIdentifier,
       AttributeRole::kConfidential});
  return {std::move(data).value(), std::move(categories)};
}

// ----------------------------------------------------- Nominal t-closeness

TEST(NominalTCloseTest, TotalVariationHelperKnownValues) {
  std::vector<int32_t> categories = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(ClusterTotalVariation(categories, {0, 2}), 0.0);
  EXPECT_DOUBLE_EQ(ClusterTotalVariation(categories, {0, 1}), 0.5);
  EXPECT_DOUBLE_EQ(ClusterTotalVariation(categories, {0}), 0.5);
}

TEST(NominalTCloseTest, RejectsBadArguments) {
  NominalFixture fixture = MakeNominalData(40, 3, 1);
  QiSpace space(fixture.data);
  EXPECT_FALSE(
      NominalTCloseFirstPartition(space, fixture.categories, 0, 0.2).ok());
  EXPECT_FALSE(
      NominalTCloseFirstPartition(space, fixture.categories, 41, 0.2).ok());
  EXPECT_FALSE(
      NominalTCloseFirstPartition(space, fixture.categories, 2, 0.0).ok());
  std::vector<int32_t> wrong_size = {1, 2};
  EXPECT_FALSE(NominalTCloseFirstPartition(space, wrong_size, 2, 0.2).ok());
}

class NominalSweepTest
    : public ::testing::TestWithParam<std::tuple<size_t, double>> {};

TEST_P(NominalSweepTest, EveryClusterWithinTotalVariationT) {
  auto [num_categories, t] = GetParam();
  NominalFixture fixture = MakeNominalData(600, num_categories, 7);
  QiSpace space(fixture.data);
  NominalTCloseStats stats;
  auto partition = NominalTCloseFirstPartition(space, fixture.categories, 3,
                                               t, &stats);
  ASSERT_TRUE(partition.ok());
  EXPECT_TRUE(ValidatePartition(*partition, 600, 3).ok());
  EXPECT_EQ(stats.num_categories, num_categories);
  for (const Cluster& cluster : partition->clusters) {
    EXPECT_LE(ClusterTotalVariation(fixture.categories, cluster), t + 1e-9)
        << "categories=" << num_categories << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, NominalSweepTest,
    ::testing::Combine(::testing::Values(2, 3, 5, 8),
                       ::testing::Values(0.05, 0.1, 0.2, 0.4)));

TEST(NominalTCloseTest, EffectiveKGrowsWithCategoriesAndShrinkingT) {
  NominalFixture fixture = MakeNominalData(600, 6, 9);
  QiSpace space(fixture.data);
  NominalTCloseStats strict, loose;
  ASSERT_TRUE(NominalTCloseFirstPartition(space, fixture.categories, 2, 0.05,
                                          &strict)
                  .ok());
  ASSERT_TRUE(NominalTCloseFirstPartition(space, fixture.categories, 2, 0.4,
                                          &loose)
                  .ok());
  EXPECT_GT(strict.effective_k, loose.effective_k);
  EXPECT_GE(strict.effective_k, 6u / 2u);
}

TEST(NominalTCloseTest, TinyTCollapsesToOneCluster) {
  NominalFixture fixture = MakeNominalData(50, 4, 11);
  QiSpace space(fixture.data);
  auto partition =
      NominalTCloseFirstPartition(space, fixture.categories, 2, 1e-6);
  ASSERT_TRUE(partition.ok());
  EXPECT_EQ(partition->NumClusters(), 1u);
}

// ---------------------------------------------------------- (n,t)-closeness

TEST(NTClosenessTest, WholeDatasetSupersetReducesToTCloseness) {
  Dataset data = MakeMcdDataset();
  AnonymizerOptions options;
  options.k = 5;
  options.t = 0.1;
  auto result = Anonymize(data, options);
  ASSERT_TRUE(result.ok());
  auto nt = EvaluateNTCloseness(result->anonymized, data.NumRecords());
  ASSERT_TRUE(nt.ok());
  EXPECT_LE(nt->max_emd, 0.1 + 1e-6);
}

TEST(NTClosenessTest, LargeClassesSatisfyTrivially) {
  // Classes >= n are their own natural supersets: EMD 0.
  Dataset data = MakeMcdDataset();
  AnonymizerOptions options;
  options.k = 30;
  options.t = 0.25;
  auto result = Anonymize(data, options);
  ASSERT_TRUE(result.ok());
  auto nt = EvaluateNTCloseness(result->anonymized, /*min_superset_size=*/20);
  ASSERT_TRUE(nt.ok());
  EXPECT_DOUBLE_EQ(nt->max_emd, 0.0);
}

TEST(NTClosenessTest, RelaxationIsMonotoneInN) {
  // Smaller supersets are more local, so the distance to them can only be
  // smaller or equal than to the whole data set (QI-local populations
  // resemble QI-local classes).
  Dataset data = MakeHcdDataset();
  QiSpace space(data);
  auto partition = Mdav(space, 4);
  ASSERT_TRUE(partition.ok());
  auto release = AggregatePartition(data, *partition);
  ASSERT_TRUE(release.ok());
  auto local = EvaluateNTCloseness(*release, 100);
  auto global = EvaluateNTCloseness(*release, data.NumRecords());
  ASSERT_TRUE(local.ok() && global.ok());
  EXPECT_LE(local->mean_emd, global->mean_emd + 1e-9);
}

TEST(NTClosenessTest, IsNTCloseThresholds) {
  Dataset data = MakeMcdDataset();
  QiSpace space(data);
  auto partition = Mdav(space, 3);
  ASSERT_TRUE(partition.ok());
  auto release = AggregatePartition(data, *partition);
  ASSERT_TRUE(release.ok());
  EXPECT_TRUE(IsNTClose(*release, 50, 1.0).value());
  auto report = EvaluateNTCloseness(*release, 50);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(IsNTClose(*release, 50, report->max_emd / 2).value());
}

TEST(NTClosenessTest, RequiresConfidentialAttribute) {
  auto data = DatasetFromColumns(
      {"qi", "x"}, {{1, 2}, {3, 4}},
      {AttributeRole::kQuasiIdentifier, AttributeRole::kOther});
  ASSERT_TRUE(data.ok());
  EXPECT_FALSE(EvaluateNTCloseness(*data, 2).ok());
}

// ------------------------------------------------------ Interval disclosure

TEST(IntervalDisclosureTest, IdentityReleaseFullyDisclosive) {
  Dataset data = MakeUniformDataset(100, 2, 21);
  auto report = EvaluateIntervalDisclosure(data, data, 0.01);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->disclosure_rate, 1.0);
  EXPECT_EQ(report->cells, 200u);
}

TEST(IntervalDisclosureTest, AggregationReducesDisclosure) {
  Dataset data = MakeUniformDataset(300, 2, 23);
  QiSpace space(data);
  double previous = 1.1;
  for (size_t k : {3u, 30u, 150u}) {
    auto partition = Mdav(space, k);
    ASSERT_TRUE(partition.ok());
    auto release = AggregatePartition(data, *partition);
    ASSERT_TRUE(release.ok());
    auto report = EvaluateIntervalDisclosure(data, *release, 0.02);
    ASSERT_TRUE(report.ok());
    EXPECT_LT(report->disclosure_rate, previous) << "k=" << k;
    previous = report->disclosure_rate;
  }
}

TEST(IntervalDisclosureTest, WiderWindowMeansMoreDisclosure) {
  Dataset data = MakeUniformDataset(200, 2, 25);
  QiSpace space(data);
  auto partition = Mdav(space, 10);
  ASSERT_TRUE(partition.ok());
  auto release = AggregatePartition(data, *partition);
  ASSERT_TRUE(release.ok());
  auto narrow = EvaluateIntervalDisclosure(data, *release, 0.01);
  auto wide = EvaluateIntervalDisclosure(data, *release, 0.2);
  ASSERT_TRUE(narrow.ok() && wide.ok());
  EXPECT_LE(narrow->disclosure_rate, wide->disclosure_rate);
}

TEST(IntervalDisclosureTest, RejectsBadWindow) {
  Dataset data = MakeUniformDataset(10, 2, 1);
  EXPECT_FALSE(EvaluateIntervalDisclosure(data, data, 0.0).ok());
  EXPECT_FALSE(EvaluateIntervalDisclosure(data, data, 1.5).ok());
}

}  // namespace
}  // namespace tcm
