// Metamorphic property tests: transformations of the input that must not
// change (or must change in a precisely known way) the algorithms'
// output. These catch a class of bugs example-based tests cannot —
// accidental dependence on scales, offsets or value magnitudes.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "data/generator.h"
#include "distance/emd.h"
#include "distance/emd_bounds.h"
#include "distance/qi_space.h"
#include "microagg/mdav.h"
#include "tclose/anonymizer.h"
#include "tclose/report_io.h"

namespace tcm {
namespace {

// Applies an affine map to one column of a dataset.
Dataset WithAffineColumn(const Dataset& data, size_t col, double scale,
                         double shift) {
  Dataset out = data;
  for (size_t row = 0; row < data.NumRecords(); ++row) {
    double value = data.cell(row, col).numeric();
    EXPECT_TRUE(
        out.SetCell(row, col, Value::Numeric(value * scale + shift)).ok());
  }
  return out;
}

// Applies a strictly monotone nonlinear map to one column.
Dataset WithMonotoneColumn(const Dataset& data, size_t col) {
  Dataset out = data;
  for (size_t row = 0; row < data.NumRecords(); ++row) {
    double value = data.cell(row, col).numeric();
    EXPECT_TRUE(out.SetCell(row, col,
                            Value::Numeric(std::exp(value * 1e-5) * 1000.0))
                    .ok());
  }
  return out;
}

// ------------------------------------------------------------- EMD ranks

TEST(MetamorphicTest, EmdInvariantUnderMonotoneConfidentialMap) {
  // The ordered EMD depends only on ranks, so ANY strictly monotone map
  // of the confidential attribute leaves every cluster EMD unchanged.
  Dataset data = MakeMcdDataset();
  size_t conf = data.schema().ConfidentialIndices()[0];
  Dataset mapped = WithMonotoneColumn(data, conf);
  EmdCalculator original(data);
  EmdCalculator transformed(mapped);
  Rng rng(5);
  std::vector<size_t> all(data.NumRecords());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<size_t> cluster = all;
    rng.Shuffle(cluster);
    cluster.resize(1 + rng.NextBounded(50));
    EXPECT_NEAR(original.ClusterEmd(cluster),
                transformed.ClusterEmd(cluster), 1e-12);
  }
}

// ------------------------------------------------------------ QI scaling

TEST(MetamorphicTest, MdavInvariantUnderPerAttributeAffineQiMaps) {
  // Range normalization makes the QI geometry invariant to affine maps
  // of individual attributes (positive scale), so MDAV partitions are
  // identical.
  Dataset data = MakeUniformDataset(200, 3, 101);
  std::vector<size_t> qi = data.schema().QuasiIdentifierIndices();
  Dataset scaled = WithAffineColumn(data, qi[0], 1000.0, -47.0);
  scaled = WithAffineColumn(scaled, qi[1], 0.001, 12345.0);
  QiSpace original_space(data);
  QiSpace scaled_space(scaled);
  auto original = Mdav(original_space, 5);
  auto transformed = Mdav(scaled_space, 5);
  ASSERT_TRUE(original.ok() && transformed.ok());
  EXPECT_EQ(original->clusters, transformed->clusters);
}

TEST(MetamorphicTest, FullPipelineInvariantUnderJointScaling) {
  // Affine QI maps + monotone confidential map: the partitions of all
  // three algorithms are unchanged (SSE is scale-normalized too, but the
  // released values differ, so only the partition is compared).
  Dataset data = MakeMcdDataset();
  std::vector<size_t> qi = data.schema().QuasiIdentifierIndices();
  size_t conf = data.schema().ConfidentialIndices()[0];
  Dataset transformed = WithAffineColumn(data, qi[0], 3.5, 100.0);
  transformed = WithAffineColumn(transformed, qi[1], 0.25, -3.0);
  transformed = WithMonotoneColumn(transformed, conf);

  for (TCloseAlgorithm algorithm :
       {TCloseAlgorithm::kMicroaggregationMerge,
        TCloseAlgorithm::kKAnonymityFirst,
        TCloseAlgorithm::kTClosenessFirst}) {
    AnonymizerOptions options;
    options.k = 4;
    options.t = 0.1;
    options.algorithm = algorithm;
    auto original = Anonymize(data, options);
    auto mapped = Anonymize(transformed, options);
    ASSERT_TRUE(original.ok() && mapped.ok());
    EXPECT_EQ(original->partition.clusters, mapped->partition.clusters)
        << TCloseAlgorithmName(algorithm);
    EXPECT_NEAR(original->max_cluster_emd, mapped->max_cluster_emd, 1e-9);
    EXPECT_NEAR(original->normalized_sse, mapped->normalized_sse, 1e-6)
        << TCloseAlgorithmName(algorithm);
  }
}

TEST(MetamorphicTest, DuplicatingEveryRecordHalvesRequiredT) {
  // With every record duplicated, each original cluster pattern can be
  // realized at twice the size; the Eq. 3 cluster size for a given t is
  // (asymptotically) unchanged in *relative* terms. Sanity-check the
  // direction: k*(2n, t) <= 2 k*(n, t).
  const size_t n = 540;
  for (double t : {0.02, 0.05, 0.1}) {
    size_t small = RequiredClusterSize(n, 2, t);
    size_t large = RequiredClusterSize(2 * n, 2, t);
    EXPECT_LE(large, 2 * small);
    EXPECT_GE(large, small);
  }
}

// ----------------------------------------------------------- Serialization

TEST(ReportIoTest, JsonContainsEveryField) {
  Dataset data = MakeMcdDataset();
  AnonymizerOptions options;
  options.k = 5;
  options.t = 0.1;
  auto result = Anonymize(data, options);
  ASSERT_TRUE(result.ok());
  std::string json = ReportToJson(*result, options);
  for (const char* key :
       {"\"algorithm\"", "\"k\":5", "\"t\":0.1", "\"clusters\"",
        "\"min_cluster_size\"", "\"max_cluster_emd\"", "\"normalized_sse\"",
        "\"cluster_size_histogram\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // Balanced braces (cheap well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(ReportIoTest, PartitionTsvRoundTrip) {
  Dataset data = MakeUniformDataset(120, 2, 103);
  QiSpace space(data);
  auto partition = Mdav(space, 7);
  ASSERT_TRUE(partition.ok());
  std::string tsv = PartitionToTsv(*partition);
  auto parsed = PartitionFromTsv(tsv, 120);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->clusters, partition->clusters);
}

TEST(ReportIoTest, PartitionTsvRejectsGarbage) {
  EXPECT_FALSE(PartitionFromTsv("not\tnumbers\n", 2).ok());
  EXPECT_FALSE(PartitionFromTsv("0\n", 1).ok());          // one field
  EXPECT_FALSE(PartitionFromTsv("0\t0\n0\t0\n", 1).ok()); // double cover
  EXPECT_FALSE(PartitionFromTsv("0\t0\n", 2).ok());       // missing record
  EXPECT_TRUE(PartitionFromTsv("0\t0\n0\t1\n", 2).ok());
}

TEST(ReportIoTest, EmptyLinesTolerated) {
  auto parsed = PartitionFromTsv("0\t0\n\n0\t1\n  \n", 2);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->NumClusters(), 1u);
}

}  // namespace
}  // namespace tcm
