// Integration wall for the HTTP/1.1 front of tcm_serve (serve/http.h):
// every suite boots a REAL JobServer with the HTTP listener enabled and
// speaks raw HTTP over a real TCP socket — no client library, so the
// bytes on the wire are exactly what is asserted. Load-bearing
// properties pinned here: the five routes map 1:1 onto the NDJSON
// verbs and answer with the same event objects, the taxonomy-to-status
// mapping of HttpStatusForCode, bearer auth (with the /healthz
// exemption), keep-alive/pipelining, and the hardening bounds — head
// and body limits, the slowloris request deadline, the idle reap and
// the shared connection cap.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/http.h"
#include "tcm/api.h"

namespace tcm {
namespace {

using std::chrono::steady_clock;

bool WaitUntil(const std::function<bool()>& predicate,
               int timeout_ms = 20000) {
  const auto deadline =
      steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return predicate();
}

JobSpec UniformSpec(uint64_t seed, size_t rows) {
  JobSpec spec;
  spec.input.kind = InputKind::kSynthetic;
  spec.input.generator = "uniform";
  spec.input.rows = rows;
  spec.input.quasi_identifiers = 2;
  spec.input.seed = seed;
  spec.algorithm.name = "tclose_first";
  spec.algorithm.k = 5;
  spec.algorithm.t = 0.3;
  spec.algorithm.seed = seed;
  spec.execution.shard_size = 64;
  return spec;
}

// ----- a raw HTTP/1.1 client: a socket and nothing else -------------------

class RawClient {
 public:
  RawClient() = default;
  explicit RawClient(uint16_t port) { Connect(port); }
  ~RawClient() { Close(); }
  RawClient(const RawClient&) = delete;
  RawClient& operator=(const RawClient&) = delete;

  void Connect(uint16_t port) {
    Close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd_, 0);
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(port);
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr), 1);
    ASSERT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&address),
                        sizeof(address)),
              0)
        << std::strerror(errno);
  }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  bool connected() const { return fd_ >= 0; }

  void Send(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                         MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      ASSERT_GT(n, 0) << std::strerror(errno);
      sent += static_cast<size_t>(n);
    }
  }

  // Reads one full response (head + Content-Length body) off the
  // buffered stream. Empty string at end of stream.
  std::string ReadResponse() {
    size_t head_end;
    while ((head_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
      if (!Fill()) return "";
    }
    const std::string head = buffer_.substr(0, head_end + 4);
    size_t body_size = 0;
    size_t marker = head.find("Content-Length: ");
    if (marker != std::string::npos) {
      body_size = static_cast<size_t>(
          std::strtoul(head.c_str() + marker + 16, nullptr, 10));
    }
    while (buffer_.size() < head_end + 4 + body_size) {
      if (!Fill()) return "";
    }
    std::string response = buffer_.substr(0, head_end + 4 + body_size);
    buffer_.erase(0, head_end + 4 + body_size);
    return response;
  }

  // True when the server closed the stream (no further bytes).
  bool AtEof() {
    if (!buffer_.empty()) return false;
    return !Fill();
  }

 private:
  bool Fill() {
    char chunk[4096];
    ssize_t n;
    do {
      n = ::recv(fd_, chunk, sizeof(chunk), 0);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<size_t>(n));
    return true;
  }

  int fd_ = -1;
  std::string buffer_;
};

int StatusOf(const std::string& response) {
  // "HTTP/1.1 NNN ..." — the three digits after the first space.
  if (response.size() < 12) return 0;
  return std::atoi(response.c_str() + 9);
}

JsonValue BodyOf(const std::string& response) {
  size_t head_end = response.find("\r\n\r\n");
  EXPECT_NE(head_end, std::string::npos) << response;
  auto parsed = ParseJson(response.substr(head_end + 4));
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << response;
  return parsed.ok() ? std::move(parsed).value() : JsonValue();
}

std::string EventName(const JsonValue& event) {
  const JsonValue* name = event.Find("event");
  return (name != nullptr && name->is_string()) ? name->string_value() : "";
}

std::string EventState(const JsonValue& event) {
  const JsonValue* state = event.Find("state");
  return (state != nullptr && state->is_string()) ? state->string_value()
                                                  : "";
}

std::string EventCode(const JsonValue& event) {
  const JsonValue* code = event.Find("code");
  return (code != nullptr && code->is_string()) ? code->string_value() : "";
}

uint64_t EventJob(const JsonValue& event) {
  const JsonValue* job = event.Find("job");
  return (job != nullptr && job->is_number()) ? job->GetUint().value_or(0)
                                              : 0;
}

std::string Request(const std::string& method, const std::string& target,
                    const std::string& body = "",
                    const std::string& extra_headers = "") {
  std::string out = method + " " + target + " HTTP/1.1\r\n";
  out += "Host: 127.0.0.1\r\n";
  if (!body.empty() || method == "POST") {
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  out += extra_headers;
  out += "\r\n";
  out += body;
  return out;
}

// Boots a server with the HTTP front on and returns it started.
ServeOptions HttpOptions() {
  ServeOptions options;
  options.threads = 2;
  options.enable_http = true;
  return options;
}

// ----- the wall -----------------------------------------------------------

// The documented taxonomy-to-status mapping, pinned code by code. The
// README table is linted against HttpStatusForCode; this test is the
// third leg that keeps function, docs and expectations agreeing.
TEST(HttpMappingTest, StatusForEveryTaxonomyCode) {
  EXPECT_EQ(HttpStatusForCode(StatusCode::kOk), 200);
  EXPECT_EQ(HttpStatusForCode(StatusCode::kInvalidArgument), 400);
  EXPECT_EQ(HttpStatusForCode(StatusCode::kNotFound), 404);
  EXPECT_EQ(HttpStatusForCode(StatusCode::kFailedPrecondition), 409);
  EXPECT_EQ(HttpStatusForCode(StatusCode::kOutOfRange), 400);
  EXPECT_EQ(HttpStatusForCode(StatusCode::kInternal), 500);
  EXPECT_EQ(HttpStatusForCode(StatusCode::kIoError), 500);
  EXPECT_EQ(HttpStatusForCode(StatusCode::kUnimplemented), 501);
  EXPECT_EQ(HttpStatusForCode(StatusCode::kInvalidSpec), 422);
  EXPECT_EQ(HttpStatusForCode(StatusCode::kUnknownAlgorithm), 422);
  EXPECT_EQ(HttpStatusForCode(StatusCode::kPrivacyViolation), 500);
}

TEST(HttpRoutesTest, HealthzAnswersPong) {
  JobServer server(HttpOptions());
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.http_port(), 0);
  EXPECT_NE(server.http_port(), server.port());

  RawClient client(server.http_port());
  client.Send(Request("GET", "/healthz"));
  std::string response = client.ReadResponse();
  EXPECT_EQ(StatusOf(response), 200) << response;
  JsonValue body = BodyOf(response);
  EXPECT_EQ(EventName(body), "pong");
  EXPECT_EQ(body.Find("protocol")->GetUint().value(),
            static_cast<uint64_t>(kServeProtocolVersion));
}

TEST(HttpRoutesTest, MetricszAnswersStatsEvent) {
  JobServer server(HttpOptions());
  ASSERT_TRUE(server.Start().ok());
  RawClient client(server.http_port());
  client.Send(Request("GET", "/metricsz"));
  std::string response = client.ReadResponse();
  EXPECT_EQ(StatusOf(response), 200) << response;
  JsonValue body = BodyOf(response);
  EXPECT_EQ(EventName(body), "stats");
  EXPECT_EQ(body.Find("stats_schema")->GetUint().value(),
            static_cast<uint64_t>(kStatsSchemaVersion));
  ASSERT_NE(body.Find("jobs"), nullptr);
  ASSERT_NE(body.Find("metrics"), nullptr);
  for (const char* family : {"counters", "gauges", "histograms"}) {
    EXPECT_NE(body.Find("metrics")->Find(family), nullptr) << family;
  }
}

// Submit / poll / cancel through the routes, sharing one job namespace
// with the NDJSON front: a job submitted over HTTP is visible to an
// NDJSON status query and vice versa.
TEST(HttpRoutesTest, SubmitPollCancelAndCrossProtocolVisibility) {
  JobServer server(HttpOptions());
  ASSERT_TRUE(server.Start().ok());
  RawClient client(server.http_port());

  client.Send(
      Request("POST", "/jobs", UniformSpec(/*seed=*/21, /*rows=*/200)
                                   .ToJson()
                                   .Write(-1)));
  std::string response = client.ReadResponse();
  EXPECT_EQ(StatusOf(response), 202) << response;
  JsonValue accepted = BodyOf(response);
  EXPECT_EQ(EventName(accepted), "accepted");
  const uint64_t job = EventJob(accepted);
  ASSERT_GT(job, 0u);

  ASSERT_TRUE(WaitUntil([&]() {
    client.Send(Request("GET", "/jobs/" + std::to_string(job)));
    return EventState(BodyOf(client.ReadResponse())) == "succeeded";
  }));

  // The same job over the NDJSON front: one namespace, same record.
  auto ndjson = ServeClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(ndjson.ok()) << ndjson.status().ToString();
  ServeRequest status_request;
  status_request.verb = ServeVerb::kStatus;
  status_request.job = job;
  ASSERT_TRUE(ndjson->Send(status_request).ok());
  auto event = ndjson->ReadEvent();
  ASSERT_TRUE(event.ok());
  EXPECT_EQ(EventState(*event), "succeeded") << event->Write(2);

  // DELETE on a finished job is the cancel no-op: 200 with the
  // unchanged terminal state, exactly like the verb.
  client.Send(Request("DELETE", "/jobs/" + std::to_string(job)));
  response = client.ReadResponse();
  EXPECT_EQ(StatusOf(response), 200) << response;
  EXPECT_EQ(EventState(BodyOf(response)), "succeeded");
}

TEST(HttpRoutesTest, WaitedSubmitReturnsTerminalStateWithReport) {
  JobServer server(HttpOptions());
  ASSERT_TRUE(server.Start().ok());
  RawClient client(server.http_port());
  client.Send(
      Request("POST", "/jobs?wait=1", UniformSpec(/*seed=*/22, /*rows=*/300)
                                          .ToJson()
                                          .Write(-1)));
  std::string response = client.ReadResponse();
  EXPECT_EQ(StatusOf(response), 200) << response;
  JsonValue body = BodyOf(response);
  EXPECT_EQ(EventName(body), "state");
  EXPECT_EQ(EventState(body), "succeeded");
  const JsonValue* report = body.Find("report");
  ASSERT_NE(report, nullptr);
  EXPECT_EQ(report->Find("rows")->GetUint().value(), 300u);
}

// Error taxonomy over HTTP: the same codes as the NDJSON front, carried
// in the error event's "code" with the mapped response status.
TEST(HttpRoutesTest, ErrorsCarryTaxonomyCodeAndMappedStatus) {
  JobServer server(HttpOptions());
  ASSERT_TRUE(server.Start().ok());
  RawClient client(server.http_port());

  // kInvalidSpec (422): k = 0.
  client.Send(Request("POST", "/jobs",
                      R"({"version":1,"input":{"kind":"synthetic"},)"
                      R"("algorithm":{"k":0}})"));
  std::string response = client.ReadResponse();
  EXPECT_EQ(StatusOf(response), 422) << response;
  EXPECT_EQ(EventCode(BodyOf(response)), "InvalidSpec");

  // kUnknownAlgorithm (422).
  client.Send(Request("POST", "/jobs",
                      R"({"version":1,"input":{"kind":"synthetic"},)"
                      R"("algorithm":{"name":"bogus"}})"));
  response = client.ReadResponse();
  EXPECT_EQ(StatusOf(response), 422) << response;
  EXPECT_EQ(EventCode(BodyOf(response)), "UnknownAlgorithm");

  // Malformed JSON body: kInvalidArgument (400).
  client.Send(Request("POST", "/jobs", "{this is not json"));
  response = client.ReadResponse();
  EXPECT_EQ(StatusOf(response), 400) << response;
  EXPECT_EQ(EventCode(BodyOf(response)), "InvalidArgument");

  // Unknown job id: kNotFound (404).
  client.Send(Request("GET", "/jobs/999"));
  response = client.ReadResponse();
  EXPECT_EQ(StatusOf(response), 404) << response;
  EXPECT_EQ(EventCode(BodyOf(response)), "NotFound");

  // Malformed job id (400) and unknown route (404).
  client.Send(Request("GET", "/jobs/banana"));
  EXPECT_EQ(StatusOf(client.ReadResponse()), 400);
  client.Send(Request("GET", "/nope"));
  response = client.ReadResponse();
  EXPECT_EQ(StatusOf(response), 404) << response;
  EXPECT_EQ(EventCode(BodyOf(response)), "NotFound");
}

TEST(HttpRoutesTest, MethodNotAllowedNamesTheAllowedSet) {
  JobServer server(HttpOptions());
  ASSERT_TRUE(server.Start().ok());
  RawClient client(server.http_port());

  client.Send(Request("DELETE", "/healthz"));
  std::string response = client.ReadResponse();
  EXPECT_EQ(StatusOf(response), 405) << response;
  EXPECT_NE(response.find("Allow: GET\r\n"), std::string::npos) << response;

  client.Send(Request("GET", "/jobs", "", ""));
  response = client.ReadResponse();
  EXPECT_EQ(StatusOf(response), 405) << response;
  EXPECT_NE(response.find("Allow: POST\r\n"), std::string::npos)
      << response;

  client.Send(Request("POST", "/jobs/3", "{}"));
  response = client.ReadResponse();
  EXPECT_EQ(StatusOf(response), 405) << response;
  EXPECT_NE(response.find("Allow: GET, DELETE\r\n"), std::string::npos)
      << response;
}

// One connection, many requests: keep-alive is the default on 1.1, a
// pipelined pair is answered in order, and "Connection: close" ends the
// stream after the response.
TEST(HttpConnectionTest, KeepAlivePipeliningAndClose) {
  JobServer server(HttpOptions());
  ASSERT_TRUE(server.Start().ok());
  RawClient client(server.http_port());

  // Two requests written back to back before any response is read.
  client.Send(Request("GET", "/healthz") + Request("GET", "/metricsz"));
  std::string first = client.ReadResponse();
  std::string second = client.ReadResponse();
  EXPECT_EQ(StatusOf(first), 200);
  EXPECT_EQ(EventName(BodyOf(first)), "pong");
  EXPECT_EQ(StatusOf(second), 200);
  EXPECT_EQ(EventName(BodyOf(second)), "stats");

  client.Send(Request("GET", "/healthz", "", "Connection: close\r\n"));
  std::string last = client.ReadResponse();
  EXPECT_EQ(StatusOf(last), 200);
  EXPECT_NE(last.find("Connection: close\r\n"), std::string::npos) << last;
  EXPECT_TRUE(client.AtEof());
}

TEST(HttpConnectionTest, Http10ClosesAfterTheResponse) {
  JobServer server(HttpOptions());
  ASSERT_TRUE(server.Start().ok());
  RawClient client(server.http_port());
  client.Send("GET /healthz HTTP/1.0\r\n\r\n");
  std::string response = client.ReadResponse();
  EXPECT_EQ(StatusOf(response), 200) << response;
  EXPECT_NE(response.find("Connection: close\r\n"), std::string::npos);
  EXPECT_TRUE(client.AtEof());
}

TEST(HttpConnectionTest, Expect100ContinueGetsTheInterimResponse) {
  JobServer server(HttpOptions());
  ASSERT_TRUE(server.Start().ok());
  RawClient client(server.http_port());

  const std::string body =
      UniformSpec(/*seed=*/23, /*rows=*/120).ToJson().Write(-1);
  client.Send("POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: " +
              std::to_string(body.size()) +
              "\r\nExpect: 100-continue\r\n\r\n");
  std::string interim = client.ReadResponse();
  EXPECT_EQ(StatusOf(interim), 100) << interim;
  client.Send(body);
  std::string response = client.ReadResponse();
  EXPECT_EQ(StatusOf(response), 202) << response;
  EXPECT_EQ(EventName(BodyOf(response)), "accepted");
}

// ----- auth ---------------------------------------------------------------

TEST(HttpAuthTest, BearerTokenGuardsEveryRouteButHealthz) {
  ServeOptions options = HttpOptions();
  options.http_auth_token = "sesame";
  JobServer server(options);
  ASSERT_TRUE(server.Start().ok());

  {  // No token: 401 with WWW-Authenticate, connection closed.
    RawClient client(server.http_port());
    client.Send(Request("GET", "/metricsz"));
    std::string response = client.ReadResponse();
    EXPECT_EQ(StatusOf(response), 401) << response;
    EXPECT_NE(response.find("WWW-Authenticate: Bearer\r\n"),
              std::string::npos);
    EXPECT_EQ(EventCode(BodyOf(response)), "FailedPrecondition");
    EXPECT_TRUE(client.AtEof());
  }
  {  // Wrong token: still 401.
    RawClient client(server.http_port());
    client.Send(Request("GET", "/metricsz", "",
                        "Authorization: Bearer wrong\r\n"));
    EXPECT_EQ(StatusOf(client.ReadResponse()), 401);
  }
  {  // Right token: 200.
    RawClient client(server.http_port());
    client.Send(Request("GET", "/metricsz", "",
                        "Authorization: Bearer sesame\r\n"));
    std::string response = client.ReadResponse();
    EXPECT_EQ(StatusOf(response), 200) << response;
    EXPECT_EQ(EventName(BodyOf(response)), "stats");
  }
  {  // /healthz stays open for liveness probes.
    RawClient client(server.http_port());
    client.Send(Request("GET", "/healthz"));
    EXPECT_EQ(StatusOf(client.ReadResponse()), 200);
  }
}

// ----- hardening ----------------------------------------------------------

TEST(HttpHardeningTest, OversizedHeadIs431) {
  ServeOptions options = HttpOptions();
  options.http_limits.max_head_bytes = 1024;
  JobServer server(options);
  ASSERT_TRUE(server.Start().ok());
  RawClient client(server.http_port());
  client.Send(Request("GET", "/healthz", "",
                      "X-Padding: " + std::string(4096, 'a') + "\r\n"));
  std::string response = client.ReadResponse();
  EXPECT_EQ(StatusOf(response), 431) << response;
  EXPECT_TRUE(client.AtEof());
}

TEST(HttpHardeningTest, OversizedBodyIs413BeforeReadingIt) {
  ServeOptions options = HttpOptions();
  options.http_limits.max_body_bytes = 1024;
  JobServer server(options);
  ASSERT_TRUE(server.Start().ok());
  RawClient client(server.http_port());
  // Only the head is sent: the refusal must come from the declared
  // length alone, without waiting for (or buffering) the body.
  client.Send("POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 999999\r\n"
              "\r\n");
  std::string response = client.ReadResponse();
  EXPECT_EQ(StatusOf(response), 413) << response;
  EXPECT_TRUE(client.AtEof());
}

TEST(HttpHardeningTest, PostWithoutContentLengthIs411) {
  JobServer server(HttpOptions());
  ASSERT_TRUE(server.Start().ok());
  RawClient client(server.http_port());
  client.Send("POST /jobs HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(StatusOf(client.ReadResponse()), 411);
}

TEST(HttpHardeningTest, ChunkedTransferEncodingIs501) {
  JobServer server(HttpOptions());
  ASSERT_TRUE(server.Start().ok());
  RawClient client(server.http_port());
  client.Send("POST /jobs HTTP/1.1\r\nHost: x\r\n"
              "Transfer-Encoding: chunked\r\n\r\n");
  std::string response = client.ReadResponse();
  EXPECT_EQ(StatusOf(response), 501) << response;
  EXPECT_EQ(EventCode(BodyOf(response)), "Unimplemented");
}

TEST(HttpHardeningTest, UnsupportedVersionIs505) {
  JobServer server(HttpOptions());
  ASSERT_TRUE(server.Start().ok());
  RawClient client(server.http_port());
  client.Send("GET /healthz HTTP/2.0\r\n\r\n");
  EXPECT_EQ(StatusOf(client.ReadResponse()), 505);
}

// Conflicting Content-Length repeats are the classic request-smuggling
// split (a fronting proxy may frame by the other occurrence), so any
// repeat — even an agreeing one — is refused outright.
TEST(HttpHardeningTest, DuplicateContentLengthIs400) {
  JobServer server(HttpOptions());
  ASSERT_TRUE(server.Start().ok());
  RawClient client(server.http_port());
  client.Send("POST /jobs HTTP/1.1\r\nHost: x\r\n"
              "Content-Length: 2\r\nContent-Length: 44\r\n\r\n{}");
  std::string response = client.ReadResponse();
  EXPECT_EQ(StatusOf(response), 400) << response;
  EXPECT_TRUE(client.AtEof());
}

// A bare-LF head must end at its own blank line even when pipelined
// CRLF data already sits in the buffer behind it — the later CRLF
// boundary must not swallow the second request into the first head.
TEST(HttpHardeningTest, BareLfHeadDoesNotSwallowPipelinedCrlfRequest) {
  JobServer server(HttpOptions());
  ASSERT_TRUE(server.Start().ok());
  RawClient client(server.http_port());
  client.Send("GET /healthz HTTP/1.1\nHost: x\n\n"
              "GET /metricsz HTTP/1.1\r\nHost: x\r\n\r\n");
  std::string first = client.ReadResponse();
  EXPECT_EQ(StatusOf(first), 200) << first;
  EXPECT_EQ(EventName(BodyOf(first)), "pong");
  std::string second = client.ReadResponse();
  EXPECT_EQ(StatusOf(second), 200) << second;
  EXPECT_EQ(EventName(BodyOf(second)), "stats");
}

// The slowloris probe: a peer that starts a request and then trickles
// nothing must be answered 408 and evicted within a small multiple of
// the request deadline — it cannot pin a handler thread.
TEST(HttpHardeningTest, SlowlorisIsEvictedByTheRequestDeadline) {
  ServeOptions options = HttpOptions();
  options.http_limits.request_deadline_ms = 300;
  JobServer server(options);
  ASSERT_TRUE(server.Start().ok());
  RawClient client(server.http_port());

  const auto start = steady_clock::now();
  client.Send("GET /healthz HTTP/1.1\r\nHost: x\r\nX-Slow: ");  // ...stall
  std::string response = client.ReadResponse();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           steady_clock::now() - start)
                           .count();
  EXPECT_EQ(StatusOf(response), 408) << response;
  EXPECT_TRUE(client.AtEof());
  EXPECT_LT(elapsed, 5 * 300) << "eviction took " << elapsed << " ms";
}

// A mid-body stall is the same attack with a complete head.
TEST(HttpHardeningTest, MidBodyStallIsEvictedByTheRequestDeadline) {
  ServeOptions options = HttpOptions();
  options.http_limits.request_deadline_ms = 300;
  JobServer server(options);
  ASSERT_TRUE(server.Start().ok());
  RawClient client(server.http_port());
  client.Send("POST /jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 500\r\n"
              "\r\n{\"half\": ");  // ...stall
  std::string response = client.ReadResponse();
  EXPECT_EQ(StatusOf(response), 408) << response;
  EXPECT_TRUE(client.AtEof());
}

// An idle keep-alive connection (no request in flight) is reaped
// silently by the idle timeout — no 408, just end of stream.
TEST(HttpHardeningTest, IdleConnectionIsReapedByTheIdleTimeout) {
  ServeOptions options = HttpOptions();
  options.idle_timeout_ms = 200;
  JobServer server(options);
  ASSERT_TRUE(server.Start().ok());
  RawClient client(server.http_port());
  EXPECT_TRUE(client.AtEof());  // server closes without a response
}

// The connection cap is shared across both fronts: with the table full,
// a new HTTP peer gets 503 + the error event and is closed, and the
// slot frees once an admitted connection goes away.
TEST(HttpHardeningTest, ConnectionCapAnswers503AndRecovers) {
  ServeOptions options = HttpOptions();
  options.max_connections = 1;
  JobServer server(options);
  ASSERT_TRUE(server.Start().ok());

  RawClient first(server.http_port());
  // A round trip guarantees the first connection is registered before
  // the second one reaches the accept loop.
  first.Send(Request("GET", "/healthz"));
  ASSERT_EQ(StatusOf(first.ReadResponse()), 200);

  RawClient second(server.http_port());
  std::string rejected = second.ReadResponse();
  EXPECT_EQ(StatusOf(rejected), 503) << rejected;
  EXPECT_EQ(EventCode(BodyOf(rejected)), "FailedPrecondition");
  EXPECT_TRUE(second.AtEof());

  first.Close();
  // The reap runs on the next accept: retry until the slot frees.
  ASSERT_TRUE(WaitUntil([&]() {
    RawClient retry(server.http_port());
    retry.Send(Request("GET", "/healthz"));
    std::string response = retry.ReadResponse();
    return StatusOf(response) == 200;
  }));
}

}  // namespace
}  // namespace tcm
