// Adversarial and fuzz tests for the CSV layer. The contract under
// test: the in-memory parser (ParseCsvString / ReadCsv) and the
// streaming parser (StreamingCsvReader) share one tokenizer, so EVERY
// input — well-formed, malformed, or random bytes — gets the identical
// verdict from both paths, at every feed-chunk size.

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/csv.h"
#include "data/csv_stream.h"

namespace tcm {
namespace {

Schema TwoNumericColumns() {
  return Schema({Attribute{"a", AttributeType::kNumeric,
                           AttributeRole::kQuasiIdentifier, {}},
                 Attribute{"b", AttributeType::kNumeric,
                           AttributeRole::kConfidential, {}}});
}

Schema MixedColumns() {
  return Schema({Attribute{"num", AttributeType::kNumeric,
                           AttributeRole::kQuasiIdentifier, {}},
                 Attribute{"cat", AttributeType::kNominal,
                           AttributeRole::kConfidential,
                           {"red", "green", "blue", "with,comma",
                            "with\"quote", "with\nnewline"}}});
}

// Streams `text` through StreamingCsvReader with the given feed-chunk
// size, draining in small row batches.
Result<Dataset> ParseStreamed(const std::string& text, const Schema& schema,
                              size_t buffer_bytes) {
  StreamingCsvOptions options;
  options.buffer_bytes = buffer_bytes;
  auto reader = StreamingCsvReader::FromStream(
      std::make_unique<std::istringstream>(text), schema, options);
  TCM_RETURN_IF_ERROR(reader.status());
  Dataset out((*reader)->schema());
  while (true) {
    TCM_ASSIGN_OR_RETURN(size_t got, (*reader)->ReadInto(&out, 3));
    if (got == 0) break;
  }
  return out;
}

// The identical-verdict oracle: parse `text` with the in-memory path
// and the streaming path at several chunk sizes; all runs must agree on
// success, error message, and parsed rows. Returns the in-memory result
// for further assertions.
Result<Dataset> ParseBothWays(const std::string& text, const Schema& schema) {
  Result<Dataset> in_memory = ParseCsvString(text, schema);
  for (size_t buffer_bytes : {1u, 2u, 3u, 7u, 64u, 65536u}) {
    Result<Dataset> streamed = ParseStreamed(text, schema, buffer_bytes);
    EXPECT_EQ(in_memory.ok(), streamed.ok())
        << "verdict differs at chunk size " << buffer_bytes << " for input:\n"
        << text;
    if (in_memory.ok() && streamed.ok()) {
      EXPECT_TRUE(*in_memory == *streamed)
          << "parsed rows differ at chunk size " << buffer_bytes
          << " for input:\n"
          << text;
    } else if (!in_memory.ok() && !streamed.ok()) {
      EXPECT_EQ(in_memory.status().message(), streamed.status().message())
          << "error message differs at chunk size " << buffer_bytes;
    }
  }
  return in_memory;
}

// ------------------------------------------------------ well-formed CSV

TEST(CsvAdversarialTest, PlainRowsParse) {
  auto result = ParseBothWays("a,b\n1,2\n3.5,-4e2\n", TwoNumericColumns());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->NumRecords(), 2u);
  EXPECT_DOUBLE_EQ(result->cell(1, 1).numeric(), -400.0);
}

TEST(CsvAdversarialTest, CrlfLineEndings) {
  auto result = ParseBothWays("a,b\r\n1,2\r\n3,4\r\n", TwoNumericColumns());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->NumRecords(), 2u);
}

TEST(CsvAdversarialTest, MissingFinalNewline) {
  auto result = ParseBothWays("a,b\n1,2", TwoNumericColumns());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->NumRecords(), 1u);
}

TEST(CsvAdversarialTest, BlankLinesAreSkipped) {
  auto result =
      ParseBothWays("a,b\n\n1,2\n   \n\r\n3,4\n", TwoNumericColumns());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->NumRecords(), 2u);
}

TEST(CsvAdversarialTest, WhitespaceAroundFieldsIsStripped) {
  auto result = ParseBothWays("a,b\n  1 ,\t2 \n", TwoNumericColumns());
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->cell(0, 0).numeric(), 1.0);
  EXPECT_DOUBLE_EQ(result->cell(0, 1).numeric(), 2.0);
}

TEST(CsvAdversarialTest, QuotedFieldsWithEmbeddedDelimiters) {
  auto result =
      ParseBothWays("num,cat\n1,\"with,comma\"\n2,blue\n", MixedColumns());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->NumRecords(), 2u);
  EXPECT_EQ(result->cell(0, 1).category(), 3);
}

TEST(CsvAdversarialTest, QuotedFieldsWithEmbeddedNewlines) {
  auto result = ParseBothWays("num,cat\n1,\"with\nnewline\"\n2,red\n",
                              MixedColumns());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->NumRecords(), 2u);
  EXPECT_EQ(result->cell(0, 1).category(), 5);
}

TEST(CsvAdversarialTest, EscapedQuotesInsideQuotedField) {
  auto result = ParseBothWays("num,cat\n1,\"with\"\"quote\"\n",
                              MixedColumns());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cell(0, 1).category(), 4);
}

TEST(CsvAdversarialTest, QuotedNumericFieldsParse) {
  auto result = ParseBothWays("a,b\n\"1\",\"2.5\"\n", TwoNumericColumns());
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->cell(0, 1).numeric(), 2.5);
}

TEST(CsvAdversarialTest, QuotedHeaderMatchesSchema) {
  auto result = ParseBothWays("\"a\",b\n1,2\n", TwoNumericColumns());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->NumRecords(), 1u);
}

TEST(CsvAdversarialTest, EmptyQuotedAndUnquotedFieldsAgree) {
  // Empty fields fail numeric parsing — identically on both paths.
  auto result = ParseBothWays("a,b\n1,\n", TwoNumericColumns());
  EXPECT_FALSE(result.ok());
  auto quoted = ParseBothWays("a,b\n1,\"\"\n", TwoNumericColumns());
  EXPECT_FALSE(quoted.ok());
}

TEST(CsvAdversarialTest, HugeFieldSpanningManyChunks) {
  // A single ~256 KiB quoted field crosses every buffer size used by
  // ParseBothWays.
  std::string huge(256 * 1024, 'x');
  Schema schema({Attribute{"num", AttributeType::kNumeric,
                           AttributeRole::kQuasiIdentifier, {}},
                 Attribute{"cat", AttributeType::kNominal,
                           AttributeRole::kConfidential,
                           {huge}}});
  std::string text = "num,cat\n1,\"" + huge + "\"\n";
  auto result = ParseBothWays(text, schema);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cell(0, 1).category(), 0);
}

TEST(CsvAdversarialTest, LoneCarriageReturnInsideFieldIsData) {
  // "1\r5" strips to "1\r5" (inner CR is not edge whitespace): not a
  // number, so both paths must reject it identically.
  auto result = ParseBothWays("a,b\n1\r5,2\n", TwoNumericColumns());
  EXPECT_FALSE(result.ok());
}

// ------------------------------------------------------- malformed CSV

TEST(CsvAdversarialTest, RaggedRowsAreRejected) {
  auto fewer = ParseBothWays("a,b\n1\n", TwoNumericColumns());
  EXPECT_FALSE(fewer.ok());
  auto more = ParseBothWays("a,b\n1,2,3\n", TwoNumericColumns());
  EXPECT_FALSE(more.ok());
}

TEST(CsvAdversarialTest, UnterminatedQuoteIsRejected) {
  auto result = ParseBothWays("a,b\n1,\"unclosed\n", TwoNumericColumns());
  EXPECT_FALSE(result.ok());
}

TEST(CsvAdversarialTest, StrayQuoteInsideUnquotedFieldIsRejected) {
  auto result = ParseBothWays("a,b\n1,2\"3\n", TwoNumericColumns());
  EXPECT_FALSE(result.ok());
}

TEST(CsvAdversarialTest, GarbageAfterClosingQuoteIsRejected) {
  auto result = ParseBothWays("a,b\n\"1\"x,2\n", TwoNumericColumns());
  EXPECT_FALSE(result.ok());
}

TEST(CsvAdversarialTest, UnknownCategoryIsRejected) {
  auto result = ParseBothWays("num,cat\n1,magenta\n", MixedColumns());
  EXPECT_FALSE(result.ok());
}

TEST(CsvAdversarialTest, NonNumericFieldIsRejected) {
  auto result = ParseBothWays("a,b\n1,zebra\n", TwoNumericColumns());
  EXPECT_FALSE(result.ok());
}

TEST(CsvAdversarialTest, HeaderMismatchesAreRejected) {
  EXPECT_FALSE(ParseBothWays("a,wrong\n1,2\n", TwoNumericColumns()).ok());
  EXPECT_FALSE(ParseBothWays("a\n1\n", TwoNumericColumns()).ok());
  EXPECT_FALSE(ParseBothWays("a,b,c\n1,2,3\n", TwoNumericColumns()).ok());
  EXPECT_FALSE(ParseBothWays("", TwoNumericColumns()).ok());
}

TEST(CsvAdversarialTest, ErrorsAfterValidRowsStillRejectTheWholeParse) {
  auto result =
      ParseBothWays("a,b\n1,2\n3,4\n5\n", TwoNumericColumns());
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 4"), std::string::npos)
      << result.status().message();
}

TEST(CsvAdversarialTest, ErrorLineNumbersCountPhysicalLines) {
  // The quoted field on line 2 spans two physical lines, so the ragged
  // row after it is line 4.
  auto result = ParseBothWays("num,cat\n1,\"with\nnewline\"\nbad\n",
                              MixedColumns());
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 4"), std::string::npos)
      << result.status().message();
}

// --------------------------------------------------------------- fuzz

// Random byte soup over a CSV-hostile alphabet: both parsers must agree
// on every input at every chunk size (and crash on none).
TEST(CsvAdversarialTest, FuzzedInputsGetIdenticalVerdicts) {
  const char alphabet[] = {',', '"', '\n', '\r', '1', '2', '.',  '-',
                           ' ', 'a', '\t', '"',  ',', '\n', 'e', '0'};
  Rng rng(20160713);
  size_t accepted = 0;
  for (int round = 0; round < 300; ++round) {
    std::string text = "a,b\n";  // valid header, hostile body
    size_t length = 1 + rng.NextBounded(120);
    for (size_t i = 0; i < length; ++i) {
      text.push_back(alphabet[rng.NextBounded(sizeof(alphabet))]);
    }
    auto result = ParseBothWays(text, TwoNumericColumns());
    if (result.ok()) ++accepted;
  }
  // The oracle is the agreement; still, some inputs should parse.
  EXPECT_GT(accepted, 0u);
}

// Structured fuzz: generate VALID quoted CSV from random field content,
// write it, and require both parsers to recover the exact fields.
TEST(CsvAdversarialTest, RoundTripFuzzOverQuotedContent) {
  Rng rng(424242);
  const char content_alphabet[] = {'x', 'y', ',', '"', '\n', ' ', '9'};
  for (int round = 0; round < 120; ++round) {
    // Two categorical columns whose labels are random byte strings.
    std::vector<std::string> labels;
    for (int i = 0; i < 4; ++i) {
      std::string label;
      size_t length = 1 + rng.NextBounded(12);
      for (size_t j = 0; j < length; ++j) {
        label.push_back(content_alphabet[
            rng.NextBounded(sizeof(content_alphabet))]);
      }
      // Labels are matched after whitespace stripping; keep them
      // strip-stable and distinct.
      label = "L" + std::to_string(i) + label + "E";
      labels.push_back(label);
    }
    Schema schema({Attribute{"num", AttributeType::kNumeric,
                             AttributeRole::kQuasiIdentifier, {}},
                   Attribute{"cat", AttributeType::kNominal,
                             AttributeRole::kConfidential, labels}});
    Dataset data(schema);
    for (int row = 0; row < 5; ++row) {
      ASSERT_TRUE(
          data.Append({Value::Numeric(static_cast<double>(row)),
                       Value::Categorical(static_cast<int32_t>(
                           rng.NextBounded(labels.size())))})
              .ok());
    }
    std::string text = WriteCsvString(data);
    auto result = ParseBothWays(text, schema);
    ASSERT_TRUE(result.ok()) << "round " << round << " input:\n" << text;
    EXPECT_TRUE(*result == data) << "round " << round;
  }
}

}  // namespace
}  // namespace tcm
