// Minimal external consumer of the installed tcm package: parse a
// JobSpec from JSON through the public umbrella header, run it end to
// end, and check the release verified. Exits 0 only on a verified run,
// so the CI consumer job doubles as an install-tree smoke test.

#include <cstdio>

#include "tcm/api.h"

int main() {
  auto spec = tcm::JobSpec::FromJsonText(R"({
    "version": 1,
    "input": {"kind": "synthetic", "generator": "uniform",
              "rows": 400, "quasi_identifiers": 3, "seed": 42},
    "algorithm": {"name": "tclose_first", "k": 5, "t": 0.2, "seed": 1},
    "execution": {"mode": "in_memory", "threads": 2, "shard_size": 128},
    "verify": true
  })");
  if (!spec.ok()) {
    std::fprintf(stderr, "spec rejected: %s\n",
                 spec.status().ToString().c_str());
    return 1;
  }

  auto report = tcm::RunJob(*spec);
  if (!report.ok()) {
    std::fprintf(stderr, "job failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  if (!report->k_verified || !report->t_verified) {
    std::fprintf(stderr, "release did not verify\n");
    return 1;
  }
  std::printf("%s\n", report->ToJsonText().c_str());
  std::printf("consumer OK: %zu rows, %zu clusters, verified\n",
              report->rows, report->clusters);
  return 0;
}
