#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "microagg/aggregate.h"
#include "microagg/mdav.h"
#include "privacy/equivalence.h"
#include "privacy/kanonymity.h"
#include "privacy/ldiversity.h"
#include "privacy/linkage.h"
#include "privacy/psensitive.h"
#include "privacy/tcloseness.h"
#include "tclose/anonymizer.h"

namespace tcm {
namespace {

// Two equivalence classes of sizes 3 and 2 over one QI.
Dataset MakeGroupedDataset() {
  auto data = DatasetFromColumns(
      {"qi", "conf"},
      {{1, 1, 1, 2, 2}, {10, 20, 20, 30, 40}},
      {AttributeRole::kQuasiIdentifier, AttributeRole::kConfidential});
  return std::move(data).value();
}

// ----------------------------------------------------------- Equivalence

TEST(EquivalenceTest, GroupsByExactQiMatch) {
  auto classes = EquivalenceClasses(MakeGroupedDataset());
  ASSERT_TRUE(classes.ok());
  ASSERT_EQ(classes->size(), 2u);
  EXPECT_EQ((*classes)[0], (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ((*classes)[1], (std::vector<size_t>{3, 4}));
}

TEST(EquivalenceTest, AllDistinctGivesSingletons) {
  auto data = DatasetFromColumns(
      {"qi", "conf"}, {{1, 2, 3}, {1, 1, 1}},
      {AttributeRole::kQuasiIdentifier, AttributeRole::kConfidential});
  ASSERT_TRUE(data.ok());
  auto classes = EquivalenceClasses(*data);
  ASSERT_TRUE(classes.ok());
  EXPECT_EQ(classes->size(), 3u);
}

TEST(EquivalenceTest, RequiresQuasiIdentifiers) {
  auto data = DatasetFromColumns({"a"}, {{1, 2}}, {AttributeRole::kOther});
  ASSERT_TRUE(data.ok());
  EXPECT_FALSE(EquivalenceClasses(*data).ok());
}

TEST(EquivalenceTest, MultiAttributeKeys) {
  auto data = DatasetFromColumns(
      {"q1", "q2", "c"}, {{1, 1, 1}, {5, 5, 6}, {0, 0, 0}},
      {AttributeRole::kQuasiIdentifier, AttributeRole::kQuasiIdentifier,
       AttributeRole::kConfidential});
  ASSERT_TRUE(data.ok());
  auto classes = EquivalenceClasses(*data);
  ASSERT_TRUE(classes.ok());
  EXPECT_EQ(classes->size(), 2u);  // (1,5) x2 and (1,6) x1
}

// ------------------------------------------------------------ kAnonymity

TEST(KAnonymityTest, ReportOnKnownGroups) {
  auto report = EvaluateKAnonymity(MakeGroupedDataset());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->num_equivalence_classes, 2u);
  EXPECT_EQ(report->min_class_size, 2u);
  EXPECT_EQ(report->max_class_size, 3u);
  EXPECT_DOUBLE_EQ(report->average_class_size, 2.5);
}

TEST(KAnonymityTest, ThresholdTest) {
  Dataset data = MakeGroupedDataset();
  EXPECT_TRUE(IsKAnonymous(data, 2).value());
  EXPECT_FALSE(IsKAnonymous(data, 3).value());
}

TEST(KAnonymityTest, OriginalMicrodataIsUsuallyOnlyOneAnonymous) {
  Dataset data = MakeUniformDataset(100, 3, 5);
  auto report = EvaluateKAnonymity(data);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->min_class_size, 1u);
}

// ------------------------------------------------------------ tCloseness

TEST(TClosenessTest, SingleClassHasZeroEmd) {
  auto data = DatasetFromColumns(
      {"qi", "conf"}, {{7, 7, 7, 7}, {1, 2, 3, 4}},
      {AttributeRole::kQuasiIdentifier, AttributeRole::kConfidential});
  ASSERT_TRUE(data.ok());
  auto report = EvaluateTCloseness(*data);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->num_equivalence_classes, 1u);
  EXPECT_NEAR(report->max_emd, 0.0, 1e-12);
}

TEST(TClosenessTest, SkewedClassesHaveLargeEmd) {
  // Class {0,1} holds the two smallest confidential values of n=4:
  // visibly far from the global distribution.
  auto data = DatasetFromColumns(
      {"qi", "conf"}, {{1, 1, 2, 2}, {1, 2, 3, 4}},
      {AttributeRole::kQuasiIdentifier, AttributeRole::kConfidential});
  ASSERT_TRUE(data.ok());
  auto report = EvaluateTCloseness(*data);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->max_emd, 0.3);
  EXPECT_TRUE(IsTClose(*data, 0.5).value());
  EXPECT_FALSE(IsTClose(*data, 0.1).value());
}

TEST(TClosenessTest, MatchesAnonymizerReportedEmd) {
  Dataset data = MakeMcdDataset();
  AnonymizerOptions options;
  options.k = 5;
  options.t = 0.1;
  auto result = Anonymize(data, options);
  ASSERT_TRUE(result.ok());
  auto report = EvaluateTCloseness(result->anonymized);
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->max_emd, result->max_cluster_emd, 1e-9);
}

TEST(TClosenessTest, RequiresConfidentialAttribute) {
  auto data = DatasetFromColumns(
      {"qi", "x"}, {{1, 2}, {3, 4}},
      {AttributeRole::kQuasiIdentifier, AttributeRole::kOther});
  ASSERT_TRUE(data.ok());
  EXPECT_FALSE(EvaluateTCloseness(*data).ok());
}

// ------------------------------------------------------------ lDiversity

TEST(LDiversityTest, DistinctCounts) {
  auto report = EvaluateLDiversity(MakeGroupedDataset());
  ASSERT_TRUE(report.ok());
  // Class {10,20,20} has 2 distinct values; class {30,40} has 2.
  EXPECT_EQ(report->min_distinct_values, 2u);
  EXPECT_TRUE(IsLDiverse(MakeGroupedDataset(), 2).value());
  EXPECT_FALSE(IsLDiverse(MakeGroupedDataset(), 3).value());
}

TEST(LDiversityTest, EntropyPenalizesSkew) {
  // {10,20,20}: entropy < log 2 bits... exp(H) < 2 < distinct count.
  auto report = EvaluateLDiversity(MakeGroupedDataset());
  ASSERT_TRUE(report.ok());
  EXPECT_LT(report->min_entropy_l, 2.0);
  EXPECT_GT(report->min_entropy_l, 1.0);
}

TEST(LDiversityTest, UniformClassReachesDistinctCount) {
  auto data = DatasetFromColumns(
      {"qi", "conf"}, {{1, 1, 1}, {10, 20, 30}},
      {AttributeRole::kQuasiIdentifier, AttributeRole::kConfidential});
  ASSERT_TRUE(data.ok());
  auto report = EvaluateLDiversity(*data);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->min_distinct_values, 3u);
  EXPECT_NEAR(report->min_entropy_l, 3.0, 1e-9);
}

TEST(LDiversityTest, ConstantConfidentialClassIsOneDiverse) {
  auto data = DatasetFromColumns(
      {"qi", "conf"}, {{1, 1}, {5, 5}},
      {AttributeRole::kQuasiIdentifier, AttributeRole::kConfidential});
  ASSERT_TRUE(data.ok());
  auto report = EvaluateLDiversity(*data);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->min_distinct_values, 1u);
  EXPECT_NEAR(report->min_entropy_l, 1.0, 1e-12);
}

// ------------------------------------------------------------ pSensitive

TEST(PSensitiveTest, CombinesKAnonymityAndDiversity) {
  Dataset data = MakeGroupedDataset();
  EXPECT_TRUE(IsPSensitiveKAnonymous(data, 2, 2).value());
  EXPECT_FALSE(IsPSensitiveKAnonymous(data, 3, 2).value());  // p fails
  EXPECT_FALSE(IsPSensitiveKAnonymous(data, 2, 3).value());  // k fails
}

TEST(PSensitiveTest, MaxPEqualsMinDistinct) {
  EXPECT_EQ(MaxSensitiveP(MakeGroupedDataset()).value(), 2u);
}

// --------------------------------------------------------------- Linkage

TEST(LinkageTest, IdentityReleaseIsFullyLinkable) {
  Dataset data = MakeUniformDataset(50, 2, 7);
  auto report = EvaluateLinkageRisk(data, data);
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->expected_reidentification_rate, 1.0, 1e-9);
}

TEST(LinkageTest, FullAggregationGivesOneOverN) {
  // Everything in one cluster: every anonymized record ties, so each
  // subject is linked with probability 1/n.
  Dataset data = MakeUniformDataset(40, 2, 7);
  Partition one;
  one.clusters.push_back(std::vector<size_t>(40));
  std::iota(one.clusters[0].begin(), one.clusters[0].end(), 0);
  auto anonymized = AggregatePartition(data, one);
  ASSERT_TRUE(anonymized.ok());
  auto report = EvaluateLinkageRisk(data, *anonymized);
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->expected_reidentification_rate, 1.0 / 40.0, 1e-9);
}

TEST(LinkageTest, KAnonymousReleaseBoundedByOneOverK) {
  // Within a cluster all k anonymized points coincide, so the linkage
  // probability of any member is at most 1/k (the nearest-tie group is at
  // least the whole cluster).
  Dataset data = MakeUniformDataset(120, 2, 19);
  QiSpace space(data);
  auto partition = Mdav(space, 6);
  ASSERT_TRUE(partition.ok());
  auto anonymized = AggregatePartition(data, *partition);
  ASSERT_TRUE(anonymized.ok());
  auto report = EvaluateLinkageRisk(data, *anonymized);
  ASSERT_TRUE(report.ok());
  EXPECT_LE(report->expected_reidentification_rate, 1.0 / 6.0 + 1e-9);
  EXPECT_GT(report->expected_reidentification_rate, 0.0);
}

TEST(LinkageTest, ShapeMismatchFails) {
  Dataset a = MakeUniformDataset(10, 2, 1);
  Dataset b = MakeUniformDataset(11, 2, 1);
  EXPECT_FALSE(EvaluateLinkageRisk(a, b).ok());
}

}  // namespace
}  // namespace tcm
