// Million-row out-of-core cases, registered with ctest under the `slow`
// label (and only when TCM_SLOW_TESTS=ON — excluded from the tier-1
// default run; CI runs them in a dedicated job with `ctest -L slow`).
//
// This is the acceptance case for the streaming layer: a 1,000,000-row
// generated stream must complete end to end with resident input rows
// bounded by max_resident_rows, and every released window must
// re-verify k-anonymous and t-close.

#include <vector>

#include <gtest/gtest.h>

#include "data/record_source.h"
#include "engine/streaming.h"

namespace tcm {
namespace {

TEST(StreamingSlowTest, MillionRowStreamStaysWithinResidentBudget) {
  constexpr size_t kRows = 1000000;
  constexpr size_t kBudget = 100000;
  auto source = MakeUniformSource(kRows, 3, 2016);
  StreamingSpec spec;
  spec.algorithm = "merge_chunked";
  spec.k = 5;
  spec.t = 0.2;
  spec.seed = 2016;
  spec.shard_size = 4096;
  spec.max_resident_rows = kBudget;
  spec.verify = true;

  StreamingPipelineRunner runner(4);
  auto report = runner.Run(source.get(), spec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->total_rows, kRows);
  EXPECT_LE(report->peak_resident_rows, kBudget);
  EXPECT_GE(report->num_windows, kRows / kBudget);
  EXPECT_TRUE(report->k_verified);
  EXPECT_TRUE(report->t_verified);
  for (const StreamingWindowSummary& window : report->windows) {
    EXPECT_GE(window.rows, spec.k);
    EXPECT_LE(window.rows, kBudget);
    EXPECT_GE(window.min_cluster_size, spec.k);
  }
}

TEST(StreamingSlowTest, MillionRowStreamIsThreadInvariant) {
  // Spot-check the determinism contract at scale: the per-window
  // cluster structure (counts and extreme sizes) must not depend on the
  // thread count. (Byte-level identity is pinned on smaller streams.)
  std::vector<StreamingWindowSummary> reference;
  for (size_t threads : {1u, 8u}) {
    auto source = MakeUniformSource(500000, 2, 7);
    StreamingSpec spec;
    spec.algorithm = "merge_chunked";
    spec.k = 5;
    spec.t = 0.25;
    spec.seed = 7;
    spec.shard_size = 4096;
    spec.max_resident_rows = 120000;
    StreamingPipelineRunner runner(threads);
    auto report = runner.Run(source.get(), spec);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    if (threads == 1u) {
      reference = report->windows;
      continue;
    }
    ASSERT_EQ(report->windows.size(), reference.size());
    for (size_t w = 0; w < reference.size(); ++w) {
      EXPECT_EQ(report->windows[w].rows, reference[w].rows) << w;
      EXPECT_EQ(report->windows[w].clusters, reference[w].clusters) << w;
      EXPECT_EQ(report->windows[w].min_cluster_size,
                reference[w].min_cluster_size)
          << w;
      EXPECT_EQ(report->windows[w].max_cluster_size,
                reference[w].max_cluster_size)
          << w;
    }
  }
}

}  // namespace
}  // namespace tcm
