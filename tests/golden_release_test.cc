// Golden-release regression tests: the exact output bytes of the
// anonymization pipeline are pinned for a fixed seed/dataset/flag
// matrix, so a future refactor cannot silently change what gets
// released. The matrix mirrors tcm_anonymize invocations (the tool is a
// thin flag parser over PipelineSpec / StreamingSpec, and the CSV bytes
// it writes are exactly WriteCsvString of the release — additionally
// pinned binary-level by tools/anonymize_golden.cmake).
//
// Regenerating after an INTENTIONAL release-changing commit:
//   TCM_REGENERATE_GOLDEN=1 ./build/tests/golden_release_test
// then review the diff under tests/golden/ like any other code change.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/csv.h"
#include "data/csv_stream.h"
#include "data/generator.h"
#include "data/record_source.h"
#include "engine/pipeline.h"
#include "engine/streaming.h"

#ifndef TCM_GOLDEN_DIR
#error "TCM_GOLDEN_DIR must point at tests/golden"
#endif

namespace tcm {
namespace {

bool Regenerating() {
  const char* env = std::getenv("TCM_REGENERATE_GOLDEN");
  return env != nullptr && *env != '\0' && *env != '0';
}

std::string GoldenPath(const std::string& name) {
  return std::string(TCM_GOLDEN_DIR) + "/" + name;
}

void CompareWithGolden(const std::string& name, const std::string& bytes) {
  const std::string path = GoldenPath(name);
  if (Regenerating()) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good());
    GTEST_LOG_(INFO) << "regenerated " << path;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (run with TCM_REGENERATE_GOLDEN=1)";
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(golden.str(), bytes)
      << "release bytes drifted from " << name
      << "; if intentional, regenerate with TCM_REGENERATE_GOLDEN=1 and "
         "review the diff";
}

Dataset GoldenInput() { return MakeMcdDataset({.num_records = 120, .seed = 7}); }

// The generator + CSV writer themselves are part of the pinned surface.
TEST(GoldenReleaseTest, InputDatasetBytesArePinned) {
  CompareWithGolden("input_mcd_120.csv", WriteCsvString(GoldenInput()));
}

// Flag matrix over the in-memory pipeline: every case runs sharded on a
// 2-thread pool (thread count provably cannot change the bytes; shard
// size 64 forces real fan-out + the global merge pass).
TEST(GoldenReleaseTest, ReleaseBytesArePinnedAcrossFlagMatrix) {
  struct Case {
    const char* algorithm;
    size_t k;
    double t;
  };
  const Case cases[] = {
      {"merge", 3, 0.2},        {"merge_chunked", 5, 0.2},
      {"kanon_first", 3, 0.25}, {"tclose_first", 5, 0.3},
      {"mondrian", 4, 0.3},     {"sabre", 4, 0.3},
  };
  Dataset data = GoldenInput();
  PipelineRunner runner(2);
  for (const Case& c : cases) {
    PipelineSpec spec;
    spec.algorithm = c.algorithm;
    spec.k = c.k;
    spec.t = c.t;
    spec.seed = 9;
    spec.shard_size = 64;
    spec.verify = true;
    auto report = runner.Run(data, spec);
    ASSERT_TRUE(report.ok()) << c.algorithm << ": "
                             << report.status().ToString();
    char name[128];
    std::snprintf(name, sizeof(name), "release_%s_k%zu_t%02d.csv",
                  c.algorithm, c.k, static_cast<int>(c.t * 100));
    CompareWithGolden(name, WriteCsvString(report->result.anonymized));
  }
}

// Streamed-vs-in-memory byte identity, pinned: the single-window
// streamed release must equal BOTH the in-memory release and the
// committed golden bytes.
TEST(GoldenReleaseTest, StreamedSingleWindowMatchesInMemoryGolden) {
  Dataset data = GoldenInput();
  PipelineSpec mem_spec;
  mem_spec.algorithm = "tclose_first";
  mem_spec.k = 5;
  mem_spec.t = 0.3;
  mem_spec.seed = 9;
  mem_spec.shard_size = 64;
  PipelineRunner mem_runner(2);
  auto mem_report = mem_runner.Run(data, mem_spec);
  ASSERT_TRUE(mem_report.ok());
  const std::string mem_bytes =
      WriteCsvString(mem_report->result.anonymized);

  DatasetSource source(&data);
  StreamingSpec spec;
  spec.algorithm = "tclose_first";
  spec.k = 5;
  spec.t = 0.3;
  spec.seed = 9;
  spec.shard_size = 64;
  spec.max_resident_rows = 4096;  // whole stream in one window
  std::string streamed_bytes;
  AppendCsvHeader(data.schema(), &streamed_bytes);
  StreamingPipelineRunner runner(2);
  auto report = runner.Run(
      &source, spec,
      [&](const Dataset& release, const StreamingWindowSummary&) {
        for (size_t row = 0; row < release.NumRecords(); ++row) {
          AppendCsvRow(release, row, &streamed_bytes);
        }
        return Status::Ok();
      });
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->num_windows, 1u);
  EXPECT_EQ(streamed_bytes, mem_bytes);
  CompareWithGolden("release_tclose_first_k5_t30.csv", streamed_bytes);
}

// A multi-window streamed release is pinned too: window composition and
// per-window seeds are part of the streaming contract.
TEST(GoldenReleaseTest, StreamedMultiWindowReleaseIsPinned) {
  auto source = MakeUniformSource(400, 2, 31);
  StreamingSpec spec;
  spec.algorithm = "merge_chunked";
  spec.k = 4;
  spec.t = 0.25;
  spec.seed = 13;
  spec.shard_size = 64;
  spec.max_resident_rows = 150;
  std::string bytes;
  AppendCsvHeader(source->schema(), &bytes);
  StreamingPipelineRunner runner(2);
  auto report = runner.Run(
      source.get(), spec,
      [&](const Dataset& release, const StreamingWindowSummary&) {
        for (size_t row = 0; row < release.NumRecords(); ++row) {
          AppendCsvRow(release, row, &bytes);
        }
        return Status::Ok();
      });
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GE(report->num_windows, 2u);
  CompareWithGolden("release_streamed_uniform400.csv", bytes);
}

// Mixed-type (categorical) releases exercise label round-tripping in
// the pinned bytes.
TEST(GoldenReleaseTest, CategoricalReleaseBytesArePinned) {
  Dataset data = MakeAdultLike({.num_records = 90, .seed = 3});
  PipelineSpec spec;
  spec.algorithm = "merge";
  spec.k = 3;
  spec.t = 0.3;
  spec.seed = 9;
  spec.shard_size = 0;
  PipelineRunner runner(1);
  auto report = runner.Run(data, spec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  CompareWithGolden("release_adult_merge_k3_t30.csv",
                    WriteCsvString(report->result.anonymized));
}

}  // namespace
}  // namespace tcm
