// Robustness wall for the .tcmb binary reader (colstore/tcmb.h),
// mirroring json_fuzz_test.cc: a deterministic corruption corpus over a
// genuine serialized image — truncation at every byte, bit flips across
// the preamble/header/payloads, and structurally-targeted damage
// (version bumps, checksum edits, out-of-range dictionary codes). The
// parser's contract under attack is narrow and absolute: return a
// structured Status, never crash, hang, or build a table from bytes it
// cannot vouch for. IoError means damage (truncation, checksums, bad
// codes); InvalidSpec means intact-but-not-a-usable-v1-file.

#include <cstdint>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "colstore/column_table.h"
#include "colstore/tcmb.h"
#include "data/attribute.h"
#include "data/dataset.h"
#include "data/value.h"

namespace tcm {
namespace {

// A seed table covering both column kinds, large enough that payload
// sections span several 8-byte lines.
ColumnTable SeedTable() {
  Schema schema({
      Attribute{"x", AttributeType::kNumeric,
                AttributeRole::kQuasiIdentifier, {}},
      Attribute{"c", AttributeType::kNominal, AttributeRole::kConfidential,
                {"a", "b", "c", "d"}},
  });
  Dataset data(schema);
  for (int i = 0; i < 57; ++i) {
    EXPECT_TRUE(data.Append({Value::Numeric(i * 0.5),
                             Value::Categorical(i % 4)})
                    .ok());
  }
  return ColumnTable::FromDataset(data);
}

std::string SeedImage() {
  auto image = SerializeTcmb(SeedTable());
  EXPECT_TRUE(image.ok());
  return image.ok() ? *image : std::string();
}

// The property under fuzz: parsing returns a Result; failures carry a
// non-empty message and the documented code family.
void CheckParser(const std::string& bytes) {
  auto parsed = ParseTcmb(bytes.data(), bytes.size(), nullptr, "fuzz");
  if (!parsed.ok()) {
    EXPECT_FALSE(parsed.status().message().empty());
    EXPECT_TRUE(parsed.status().code() == StatusCode::kIoError ||
                parsed.status().code() == StatusCode::kInvalidSpec)
        << parsed.status().ToString();
    return;
  }
  // Anything accepted must re-serialize to a parseable image of the same
  // shape (the reader has verified checksums, so acceptance is a strong
  // claim).
  auto again = SerializeTcmb(*parsed);
  ASSERT_TRUE(again.ok());
  auto reparsed = ParseTcmb(again->data(), again->size(), nullptr, "fuzz2");
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(parsed->num_rows(), reparsed->num_rows());
  EXPECT_EQ(parsed->num_columns(), reparsed->num_columns());
}

TEST(TcmbFuzzTest, SeedImageParses) {
  const std::string image = SeedImage();
  ASSERT_FALSE(image.empty());
  auto parsed = ParseTcmb(image.data(), image.size(), nullptr, "seed");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->num_rows(), 57u);
}

TEST(TcmbFuzzTest, TruncationLadderIsTotal) {
  // Every strict prefix must fail cleanly — and specifically as
  // IoError once the magic is intact (a cut-off file is damage, not a
  // different format). Prefixes shorter than the magic, or with a
  // damaged header blob whose checksum no longer matches, also stay in
  // the contract.
  const std::string image = SeedImage();
  ASSERT_FALSE(image.empty());
  for (size_t cut = 0; cut < image.size(); ++cut) {
    const std::string prefix = image.substr(0, cut);
    auto parsed = ParseTcmb(prefix.data(), prefix.size(), nullptr, "trunc");
    ASSERT_FALSE(parsed.ok()) << "accepted a " << cut << "-byte prefix of a "
                              << image.size() << "-byte file";
    EXPECT_FALSE(parsed.status().message().empty());
    if (cut >= 32) {
      // Magic, version and preamble intact: truncation must read as
      // damage, never as a valid smaller file.
      EXPECT_EQ(parsed.status().code(), StatusCode::kIoError)
          << "cut=" << cut << ": " << parsed.status().ToString();
    }
  }
}

TEST(TcmbFuzzTest, EveryBitFlipFailsCleanlyOrRoundTrips) {
  // Exhaustive single-bit flips over the preamble and header, sampled
  // flips over the payload region: no crash, and any accepted image
  // re-serializes.
  const std::string image = SeedImage();
  ASSERT_FALSE(image.empty());
  const size_t dense_region = std::min<size_t>(image.size(), 160);
  for (size_t byte = 0; byte < dense_region; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = image;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      CheckParser(mutated);
    }
  }
  std::mt19937 rng(0x7C3Bu);
  for (int i = 0; i < 2000; ++i) {
    std::string mutated = image;
    const size_t byte = std::uniform_int_distribution<size_t>(
        0, mutated.size() - 1)(rng);
    const int bit = std::uniform_int_distribution<int>(0, 7)(rng);
    mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
    CheckParser(mutated);
  }
}

TEST(TcmbFuzzTest, StackedMutationsNeverCrash) {
  const std::string image = SeedImage();
  ASSERT_FALSE(image.empty());
  std::mt19937 rng(0xBEEF5EEDu);
  for (int i = 0; i < 1500; ++i) {
    std::string mutated = image;
    const int edits = 1 + std::uniform_int_distribution<int>(0, 3)(rng);
    for (int e = 0; e < edits; ++e) {
      switch (std::uniform_int_distribution<int>(0, 3)(rng)) {
        case 0:  // truncate
          mutated.resize(std::uniform_int_distribution<size_t>(
              0, mutated.size())(rng));
          break;
        case 1: {  // flip a byte
          if (mutated.empty()) break;
          const size_t pos = std::uniform_int_distribution<size_t>(
              0, mutated.size() - 1)(rng);
          mutated[pos] = static_cast<char>(
              std::uniform_int_distribution<int>(0, 255)(rng));
          break;
        }
        case 2:  // append garbage
          mutated.push_back(static_cast<char>(
              std::uniform_int_distribution<int>(0, 255)(rng)));
          break;
        default: {  // erase a span
          if (mutated.empty()) break;
          const size_t begin = std::uniform_int_distribution<size_t>(
              0, mutated.size() - 1)(rng);
          const size_t len = 1 + std::uniform_int_distribution<size_t>(
                                     0, 15)(rng);
          mutated.erase(begin, len);
          break;
        }
      }
    }
    CheckParser(mutated);
  }
}

// --------------------------------------------- targeted structural damage

std::string WithU32At(std::string image, size_t offset, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    image[offset + i] = static_cast<char>((value >> (8 * i)) & 0xff);
  }
  return image;
}

TEST(TcmbFuzzTest, WrongMagicIsInvalidSpec) {
  std::string image = SeedImage();
  image[0] = 'X';
  auto parsed = ParseTcmb(image.data(), image.size(), nullptr, "magic");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidSpec);
}

TEST(TcmbFuzzTest, VersionMismatchIsInvalidSpec) {
  const std::string image = WithU32At(SeedImage(), 4, kTcmbFormatVersion + 1);
  auto parsed = ParseTcmb(image.data(), image.size(), nullptr, "version");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidSpec);
  EXPECT_NE(parsed.status().message().find("unsupported .tcmb format"),
            std::string::npos);
}

TEST(TcmbFuzzTest, HeaderChecksumMismatchIsIoError) {
  std::string image = SeedImage();
  image[16] = static_cast<char>(image[16] ^ 0x01);  // checksum field itself
  auto parsed = ParseTcmb(image.data(), image.size(), nullptr, "hsum");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kIoError);
  EXPECT_NE(parsed.status().message().find("header checksum"),
            std::string::npos);
}

TEST(TcmbFuzzTest, PayloadCorruptionIsCaughtByChecksum) {
  // Flip one payload byte (past the header) without touching its
  // directory entry: the per-section checksum must catch it.
  std::string image = SeedImage();
  image[image.size() - 5] = static_cast<char>(image[image.size() - 5] ^ 0x40);
  auto parsed = ParseTcmb(image.data(), image.size(), nullptr, "psum");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kIoError);
  EXPECT_NE(parsed.status().message().find("payload checksum"),
            std::string::npos);
}

TEST(TcmbFuzzTest, TrailingBytesAreInvalidSpec) {
  std::string image = SeedImage() + "extra";
  auto parsed = ParseTcmb(image.data(), image.size(), nullptr, "trail");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidSpec);
}

TEST(TcmbFuzzTest, OutOfRangeDictionaryCodeIsIoError) {
  // The writer trusts its table, so a table constructed with codes
  // beyond the dictionary serializes fine — and the reader must refuse
  // it with IoError, code range being a payload-integrity property.
  Schema schema({
      Attribute{"c", AttributeType::kNominal, AttributeRole::kConfidential,
                {"only", "two"}},
  });
  ColumnTable::ColumnData column;
  column.owned_codes = {0, 1, 7, 0};  // 7 is out of range
  column.codes = column.owned_codes.data();
  std::vector<ColumnTable::ColumnData> columns;
  columns.push_back(std::move(column));
  ColumnTable bad = ColumnTable::Make(schema, 4, std::move(columns),
                                      nullptr, 0, 4 * sizeof(int32_t));
  auto image = SerializeTcmb(bad);
  ASSERT_TRUE(image.ok());
  auto parsed = ParseTcmb(image->data(), image->size(), nullptr, "codes");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kIoError);
  EXPECT_NE(parsed.status().message().find("dictionary code"),
            std::string::npos);

  // Negative codes are just as dead.
  ColumnTable::ColumnData negative;
  negative.owned_codes = {0, -1, 1, 0};
  negative.codes = negative.owned_codes.data();
  std::vector<ColumnTable::ColumnData> neg_columns;
  neg_columns.push_back(std::move(negative));
  ColumnTable neg = ColumnTable::Make(schema, 4, std::move(neg_columns),
                                      nullptr, 0, 4 * sizeof(int32_t));
  auto neg_image = SerializeTcmb(neg);
  ASSERT_TRUE(neg_image.ok());
  auto neg_parsed =
      ParseTcmb(neg_image->data(), neg_image->size(), nullptr, "negcodes");
  ASSERT_FALSE(neg_parsed.ok());
  EXPECT_EQ(neg_parsed.status().code(), StatusCode::kIoError);
}

TEST(TcmbFuzzTest, GarbageAndEmptyInputsFailCleanly) {
  CheckParser("");
  CheckParser("TCMB");
  CheckParser(std::string(1 << 16, '\0'));
  std::mt19937 rng(0xD15EA5Eu);
  std::string garbage(1 << 16, '\0');
  for (char& c : garbage) {
    c = static_cast<char>(std::uniform_int_distribution<int>(0, 255)(rng));
  }
  CheckParser(garbage);
  // Garbage behind a genuine preamble prefix.
  const std::string image = SeedImage();
  CheckParser(image.substr(0, 32) + garbage);
}

}  // namespace
}  // namespace tcm
