// Tests for the observability layer (src/obs/): metrics registry
// counters/gauges/histograms with exact quantile extraction pinned
// against a sorted-vector oracle, concurrent publication (this suite
// runs under the tsan preset), the trace recorder's Chrome trace-event
// JSON export with span nesting, and the structured key=value logger
// with an injected pipe sink.

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace tcm {
namespace {

// ------------------------------------------------------------- counters

TEST(MetricsTest, CountersStartAtZeroAndAccumulate) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.CounterValue("jobs"), 0u);
  registry.IncrementCounter("jobs");
  registry.IncrementCounter("jobs", 4);
  EXPECT_EQ(registry.CounterValue("jobs"), 5u);
  EXPECT_EQ(registry.CounterValue("other"), 0u);
}

TEST(MetricsTest, GaugesAreLastWriteWins) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.GaugeValue("depth"), 0.0);
  registry.SetGauge("depth", 7.0);
  registry.SetGauge("depth", 3.5);
  EXPECT_EQ(registry.GaugeValue("depth"), 3.5);
}

TEST(MetricsTest, ConcurrentCounterIncrementsAreLost_Never) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry]() {
      for (int i = 0; i < kPerThread; ++i) {
        registry.IncrementCounter("contended");
        registry.SetGauge("last", static_cast<double>(i));
        registry.Observe("latency", 0.001 * (i % 16 + 1));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(registry.CounterValue("contended"),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(registry.HistogramStats("latency").count,
            static_cast<uint64_t>(kThreads) * kPerThread);
}

// ------------------------------------------------------------ histograms

// Nearest-rank quantile over the raw samples: the oracle the fixed
// bucket extraction must match when boundaries sit at every distinct
// sample value.
double OracleQuantile(std::vector<double> samples, double q) {
  std::sort(samples.begin(), samples.end());
  size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(samples.size())));
  if (rank < 1) rank = 1;
  return samples[rank - 1];
}

TEST(MetricsTest, QuantilesExactAgainstSortedVectorOracle) {
  // Deterministic pseudo-random samples with ties and skew.
  std::mt19937_64 rng(20260807);
  std::vector<double> samples;
  samples.reserve(500);
  for (int i = 0; i < 500; ++i) {
    double value = static_cast<double>(rng() % 97) * 0.25;
    if (i % 7 == 0) value *= 8.0;  // heavy tail
    samples.push_back(value);
  }

  // Boundaries at every distinct sample value make the fixed-bucket
  // nearest-rank extraction exact (see metrics.h).
  std::set<double> distinct(samples.begin(), samples.end());
  std::vector<double> boundaries(distinct.begin(), distinct.end());

  MetricsRegistry registry;
  registry.RegisterHistogram("exact", boundaries);
  double sum = 0.0;
  for (double sample : samples) {
    registry.Observe("exact", sample);
    sum += sample;
  }

  HistogramSnapshot snapshot = registry.HistogramStats("exact");
  EXPECT_EQ(snapshot.count, samples.size());
  EXPECT_NEAR(snapshot.sum, sum, 1e-9);
  EXPECT_EQ(snapshot.min, *std::min_element(samples.begin(), samples.end()));
  EXPECT_EQ(snapshot.max, *std::max_element(samples.begin(), samples.end()));
  EXPECT_EQ(snapshot.p50, OracleQuantile(samples, 0.50));
  EXPECT_EQ(snapshot.p90, OracleQuantile(samples, 0.90));
  EXPECT_EQ(snapshot.p99, OracleQuantile(samples, 0.99));
}

TEST(MetricsTest, QuantilesExactForSmallCounts) {
  for (size_t n : {1u, 2u, 3u, 5u}) {
    std::vector<double> samples;
    for (size_t i = 0; i < n; ++i) {
      samples.push_back(static_cast<double>(i + 1) * 1.5);
    }
    MetricsRegistry registry;
    registry.RegisterHistogram("small", samples);  // sorted already
    for (double sample : samples) registry.Observe("small", sample);
    HistogramSnapshot snapshot = registry.HistogramStats("small");
    EXPECT_EQ(snapshot.p50, OracleQuantile(samples, 0.50)) << "n=" << n;
    EXPECT_EQ(snapshot.p90, OracleQuantile(samples, 0.90)) << "n=" << n;
    EXPECT_EQ(snapshot.p99, OracleQuantile(samples, 0.99)) << "n=" << n;
  }
}

TEST(MetricsTest, ObserveAutoCreatesWithDefaultBuckets) {
  MetricsRegistry registry;
  registry.Observe("auto", 0.004);
  registry.Observe("auto", 1000.0);  // past the last default boundary
  HistogramSnapshot snapshot = registry.HistogramStats("auto");
  EXPECT_EQ(snapshot.count, 2u);
  EXPECT_EQ(snapshot.min, 0.004);
  EXPECT_EQ(snapshot.max, 1000.0);
  // Quantiles are clamped to the observed range even for the overflow
  // bucket.
  EXPECT_GE(snapshot.p50, snapshot.min);
  EXPECT_LE(snapshot.p99, snapshot.max);
}

TEST(MetricsTest, EmptyHistogramSnapshotsToZeros) {
  MetricsRegistry registry;
  registry.RegisterHistogram("empty", {1.0, 2.0});
  HistogramSnapshot snapshot = registry.HistogramStats("empty");
  EXPECT_EQ(snapshot.count, 0u);
  EXPECT_EQ(snapshot.p50, 0.0);
  EXPECT_EQ(snapshot.p99, 0.0);
}

TEST(MetricsTest, SnapshotJsonCarriesAllThreeFamilies) {
  MetricsRegistry registry;
  registry.IncrementCounter("c", 2);
  registry.SetGauge("g", 1.25);
  registry.Observe("h", 0.5);
  JsonValue snapshot = registry.SnapshotJson();
  ASSERT_TRUE(snapshot.is_object());
  const JsonValue* counters = snapshot.Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->Find("c"), nullptr);
  const JsonValue* gauges = snapshot.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  ASSERT_NE(gauges->Find("g"), nullptr);
  const JsonValue* histograms = snapshot.Find("histograms");
  ASSERT_NE(histograms, nullptr);
  const JsonValue* h = histograms->Find("h");
  ASSERT_NE(h, nullptr);
  for (const char* key :
       {"count", "sum", "min", "max", "p50", "p90", "p99"}) {
    EXPECT_NE(h->Find(key), nullptr) << key;
  }
  registry.Reset();
  EXPECT_EQ(registry.CounterValue("c"), 0u);
}

// --------------------------------------------------------------- tracing

// The suite shares the process-global recorder with nothing else (the
// library only records while a test enables tracing), but every test
// still leaves it disabled and clear.
class TraceTest : public ::testing::Test {
 protected:
  void TearDown() override {
    TraceRecorder::Global().Disable();
    TraceRecorder::Global().Clear();
  }
};

TEST_F(TraceTest, SpansAreInertWhileDisabled) {
  TraceRecorder::Global().Disable();
  TraceRecorder::Global().Clear();
  {
    TraceSpan span("ignored");
  }
  EXPECT_EQ(TraceRecorder::Global().event_count(), 0u);
}

TEST_F(TraceTest, RecordsNestedSpansWithDepth) {
  TraceRecorder::Global().Clear();
  TraceRecorder::Global().Enable();
  {
    TraceSpan outer("outer");
    {
      TraceSpan inner("inner");
    }
  }
  TraceRecorder::Global().Disable();
  std::vector<TraceEvent> events = TraceRecorder::Global().Events();
  ASSERT_EQ(events.size(), 2u);
  // Spans are recorded on close: inner first.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[1].depth, 0);
  EXPECT_EQ(events[0].tid, events[1].tid);
  // The inner interval nests inside the outer one.
  EXPECT_GE(events[0].ts_us, events[1].ts_us);
  EXPECT_LE(events[0].ts_us + events[0].dur_us,
            events[1].ts_us + events[1].dur_us);
}

TEST_F(TraceTest, ChromeTraceJsonIsValidAndComplete) {
  TraceRecorder::Global().Clear();
  TraceRecorder::Global().Enable();
  {
    TraceSpan a("stage_a");
    TraceSpan b("stage_b");
  }
  TraceRecorder::Global().Disable();

  // Round-trip through the serialized form: the exported document must
  // parse with the project's own strict parser.
  std::string text = TraceRecorder::Global().ChromeTraceJson().Write(2);
  auto parsed = ParseJson(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* trace_events = parsed->Find("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  ASSERT_TRUE(trace_events->is_array());
  ASSERT_EQ(trace_events->items().size(), 2u);
  for (const JsonValue& event : trace_events->items()) {
    const JsonValue* ph = event.Find("ph");
    ASSERT_NE(ph, nullptr);
    EXPECT_EQ(ph->string_value(), "X");  // complete events
    for (const char* key : {"name", "cat", "ts", "dur", "pid", "tid"}) {
      EXPECT_NE(event.Find(key), nullptr) << key;
    }
    const JsonValue* args = event.Find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_NE(args->Find("depth"), nullptr);
  }
}

TEST_F(TraceTest, ConcurrentSpansKeepPerThreadDepth) {
  TraceRecorder::Global().Clear();
  TraceRecorder::Global().Enable();
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([]() {
      for (int i = 0; i < kSpansPerThread; ++i) {
        TraceSpan outer("outer");
        TraceSpan inner("inner");
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  TraceRecorder::Global().Disable();
  std::vector<TraceEvent> events = TraceRecorder::Global().Events();
  ASSERT_EQ(events.size(),
            static_cast<size_t>(kThreads) * kSpansPerThread * 2);
  for (const TraceEvent& event : events) {
    if (event.name == "outer") {
      EXPECT_EQ(event.depth, 0);
    } else {
      EXPECT_EQ(event.depth, 1);
    }
  }
}

TEST_F(TraceTest, TraceSinkWritesFileAndDisables) {
  const std::string path =
      ::testing::TempDir() + "/tcm_obs_trace_sink.json";
  {
    TraceSink sink(path);
    EXPECT_TRUE(TraceRecorder::Global().enabled());
    TraceSpan span("sink_span");
    // Span closes before Finish via scope order below.
  }
  EXPECT_FALSE(TraceRecorder::Global().enabled());
  auto parsed = ReadJsonFile(path);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* trace_events = parsed->Find("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  ASSERT_EQ(trace_events->items().size(), 1u);
  EXPECT_EQ(trace_events->items()[0].Find("name")->string_value(),
            "sink_span");
  std::remove(path.c_str());
}

// --------------------------------------------------------------- logging

TEST(LogTest, ParseLogLevelRoundTrips) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError, LogLevel::kOff}) {
    LogLevel parsed = LogLevel::kOff;
    EXPECT_TRUE(ParseLogLevel(LogLevelName(level), &parsed));
    EXPECT_EQ(parsed, level);
  }
  LogLevel untouched = LogLevel::kWarn;
  EXPECT_FALSE(ParseLogLevel("verbose", &untouched));
  EXPECT_EQ(untouched, LogLevel::kWarn);
}

TEST(LogTest, EnabledHonorsThresholdAndOff) {
  Logger& logger = Logger::Global();
  const LogLevel saved = logger.level();
  logger.SetLevel(LogLevel::kWarn);
  EXPECT_FALSE(logger.Enabled(LogLevel::kDebug));
  EXPECT_FALSE(logger.Enabled(LogLevel::kInfo));
  EXPECT_TRUE(logger.Enabled(LogLevel::kWarn));
  EXPECT_TRUE(logger.Enabled(LogLevel::kError));
  EXPECT_FALSE(logger.Enabled(LogLevel::kOff));  // kOff is never a line level
  logger.SetLevel(saved);
}

// Reads everything currently buffered in the pipe (the writes are
// smaller than PIPE_BUF, so one read suffices).
std::string DrainPipe(int fd) {
  char buffer[4096];
  ssize_t n = ::read(fd, buffer, sizeof(buffer));
  return n > 0 ? std::string(buffer, static_cast<size_t>(n)) : std::string();
}

TEST(LogTest, EmitsKeyValueLinesToInjectedSink) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  Logger& logger = Logger::Global();
  const LogLevel saved_level = logger.level();
  const int saved_fd = logger.fd();
  logger.SetFd(fds[1]);
  logger.SetLevel(LogLevel::kInfo);

  TCM_LOG(kInfo)
      .Msg("job finished")
      .Kv("job", 42)
      .Kv("ok", true)
      .Kv("seconds", 0.25);

  logger.SetLevel(saved_level);
  logger.SetFd(saved_fd);
  std::string line = DrainPipe(fds[0]);
  ::close(fds[0]);
  ::close(fds[1]);

  EXPECT_NE(line.find("ts="), std::string::npos) << line;
  EXPECT_NE(line.find("level=info"), std::string::npos) << line;
  // The message contains a space, so it is quoted.
  EXPECT_NE(line.find("msg=\"job finished\""), std::string::npos) << line;
  EXPECT_NE(line.find("job=42"), std::string::npos) << line;
  EXPECT_NE(line.find("ok=true"), std::string::npos) << line;
  EXPECT_NE(line.find("seconds=0.25"), std::string::npos) << line;
  EXPECT_EQ(line.back(), '\n');
}

TEST(LogTest, BelowThresholdLinesEmitNothing) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  Logger& logger = Logger::Global();
  const LogLevel saved_level = logger.level();
  const int saved_fd = logger.fd();
  logger.SetFd(fds[1]);
  logger.SetLevel(LogLevel::kError);

  TCM_LOG(kInfo).Msg("suppressed");
  TCM_LOG(kError).Msg("kept");

  logger.SetLevel(saved_level);
  logger.SetFd(saved_fd);
  std::string out = DrainPipe(fds[0]);
  ::close(fds[0]);
  ::close(fds[1]);

  EXPECT_EQ(out.find("suppressed"), std::string::npos) << out;
  EXPECT_NE(out.find("kept"), std::string::npos) << out;
}

TEST(LogTest, QuotesAndEscapesSpecialValues) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  Logger& logger = Logger::Global();
  const LogLevel saved_level = logger.level();
  const int saved_fd = logger.fd();
  logger.SetFd(fds[1]);
  logger.SetLevel(LogLevel::kDebug);

  TCM_LOG(kDebug).Kv("path", "a \"b\"\nc").Kv("empty", "");

  logger.SetLevel(saved_level);
  logger.SetFd(saved_fd);
  std::string line = DrainPipe(fds[0]);
  ::close(fds[0]);
  ::close(fds[1]);

  EXPECT_NE(line.find("path=\"a \\\"b\\\"\\nc\""), std::string::npos) << line;
  EXPECT_NE(line.find("empty=\"\""), std::string::npos) << line;
}

}  // namespace
}  // namespace tcm
