#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "data/stats.h"
#include "microagg/aggregate.h"
#include "microagg/mdav.h"
#include "utility/info_loss.h"
#include "utility/query.h"
#include "utility/sse.h"

namespace tcm {
namespace {

Dataset MakeSimple() {
  auto data = DatasetFromColumns(
      {"q1", "q2", "conf"},
      {{0, 10, 20, 30}, {0, 1, 2, 3}, {5, 6, 7, 8}},
      {AttributeRole::kQuasiIdentifier, AttributeRole::kQuasiIdentifier,
       AttributeRole::kConfidential});
  return std::move(data).value();
}

// ------------------------------------------------------------------- SSE

TEST(SseTest, IdentityReleaseHasZeroSse) {
  Dataset data = MakeSimple();
  auto sse = NormalizedSse(data, data);
  ASSERT_TRUE(sse.ok());
  EXPECT_DOUBLE_EQ(*sse, 0.0);
}

TEST(SseTest, KnownShiftValue) {
  // Shift q1 of one record by a full range (30): contribution
  // (1/n)*(1/m)*1^2 = 1/8.
  Dataset data = MakeSimple();
  Dataset shifted = data;
  ASSERT_TRUE(shifted.SetCell(0, 0, Value::Numeric(30)).ok());
  auto sse = NormalizedSse(data, shifted);
  ASSERT_TRUE(sse.ok());
  EXPECT_NEAR(*sse, 1.0 / 8.0, 1e-12);
}

TEST(SseTest, NormalizationMakesScalesComparable) {
  // Equal relative perturbations on differently scaled attributes must
  // contribute equally.
  Dataset data = MakeSimple();
  Dataset perturb_q1 = data;
  ASSERT_TRUE(perturb_q1.SetCell(1, 0, Value::Numeric(10 + 15)).ok());
  Dataset perturb_q2 = data;
  ASSERT_TRUE(perturb_q2.SetCell(1, 1, Value::Numeric(1 + 1.5)).ok());
  auto sse1 = NormalizedSse(data, perturb_q1);
  auto sse2 = NormalizedSse(data, perturb_q2);
  ASSERT_TRUE(sse1.ok() && sse2.ok());
  EXPECT_NEAR(*sse1, *sse2, 1e-12);
}

TEST(SseTest, ConfidentialColumnDoesNotCount) {
  Dataset data = MakeSimple();
  Dataset perturbed = data;
  ASSERT_TRUE(perturbed.SetCell(0, 2, Value::Numeric(999)).ok());
  auto sse = NormalizedSse(data, perturbed);
  ASSERT_TRUE(sse.ok());
  EXPECT_DOUBLE_EQ(*sse, 0.0);
}

TEST(SseTest, ExplicitAttributeSetOverridesRoles) {
  Dataset data = MakeSimple();
  Dataset perturbed = data;
  ASSERT_TRUE(perturbed.SetCell(0, 2, Value::Numeric(8)).ok());  // conf col
  auto sse = NormalizedSseOverAttributes(data, perturbed, {2});
  ASSERT_TRUE(sse.ok());
  EXPECT_GT(*sse, 0.0);
}

TEST(SseTest, ShapeMismatchFails) {
  Dataset data = MakeSimple();
  Dataset other = MakeUniformDataset(3, 2, 1);
  EXPECT_FALSE(NormalizedSse(data, other).ok());
}

TEST(SseTest, RawSseMatchesHandComputation) {
  Dataset data = MakeSimple();
  Dataset shifted = data;
  ASSERT_TRUE(shifted.SetCell(0, 0, Value::Numeric(3)).ok());   // +3
  ASSERT_TRUE(shifted.SetCell(2, 1, Value::Numeric(6)).ok());   // +4
  auto sse = RawSse(data, shifted);
  ASSERT_TRUE(sse.ok());
  EXPECT_DOUBLE_EQ(*sse, 9.0 + 16.0);
}

TEST(SseTest, MoreAggregationMeansMoreSse) {
  Dataset data = MakeUniformDataset(200, 2, 3);
  QiSpace space(data);
  double previous = -1.0;
  for (size_t k : {2u, 10u, 50u, 200u}) {
    auto partition = Mdav(space, k);
    ASSERT_TRUE(partition.ok());
    auto anonymized = AggregatePartition(data, *partition);
    ASSERT_TRUE(anonymized.ok());
    auto sse = NormalizedSse(data, *anonymized);
    ASSERT_TRUE(sse.ok());
    EXPECT_GT(*sse, previous) << "k=" << k;
    previous = *sse;
  }
}

// ------------------------------------------------------------- Info loss

TEST(InfoLossTest, IdentityPreservesEverything) {
  Dataset data = MakeUniformDataset(100, 3, 5);
  auto stats = EvaluateStatisticsPreservation(data, data);
  ASSERT_TRUE(stats.ok());
  for (const auto& attr : stats->attributes) {
    EXPECT_DOUBLE_EQ(attr.mean_absolute_error, 0.0);
    EXPECT_DOUBLE_EQ(attr.variance_ratio, 1.0);
    EXPECT_DOUBLE_EQ(attr.range_ratio, 1.0);
  }
  EXPECT_DOUBLE_EQ(stats->correlation_mad, 0.0);
  EXPECT_DOUBLE_EQ(stats->qi_confidential_correlation_mad, 0.0);
}

TEST(InfoLossTest, MeanIsExactlyPreservedByMeanAggregation) {
  // Replacing cluster members by the cluster mean keeps column means.
  Dataset data = MakeUniformDataset(90, 2, 7);
  QiSpace space(data);
  auto partition = Mdav(space, 9);
  ASSERT_TRUE(partition.ok());
  auto anonymized = AggregatePartition(data, *partition);
  ASSERT_TRUE(anonymized.ok());
  auto stats = EvaluateStatisticsPreservation(data, *anonymized);
  ASSERT_TRUE(stats.ok());
  for (const auto& attr : stats->attributes) {
    EXPECT_NEAR(attr.mean_absolute_error, 0.0, 1e-9);
    // Aggregation shrinks variance (within-cluster variance removed).
    EXPECT_LE(attr.variance_ratio, 1.0 + 1e-12);
  }
}

TEST(InfoLossTest, Il1sZeroForIdentityPositiveForPerturbation) {
  Dataset data = MakeUniformDataset(50, 2, 9);
  EXPECT_DOUBLE_EQ(Il1sInformationLoss(data, data).value(), 0.0);
  QiSpace space(data);
  auto partition = Mdav(space, 10);
  ASSERT_TRUE(partition.ok());
  auto anonymized = AggregatePartition(data, *partition);
  ASSERT_TRUE(anonymized.ok());
  EXPECT_GT(Il1sInformationLoss(data, *anonymized).value(), 0.0);
}

TEST(InfoLossTest, ShapeMismatchFails) {
  Dataset a = MakeUniformDataset(10, 2, 1);
  Dataset b = MakeUniformDataset(12, 2, 1);
  EXPECT_FALSE(EvaluateStatisticsPreservation(a, b).ok());
  EXPECT_FALSE(Il1sInformationLoss(a, b).ok());
}

// ----------------------------------------------------------- Range query

TEST(QueryTest, IdentityReleaseHasZeroError) {
  Dataset data = MakeUniformDataset(300, 2, 11);
  auto accuracy = EvaluateRangeQueries(data, data);
  ASSERT_TRUE(accuracy.ok());
  EXPECT_DOUBLE_EQ(accuracy->mean_absolute_error, 0.0);
  EXPECT_DOUBLE_EQ(accuracy->max_absolute_error, 0.0);
}

TEST(QueryTest, AggregationDegradesAccuracyMonotonically) {
  Dataset data = MakeUniformDataset(400, 2, 13);
  QiSpace space(data);
  double previous = -1.0;
  for (size_t k : {4u, 40u, 400u}) {
    auto partition = Mdav(space, k);
    ASSERT_TRUE(partition.ok());
    auto anonymized = AggregatePartition(data, *partition);
    ASSERT_TRUE(anonymized.ok());
    auto accuracy = EvaluateRangeQueries(data, *anonymized);
    ASSERT_TRUE(accuracy.ok());
    EXPECT_GE(accuracy->mean_absolute_error, previous) << "k=" << k;
    previous = accuracy->mean_absolute_error;
  }
}

TEST(QueryTest, DeterministicForSameSeed) {
  Dataset data = MakeUniformDataset(100, 2, 17);
  Dataset noisy = MakeUniformDataset(100, 2, 18);
  RangeQueryOptions options;
  options.seed = 5;
  auto a = EvaluateRangeQueries(data, noisy, options);
  auto b = EvaluateRangeQueries(data, noisy, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->mean_absolute_error, b->mean_absolute_error);
}

TEST(QueryTest, RejectsBadOptions) {
  Dataset data = MakeUniformDataset(10, 2, 1);
  RangeQueryOptions options;
  options.selectivity = 0.0;
  EXPECT_FALSE(EvaluateRangeQueries(data, data, options).ok());
  options.selectivity = 1.5;
  EXPECT_FALSE(EvaluateRangeQueries(data, data, options).ok());
  options.selectivity = 0.5;
  options.num_queries = 0;
  EXPECT_FALSE(EvaluateRangeQueries(data, data, options).ok());
}

TEST(QueryTest, FullSelectivityCountsEverythingOnIdentity) {
  Dataset data = MakeUniformDataset(50, 2, 19);
  RangeQueryOptions options;
  options.selectivity = 1.0;
  options.num_queries = 5;
  auto accuracy = EvaluateRangeQueries(data, data, options);
  ASSERT_TRUE(accuracy.ok());
  EXPECT_DOUBLE_EQ(accuracy->mean_absolute_error, 0.0);
}

}  // namespace
}  // namespace tcm
