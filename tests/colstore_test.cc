// Tests for the columnar store (src/colstore/): ColumnTable round trips,
// .tcmb serialization/zero-copy reads, the CSV converter, the columnar
// audit evaluators against their row-store counterparts, the integer-
// indexed categorical kernels, and — the format's core guarantee — that
// a JobSpec run over a converted .tcmb releases byte-identical output to
// the same run over the source CSV, in-memory and streaming, at 1 and 4
// threads. The mmap-lifetime cases run under the asan preset: every
// span/label handed out must stay valid while a keep-alive copy of the
// owner exists, and an out-of-range dictionary code must abort.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "colstore/column_table.h"
#include "colstore/columnar_audit.h"
#include "colstore/columnar_source.h"
#include "colstore/convert.h"
#include "colstore/tcmb.h"
#include "data/csv.h"
#include "distance/categorical.h"
#include "privacy/categorical_tcloseness.h"
#include "privacy/equivalence.h"
#include "privacy/kanonymity.h"
#include "tcm/api.h"

namespace tcm {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// A small mixed-type dataset: numeric QI, nominal QI, ordinal
// confidential — every column kind the format stores.
Dataset MixedDataset() {
  Schema schema({
      Attribute{"age", AttributeType::kNumeric,
                AttributeRole::kQuasiIdentifier, {}},
      Attribute{"city", AttributeType::kNominal,
                AttributeRole::kQuasiIdentifier, {"tokyo", "oslo", "lima"}},
      Attribute{"grade", AttributeType::kOrdinal,
                AttributeRole::kConfidential, {"low", "mid", "high"}},
  });
  Dataset data(schema);
  auto add = [&data](double age, int32_t city, int32_t grade) {
    ASSERT_TRUE(data.Append({Value::Numeric(age), Value::Categorical(city),
                             Value::Categorical(grade)})
                    .ok());
  };
  add(30, 0, 0);
  add(30, 0, 1);
  add(30, 0, 0);
  add(41.5, 1, 2);
  add(41.5, 1, 1);
  add(41.5, 1, 2);
  add(-7.25, 2, 0);
  add(-7.25, 2, 2);
  return data;
}

void ExpectDatasetsEqual(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.NumRecords(), b.NumRecords());
  ASSERT_EQ(a.schema().size(), b.schema().size());
  for (size_t c = 0; c < a.schema().size(); ++c) {
    EXPECT_EQ(a.schema().at(c).name, b.schema().at(c).name);
    EXPECT_EQ(a.schema().at(c).type, b.schema().at(c).type);
    EXPECT_EQ(a.schema().at(c).role, b.schema().at(c).role);
    EXPECT_EQ(a.schema().at(c).categories, b.schema().at(c).categories);
  }
  for (size_t r = 0; r < a.NumRecords(); ++r) {
    for (size_t c = 0; c < a.schema().size(); ++c) {
      const Value& va = a.cell(r, c);
      const Value& vb = b.cell(r, c);
      ASSERT_EQ(va.kind(), vb.kind()) << "row " << r << " col " << c;
      if (va.kind() == Value::Kind::kNumeric) {
        EXPECT_EQ(va.AsDouble(), vb.AsDouble())
            << "row " << r << " col " << c;
      } else {
        EXPECT_EQ(va.category(), vb.category())
            << "row " << r << " col " << c;
      }
    }
  }
}

// ---------------------------------------------------------- ColumnTable

TEST(ColumnTableTest, DatasetRoundTripPreservesEveryCell) {
  Dataset data = MixedDataset();
  ColumnTable table = ColumnTable::FromDataset(data);
  EXPECT_EQ(table.num_rows(), data.NumRecords());
  EXPECT_EQ(table.num_columns(), data.schema().size());
  EXPECT_EQ(table.mapped_bytes(), 0u);
  EXPECT_GT(table.copied_bytes(), 0u);
  ExpectDatasetsEqual(table.ToDataset(), data);
}

TEST(ColumnTableTest, TypedViewsAndLabels) {
  ColumnTable table = ColumnTable::FromDataset(MixedDataset());
  std::span<const double> age = table.NumericColumn(0);
  ASSERT_EQ(age.size(), 8u);
  EXPECT_EQ(age[3], 41.5);
  EXPECT_EQ(age[6], -7.25);
  std::span<const int32_t> city = table.CodeColumn(1);
  ASSERT_EQ(city.size(), 8u);
  EXPECT_EQ(city[0], 0);
  EXPECT_EQ(city[7], 2);
  EXPECT_EQ(table.Label(1, 0), "tokyo");
  EXPECT_EQ(table.Label(2, 2), "high");
}

TEST(ColumnTableTest, AppendRowsMaterializesTheRequestedSlice) {
  Dataset data = MixedDataset();
  ColumnTable table = ColumnTable::FromDataset(data);
  Dataset out(data.schema());
  auto cells = table.AppendRows(&out, 2, 3);
  ASSERT_TRUE(cells.ok());
  EXPECT_EQ(*cells, 3u * 3u);
  ASSERT_EQ(out.NumRecords(), 3u);
  EXPECT_EQ(out.cell(0, 0).AsDouble(), 30.0);
  EXPECT_EQ(out.cell(1, 1).category(), 1);
}

TEST(ColumnTableTest, ReplaceSchemaSwapsRolesOnly) {
  ColumnTable table = ColumnTable::FromDataset(MixedDataset());
  std::vector<Attribute> attrs = table.schema().attributes();
  attrs[0].role = AttributeRole::kOther;
  EXPECT_TRUE(table.ReplaceSchema(Schema{attrs}).ok());
  EXPECT_EQ(table.schema().at(0).role, AttributeRole::kOther);

  attrs[0].name = "different";
  EXPECT_FALSE(table.ReplaceSchema(Schema{std::move(attrs)}).ok());
}

// ----------------------------------------------------------------- .tcmb

TEST(TcmbTest, SerializeParseIsTheIdentity) {
  Dataset data = MixedDataset();
  ColumnTable table = ColumnTable::FromDataset(data);
  auto image = SerializeTcmb(table);
  ASSERT_TRUE(image.ok());
  auto parsed = ParseTcmb(image->data(), image->size(), nullptr, "test");
  ASSERT_TRUE(parsed.ok());
  ExpectDatasetsEqual(parsed->ToDataset(), data);
  // Deterministic bytes: re-serializing the parsed table reproduces the
  // image exactly.
  auto again = SerializeTcmb(*parsed);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*image, *again);
}

TEST(TcmbTest, WriteReadIsZeroCopy) {
  Dataset data = MixedDataset();
  ColumnTable table = ColumnTable::FromDataset(data);
  const std::string path = TempPath("roundtrip.tcmb");
  ASSERT_TRUE(WriteTcmb(table, path).ok());

  auto mapped = ReadTcmb(path);
  ASSERT_TRUE(mapped.ok());
  ExpectDatasetsEqual(mapped->ToDataset(), data);
  // The canonical writer 8-aligns every payload, so a mapped read serves
  // all column bytes straight from the file: nothing copied.
  EXPECT_EQ(mapped->mapped_bytes(), std::filesystem::file_size(path));
  EXPECT_EQ(mapped->copied_bytes(), 0u);
  EXPECT_NE(mapped->owner(), nullptr);
}

TEST(TcmbTest, ZeroRowTableSurvivesTheRoundTrip) {
  Dataset empty(MixedDataset().schema());
  ColumnTable table = ColumnTable::FromDataset(empty);
  const std::string path = TempPath("empty.tcmb");
  ASSERT_TRUE(WriteTcmb(table, path).ok());
  auto mapped = ReadTcmb(path);
  ASSERT_TRUE(mapped.ok());
  EXPECT_EQ(mapped->num_rows(), 0u);
  EXPECT_EQ(mapped->schema().size(), 3u);
}

TEST(TcmbTest, MissingFileIsIoError) {
  auto missing = ReadTcmb(TempPath("definitely_absent.tcmb"));
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kIoError);
}

// ------------------------------------------------------- mmap lifetime

TEST(TcmbTest, ViewsOutliveTheTableWhileOwnerIsHeld) {
  const std::string path = TempPath("lifetime.tcmb");
  ASSERT_TRUE(WriteTcmb(ColumnTable::FromDataset(MixedDataset()), path).ok());

  std::optional<ColumnTable> table;
  {
    auto mapped = ReadTcmb(path);
    ASSERT_TRUE(mapped.ok());
    table.emplace(std::move(*mapped));
  }
  // Take views, keep the mapping alive, destroy the table.
  std::span<const double> age = table->NumericColumn(0);
  std::span<const int32_t> city = table->CodeColumn(1);
  std::shared_ptr<const void> keep_alive = table->owner();
  ASSERT_NE(keep_alive, nullptr);
  table.reset();
  // Under ASan this dereferences freed/unmapped memory unless keep_alive
  // really pins the mapping.
  EXPECT_EQ(age[3], 41.5);
  EXPECT_EQ(city[7], 2);
}

TEST(ColstoreDeathTest, OutOfRangeDictionaryCodeAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ColumnTable table = ColumnTable::FromDataset(MixedDataset());
  EXPECT_DEATH(table.Label(1, 3), "TCM_CHECK failed");
  EXPECT_DEATH(table.Label(1, -1), "TCM_CHECK failed");
}

// -------------------------------------------------------- CSV converter

TEST(ConvertTest, GoldenCsvConvertsAndBridgesIdentically) {
  const std::string csv = std::string(TCM_GOLDEN_DIR) + "/input_mcd_120.csv";
  auto table = ConvertCsvToColumnar(csv);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 120u);

  auto rows = ReadNumericCsv(csv);
  ASSERT_TRUE(rows.ok());
  Dataset bridged = table->ToDataset();
  ASSERT_EQ(bridged.NumRecords(), rows->NumRecords());
  for (size_t r = 0; r < bridged.NumRecords(); ++r) {
    for (size_t c = 0; c < bridged.schema().size(); ++c) {
      EXPECT_EQ(bridged.cell(r, c).AsDouble(), rows->cell(r, c).AsDouble());
    }
  }
}

TEST(ConvertTest, MixedColumnsBecomeDictionaries) {
  const std::string csv = TempPath("mixed.csv");
  {
    std::ofstream out(csv);
    out << "id,color\n1,red\n2,blue\n3,red\n4, red \n";
  }
  auto table = ConvertCsvToColumnar(csv);
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->num_rows(), 4u);
  EXPECT_FALSE(table->schema().at(0).is_categorical());
  ASSERT_TRUE(table->schema().at(1).is_categorical());
  // First-appearance dictionary order; whitespace stripped like the CSV
  // readers do, so " red " interns to the same code as "red".
  EXPECT_EQ(table->schema().at(1).categories,
            (std::vector<std::string>{"red", "blue"}));
  std::span<const int32_t> codes = table->CodeColumn(1);
  EXPECT_EQ(codes[0], 0);
  EXPECT_EQ(codes[1], 1);
  EXPECT_EQ(codes[3], 0);
}

TEST(ConvertTest, FieldCountMismatchIsIoError) {
  const std::string csv = TempPath("ragged.csv");
  {
    std::ofstream out(csv);
    out << "a,b\n1,2\n3\n";
  }
  auto table = ConvertCsvToColumnar(csv);
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kIoError);
}

// ------------------------------------------------------- ColumnarSource

TEST(ColumnarSourceTest, StreamsTheTableInChunks) {
  const std::string path = TempPath("source.tcmb");
  Dataset data = MixedDataset();
  ASSERT_TRUE(WriteTcmb(ColumnTable::FromDataset(data), path).ok());
  auto source = ColumnarSource::Open(path);
  ASSERT_TRUE(source.ok());

  Dataset out((*source)->schema());
  size_t total = 0;
  for (;;) {
    auto n = (*source)->ReadInto(&out, 3);
    ASSERT_TRUE(n.ok());
    total += *n;
    if (*n < 3) break;
  }
  EXPECT_EQ(total, data.NumRecords());
  ExpectDatasetsEqual(out, data);
  EXPECT_GT((*source)->mapped_bytes(), 0u);
}

// ------------------------------------------------------- columnar audit

TEST(ColumnarAuditTest, MatchesRowStoreEvaluators) {
  Dataset data = MixedDataset();
  ColumnTable table = ColumnTable::FromDataset(data);

  auto row_classes = EquivalenceClasses(data);
  auto col_classes = ColumnarEquivalenceClasses(table);
  ASSERT_TRUE(row_classes.ok());
  ASSERT_TRUE(col_classes.ok());
  EXPECT_EQ(*row_classes, *col_classes);

  for (size_t k = 1; k <= 4; ++k) {
    auto row_k = IsKAnonymous(data, k);
    auto col_k = IsColumnarKAnonymous(table, k);
    ASSERT_TRUE(row_k.ok());
    ASSERT_TRUE(col_k.ok());
    EXPECT_EQ(*row_k, *col_k) << "k=" << k;
  }

  auto row_t = EvaluateOrdinalTCloseness(data);
  auto col_t = EvaluateColumnarOrdinalTCloseness(table);
  ASSERT_TRUE(row_t.ok());
  ASSERT_TRUE(col_t.ok());
  EXPECT_EQ(row_t->num_equivalence_classes, col_t->num_equivalence_classes);
  EXPECT_DOUBLE_EQ(row_t->max_distance, col_t->max_distance);
  EXPECT_DOUBLE_EQ(row_t->mean_distance, col_t->mean_distance);
}

TEST(ColumnarAuditTest, NominalEvaluatorMatchesRowStore) {
  Schema schema({
      Attribute{"qi", AttributeType::kNumeric,
                AttributeRole::kQuasiIdentifier, {}},
      Attribute{"diag", AttributeType::kNominal,
                AttributeRole::kConfidential, {"a", "b", "c"}},
  });
  Dataset data(schema);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(data.Append({Value::Numeric(i / 5),
                             Value::Categorical((i * 7) % 3)})
                    .ok());
  }
  ColumnTable table = ColumnTable::FromDataset(data);
  auto row_t = EvaluateNominalTCloseness(data);
  auto col_t = EvaluateColumnarNominalTCloseness(table);
  ASSERT_TRUE(row_t.ok());
  ASSERT_TRUE(col_t.ok());
  EXPECT_EQ(row_t->num_equivalence_classes, col_t->num_equivalence_classes);
  EXPECT_DOUBLE_EQ(row_t->max_distance, col_t->max_distance);
  EXPECT_DOUBLE_EQ(row_t->mean_distance, col_t->mean_distance);
}

TEST(ColumnarAuditTest, TypeMismatchAndMissingRolesRejected) {
  ColumnTable table = ColumnTable::FromDataset(MixedDataset());
  // Confidential is ordinal, not nominal.
  EXPECT_FALSE(EvaluateColumnarNominalTCloseness(table).ok());

  std::vector<Attribute> no_qi = table.schema().attributes();
  for (Attribute& attr : no_qi) attr.role = AttributeRole::kOther;
  ASSERT_TRUE(table.ReplaceSchema(Schema{std::move(no_qi)}).ok());
  EXPECT_FALSE(ColumnarEquivalenceClasses(table).ok());
}

// ------------------------------------------------- code-indexed kernels

TEST(CategoricalCodeKernelTest, CodeVariantsMatchCountVariants) {
  std::vector<int32_t> p = {0, 0, 1, 2, 2, 2, 3, 1, 0};
  std::vector<int32_t> q = {3, 3, 3, 1, 0, 2, 2, 1, 1};
  const size_t universe = 4;
  std::vector<size_t> counts_p = CountCategoryCodes(p, universe);
  std::vector<size_t> counts_q = CountCategoryCodes(q, universe);
  EXPECT_EQ(counts_p, (std::vector<size_t>{3, 2, 3, 1}));
  EXPECT_DOUBLE_EQ(OrdinalCategoricalEmdCodes(p, q, universe),
                   OrdinalCategoricalEmd(counts_p, counts_q));
  EXPECT_DOUBLE_EQ(NominalCategoricalEmdCodes(p, q, universe),
                   NominalCategoricalEmd(counts_p, counts_q));
  // Identical distributions are at distance zero.
  EXPECT_DOUBLE_EQ(NominalCategoricalEmdCodes(p, p, universe), 0.0);
  EXPECT_DOUBLE_EQ(OrdinalCategoricalEmdCodes(p, p, universe), 0.0);
}

// -------------------------------------- CSV / .tcmb release equivalence

struct FormatRun {
  std::string release;
  RunReport report;
};

FormatRun RunGolden(const std::string& input, InputFormat format,
                    ExecutionMode mode, size_t threads,
                    const std::string& out_name) {
  JobSpec spec;
  spec.input.kind = InputKind::kCsvPath;
  spec.input.path = input;
  spec.input.format = format;
  spec.roles.quasi_identifiers = {"TAXINC", "POTHVAL"};
  spec.roles.confidential = "FEDTAX";
  spec.algorithm.name = "tclose_first";
  spec.algorithm.k = 5;
  spec.algorithm.t = 0.3;
  spec.algorithm.seed = 9;
  spec.execution.mode = mode;
  spec.execution.threads = threads;
  spec.execution.shard_size = 64;
  spec.execution.max_resident_rows = 4096;
  spec.output.release_path = TempPath(out_name);
  auto report = RunJob(spec);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  FormatRun run;
  run.release = ReadFileOrDie(spec.output.release_path);
  if (report.ok()) run.report = std::move(*report);
  return run;
}

TEST(FormatEquivalenceTest, CsvAndTcmbReleaseByteIdenticalEverywhere) {
  const std::string csv = std::string(TCM_GOLDEN_DIR) + "/input_mcd_120.csv";
  const std::string tcmb = TempPath("input_mcd_120.tcmb");
  ASSERT_TRUE(ConvertCsvToTcmb(csv, tcmb).ok());
  const std::string golden = ReadFileOrDie(
      std::string(TCM_GOLDEN_DIR) + "/release_tclose_first_k5_t30.csv");

  int case_index = 0;
  for (ExecutionMode mode :
       {ExecutionMode::kInMemory, ExecutionMode::kStreaming}) {
    for (size_t threads : {size_t{1}, size_t{4}}) {
      const std::string tag = std::to_string(case_index++);
      FormatRun from_csv = RunGolden(csv, InputFormat::kCsv, mode, threads,
                                     "eq_csv_" + tag + ".csv");
      FormatRun from_tcmb = RunGolden(tcmb, InputFormat::kTcmb, mode,
                                      threads, "eq_tcmb_" + tag + ".csv");
      EXPECT_EQ(from_csv.release, golden)
          << "csv release drifted (mode " << ExecutionModeName(mode)
          << ", threads " << threads << ")";
      EXPECT_EQ(from_tcmb.release, golden)
          << ".tcmb release differs from the golden (mode "
          << ExecutionModeName(mode) << ", threads " << threads << ")";

      // Provenance and the zero-copy split land in the report.
      EXPECT_EQ(from_csv.report.input_format, "csv");
      EXPECT_EQ(from_tcmb.report.input_format, "tcmb");
      EXPECT_EQ(from_csv.report.input_mapped_bytes, 0u);
      EXPECT_GT(from_csv.report.input_copied_bytes, 0u);
      EXPECT_EQ(from_tcmb.report.input_mapped_bytes,
                std::filesystem::file_size(tcmb));
      EXPECT_GT(from_tcmb.report.input_copied_bytes, 0u);
    }
  }
}

TEST(FormatEquivalenceTest, StreamingReportRecordsTheShardPlan) {
  const std::string csv = std::string(TCM_GOLDEN_DIR) + "/input_mcd_120.csv";
  FormatRun run = RunGolden(csv, InputFormat::kCsv,
                            ExecutionMode::kStreaming, 2, "shard_plan.csv");
  ASSERT_FALSE(run.report.windows.empty());
  for (const StreamingWindowSummary& window : run.report.windows) {
    EXPECT_EQ(window.shard_size, 64u);
    EXPECT_EQ(window.threads, 2u);
    EXPECT_GE(window.num_shards, 1u);
  }
}

TEST(FormatEquivalenceTest, TcmbInputWithoutRolesIsInvalidSpec) {
  const std::string csv = std::string(TCM_GOLDEN_DIR) + "/input_mcd_120.csv";
  const std::string tcmb = TempPath("no_roles.tcmb");
  ASSERT_TRUE(ConvertCsvToTcmb(csv, tcmb).ok());
  JobSpec spec;
  spec.input.kind = InputKind::kCsvPath;
  spec.input.path = tcmb;
  spec.input.format = InputFormat::kTcmb;
  spec.output.release_path = TempPath("never.csv");
  auto report = RunJob(spec);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidSpec);
}

}  // namespace
}  // namespace tcm
