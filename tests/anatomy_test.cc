// Tests for the Anatomy-style two-table release and the dataset summary
// profiler, plus the integrated handling of ordinal confidential
// attributes (paper future-work item iii).

#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generator.h"
#include "data/summary.h"
#include "distance/qi_space.h"
#include "microagg/mdav.h"
#include "privacy/tcloseness.h"
#include "tclose/anatomy.h"
#include "tclose/anonymizer.h"

namespace tcm {
namespace {

Partition TwoGroups() {
  Partition partition;
  partition.clusters = {{0, 2}, {1, 3}};
  return partition;
}

Dataset SmallData() {
  auto data = DatasetFromColumns(
      {"q", "other", "conf"},
      {{10, 20, 30, 40}, {7, 7, 8, 8}, {1, 2, 3, 4}},
      {AttributeRole::kQuasiIdentifier, AttributeRole::kOther,
       AttributeRole::kConfidential});
  return std::move(data).value();
}

// ----------------------------------------------------------------- Anatomy

TEST(AnatomyTest, QiTableKeepsOriginalValues) {
  Dataset data = SmallData();
  auto release = MakeAnatomyRelease(data, TwoGroups());
  ASSERT_TRUE(release.ok());
  // QI column published verbatim (the anatomy selling point: zero QI SSE).
  EXPECT_EQ(release->qi_table.ColumnAsDouble(0),
            (std::vector<double>{10, 20, 30, 40}));
  // kOther attributes ride along; confidential ones do not.
  ASSERT_EQ(release->qi_table.NumAttributes(), 3u);  // q, other, GROUP_ID
  EXPECT_EQ(release->qi_table.schema().at(1).name, "other");
  EXPECT_EQ(release->qi_table.schema().at(2).name, "GROUP_ID");
}

TEST(AnatomyTest, GroupIdsMatchPartition) {
  Dataset data = SmallData();
  auto release = MakeAnatomyRelease(data, TwoGroups());
  ASSERT_TRUE(release.ok());
  EXPECT_EQ(release->qi_table.ColumnAsDouble(2),
            (std::vector<double>{0, 1, 0, 1}));
}

TEST(AnatomyTest, SensitiveTableHoldsGroupDistributions) {
  Dataset data = SmallData();
  auto release = MakeAnatomyRelease(data, TwoGroups());
  ASSERT_TRUE(release.ok());
  ASSERT_EQ(release->sensitive_table.NumRecords(), 4u);
  // Group 0 holds confidential values {1, 3}; group 1 holds {2, 4}.
  std::multiset<std::pair<double, double>> rows;
  for (size_t row = 0; row < 4; ++row) {
    rows.insert({release->sensitive_table.cell(row, 0).numeric(),
                 release->sensitive_table.cell(row, 1).numeric()});
  }
  EXPECT_TRUE(rows.count({0, 1}) == 1 && rows.count({0, 3}) == 1);
  EXPECT_TRUE(rows.count({1, 2}) == 1 && rows.count({1, 4}) == 1);
}

TEST(AnatomyTest, SensitiveRowsSortedWithinGroup) {
  // Within a group the rows must be in confidential order, not record
  // order, so position does not leak identity.
  Dataset data = SmallData();
  Partition partition;
  partition.clusters = {{3, 0, 2, 1}};  // scrambled record order
  auto release = MakeAnatomyRelease(data, partition);
  ASSERT_TRUE(release.ok());
  std::vector<double> conf = release->sensitive_table.ColumnAsDouble(1);
  EXPECT_TRUE(std::is_sorted(conf.begin(), conf.end()));
}

TEST(AnatomyTest, RequiresValidPartitionAndRoles) {
  Dataset data = SmallData();
  Partition bad;
  bad.clusters = {{0, 1}};
  EXPECT_FALSE(MakeAnatomyRelease(data, bad).ok());
  auto no_conf = DatasetFromColumns(
      {"q", "x"}, {{1, 2}, {3, 4}},
      {AttributeRole::kQuasiIdentifier, AttributeRole::kOther});
  ASSERT_TRUE(no_conf.ok());
  Partition one;
  one.clusters = {{0, 1}};
  EXPECT_FALSE(MakeAnatomyRelease(*no_conf, one).ok());
}

TEST(AnatomyTest, DisclosureScoreKnownValues) {
  Dataset data = SmallData();
  // Distinct values per group -> 1/2.
  EXPECT_DOUBLE_EQ(AnatomyAttributeDisclosure(data, TwoGroups()).value(),
                   0.5);
  // One group with a duplicated value {1,1,3,4}: posterior peak 2/4.
  auto dup = DatasetFromColumns(
      {"q", "conf"}, {{1, 2, 3, 4}, {1, 1, 3, 4}},
      {AttributeRole::kQuasiIdentifier, AttributeRole::kConfidential});
  ASSERT_TRUE(dup.ok());
  Partition one;
  one.clusters = {{0, 1, 2, 3}};
  EXPECT_DOUBLE_EQ(AnatomyAttributeDisclosure(*dup, one).value(), 0.5);
}

TEST(AnatomyTest, TClosePartitionCarriesOver) {
  // Build a t-close partition, release via anatomy, and confirm that the
  // per-group confidential EMD bound is the one the partition achieved.
  Dataset data = MakeMcdDataset();
  AnonymizerOptions options;
  options.k = 5;
  options.t = 0.1;
  auto result = Anonymize(data, options);
  ASSERT_TRUE(result.ok());
  auto release = MakeAnatomyRelease(data, result->partition);
  ASSERT_TRUE(release.ok());
  EXPECT_EQ(release->qi_table.NumRecords(), data.NumRecords());
  EXPECT_EQ(release->sensitive_table.NumRecords(), data.NumRecords());
  // Every group in the sensitive table has >= k rows.
  std::map<double, size_t> group_sizes;
  for (size_t row = 0; row < release->sensitive_table.NumRecords(); ++row) {
    ++group_sizes[release->sensitive_table.cell(row, 0).numeric()];
  }
  for (const auto& [unused, size] : group_sizes) EXPECT_GE(size, 5u);
}

// ----------------------------------------------------------------- Summary

TEST(SummaryTest, StatisticsMatchKnownData) {
  Dataset data = SmallData();
  auto summary = SummarizeDataset(data);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->records, 4u);
  ASSERT_EQ(summary->attributes.size(), 3u);
  const AttributeSummary& q = summary->attributes[0];
  EXPECT_DOUBLE_EQ(q.min, 10.0);
  EXPECT_DOUBLE_EQ(q.max, 40.0);
  EXPECT_DOUBLE_EQ(q.mean, 25.0);
  EXPECT_DOUBLE_EQ(q.median, 25.0);
  EXPECT_EQ(q.distinct_values, 4u);
  EXPECT_EQ(summary->attributes[1].distinct_values, 2u);
  ASSERT_EQ(summary->qi_confidential_correlation.size(), 1u);
  EXPECT_NEAR(summary->qi_confidential_correlation[0], 1.0, 1e-9);
}

TEST(SummaryTest, EmptyDatasetRejected) {
  Dataset empty;
  EXPECT_FALSE(SummarizeDataset(empty).ok());
}

TEST(SummaryTest, FormatIncludesEveryAttribute) {
  auto summary = SummarizeDataset(SmallData());
  ASSERT_TRUE(summary.ok());
  std::string text = FormatSummary(*summary);
  EXPECT_NE(text.find("conf"), std::string::npos);
  EXPECT_NE(text.find("quasi-identifier"), std::string::npos);
  EXPECT_NE(text.find("records: 4"), std::string::npos);
}

TEST(SummaryTest, HistogramCountsSumToRecords) {
  Dataset data = MakeUniformDataset(500, 2, 3);
  auto histogram = ColumnHistogram(data, 0, 10);
  ASSERT_TRUE(histogram.ok());
  EXPECT_EQ(std::accumulate(histogram->begin(), histogram->end(), size_t{0}),
            500u);
}

TEST(SummaryTest, HistogramErrors) {
  Dataset data = SmallData();
  EXPECT_FALSE(ColumnHistogram(data, 9, 4).ok());
  EXPECT_FALSE(ColumnHistogram(data, 0, 0).ok());
}

TEST(SummaryTest, ConstantColumnHistogramLandsInFirstBin) {
  auto data = DatasetFromColumns({"x"}, {{5, 5, 5}}, {AttributeRole::kOther});
  ASSERT_TRUE(data.ok());
  auto histogram = ColumnHistogram(*data, 0, 4);
  ASSERT_TRUE(histogram.ok());
  EXPECT_EQ((*histogram)[0], 3u);
}

// ------------------------------------------- Ordinal confidential attribute

TEST(OrdinalConfidentialTest, AnonymizeHandlesOrdinalConfidential) {
  // Future-work item (iii): numeric QIs with an ordinal (rankable)
  // confidential attribute flow through the full pipeline; EMD operates
  // on the category ranks.
  Schema schema({
      Attribute{"age", AttributeType::kNumeric,
                AttributeRole::kQuasiIdentifier, {}},
      Attribute{"income", AttributeType::kNumeric,
                AttributeRole::kQuasiIdentifier, {}},
      Attribute{"severity", AttributeType::kOrdinal,
                AttributeRole::kConfidential,
                {"none", "mild", "moderate", "severe", "critical"}},
  });
  Dataset data(schema);
  Rng rng(33);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(data.Append({Value::Numeric(20 + rng.NextDouble() * 60),
                             Value::Numeric(rng.NextDouble() * 1e5),
                             Value::Categorical(static_cast<int32_t>(
                                 rng.NextBounded(5)))})
                    .ok());
  }
  AnonymizerOptions options;
  options.k = 4;
  options.t = 0.1;
  auto result = Anonymize(data, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->max_cluster_emd, 0.1 + 1e-9);
  auto verified = IsTClose(result->anonymized, 0.1);
  ASSERT_TRUE(verified.ok());
  EXPECT_TRUE(*verified);
  // Ordinal column released unchanged.
  EXPECT_EQ(result->anonymized.ColumnAsDouble(2), data.ColumnAsDouble(2));
}

}  // namespace
}  // namespace tcm
