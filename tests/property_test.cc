// Property-based invariant suite over the whole AlgorithmRegistry: for
// EVERY registered algorithm, on randomized datasets across seeds, k and
// t, the released table must pass the independent k-anonymity and
// t-closeness verifiers in src/privacy/ (the verifiers are the oracle —
// none of these tests knows how any algorithm works). Also pinned: the
// partition covers each record exactly once with clusters of >= k, the
// confidential column is released unchanged, and reruns are
// deterministic.

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/csv.h"
#include "data/generator.h"
#include "engine/registry.h"
#include "microagg/partition.h"
#include "privacy/kanonymity.h"
#include "privacy/tcloseness.h"

namespace tcm {
namespace {

// Canonical algorithm names: every registry entry minus the aliases
// (which share factories with their targets).
std::vector<std::string> CanonicalAlgorithms() {
  std::vector<std::string> names;
  for (const std::string& name : AlgorithmRegistry::BuiltIns().Names()) {
    if (name == "kanon" || name == "tclose") continue;  // aliases
    names.push_back(name);
  }
  return names;
}

struct PropertyCase {
  std::string dataset;
  Dataset data;
};

std::vector<PropertyCase> MakeDatasets(size_t n, uint64_t seed) {
  std::vector<PropertyCase> cases;
  cases.push_back({"uniform", MakeUniformDataset(n, 3, seed)});
  cases.push_back({"clustered", MakeClusteredDataset(n, 2, 4, seed + 100)});
  cases.push_back(
      {"adult", MakeAdultLike({.num_records = n, .seed = seed + 200})});
  return cases;
}

void CheckInvariants(const Dataset& data, const std::string& algorithm,
                     const AlgorithmParams& params,
                     const std::string& label) {
  auto result = RunAlgorithm(data, algorithm, params);
  ASSERT_TRUE(result.ok()) << label << ": " << result.status().ToString();

  // Partition: every record exactly once, clusters of >= k.
  EXPECT_TRUE(ValidatePartition(result->partition, data.NumRecords(),
                                params.k)
                  .ok())
      << label;

  // Release shape: same records, same schema.
  EXPECT_EQ(result->anonymized.NumRecords(), data.NumRecords()) << label;

  // The confidential attribute is released unchanged (only QIs are
  // masked) — t-closeness is about grouping, not perturbation.
  for (size_t conf : data.schema().ConfidentialIndices()) {
    for (size_t row = 0; row < data.NumRecords(); ++row) {
      ASSERT_TRUE(data.cell(row, conf) ==
                  result->anonymized.cell(row, conf))
          << label << ": confidential cell changed at row " << row;
    }
  }

  // The oracle: the independent verifiers must accept the release.
  auto k_ok = IsKAnonymous(result->anonymized, params.k);
  ASSERT_TRUE(k_ok.ok()) << label;
  EXPECT_TRUE(*k_ok) << label << ": release is not " << params.k
                     << "-anonymous";
  auto t_ok = IsTClose(result->anonymized, params.t);
  ASSERT_TRUE(t_ok.ok()) << label;
  EXPECT_TRUE(*t_ok) << label << ": release is not " << params.t
                     << "-close";
}

TEST(PropertyTest, RegistryCoversAllEightAlgorithms) {
  EXPECT_EQ(CanonicalAlgorithms().size(), 8u);
}

TEST(PropertyTest, EveryAlgorithmSatisfiesVerifiersAcrossSeedsKT) {
  for (const std::string& algorithm : CanonicalAlgorithms()) {
    for (uint64_t seed : {1u, 2u}) {
      for (const PropertyCase& pc : MakeDatasets(61, seed)) {
        for (size_t k : {2u, 5u}) {
          for (double t : {0.2, 0.4}) {
            AlgorithmParams params;
            params.k = k;
            params.t = t;
            params.seed = seed;
            CheckInvariants(pc.data, algorithm, params,
                            algorithm + "/" + pc.dataset + "/seed=" +
                                std::to_string(seed) + "/k=" +
                                std::to_string(k) + "/t=" +
                                std::to_string(t));
          }
        }
      }
    }
  }
}

TEST(PropertyTest, EveryAlgorithmSatisfiesVerifiersOnLargerOddSizes) {
  for (const std::string& algorithm : CanonicalAlgorithms()) {
    for (const PropertyCase& pc : MakeDatasets(163, 9)) {
      AlgorithmParams params;
      params.k = 4;
      params.t = 0.25;
      params.seed = 9;
      CheckInvariants(pc.data, algorithm, params,
                      algorithm + "/" + pc.dataset + "/n=163");
    }
  }
}

TEST(PropertyTest, TightTStillSatisfiesBothGuarantees) {
  // A very small t forces giant clusters; the guarantees must survive
  // the degenerate regime (paper-expected: one cluster is trivially
  // t-close).
  for (const std::string& algorithm : CanonicalAlgorithms()) {
    AlgorithmParams params;
    params.k = 3;
    params.t = 0.01;
    params.seed = 5;
    CheckInvariants(MakeUniformDataset(60, 2, 5), algorithm, params,
                    algorithm + "/tight-t");
  }
}

TEST(PropertyTest, RerunsAreDeterministic) {
  Dataset data = MakeClusteredDataset(80, 2, 3, 17);
  for (const std::string& algorithm : CanonicalAlgorithms()) {
    AlgorithmParams params;
    params.k = 3;
    params.t = 0.3;
    params.seed = 21;
    auto first = RunAlgorithm(data, algorithm, params);
    auto second = RunAlgorithm(data, algorithm, params);
    ASSERT_TRUE(first.ok() && second.ok()) << algorithm;
    EXPECT_EQ(WriteCsvString(first->anonymized),
              WriteCsvString(second->anonymized))
        << algorithm << ": rerun changed the release";
  }
}

}  // namespace
}  // namespace tcm
