#include <algorithm>
#include <clocale>
#include <cmath>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/timer.h"

namespace tcm {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::InvalidSpec("x").code(), StatusCode::kInvalidSpec);
  EXPECT_EQ(Status::UnknownAlgorithm("x").code(),
            StatusCode::kUnknownAlgorithm);
  EXPECT_EQ(Status::PrivacyViolation("x").code(),
            StatusCode::kPrivacyViolation);
  EXPECT_EQ(Status::InvalidArgument("boom").message(), "boom");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status status = Status::NotFound("missing thing");
  EXPECT_EQ(status.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return Status::Internal("inner"); };
  auto outer = [&]() -> Status {
    TCM_RETURN_IF_ERROR(fails());
    return Status::Ok();
  };
  EXPECT_EQ(outer().code(), StatusCode::kInternal);
}

TEST(StatusTest, ReturnIfErrorPassesThroughOk) {
  auto succeeds = []() -> Status { return Status::Ok(); };
  auto outer = [&]() -> Status {
    TCM_RETURN_IF_ERROR(succeeds());
    return Status::InvalidArgument("after");
  };
  EXPECT_EQ(outer().code(), StatusCode::kInvalidArgument);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidSpec), "InvalidSpec");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnknownAlgorithm),
               "UnknownAlgorithm");
  EXPECT_STREQ(StatusCodeName(StatusCode::kPrivacyViolation),
               "PrivacyViolation");
}

// ---------------------------------------------------------------- Result

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("gone"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ValueOrReturnsFallbackOnError) {
  Result<int> error(Status::Internal("x"));
  EXPECT_EQ(error.value_or(-1), -1);
  Result<int> good(7);
  EXPECT_EQ(good.value_or(-1), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("hello"));
  std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "hello");
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  auto inner = []() -> Result<int> { return Status::OutOfRange("bad"); };
  auto outer = [&]() -> Result<int> {
    TCM_ASSIGN_OR_RETURN(int v, inner());
    return v + 1;
  };
  EXPECT_EQ(outer().status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, AssignOrReturnAssignsValue) {
  auto inner = []() -> Result<int> { return 41; };
  auto outer = [&]() -> Result<int> {
    TCM_ASSIGN_OR_RETURN(int v, inner());
    return v + 1;
  };
  ASSERT_TRUE(outer().ok());
  EXPECT_EQ(outer().value(), 42);
}

TEST(ResultTest, ArrowOperatorReachesMembers) {
  Result<std::string> result(std::string("abc"));
  EXPECT_EQ(result->size(), 3u);
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 10; ++i) {
    if (a.Next() != b.Next()) ++differences;
  }
  EXPECT_GT(differences, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double value = rng.NextDouble();
    EXPECT_GE(value, 0.0);
    EXPECT_LT(value, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextBoundedCoversAllResidues) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t value = rng.NextInt(-3, 3);
    EXPECT_GE(value, -3);
    EXPECT_LE(value, 3);
    seen.insert(value);
  }
  EXPECT_EQ(seen.size(), 7u);  // all of -3..3 hit
}

TEST(RngTest, GaussianMomentsAreStandardNormal) {
  Rng rng(13);
  constexpr int kSamples = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  double mean = sum / kSamples;
  double var = sum_sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> items(50);
  std::iota(items.begin(), items.end(), 0);
  std::vector<int> shuffled = items;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, items);  // astronomically unlikely to match
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

// --------------------------------------------------------------- strings

TEST(StringsTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(SplitString("a,,b", ','),
            (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(SplitString("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(SplitString("one", ','), (std::vector<std::string>{"one"}));
  EXPECT_EQ(SplitString(",x,", ','),
            (std::vector<std::string>{"", "x", ""}));
}

TEST(StringsTest, JoinRoundTripsSplit) {
  std::vector<std::string> parts = {"a", "bb", "", "c"};
  EXPECT_EQ(SplitString(JoinStrings(parts, "|"), '|'), parts);
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y  "), "x y");
  EXPECT_EQ(StripWhitespace("\t\n"), "");
  EXPECT_EQ(StripWhitespace("abc"), "abc");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(StringsTest, ParseDoubleAcceptsValidNumbers) {
  double value = 0.0;
  EXPECT_TRUE(ParseDouble("3.5", &value));
  EXPECT_DOUBLE_EQ(value, 3.5);
  EXPECT_TRUE(ParseDouble(" -2e3 ", &value));
  EXPECT_DOUBLE_EQ(value, -2000.0);
  EXPECT_TRUE(ParseDouble("0", &value));
  EXPECT_DOUBLE_EQ(value, 0.0);
}

TEST(StringsTest, ParseDoubleRejectsGarbage) {
  double value = 0.0;
  EXPECT_FALSE(ParseDouble("", &value));
  EXPECT_FALSE(ParseDouble("abc", &value));
  EXPECT_FALSE(ParseDouble("1.5x", &value));
  EXPECT_FALSE(ParseDouble("  ", &value));
}

TEST(StringsTest, FormatDoubleTrimsZeros) {
  EXPECT_EQ(FormatDouble(3.0), "3");
  EXPECT_EQ(FormatDouble(0.25), "0.25");
  EXPECT_EQ(FormatDouble(12.5, 3), "12.5");
}

// Regression for the LC_NUMERIC bug: number parsing and formatting used
// to go through strtod/printf, which read the process locale — under a
// comma-decimal locale (de_DE, fr_FR, ...) "3.5" misparsed as 3 and
// 3.5 formatted as "3,5", corrupting CSV numerics, specs and JSON.
// Skipped (not failed) where no comma-decimal locale is installed; CI
// generates de_DE.UTF-8 so the regression stays live there.
TEST(StringsTest, NumbersAreLocaleIndependent) {
  const char* previous = std::setlocale(LC_ALL, nullptr);
  const std::string saved = previous != nullptr ? previous : "C";
  const char* comma_locale = nullptr;
  for (const char* name : {"de_DE.UTF-8", "de_DE.utf8", "fr_FR.UTF-8",
                           "fr_FR.utf8", "it_IT.UTF-8", "es_ES.UTF-8"}) {
    if (std::setlocale(LC_ALL, name) != nullptr &&
        std::localeconv()->decimal_point[0] == ',') {
      comma_locale = name;
      break;
    }
  }
  if (comma_locale == nullptr) {
    std::setlocale(LC_ALL, saved.c_str());
    GTEST_SKIP() << "no comma-decimal locale installed";
  }
  struct RestoreLocale {
    std::string saved;
    ~RestoreLocale() { std::setlocale(LC_ALL, saved.c_str()); }
  } restore{saved};

  double value = 0.0;
  EXPECT_TRUE(ParseDouble("3.5", &value)) << "under " << comma_locale;
  EXPECT_DOUBLE_EQ(value, 3.5);
  EXPECT_TRUE(ParseDouble("-2.25e-3", &value));
  EXPECT_DOUBLE_EQ(value, -0.00225);
  // A comma is never a decimal separator on the wire, whatever the host
  // locale says.
  EXPECT_FALSE(ParseDouble("3,5", &value));

  EXPECT_EQ(FormatDouble(3.5), "3.5");
  EXPECT_EQ(FormatDouble(0.125, 3), "0.125");
}

// ----------------------------------------------------------------- Timer

TEST(TimerTest, ElapsedIsNonNegativeAndMonotone) {
  WallTimer timer;
  double first = timer.ElapsedSeconds();
  double second = timer.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  EXPECT_GE(second, first);
}

TEST(TimerTest, RestartResetsClock) {
  WallTimer timer;
  // Burn a little time.
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + std::sqrt(static_cast<double>(i));
  }
  double before = timer.ElapsedSeconds();
  timer.Restart();
  EXPECT_LE(timer.ElapsedSeconds(), before);
}

}  // namespace
}  // namespace tcm
