// End-to-end integration tests: full custodian workflows across modules
// (generate -> anonymize -> verify -> persist), plus cross-algorithm
// consistency properties that only hold when every layer cooperates.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/mondrian.h"
#include "data/csv.h"
#include "data/generator.h"
#include "data/stats.h"
#include "microagg/aggregate.h"
#include "privacy/kanonymity.h"
#include "privacy/ldiversity.h"
#include "privacy/linkage.h"
#include "privacy/tcloseness.h"
#include "tclose/anonymizer.h"
#include "utility/info_loss.h"
#include "utility/query.h"
#include "utility/sse.h"

namespace tcm {
namespace {

TEST(IntegrationTest, AnonymizeVerifyPersistRoundTrip) {
  Dataset data = MakeMcdDataset();
  AnonymizerOptions options;
  options.k = 5;
  options.t = 0.1;
  auto result = Anonymize(data, options);
  ASSERT_TRUE(result.ok());

  // Verify.
  EXPECT_TRUE(IsKAnonymous(result->anonymized, 5).value());
  EXPECT_TRUE(IsTClose(result->anonymized, 0.1).value());

  // Persist and reload: guarantees must survive the round trip.
  const std::string path = ::testing::TempDir() + "/tcm_release.csv";
  ASSERT_TRUE(WriteCsv(result->anonymized, path).ok());
  auto reloaded = ReadCsv(path, result->anonymized.schema());
  ASSERT_TRUE(reloaded.ok());
  EXPECT_TRUE(IsKAnonymous(*reloaded, 5).value());
  EXPECT_TRUE(IsTClose(*reloaded, 0.1).value());
}

TEST(IntegrationTest, TClosenessImpliesWeakerModelsHold) {
  // A t-close release with small t forces diverse confidential values in
  // every class: distinct l-diversity >= 2 and p-sensitivity >= 2 follow.
  Dataset data = MakeMcdDataset();
  AnonymizerOptions options;
  options.k = 5;
  options.t = 0.05;
  options.algorithm = TCloseAlgorithm::kTClosenessFirst;
  auto result = Anonymize(data, options);
  ASSERT_TRUE(result.ok());
  auto diversity = EvaluateLDiversity(result->anonymized);
  ASSERT_TRUE(diversity.ok());
  EXPECT_GE(diversity->min_distinct_values, 2u);
}

TEST(IntegrationTest, StricterTCostsUtilityForEveryAlgorithm) {
  Dataset data = MakeMcdDataset();
  for (TCloseAlgorithm algorithm :
       {TCloseAlgorithm::kMicroaggregationMerge,
        TCloseAlgorithm::kKAnonymityFirst,
        TCloseAlgorithm::kTClosenessFirst}) {
    AnonymizerOptions options;
    options.k = 2;
    options.algorithm = algorithm;
    options.t = 0.25;
    auto loose = Anonymize(data, options);
    options.t = 0.02;
    auto strict = Anonymize(data, options);
    ASSERT_TRUE(loose.ok() && strict.ok());
    EXPECT_GE(strict->normalized_sse, loose->normalized_sse)
        << TCloseAlgorithmName(algorithm);
  }
}

TEST(IntegrationTest, LinkageRiskBoundedByOneOverK) {
  // k-anonymity's guarantee: re-identification probability <= 1/k. (The
  // empirical risk is not monotone in k — centroid placement dominates —
  // so only the bound is asserted.)
  Dataset data = MakeMcdDataset();
  AnonymizerOptions options;
  options.t = 0.25;
  options.algorithm = TCloseAlgorithm::kTClosenessFirst;
  for (size_t k : {2u, 10u, 30u}) {
    options.k = k;
    auto result = Anonymize(data, options);
    ASSERT_TRUE(result.ok());
    auto risk = EvaluateLinkageRisk(data, result->anonymized);
    ASSERT_TRUE(risk.ok());
    EXPECT_LE(risk->expected_reidentification_rate, 1.0 / k + 1e-9);
    EXPECT_GE(risk->expected_reidentification_rate, 0.0);
  }
}

TEST(IntegrationTest, PatientDischargePipeline) {
  PatientDischargeOptions gen;
  gen.num_records = 1500;
  Dataset data = MakePatientDischargeLike(gen);
  AnonymizerOptions options;
  options.k = 3;
  options.t = 0.1;
  options.algorithm = TCloseAlgorithm::kTClosenessFirst;
  auto result = Anonymize(data, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(IsKAnonymous(result->anonymized, 3).value());
  EXPECT_TRUE(IsTClose(result->anonymized, 0.1).value());

  // Aggregate utility survives: means preserved, queries still usable.
  auto stats = EvaluateStatisticsPreservation(data, result->anonymized);
  ASSERT_TRUE(stats.ok());
  for (const auto& attr : stats->attributes) {
    EXPECT_NEAR(attr.mean_absolute_error, 0.0, 1e-6) << attr.name;
  }
  auto queries = EvaluateRangeQueries(data, result->anonymized);
  ASSERT_TRUE(queries.ok());
  EXPECT_LT(queries->mean_relative_error, 1.0);
}

TEST(IntegrationTest, MondrianAndMicroaggregationBothVerify) {
  // The baseline path produces releases the same verifiers accept.
  Dataset data = MakeHcdDataset();
  QiSpace space(data);
  EmdCalculator emd(data);
  auto partition = MondrianTClosePartition(space, emd, 4, 0.15);
  ASSERT_TRUE(partition.ok());
  auto release = AggregatePartition(data, *partition);
  ASSERT_TRUE(release.ok());
  EXPECT_TRUE(IsKAnonymous(*release, 4).value());
  EXPECT_TRUE(IsTClose(*release, 0.15).value());
}

TEST(IntegrationTest, DeterministicEndToEnd) {
  Dataset data = MakeMcdDataset();
  AnonymizerOptions options;
  options.k = 5;
  options.t = 0.08;
  options.algorithm = TCloseAlgorithm::kKAnonymityFirst;
  auto a = Anonymize(data, options);
  auto b = Anonymize(data, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a->anonymized == b->anonymized);
  EXPECT_EQ(a->partition.clusters, b->partition.clusters);
}

TEST(IntegrationTest, HigherCorrelationCostsMoreUtilityForAlgorithm3) {
  // Fig. 6: Algorithm 3 improves less on HCD because cluster homogeneity
  // conflicts with the forced confidential spread. SSE(HCD) > SSE(MCD)
  // under identical settings (the QI marginals are identical by
  // construction; only the confidential coupling differs).
  AnonymizerOptions options;
  options.k = 2;
  options.t = 0.05;
  options.algorithm = TCloseAlgorithm::kTClosenessFirst;
  auto mcd = Anonymize(MakeMcdDataset(), options);
  auto hcd = Anonymize(MakeHcdDataset(), options);
  ASSERT_TRUE(mcd.ok() && hcd.ok());
  EXPECT_GT(hcd->normalized_sse, mcd->normalized_sse);
}

}  // namespace
}  // namespace tcm
