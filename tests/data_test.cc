#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/attribute.h"
#include "data/csv.h"
#include "data/dataset.h"
#include "data/generator.h"
#include "data/stats.h"
#include "data/value.h"

namespace tcm {
namespace {

// ----------------------------------------------------------------- Value

TEST(ValueTest, NumericRoundTrip) {
  Value v = Value::Numeric(3.25);
  EXPECT_TRUE(v.is_numeric());
  EXPECT_FALSE(v.is_categorical());
  EXPECT_DOUBLE_EQ(v.numeric(), 3.25);
  EXPECT_DOUBLE_EQ(v.AsDouble(), 3.25);
}

TEST(ValueTest, CategoricalRoundTrip) {
  Value v = Value::Categorical(7);
  EXPECT_TRUE(v.is_categorical());
  EXPECT_EQ(v.category(), 7);
  EXPECT_DOUBLE_EQ(v.AsDouble(), 7.0);
}

TEST(ValueTest, DefaultIsNumericZero) {
  Value v;
  EXPECT_TRUE(v.is_numeric());
  EXPECT_DOUBLE_EQ(v.numeric(), 0.0);
}

TEST(ValueTest, EqualityRespectsKind) {
  EXPECT_EQ(Value::Numeric(2.0), Value::Numeric(2.0));
  EXPECT_FALSE(Value::Numeric(2.0) == Value::Categorical(2));
  EXPECT_FALSE(Value::Numeric(2.0) == Value::Numeric(3.0));
  EXPECT_EQ(Value::Categorical(1), Value::Categorical(1));
}

// ---------------------------------------------------------------- Schema

Schema MakeTestSchema() {
  return Schema({
      Attribute{"id", AttributeType::kNumeric, AttributeRole::kIdentifier, {}},
      Attribute{"age", AttributeType::kNumeric,
                AttributeRole::kQuasiIdentifier, {}},
      Attribute{"diagnosis", AttributeType::kNominal,
                AttributeRole::kConfidential,
                {"flu", "cold", "covid"}},
  });
}

TEST(SchemaTest, IndexOfFindsAttributes) {
  Schema schema = MakeTestSchema();
  ASSERT_TRUE(schema.IndexOf("age").ok());
  EXPECT_EQ(schema.IndexOf("age").value(), 1u);
  EXPECT_EQ(schema.IndexOf("nope").status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, RoleQueries) {
  Schema schema = MakeTestSchema();
  EXPECT_EQ(schema.QuasiIdentifierIndices(), std::vector<size_t>{1});
  EXPECT_EQ(schema.ConfidentialIndices(), std::vector<size_t>{2});
  EXPECT_EQ(schema.IndicesWithRole(AttributeRole::kIdentifier),
            std::vector<size_t>{0});
  EXPECT_TRUE(schema.IndicesWithRole(AttributeRole::kOther).empty());
}

TEST(SchemaTest, WithRoleReplacesOneRole) {
  Schema schema = MakeTestSchema();
  auto updated = schema.WithRole("id", AttributeRole::kOther);
  ASSERT_TRUE(updated.ok());
  EXPECT_TRUE(updated->IndicesWithRole(AttributeRole::kIdentifier).empty());
  // Original untouched.
  EXPECT_EQ(schema.IndicesWithRole(AttributeRole::kIdentifier).size(), 1u);
}

TEST(SchemaTest, WithRoleUnknownNameFails) {
  Schema schema = MakeTestSchema();
  EXPECT_EQ(schema.WithRole("ghost", AttributeRole::kOther).status().code(),
            StatusCode::kNotFound);
}

TEST(SchemaTest, NamesAreStable) {
  EXPECT_STREQ(AttributeRoleName(AttributeRole::kQuasiIdentifier),
               "quasi-identifier");
  EXPECT_STREQ(AttributeTypeName(AttributeType::kNominal), "nominal");
}

// --------------------------------------------------------------- Dataset

TEST(DatasetTest, AppendValidatesArity) {
  Dataset data(MakeTestSchema());
  EXPECT_EQ(data.Append({Value::Numeric(1)}).code(),
            StatusCode::kInvalidArgument);
}

TEST(DatasetTest, AppendValidatesKinds) {
  Dataset data(MakeTestSchema());
  // diagnosis must be categorical.
  Status status = data.Append(
      {Value::Numeric(1), Value::Numeric(30), Value::Numeric(0)});
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

Dataset MakeSmallDataset() {
  Dataset data(MakeTestSchema());
  EXPECT_TRUE(data.Append({Value::Numeric(1), Value::Numeric(30),
                           Value::Categorical(0)})
                  .ok());
  EXPECT_TRUE(data.Append({Value::Numeric(2), Value::Numeric(40),
                           Value::Categorical(2)})
                  .ok());
  EXPECT_TRUE(data.Append({Value::Numeric(3), Value::Numeric(50),
                           Value::Categorical(1)})
                  .ok());
  return data;
}

TEST(DatasetTest, CellAccess) {
  Dataset data = MakeSmallDataset();
  EXPECT_EQ(data.NumRecords(), 3u);
  EXPECT_EQ(data.NumAttributes(), 3u);
  EXPECT_DOUBLE_EQ(data.cell(1, 1).numeric(), 40.0);
  EXPECT_EQ(data.cell(2, 2).category(), 1);
}

TEST(DatasetTest, SetCellValidates) {
  Dataset data = MakeSmallDataset();
  EXPECT_TRUE(data.SetCell(0, 1, Value::Numeric(33)).ok());
  EXPECT_DOUBLE_EQ(data.cell(0, 1).numeric(), 33.0);
  EXPECT_EQ(data.SetCell(0, 2, Value::Numeric(1)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(data.SetCell(9, 0, Value::Numeric(1)).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(data.SetCell(0, 9, Value::Numeric(1)).code(),
            StatusCode::kOutOfRange);
}

TEST(DatasetTest, ColumnAsDoubleCastsCategories) {
  Dataset data = MakeSmallDataset();
  EXPECT_EQ(data.ColumnAsDouble(1), (std::vector<double>{30, 40, 50}));
  EXPECT_EQ(data.ColumnAsDouble(2), (std::vector<double>{0, 2, 1}));
}

TEST(DatasetTest, ProjectSelectsColumns) {
  Dataset data = MakeSmallDataset();
  auto projected = data.Project({1, 2});
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected->NumAttributes(), 2u);
  EXPECT_EQ(projected->schema().at(0).name, "age");
  EXPECT_DOUBLE_EQ(projected->cell(2, 0).numeric(), 50.0);
  EXPECT_EQ(data.Project({5}).status().code(), StatusCode::kOutOfRange);
}

TEST(DatasetTest, SelectPicksRows) {
  Dataset data = MakeSmallDataset();
  auto selected = data.Select({2, 0});
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected->NumRecords(), 2u);
  EXPECT_DOUBLE_EQ(selected->cell(0, 1).numeric(), 50.0);
  EXPECT_DOUBLE_EQ(selected->cell(1, 1).numeric(), 30.0);
  EXPECT_EQ(data.Select({7}).status().code(), StatusCode::kOutOfRange);
}

TEST(DatasetTest, ReplaceSchemaChangesRolesOnly) {
  Dataset data = MakeSmallDataset();
  auto schema = data.schema().WithRole("age", AttributeRole::kOther);
  ASSERT_TRUE(schema.ok());
  EXPECT_TRUE(data.ReplaceSchema(std::move(schema).value()).ok());
  EXPECT_TRUE(data.schema().QuasiIdentifierIndices().empty());
  EXPECT_EQ(data.ReplaceSchema(Schema()).code(),
            StatusCode::kInvalidArgument);
}

TEST(DatasetTest, EqualityIsDeep) {
  Dataset a = MakeSmallDataset();
  Dataset b = MakeSmallDataset();
  EXPECT_TRUE(a == b);
  ASSERT_TRUE(b.SetCell(0, 1, Value::Numeric(31)).ok());
  EXPECT_FALSE(a == b);
}

TEST(DatasetFromColumnsTest, BuildsNumericDataset) {
  auto data = DatasetFromColumns(
      {"x", "y"}, {{1, 2, 3}, {4, 5, 6}},
      {AttributeRole::kQuasiIdentifier, AttributeRole::kConfidential});
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->NumRecords(), 3u);
  EXPECT_DOUBLE_EQ(data->cell(1, 1).numeric(), 5.0);
}

TEST(DatasetFromColumnsTest, RejectsMismatchedShapes) {
  EXPECT_FALSE(DatasetFromColumns({"x"}, {{1, 2}, {3, 4}},
                                  {AttributeRole::kOther})
                   .ok());
  EXPECT_FALSE(DatasetFromColumns({"x", "y"}, {{1, 2}, {3}},
                                  {AttributeRole::kOther,
                                   AttributeRole::kOther})
                   .ok());
  EXPECT_FALSE(DatasetFromColumns({}, {}, {}).ok());
}

// ----------------------------------------------------------------- Stats

TEST(StatsTest, MeanVarianceStdDev) {
  std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(Variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(StdDev(xs), 2.0);
}

TEST(StatsTest, EmptyInputsReturnZero) {
  std::vector<double> empty;
  EXPECT_DOUBLE_EQ(Mean(empty), 0.0);
  EXPECT_DOUBLE_EQ(Variance(empty), 0.0);
  EXPECT_DOUBLE_EQ(Min(empty), 0.0);
  EXPECT_DOUBLE_EQ(Max(empty), 0.0);
  EXPECT_DOUBLE_EQ(Range(empty), 0.0);
}

TEST(StatsTest, MinMaxRange) {
  std::vector<double> xs = {3, -1, 7, 2};
  EXPECT_DOUBLE_EQ(Min(xs), -1.0);
  EXPECT_DOUBLE_EQ(Max(xs), 7.0);
  EXPECT_DOUBLE_EQ(Range(xs), 8.0);
}

TEST(StatsTest, QuantileInterpolates) {
  std::vector<double> xs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Median({5, 1, 3}), 3.0);
}

TEST(StatsTest, PearsonCorrelationKnownCases) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  std::vector<double> ys = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(xs, ys), 1.0, 1e-12);
  std::vector<double> neg = {10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(xs, neg), -1.0, 1e-12);
  std::vector<double> constant = {3, 3, 3, 3, 3};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(xs, constant), 0.0);
}

TEST(StatsTest, SpearmanIsRankBased) {
  // A monotone nonlinear map preserves Spearman but not Pearson.
  std::vector<double> xs = {1, 2, 3, 4, 5};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(std::exp(x));
  EXPECT_NEAR(SpearmanCorrelation(xs, ys), 1.0, 1e-12);
  EXPECT_LT(PearsonCorrelation(xs, ys), 1.0);
}

TEST(StatsTest, AverageRanksHandleTies) {
  std::vector<double> xs = {10, 20, 20, 30};
  EXPECT_EQ(AverageRanks(xs), (std::vector<double>{1.0, 2.5, 2.5, 4.0}));
}

TEST(StatsTest, SortOrderIsStable) {
  std::vector<double> xs = {2, 1, 2, 0};
  EXPECT_EQ(SortOrder(xs), (std::vector<size_t>{3, 1, 0, 2}));
}

TEST(StatsTest, QiConfidentialCorrelationPerfectLinear) {
  // conf = qi exactly -> R = 1.
  auto data = DatasetFromColumns(
      {"q", "c"}, {{1, 2, 3, 4, 5}, {2, 4, 6, 8, 10}},
      {AttributeRole::kQuasiIdentifier, AttributeRole::kConfidential});
  ASSERT_TRUE(data.ok());
  EXPECT_NEAR(QiConfidentialCorrelation(*data), 1.0, 1e-9);
}

TEST(StatsTest, QiConfidentialCorrelationNoQiReturnsZero) {
  auto data = DatasetFromColumns(
      {"a", "c"}, {{1, 2, 3}, {3, 2, 1}},
      {AttributeRole::kOther, AttributeRole::kConfidential});
  ASSERT_TRUE(data.ok());
  EXPECT_DOUBLE_EQ(QiConfidentialCorrelation(*data), 0.0);
}

// ------------------------------------------------------------------- CSV

TEST(CsvTest, RoundTripNumericAndCategorical) {
  Dataset data = MakeSmallDataset();
  std::string text = WriteCsvString(data);
  auto parsed = ParseCsvString(text, data.schema());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(*parsed == data);
}

TEST(CsvTest, HeaderMismatchFails) {
  Dataset data = MakeSmallDataset();
  auto parsed = ParseCsvString("id,wrong,diagnosis\n", data.schema());
  EXPECT_EQ(parsed.status().code(), StatusCode::kIoError);
}

TEST(CsvTest, UnknownCategoryFails) {
  Dataset data = MakeSmallDataset();
  auto parsed =
      ParseCsvString("id,age,diagnosis\n1,30,plague\n", data.schema());
  EXPECT_EQ(parsed.status().code(), StatusCode::kIoError);
}

TEST(CsvTest, MalformedNumberFails) {
  Dataset data = MakeSmallDataset();
  auto parsed =
      ParseCsvString("id,age,diagnosis\n1,abc,flu\n", data.schema());
  EXPECT_EQ(parsed.status().code(), StatusCode::kIoError);
}

TEST(CsvTest, WrongFieldCountFails) {
  Dataset data = MakeSmallDataset();
  auto parsed = ParseCsvString("id,age,diagnosis\n1,30\n", data.schema());
  EXPECT_EQ(parsed.status().code(), StatusCode::kIoError);
}

TEST(CsvTest, EmptyInputFails) {
  Dataset data = MakeSmallDataset();
  EXPECT_EQ(ParseCsvString("", data.schema()).status().code(),
            StatusCode::kIoError);
}

TEST(CsvTest, BlankLinesAreSkipped) {
  Dataset data = MakeSmallDataset();
  auto parsed = ParseCsvString("id,age,diagnosis\n1,30,flu\n\n2,40,covid\n",
                               data.schema());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->NumRecords(), 2u);
}

TEST(CsvTest, FileRoundTrip) {
  Dataset data = MakeSmallDataset();
  const std::string path = ::testing::TempDir() + "/tcm_csv_test.csv";
  ASSERT_TRUE(WriteCsv(data, path).ok());
  auto loaded = ReadCsv(path, data.schema());
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(*loaded == data);
}

TEST(CsvTest, MissingFileFails) {
  Dataset data = MakeSmallDataset();
  EXPECT_EQ(ReadCsv("/nonexistent/x.csv", data.schema()).status().code(),
            StatusCode::kIoError);
}

TEST(CsvTest, ReadNumericCsvInfersSchema) {
  const std::string path = ::testing::TempDir() + "/tcm_numeric.csv";
  auto data = DatasetFromColumns({"a", "b"}, {{1, 2}, {3.5, 4.5}},
                                 {AttributeRole::kOther,
                                  AttributeRole::kOther});
  ASSERT_TRUE(data.ok());
  ASSERT_TRUE(WriteCsv(*data, path).ok());
  auto loaded = ReadNumericCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->NumAttributes(), 2u);
  EXPECT_DOUBLE_EQ(loaded->cell(1, 1).numeric(), 4.5);
}

// ------------------------------------------------------------ Generators

TEST(GeneratorTest, CensusLikeShapeAndRoles) {
  Dataset census = MakeCensusLike();
  EXPECT_EQ(census.NumRecords(), 1080u);
  EXPECT_EQ(census.NumAttributes(), 4u);
  EXPECT_EQ(census.schema().QuasiIdentifierIndices().size(), 2u);
  EXPECT_TRUE(census.schema().ConfidentialIndices().empty());
}

TEST(GeneratorTest, McdPromotesFedtax) {
  Dataset mcd = MakeMcdDataset();
  auto conf = mcd.schema().ConfidentialIndices();
  ASSERT_EQ(conf.size(), 1u);
  EXPECT_EQ(mcd.schema().at(conf[0]).name, "FEDTAX");
}

TEST(GeneratorTest, HcdPromotesFica) {
  Dataset hcd = MakeHcdDataset();
  auto conf = hcd.schema().ConfidentialIndices();
  ASSERT_EQ(conf.size(), 1u);
  EXPECT_EQ(hcd.schema().at(conf[0]).name, "FICA");
}

TEST(GeneratorTest, McdCorrelationNearPaperValue) {
  // Paper reports 0.52 for the MCD data set.
  EXPECT_NEAR(QiConfidentialCorrelation(MakeMcdDataset()), 0.52, 0.06);
}

TEST(GeneratorTest, HcdCorrelationNearPaperValue) {
  // Paper reports 0.92 for the HCD data set.
  EXPECT_NEAR(QiConfidentialCorrelation(MakeHcdDataset()), 0.92, 0.04);
}

TEST(GeneratorTest, PatientDischargeShape) {
  PatientDischargeOptions options;
  options.num_records = 2000;
  Dataset data = MakePatientDischargeLike(options);
  EXPECT_EQ(data.NumRecords(), 2000u);
  EXPECT_EQ(data.schema().QuasiIdentifierIndices().size(), 7u);
  EXPECT_EQ(data.schema().ConfidentialIndices().size(), 1u);
}

TEST(GeneratorTest, PatientDischargeCorrelationNearPaperValue) {
  // Paper reports 0.129; discretization adds noise, allow a wide band.
  PatientDischargeOptions options;
  options.num_records = 8000;
  EXPECT_NEAR(QiConfidentialCorrelation(MakePatientDischargeLike(options)),
              0.129, 0.06);
}

TEST(GeneratorTest, GeneratorsAreDeterministic) {
  CensusLikeOptions options;
  options.seed = 99;
  EXPECT_TRUE(MakeCensusLike(options) == MakeCensusLike(options));
  options.seed = 100;
  EXPECT_FALSE(MakeCensusLike(options) == MakeCensusLike({1080, 99}));
}

TEST(GeneratorTest, UniformDatasetShape) {
  Dataset data = MakeUniformDataset(100, 4, 1);
  EXPECT_EQ(data.NumRecords(), 100u);
  EXPECT_EQ(data.schema().QuasiIdentifierIndices().size(), 4u);
  EXPECT_EQ(data.schema().ConfidentialIndices().size(), 1u);
  for (size_t col = 0; col < data.NumAttributes(); ++col) {
    for (double v : data.ColumnAsDouble(col)) {
      EXPECT_GE(v, 0.0);
      EXPECT_LT(v, 1.0);
    }
  }
}

TEST(GeneratorTest, ClusteredDatasetHasRequestedShape) {
  Dataset data = MakeClusteredDataset(300, 2, 5, 3);
  EXPECT_EQ(data.NumRecords(), 300u);
  EXPECT_EQ(data.schema().QuasiIdentifierIndices().size(), 2u);
  EXPECT_EQ(data.schema().ConfidentialIndices().size(), 1u);
}

TEST(GeneratorTest, ClusteredConfidentialCorrelatesWithQis) {
  // The mode drives both QIs and the confidential value.
  Dataset data = MakeClusteredDataset(1000, 2, 4, 3);
  EXPECT_GT(QiConfidentialCorrelation(data), 0.3);
}

}  // namespace
}  // namespace tcm
