#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/dataset.h"
#include "data/generator.h"
#include "distance/categorical.h"
#include "distance/emd.h"
#include "distance/emd_bounds.h"
#include "distance/qi_space.h"

namespace tcm {
namespace {

// --------------------------------------------------------------- QiSpace

Dataset MakeGrid() {
  // Two QIs on different scales; range normalization must equalize them.
  auto data = DatasetFromColumns(
      {"x", "y", "c"},
      {{0, 10, 20, 30}, {0, 1000, 2000, 3000}, {1, 2, 3, 4}},
      {AttributeRole::kQuasiIdentifier, AttributeRole::kQuasiIdentifier,
       AttributeRole::kConfidential});
  return std::move(data).value();
}

TEST(QiSpaceTest, RangeNormalizationEqualizesScales) {
  QiSpace space(MakeGrid(), QiNormalization::kRange);
  // Records 0 and 3 are at opposite corners: distance sqrt(1^2 + 1^2).
  EXPECT_NEAR(space.Distance(0, 3), std::sqrt(2.0), 1e-12);
  // Adjacent records: each dimension moves 1/3.
  EXPECT_NEAR(space.Distance(0, 1), std::sqrt(2.0) / 3.0, 1e-12);
}

TEST(QiSpaceTest, StandardizeNormalizationHasUnitVariance) {
  QiSpace space(MakeGrid(), QiNormalization::kStandardize);
  for (size_t d = 0; d < space.num_dims(); ++d) {
    double sum = 0, sum_sq = 0;
    for (size_t row = 0; row < space.num_records(); ++row) {
      sum += space.point(row)[d];
      sum_sq += space.point(row)[d] * space.point(row)[d];
    }
    double mean = sum / space.num_records();
    EXPECT_NEAR(mean, 0.0, 1e-12);
    EXPECT_NEAR(sum_sq / space.num_records() - mean * mean, 1.0, 1e-9);
  }
}

TEST(QiSpaceTest, NoneNormalizationKeepsRawValues) {
  QiSpace space(MakeGrid(), QiNormalization::kNone);
  EXPECT_DOUBLE_EQ(space.point(1)[0], 10.0);
  EXPECT_DOUBLE_EQ(space.point(1)[1], 1000.0);
}

TEST(QiSpaceTest, CentroidIsMean) {
  QiSpace space(MakeGrid(), QiNormalization::kNone);
  std::vector<double> centroid = space.Centroid({0, 3});
  EXPECT_DOUBLE_EQ(centroid[0], 15.0);
  EXPECT_DOUBLE_EQ(centroid[1], 1500.0);
}

TEST(QiSpaceTest, GlobalCentroid) {
  QiSpace space(MakeGrid(), QiNormalization::kNone);
  EXPECT_DOUBLE_EQ(space.GlobalCentroid()[0], 15.0);
}

TEST(QiSpaceTest, FarthestAndClosestQueries) {
  QiSpace space(MakeGrid(), QiNormalization::kRange);
  std::vector<size_t> all = {0, 1, 2, 3};
  EXPECT_EQ(space.FarthestFromPoint(all, space.Centroid({0})), 3u);
  EXPECT_EQ(space.ClosestToRecord(all, 0), 1u);
  EXPECT_EQ(space.ClosestToRecord({0, 2, 3}, 0), 2u);
}

TEST(QiSpaceTest, NearestToRecordOrdersByDistance) {
  QiSpace space(MakeGrid(), QiNormalization::kRange);
  std::vector<size_t> nearest = space.NearestToRecord({0, 1, 2, 3}, 0, 3);
  EXPECT_EQ(nearest, (std::vector<size_t>{0, 1, 2}));
  // count larger than candidates clips.
  EXPECT_EQ(space.NearestToRecord({1, 2}, 0, 10).size(), 2u);
}

TEST(QiSpaceTest, ConstantColumnDoesNotDivideByZero) {
  auto data = DatasetFromColumns(
      {"x", "c"}, {{5, 5, 5}, {1, 2, 3}},
      {AttributeRole::kQuasiIdentifier, AttributeRole::kConfidential});
  ASSERT_TRUE(data.ok());
  QiSpace space(*data, QiNormalization::kRange);
  EXPECT_DOUBLE_EQ(space.Distance(0, 2), 0.0);
}

// ------------------------------------------------------------ OrderedEmd

TEST(OrderedEmdTest, IdenticalDistributionsAreZero) {
  EXPECT_DOUBLE_EQ(OrderedEmd({0.5, 0.5}, {0.5, 0.5}), 0.0);
  EXPECT_DOUBLE_EQ(OrderedEmd({1.0}, {1.0}), 0.0);
}

TEST(OrderedEmdTest, OppositeCornersAreMaximal) {
  // All mass moved across the full support: EMD = 1.
  EXPECT_DOUBLE_EQ(OrderedEmd({1, 0, 0}, {0, 0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(OrderedEmd({0, 0, 1}, {1, 0, 0}), 1.0);
}

TEST(OrderedEmdTest, KnownSmallCase) {
  // Mass 1 at bin 0 vs uniform over 3 bins:
  // cum diffs: 2/3, 1/3, 0 -> sum = 1, / (m-1) = 0.5.
  EXPECT_NEAR(OrderedEmd({1, 0, 0}, {1.0 / 3, 1.0 / 3, 1.0 / 3}), 0.5, 1e-12);
}

TEST(OrderedEmdTest, Symmetric) {
  std::vector<double> p = {0.1, 0.4, 0.2, 0.3};
  std::vector<double> q = {0.3, 0.1, 0.5, 0.1};
  EXPECT_DOUBLE_EQ(OrderedEmd(p, q), OrderedEmd(q, p));
}

TEST(OrderedEmdTest, TriangleInequalityOnRandomTriples) {
  Rng rng(21);
  for (int trial = 0; trial < 50; ++trial) {
    auto random_dist = [&rng] {
      std::vector<double> d(6);
      double total = 0;
      for (double& x : d) {
        x = rng.NextDouble();
        total += x;
      }
      for (double& x : d) x /= total;
      return d;
    };
    auto p = random_dist(), q = random_dist(), r = random_dist();
    EXPECT_LE(OrderedEmd(p, r), OrderedEmd(p, q) + OrderedEmd(q, r) + 1e-12);
  }
}

// --------------------------------------------------------- EmdCalculator

TEST(EmdCalculatorTest, WholeDatasetIsZeroClose) {
  EmdCalculator emd(std::vector<double>{5, 1, 3, 2, 4});
  std::vector<size_t> all = {0, 1, 2, 3, 4};
  EXPECT_NEAR(emd.ClusterEmd(all), 0.0, 1e-12);
}

TEST(EmdCalculatorTest, RanksFollowSortOrderWithStableTies) {
  EmdCalculator emd(std::vector<double>{5, 1, 3, 3, 4});
  EXPECT_EQ(emd.RankOf(1), 0u);
  EXPECT_EQ(emd.RankOf(2), 1u);  // first of the tied 3s
  EXPECT_EQ(emd.RankOf(3), 2u);  // second of the tied 3s
  EXPECT_EQ(emd.RankOf(4), 3u);
  EXPECT_EQ(emd.RankOf(0), 4u);
}

TEST(EmdCalculatorTest, SingletonExtremeRecord) {
  // Cluster = the largest record of n=4: mass 1 at the last bin.
  // cum diffs at bins 1..4: |0-1/4|+|0-2/4|+|0-3/4|+|1-1| = 1.5 -> /3 = 0.5.
  EmdCalculator emd(std::vector<double>{1, 2, 3, 4});
  EXPECT_NEAR(emd.ClusterEmd({3}), 0.5, 1e-12);
}

TEST(EmdCalculatorTest, FastMatchesReferenceOnDirectedCases) {
  EmdCalculator emd(std::vector<double>{1, 2, 3, 4, 5, 6, 7, 8});
  const std::vector<std::vector<size_t>> cases = {
      {0}, {7}, {0, 7}, {3, 4}, {0, 1, 2, 3}, {4, 5, 6, 7},
      {0, 2, 4, 6}, {1, 3, 5, 7}, {0, 1, 2, 3, 4, 5, 6, 7}};
  for (const auto& rows : cases) {
    EXPECT_NEAR(emd.ClusterEmd(rows), emd.ReferenceClusterEmd(rows), 1e-12);
  }
}

// Property sweep: the closed-form O(c) evaluation must agree with the
// O(n) cumulative-sum oracle on random clusters of every size, for several
// data set sizes, with ties present.
class EmdAgreementTest : public ::testing::TestWithParam<size_t> {};

TEST_P(EmdAgreementTest, FastMatchesReferenceOnRandomClusters) {
  const size_t n = GetParam();
  Rng rng(n * 977 + 1);
  // Values with duplicates to exercise tie handling.
  std::vector<double> values(n);
  for (double& v : values) {
    v = static_cast<double>(rng.NextBounded(n / 2 + 1));
  }
  EmdCalculator emd(values);
  std::vector<size_t> all(n);
  std::iota(all.begin(), all.end(), 0);
  for (int trial = 0; trial < 30; ++trial) {
    size_t size = 1 + rng.NextBounded(n);
    std::vector<size_t> rows = all;
    rng.Shuffle(rows);
    rows.resize(size);
    EXPECT_NEAR(emd.ClusterEmd(rows), emd.ReferenceClusterEmd(rows), 1e-10)
        << "n=" << n << " cluster size=" << size;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EmdAgreementTest,
                         ::testing::Values(2, 3, 5, 10, 37, 100, 256, 1080));

TEST(EmdCalculatorTest, DatasetConstructorUsesConfidentialColumn) {
  auto data = DatasetFromColumns(
      {"q", "c"}, {{9, 9, 9, 9}, {4, 3, 2, 1}},
      {AttributeRole::kQuasiIdentifier, AttributeRole::kConfidential});
  ASSERT_TRUE(data.ok());
  EmdCalculator emd(*data);
  EXPECT_EQ(emd.RankOf(0), 3u);  // c=4 is the largest
  EXPECT_EQ(emd.RankOf(3), 0u);
}

// ------------------------------------------------------------ EMD bounds

TEST(EmdBoundsTest, Proposition1FormulaValues) {
  // (n+k)(n-k) / (4 n (n-1) k) at n=12, k=3: 15*9/(4*12*11*3) = 135/1584.
  EXPECT_NEAR(MinClusterEmd(12, 3), 135.0 / 1584.0, 1e-12);
}

TEST(EmdBoundsTest, Proposition2FormulaValues) {
  // (n-k) / (2 (n-1) k) at n=12, k=3: 9/66.
  EXPECT_NEAR(MaxClusterEmdOnePerSubset(12, 3), 9.0 / 66.0, 1e-12);
}

TEST(EmdBoundsTest, FullClusterHasZeroBounds) {
  EXPECT_DOUBLE_EQ(MinClusterEmd(10, 10), 0.0);
  EXPECT_DOUBLE_EQ(MaxClusterEmdOnePerSubset(10, 10), 0.0);
}

TEST(EmdBoundsTest, Proposition1TightWhenSubsetSizeOdd) {
  // Medians-of-subsets cluster achieves the bound exactly when n/k is odd
  // (n=15, k=3, n/k=5). For even n/k the paper's continuous middle
  // (n/k+1)/2 is not an integer and the bound is strict — see the next
  // test.
  const size_t n = 15, k = 3;
  std::vector<double> values(n);
  std::iota(values.begin(), values.end(), 0.0);
  EmdCalculator emd(values);
  std::vector<size_t> medians;
  for (size_t i = 0; i < k; ++i) {
    medians.push_back(i * (n / k) + (n / k) / 2);  // 0-based exact median
  }
  EXPECT_NEAR(emd.ClusterEmd(medians), MinClusterEmd(n, k), 1e-12);
}

TEST(EmdBoundsTest, Proposition1StrictWhenSubsetSizeEven) {
  // n=12, k=3, n/k=4: best integral cluster (lower medians) stays above
  // the continuous bound but within 1 rank-step of it.
  const size_t n = 12, k = 3;
  std::vector<double> values(n);
  std::iota(values.begin(), values.end(), 0.0);
  EmdCalculator emd(values);
  std::vector<size_t> medians;
  for (size_t i = 0; i < k; ++i) {
    medians.push_back(i * (n / k) + (n / k - 1) / 2);
  }
  double achieved = emd.ClusterEmd(medians);
  EXPECT_GT(achieved, MinClusterEmd(n, k));
  EXPECT_LT(achieved, MinClusterEmd(n, k) + 1.0 / (n - 1));
}

TEST(EmdBoundsTest, Proposition1IsALowerBoundOnRandomClusters) {
  const size_t n = 60;
  std::vector<double> values(n);
  std::iota(values.begin(), values.end(), 0.0);
  EmdCalculator emd(values);
  Rng rng(5);
  for (size_t k : {2, 3, 5, 6, 10}) {
    for (int trial = 0; trial < 20; ++trial) {
      std::vector<size_t> all(n);
      std::iota(all.begin(), all.end(), 0);
      rng.Shuffle(all);
      all.resize(k);
      EXPECT_GE(emd.ClusterEmd(all), MinClusterEmd(n, k) - 1e-12);
    }
  }
}

TEST(EmdBoundsTest, Proposition2TightForLowestPerSubsetCluster) {
  // Cluster of the minimum of each subset attains the bound exactly.
  const size_t n = 20, k = 4;
  std::vector<double> values(n);
  std::iota(values.begin(), values.end(), 0.0);
  EmdCalculator emd(values);
  std::vector<size_t> lows;
  for (size_t i = 0; i < k; ++i) lows.push_back(i * (n / k));
  EXPECT_NEAR(emd.ClusterEmd(lows), MaxClusterEmdOnePerSubset(n, k), 1e-12);
}

TEST(EmdBoundsTest, Proposition2BoundsAllOnePerSubsetClusters) {
  const size_t n = 24;
  std::vector<double> values(n);
  std::iota(values.begin(), values.end(), 0.0);
  EmdCalculator emd(values);
  Rng rng(6);
  for (size_t k : {2, 3, 4, 6, 8}) {
    double bound = MaxClusterEmdOnePerSubset(n, k);
    for (int trial = 0; trial < 30; ++trial) {
      std::vector<size_t> cluster;
      for (size_t i = 0; i < k; ++i) {
        cluster.push_back(i * (n / k) + rng.NextBounded(n / k));
      }
      EXPECT_LE(emd.ClusterEmd(cluster), bound + 1e-12);
    }
  }
}

TEST(EmdBoundsTest, RequiredClusterSizeInvertsProposition2) {
  // For the returned k*, the Prop. 2 bound must be <= t, and k*-1 (when
  // > k) must violate it: k* is minimal.
  const size_t n = 1080;
  for (double t : {0.01, 0.05, 0.09, 0.13, 0.17, 0.21, 0.25}) {
    for (size_t k : {2u, 5u, 10u}) {
      size_t k_star = RequiredClusterSize(n, k, t);
      EXPECT_LE(MaxClusterEmdOnePerSubset(n, k_star), t + 1e-12);
      if (k_star > k) {
        EXPECT_GT(MaxClusterEmdOnePerSubset(n, k_star - 1), t);
      }
    }
  }
}

TEST(EmdBoundsTest, RequiredClusterSizeRespectsK) {
  EXPECT_EQ(RequiredClusterSize(1080, 30, 0.25), 30u);
  EXPECT_EQ(RequiredClusterSize(1080, 2, 0.0), 1080u);
}

TEST(EmdBoundsTest, PaperTable3ClusterSizes) {
  // Table 3 reports the actual cluster sizes of Algorithm 3 for n=1080,
  // k=2: 49 at t=0.01 (Eq. 3 gives 48, Eq. 4 bumps it to 49 because
  // 1080 mod 48 = 24 leftovers exceed the 22 clusters), then 10, 6, 4, 3,
  // 3, 2 — all divisors of 1080, unchanged by Eq. 4.
  const size_t n = 1080;
  auto effective = [n](double t) {
    return AdjustClusterSizeForRemainder(n, RequiredClusterSize(n, 2, t));
  };
  EXPECT_EQ(RequiredClusterSize(n, 2, 0.01), 48u);
  EXPECT_EQ(effective(0.01), 49u);
  EXPECT_EQ(effective(0.05), 10u);
  EXPECT_EQ(effective(0.09), 6u);
  EXPECT_EQ(effective(0.13), 4u);
  EXPECT_EQ(effective(0.17), 3u);
  EXPECT_EQ(effective(0.21), 3u);
  EXPECT_EQ(effective(0.25), 2u);
}

TEST(EmdBoundsTest, AdjustClusterSizeInvariant) {
  for (size_t n : {10u, 47u, 100u, 1080u, 1081u, 23435u}) {
    for (size_t k = 1; k <= std::min<size_t>(n, 40); ++k) {
      size_t adjusted = AdjustClusterSizeForRemainder(n, k);
      EXPECT_GE(adjusted, k);
      EXPECT_LE(adjusted, n);
      if (adjusted < n) {
        EXPECT_LE(n % adjusted, n / adjusted)
            << "n=" << n << " k=" << k << " adjusted=" << adjusted;
      }
    }
  }
}

TEST(EmdBoundsTest, AdjustClusterSizeNoChangeWhenDivisible) {
  EXPECT_EQ(AdjustClusterSizeForRemainder(1080, 10), 10u);
  EXPECT_EQ(AdjustClusterSizeForRemainder(1080, 30), 30u);
}

// ------------------------------------------------------------ Categorical

TEST(CategoricalTest, OrdinalEmdMatchesNumericFormula) {
  // Counts (2,0,0) vs (0,0,2): all mass across 2 steps of 2 bins -> 1.
  EXPECT_DOUBLE_EQ(OrdinalCategoricalEmd({2, 0, 0}, {0, 0, 2}), 1.0);
  EXPECT_DOUBLE_EQ(OrdinalCategoricalEmd({1, 1}, {1, 1}), 0.0);
}

TEST(CategoricalTest, OrdinalEmdSeesDistanceNominalDoesNot) {
  // Moving mass one bin vs two bins: ordinal distinguishes, nominal not.
  double near = OrdinalCategoricalEmd({1, 0, 0}, {0, 1, 0});
  double far = OrdinalCategoricalEmd({1, 0, 0}, {0, 0, 1});
  EXPECT_LT(near, far);
  EXPECT_DOUBLE_EQ(NominalCategoricalEmd({1, 0, 0}, {0, 1, 0}),
                   NominalCategoricalEmd({1, 0, 0}, {0, 0, 1}));
}

TEST(CategoricalTest, NominalEmdIsTotalVariation) {
  EXPECT_DOUBLE_EQ(NominalCategoricalEmd({1, 1, 0}, {0, 1, 1}), 0.5);
  EXPECT_DOUBLE_EQ(NominalCategoricalEmd({3, 1}, {3, 1}), 0.0);
  EXPECT_DOUBLE_EQ(NominalCategoricalEmd({4, 0}, {0, 4}), 1.0);
}

TEST(CategoricalTest, JensenShannonProperties) {
  EXPECT_DOUBLE_EQ(JensenShannonDivergence({2, 2}, {2, 2}), 0.0);
  double jsd = JensenShannonDivergence({4, 0}, {0, 4});
  EXPECT_NEAR(jsd, std::log(2.0), 1e-12);  // maximal for disjoint support
  EXPECT_DOUBLE_EQ(JensenShannonDivergence({1, 3}, {3, 1}),
                   JensenShannonDivergence({3, 1}, {1, 3}));
}

}  // namespace
}  // namespace tcm
