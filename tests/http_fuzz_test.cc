// Robustness wall for the HTTP front (serve/http.h), in the style of
// json_fuzz_test.cc: constructed adversarial requests plus a seeded
// mutation corpus over a valid POST /jobs request, all thrown at a REAL
// JobServer over real sockets. The front's contract under attack is
// narrow and absolute — answer with a status or close the connection,
// never crash, hang past its own deadlines, or stop serving well-formed
// clients afterwards. Mutations are deterministic (fixed seeds), so a
// failure here reproduces exactly.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/http.h"
#include "tcm/api.h"

namespace tcm {
namespace {

// A deliberately forgiving raw client: sends best-effort (the server
// may rightfully close mid-write), reads with its own receive timeout
// so a test can never hang on a silent peer.
class FuzzClient {
 public:
  explicit FuzzClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    timeval tv{};
    tv.tv_sec = 10;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&address),
                  sizeof(address)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~FuzzClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  FuzzClient(const FuzzClient&) = delete;
  FuzzClient& operator=(const FuzzClient&) = delete;

  bool connected() const { return fd_ >= 0; }

  void Send(const std::string& bytes) {
    size_t sent = 0;
    while (fd_ >= 0 && sent < bytes.size()) {
      ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                         MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return;  // peer closed on us: a legal outcome
      sent += static_cast<size_t>(n);
    }
  }

  // Drains whatever the server says until it closes or the receive
  // timeout trips. Returns the raw bytes (possibly empty).
  std::string DrainAll() {
    std::string out;
    char chunk[4096];
    while (fd_ >= 0) {
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      out.append(chunk, static_cast<size_t>(n));
      if (out.size() > (64u << 20)) break;  // runaway guard
    }
    return out;
  }

 private:
  int fd_ = -1;
};

// The liveness probe between attacks: a fresh, well-formed request must
// still be answered 200. This is the real assertion of every fuzz case
// — whatever the garbage did, the server still serves.
void ExpectServerHealthy(const JobServer& server) {
  FuzzClient client(server.http_port());
  ASSERT_TRUE(client.connected());
  client.Send("GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n"
              "\r\n");
  const std::string response = client.DrainAll();
  ASSERT_GE(response.size(), 12u) << "no response to a valid request";
  EXPECT_EQ(response.compare(0, 12, "HTTP/1.1 200"), 0)
      << response.substr(0, 64);
}

// A response, when present, must start with a status line of this
// front's one version and a status it actually emits.
void ExpectWellFormedIfAny(const std::string& response) {
  if (response.empty()) return;  // closing without a word is legal
  ASSERT_GE(response.size(), 12u) << response;
  EXPECT_EQ(response.compare(0, 9, "HTTP/1.1 "), 0)
      << response.substr(0, 64);
  const int status = std::atoi(response.c_str() + 9);
  EXPECT_TRUE((status >= 100 && status <= 101) ||
              (status >= 200 && status <= 299) ||
              (status >= 400 && status <= 599))
      << status;
}

std::string SeedRequest() {
  JobSpec spec;
  spec.input.kind = InputKind::kSynthetic;
  spec.input.generator = "uniform";
  spec.input.rows = 80;
  spec.input.seed = 9;
  spec.algorithm.name = "tclose_first";
  spec.algorithm.k = 5;
  spec.algorithm.t = 0.3;
  const std::string body = spec.ToJson().Write(-1);
  return "POST /jobs HTTP/1.1\r\nHost: 127.0.0.1\r\nContent-Length: " +
         std::to_string(body.size()) + "\r\n\r\n" + body;
}

// One structural mutation (mirrors json_fuzz's operator set, plus the
// bytes HTTP framing cares about).
std::string Mutate(const std::string& text, std::mt19937* rng) {
  std::string out = text;
  std::uniform_int_distribution<int> op_dist(0, 6);
  auto position = [&](size_t size) {
    return std::uniform_int_distribution<size_t>(0, size)(*rng);
  };
  switch (op_dist(*rng)) {
    case 0: {  // truncate (the dropped-connection shape)
      if (!out.empty()) out.resize(position(out.size() - 1));
      break;
    }
    case 1: {  // flip one byte
      if (!out.empty()) {
        out[position(out.size() - 1)] = static_cast<char>(
            std::uniform_int_distribution<int>(0, 255)(*rng));
      }
      break;
    }
    case 2: {  // insert a random byte
      out.insert(out.begin() + static_cast<ptrdiff_t>(position(out.size())),
                 static_cast<char>(
                     std::uniform_int_distribution<int>(0, 255)(*rng)));
      break;
    }
    case 3: {  // erase a span
      if (!out.empty()) {
        size_t begin = position(out.size() - 1);
        size_t length = 1 + position(std::min<size_t>(32, out.size() -
                                                              begin - 1));
        out.erase(begin, length);
      }
      break;
    }
    case 4: {  // duplicate a slice somewhere else
      if (!out.empty()) {
        size_t begin = position(out.size() - 1);
        size_t length = 1 + position(std::min<size_t>(16, out.size() -
                                                              begin - 1));
        out.insert(position(out.size()), out.substr(begin, length));
      }
      break;
    }
    case 5: {  // swap two bytes
      if (out.size() >= 2) {
        std::swap(out[position(out.size() - 1)],
                  out[position(out.size() - 1)]);
      }
      break;
    }
    default: {  // splice framing characters where they hurt most
      const char structural[] = {'\r', '\n', ':',  ' ', '/', '?',
                                 '{',  '}',  '\\', '"', '\0'};
      out.insert(out.begin() + static_cast<ptrdiff_t>(position(out.size())),
                 structural[std::uniform_int_distribution<size_t>(
                     0, sizeof(structural) - 1)(*rng)]);
      break;
    }
  }
  return out;
}

// One hardened server shared by every case in a test: modest limits, a
// short request deadline and a short idle reap, so every attack — a
// stalling mutation or a completed request left idling on keep-alive —
// resolves within milliseconds, never minutes.
ServeOptions FuzzOptions() {
  ServeOptions options;
  options.threads = 2;
  options.enable_http = true;
  options.http_limits.max_head_bytes = 16u << 10;
  options.http_limits.max_body_bytes = 256u << 10;
  options.http_limits.request_deadline_ms = 300;
  options.idle_timeout_ms = 200;
  return options;
}

TEST(HttpFuzzTest, ConstructedAdversarialRequests) {
  JobServer server(FuzzOptions());
  ASSERT_TRUE(server.Start().ok());

  const std::string corpus[] = {
      "",
      "\r\n\r\n",
      "\r\n\r\n\r\n\r\n",
      "GET\r\n\r\n",
      "GET /healthz\r\n\r\n",
      "GET /healthz HTTP/1.1 extra\r\n\r\n",
      "GET  /healthz  HTTP/1.1\r\n\r\n",
      " GET /healthz HTTP/1.1\r\n\r\n",
      "get /healthz HTTP/1.1\r\n\r\n",
      "GET healthz HTTP/1.1\r\n\r\n",
      "GET /healthz HTTP/9.9\r\n\r\n",
      "GET /healthz SPDY/3\r\n\r\n",
      "GET /healthz HTTP/1.1\r\nNoColonHere\r\n\r\n",
      "GET /healthz HTTP/1.1\r\n: empty-name\r\n\r\n",
      "GET /healthz HTTP/1.1\r\nBad Header: x\r\n\r\n",
      "GET /healthz HTTP/1.1\r\nX: a\r\n folded\r\n\r\n",
      "POST /jobs HTTP/1.1\r\nContent-Length: -1\r\n\r\n",
      "POST /jobs HTTP/1.1\r\nContent-Length: 1e3\r\n\r\n",
      "POST /jobs HTTP/1.1\r\nContent-Length: 99999999999999999999\r\n\r\n",
      "POST /jobs HTTP/1.1\r\nContent-Length: 0x10\r\n\r\n",
      "POST /jobs HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}",
      "POST /jobs HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "0\r\n\r\n",
      "OPTIONS * HTTP/1.1\r\n\r\n",
      "CONNECT example.com:443 HTTP/1.1\r\n\r\n",
      "GET http://example.com/ HTTP/1.1\r\n\r\n",
      "GET /../../etc/passwd HTTP/1.1\r\n\r\n",
      "GET /jobs/18446744073709551616 HTTP/1.1\r\n\r\n",  // > uint64
      "GET /jobs/00000000000000000003 HTTP/1.1\r\n\r\n",  // 20 digits
      "GET /jobs/-1 HTTP/1.1\r\n\r\n",
      "GET /jobs/3x HTTP/1.1\r\n\r\n",
      "GET /jobs/ HTTP/1.1\r\n\r\n",
      std::string("GET /\0null HTTP/1.1\r\n\r\n", 24),
      "GET /healthz HTTP/1.1\nHost: bare-lf\n\n",
  };
  for (const std::string& attack : corpus) {
    FuzzClient client(server.http_port());
    ASSERT_TRUE(client.connected());
    client.Send(attack);
    ExpectWellFormedIfAny(client.DrainAll());
  }
  ExpectServerHealthy(server);
}

TEST(HttpFuzzTest, MutatedRequestsNeverWedgeTheServer) {
  JobServer server(FuzzOptions());
  ASSERT_TRUE(server.Start().ok());

  const std::string seed = SeedRequest();
  std::mt19937 rng(0x7712C0DEu);
  for (int i = 0; i < 100; ++i) {
    std::string mutated = Mutate(seed, &rng);
    const int extra = std::uniform_int_distribution<int>(0, 2)(rng);
    for (int j = 0; j < extra; ++j) mutated = Mutate(mutated, &rng);
    FuzzClient client(server.http_port());
    ASSERT_TRUE(client.connected());
    client.Send(mutated);
    ExpectWellFormedIfAny(client.DrainAll());
  }
  ExpectServerHealthy(server);
}

TEST(HttpFuzzTest, TruncationLadderIsTotal) {
  JobServer server(FuzzOptions());
  ASSERT_TRUE(server.Start().ok());

  // Every prefix of a valid request — the exact shape of a connection
  // dropped mid-request — must be answered or dropped cleanly.
  const std::string seed = SeedRequest();
  const size_t step = seed.size() < 64 ? 1 : seed.size() / 64;
  for (size_t cut = 0; cut < seed.size(); cut += step) {
    FuzzClient client(server.http_port());
    ASSERT_TRUE(client.connected());
    client.Send(seed.substr(0, cut));
    ExpectWellFormedIfAny(client.DrainAll());
  }
  ExpectServerHealthy(server);
}

TEST(HttpFuzzTest, GarbageFloodsAreBoundedByTheHeadLimit) {
  JobServer server(FuzzOptions());
  ASSERT_TRUE(server.Start().ok());

  // A flood with no request structure at all: the head bound (431) or a
  // drop must end it; memory stays bounded by max_head_bytes.
  std::mt19937 rng(0xFEEDFACEu);
  std::string garbage(256u << 10, '\0');
  for (char& c : garbage) {
    c = static_cast<char>(std::uniform_int_distribution<int>(1, 255)(rng));
  }
  FuzzClient client(server.http_port());
  ASSERT_TRUE(client.connected());
  client.Send(garbage);
  ExpectWellFormedIfAny(client.DrainAll());
  ExpectServerHealthy(server);
}

}  // namespace
}  // namespace tcm
