// Tests for the public Job API (tcm/api.h): JobSpec JSON round-trips and
// the strict rejection corpus, the structured error taxonomy, RunJob
// lowering onto every execution mode, and — the redesign's anchor — the
// golden-release byte pins re-expressed as JobSpecs (in-memory at 1 and
// 4 threads, streamed single- and multi-window) matching the committed
// bytes under tests/golden/ exactly.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/csv.h"
#include "data/generator.h"
#include "engine/registry.h"
#include "tcm/api.h"

#ifndef TCM_GOLDEN_DIR
#error "TCM_GOLDEN_DIR must point at tests/golden"
#endif

namespace tcm {
namespace {

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string GoldenBytes(const std::string& name) {
  return ReadFileBytes(std::string(TCM_GOLDEN_DIR) + "/" + name);
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

// --- JobSpec JSON round-trip -------------------------------------------

TEST(JobSpecJsonTest, FullSpecRoundTrips) {
  JobSpec spec;
  spec.input.kind = InputKind::kCsvPath;
  spec.input.path = "data.csv";
  spec.roles.quasi_identifiers = {"age", "zipcode"};
  spec.roles.confidential = "salary";
  spec.algorithm.name = "merge";
  spec.algorithm.k = 7;
  spec.algorithm.t = 0.25;
  spec.algorithm.seed = 123;
  spec.execution.mode = ExecutionMode::kStreaming;
  spec.execution.threads = 4;
  spec.execution.shard_size = 512;
  spec.execution.max_resident_rows = 5000;
  spec.execution.merge_strategy = MergeStrategy::kHierarchical;
  spec.execution.overlap_io = true;
  spec.verify = false;
  spec.output.release_path = "out.csv";
  spec.output.report_path = "report.json";

  auto parsed = JobSpec::FromJsonText(spec.ToJsonText());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->ToJsonText(), spec.ToJsonText());
  EXPECT_EQ(parsed->input.kind, InputKind::kCsvPath);
  EXPECT_EQ(parsed->input.path, "data.csv");
  EXPECT_EQ(parsed->roles.quasi_identifiers, spec.roles.quasi_identifiers);
  EXPECT_EQ(parsed->roles.confidential, "salary");
  EXPECT_EQ(parsed->algorithm.name, "merge");
  EXPECT_EQ(parsed->algorithm.k, 7u);
  EXPECT_DOUBLE_EQ(parsed->algorithm.t, 0.25);
  EXPECT_EQ(parsed->algorithm.seed, 123u);
  EXPECT_EQ(parsed->execution.mode, ExecutionMode::kStreaming);
  EXPECT_EQ(parsed->execution.threads, 4u);
  EXPECT_EQ(parsed->execution.shard_size, 512u);
  EXPECT_EQ(parsed->execution.max_resident_rows, 5000u);
  EXPECT_EQ(parsed->execution.merge_strategy, MergeStrategy::kHierarchical);
  EXPECT_TRUE(parsed->execution.overlap_io);
  EXPECT_FALSE(parsed->verify);
  EXPECT_EQ(parsed->output.release_path, "out.csv");
  EXPECT_EQ(parsed->output.report_path, "report.json");
}

TEST(JobSpecJsonTest, SyntheticAndSweepRoundTrip) {
  JobSpec spec;
  spec.input.kind = InputKind::kSynthetic;
  spec.input.generator = "clustered";
  spec.input.rows = 400;
  spec.input.quasi_identifiers = 3;
  spec.input.modes = 5;
  spec.input.seed = 31;
  spec.sweep.emplace();
  spec.sweep->algorithms = {"merge", "tclose_first"};
  spec.sweep->ks = {3, 5};
  spec.sweep->ts = {0.1, 0.2};

  auto parsed = JobSpec::FromJsonText(spec.ToJsonText());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->ToJsonText(), spec.ToJsonText());
  ASSERT_TRUE(parsed->sweep.has_value());
  EXPECT_EQ(parsed->sweep->algorithms, spec.sweep->algorithms);
  EXPECT_EQ(parsed->sweep->ks, spec.sweep->ks);
  EXPECT_EQ(parsed->sweep->ts, spec.sweep->ts);
  EXPECT_EQ(parsed->input.generator, "clustered");
  EXPECT_EQ(parsed->input.rows, 400u);
  EXPECT_EQ(parsed->input.modes, 5u);
}

TEST(JobSpecJsonTest, MinimalDocumentGetsDefaults) {
  auto parsed = JobSpec::FromJsonText(
      R"({"input": {"kind": "synthetic"}})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->version, JobSpec::kVersion);
  EXPECT_EQ(parsed->algorithm.name, "tclose_first");
  EXPECT_EQ(parsed->algorithm.k, 5u);
  EXPECT_DOUBLE_EQ(parsed->algorithm.t, 0.1);
  EXPECT_EQ(parsed->execution.mode, ExecutionMode::kInMemory);
  EXPECT_TRUE(parsed->verify);
}

// --- rejection corpus ---------------------------------------------------

struct Rejection {
  const char* text;
  const char* needle;  // must appear in the error message
};

TEST(JobSpecJsonTest, RejectionCorpus) {
  const Rejection corpus[] = {
      // Unknown keys at every level.
      {R"({"inptu": {}})", "unknown key \"inptu\""},
      {R"({"input": {"kind": "synthetic", "pathh": "x"}})",
       "unknown key \"pathh\""},
      {R"({"input": {"kind": "csv", "generator": "uniform", "path": "x"}})",
       "unknown key \"generator\""},
      {R"({"algorithm": {"name": "merge", "kk": 3}})", "unknown key \"kk\""},
      {R"({"execution": {"modes": "in_memory"}})", "unknown key \"modes\""},
      {R"({"roles": {"qi": ["a"]}})", "unknown key \"qi\""},
      {R"({"output": {"path": "x"}})", "unknown key \"path\""},
      {R"({"sweep": {"k": [3]}})", "unknown key \"k\""},
      // Wrong types.
      {R"({"algorithm": {"k": "five"}})", "algorithm.k"},
      {R"({"algorithm": {"k": 2.5}})", "algorithm.k"},
      {R"({"algorithm": {"k": -3}})", "algorithm.k"},
      {R"({"algorithm": {"t": "wide"}})", "algorithm.t"},
      {R"({"algorithm": {"name": 7}})", "algorithm.name"},
      {R"({"verify": "yes"})", "verify"},
      {R"({"roles": {"quasi_identifiers": "a,b"}})",
       "array of strings"},
      {R"({"roles": {"quasi_identifiers": [1, 2]}})", "expected a string"},
      {R"({"input": "data.csv"})", "must be a JSON object"},
      {R"({"execution": {"threads": [2]}})", "execution.threads"},
      {R"({"sweep": {"ks": [0.5]}})", "sweep.ks"},
      {R"({"sweep": {"ts": ["x"]}})", "sweep.ts"},
      // Out-of-range / semantic.
      {R"({"input": {"kind": "synthetic"}, "algorithm": {"k": 0}})",
       "algorithm.k must be at least 1"},
      {R"({"input": {"kind": "synthetic"}, "sweep": {"ks": [0]}})",
       "sweep.ks entries"},
      {R"({"version": 2})", "unsupported job spec version 2"},
      {R"({"version": "one"})", "version"},
      {R"({"input": {"kind": "laser"}})", "input.kind"},
      {R"({"input": {"kind": "dataset"}})", "programmatic-only"},
      {R"({"input": {"kind": "synthetic", "generator": "weird"}})",
       "input.generator"},
      {R"({"input": {"kind": "synthetic", "rows": 1}})",
       "input.rows must be at least 2"},
      {R"({"input": {"kind": "csv", "path": "x.csv"}})",
       "needs roles"},
      {R"({"execution": {"mode": "turbo"}})", "execution.mode"},
      {R"({"input": {"kind": "synthetic"},
           "execution": {"mode": "streaming", "max_resident_rows": 5}})",
       "max_resident_rows"},
      {R"({"input": {"kind": "synthetic", "generator": "mcd"},
           "execution": {"mode": "streaming"}})",
       "cannot stream"},
      {R"({"input": {"kind": "synthetic"},
           "sweep": {},
           "output": {"release_path": "out.csv"}})",
       "release_path"},
      {R"({"input": {"kind": "synthetic"},
           "execution": {"mode": "streaming"},
           "sweep": {"ks": [3]}})",
       "in-memory"},
      {R"({"execution": {"merge_strategy": "turbo"}})",
       "execution.merge_strategy"},
      {R"({"execution": {"merge_strategy": 3}})",
       "execution.merge_strategy"},
      {R"({"input": {"kind": "synthetic"},
           "execution": {"mode": "in_memory", "overlap_io": true}})",
       "overlap_io"},
      // Not JSON at all.
      {"not json", "not valid JSON"},
      {R"({"version": 1,})", "not valid JSON"},
  };
  for (const Rejection& rejection : corpus) {
    auto parsed = JobSpec::FromJsonText(rejection.text);
    ASSERT_FALSE(parsed.ok()) << "accepted: " << rejection.text;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidSpec)
        << rejection.text << " -> " << parsed.status().ToString();
    EXPECT_NE(parsed.status().message().find(rejection.needle),
              std::string::npos)
        << rejection.text << " -> " << parsed.status().ToString();
  }
}

// --- structured error taxonomy -----------------------------------------

TEST(ErrorTaxonomyTest, UnknownAlgorithm) {
  auto parsed = JobSpec::FromJsonText(
      R"({"input": {"kind": "synthetic"},
          "algorithm": {"name": "bogus"}})");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kUnknownAlgorithm);
  // The message lists the registered names for discoverability.
  EXPECT_NE(parsed.status().message().find("known algorithms"),
            std::string::npos);

  JobSpec spec;
  spec.input.kind = InputKind::kSynthetic;
  spec.algorithm.name = "also_bogus";
  auto report = RunJob(spec);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kUnknownAlgorithm);
}

TEST(JobSpecJsonTest, StreamingRecordSourceRejectsRoles) {
  // A record source's schema cannot be rewritten mid-stream, so roles on
  // a streaming record-source job are an error, not a silent no-op.
  auto source = MakeUniformSource(100, 2, 3);
  JobSpec spec;
  spec.input.kind = InputKind::kRecordSource;
  spec.input.source = source.get();
  spec.execution.mode = ExecutionMode::kStreaming;
  EXPECT_TRUE(spec.Validate().ok()) << spec.Validate().ToString();
  spec.roles.confidential = "c";
  EXPECT_EQ(spec.Validate().code(), StatusCode::kInvalidSpec);
}

TEST(JobSpecJsonTest, SeedsAboveTwoToTheFiftyThreeAreRejected) {
  // Seeds travel as JSON numbers; values above 2^53 would round-trip
  // lossily, so the whole spec surface rejects them.
  JobSpec spec;
  spec.input.kind = InputKind::kSynthetic;
  spec.algorithm.seed = (uint64_t{1} << 53) + 2;
  EXPECT_EQ(spec.Validate().code(), StatusCode::kInvalidSpec);
  spec.algorithm.seed = uint64_t{1} << 53;
  EXPECT_TRUE(spec.Validate().ok());
  spec.input.seed = (uint64_t{1} << 60);
  EXPECT_EQ(spec.Validate().code(), StatusCode::kInvalidSpec);
}

TEST(ErrorTaxonomyTest, SweepWithUnknownAlgorithm) {
  JobSpec spec;
  spec.input.kind = InputKind::kSynthetic;
  spec.sweep.emplace();
  spec.sweep->algorithms = {"merge", "bogus"};
  EXPECT_EQ(spec.Validate().code(), StatusCode::kUnknownAlgorithm);
}

TEST(ErrorTaxonomyTest, MissingInputIsIoError) {
  JobSpec spec;
  spec.input.kind = InputKind::kCsvPath;
  spec.input.path = "/nonexistent/input.csv";
  spec.roles.quasi_identifiers = {"a"};
  spec.roles.confidential = "b";
  auto report = RunJob(spec);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kIoError);

  EXPECT_EQ(JobSpec::FromJsonFile("/nonexistent/job.json").status().code(),
            StatusCode::kIoError);
}

TEST(ErrorTaxonomyTest, InvalidSpecFromRunJob) {
  JobSpec spec;  // csv kind with empty path
  auto report = RunJob(spec);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidSpec);
}

// A registry algorithm that ignores params.k and emits clusters of two:
// the released data violates k-anonymity for k > 2, which the verify
// stage must convert into kPrivacyViolation.
void RegisterUndersizedAlgorithm() {
  static const bool registered = [] {
    Status status = AlgorithmRegistry::BuiltIns().Register(
        "test_undersized", "test-only: pairs regardless of k",
        [](const Dataset& data, const AlgorithmParams&) -> Result<Partition> {
          Partition partition;
          for (size_t row = 0; row < data.NumRecords(); row += 2) {
            Cluster cluster;
            cluster.push_back(row);
            if (row + 1 < data.NumRecords()) cluster.push_back(row + 1);
            partition.clusters.push_back(std::move(cluster));
          }
          return partition;
        });
    return status.ok();
  }();
  ASSERT_TRUE(registered);
}

TEST(ErrorTaxonomyTest, VerifyFailureIsPrivacyViolation) {
  RegisterUndersizedAlgorithm();
  JobSpec spec;
  spec.input.kind = InputKind::kSynthetic;
  spec.input.rows = 64;
  spec.input.seed = 5;
  spec.algorithm.name = "test_undersized";
  spec.algorithm.k = 5;
  spec.algorithm.t = 10.0;  // never triggers the t repair pass
  spec.execution.shard_size = 0;
  spec.verify = true;
  auto report = RunJob(spec);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kPrivacyViolation);
  EXPECT_NE(report.status().message().find("k-anonymity"),
            std::string::npos);

  // With verification off the same job goes through — callers opting out
  // of the re-check get the release they asked for.
  spec.verify = false;
  auto unchecked = RunJob(spec);
  ASSERT_TRUE(unchecked.ok()) << unchecked.status().ToString();
  EXPECT_FALSE(unchecked->k_verified);
}

TEST(ErrorTaxonomyTest, VerifyReleaseBranchesOnCode) {
  Dataset data = MakeUniformDataset(40, 2, 11);
  EXPECT_EQ(VerifyRelease(data, 2, 0.5).code(),
            StatusCode::kPrivacyViolation);

  JobSpec spec;
  spec.algorithm.k = 4;
  spec.algorithm.t = 0.3;
  auto report = RunJob(data, spec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(VerifyRelease(*report->release, 4, 0.3).ok());
}

// --- golden-release byte pins, re-expressed as JobSpecs ----------------

Dataset GoldenInput() { return MakeMcdDataset({.num_records = 120, .seed = 7}); }

// The exact flag matrix golden_release_test pins, run through the facade
// at 1 and 4 threads: the JobSpec lowering must not change a byte.
TEST(JobGoldenTest, InMemoryMatrixMatchesPinnedBytesAtOneAndFourThreads) {
  struct Case {
    const char* algorithm;
    size_t k;
    double t;
  };
  const Case cases[] = {
      {"merge", 3, 0.2},        {"merge_chunked", 5, 0.2},
      {"kanon_first", 3, 0.25}, {"tclose_first", 5, 0.3},
      {"mondrian", 4, 0.3},     {"sabre", 4, 0.3},
  };
  Dataset data = GoldenInput();
  for (size_t threads : {1u, 4u}) {
    for (const Case& c : cases) {
      JobSpec spec;
      spec.algorithm.name = c.algorithm;
      spec.algorithm.k = c.k;
      spec.algorithm.t = c.t;
      spec.algorithm.seed = 9;
      spec.execution.threads = threads;
      spec.execution.shard_size = 64;
      auto report = RunJob(data, spec);
      ASSERT_TRUE(report.ok()) << c.algorithm << ": "
                               << report.status().ToString();
      char name[128];
      std::snprintf(name, sizeof(name), "release_%s_k%zu_t%02d.csv",
                    c.algorithm, c.k, static_cast<int>(c.t * 100));
      EXPECT_EQ(WriteCsvString(*report->release), GoldenBytes(name))
          << name << " at " << threads << " thread(s)";
    }
  }
}

// Streamed single-window job (synthetic mcd source is in-memory only, so
// the stream reads the golden input CSV) — byte-identical to the
// in-memory golden, through the facade's own CSV writer.
TEST(JobGoldenTest, StreamedCsvJobMatchesPinnedBytes) {
  const std::string input_path = TempPath("api_golden_input.csv");
  {
    std::ofstream out(input_path, std::ios::binary);
    const std::string bytes = WriteCsvString(GoldenInput());
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good());
  }
  for (size_t threads : {1u, 4u}) {
    const std::string release_path =
        TempPath("api_golden_stream_" + std::to_string(threads) + ".csv");
    JobSpec spec;
    spec.input.kind = InputKind::kCsvPath;
    spec.input.path = input_path;
    spec.roles.quasi_identifiers = {"TAXINC", "POTHVAL"};
    spec.roles.confidential = "FEDTAX";
    spec.algorithm.name = "tclose_first";
    spec.algorithm.k = 5;
    spec.algorithm.t = 0.3;
    spec.algorithm.seed = 9;
    spec.execution.mode = ExecutionMode::kStreaming;
    spec.execution.threads = threads;
    spec.execution.shard_size = 64;
    spec.execution.max_resident_rows = 4096;  // single window
    spec.output.release_path = release_path;
    auto report = RunJob(spec);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->num_windows, 1u);
    EXPECT_EQ(ReadFileBytes(release_path),
              GoldenBytes("release_tclose_first_k5_t30.csv"))
        << "at " << threads << " thread(s)";
  }
}

// Multi-window streamed release from a synthetic source, as a JobSpec:
// matches the pinned golden_release_test bytes.
TEST(JobGoldenTest, StreamedMultiWindowSyntheticJobMatchesPinnedBytes) {
  for (size_t threads : {1u, 4u}) {
    const std::string release_path =
        TempPath("api_golden_windows_" + std::to_string(threads) + ".csv");
    JobSpec spec;
    spec.input.kind = InputKind::kSynthetic;
    spec.input.generator = "uniform";
    spec.input.rows = 400;
    spec.input.quasi_identifiers = 2;
    spec.input.seed = 31;
    spec.algorithm.name = "merge_chunked";
    spec.algorithm.k = 4;
    spec.algorithm.t = 0.25;
    spec.algorithm.seed = 13;
    spec.execution.mode = ExecutionMode::kStreaming;
    spec.execution.threads = threads;
    spec.execution.shard_size = 64;
    spec.execution.max_resident_rows = 150;
    spec.output.release_path = release_path;
    auto report = RunJob(spec);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_GE(report->num_windows, 2u);
    EXPECT_EQ(ReadFileBytes(release_path),
              GoldenBytes("release_streamed_uniform400.csv"))
        << "at " << threads << " thread(s)";
  }
}

TEST(JobGoldenTest, CategoricalReleaseMatchesPinnedBytes) {
  JobSpec spec;
  spec.input.kind = InputKind::kSynthetic;
  spec.input.generator = "adult";
  spec.input.rows = 90;
  spec.input.seed = 3;
  spec.algorithm.name = "merge";
  spec.algorithm.k = 3;
  spec.algorithm.t = 0.3;
  spec.algorithm.seed = 9;
  spec.execution.shard_size = 0;
  auto report = RunJob(spec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(WriteCsvString(*report->release),
            GoldenBytes("release_adult_merge_k3_t30.csv"));
}

// --- RunJob behaviour ---------------------------------------------------

TEST(RunJobTest, ReportJsonIsWrittenAndWellFormed) {
  const std::string report_path = TempPath("api_report.json");
  JobSpec spec;
  spec.input.kind = InputKind::kSynthetic;
  spec.input.rows = 120;
  spec.input.quasi_identifiers = 2;
  spec.input.seed = 3;
  spec.output.report_path = report_path;
  auto report = RunJob(spec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  auto json = ReadJsonFile(report_path);
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  EXPECT_EQ(json->Find("version")->number_value(), RunReport::kVersion);
  EXPECT_EQ(json->Find("mode")->string_value(), "in_memory");
  EXPECT_EQ(json->Find("rows")->number_value(), 120.0);
  EXPECT_EQ(json->Find("algorithm")->Find("name")->string_value(),
            "tclose_first");
  EXPECT_TRUE(
      json->Find("verification")->Find("k_anonymous")->bool_value());
  EXPECT_NE(json->Find("timings")->Find("total_seconds"), nullptr);
  // The in-process report serializes to the same document.
  EXPECT_EQ(ReadFileBytes(report_path), report->ToJsonText() + "\n");
}

TEST(RunJobTest, TimingsAreCoherent) {
  JobSpec spec;
  spec.input.kind = InputKind::kSynthetic;
  spec.input.rows = 300;
  spec.input.seed = 8;
  auto report = RunJob(spec);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->total_seconds, 0.0);
  EXPECT_GE(report->total_seconds, report->anonymize_seconds);
  EXPECT_GT(report->anonymize_seconds, 0.0);
}

TEST(RunJobTest, RecordSourceInputDrainsInMemory) {
  auto source = MakeUniformSource(200, 2, 17);
  JobSpec spec;
  spec.algorithm.k = 4;
  spec.algorithm.t = 0.2;
  auto report = RunJob(source.get(), spec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->rows, 200u);
  EXPECT_TRUE(report->k_verified);
  EXPECT_TRUE(report->t_verified);
  ASSERT_TRUE(report->release.has_value());

  // Identical to the same job over the materialized dataset.
  Dataset data = MakeUniformDataset(200, 2, 17);
  auto direct = RunJob(data, spec);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(WriteCsvString(*report->release),
            WriteCsvString(*direct->release));
}

TEST(RunJobTest, SweepFansOutTheCrossProduct) {
  Dataset data = MakeMcdDataset({.num_records = 120, .seed = 7});
  JobSpec spec;
  spec.algorithm.seed = 9;
  spec.execution.threads = 2;
  spec.sweep.emplace();
  spec.sweep->algorithms = {"merge", "tclose_first"};
  spec.sweep->ks = {3, 5};
  spec.sweep->ts = {0.3};
  auto report = RunJob(data, spec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->swept);
  ASSERT_EQ(report->sweep.size(), 4u);
  EXPECT_EQ(report->sweep[0].label, "merge/k=3/t=0.3");
  EXPECT_EQ(report->sweep[3].label, "tclose_first/k=5/t=0.3");
  for (const SweepOutcome& outcome : report->sweep) {
    EXPECT_TRUE(outcome.error_code.empty()) << outcome.error;
    EXPECT_GE(outcome.min_cluster_size, outcome.k);
    EXPECT_LE(outcome.max_cluster_emd, 0.3 + 1e-12);
    EXPECT_GT(outcome.clusters, 0u);
  }
  // The sweep section serializes per cell.
  JsonValue json = report->ToJson();
  EXPECT_EQ(json.Find("mode")->string_value(), "sweep");
  EXPECT_EQ(json.Find("sweep")->size(), 4u);
}

TEST(RunJobTest, StreamingReportCarriesWindows) {
  JobSpec spec;
  spec.input.kind = InputKind::kSynthetic;
  spec.input.generator = "uniform";
  spec.input.rows = 400;
  spec.input.quasi_identifiers = 2;
  spec.input.seed = 31;
  spec.algorithm.k = 4;
  spec.algorithm.t = 0.25;
  spec.execution.mode = ExecutionMode::kStreaming;
  spec.execution.max_resident_rows = 150;
  auto report = RunJob(spec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->rows, 400u);
  EXPECT_GE(report->num_windows, 2u);
  EXPECT_EQ(report->windows.size(), report->num_windows);
  EXPECT_LE(report->peak_resident_rows, 150u);
  EXPECT_FALSE(report->release.has_value());
  size_t window_rows = 0;
  for (const StreamingWindowSummary& window : report->windows) {
    window_rows += window.rows;
  }
  EXPECT_EQ(window_rows, 400u);

  JsonValue json = report->ToJson();
  EXPECT_EQ(json.Find("mode")->string_value(), "streaming");
  EXPECT_EQ(json.Find("windows")->size(), report->num_windows);
  EXPECT_NE(json.Find("execution")->Find("peak_resident_rows"), nullptr);
}

}  // namespace
}  // namespace tcm
