#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generator.h"
#include "distance/qi_space.h"
#include "microagg/mdav.h"
#include "microagg/microagg.h"
#include "microagg/univariate.h"

namespace tcm {
namespace {

// Brute-force optimal SSE over all partitions of the sorted order into
// consecutive groups of size in [k, 2k-1] (exponential; tiny n only).
double BruteForceOptimalSse(const std::vector<double>& values, size_t k) {
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const size_t n = sorted.size();
  std::vector<double> best(n + 1, 1e300);
  best[0] = 0.0;
  for (size_t j = 1; j <= n; ++j) {
    for (size_t size = k; size <= 2 * k - 1 && size <= j; ++size) {
      size_t i = j - size;
      if (best[i] >= 1e300) continue;
      double mean = 0.0;
      for (size_t p = i; p < j; ++p) mean += sorted[p];
      mean /= static_cast<double>(size);
      double sse = 0.0;
      for (size_t p = i; p < j; ++p) {
        sse += (sorted[p] - mean) * (sorted[p] - mean);
      }
      best[j] = std::min(best[j], best[i] + sse);
    }
  }
  return best[n];
}

TEST(UnivariateTest, RejectsBadK) {
  std::vector<double> values = {1, 2, 3};
  EXPECT_FALSE(OptimalUnivariateMicroaggregation(values, 0).ok());
  EXPECT_FALSE(OptimalUnivariateMicroaggregation(values, 4).ok());
}

TEST(UnivariateTest, PartitionIsValidAndSizesBounded) {
  Rng rng(3);
  for (size_t n : {10u, 37u, 100u}) {
    for (size_t k : {2u, 3u, 5u}) {
      std::vector<double> values(n);
      for (double& v : values) v = rng.NextDouble();
      auto partition = OptimalUnivariateMicroaggregation(values, k);
      ASSERT_TRUE(partition.ok());
      EXPECT_TRUE(ValidatePartition(*partition, n, k).ok());
      EXPECT_LE(partition->MaxClusterSize(), 2 * k - 1);
    }
  }
}

TEST(UnivariateTest, GroupsAreConsecutiveInSortOrder) {
  std::vector<double> values = {5, 1, 9, 3, 7, 2, 8, 4, 6, 0};
  auto partition = OptimalUnivariateMicroaggregation(values, 3);
  ASSERT_TRUE(partition.ok());
  // Each cluster's value range must not overlap another's.
  std::vector<std::pair<double, double>> ranges;
  for (const Cluster& cluster : partition->clusters) {
    double lo = 1e300, hi = -1e300;
    for (size_t row : cluster) {
      lo = std::min(lo, values[row]);
      hi = std::max(hi, values[row]);
    }
    ranges.emplace_back(lo, hi);
  }
  std::sort(ranges.begin(), ranges.end());
  for (size_t i = 1; i < ranges.size(); ++i) {
    EXPECT_GT(ranges[i].first, ranges[i - 1].second);
  }
}

TEST(UnivariateTest, MatchesBruteForceOnRandomInputs) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    size_t n = 6 + rng.NextBounded(9);  // 6..14
    size_t k = 2 + rng.NextBounded(2);  // 2..3
    std::vector<double> values(n);
    for (double& v : values) v = std::round(rng.NextDouble() * 100);
    auto partition = OptimalUnivariateMicroaggregation(values, k);
    ASSERT_TRUE(partition.ok());
    EXPECT_NEAR(UnivariateSse(values, *partition),
                BruteForceOptimalSse(values, k), 1e-9)
        << "n=" << n << " k=" << k;
  }
}

TEST(UnivariateTest, ObviousTwoClusterCase) {
  // Two tight groups far apart: the optimum is exactly those groups.
  std::vector<double> values = {0, 1, 2, 100, 101, 102};
  auto partition = OptimalUnivariateMicroaggregation(values, 3);
  ASSERT_TRUE(partition.ok());
  ASSERT_EQ(partition->NumClusters(), 2u);
  EXPECT_NEAR(UnivariateSse(values, *partition), 4.0, 1e-12);  // 2 per group
}

TEST(UnivariateTest, BeatsOrMatchesMdavOnOneDimension) {
  // On 1-D data the DP is optimal, so it can never lose to MDAV.
  Dataset data = MakeUniformDataset(200, 1, 7);
  QiSpace space(data);
  std::vector<double> scores(space.num_records());
  for (size_t i = 0; i < scores.size(); ++i) scores[i] = space.point(i)[0];
  for (size_t k : {2u, 5u, 10u}) {
    auto optimal = OptimalUnivariateMicroaggregation(scores, k);
    auto mdav = Mdav(space, k);
    ASSERT_TRUE(optimal.ok() && mdav.ok());
    EXPECT_LE(UnivariateSse(scores, *optimal),
              UnivariateSse(scores, *mdav) + 1e-9)
        << "k=" << k;
  }
}

TEST(UnivariateTest, TiedValuesHandled) {
  std::vector<double> values(20, 3.0);
  auto partition = OptimalUnivariateMicroaggregation(values, 4);
  ASSERT_TRUE(partition.ok());
  EXPECT_TRUE(ValidatePartition(*partition, 20, 4).ok());
  EXPECT_NEAR(UnivariateSse(values, *partition), 0.0, 1e-12);
}

// ----------------------------------------------------------- Projection

TEST(ProjectionTest, PcaRecoversDominantDirection) {
  // Data stretched along (1, 1): scores must order records along that
  // diagonal.
  std::vector<double> q1, q2, c;
  for (int i = 0; i < 50; ++i) {
    q1.push_back(i + 0.01 * (i % 3));
    q2.push_back(i - 0.01 * (i % 2));
    c.push_back(i);
  }
  auto data = DatasetFromColumns(
      {"q1", "q2", "c"}, {q1, q2, c},
      {AttributeRole::kQuasiIdentifier, AttributeRole::kQuasiIdentifier,
       AttributeRole::kConfidential});
  ASSERT_TRUE(data.ok());
  QiSpace space(*data, QiNormalization::kNone);
  std::vector<double> scores = PrincipalComponentScores(space);
  for (size_t i = 1; i < scores.size(); ++i) {
    EXPECT_GT(scores[i], scores[i - 1]);
  }
}

TEST(ProjectionTest, PartitionIsValid) {
  Dataset data = MakeUniformDataset(150, 3, 13);
  QiSpace space(data);
  auto partition = ProjectionMicroaggregation(space, 5);
  ASSERT_TRUE(partition.ok());
  EXPECT_TRUE(ValidatePartition(*partition, 150, 5).ok());
  EXPECT_LE(partition->MaxClusterSize(), 9u);
}

TEST(ProjectionTest, OptimalOnIntrinsicallyOneDimensionalData) {
  // When the QIs are perfectly collinear the projection method is exact,
  // so MDAV cannot beat it on SSE in the projected coordinate.
  std::vector<double> q1, q2, c;
  Rng rng(5);
  for (int i = 0; i < 120; ++i) {
    double u = rng.NextDouble() * 100;
    q1.push_back(u);
    q2.push_back(2 * u);
    c.push_back(rng.NextDouble());
  }
  auto data = DatasetFromColumns(
      {"q1", "q2", "c"}, {q1, q2, c},
      {AttributeRole::kQuasiIdentifier, AttributeRole::kQuasiIdentifier,
       AttributeRole::kConfidential});
  ASSERT_TRUE(data.ok());
  QiSpace space(*data);
  std::vector<double> scores = PrincipalComponentScores(space);
  auto projection = ProjectionMicroaggregation(space, 4);
  auto mdav = Mdav(space, 4);
  ASSERT_TRUE(projection.ok() && mdav.ok());
  EXPECT_LE(UnivariateSse(scores, *projection),
            UnivariateSse(scores, *mdav) + 1e-9);
}

TEST(ProjectionTest, AvailableThroughFrontend) {
  Dataset data = MakeUniformDataset(60, 2, 17);
  QiSpace space(data);
  MicroaggOptions options;
  options.method = MicroaggMethod::kProjection;
  auto via_frontend = Microaggregate(space, 4, options);
  auto direct = ProjectionMicroaggregation(space, 4);
  ASSERT_TRUE(via_frontend.ok() && direct.ok());
  EXPECT_EQ(via_frontend->clusters, direct->clusters);
  EXPECT_STREQ(MicroaggMethodName(MicroaggMethod::kProjection), "projection");
}

}  // namespace
}  // namespace tcm
