// Tests for chunked (scalable) microaggregation and multi-confidential-
// attribute t-closeness enforcement.

#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/timer.h"
#include "data/generator.h"
#include "distance/qi_space.h"
#include "microagg/aggregate.h"
#include "microagg/chunked.h"
#include "microagg/mdav.h"
#include "privacy/tcloseness.h"
#include "tclose/anonymizer.h"
#include "tclose/merge.h"
#include "utility/sse.h"

namespace tcm {
namespace {

// ----------------------------------------------------------------- Chunked

TEST(ChunkedTest, ValidPartitionAcrossChunkSizes) {
  Dataset data = MakeUniformDataset(1000, 3, 41);
  QiSpace space(data);
  for (size_t chunk : {64u, 256u, 5000u}) {
    ChunkedOptions options;
    options.chunk_size = chunk;
    auto partition = ChunkedMicroaggregation(space, 5, options);
    ASSERT_TRUE(partition.ok()) << "chunk=" << chunk;
    EXPECT_TRUE(ValidatePartition(*partition, 1000, 5).ok());
    EXPECT_LE(partition->MaxClusterSize(), 9u);
  }
}

TEST(ChunkedTest, HugeChunkEqualsPlainMdav) {
  Dataset data = MakeUniformDataset(300, 2, 43);
  QiSpace space(data);
  ChunkedOptions options;
  options.chunk_size = 10000;  // larger than n: one chunk
  auto chunked = ChunkedMicroaggregation(space, 4, options);
  auto plain = Mdav(space, 4);
  ASSERT_TRUE(chunked.ok() && plain.ok());
  EXPECT_EQ(chunked->clusters, plain->clusters);
}

TEST(ChunkedTest, TinyChunkIsClampedToThreeK) {
  Dataset data = MakeUniformDataset(200, 2, 47);
  QiSpace space(data);
  ChunkedOptions options;
  options.chunk_size = 1;  // clamped to 3k
  auto partition = ChunkedMicroaggregation(space, 6, options);
  ASSERT_TRUE(partition.ok());
  EXPECT_TRUE(ValidatePartition(*partition, 200, 6).ok());
}

TEST(ChunkedTest, RejectsBadArguments) {
  Dataset data = MakeUniformDataset(50, 2, 49);
  QiSpace space(data);
  EXPECT_FALSE(ChunkedMicroaggregation(space, 0).ok());
  EXPECT_FALSE(ChunkedMicroaggregation(space, 51).ok());
  ChunkedOptions options;
  options.chunk_size = 0;
  EXPECT_FALSE(ChunkedMicroaggregation(space, 2, options).ok());
}

TEST(ChunkedTest, SseDegradesGracefully) {
  // Chunked SSE must stay within a small factor of full MDAV — the
  // contract that justifies it on big data.
  Dataset data = MakePatientDischargeLike({3000, 51});
  QiSpace space(data);
  auto full = Mdav(space, 5);
  ChunkedOptions options;
  options.chunk_size = 256;
  auto chunked = ChunkedMicroaggregation(space, 5, options);
  ASSERT_TRUE(full.ok() && chunked.ok());
  auto full_release = AggregatePartition(data, *full);
  auto chunked_release = AggregatePartition(data, *chunked);
  ASSERT_TRUE(full_release.ok() && chunked_release.ok());
  double full_sse = NormalizedSse(data, *full_release).value();
  double chunked_sse = NormalizedSse(data, *chunked_release).value();
  EXPECT_LT(chunked_sse, full_sse * 4.0 + 1e-9);
}

TEST(ChunkedTest, FasterThanFullMdavOnLargeInput) {
  Dataset data = MakePatientDischargeLike({8000, 53});
  QiSpace space(data);
  WallTimer timer;
  ASSERT_TRUE(Mdav(space, 3).ok());
  double full_seconds = timer.ElapsedSeconds();
  timer.Restart();
  ChunkedOptions options;
  options.chunk_size = 512;
  ASSERT_TRUE(ChunkedMicroaggregation(space, 3, options).ok());
  double chunked_seconds = timer.ElapsedSeconds();
  EXPECT_LT(chunked_seconds, full_seconds);
}

TEST(ChunkedTest, InnerMethodSelectable) {
  Dataset data = MakeUniformDataset(400, 2, 57);
  QiSpace space(data);
  for (MicroaggMethod method :
       {MicroaggMethod::kMdav, MicroaggMethod::kVMdav,
        MicroaggMethod::kProjection}) {
    ChunkedOptions options;
    options.chunk_size = 100;
    options.inner.method = method;
    auto partition = ChunkedMicroaggregation(space, 4, options);
    ASSERT_TRUE(partition.ok()) << MicroaggMethodName(method);
    EXPECT_TRUE(ValidatePartition(*partition, 400, 4).ok())
        << MicroaggMethodName(method);
  }
}

TEST(ChunkedTest, SubsetHelpersCoverOnlyGivenRows) {
  Dataset data = MakeUniformDataset(100, 2, 59);
  QiSpace space(data);
  std::vector<size_t> rows = {5, 10, 15, 20, 25, 30, 35, 40, 45, 50};
  for (MicroaggMethod method :
       {MicroaggMethod::kMdav, MicroaggMethod::kVMdav,
        MicroaggMethod::kProjection}) {
    MicroaggOptions options;
    options.method = method;
    auto partition = MicroaggregateRows(space, rows, 3, options);
    ASSERT_TRUE(partition.ok()) << MicroaggMethodName(method);
    std::vector<size_t> covered;
    for (const Cluster& cluster : partition->clusters) {
      covered.insert(covered.end(), cluster.begin(), cluster.end());
    }
    std::sort(covered.begin(), covered.end());
    EXPECT_EQ(covered, rows) << MicroaggMethodName(method);
  }
}

// ----------------------------------------------- Multi-attribute closeness

Dataset CensusWithBothConfidential() {
  Dataset data = MakeCensusLike();
  auto schema =
      data.schema().WithRole("FEDTAX", AttributeRole::kConfidential);
  auto schema2 = schema->WithRole("FICA", AttributeRole::kConfidential);
  EXPECT_TRUE(data.ReplaceSchema(std::move(schema2).value()).ok());
  return data;
}

TEST(MultiAttributeTest, SingleAttributeSteeringLeavesOthersUnbounded) {
  // Without enforce_all_confidential, the second attribute may violate t
  // (this documents why the flag exists).
  Dataset data = CensusWithBothConfidential();
  AnonymizerOptions options;
  options.k = 2;
  options.t = 0.05;
  options.algorithm = TCloseAlgorithm::kTClosenessFirst;
  auto result = Anonymize(data, options);
  ASSERT_TRUE(result.ok());
  auto secondary = EvaluateTCloseness(result->anonymized, 1);
  ASSERT_TRUE(secondary.ok());
  EXPECT_GT(secondary->max_emd, 0.05);
}

TEST(MultiAttributeTest, EnforceAllBoundsEveryAttribute) {
  Dataset data = CensusWithBothConfidential();
  AnonymizerOptions options;
  options.k = 2;
  options.t = 0.1;
  options.enforce_all_confidential = true;
  for (TCloseAlgorithm algorithm :
       {TCloseAlgorithm::kMicroaggregationMerge,
        TCloseAlgorithm::kKAnonymityFirst,
        TCloseAlgorithm::kTClosenessFirst}) {
    options.algorithm = algorithm;
    auto result = Anonymize(data, options);
    ASSERT_TRUE(result.ok()) << TCloseAlgorithmName(algorithm);
    for (size_t offset : {0u, 1u}) {
      auto report = EvaluateTCloseness(result->anonymized, offset);
      ASSERT_TRUE(report.ok());
      EXPECT_LE(report->max_emd, 0.1 + 1e-9)
          << TCloseAlgorithmName(algorithm) << " attribute " << offset;
    }
    EXPECT_LE(result->max_cluster_emd, 0.1 + 1e-9);
  }
}

TEST(MultiAttributeTest, MultiMergeDirectApi) {
  Dataset data = CensusWithBothConfidential();
  QiSpace space(data);
  EmdCalculator fedtax(data, 0);
  EmdCalculator fica(data, 1);
  auto initial = Mdav(space, 3);
  ASSERT_TRUE(initial.ok());
  MergeStats stats;
  auto merged = MergeUntilTCloseMulti(space, {&fedtax, &fica}, 0.08,
                                      *initial, &stats);
  ASSERT_TRUE(merged.ok());
  for (const Cluster& cluster : merged->clusters) {
    EXPECT_LE(fedtax.ClusterEmd(cluster), 0.08 + 1e-12);
    EXPECT_LE(fica.ClusterEmd(cluster), 0.08 + 1e-12);
  }
  EXPECT_LE(stats.final_max_emd, 0.08 + 1e-12);
}

TEST(MultiAttributeTest, MultiMergeRequiresCalculators) {
  Dataset data = MakeUniformDataset(20, 2, 61);
  QiSpace space(data);
  auto initial = Mdav(space, 2);
  ASSERT_TRUE(initial.ok());
  EXPECT_FALSE(MergeUntilTCloseMulti(space, {}, 0.1, *initial).ok());
}

}  // namespace
}  // namespace tcm
