#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "data/stats.h"
#include "dp/dp_release.h"
#include "dp/laplace.h"
#include "utility/sse.h"

namespace tcm {
namespace {

// --------------------------------------------------------------- Laplace

TEST(LaplaceTest, MomentsMatchDistribution) {
  LaplaceSampler sampler(42);
  constexpr int kSamples = 200000;
  constexpr double kScale = 2.5;
  double sum = 0.0, sum_abs = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    double draw = sampler.Sample(kScale);
    sum += draw;
    sum_abs += std::fabs(draw);
    sum_sq += draw * draw;
  }
  // Laplace(0, b): mean 0, E|X| = b, Var = 2 b^2.
  EXPECT_NEAR(sum / kSamples, 0.0, 0.05);
  EXPECT_NEAR(sum_abs / kSamples, kScale, 0.05);
  EXPECT_NEAR(sum_sq / kSamples, 2 * kScale * kScale, 0.3);
}

TEST(LaplaceTest, DeterministicForSeed) {
  LaplaceSampler a(7), b(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(a.Sample(1.0), b.Sample(1.0));
  }
}

TEST(LaplaceTest, SensitivityCalibration) {
  // scale = sensitivity / epsilon: quadrupling epsilon shrinks E|X| 4x.
  LaplaceSampler a(9), b(9);
  constexpr int kSamples = 100000;
  double tight = 0.0, loose = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    loose += std::fabs(a.SampleForSensitivity(1.0, 0.5));
    tight += std::fabs(b.SampleForSensitivity(1.0, 2.0));
  }
  EXPECT_NEAR(loose / tight, 4.0, 0.15);
}

// ------------------------------------------------------------ DP release

TEST(DpReleaseTest, RejectsBadParameters) {
  Dataset data = MakeUniformDataset(50, 2, 3);
  DpReleaseOptions options;
  options.epsilon = 0.0;
  EXPECT_FALSE(DpMicroaggregationRelease(data, options).ok());
  options.epsilon = 1.0;
  options.k = 0;
  EXPECT_FALSE(DpMicroaggregationRelease(data, options).ok());
  options.k = 51;
  EXPECT_FALSE(DpMicroaggregationRelease(data, options).ok());
}

TEST(DpReleaseTest, DeterministicForSeed) {
  Dataset data = MakeUniformDataset(100, 2, 5);
  DpReleaseOptions options;
  options.seed = 11;
  auto a = DpMicroaggregationRelease(data, options);
  auto b = DpMicroaggregationRelease(data, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a->released == b->released);
}

TEST(DpReleaseTest, ConfidentialAttributeUntouched) {
  Dataset data = MakeUniformDataset(100, 2, 5);
  auto result = DpMicroaggregationRelease(data);
  ASSERT_TRUE(result.ok());
  size_t conf = data.schema().ConfidentialIndices()[0];
  EXPECT_EQ(result->released.ColumnAsDouble(conf),
            data.ColumnAsDouble(conf));
}

TEST(DpReleaseTest, ReleaseIsClusterConstant) {
  // All records of a cluster share the same noisy centroid: the release
  // is k-anonymous in structure (n / k clusters).
  Dataset data = MakeUniformDataset(100, 2, 5);
  DpReleaseOptions options;
  options.k = 10;
  auto result = DpMicroaggregationRelease(data, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->clusters, 10u);
  std::vector<size_t> qi = data.schema().QuasiIdentifierIndices();
  std::map<std::pair<double, double>, int> distinct;
  for (size_t row = 0; row < 100; ++row) {
    distinct[{result->released.cell(row, qi[0]).numeric(),
              result->released.cell(row, qi[1]).numeric()}]++;
  }
  EXPECT_EQ(distinct.size(), 10u);
  for (const auto& [unused, count] : distinct) EXPECT_EQ(count, 10);
}

TEST(DpReleaseTest, LargerEpsilonMeansLessNoise) {
  Dataset data = MakeUniformDataset(400, 2, 7);
  double previous = 1e300;
  for (double epsilon : {0.1, 1.0, 10.0, 100.0}) {
    DpReleaseOptions options;
    options.k = 20;
    options.epsilon = epsilon;
    options.seed = 3;
    auto result = DpMicroaggregationRelease(data, options);
    ASSERT_TRUE(result.ok());
    auto sse = NormalizedSse(data, result->released);
    ASSERT_TRUE(sse.ok());
    EXPECT_LT(*sse, previous) << "epsilon=" << epsilon;
    previous = *sse;
  }
}

TEST(DpReleaseTest, LargerKReducesNoiseScale) {
  // The headline of the microaggregation-DP connection: sensitivity
  // range/k shrinks with k, so total injected scale drops.
  Dataset data = MakeUniformDataset(400, 2, 9);
  double previous = 1e300;
  for (size_t k : {2u, 10u, 50u}) {
    DpReleaseOptions options;
    options.k = k;
    options.epsilon = 1.0;
    auto result = DpMicroaggregationRelease(data, options);
    ASSERT_TRUE(result.ok());
    double mean_scale = result->per_attribute_scale_sum /
                        static_cast<double>(result->clusters);
    EXPECT_LT(mean_scale, previous) << "k=" << k;
    previous = mean_scale;
  }
}

TEST(DpReleaseTest, HugeEpsilonApproachesPlainMicroaggregation) {
  Dataset data = MakeUniformDataset(200, 2, 13);
  DpReleaseOptions options;
  options.k = 10;
  options.epsilon = 1e9;
  auto result = DpMicroaggregationRelease(data, options);
  ASSERT_TRUE(result.ok());
  // Means preserved nearly exactly (noise negligible).
  std::vector<size_t> qi = data.schema().QuasiIdentifierIndices();
  for (size_t col : qi) {
    EXPECT_NEAR(Mean(result->released.ColumnAsDouble(col)),
                Mean(data.ColumnAsDouble(col)), 1e-6);
  }
}

TEST(DpReleaseTest, CategoricalQiUnsupported) {
  Schema schema({
      Attribute{"ord", AttributeType::kOrdinal,
                AttributeRole::kQuasiIdentifier, {"a", "b"}},
      Attribute{"conf", AttributeType::kNumeric, AttributeRole::kConfidential,
                {}},
  });
  Dataset data(schema);
  ASSERT_TRUE(
      data.Append({Value::Categorical(0), Value::Numeric(1)}).ok());
  ASSERT_TRUE(
      data.Append({Value::Categorical(1), Value::Numeric(2)}).ok());
  DpReleaseOptions options;
  options.k = 1;
  EXPECT_EQ(DpMicroaggregationRelease(data, options).status().code(),
            StatusCode::kUnimplemented);
}

}  // namespace
}  // namespace tcm
