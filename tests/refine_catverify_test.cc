// Tests for the partition refinement stage and the categorical
// t-closeness verifiers, plus parser robustness fuzzing.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/csv.h"
#include "data/generator.h"
#include "distance/qi_space.h"
#include "microagg/mdav.h"
#include "microagg/refine.h"
#include "privacy/categorical_tcloseness.h"
#include "tclose/nominal.h"
#include "tclose/report_io.h"

namespace tcm {
namespace {

// ------------------------------------------------------------------ Refine

TEST(RefineTest, NeverIncreasesSse) {
  Rng rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    Dataset data = MakeClusteredDataset(300, 2, 5, 200 + trial);
    QiSpace space(data);
    auto initial = Mdav(space, 4);
    ASSERT_TRUE(initial.ok());
    RefineOptions options;
    options.min_cluster_size = 4;
    RefineStats stats;
    auto refined = RefinePartition(space, *initial, options, &stats);
    ASSERT_TRUE(refined.ok());
    EXPECT_LE(stats.sse_after, stats.sse_before + 1e-9);
    EXPECT_TRUE(ValidatePartition(*refined, 300, 4).ok());
  }
}

TEST(RefineTest, FixedPointOfOptimalPartitionIsStable) {
  // A partition of well-separated modes with exactly matching clusters
  // admits no improving move.
  std::vector<double> xs, cs;
  for (int mode = 0; mode < 3; ++mode) {
    for (int i = 0; i < 6; ++i) {
      xs.push_back(mode * 1000.0 + i);
      cs.push_back(i);
    }
  }
  auto data = DatasetFromColumns(
      {"x", "c"}, {xs, cs},
      {AttributeRole::kQuasiIdentifier, AttributeRole::kConfidential});
  ASSERT_TRUE(data.ok());
  QiSpace space(*data);
  Partition modes;
  modes.clusters = {{0, 1, 2, 3, 4, 5},
                    {6, 7, 8, 9, 10, 11},
                    {12, 13, 14, 15, 16, 17}};
  RefineOptions options;
  options.min_cluster_size = 6;
  RefineStats stats;
  auto refined = RefinePartition(space, modes, options, &stats);
  ASSERT_TRUE(refined.ok());
  EXPECT_EQ(stats.moves, 0u);
  EXPECT_EQ(refined->clusters, modes.clusters);
}

TEST(RefineTest, RepairsDeliberatelyBadPartition) {
  // Swap two records between far-apart modes; refinement must undo it.
  std::vector<double> xs, cs;
  for (int i = 0; i < 20; ++i) {
    xs.push_back(i < 10 ? i : 1000.0 + i);
    cs.push_back(i);
  }
  auto data = DatasetFromColumns(
      {"x", "c"}, {xs, cs},
      {AttributeRole::kQuasiIdentifier, AttributeRole::kConfidential});
  ASSERT_TRUE(data.ok());
  QiSpace space(*data);
  Partition scrambled;
  scrambled.clusters = {{0, 1, 2, 3, 4, 5, 6, 7, 8, 19},
                        {9, 10, 11, 12, 13, 14, 15, 16, 17, 18}};
  RefineOptions options;
  options.min_cluster_size = 2;
  RefineStats stats;
  auto refined = RefinePartition(space, scrambled, options, &stats);
  ASSERT_TRUE(refined.ok());
  EXPECT_GT(stats.moves, 0u);
  // Records 19 and 9 must end up on their own sides.
  auto assignment = refined->AssignmentVector();
  EXPECT_EQ(assignment[19], assignment[18]);
  EXPECT_EQ(assignment[9], assignment[0]);
}

TEST(RefineTest, SwapsImproveExactKPartitions) {
  // All clusters exactly size k: no relocation is legal, so only the
  // swap moves can (and do) lower SSE on a scrambled partition.
  std::vector<double> xs, cs;
  for (int i = 0; i < 12; ++i) {
    xs.push_back(i < 6 ? i : 500.0 + i);
    cs.push_back(i);
  }
  auto data = DatasetFromColumns(
      {"x", "c"}, {xs, cs},
      {AttributeRole::kQuasiIdentifier, AttributeRole::kConfidential});
  ASSERT_TRUE(data.ok());
  QiSpace space(*data);
  Partition scrambled;
  scrambled.clusters = {{0, 1, 2, 3, 4, 11}, {5, 6, 7, 8, 9, 10}};
  RefineOptions options;
  options.min_cluster_size = 6;  // exact-k: donors cannot shrink
  RefineStats stats;
  auto refined = RefinePartition(space, scrambled, options, &stats);
  ASSERT_TRUE(refined.ok());
  EXPECT_GT(stats.moves, 0u);
  EXPECT_LT(stats.sse_after, stats.sse_before);
  EXPECT_EQ(refined->MinClusterSize(), 6u);
  EXPECT_EQ(refined->MaxClusterSize(), 6u);
  // Records 11 and 5 swapped home.
  auto assignment = refined->AssignmentVector();
  EXPECT_EQ(assignment[11], assignment[10]);
  EXPECT_EQ(assignment[5], assignment[0]);
}

TEST(RefineTest, HonorsMinimumClusterSize) {
  Dataset data = MakeUniformDataset(60, 2, 109);
  QiSpace space(data);
  auto initial = Mdav(space, 3);
  ASSERT_TRUE(initial.ok());
  RefineOptions options;
  options.min_cluster_size = 3;
  auto refined = RefinePartition(space, *initial, options);
  ASSERT_TRUE(refined.ok());
  EXPECT_GE(refined->MinClusterSize(), 3u);
}

TEST(RefineTest, RejectsPartitionBelowMinimum) {
  Dataset data = MakeUniformDataset(10, 2, 111);
  QiSpace space(data);
  Partition singletons;
  for (size_t i = 0; i < 10; ++i) singletons.clusters.push_back({i});
  RefineOptions options;
  options.min_cluster_size = 2;
  EXPECT_FALSE(RefinePartition(space, singletons, options).ok());
}

// ----------------------------------------------- Categorical verification

Dataset OrdinalReleased() {
  Schema schema({
      Attribute{"qi", AttributeType::kNumeric,
                AttributeRole::kQuasiIdentifier, {}},
      Attribute{"grade", AttributeType::kOrdinal, AttributeRole::kConfidential,
                {"low", "mid", "high"}},
  });
  Dataset data(schema);
  // Two equivalence classes; class 1 skews low, class 2 skews high.
  auto add = [&data](double qi, int32_t grade) {
    EXPECT_TRUE(
        data.Append({Value::Numeric(qi), Value::Categorical(grade)}).ok());
  };
  add(1, 0); add(1, 0); add(1, 1);
  add(2, 1); add(2, 2); add(2, 2);
  return data;
}

TEST(CategoricalVerifyTest, OrdinalReportKnownValues) {
  auto report = EvaluateOrdinalTCloseness(OrdinalReleased());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->num_equivalence_classes, 2u);
  // Global: (2/6, 2/6, 2/6); class 1: (2/3, 1/3, 0).
  // Cumulative diffs: |1/3| + |1/3| -> /(m-1)=2 -> 1/3. Symmetric class 2.
  EXPECT_NEAR(report->max_distance, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(report->mean_distance, 1.0 / 3.0, 1e-12);
  EXPECT_TRUE(IsOrdinalTClose(OrdinalReleased(), 0.34).value());
  EXPECT_FALSE(IsOrdinalTClose(OrdinalReleased(), 0.3).value());
}

TEST(CategoricalVerifyTest, TypeMismatchRejected) {
  Dataset data = OrdinalReleased();
  EXPECT_FALSE(EvaluateNominalTCloseness(data).ok());
  Dataset numeric = MakeUniformDataset(10, 1, 3);
  EXPECT_FALSE(EvaluateOrdinalTCloseness(numeric).ok());
}

TEST(CategoricalVerifyTest, NominalVerifierMatchesTvHelper) {
  // Build a nominal release via the nominal t-closeness-first algorithm
  // and cross-check the verifier against ClusterTotalVariation.
  Schema schema({
      Attribute{"q1", AttributeType::kNumeric,
                AttributeRole::kQuasiIdentifier, {}},
      Attribute{"q2", AttributeType::kNumeric,
                AttributeRole::kQuasiIdentifier, {}},
      Attribute{"diag", AttributeType::kNominal, AttributeRole::kConfidential,
                {"a", "b", "c", "d"}},
  });
  Dataset data(schema);
  Rng rng(17);
  std::vector<int32_t> categories;
  for (int i = 0; i < 400; ++i) {
    int32_t code = static_cast<int32_t>(rng.NextBounded(4));
    categories.push_back(code);
    ASSERT_TRUE(data.Append({Value::Numeric(rng.NextDouble()),
                             Value::Numeric(rng.NextDouble()),
                             Value::Categorical(code)})
                    .ok());
  }
  QiSpace space(data);
  auto partition =
      NominalTCloseFirstPartition(space, categories, 3, 0.15);
  ASSERT_TRUE(partition.ok());
  // Aggregate to equivalence classes, then verify.
  double expected_max = 0.0;
  for (const Cluster& cluster : partition->clusters) {
    expected_max =
        std::max(expected_max, ClusterTotalVariation(categories, cluster));
  }
  // Build the released dataset: QIs replaced by cluster ids (simplest
  // equivalence-class marker), nominal column untouched.
  Dataset released = data;
  auto assignment = partition->AssignmentVector();
  for (size_t row = 0; row < released.NumRecords(); ++row) {
    ASSERT_TRUE(released
                    .SetCell(row, 0,
                             Value::Numeric(
                                 static_cast<double>(assignment[row])))
                    .ok());
    ASSERT_TRUE(released.SetCell(row, 1, Value::Numeric(0)).ok());
  }
  auto report = EvaluateNominalTCloseness(released);
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->max_distance, expected_max, 1e-12);
  EXPECT_LE(report->max_distance, 0.15 + 1e-9);
}

// -------------------------------------------------------------- Fuzzing

TEST(FuzzTest, CsvParserNeverCrashesOnGarbage) {
  Schema schema({
      Attribute{"a", AttributeType::kNumeric, AttributeRole::kOther, {}},
      Attribute{"b", AttributeType::kNominal, AttributeRole::kOther,
                {"x", "y"}},
  });
  Rng rng(23);
  for (int trial = 0; trial < 200; ++trial) {
    size_t length = rng.NextBounded(200);
    std::string text;
    for (size_t i = 0; i < length; ++i) {
      text.push_back(static_cast<char>(rng.NextBounded(96) + 32));
      if (rng.NextBounded(10) == 0) text.push_back('\n');
      if (rng.NextBounded(15) == 0) text.push_back(',');
    }
    // Must return (any status), not crash.
    auto parsed = ParseCsvString(text, schema);
    (void)parsed;
  }
  SUCCEED();
}

TEST(FuzzTest, PartitionTsvParserNeverCrashesOnGarbage) {
  Rng rng(29);
  for (int trial = 0; trial < 200; ++trial) {
    size_t length = rng.NextBounded(120);
    std::string text;
    for (size_t i = 0; i < length; ++i) {
      int pick = static_cast<int>(rng.NextBounded(6));
      if (pick == 0) text.push_back('\t');
      else if (pick == 1) text.push_back('\n');
      else if (pick == 2) text.push_back('-');
      else text.push_back(static_cast<char>('0' + rng.NextBounded(10)));
    }
    auto parsed = PartitionFromTsv(text, 4);
    (void)parsed;
  }
  SUCCEED();
}

}  // namespace
}  // namespace tcm
