// Randomized guarantee sweeps: the three algorithms across data
// realizations (seeds), sizes and parameter levels. Complements the
// deterministic sweeps in tclose_test.cc with breadth: every combination
// must produce a valid k-anonymous, t-close release — no exceptions.

#include <tuple>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "privacy/kanonymity.h"
#include "privacy/tcloseness.h"
#include "tclose/anonymizer.h"

namespace tcm {
namespace {

struct SeedSweepParam {
  uint64_t seed;
  size_t n;
  size_t k;
  double t;
};

class SeedSweepTest : public ::testing::TestWithParam<SeedSweepParam> {};

TEST_P(SeedSweepTest, PatientDischargeAllAlgorithmsHoldGuarantees) {
  const SeedSweepParam& param = GetParam();
  PatientDischargeOptions gen;
  gen.num_records = param.n;
  gen.seed = param.seed;
  Dataset data = MakePatientDischargeLike(gen);
  for (TCloseAlgorithm algorithm :
       {TCloseAlgorithm::kMicroaggregationMerge,
        TCloseAlgorithm::kKAnonymityFirst,
        TCloseAlgorithm::kTClosenessFirst}) {
    AnonymizerOptions options;
    options.k = param.k;
    options.t = param.t;
    options.algorithm = algorithm;
    auto result = Anonymize(data, options);
    ASSERT_TRUE(result.ok()) << TCloseAlgorithmName(algorithm);
    auto k_anon = IsKAnonymous(result->anonymized, param.k);
    auto t_close = IsTClose(result->anonymized, param.t);
    ASSERT_TRUE(k_anon.ok() && t_close.ok());
    EXPECT_TRUE(*k_anon) << TCloseAlgorithmName(algorithm) << " seed "
                         << param.seed;
    EXPECT_TRUE(*t_close) << TCloseAlgorithmName(algorithm) << " seed "
                          << param.seed << " maxEMD "
                          << result->max_cluster_emd;
  }
}

std::string SeedSweepName(
    const ::testing::TestParamInfo<SeedSweepParam>& info) {
  return "s" + std::to_string(info.param.seed) + "_n" +
         std::to_string(info.param.n) + "_k" + std::to_string(info.param.k) +
         "_t" + std::to_string(static_cast<int>(info.param.t * 100));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SeedSweepTest,
    ::testing::Values(
        SeedSweepParam{1, 300, 2, 0.05}, SeedSweepParam{1, 300, 3, 0.15},
        SeedSweepParam{2, 500, 2, 0.08}, SeedSweepParam{2, 500, 5, 0.2},
        SeedSweepParam{3, 701, 3, 0.1},   // prime n
        SeedSweepParam{3, 701, 2, 0.25},
        SeedSweepParam{4, 1024, 4, 0.05}, SeedSweepParam{4, 1024, 8, 0.12},
        SeedSweepParam{5, 997, 2, 0.03},  // prime n, strict t
        SeedSweepParam{6, 450, 6, 0.18}),
    SeedSweepName);

class UniformSweepTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, double>> {};

TEST_P(UniformSweepTest, IndependentConfidentialAttribute) {
  // Uniform data: QIs carry no information about the confidential value,
  // the easy case — every algorithm should stay near its k (cluster sizes
  // not much above max{k, k*}).
  auto [n, k, t] = GetParam();
  Dataset data = MakeUniformDataset(n, 3, n * 7 + k);
  for (TCloseAlgorithm algorithm :
       {TCloseAlgorithm::kMicroaggregationMerge,
        TCloseAlgorithm::kKAnonymityFirst,
        TCloseAlgorithm::kTClosenessFirst}) {
    AnonymizerOptions options;
    options.k = k;
    options.t = t;
    options.algorithm = algorithm;
    auto result = Anonymize(data, options);
    ASSERT_TRUE(result.ok()) << TCloseAlgorithmName(algorithm);
    EXPECT_LE(result->max_cluster_emd, t + 1e-9)
        << TCloseAlgorithmName(algorithm);
    EXPECT_GE(result->min_cluster_size, k);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, UniformSweepTest,
    ::testing::Combine(::testing::Values(200, 512),
                       ::testing::Values(2, 5),
                       ::testing::Values(0.1, 0.25)));

}  // namespace
}  // namespace tcm
