// Tests for the out-of-core streaming execution layer: RecordSource and
// its implementations, the streaming CSV reader/writer, and
// StreamingPipelineRunner. The load-bearing properties: (1) streamed
// and in-memory paths agree — a single-window streamed release is
// byte-identical to the in-memory PipelineRunner release at any thread
// count; (2) resident input rows never exceed the max_resident_rows
// budget; (3) every released window independently re-verifies
// k-anonymous and t-close.

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/csv.h"
#include "data/csv_stream.h"
#include "data/generator.h"
#include "data/record_source.h"
#include "engine/pipeline.h"
#include "engine/streaming.h"
#include "privacy/kanonymity.h"
#include "privacy/tcloseness.h"

namespace tcm {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  EXPECT_NE(file, nullptr) << "cannot open " << path;
  std::string bytes;
  char buffer[4096];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    bytes.append(buffer, n);
  }
  std::fclose(file);
  return bytes;
}

// ---------------------------------------------------------- RecordSource

TEST(RecordSourceTest, DatasetSourceStreamsEveryRowInOrder) {
  Dataset data = MakeUniformDataset(257, 3, 11);
  DatasetSource source(&data);
  Dataset drained(source.schema());
  size_t batches = 0;
  while (true) {
    auto got = source.ReadInto(&drained, 100);
    ASSERT_TRUE(got.ok());
    if (*got == 0) break;
    EXPECT_LE(*got, 100u);
    ++batches;
  }
  EXPECT_EQ(batches, 3u);  // 100 + 100 + 57
  EXPECT_TRUE(drained == data);
}

TEST(RecordSourceTest, NextBatchReturnsBoundedBatches) {
  Dataset data = MakeUniformDataset(10, 2, 3);
  DatasetSource source(&data);
  auto batch = source.NextBatch(4);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->NumRecords(), 4u);
  batch = source.NextBatch(100);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->NumRecords(), 6u);
  batch = source.NextBatch(1);
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(batch->empty());
}

TEST(RecordSourceTest, UniformSourceMatchesBatchGeneratorRowForRow) {
  Dataset batch = MakeUniformDataset(503, 4, 77);
  auto source = MakeUniformSource(503, 4, 77);
  Dataset streamed(source->schema());
  ASSERT_TRUE(source->ReadInto(&streamed, 1000).ok());
  EXPECT_TRUE(streamed == batch);
}

TEST(RecordSourceTest, ClusteredSourceMatchesBatchGeneratorRowForRow) {
  Dataset batch = MakeClusteredDataset(211, 3, 5, 19);
  auto source = MakeClusteredSource(211, 3, 5, 19);
  // Drain in awkward batch sizes: chunking must not change the stream.
  Dataset streamed(source->schema());
  for (size_t want : {1u, 7u, 100u, 1000u}) {
    ASSERT_TRUE(source->ReadInto(&streamed, want).ok());
  }
  EXPECT_TRUE(streamed == batch);
}

// --------------------------------------------------- StreamingCsvReader

TEST(StreamingCsvReaderTest, StreamsFileInBatchesIdenticalToReadCsv) {
  Dataset data = MakeAdultLike({.num_records = 300, .seed = 5});
  const std::string path = TempPath("stream_reader_adult.csv");
  ASSERT_TRUE(WriteCsv(data, path).ok());

  auto whole = ReadCsv(path, data.schema());
  ASSERT_TRUE(whole.ok());

  StreamingCsvOptions options;
  options.buffer_bytes = 64;  // force many feed chunks
  auto reader = StreamingCsvReader::Open(path, data.schema(), options);
  ASSERT_TRUE(reader.ok());
  Dataset streamed((*reader)->schema());
  size_t batches = 0;
  while (true) {
    auto got = (*reader)->ReadInto(&streamed, 64);
    ASSERT_TRUE(got.ok());
    if (*got == 0) break;
    ++batches;
  }
  EXPECT_GE(batches, 5u);
  EXPECT_EQ((*reader)->rows_read(), 300u);
  EXPECT_TRUE(streamed == *whole);
  EXPECT_TRUE(streamed == data);
}

TEST(StreamingCsvReaderTest, OpenNumericInfersSchemaAndTakesRoles) {
  Dataset data = MakeUniformDataset(50, 2, 9);
  const std::string path = TempPath("stream_reader_numeric.csv");
  ASSERT_TRUE(WriteCsv(data, path).ok());

  auto reader = StreamingCsvReader::OpenNumeric(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->schema().size(), 3u);
  EXPECT_TRUE((*reader)->schema().QuasiIdentifierIndices().empty());

  auto roled = SchemaWithRoles((*reader)->schema(), {"QI0", "QI1"}, "CONF");
  ASSERT_TRUE(roled.ok());
  ASSERT_TRUE((*reader)->ReplaceSchema(std::move(roled).value()).ok());
  EXPECT_EQ((*reader)->schema().QuasiIdentifierIndices().size(), 2u);
  EXPECT_EQ((*reader)->schema().ConfidentialIndices().size(), 1u);

  // Roles don't change parsing: the rows still match.
  Dataset streamed((*reader)->schema());
  ASSERT_TRUE((*reader)->ReadInto(&streamed, 1000).ok());
  EXPECT_EQ(streamed.NumRecords(), 50u);
}

TEST(StreamingCsvReaderTest, ReplaceSchemaRejectsRenamesAndRetypes) {
  auto input = std::make_unique<std::istringstream>("a,b\n1,2\n");
  auto reader = StreamingCsvReader::FromStreamNumeric(std::move(input));
  ASSERT_TRUE(reader.ok());
  Schema renamed({Attribute{"a", AttributeType::kNumeric,
                            AttributeRole::kOther, {}},
                  Attribute{"c", AttributeType::kNumeric,
                            AttributeRole::kOther, {}}});
  EXPECT_FALSE((*reader)->ReplaceSchema(renamed).ok());
  Schema retyped({Attribute{"a", AttributeType::kNumeric,
                            AttributeRole::kOther, {}},
                  Attribute{"b", AttributeType::kNominal,
                            AttributeRole::kOther, {"x"}}});
  EXPECT_FALSE((*reader)->ReplaceSchema(retyped).ok());
  Schema wrong_size({Attribute{"a", AttributeType::kNumeric,
                               AttributeRole::kOther, {}}});
  EXPECT_FALSE((*reader)->ReplaceSchema(wrong_size).ok());
}

TEST(StreamingCsvReaderTest, ReplaceSchemaRejectsCategoryChanges) {
  Schema schema({Attribute{"cat", AttributeType::kNominal,
                           AttributeRole::kOther, {"red", "green"}}});
  auto input = std::make_unique<std::istringstream>("cat\nred\n");
  auto reader = StreamingCsvReader::FromStream(std::move(input), schema);
  ASSERT_TRUE(reader.ok());
  // Reordered labels would silently remap codes mid-stream: rejected.
  Schema reordered({Attribute{"cat", AttributeType::kNominal,
                              AttributeRole::kOther, {"green", "red"}}});
  EXPECT_FALSE((*reader)->ReplaceSchema(reordered).ok());
  // Role-only change is fine.
  Schema roled({Attribute{"cat", AttributeType::kNominal,
                          AttributeRole::kConfidential, {"red", "green"}}});
  EXPECT_TRUE((*reader)->ReplaceSchema(roled).ok());
}

// --------------------------------------------------- StreamingCsvWriter

TEST(StreamingCsvWriterTest, WindowedWritesMatchWriteCsvBytes) {
  Dataset data = MakeAdultLike({.num_records = 123, .seed = 31});
  const std::string whole_path = TempPath("writer_whole.csv");
  const std::string windowed_path = TempPath("writer_windowed.csv");
  ASSERT_TRUE(WriteCsv(data, whole_path).ok());

  auto writer = StreamingCsvWriter::Open(windowed_path, data.schema());
  ASSERT_TRUE(writer.ok());
  DatasetSource source(&data);
  while (true) {
    auto batch = source.NextBatch(40);
    ASSERT_TRUE(batch.ok());
    if (batch->empty()) break;
    ASSERT_TRUE((*writer)->WriteRows(*batch).ok());
  }
  ASSERT_TRUE((*writer)->Close().ok());
  EXPECT_EQ((*writer)->rows_written(), 123u);
  EXPECT_EQ(ReadFileBytes(windowed_path), ReadFileBytes(whole_path));
}

// ----------------------------------------------- StreamingPipelineRunner

StreamingSpec BaseSpec() {
  StreamingSpec spec;
  spec.algorithm = "tclose_first";
  spec.k = 4;
  spec.t = 0.25;
  spec.seed = 7;
  spec.shard_size = 256;
  spec.max_resident_rows = 100000;
  return spec;
}

// The acceptance anchor: when the budget covers the whole stream, the
// streamed release bytes equal the in-memory PipelineRunner's — checked
// at two thread counts.
TEST(StreamingPipelineRunnerTest, SingleWindowByteIdenticalToInMemory) {
  Dataset data = MakeUniformDataset(1500, 3, 2016);
  const std::string input_path = TempPath("stream_identity_in.csv");
  ASSERT_TRUE(WriteCsv(data, input_path).ok());

  for (size_t threads : {1u, 4u}) {
    const std::string suffix = std::to_string(threads) + ".csv";
    const std::string mem_path = TempPath("stream_identity_mem" + suffix);
    PipelineSpec mem_spec;
    mem_spec.input_path = input_path;
    mem_spec.output_path = mem_path;
    mem_spec.quasi_identifiers = {"QI0", "QI1", "QI2"};
    mem_spec.confidential = "CONF";
    mem_spec.algorithm = "tclose_first";
    mem_spec.k = 4;
    mem_spec.t = 0.25;
    mem_spec.seed = 7;
    mem_spec.shard_size = 256;
    PipelineRunner mem_runner(threads);
    ASSERT_TRUE(mem_runner.Run(mem_spec).ok());

    const std::string str_path = TempPath("stream_identity_str" + suffix);
    auto reader = StreamingCsvReader::OpenNumeric(input_path);
    ASSERT_TRUE(reader.ok());
    auto roled =
        SchemaWithRoles((*reader)->schema(), {"QI0", "QI1", "QI2"}, "CONF");
    ASSERT_TRUE(roled.ok());
    ASSERT_TRUE((*reader)->ReplaceSchema(std::move(roled).value()).ok());
    StreamingSpec spec = BaseSpec();
    spec.output_path = str_path;
    StreamingPipelineRunner runner(threads);
    auto report = runner.Run(reader->get(), spec);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->num_windows, 1u);
    EXPECT_TRUE(report->k_verified);
    EXPECT_TRUE(report->t_verified);

    EXPECT_EQ(ReadFileBytes(str_path), ReadFileBytes(mem_path))
        << "streamed release differs from in-memory release at threads="
        << threads;
  }
}

TEST(StreamingPipelineRunnerTest, MultiWindowRespectsResidentBudget) {
  constexpr size_t kRows = 3000;
  constexpr size_t kBudget = 700;
  auto source = MakeUniformSource(kRows, 3, 42);
  StreamingSpec spec = BaseSpec();
  spec.max_resident_rows = kBudget;
  const std::string out_path = TempPath("stream_multiwindow.csv");
  spec.output_path = out_path;

  StreamingPipelineRunner runner(2);
  auto report = runner.Run(source.get(), spec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GE(report->num_windows, 4u);
  EXPECT_EQ(report->total_rows, kRows);
  EXPECT_LE(report->peak_resident_rows, kBudget);
  EXPECT_TRUE(report->k_verified);
  EXPECT_TRUE(report->t_verified);
  size_t sum = 0;
  for (const StreamingWindowSummary& window : report->windows) {
    EXPECT_GE(window.rows, spec.k);
    EXPECT_LE(window.rows, kBudget);
    sum += window.rows;
  }
  EXPECT_EQ(sum, kRows);

  // The concatenation of per-window k-anonymous releases is k-anonymous.
  auto release = ReadNumericCsv(out_path);
  ASSERT_TRUE(release.ok());
  EXPECT_EQ(release->NumRecords(), kRows);
  ASSERT_TRUE(AssignRoles(&*release, {"QI0", "QI1", "QI2"}, "CONF").ok());
  auto k_ok = IsKAnonymous(*release, spec.k);
  ASSERT_TRUE(k_ok.ok());
  EXPECT_TRUE(*k_ok);
}

TEST(StreamingPipelineRunnerTest, MultiWindowReleaseIsThreadInvariant) {
  StreamingSpec spec = BaseSpec();
  spec.max_resident_rows = 500;
  std::string reference;
  for (size_t threads : {1u, 4u}) {
    auto source = MakeUniformSource(1700, 2, 13);
    const std::string out_path =
        TempPath("stream_invariant_" + std::to_string(threads) + ".csv");
    spec.output_path = out_path;
    StreamingPipelineRunner runner(threads);
    auto report = runner.Run(source.get(), spec);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_GT(report->num_windows, 1u);
    std::string bytes = ReadFileBytes(out_path);
    if (threads == 1) {
      reference = bytes;
    } else {
      EXPECT_EQ(bytes, reference);
    }
  }
}

// Pipelined I/O: with overlap_io the reads of windows 2..N run on the
// pool while earlier windows are processed. The resident budget still
// holds (the window target is halved to leave room for the read-ahead),
// both guarantees verify, and the release stays byte-identical for any
// thread count — including one thread, where the "prefetch" is stolen
// back and run inline.
TEST(StreamingPipelineRunnerTest, OverlapIoStaysBoundedAndDeterministic) {
  constexpr size_t kRows = 3000;
  constexpr size_t kBudget = 700;
  StreamingSpec spec = BaseSpec();
  spec.max_resident_rows = kBudget;
  spec.overlap_io = true;
  std::string reference;
  for (size_t threads : {1u, 2u, 4u}) {
    auto source = MakeUniformSource(kRows, 3, 42);
    const std::string out_path =
        TempPath("stream_overlap_" + std::to_string(threads) + ".csv");
    spec.output_path = out_path;
    StreamingPipelineRunner runner(threads);
    auto report = runner.Run(source.get(), spec);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->total_rows, kRows);
    EXPECT_LE(report->peak_resident_rows, kBudget);
    EXPECT_GT(report->num_windows, 1u);
    EXPECT_GT(report->overlapped_reads, 0u);
    EXPECT_TRUE(report->k_verified);
    EXPECT_TRUE(report->t_verified);
    std::string bytes = ReadFileBytes(out_path);
    if (reference.empty()) {
      reference = bytes;
    } else {
      EXPECT_EQ(bytes, reference) << threads << " threads";
    }
  }

  // The legacy serial path is untouched: overlap off reports no
  // overlapped reads (and the existing byte-pinning tests above cover
  // its output).
  auto source = MakeUniformSource(kRows, 3, 42);
  StreamingSpec serial = BaseSpec();
  serial.max_resident_rows = kBudget;
  StreamingPipelineRunner runner(2);
  auto report = runner.Run(source.get(), serial);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->overlapped_reads, 0u);
}

// Hierarchical repair inside windows composes with streaming: verdicts
// hold per window and the merge ledger balances across the whole run.
TEST(StreamingPipelineRunnerTest, HierarchicalMergeComposesWithWindows) {
  auto source = MakeUniformSource(2400, 3, 21);
  StreamingSpec spec = BaseSpec();
  spec.max_resident_rows = 800;
  spec.shard_size = 120;
  spec.merge_strategy = MergeStrategy::kHierarchical;
  StreamingPipelineRunner runner(2);
  auto report = runner.Run(source.get(), spec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->k_verified);
  EXPECT_TRUE(report->t_verified);
  EXPECT_EQ(report->candidate_checks,
            report->pruned_checks + report->exact_checks);
  EXPECT_EQ(report->subtree_merges + report->tail_merges,
            report->final_merges);
}

TEST(StreamingPipelineRunnerTest, TailSmallerThanKJoinsFinalWindow) {
  // 104-row budget with k=4 gives 100-row fill targets; 302 rows leave a
  // 2-row tail that cannot be anonymized alone and must join the last
  // window.
  auto source = MakeUniformSource(302, 2, 99);
  StreamingSpec spec = BaseSpec();
  spec.max_resident_rows = 104;
  StreamingPipelineRunner runner(1);
  auto report = runner.Run(source.get(), spec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->total_rows, 302u);
  EXPECT_LE(report->peak_resident_rows, 104u);
  for (const StreamingWindowSummary& window : report->windows) {
    EXPECT_GE(window.rows, spec.k);
  }
}

TEST(StreamingPipelineRunnerTest, SinkSeesEveryWindowInOrder) {
  auto source = MakeUniformSource(900, 2, 55);
  StreamingSpec spec = BaseSpec();
  spec.max_resident_rows = 300;
  StreamingPipelineRunner runner(2);
  size_t sink_rows = 0;
  size_t sink_calls = 0;
  auto report = runner.Run(
      source.get(), spec,
      [&](const Dataset& release, const StreamingWindowSummary& summary) {
        EXPECT_EQ(release.NumRecords(), summary.rows);
        sink_rows += release.NumRecords();
        ++sink_calls;
        return Status::Ok();
      });
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(sink_calls, report->num_windows);
  EXPECT_EQ(sink_rows, report->total_rows);
}

TEST(StreamingPipelineRunnerTest, RejectsBudgetSmallerThanKFloor) {
  auto source = MakeUniformSource(100, 2, 1);
  StreamingSpec spec = BaseSpec();
  spec.k = 10;
  spec.max_resident_rows = 15;  // < k + max(k, 2) = 20
  StreamingPipelineRunner runner(1);
  auto report = runner.Run(source.get(), spec);
  EXPECT_FALSE(report.ok());
}

TEST(StreamingPipelineRunnerTest, RejectsUnknownAlgorithmBeforeReading) {
  auto source = MakeUniformSource(100, 2, 1);
  StreamingSpec spec = BaseSpec();
  spec.algorithm = "no_such_algorithm";
  StreamingPipelineRunner runner(1);
  auto report = runner.Run(source.get(), spec);
  EXPECT_FALSE(report.ok());
  // Nothing was consumed: the stream still yields its first row.
  Dataset probe(source->schema());
  auto got = source->ReadInto(&probe, 1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 1u);
}

TEST(StreamingPipelineRunnerTest, RejectsSchemaWithoutRoles) {
  Dataset data = MakeUniformDataset(50, 2, 3);
  const std::string path = TempPath("stream_no_roles.csv");
  ASSERT_TRUE(WriteCsv(data, path).ok());
  auto reader = StreamingCsvReader::OpenNumeric(path);  // roles all kOther
  ASSERT_TRUE(reader.ok());
  StreamingSpec spec = BaseSpec();
  StreamingPipelineRunner runner(1);
  auto report = runner.Run(reader->get(), spec);
  EXPECT_FALSE(report.ok());
}

TEST(StreamingPipelineRunnerTest, EmptyStreamIsAnError) {
  Dataset data(Schema({Attribute{"QI0", AttributeType::kNumeric,
                                 AttributeRole::kQuasiIdentifier, {}},
                       Attribute{"CONF", AttributeType::kNumeric,
                                 AttributeRole::kConfidential, {}}}));
  DatasetSource source(&data);
  StreamingSpec spec = BaseSpec();
  StreamingPipelineRunner runner(1);
  auto report = runner.Run(&source, spec);
  EXPECT_FALSE(report.ok());
}

}  // namespace
}  // namespace tcm
