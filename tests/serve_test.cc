// Integration-test wall for the tcm_serve subsystem: every suite boots a
// REAL JobServer on an ephemeral localhost port and talks to it over a
// real TCP socket through ServeClient — the same daemon core and wire
// path tools/tcm_serve.cc ships. Load-bearing properties pinned here:
// concurrent submissions are isolated and byte-identical to direct
// RunJob releases (including the golden pins), every error-taxonomy
// code is observable over the wire, the bounded queue pushes back when
// full, cancel wins only while a job is still queued, and shutdown is a
// graceful drain that still delivers final events.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/registry.h"
#include "microagg/partition.h"
#include "tcm/api.h"

namespace tcm {
namespace {

using std::chrono::steady_clock;

std::string GoldenDir() { return TCM_GOLDEN_DIR; }

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "serve_" + name;
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool WaitUntil(const std::function<bool()>& predicate,
               int timeout_ms = 20000) {
  const auto deadline =
      steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return predicate();
}

// ----- event accessors (empty/0 when absent, asserted by callers) -----

std::string EventName(const JsonValue& event) {
  const JsonValue* name = event.Find("event");
  return (name != nullptr && name->is_string()) ? name->string_value() : "";
}

std::string EventState(const JsonValue& event) {
  const JsonValue* state = event.Find("state");
  return (state != nullptr && state->is_string()) ? state->string_value()
                                                  : "";
}

std::string EventCode(const JsonValue& event) {
  const JsonValue* code = event.Find("code");
  return (code != nullptr && code->is_string()) ? code->string_value() : "";
}

uint64_t EventJob(const JsonValue& event) {
  const JsonValue* job = event.Find("job");
  return (job != nullptr && job->is_number()) ? job->GetUint().value_or(0)
                                              : 0;
}

ServeClient ConnectOrDie(const JobServer& server) {
  auto client = ServeClient::Connect("127.0.0.1", server.port());
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return std::move(client).value();
}

// One status poll over the wire.
JsonValue QueryStatus(ServeClient* client, uint64_t job) {
  ServeRequest request;
  request.verb = ServeVerb::kStatus;
  request.job = job;
  EXPECT_TRUE(client->Send(request).ok());
  auto event = client->ReadEvent();
  EXPECT_TRUE(event.ok()) << event.status().ToString();
  return std::move(event).value();
}

// Submits without waiting and returns the accepted/error event.
JsonValue SubmitNoWait(ServeClient* client, const JobSpec& spec) {
  JsonValue request = JsonValue::MakeObject();
  request.Set("verb", "submit");
  request.Set("spec", spec.ToJson());
  request.Set("wait", false);
  EXPECT_TRUE(client->Send(request).ok());
  auto event = client->ReadEvent();
  EXPECT_TRUE(event.ok()) << event.status().ToString();
  return std::move(event).value();
}

// ----- test-only registry algorithms --------------------------------------

// Sleeps long enough for the test to observe queued/running states, then
// produces a valid k-anonymous partition of consecutive rows.
void RegisterSlowAlgorithm() {
  static const bool registered = [] {
    Status status = AlgorithmRegistry::BuiltIns().Register(
        "test_slow", "test-only: sleeps, then groups consecutive rows",
        [](const Dataset& data,
           const AlgorithmParams& params) -> Result<Partition> {
          std::this_thread::sleep_for(std::chrono::milliseconds(500));
          Partition partition;
          const size_t n = data.NumRecords();
          const size_t k = params.k == 0 ? 1 : params.k;
          for (size_t row = 0; row < n; row += k) {
            Cluster cluster;
            for (size_t i = row; i < std::min(n, row + k); ++i) {
              cluster.push_back(i);
            }
            if (cluster.size() < k && !partition.clusters.empty()) {
              Cluster& last = partition.clusters.back();
              last.insert(last.end(), cluster.begin(), cluster.end());
            } else {
              partition.clusters.push_back(std::move(cluster));
            }
          }
          return partition;
        });
    return status.ok();
  }();
  ASSERT_TRUE(registered);
}

// Pairs rows regardless of k, so verification of any k > 2 job fails
// with kPrivacyViolation (mirrors api_test's taxonomy fixture).
void RegisterUndersizedAlgorithm() {
  static const bool registered = [] {
    Status status = AlgorithmRegistry::BuiltIns().Register(
        "test_undersized_serve", "test-only: pairs regardless of k",
        [](const Dataset& data, const AlgorithmParams&) -> Result<Partition> {
          Partition partition;
          for (size_t row = 0; row < data.NumRecords(); row += 2) {
            Cluster cluster;
            cluster.push_back(row);
            if (row + 1 < data.NumRecords()) cluster.push_back(row + 1);
            partition.clusters.push_back(std::move(cluster));
          }
          return partition;
        });
    return status.ok();
  }();
  ASSERT_TRUE(registered);
}

JobSpec SlowSpec(size_t rows = 64) {
  RegisterSlowAlgorithm();
  JobSpec spec;
  spec.input.kind = InputKind::kSynthetic;
  spec.input.generator = "uniform";
  spec.input.rows = rows;
  spec.input.seed = 11;
  spec.algorithm.name = "test_slow";
  spec.algorithm.k = 4;
  spec.algorithm.t = 10.0;  // never triggers the repair pass
  spec.execution.shard_size = 0;
  spec.verify = false;
  return spec;
}

JobSpec UniformSpec(uint64_t seed, size_t rows) {
  JobSpec spec;
  spec.input.kind = InputKind::kSynthetic;
  spec.input.generator = "uniform";
  spec.input.rows = rows;
  spec.input.quasi_identifiers = 2;
  spec.input.seed = seed;
  spec.algorithm.name = "tclose_first";
  spec.algorithm.k = 5;
  spec.algorithm.t = 0.3;
  spec.algorithm.seed = seed;
  spec.execution.shard_size = 64;
  return spec;
}

// Zeroes every "*_seconds" and replaces release_path, the same
// normalization tools/job_golden.cmake applies to the pinned report.
JsonValue NormalizeReport(const JsonValue& value) {
  if (value.is_object()) {
    JsonValue out = JsonValue::MakeObject();
    for (const JsonValue::Member& member : value.members()) {
      const std::string& key = member.first;
      if (key.size() > 8 &&
          key.compare(key.size() - 8, 8, "_seconds") == 0) {
        out.Set(key, 0);
      } else if (key == "release_path") {
        out.Set(key, "<release>");
      } else {
        out.Set(key, NormalizeReport(member.second));
      }
    }
    return out;
  }
  if (value.is_array()) {
    JsonValue out = JsonValue::MakeArray();
    for (size_t i = 0; i < value.size(); ++i) {
      out.Append(NormalizeReport(value.at(i)));
    }
    return out;
  }
  return value;
}

// ----- the wall -----------------------------------------------------------

// Standalone JobQueue (no server): Drain must outlast the pool task of a
// job cancelled while queued — that task still captures the queue, so
// destroying the queue right after Drain would otherwise be a
// use-after-free once a worker pops it (ASan/TSan pin this).
TEST(JobQueueTest, DrainOutlastsCancelledQueuedTasks) {
  RegisterSlowAlgorithm();
  ThreadPool pool(1);
  {
    JobQueue queue(&pool, 8);
    auto job_a = queue.Submit(SlowSpec());
    ASSERT_TRUE(job_a.ok()) << job_a.status().ToString();
    auto job_b = queue.Submit(SlowSpec());
    ASSERT_TRUE(job_b.ok()) << job_b.status().ToString();

    // The single worker is inside job A; B is still queued.
    auto cancelled = queue.Cancel(*job_b);
    ASSERT_TRUE(cancelled.ok());
    EXPECT_EQ(cancelled->state, JobState::kCancelled);

    queue.Drain();
    EXPECT_EQ(queue.Status(*job_a)->state, JobState::kSucceeded);
    EXPECT_EQ(queue.Status(*job_b)->state, JobState::kCancelled);
    EXPECT_EQ(queue.pending(), 0u);
  }  // queue destroyed while the pool is still alive
  pool.Submit([]() {}).get();  // pool is healthy and past B's task
  pool.Shutdown();
}

TEST(ServeBasicsTest, StartStopWithoutTraffic) {
  JobServer server(ServeOptions{});
  ASSERT_TRUE(server.Start().ok());
  EXPECT_GT(server.port(), 0);
  server.RequestShutdown();
  server.Wait();
}

TEST(ServeBasicsTest, PingReportsProtocolVersion) {
  ServeOptions options;
  options.threads = 1;
  JobServer server(options);
  ASSERT_TRUE(server.Start().ok());
  ServeClient client = ConnectOrDie(server);
  EXPECT_EQ(client.protocol(), kServeProtocolVersion);

  ServeRequest ping;
  ping.verb = ServeVerb::kPing;
  ping.id = 42;
  ASSERT_TRUE(client.Send(ping).ok());
  auto pong = client.ReadEvent();
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(EventName(*pong), "pong");
  EXPECT_EQ(pong->Find("protocol")->GetUint().value(),
            static_cast<uint64_t>(kServeProtocolVersion));
  EXPECT_EQ(pong->Find("id")->GetUint().value(), 42u);
}

TEST(ServeBasicsTest, MalformedLinesDoNotPoisonTheConnection) {
  ServeOptions options;
  options.threads = 1;
  JobServer server(options);
  ASSERT_TRUE(server.Start().ok());
  ServeClient client = ConnectOrDie(server);

  ASSERT_TRUE(client.SendText("{this is not json").ok());
  auto error = client.ReadEvent();
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(EventName(*error), "error");
  EXPECT_EQ(EventCode(*error), "InvalidArgument");

  ASSERT_TRUE(client.SendText("{\"verb\": \"teleport\"}").ok());
  error = client.ReadEvent();
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(EventName(*error), "error");

  ServeRequest ping;
  ping.verb = ServeVerb::kPing;
  ASSERT_TRUE(client.Send(ping).ok());
  auto pong = client.ReadEvent();
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(EventName(*pong), "pong");
}

TEST(ServeBasicsTest, StatusOfUnknownJobIsNotFound) {
  ServeOptions options;
  options.threads = 1;
  JobServer server(options);
  ASSERT_TRUE(server.Start().ok());
  ServeClient client = ConnectOrDie(server);
  JsonValue event = QueryStatus(&client, 999);
  EXPECT_EQ(EventName(event), "error");
  EXPECT_EQ(EventCode(event), "NotFound");
}

// Bounded terminal retention on the standalone queue: past the cap the
// oldest-completed record is evicted, queries for it fail with
// kFailedPrecondition (distinct from the kNotFound of a never-issued
// id), and the lifetime tallies keep counting evicted jobs.
TEST(JobQueueTest, TerminalRetentionEvictsOldestCompleted) {
  ThreadPool pool(1);
  JobQueue queue(&pool, 8, /*max_terminal_jobs=*/2);
  std::vector<uint64_t> ids;
  for (int i = 0; i < 3; ++i) {
    auto id = queue.Submit(UniformSpec(/*seed=*/40 + i, /*rows=*/60));
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ids.push_back(*id);
  }
  // One worker: jobs finish in submission order, so job 1 is the oldest
  // completion and the one eviction removes.
  queue.Drain();

  auto evicted = queue.Status(ids[0]);
  ASSERT_FALSE(evicted.ok());
  EXPECT_EQ(evicted.status().code(), StatusCode::kFailedPrecondition)
      << evicted.status().ToString();
  EXPECT_EQ(queue.Status(ids[1])->state, JobState::kSucceeded);
  EXPECT_EQ(queue.Status(ids[2])->state, JobState::kSucceeded);

  auto unknown = queue.Status(999);
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);

  // The tallies still cover every job ever seen, not just retained ones.
  EXPECT_EQ(queue.total_jobs(), 3u);
  EXPECT_EQ(queue.StateCounts().succeeded, 3u);
}

// The same contract over the wire against a live daemon: with a
// retention cap of 1, the second completion evicts the first job's
// record. Its status is a FailedPrecondition error event while a
// never-issued id stays NotFound, so clients can tell "evicted" apart
// from "wrong id".
TEST(ServeSubmitTest, EvictedJobStatusIsDistinctFromUnknown) {
  ServeOptions options;
  options.threads = 1;
  options.max_terminal_jobs = 1;
  JobServer server(options);
  ASSERT_TRUE(server.Start().ok());
  ServeClient client = ConnectOrDie(server);

  auto first = client.SubmitAndWait(
      UniformSpec(/*seed=*/7, /*rows=*/120).ToJson());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_EQ(EventState(*first), "succeeded");
  const uint64_t first_id = EventJob(*first);
  ASSERT_GT(first_id, 0u);

  auto second = client.SubmitAndWait(
      UniformSpec(/*seed=*/8, /*rows=*/120).ToJson());
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  ASSERT_EQ(EventState(*second), "succeeded");
  const uint64_t second_id = EventJob(*second);

  JsonValue evicted = QueryStatus(&client, first_id);
  EXPECT_EQ(EventName(evicted), "error");
  EXPECT_EQ(EventCode(evicted), "FailedPrecondition");

  JsonValue kept = QueryStatus(&client, second_id);
  EXPECT_EQ(EventName(kept), "state");
  EXPECT_EQ(EventState(kept), "succeeded");

  JsonValue unknown = QueryStatus(&client, 999);
  EXPECT_EQ(EventName(unknown), "error");
  EXPECT_EQ(EventCode(unknown), "NotFound");
}

TEST(ServeSubmitTest, WaitedSubmitStreamsToSuccess) {
  ServeOptions options;
  options.threads = 2;
  JobServer server(options);
  ASSERT_TRUE(server.Start().ok());
  ServeClient client = ConnectOrDie(server);

  JobSpec spec = UniformSpec(/*seed=*/3, /*rows=*/400);
  auto terminal = client.SubmitAndWait(spec.ToJson());
  ASSERT_TRUE(terminal.ok()) << terminal.status().ToString();
  ASSERT_EQ(EventName(*terminal), "state");
  EXPECT_EQ(EventState(*terminal), "succeeded");
  const JsonValue* report = terminal->Find("report");
  ASSERT_NE(report, nullptr);
  EXPECT_EQ(report->Find("rows")->GetUint().value(), 400u);
  EXPECT_TRUE(report->Find("verification")
                  ->Find("t_close")
                  ->GetBool()
                  .value());
}

// The served release must be byte-identical to what the same JobSpec
// produces through RunJob directly — for six concurrent clients at once,
// each on its own connection with its own spec.
TEST(ServeSubmitTest, ConcurrentSubmissionsAreIsolatedAndByteIdentical) {
  ServeOptions options;
  options.threads = 4;
  options.max_pending = 16;
  JobServer server(options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 6;
  std::vector<std::string> served(kClients), direct(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i]() {
      JobSpec spec = UniformSpec(/*seed=*/100 + i, /*rows=*/300 + 40 * i);
      spec.output.release_path =
          TempPath("concurrent_" + std::to_string(i) + ".csv");
      auto client = ServeClient::Connect("127.0.0.1", server.port());
      ASSERT_TRUE(client.ok()) << client.status().ToString();
      auto terminal = client->SubmitAndWait(spec.ToJson());
      ASSERT_TRUE(terminal.ok()) << terminal.status().ToString();
      ASSERT_EQ(EventState(*terminal), "succeeded")
          << terminal->Write(2);
      served[i] = ReadFileOrDie(spec.output.release_path);
    });
  }
  for (std::thread& thread : clients) thread.join();

  for (int i = 0; i < kClients; ++i) {
    JobSpec spec = UniformSpec(/*seed=*/100 + i, /*rows=*/300 + 40 * i);
    spec.output.release_path =
        TempPath("direct_" + std::to_string(i) + ".csv");
    auto report = RunJob(spec);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    direct[i] = ReadFileOrDie(spec.output.release_path);
    EXPECT_FALSE(direct[i].empty());
    EXPECT_EQ(served[i], direct[i]) << "client " << i;
  }
}

// The golden job pin, served: release bytes and the timing-normalized
// report must equal the committed pins exactly.
TEST(ServeSubmitTest, GoldenJobServedByteIdentical) {
  ServeOptions options;
  options.threads = 2;
  JobServer server(options);
  ASSERT_TRUE(server.Start().ok());
  ServeClient client = ConnectOrDie(server);

  auto spec = JobSpec::FromJsonFile(GoldenDir() + "/job_tclose_first.json");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  spec->input.path = GoldenDir() + "/input_mcd_120.csv";
  spec->output.release_path = TempPath("golden_release.csv");

  auto terminal = client.SubmitAndWait(spec->ToJson());
  ASSERT_TRUE(terminal.ok()) << terminal.status().ToString();
  ASSERT_EQ(EventState(*terminal), "succeeded") << terminal->Write(2);

  EXPECT_EQ(ReadFileOrDie(spec->output.release_path),
            ReadFileOrDie(GoldenDir() + "/release_tclose_first_k5_t30.csv"));

  const JsonValue* report = terminal->Find("report");
  ASSERT_NE(report, nullptr);
  auto pinned =
      ReadJsonFile(GoldenDir() + "/report_tclose_first.json");
  ASSERT_TRUE(pinned.ok()) << pinned.status().ToString();
  EXPECT_EQ(NormalizeReport(*report), NormalizeReport(*pinned))
      << "served report drifted from the pin:\n"
      << NormalizeReport(*report).Write(2);
}

// All four taxonomy codes, observed over the wire: spec-level failures
// arrive as error events at submit time, execution failures as failed
// state events — both carrying the StatusCodeName string.
TEST(ServeErrorTaxonomyTest, AllFourCodesTravelOverTheWire) {
  RegisterUndersizedAlgorithm();
  ServeOptions options;
  options.threads = 1;
  JobServer server(options);
  ASSERT_TRUE(server.Start().ok());
  ServeClient client = ConnectOrDie(server);

  // kInvalidSpec: k = 0 is rejected while parsing the submit request.
  ASSERT_TRUE(client
                  .SendText("{\"verb\":\"submit\",\"spec\":{\"version\":1,"
                            "\"input\":{\"kind\":\"synthetic\"},"
                            "\"algorithm\":{\"k\":0}}}")
                  .ok());
  auto event = client.ReadEvent();
  ASSERT_TRUE(event.ok());
  EXPECT_EQ(EventName(*event), "error");
  EXPECT_EQ(EventCode(*event), "InvalidSpec");

  // kUnknownAlgorithm: a name the registry has never heard of.
  ASSERT_TRUE(client
                  .SendText("{\"verb\":\"submit\",\"spec\":{\"version\":1,"
                            "\"input\":{\"kind\":\"synthetic\"},"
                            "\"algorithm\":{\"name\":\"bogus\"}}}")
                  .ok());
  event = client.ReadEvent();
  ASSERT_TRUE(event.ok());
  EXPECT_EQ(EventName(*event), "error");
  EXPECT_EQ(EventCode(*event), "UnknownAlgorithm");

  // kIoError: a spec that validates but whose input cannot be read.
  JobSpec io_spec;
  io_spec.input.kind = InputKind::kCsvPath;
  io_spec.input.path = "/nonexistent/tcm_input.csv";
  io_spec.roles.quasi_identifiers = {"a"};
  io_spec.roles.confidential = "b";
  auto terminal = client.SubmitAndWait(io_spec.ToJson());
  ASSERT_TRUE(terminal.ok()) << terminal.status().ToString();
  ASSERT_EQ(EventName(*terminal), "state");
  EXPECT_EQ(EventState(*terminal), "failed");
  EXPECT_EQ(EventCode(*terminal), "IoError");

  // kPrivacyViolation: an algorithm whose release flunks verification.
  JobSpec violation;
  violation.input.kind = InputKind::kSynthetic;
  violation.input.rows = 64;
  violation.input.seed = 5;
  violation.algorithm.name = "test_undersized_serve";
  violation.algorithm.k = 5;
  violation.algorithm.t = 10.0;
  violation.execution.shard_size = 0;
  violation.verify = true;
  terminal = client.SubmitAndWait(violation.ToJson());
  ASSERT_TRUE(terminal.ok()) << terminal.status().ToString();
  EXPECT_EQ(EventState(*terminal), "failed");
  EXPECT_EQ(EventCode(*terminal), "PrivacyViolation");
}

// max_pending bounds queued + running: the daemon pushes back instead of
// buffering without limit, and frees the slot once the job finishes.
TEST(ServeBackpressureTest, FullQueueRejectsThenRecovers) {
  ServeOptions options;
  options.threads = 1;
  options.max_pending = 1;
  JobServer server(options);
  ASSERT_TRUE(server.Start().ok());
  ServeClient client = ConnectOrDie(server);

  JsonValue accepted = SubmitNoWait(&client, SlowSpec());
  ASSERT_EQ(EventName(accepted), "accepted") << accepted.Write(2);
  const uint64_t job1 = EventJob(accepted);

  JsonValue rejected = SubmitNoWait(&client, SlowSpec());
  EXPECT_EQ(EventName(rejected), "error") << rejected.Write(2);
  EXPECT_EQ(EventCode(rejected), "FailedPrecondition");

  ASSERT_TRUE(WaitUntil([&]() {
    return EventState(QueryStatus(&client, job1)) == "succeeded";
  }));

  JsonValue again = SubmitNoWait(&client, SlowSpec());
  EXPECT_EQ(EventName(again), "accepted") << again.Write(2);
  ASSERT_TRUE(WaitUntil([&]() {
    return EventState(QueryStatus(&client, EventJob(again))) == "succeeded";
  }));
}

TEST(ServeCancelTest, CancelWinsOnQueuedJobsOnly) {
  ServeOptions options;
  options.threads = 1;
  options.max_pending = 4;
  JobServer server(options);
  ASSERT_TRUE(server.Start().ok());
  ServeClient client = ConnectOrDie(server);

  // job1 occupies the single worker; job2 sits in the queue behind it.
  const uint64_t job1 = EventJob(SubmitNoWait(&client, SlowSpec()));
  const uint64_t job2 = EventJob(SubmitNoWait(&client, SlowSpec()));
  ASSERT_NE(job1, 0u);
  ASSERT_NE(job2, 0u);

  ServeRequest cancel;
  cancel.verb = ServeVerb::kCancel;
  cancel.job = job2;
  ASSERT_TRUE(client.Send(cancel).ok());
  auto cancelled = client.ReadEvent();
  ASSERT_TRUE(cancelled.ok());
  EXPECT_EQ(EventState(*cancelled), "cancelled") << cancelled->Write(2);
  EXPECT_EQ(EventState(QueryStatus(&client, job2)), "cancelled");

  // Cancelling an unknown id is NotFound; cancelling a finished job is a
  // no-op that reports the (unchanged) terminal state.
  cancel.job = 999;
  ASSERT_TRUE(client.Send(cancel).ok());
  auto missing = client.ReadEvent();
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(EventCode(*missing), "NotFound");

  ASSERT_TRUE(WaitUntil([&]() {
    return EventState(QueryStatus(&client, job1)) == "succeeded";
  }));
  cancel.job = job1;
  ASSERT_TRUE(client.Send(cancel).ok());
  auto too_late = client.ReadEvent();
  ASSERT_TRUE(too_late.ok());
  EXPECT_EQ(EventState(*too_late), "succeeded") << too_late->Write(2);
}

// ----- the stats verb (protocol v2 observability) -------------------------

JsonValue QueryStats(ServeClient* client) {
  auto event = client->Stats();
  EXPECT_TRUE(event.ok()) << event.status().ToString();
  return std::move(event).value();
}

uint64_t JobsCount(const JsonValue& stats, const char* state) {
  const JsonValue* jobs = stats.Find("jobs");
  EXPECT_NE(jobs, nullptr);
  if (jobs == nullptr) return 0;
  const JsonValue* value = jobs->Find(state);
  EXPECT_NE(value, nullptr) << state;
  return value != nullptr ? value->GetUint().value_or(0) : 0;
}

// A fresh daemon answers stats with the documented shape: pinned
// protocol + stats_schema versions, all five job states at zero, zero
// queue depth, and the three metric families.
TEST(ServeStatsTest, StatsEventShapeAndVersionPins) {
  ServeOptions options;
  options.threads = 1;
  JobServer server(options);
  ASSERT_TRUE(server.Start().ok());
  ServeClient client = ConnectOrDie(server);

  JsonValue stats = QueryStats(&client);
  EXPECT_EQ(EventName(stats), "stats") << stats.Write(2);
  EXPECT_EQ(stats.Find("protocol")->GetUint().value(),
            static_cast<uint64_t>(kServeProtocolVersion));
  EXPECT_EQ(stats.Find("stats_schema")->GetUint().value(),
            static_cast<uint64_t>(kStatsSchemaVersion));
  for (const char* state :
       {"queued", "running", "succeeded", "failed", "cancelled"}) {
    EXPECT_EQ(JobsCount(stats, state), 0u) << state;
  }
  EXPECT_EQ(stats.Find("queue_depth")->GetUint().value(), 0u);
  const JsonValue* metrics = stats.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  for (const char* family : {"counters", "gauges", "histograms"}) {
    EXPECT_NE(metrics->Find(family), nullptr) << family;
  }
}

// After one succeeded and one failed job, the per-daemon state counts
// are exact, and the process-wide job-latency histogram has grown and
// reports ordered, populated quantiles. (The metrics registry is global
// across all suites in this binary, so metric assertions are deltas.)
TEST(ServeStatsTest, StatsCountsJobsAndLatencyQuantiles) {
  const uint64_t latency_before =
      MetricsRegistry::Global()
          .HistogramStats("serve.job_latency_seconds")
          .count;

  ServeOptions options;
  options.threads = 1;
  JobServer server(options);
  ASSERT_TRUE(server.Start().ok());
  ServeClient client = ConnectOrDie(server);

  auto terminal = client.SubmitAndWait(UniformSpec(/*seed=*/7,
                                                   /*rows=*/200)
                                           .ToJson());
  ASSERT_TRUE(terminal.ok()) << terminal.status().ToString();
  ASSERT_EQ(EventState(*terminal), "succeeded") << terminal->Write(2);

  JobSpec io_spec;
  io_spec.input.kind = InputKind::kCsvPath;
  io_spec.input.path = "/nonexistent/tcm_stats_input.csv";
  io_spec.roles.quasi_identifiers = {"a"};
  io_spec.roles.confidential = "b";
  terminal = client.SubmitAndWait(io_spec.ToJson());
  ASSERT_TRUE(terminal.ok()) << terminal.status().ToString();
  ASSERT_EQ(EventState(*terminal), "failed");

  JsonValue stats = QueryStats(&client);
  EXPECT_EQ(JobsCount(stats, "succeeded"), 1u) << stats.Write(2);
  EXPECT_EQ(JobsCount(stats, "failed"), 1u);
  EXPECT_EQ(JobsCount(stats, "queued"), 0u);
  EXPECT_EQ(JobsCount(stats, "running"), 0u);
  EXPECT_EQ(stats.Find("queue_depth")->GetUint().value(), 0u);

  const JsonValue* histogram = stats.Find("metrics")
                                   ->Find("histograms")
                                   ->Find("serve.job_latency_seconds");
  ASSERT_NE(histogram, nullptr) << stats.Write(2);
  EXPECT_GE(histogram->Find("count")->GetUint().value(),
            latency_before + 2);
  const double p50 = histogram->Find("p50")->number_value();
  const double p99 = histogram->Find("p99")->number_value();
  EXPECT_GE(p50, 0.0);
  EXPECT_GE(p99, p50);
}

// queue_depth counts jobs that are queued but not yet running: with a
// single worker pinned by a slow job, a second submission shows up in
// the depth, and a drained daemon reports zero again.
TEST(ServeStatsTest, QueueDepthTracksQueuedJobs) {
  ServeOptions options;
  options.threads = 1;
  options.max_pending = 4;
  JobServer server(options);
  ASSERT_TRUE(server.Start().ok());
  ServeClient client = ConnectOrDie(server);

  const uint64_t job1 = EventJob(SubmitNoWait(&client, SlowSpec()));
  const uint64_t job2 = EventJob(SubmitNoWait(&client, SlowSpec()));
  ASSERT_NE(job1, 0u);
  ASSERT_NE(job2, 0u);

  JsonValue stats = QueryStats(&client);
  EXPECT_EQ(JobsCount(stats, "queued") + JobsCount(stats, "running"), 2u)
      << stats.Write(2);
  EXPECT_EQ(stats.Find("queue_depth")->GetUint().value(),
            JobsCount(stats, "queued"));

  ASSERT_TRUE(WaitUntil([&]() {
    return EventState(QueryStatus(&client, job2)) == "succeeded";
  }));
  stats = QueryStats(&client);
  EXPECT_EQ(JobsCount(stats, "succeeded"), 2u) << stats.Write(2);
  EXPECT_EQ(JobsCount(stats, "queued"), 0u);
  EXPECT_EQ(stats.Find("queue_depth")->GetUint().value(), 0u);
}

// Graceful drain: a shutdown requested mid-job still runs the job to
// completion and delivers its final event; new submissions and new
// connections are refused.
TEST(ServeShutdownTest, DrainFinishesJobsAndDeliversFinalEvents) {
  ServeOptions options;
  options.threads = 1;
  JobServer server(options);
  ASSERT_TRUE(server.Start().ok());

  JobSpec spec = SlowSpec();
  spec.output.release_path = TempPath("drain_release.csv");
  std::remove(spec.output.release_path.c_str());

  JsonValue terminal;
  std::thread waiter([&]() {
    auto client = ServeClient::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok());
    auto event = client->SubmitAndWait(spec.ToJson());
    ASSERT_TRUE(event.ok()) << event.status().ToString();
    terminal = std::move(event).value();
  });

  ASSERT_TRUE(WaitUntil([&]() { return server.pending_jobs() > 0; }));
  ServeClient bystander = ConnectOrDie(server);
  server.RequestShutdown();

  // The pre-existing connection is refused new work immediately...
  JsonValue refused = SubmitNoWait(&bystander, SlowSpec());
  EXPECT_EQ(EventName(refused), "error") << refused.Write(2);
  EXPECT_EQ(EventCode(refused), "FailedPrecondition");

  server.Wait();
  waiter.join();

  // ...the in-flight job finished, wrote its release and delivered its
  // terminal event before the socket went away.
  EXPECT_EQ(EventState(terminal), "succeeded") << terminal.Write(2);
  EXPECT_FALSE(ReadFileOrDie(spec.output.release_path).empty());

  // ...and the listener is gone.
  auto late = ServeClient::Connect("127.0.0.1", server.port());
  EXPECT_FALSE(late.ok());
}

TEST(ServeShutdownTest, RemoteShutdownVerbDrainsTheDaemon) {
  ServeOptions options;
  options.threads = 1;
  JobServer server(options);
  ASSERT_TRUE(server.Start().ok());
  ServeClient client = ConnectOrDie(server);

  ServeRequest shutdown;
  shutdown.verb = ServeVerb::kShutdown;
  ASSERT_TRUE(client.Send(shutdown).ok());
  auto draining = client.ReadEvent();
  ASSERT_TRUE(draining.ok());
  EXPECT_EQ(EventName(*draining), "draining");

  server.Wait();
  auto late = ServeClient::Connect("127.0.0.1", server.port());
  EXPECT_FALSE(late.ok());
}

TEST(ServeShutdownTest, RemoteShutdownVerbCanBeDisabled) {
  ServeOptions options;
  options.threads = 1;
  options.allow_remote_shutdown = false;
  JobServer server(options);
  ASSERT_TRUE(server.Start().ok());
  ServeClient client = ConnectOrDie(server);

  ServeRequest shutdown;
  shutdown.verb = ServeVerb::kShutdown;
  ASSERT_TRUE(client.Send(shutdown).ok());
  auto refused = client.ReadEvent();
  ASSERT_TRUE(refused.ok());
  EXPECT_EQ(EventName(*refused), "error");
  EXPECT_EQ(EventCode(*refused), "Unimplemented");

  // Still alive and serving.
  ServeRequest ping;
  ping.verb = ServeVerb::kPing;
  ASSERT_TRUE(client.Send(ping).ok());
  auto pong = client.ReadEvent();
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(EventName(*pong), "pong");
}

// Regression: RequestShutdown (any thread) used to call ::shutdown on
// the bare listen fd while Wait concurrently ::close()d and invalidated
// it — a race that could hit a recycled descriptor. Both sides now
// serialize on shutdown_mutex_; hammering shutdown requests from many
// threads while the owner runs the Wait teardown must stay clean under
// the TSan preset and never wedge.
TEST(ServeShutdownTest, ConcurrentShutdownRequestsAndWaitAreSafe) {
  for (int round = 0; round < 8; ++round) {
    ServeOptions options;
    options.threads = 1;
    JobServer server(options);
    ASSERT_TRUE(server.Start().ok());
    std::vector<std::thread> requesters;
    requesters.reserve(8);
    for (int i = 0; i < 8; ++i) {
      requesters.emplace_back([&server]() { server.RequestShutdown(); });
    }
    server.Wait();  // drains; must not race the requesters' ::shutdown
    for (std::thread& thread : requesters) thread.join();
  }
}

// ----- connection hardening (shared with the HTTP front) ------------------

// The idle timeout reaps an NDJSON connection whose peer goes silent:
// the handler's blocked ReadLine fails with the timeout IoError, the
// connection closes, and the client sees end of stream — without any
// shutdown being requested.
TEST(ServeHardeningTest, IdleNdjsonConnectionIsReaped) {
  ServeOptions options;
  options.threads = 1;
  options.idle_timeout_ms = 200;
  JobServer server(options);
  ASSERT_TRUE(server.Start().ok());
  ServeClient client = ConnectOrDie(server);

  // Say nothing after the hello: the server must hang up on us.
  const auto start = steady_clock::now();
  auto event = client.ReadEvent();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           steady_clock::now() - start)
                           .count();
  EXPECT_FALSE(event.ok()) << event->Write(2);
  EXPECT_LT(elapsed, 5 * 200) << "reap took " << elapsed << " ms";

  // The daemon itself is untouched: a new, active client is served.
  ServeClient fresh = ConnectOrDie(server);
  ServeRequest ping;
  ping.verb = ServeVerb::kPing;
  ASSERT_TRUE(fresh.Send(ping).ok());
  EXPECT_TRUE(fresh.ReadEvent().ok());
}

// An active connection is NOT reaped while it keeps talking, even when
// every pause between its requests approaches the timeout.
TEST(ServeHardeningTest, ActiveConnectionSurvivesTheIdleTimeout) {
  ServeOptions options;
  options.threads = 1;
  options.idle_timeout_ms = 300;
  JobServer server(options);
  ASSERT_TRUE(server.Start().ok());
  ServeClient client = ConnectOrDie(server);
  for (int i = 0; i < 4; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    ServeRequest ping;
    ping.verb = ServeVerb::kPing;
    ASSERT_TRUE(client.Send(ping).ok());
    auto pong = client.ReadEvent();
    ASSERT_TRUE(pong.ok()) << pong.status().ToString() << " at round " << i;
    EXPECT_EQ(EventName(*pong), "pong");
  }
}

// The connection cap: past it, a connecting NDJSON client is told why
// in an error event (surfaced by ServeClient::Connect as the server's
// own kFailedPrecondition message, not a protocol failure), and the
// slot frees once an admitted connection goes away.
TEST(ServeHardeningTest, ConnectionCapRejectsCleanlyAndRecovers) {
  ServeOptions options;
  options.threads = 1;
  options.max_connections = 1;
  JobServer server(options);
  ASSERT_TRUE(server.Start().ok());

  {
    ServeClient first = ConnectOrDie(server);
    // A round trip guarantees `first` is registered in the connection
    // table before the second connect reaches the accept loop.
    ServeRequest ping;
    ping.verb = ServeVerb::kPing;
    ASSERT_TRUE(first.Send(ping).ok());
    ASSERT_TRUE(first.ReadEvent().ok());

    auto second = ServeClient::Connect("127.0.0.1", server.port());
    ASSERT_FALSE(second.ok());
    EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition)
        << second.status().ToString();
    EXPECT_NE(second.status().message().find("connection limit"),
              std::string::npos)
        << second.status().ToString();
  }  // first disconnects; its slot frees on the next accept's reap

  ASSERT_TRUE(WaitUntil([&]() {
    return ServeClient::Connect("127.0.0.1", server.port()).ok();
  }));
}

// Regression companion to the Connection.done publication-ordering
// audit: many short-lived connections force the accept loop's reap
// sweep (done acquire-load + join) to run against handlers finishing
// concurrently; the final drain must still account for every handler.
TEST(ServeShutdownTest, ShortLivedConnectionsAreReapedSafely) {
  ServeOptions options;
  options.threads = 1;
  JobServer server(options);
  ASSERT_TRUE(server.Start().ok());
  for (int i = 0; i < 32; ++i) {
    ServeClient client = ConnectOrDie(server);
    ServeRequest ping;
    ping.verb = ServeVerb::kPing;
    ASSERT_TRUE(client.Send(ping).ok());
    auto pong = client.ReadEvent();
    ASSERT_TRUE(pong.ok());
    EXPECT_EQ(EventName(*pong), "pong");
    // client destructor closes the socket; the handler thread finishes
    // on its own schedule and is reaped by a later accept or the drain.
  }
  server.RequestShutdown();
  server.Wait();
}

}  // namespace
}  // namespace tcm
