#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "distance/qi_space.h"
#include "microagg/aggregate.h"
#include "microagg/mdav.h"
#include "microagg/microagg.h"
#include "microagg/partition.h"
#include "microagg/vmdav.h"
#include "privacy/kanonymity.h"

namespace tcm {
namespace {

// ------------------------------------------------------------- Partition

TEST(PartitionTest, SizeStatistics) {
  Partition p;
  p.clusters = {{0, 1, 2}, {3, 4}, {5, 6, 7, 8}};
  EXPECT_EQ(p.NumClusters(), 3u);
  EXPECT_EQ(p.NumRecords(), 9u);
  EXPECT_EQ(p.MinClusterSize(), 2u);
  EXPECT_EQ(p.MaxClusterSize(), 4u);
  EXPECT_DOUBLE_EQ(p.AverageClusterSize(), 3.0);
}

TEST(PartitionTest, EmptyPartitionStatistics) {
  Partition p;
  EXPECT_EQ(p.NumRecords(), 0u);
  EXPECT_EQ(p.MinClusterSize(), 0u);
  EXPECT_EQ(p.MaxClusterSize(), 0u);
  EXPECT_DOUBLE_EQ(p.AverageClusterSize(), 0.0);
}

TEST(PartitionTest, AssignmentVectorMapsRowsToClusters) {
  Partition p;
  p.clusters = {{2, 0}, {1, 3}};
  EXPECT_EQ(p.AssignmentVector(), (std::vector<size_t>{0, 1, 0, 1}));
}

TEST(PartitionTest, ValidateAcceptsExactCover) {
  Partition p;
  p.clusters = {{0, 1}, {2, 3, 4}};
  EXPECT_TRUE(ValidatePartition(p, 5, 2).ok());
}

TEST(PartitionTest, ValidateRejectsSmallCluster) {
  Partition p;
  p.clusters = {{0}, {1, 2}};
  EXPECT_EQ(ValidatePartition(p, 3, 2).code(),
            StatusCode::kFailedPrecondition);
}

TEST(PartitionTest, ValidateRejectsDoubleCover) {
  Partition p;
  p.clusters = {{0, 1}, {1, 2}};
  EXPECT_EQ(ValidatePartition(p, 3, 1).code(),
            StatusCode::kFailedPrecondition);
}

TEST(PartitionTest, ValidateRejectsMissingRecord) {
  Partition p;
  p.clusters = {{0, 1}};
  EXPECT_EQ(ValidatePartition(p, 3, 1).code(),
            StatusCode::kFailedPrecondition);
}

TEST(PartitionTest, ValidateRejectsOutOfRangeIndex) {
  Partition p;
  p.clusters = {{0, 7}};
  EXPECT_EQ(ValidatePartition(p, 2, 1).code(), StatusCode::kOutOfRange);
}

// ------------------------------------------------------------- Aggregate

Dataset MakeMixedDataset() {
  Schema schema({
      Attribute{"num", AttributeType::kNumeric,
                AttributeRole::kQuasiIdentifier, {}},
      Attribute{"ord", AttributeType::kOrdinal, AttributeRole::kQuasiIdentifier,
                {"low", "mid", "high"}},
      Attribute{"nom", AttributeType::kNominal, AttributeRole::kQuasiIdentifier,
                {"a", "b", "c"}},
      Attribute{"conf", AttributeType::kNumeric, AttributeRole::kConfidential,
                {}},
  });
  Dataset data(schema);
  auto add = [&data](double n, int32_t o, int32_t m, double c) {
    EXPECT_TRUE(data.Append({Value::Numeric(n), Value::Categorical(o),
                             Value::Categorical(m), Value::Numeric(c)})
                    .ok());
  };
  add(1, 0, 0, 10);
  add(2, 1, 1, 20);
  add(3, 2, 1, 30);
  add(10, 2, 2, 40);
  return data;
}

TEST(AggregateTest, NumericUsesMean) {
  Dataset data = MakeMixedDataset();
  Value v = ClusterAggregate(data, {0, 1, 2}, 0);
  EXPECT_DOUBLE_EQ(v.numeric(), 2.0);
}

TEST(AggregateTest, OrdinalUsesLowerMedian) {
  Dataset data = MakeMixedDataset();
  EXPECT_EQ(ClusterAggregate(data, {0, 1, 2}, 1).category(), 1);
  // Even-size cluster: lower median of {0,1,2,2} is 1.
  EXPECT_EQ(ClusterAggregate(data, {0, 1, 2, 3}, 1).category(), 1);
}

TEST(AggregateTest, NominalUsesMode) {
  Dataset data = MakeMixedDataset();
  EXPECT_EQ(ClusterAggregate(data, {1, 2, 3}, 2).category(), 1);
  // Tie (one of each) breaks toward the smallest code.
  EXPECT_EQ(ClusterAggregate(data, {0, 1, 3}, 2).category(), 0);
}

TEST(AggregateTest, PartitionRewritesOnlyQuasiIdentifiers) {
  Dataset data = MakeMixedDataset();
  Partition p;
  p.clusters = {{0, 1}, {2, 3}};
  auto result = AggregatePartition(data, p);
  ASSERT_TRUE(result.ok());
  // QIs replaced by cluster aggregates.
  EXPECT_DOUBLE_EQ(result->cell(0, 0).numeric(), 1.5);
  EXPECT_DOUBLE_EQ(result->cell(1, 0).numeric(), 1.5);
  EXPECT_DOUBLE_EQ(result->cell(2, 0).numeric(), 6.5);
  // Confidential column untouched.
  for (size_t row = 0; row < 4; ++row) {
    EXPECT_DOUBLE_EQ(result->cell(row, 3).numeric(),
                     data.cell(row, 3).numeric());
  }
}

TEST(AggregateTest, PartitionMustCoverDataset) {
  Dataset data = MakeMixedDataset();
  Partition p;
  p.clusters = {{0, 1}};
  EXPECT_FALSE(AggregatePartition(data, p).ok());
}

TEST(AggregateTest, AggregatedDatasetIsKAnonymous) {
  Dataset data = MakeUniformDataset(200, 3, 11);
  QiSpace space(data);
  auto partition = Mdav(space, 7);
  ASSERT_TRUE(partition.ok());
  auto anonymized = AggregatePartition(data, *partition);
  ASSERT_TRUE(anonymized.ok());
  auto k_anon = IsKAnonymous(*anonymized, 7);
  ASSERT_TRUE(k_anon.ok());
  EXPECT_TRUE(*k_anon);
}

// ------------------------------------------------------------------ MDAV

class MdavSizeTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(MdavSizeTest, ClusterSizesBetweenKAnd2kMinus1) {
  auto [n, k] = GetParam();
  Dataset data = MakeUniformDataset(n, 2, n * 31 + k);
  QiSpace space(data);
  auto partition = Mdav(space, k);
  ASSERT_TRUE(partition.ok());
  EXPECT_TRUE(ValidatePartition(*partition, n, k).ok());
  EXPECT_LE(partition->MaxClusterSize(), 2 * k - 1);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MdavSizeTest,
    ::testing::Combine(::testing::Values(20, 50, 101, 1080),
                       ::testing::Values(2, 3, 5, 10)));

TEST(MdavTest, AllClustersExactlyKWhenDivisible) {
  Dataset data = MakeUniformDataset(100, 2, 5);
  QiSpace space(data);
  auto partition = Mdav(space, 10);
  ASSERT_TRUE(partition.ok());
  EXPECT_EQ(partition->MinClusterSize(), 10u);
  EXPECT_EQ(partition->MaxClusterSize(), 10u);
  EXPECT_EQ(partition->NumClusters(), 10u);
}

TEST(MdavTest, RejectsBadK) {
  Dataset data = MakeUniformDataset(10, 2, 5);
  QiSpace space(data);
  EXPECT_FALSE(Mdav(space, 0).ok());
  EXPECT_FALSE(Mdav(space, 11).ok());
}

TEST(MdavTest, KEqualsNGivesOneCluster) {
  Dataset data = MakeUniformDataset(10, 2, 5);
  QiSpace space(data);
  auto partition = Mdav(space, 10);
  ASSERT_TRUE(partition.ok());
  EXPECT_EQ(partition->NumClusters(), 1u);
}

TEST(MdavTest, DeterministicAcrossRuns) {
  Dataset data = MakeUniformDataset(120, 3, 7);
  QiSpace space(data);
  auto a = Mdav(space, 4);
  auto b = Mdav(space, 4);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->clusters, b->clusters);
}

TEST(MdavTest, GroupsWellSeparatedModesTogether) {
  // 3 far-apart modes of 10 records each; with k=10, MDAV must recover
  // exactly the modes (any mixed cluster would have huge spread).
  std::vector<double> xs, cs;
  for (int mode = 0; mode < 3; ++mode) {
    for (int i = 0; i < 10; ++i) {
      xs.push_back(mode * 1000.0 + i);
      cs.push_back(i);
    }
  }
  auto data = DatasetFromColumns(
      {"x", "c"}, {xs, cs},
      {AttributeRole::kQuasiIdentifier, AttributeRole::kConfidential});
  ASSERT_TRUE(data.ok());
  QiSpace space(*data);
  auto partition = Mdav(space, 10);
  ASSERT_TRUE(partition.ok());
  ASSERT_EQ(partition->NumClusters(), 3u);
  for (const Cluster& cluster : partition->clusters) {
    std::set<size_t> modes;
    for (size_t row : cluster) modes.insert(row / 10);
    EXPECT_EQ(modes.size(), 1u);
  }
}

// ---------------------------------------------------------------- V-MDAV

class VMdavSizeTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, double>> {};

TEST_P(VMdavSizeTest, ValidPartitionWithBoundedClusters) {
  auto [n, k, gamma] = GetParam();
  Dataset data = MakeClusteredDataset(n, 2, 4, n + k);
  QiSpace space(data);
  VMdavOptions options;
  options.gamma = gamma;
  auto partition = VMdav(space, k, options);
  ASSERT_TRUE(partition.ok());
  EXPECT_TRUE(ValidatePartition(*partition, n, k).ok());
  // 2k-1 plus at most k-1 adopted leftovers.
  EXPECT_LE(partition->MaxClusterSize(), (2 * k - 1) + (k - 1));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, VMdavSizeTest,
    ::testing::Combine(::testing::Values(30, 100, 333),
                       ::testing::Values(2, 5, 8),
                       ::testing::Values(0.0, 0.2, 1.0)));

TEST(VMdavTest, GammaZeroNeverExtends) {
  Dataset data = MakeUniformDataset(60, 2, 9);
  QiSpace space(data);
  VMdavOptions options;
  options.gamma = 0.0;
  auto partition = VMdav(space, 5, options);
  ASSERT_TRUE(partition.ok());
  // 60 = 12 exact clusters of 5, no extension possible with gamma 0.
  EXPECT_EQ(partition->NumClusters(), 12u);
  EXPECT_EQ(partition->MaxClusterSize(), 5u);
}

TEST(VMdavTest, RejectsBadArguments) {
  Dataset data = MakeUniformDataset(10, 2, 5);
  QiSpace space(data);
  EXPECT_FALSE(VMdav(space, 0).ok());
  EXPECT_FALSE(VMdav(space, 11).ok());
  VMdavOptions options;
  options.gamma = -0.5;
  EXPECT_FALSE(VMdav(space, 2, options).ok());
}

TEST(VMdavTest, LargeGammaProducesVariableSizes) {
  Dataset data = MakeClusteredDataset(200, 2, 6, 17);
  QiSpace space(data);
  VMdavOptions options;
  options.gamma = 1.5;
  auto partition = VMdav(space, 4, options);
  ASSERT_TRUE(partition.ok());
  EXPECT_GT(partition->MaxClusterSize(), partition->MinClusterSize());
}

// -------------------------------------------------------------- Frontend

TEST(MicroaggTest, DispatchesToMdav) {
  Dataset data = MakeUniformDataset(50, 2, 3);
  QiSpace space(data);
  MicroaggOptions options;
  options.method = MicroaggMethod::kMdav;
  auto via_frontend = Microaggregate(space, 5, options);
  auto direct = Mdav(space, 5);
  ASSERT_TRUE(via_frontend.ok() && direct.ok());
  EXPECT_EQ(via_frontend->clusters, direct->clusters);
}

TEST(MicroaggTest, DispatchesToVMdav) {
  Dataset data = MakeUniformDataset(50, 2, 3);
  QiSpace space(data);
  MicroaggOptions options;
  options.method = MicroaggMethod::kVMdav;
  options.vmdav.gamma = 0.3;
  auto via_frontend = Microaggregate(space, 5, options);
  VMdavOptions vm;
  vm.gamma = 0.3;
  auto direct = VMdav(space, 5, vm);
  ASSERT_TRUE(via_frontend.ok() && direct.ok());
  EXPECT_EQ(via_frontend->clusters, direct->clusters);
}

TEST(MicroaggTest, MethodNames) {
  EXPECT_STREQ(MicroaggMethodName(MicroaggMethod::kMdav), "MDAV");
  EXPECT_STREQ(MicroaggMethodName(MicroaggMethod::kVMdav), "V-MDAV");
}

TEST(MicroaggTest, DatasetHelperProducesKAnonymousRelease) {
  Dataset data = MakeUniformDataset(90, 2, 13);
  auto anonymized = MicroaggregateDataset(data, 6);
  ASSERT_TRUE(anonymized.ok());
  auto k_anon = IsKAnonymous(*anonymized, 6);
  ASSERT_TRUE(k_anon.ok());
  EXPECT_TRUE(*k_anon);
}

}  // namespace
}  // namespace tcm
