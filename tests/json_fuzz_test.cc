// Robustness wall for common/json (and the JobSpec layer riding on it):
// a seeded mutation + truncation corpus over every JSON document in the
// tree, plus constructed adversarial inputs. The parser's contract under
// attack is narrow and absolute — return a Status, never crash, hang,
// leak (the asan preset runs this suite) or accept a document it cannot
// re-serialize faithfully. Mutations are deterministic (fixed seeds), so
// a failure here reproduces exactly.

#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/job.h"
#include "common/json.h"

namespace tcm {
namespace {

std::vector<std::string> CorpusFiles() {
  std::vector<std::string> files;
  for (const char* dir : {TCM_GOLDEN_DIR, TCM_SOURCE_ROOT}) {
    std::error_code ec;
    std::filesystem::directory_iterator it(dir, ec);
    if (ec) continue;
    for (const auto& entry : it) {
      if (entry.is_regular_file() && entry.path().extension() == ".json") {
        files.push_back(entry.path().string());
      }
    }
  }
  return files;
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Applies one random structural mutation to `text`.
std::string Mutate(const std::string& text, std::mt19937* rng) {
  std::string out = text;
  std::uniform_int_distribution<int> op_dist(0, 6);
  auto position = [&](size_t size) {
    return std::uniform_int_distribution<size_t>(0, size)(*rng);
  };
  switch (op_dist(*rng)) {
    case 0: {  // truncate
      if (!out.empty()) out.resize(position(out.size() - 1));
      break;
    }
    case 1: {  // flip one byte to anything
      if (!out.empty()) {
        out[position(out.size() - 1)] = static_cast<char>(
            std::uniform_int_distribution<int>(0, 255)(*rng));
      }
      break;
    }
    case 2: {  // insert a random byte
      out.insert(out.begin() + static_cast<ptrdiff_t>(position(out.size())),
                 static_cast<char>(
                     std::uniform_int_distribution<int>(0, 255)(*rng)));
      break;
    }
    case 3: {  // erase a span
      if (!out.empty()) {
        size_t begin = position(out.size() - 1);
        size_t length = 1 + position(std::min<size_t>(32, out.size() -
                                                              begin - 1));
        out.erase(begin, length);
      }
      break;
    }
    case 4: {  // duplicate a slice somewhere else
      if (!out.empty()) {
        size_t begin = position(out.size() - 1);
        size_t length = 1 + position(std::min<size_t>(16, out.size() -
                                                              begin - 1));
        out.insert(position(out.size()), out.substr(begin, length));
      }
      break;
    }
    case 5: {  // swap two bytes
      if (out.size() >= 2) {
        std::swap(out[position(out.size() - 1)],
                  out[position(out.size() - 1)]);
      }
      break;
    }
    default: {  // splice structural characters where they hurt most
      const char structural[] = {'{', '}', '[', ']', '"', ',', ':', '\\',
                                 '-', 'e', '.', '\0'};
      out.insert(out.begin() + static_cast<ptrdiff_t>(position(out.size())),
                 structural[std::uniform_int_distribution<size_t>(
                     0, sizeof(structural) - 1)(*rng)]);
      break;
    }
  }
  return out;
}

// The property under fuzz: parsing returns; success implies a faithful
// re-serialization round trip.
void CheckParser(const std::string& input) {
  auto parsed = ParseJson(input);
  if (!parsed.ok()) {
    EXPECT_FALSE(parsed.status().message().empty());
    return;
  }
  const std::string compact = parsed->Write(-1);
  auto reparsed = ParseJson(compact);
  ASSERT_TRUE(reparsed.ok())
      << "wrote unparseable JSON: " << reparsed.status().ToString()
      << "\n" << compact;
  EXPECT_TRUE(*parsed == *reparsed) << "round trip changed the document";
  // Pretty-printing must agree with compact printing semantically.
  auto pretty = ParseJson(parsed->Write(2));
  ASSERT_TRUE(pretty.ok());
  EXPECT_TRUE(*parsed == *pretty);
}

TEST(JsonFuzzTest, CorpusSeedsParseAndRoundTrip) {
  std::vector<std::string> files = CorpusFiles();
  ASSERT_FALSE(files.empty()) << "no .json seeds found in-tree";
  for (const std::string& file : files) {
    const std::string text = ReadFileOrDie(file);
    auto parsed = ParseJson(text);
    ASSERT_TRUE(parsed.ok()) << file << ": " << parsed.status().ToString();
    CheckParser(text);
  }
}

TEST(JsonFuzzTest, MutatedCorpusNeverCrashesTheParser) {
  std::vector<std::string> files = CorpusFiles();
  ASSERT_FALSE(files.empty());
  uint32_t file_index = 0;
  for (const std::string& file : files) {
    const std::string seed_text = ReadFileOrDie(file);
    std::mt19937 rng(0xC0FFEE01u + file_index++);
    for (int i = 0; i < 400; ++i) {
      // Stack one to three mutations so errors compound.
      std::string mutated = Mutate(seed_text, &rng);
      const int extra = std::uniform_int_distribution<int>(0, 2)(rng);
      for (int j = 0; j < extra; ++j) mutated = Mutate(mutated, &rng);
      CheckParser(mutated);
    }
  }
}

// The job-spec layer on top must be exactly as crash-free: a mutated
// spec either parses into a valid JobSpec or returns a structured error.
TEST(JsonFuzzTest, MutatedJobSpecsNeverCrashTheSpecParser) {
  const std::string path =
      std::string(TCM_GOLDEN_DIR) + "/job_tclose_first.json";
  const std::string seed_text = ReadFileOrDie(path);
  ASSERT_TRUE(JobSpec::FromJsonText(seed_text).ok());
  std::mt19937 rng(0xBADC0DEu);
  for (int i = 0; i < 600; ++i) {
    std::string mutated = Mutate(seed_text, &rng);
    auto spec = JobSpec::FromJsonText(mutated);
    if (spec.ok()) {
      // Whatever survived mutation must still round-trip as a document.
      auto round = JobSpec::FromJsonText(spec->ToJsonText());
      EXPECT_TRUE(round.ok()) << round.status().ToString();
    } else {
      EXPECT_FALSE(spec.status().message().empty());
    }
  }
}

TEST(JsonFuzzTest, TruncationLadderIsTotal) {
  // Every prefix of every seed must parse or fail cleanly — the exact
  // failure mode of a connection dropped mid-line.
  for (const std::string& file : CorpusFiles()) {
    const std::string text = ReadFileOrDie(file);
    const size_t step = text.size() < 512 ? 1 : text.size() / 512;
    for (size_t cut = 0; cut < text.size(); cut += step) {
      CheckParser(text.substr(0, cut));
    }
  }
}

TEST(JsonFuzzTest, AdversarialConstructions) {
  // Deep nesting far beyond the cap: must error, not overflow the stack.
  CheckParser(std::string(100000, '['));
  CheckParser(std::string(100000, '{'));
  std::string nested;
  for (int i = 0; i < 5000; ++i) nested += "[{\"a\":";
  CheckParser(nested);

  // Exactly at and just past the depth cap.
  std::string at_cap(kMaxJsonDepth, '[');
  at_cap += std::string(kMaxJsonDepth, ']');
  auto parsed = ParseJson(at_cap);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  std::string past_cap(kMaxJsonDepth + 1, '[');
  past_cap += std::string(kMaxJsonDepth + 1, ']');
  EXPECT_FALSE(ParseJson(past_cap).ok());

  // Number edge cases.
  for (const char* text :
       {"1e999", "-1e999", "1e-999", "-0", "0.0000000000000000000000001",
        "9007199254740993", "-9007199254740993", "1E+308", "00", "01",
        "- 1", "+1", ".5", "5.", "1e", "1e+", "0x10", "Infinity", "NaN"}) {
    CheckParser(text);
  }

  // String edge cases: escapes, surrogates, raw bytes, embedded NUL.
  for (const char* text :
       {"\"\\ud800\"", "\"\\udc00\"", "\"\\ud800\\ud800\"",
        "\"\\ud83d\\ude00\"", "\"\\uFFFF\"", "\"\\u0000\"", "\"\\q\"",
        "\"\\u12\"", "\"unterminated", "\"\\\"", "\"tab\tinside\""}) {
    CheckParser(text);
  }
  std::string nul_inside = "\"a";
  nul_inside.push_back('\0');
  nul_inside += "b\"";
  CheckParser(nul_inside);

  // A megabyte of garbage and a megabyte of digits.
  std::mt19937 rng(0xFEEDFACEu);
  std::string garbage(1 << 20, '\0');
  for (char& c : garbage) {
    c = static_cast<char>(std::uniform_int_distribution<int>(0, 255)(rng));
  }
  CheckParser(garbage);
  CheckParser(std::string(1 << 20, '9'));

  // Huge flat containers stay linear (and parse fine).
  std::string flat = "[";
  for (int i = 0; i < 50000; ++i) {
    flat += "0,";
  }
  flat += "0]";
  CheckParser(flat);
}

}  // namespace
}  // namespace tcm
