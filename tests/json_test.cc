// Tests for the dependency-free JSON reader/writer (common/json.h) that
// backs the public Job API: strict parsing (rejection corpus), exact
// round-trips, and deterministic output.

#include <clocale>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"

namespace tcm {
namespace {

JsonValue MustParse(const std::string& text) {
  auto parsed = ParseJson(text);
  EXPECT_TRUE(parsed.ok()) << text << ": " << parsed.status().ToString();
  return parsed.ok() ? parsed.value() : JsonValue();
}

TEST(JsonParseTest, Literals) {
  EXPECT_TRUE(MustParse("null").is_null());
  EXPECT_TRUE(MustParse("true").bool_value());
  EXPECT_FALSE(MustParse("false").bool_value());
}

TEST(JsonParseTest, Numbers) {
  EXPECT_DOUBLE_EQ(MustParse("0").number_value(), 0.0);
  EXPECT_DOUBLE_EQ(MustParse("-0").number_value(), 0.0);
  EXPECT_DOUBLE_EQ(MustParse("42").number_value(), 42.0);
  EXPECT_DOUBLE_EQ(MustParse("-17").number_value(), -17.0);
  EXPECT_DOUBLE_EQ(MustParse("0.25").number_value(), 0.25);
  EXPECT_DOUBLE_EQ(MustParse("1e3").number_value(), 1000.0);
  EXPECT_DOUBLE_EQ(MustParse("-2.5E-2").number_value(), -0.025);
  EXPECT_DOUBLE_EQ(MustParse("9007199254740992").number_value(),
                   9007199254740992.0);
}

TEST(JsonParseTest, Strings) {
  EXPECT_EQ(MustParse(R"("")").string_value(), "");
  EXPECT_EQ(MustParse(R"("abc")").string_value(), "abc");
  EXPECT_EQ(MustParse(R"("a\"b\\c\/d")").string_value(), "a\"b\\c/d");
  EXPECT_EQ(MustParse(R"("\b\f\n\r\t")").string_value(), "\b\f\n\r\t");
  EXPECT_EQ(MustParse(R"("\u0041")").string_value(), "A");
  EXPECT_EQ(MustParse(R"("\u00e9")").string_value(), "\xC3\xA9");
  EXPECT_EQ(MustParse(R"("\u4e2d")").string_value(), "\xE4\xB8\xAD");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(MustParse(R"("\ud83d\ude00")").string_value(),
            "\xF0\x9F\x98\x80");
}

TEST(JsonParseTest, Containers) {
  JsonValue array = MustParse("[1, [2, 3], {\"a\": 4}]");
  ASSERT_TRUE(array.is_array());
  ASSERT_EQ(array.size(), 3u);
  EXPECT_DOUBLE_EQ(array.at(0).number_value(), 1.0);
  EXPECT_DOUBLE_EQ(array.at(1).at(1).number_value(), 3.0);
  EXPECT_DOUBLE_EQ(array.at(2).Find("a")->number_value(), 4.0);

  JsonValue object = MustParse(R"({"x": 1, "y": {"z": [true]}})");
  ASSERT_TRUE(object.is_object());
  EXPECT_EQ(object.size(), 2u);
  EXPECT_TRUE(object.Find("y")->Find("z")->at(0).bool_value());
  EXPECT_EQ(object.Find("missing"), nullptr);

  EXPECT_EQ(MustParse("[]").size(), 0u);
  EXPECT_EQ(MustParse("{}").size(), 0u);
  EXPECT_EQ(MustParse(" [ ] ").size(), 0u);
}

TEST(JsonParseTest, ObjectsKeepInsertionOrder) {
  JsonValue object = MustParse(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_EQ(object.members().size(), 3u);
  EXPECT_EQ(object.members()[0].first, "z");
  EXPECT_EQ(object.members()[1].first, "a");
  EXPECT_EQ(object.members()[2].first, "m");
}

TEST(JsonParseTest, RejectionCorpus) {
  const char* corpus[] = {
      "",
      "   ",
      "nul",
      "truth",
      "[1, 2",
      "[1 2]",
      "[1,]",          // strictly: a value must follow the comma
      "{\"a\": 1,}",
      "{\"a\" 1}",
      "{a: 1}",
      "{\"a\": }",
      "{\"a\": 1 \"b\": 2}",
      "\"unterminated",
      "\"bad \\q escape\"",
      "\"\\u12\"",
      "\"\\ud800\"",      // unpaired high surrogate
      "\"\\ude00\"",      // unpaired low surrogate
      "\"tab\tliteral\"",
      "01",
      "1.",
      ".5",
      "+1",
      "1e",
      "1e+",
      "--1",
      "1 2",
      "[] []",
      "null garbage",
      "1e999",            // overflows to infinity
  };
  for (const char* text : corpus) {
    auto parsed = ParseJson(text);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << text;
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument) << text;
    }
  }
}

TEST(JsonParseTest, DuplicateKeysRejected) {
  auto parsed = ParseJson(R"({"a": 1, "a": 2})");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("duplicate"), std::string::npos);
}

TEST(JsonParseTest, DepthLimit) {
  std::string nested;
  for (int i = 0; i < kMaxJsonDepth + 2; ++i) nested += '[';
  for (int i = 0; i < kMaxJsonDepth + 2; ++i) nested += ']';
  EXPECT_FALSE(ParseJson(nested).ok());

  std::string shallow(static_cast<size_t>(kMaxJsonDepth) - 1, '[');
  shallow += std::string(static_cast<size_t>(kMaxJsonDepth) - 1, ']');
  EXPECT_TRUE(ParseJson(shallow).ok());
}

TEST(JsonParseTest, ErrorsNameTheLocation) {
  auto parsed = ParseJson("{\n  \"a\": ?\n}");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("line 2"), std::string::npos)
      << parsed.status().ToString();
}

TEST(JsonWriteTest, CompactAndPretty) {
  JsonValue object = JsonValue::MakeObject();
  object.Set("name", "t-closeness");
  object.Set("k", 5);
  object.Set("flags", [] {
    JsonValue array = JsonValue::MakeArray();
    array.Append(true);
    array.Append(JsonValue());
    return array;
  }());
  EXPECT_EQ(object.Write(),
            R"({"name":"t-closeness","k":5,"flags":[true,null]})");
  EXPECT_EQ(object.Write(2),
            "{\n  \"name\": \"t-closeness\",\n  \"k\": 5,\n"
            "  \"flags\": [\n    true,\n    null\n  ]\n}");
}

TEST(JsonWriteTest, StringEscaping) {
  JsonValue value("quote\" slash\\ control\x01 tab\t");
  EXPECT_EQ(value.Write(), R"("quote\" slash\\ control\u0001 tab\t")");
}

TEST(JsonWriteTest, NumbersRoundTrip) {
  const double values[] = {0.0,  1.0,   -1.0,       0.1,   1.0 / 3.0,
                           1e20, 1e-20, 123456.789, -2.5e8};
  for (double value : values) {
    const std::string text = JsonValue(value).Write();
    auto parsed = ParseJson(text);
    ASSERT_TRUE(parsed.ok()) << text;
    EXPECT_EQ(parsed->number_value(), value) << text;
  }
  EXPECT_EQ(JsonValue(42.0).Write(), "42");
  EXPECT_EQ(JsonValue(0.1).Write(), "0.1");
}

TEST(JsonWriteTest, DocumentRoundTrip) {
  const char* documents[] = {
      "null",
      "[1,2,3]",
      R"({"a":{"b":[true,false,null,"x"]},"c":-0.125})",
      R"(["nested",["deep",["deeper",{}]]])",
  };
  for (const char* text : documents) {
    JsonValue first = MustParse(text);
    JsonValue second = MustParse(first.Write());
    EXPECT_TRUE(first == second) << text;
    EXPECT_EQ(first.Write(), second.Write()) << text;
  }
}

TEST(JsonValueTest, CheckedGetters) {
  EXPECT_TRUE(JsonValue(true).GetBool().ok());
  EXPECT_FALSE(JsonValue(1.0).GetBool().ok());
  EXPECT_TRUE(JsonValue(1.5).GetNumber().ok());
  EXPECT_FALSE(JsonValue("x").GetNumber().ok());
  EXPECT_TRUE(JsonValue("x").GetString().ok());
  EXPECT_FALSE(JsonValue().GetString().ok());

  EXPECT_EQ(JsonValue(42.0).GetUint().value(), 42u);
  EXPECT_FALSE(JsonValue(-1.0).GetUint().ok());
  EXPECT_FALSE(JsonValue(1.5).GetUint().ok());
  EXPECT_FALSE(JsonValue("7").GetUint().ok());
}

TEST(JsonValueTest, SetReplacesInPlace) {
  JsonValue object = JsonValue::MakeObject();
  object.Set("a", 1);
  object.Set("b", 2);
  object.Set("a", 3);
  ASSERT_EQ(object.members().size(), 2u);
  EXPECT_EQ(object.members()[0].first, "a");
  EXPECT_DOUBLE_EQ(object.members()[0].second.number_value(), 3.0);
}

TEST(JsonFileTest, ReadWriteRoundTrip) {
  const std::string path =
      testing::TempDir() + "/json_file_roundtrip.json";
  JsonValue object = JsonValue::MakeObject();
  object.Set("k", 5);
  ASSERT_TRUE(WriteJsonFile(object, path).ok());
  auto read = ReadJsonFile(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_TRUE(*read == object);
}

TEST(JsonFileTest, MissingFileIsIoError) {
  auto read = ReadJsonFile("/nonexistent/definitely/missing.json");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIoError);
}

// Regression for the LC_NUMERIC bug: the parser/writer used to go
// through strtod/printf, so a comma-decimal host locale misread "0.3"
// and emitted "3,5" — invalid JSON. Skipped where no such locale is
// installed; CI generates de_DE.UTF-8 so the regression stays live.
TEST(JsonLocaleTest, ParseAndWriteAreLocaleIndependent) {
  const char* previous = std::setlocale(LC_ALL, nullptr);
  const std::string saved = previous != nullptr ? previous : "C";
  const char* comma_locale = nullptr;
  for (const char* name : {"de_DE.UTF-8", "de_DE.utf8", "fr_FR.UTF-8",
                           "fr_FR.utf8", "it_IT.UTF-8", "es_ES.UTF-8"}) {
    if (std::setlocale(LC_ALL, name) != nullptr &&
        std::localeconv()->decimal_point[0] == ',') {
      comma_locale = name;
      break;
    }
  }
  if (comma_locale == nullptr) {
    std::setlocale(LC_ALL, saved.c_str());
    GTEST_SKIP() << "no comma-decimal locale installed";
  }
  struct RestoreLocale {
    std::string saved;
    ~RestoreLocale() { std::setlocale(LC_ALL, saved.c_str()); }
  } restore{saved};

  auto parsed = ParseJson(R"({"t": 0.3, "xs": [1.5, -2e-3]})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString()
                           << " under " << comma_locale;
  EXPECT_DOUBLE_EQ(parsed->Find("t")->number_value(), 0.3);
  EXPECT_DOUBLE_EQ(parsed->Find("xs")->at(0).number_value(), 1.5);
  EXPECT_EQ(parsed->Write(-1), R"({"t":0.3,"xs":[1.5,-0.002]})");
  EXPECT_EQ(JsonValue(2.5).Write(-1), "2.5");
}

}  // namespace
}  // namespace tcm
