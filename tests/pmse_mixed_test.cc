// Tests for the propensity-score utility metric (pMSE) and the
// mixed-type (numeric + ordinal + nominal) end-to-end pipeline on the
// Adult-like generator.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "data/csv.h"
#include "data/generator.h"
#include "data/stats.h"
#include "distance/qi_space.h"
#include "microagg/aggregate.h"
#include "microagg/mdav.h"
#include "privacy/kanonymity.h"
#include "privacy/tcloseness.h"
#include "tclose/anonymizer.h"
#include "utility/pmse.h"

namespace tcm {
namespace {

// -------------------------------------------------------------------- pMSE

TEST(PmseTest, IdentityReleaseIsIndistinguishable) {
  Dataset data = MakeUniformDataset(400, 3, 71);
  auto pmse = PropensityMse(data, data);
  ASSERT_TRUE(pmse.ok());
  EXPECT_NEAR(*pmse, 0.0, 1e-6);
}

TEST(PmseTest, CoefficientsVanishOnIdenticalTables) {
  Dataset data = MakeUniformDataset(200, 2, 73);
  auto beta = PropensityLogisticFit(data, data);
  ASSERT_TRUE(beta.ok());
  for (double b : *beta) EXPECT_NEAR(b, 0.0, 1e-6);
}

TEST(PmseTest, GrossDistortionIsDetected) {
  Dataset data = MakeUniformDataset(300, 2, 79);
  Dataset distorted = data;
  std::vector<size_t> qi = data.schema().QuasiIdentifierIndices();
  for (size_t row = 0; row < data.NumRecords(); ++row) {
    // Shift and shrink one attribute drastically.
    double value = data.cell(row, qi[0]).numeric();
    ASSERT_TRUE(
        distorted.SetCell(row, qi[0], Value::Numeric(value * 0.1 + 5.0))
            .ok());
  }
  auto pmse = PropensityMse(data, distorted);
  ASSERT_TRUE(pmse.ok());
  EXPECT_GT(*pmse, 0.05);
}

TEST(PmseTest, DetectsVarianceShrinkageOfAggregation) {
  // Microaggregation preserves means, so only the squared features can
  // see it; coarse aggregation must register.
  Dataset data = MakeUniformDataset(400, 2, 83);
  QiSpace space(data);
  auto partition = Mdav(space, 100);  // very coarse
  ASSERT_TRUE(partition.ok());
  auto release = AggregatePartition(data, *partition);
  ASSERT_TRUE(release.ok());
  auto pmse = PropensityMse(data, *release);
  ASSERT_TRUE(pmse.ok());
  EXPECT_GT(*pmse, 0.005);
}

TEST(PmseTest, FinerAggregationScoresBetter) {
  Dataset data = MakeUniformDataset(400, 2, 89);
  QiSpace space(data);
  auto fine = Mdav(space, 4);
  auto coarse = Mdav(space, 200);
  ASSERT_TRUE(fine.ok() && coarse.ok());
  auto fine_release = AggregatePartition(data, *fine);
  auto coarse_release = AggregatePartition(data, *coarse);
  ASSERT_TRUE(fine_release.ok() && coarse_release.ok());
  auto fine_pmse = PropensityMse(data, *fine_release);
  auto coarse_pmse = PropensityMse(data, *coarse_release);
  ASSERT_TRUE(fine_pmse.ok() && coarse_pmse.ok());
  EXPECT_LT(*fine_pmse, *coarse_pmse);
}

TEST(PmseTest, BoundedByQuarter) {
  // (p - 1/2)^2 <= 1/4 always.
  Dataset data = MakeUniformDataset(100, 2, 97);
  Dataset other = MakeUniformDataset(100, 2, 98);
  auto pmse = PropensityMse(data, other);
  ASSERT_TRUE(pmse.ok());
  EXPECT_LE(*pmse, 0.25 + 1e-12);
  EXPECT_GE(*pmse, 0.0);
}

TEST(PmseTest, ShapeMismatchFails) {
  Dataset a = MakeUniformDataset(10, 2, 1);
  Dataset b = MakeUniformDataset(11, 2, 1);
  EXPECT_FALSE(PropensityMse(a, b).ok());
}

// -------------------------------------------------------- Mixed-type flow

TEST(AdultLikeTest, SchemaCoversAllAttributeTypes) {
  Dataset data = MakeAdultLike();
  EXPECT_EQ(data.NumRecords(), 2000u);
  EXPECT_EQ(data.schema().QuasiIdentifierIndices().size(), 4u);
  EXPECT_EQ(data.schema().at(1).type, AttributeType::kOrdinal);
  EXPECT_EQ(data.schema().at(2).type, AttributeType::kNominal);
  EXPECT_EQ(data.schema().ConfidentialIndices().size(), 1u);
}

TEST(AdultLikeTest, DeterministicAndSeedSensitive) {
  AdultLikeOptions options;
  options.num_records = 100;
  options.seed = 5;
  EXPECT_TRUE(MakeAdultLike(options) == MakeAdultLike(options));
  AdultLikeOptions other = options;
  other.seed = 6;
  EXPECT_FALSE(MakeAdultLike(options) == MakeAdultLike(other));
}

TEST(AdultLikeTest, EducationCorrelatesWithIncome) {
  Dataset data = MakeAdultLike();
  EXPECT_GT(QiConfidentialCorrelation(data), 0.3);
}

TEST(AdultLikeTest, CsvRoundTripWithCategories) {
  AdultLikeOptions options;
  options.num_records = 50;
  Dataset data = MakeAdultLike(options);
  std::string text = WriteCsvString(data);
  // Labels, not codes, appear in the file.
  EXPECT_NE(text.find("bachelor"), std::string::npos);
  auto parsed = ParseCsvString(text, data.schema());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(*parsed == data);
}

class MixedPipelineTest
    : public ::testing::TestWithParam<TCloseAlgorithm> {};

TEST_P(MixedPipelineTest, AnonymizeMixedTypesEndToEnd) {
  AdultLikeOptions options;
  options.num_records = 600;
  Dataset data = MakeAdultLike(options);
  AnonymizerOptions anonymizer_options;
  anonymizer_options.k = 4;
  anonymizer_options.t = 0.12;
  anonymizer_options.algorithm = GetParam();
  auto result = Anonymize(data, anonymizer_options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(IsKAnonymous(result->anonymized, 4).value());
  EXPECT_TRUE(IsTClose(result->anonymized, 0.12).value());
  // Ordinal QI aggregated to a valid category code.
  for (size_t row = 0; row < result->anonymized.NumRecords(); ++row) {
    int32_t education = result->anonymized.cell(row, 1).category();
    EXPECT_GE(education, 0);
    EXPECT_LE(education, 4);
    int32_t occupation = result->anonymized.cell(row, 2).category();
    EXPECT_GE(occupation, 0);
    EXPECT_LE(occupation, 5);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, MixedPipelineTest,
    ::testing::Values(TCloseAlgorithm::kMicroaggregationMerge,
                      TCloseAlgorithm::kKAnonymityFirst,
                      TCloseAlgorithm::kTClosenessFirst),
    [](const ::testing::TestParamInfo<TCloseAlgorithm>& info) {
      switch (info.param) {
        case TCloseAlgorithm::kMicroaggregationMerge:
          return "merge";
        case TCloseAlgorithm::kKAnonymityFirst:
          return "kanonfirst";
        case TCloseAlgorithm::kTClosenessFirst:
          return "tclosefirst";
      }
      return "unknown";
    });

TEST(MixedPipelineTest, PmseOnMixedRelease) {
  AdultLikeOptions options;
  options.num_records = 500;
  Dataset data = MakeAdultLike(options);
  AnonymizerOptions anonymizer_options;
  anonymizer_options.k = 5;
  anonymizer_options.t = 0.15;
  auto result = Anonymize(data, anonymizer_options);
  ASSERT_TRUE(result.ok());
  auto pmse = PropensityMse(data, result->anonymized);
  ASSERT_TRUE(pmse.ok());
  EXPECT_GE(*pmse, 0.0);
  EXPECT_LE(*pmse, 0.25);
}

}  // namespace
}  // namespace tcm
