// Tests for the parallel anonymization engine: thread pool, algorithm
// registry, sharded pipeline runner and batch mode. The load-bearing
// property is determinism — the release must be byte-identical for any
// thread count.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/csv.h"
#include "data/generator.h"
#include "engine/batch.h"
#include "engine/pipeline.h"
#include "engine/registry.h"
#include "engine/sharded.h"
#include "engine/thread_pool.h"
#include "microagg/partition.h"
#include "privacy/kanonymity.h"
#include "privacy/tcloseness.h"

namespace tcm {
namespace {

// -------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, RunsEveryTaskAndReturnsResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i]() { return i * i; }));
  }
  int sum = 0;
  for (auto& future : futures) sum += future.get();
  EXPECT_EQ(sum, 328350);  // sum of squares 0..99
}

TEST(ThreadPoolTest, WaitAllBlocksUntilQueueDrains) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&done]() { done.fetch_add(1); });
  }
  pool.WaitAll();
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPoolTest, SingleThreadExecutesInFifoOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.Submit([&order, i]() { order.push_back(i); }));
  }
  for (auto& future : futures) future.get();
  std::vector<int> expected(20);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, WaitAllWithZeroTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.WaitAll();  // nothing submitted: must not block
  auto future = pool.Submit([]() { return 1; });
  EXPECT_EQ(future.get(), 1);
  pool.WaitAll();
  pool.WaitAll();  // and again after the queue drained
}

TEST(ThreadPoolTest, ShutdownFinishesQueuedTasksThenRejectsNewOnes) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 32; ++i) {
    pool.Submit([&ran]() {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ++ran;
    });
  }
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 32);  // graceful: queued work still ran

  // After shutdown a submission is rejected: the task never runs and the
  // future reports a broken promise instead of hanging.
  std::atomic<bool> leaked{false};
  auto rejected = pool.Submit([&leaked]() { leaked = true; });
  try {
    rejected.get();
    FAIL() << "future from a rejected task did not throw";
  } catch (const std::future_error& error) {
    EXPECT_EQ(error.code(), std::future_errc::broken_promise);
  }
  EXPECT_FALSE(leaked.load());

  EXPECT_EQ(pool.num_threads(), 2u);  // stable for reporting
  pool.WaitAll();   // queue is empty: returns immediately
  pool.Shutdown();  // idempotent
}

TEST(ThreadPoolTest, TaskExceptionPropagatesWithoutPoisoningThePool) {
  ThreadPool pool(2);
  auto bad = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  auto good = pool.Submit([]() { return 7; });
  EXPECT_THROW(bad.get(), std::runtime_error);
  EXPECT_EQ(good.get(), 7);
  pool.WaitAll();  // the throwing task still counted down in_flight
  auto after = pool.Submit([]() { return 8; });
  EXPECT_EQ(after.get(), 8);
}

TEST(ThreadPoolTest, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

// Regression: Shutdown used to iterate workers_ unlocked, so two
// concurrent callers would both join the same std::thread (terminate)
// or race on the vector. Workers are now claimed under the pool mutex —
// exactly one caller joins each thread, the rest fall through.
TEST(ThreadPoolTest, ConcurrentShutdownCallsAreSafe) {
  for (int round = 0; round < 16; ++round) {
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    for (int i = 0; i < 16; ++i) {
      pool.Submit([&ran]() {
        std::this_thread::yield();
        ++ran;
      });
    }
    std::vector<std::thread> closers;
    closers.reserve(4);
    for (int i = 0; i < 4; ++i) {
      closers.emplace_back([&pool]() { pool.Shutdown(); });
    }
    for (std::thread& closer : closers) closer.join();
    EXPECT_EQ(ran.load(), 16);  // graceful even when shutdowns race
  }
}

// ---------------------------------------------------------------- Registry

TEST(RegistryTest, UnknownNameListsKnownAlgorithms) {
  auto fn = AlgorithmRegistry::BuiltIns().Find("definitely_not_there");
  ASSERT_FALSE(fn.ok());
  EXPECT_EQ(fn.status().code(), StatusCode::kNotFound);
  EXPECT_NE(fn.status().message().find("known algorithms"),
            std::string::npos);
  EXPECT_NE(fn.status().message().find("tclose_first"), std::string::npos);
}

TEST(RegistryTest, BuiltInsContainEveryAnonymizerInTheTree) {
  const AlgorithmRegistry& registry = AlgorithmRegistry::BuiltIns();
  for (const char* name :
       {"merge", "merge_vmdav", "merge_projection", "merge_chunked",
        "kanon_first", "tclose_first", "mondrian", "sabre", "kanon",
        "tclose"}) {
    EXPECT_TRUE(registry.Contains(name)) << name;
    EXPECT_FALSE(registry.Description(name).empty()) << name;
  }
}

TEST(RegistryTest, DuplicateRegistrationFails) {
  AlgorithmRegistry registry;
  auto fn = [](const Dataset&, const AlgorithmParams&) -> Result<Partition> {
    return Partition{};
  };
  ASSERT_TRUE(registry.Register("x", "first", fn).ok());
  auto status = registry.Register("x", "second", fn);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(registry.Register("", "unnamed", fn).ok());
}

// Factory round-trip: every registered algorithm must produce a valid,
// k-anonymous, t-close release through the shared RunAlgorithm driver.
TEST(RegistryTest, EveryBuiltinRoundTripsToAVerifiedRelease) {
  Dataset data = MakeUniformDataset(240, 3, 71);
  AlgorithmParams params;
  params.k = 4;
  params.t = 0.25;
  for (const std::string& name : AlgorithmRegistry::BuiltIns().Names()) {
    auto result = RunAlgorithm(data, name, params);
    ASSERT_TRUE(result.ok()) << name << ": " << result.status().ToString();
    EXPECT_TRUE(
        ValidatePartition(result->partition, data.NumRecords(), params.k)
            .ok())
        << name;
    auto k_ok = IsKAnonymous(result->anonymized, params.k);
    auto t_ok = IsTClose(result->anonymized, params.t);
    ASSERT_TRUE(k_ok.ok() && t_ok.ok()) << name;
    EXPECT_TRUE(*k_ok) << name;
    EXPECT_TRUE(*t_ok) << name;
    EXPECT_LE(result->max_cluster_emd, params.t + 1e-9) << name;
  }
}

TEST(RegistryTest, RunAlgorithmValidatesInputs) {
  Dataset data = MakeUniformDataset(50, 2, 73);
  AlgorithmParams params;
  params.k = 0;
  EXPECT_FALSE(RunAlgorithm(data, "merge", params).ok());
  params.k = 51;
  EXPECT_FALSE(RunAlgorithm(data, "merge", params).ok());
  params.k = 3;
  params.t = -0.1;
  EXPECT_FALSE(RunAlgorithm(data, "merge", params).ok());
}

// --------------------------------------------------------------- ShardPlan

TEST(ShardPlanTest, CoversEveryRowExactlyOnce) {
  ShardPlan plan = MakeShardPlan(1000, 128, 5);
  EXPECT_GT(plan.NumShards(), 1u);
  std::set<size_t> seen;
  for (const auto& shard : plan.shards) {
    EXPECT_GE(shard.size(), 15u);  // 3k floor
    for (size_t row : shard) {
      EXPECT_TRUE(seen.insert(row).second) << "row " << row << " duplicated";
    }
  }
  EXPECT_EQ(seen.size(), 1000u);
  EXPECT_EQ(*seen.rbegin(), 999u);
}

TEST(ShardPlanTest, IsAPureFunctionOfItsArguments) {
  ShardPlan a = MakeShardPlan(5000, 512, 3);
  ShardPlan b = MakeShardPlan(5000, 512, 3);
  EXPECT_EQ(a.shards, b.shards);
}

TEST(ShardPlanTest, DegeneratesToOneShard) {
  EXPECT_EQ(MakeShardPlan(100, 0, 5).NumShards(), 1u);
  EXPECT_EQ(MakeShardPlan(100, 100, 5).NumShards(), 1u);
  EXPECT_EQ(MakeShardPlan(100, 1000, 5).NumShards(), 1u);
  // Tiny shards are clamped so each keeps >= 3k rows.
  ShardPlan tiny = MakeShardPlan(100, 2, 10);
  for (const auto& shard : tiny.shards) EXPECT_GE(shard.size(), 30u);
}

// Round-to-nearest shard count: just under a power-of-two boundary must
// split, not fall back to one oversized shard (8191 @ 4096 was the
// motivating regression — it ran as a single 8191-row shard).
TEST(ShardPlanTest, RoundsShardCountToNearest) {
  EXPECT_EQ(MakeShardPlan(8191, 4096, 5).NumShards(), 2u);
  EXPECT_EQ(MakeShardPlan(8193, 4096, 5).NumShards(), 2u);
  // Below the midpoint the single shard is genuinely closer to target.
  EXPECT_EQ(MakeShardPlan(6000, 4096, 5).NumShards(), 1u);
  // At the midpoint and above, round up.
  EXPECT_EQ(MakeShardPlan(6144, 4096, 5).NumShards(), 2u);
  // Rounding never violates the 3k-per-shard floor.
  ShardPlan clamped = MakeShardPlan(70, 32, 10);
  for (const auto& shard : clamped.shards) EXPECT_GE(shard.size(), 30u);
}

// TryRunOneTask lets a thread waiting on subtree futures steal queued
// work instead of blocking — it must run exactly one task when one is
// queued and report false on an empty queue without blocking.
TEST(ThreadPoolTest, TryRunOneTaskDrainsQueuedWork) {
  ThreadPool pool(1);
  // Park the single worker so submitted tasks stay queued. Wait until
  // the worker actually holds the gate task — otherwise the stealing
  // thread below could grab it and block on the gate itself.
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::atomic<bool> parked{false};
  pool.Submit([gate, &parked]() {
    parked.store(true);
    gate.wait();
  });
  while (!parked.load()) std::this_thread::yield();
  std::atomic<int> ran{0};
  for (int i = 0; i < 3; ++i) {
    pool.Submit([&ran]() { ran.fetch_add(1); });
  }
  // The caller thread steals the queued tasks one at a time.
  EXPECT_TRUE(pool.TryRunOneTask());
  EXPECT_TRUE(pool.TryRunOneTask());
  EXPECT_TRUE(pool.TryRunOneTask());
  EXPECT_EQ(ran.load(), 3);
  EXPECT_FALSE(pool.TryRunOneTask());  // queue empty: returns immediately
  release.set_value();
  pool.WaitAll();
}

// ---------------------------------------------------------------- Sharded

TEST(ShardedTest, SingleShardMatchesDirectRun) {
  Dataset data = MakeMcdDataset();
  ShardedAnonymizeOptions options;
  options.algorithm = "tclose_first";
  options.params.k = 5;
  options.params.t = 0.15;
  options.shard_size = 0;  // one shard
  ThreadPool pool(2);
  auto sharded = ShardedAnonymize(data, options, &pool);
  auto direct = RunAlgorithm(data, "tclose_first", options.params);
  ASSERT_TRUE(sharded.ok() && direct.ok());
  EXPECT_EQ(WriteCsvString(sharded->anonymized),
            WriteCsvString(direct->anonymized));
}

// The determinism contract (acceptance criterion): same seed + same spec
// must produce byte-identical releases at 1, 4 and 8 threads.
TEST(ShardedTest, ReleaseIsByteIdenticalAcrossThreadCounts) {
  Dataset data = MakeUniformDataset(2000, 3, 77);
  for (const char* algorithm : {"tclose_first", "merge"}) {
    ShardedAnonymizeOptions options;
    options.algorithm = algorithm;
    options.params.k = 5;
    options.params.t = 0.2;
    options.params.seed = 99;
    options.shard_size = 256;

    std::string reference;
    size_t reference_shards = 0;
    for (size_t threads : {1u, 4u, 8u}) {
      ThreadPool pool(threads);
      ShardedAnonymizeStats stats;
      auto result = ShardedAnonymize(data, options, &pool, &stats);
      ASSERT_TRUE(result.ok())
          << algorithm << " threads=" << threads << ": "
          << result.status().ToString();
      EXPECT_GT(stats.num_shards, 1u);
      std::string release = WriteCsvString(result->anonymized);
      if (reference.empty()) {
        reference = release;
        reference_shards = stats.num_shards;
        // The sharded release must still satisfy both guarantees
        // globally, not just per shard.
        auto k_ok = IsKAnonymous(result->anonymized, options.params.k);
        auto t_ok = IsTClose(result->anonymized, options.params.t);
        ASSERT_TRUE(k_ok.ok() && t_ok.ok());
        EXPECT_TRUE(*k_ok) << algorithm;
        EXPECT_TRUE(*t_ok) << algorithm;
      } else {
        EXPECT_EQ(release, reference)
            << algorithm << ": threads=" << threads
            << " diverged from threads=1";
        EXPECT_EQ(stats.num_shards, reference_shards);
      }
    }
  }
}

TEST(ShardedTest, RepeatedRunsAreIdentical) {
  Dataset data = MakeUniformDataset(1200, 2, 79);
  ShardedAnonymizeOptions options;
  options.params.k = 4;
  options.params.t = 0.2;
  options.shard_size = 200;
  ThreadPool pool(4);
  auto first = ShardedAnonymize(data, options, &pool);
  auto second = ShardedAnonymize(data, options, &pool);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(WriteCsvString(first->anonymized),
            WriteCsvString(second->anonymized));
}

TEST(ShardedTest, NullPoolRunsSeriallyWithSameResult) {
  Dataset data = MakeUniformDataset(800, 2, 81);
  ShardedAnonymizeOptions options;
  options.params.k = 4;
  options.params.t = 0.2;
  options.shard_size = 150;
  ThreadPool pool(4);
  auto pooled = ShardedAnonymize(data, options, &pool);
  auto serial = ShardedAnonymize(data, options, nullptr);
  ASSERT_TRUE(pooled.ok() && serial.ok());
  EXPECT_EQ(WriteCsvString(pooled->anonymized),
            WriteCsvString(serial->anonymized));
}

TEST(ShardedTest, MultiShardPathValidatesRolesAndParams) {
  // A dataset with no confidential attribute must fail with a Status on
  // the multi-shard path too (not abort inside a pool worker), and a
  // negative t must be rejected before any shard runs.
  Dataset data = MakeUniformDataset(800, 2, 95);
  Dataset no_conf = *data.Project({0, 1});  // QIs only
  ShardedAnonymizeOptions options;
  options.params.k = 4;
  options.params.t = 0.2;
  options.shard_size = 150;
  auto result = ShardedAnonymize(no_conf, options, nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);

  options.params.t = -0.5;
  result = ShardedAnonymize(data, options, nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ShardedTest, ReportsFinalMergesWithoutStatsOutParam) {
  Dataset data = MakeUniformDataset(900, 2, 97);
  ShardedAnonymizeOptions options;
  options.params.k = 4;
  options.params.t = 0.2;
  options.shard_size = 150;
  ThreadPool pool(2);
  ShardedAnonymizeStats stats;
  auto with_stats = ShardedAnonymize(data, options, &pool, &stats);
  auto without = ShardedAnonymize(data, options, &pool, nullptr);
  ASSERT_TRUE(with_stats.ok() && without.ok());
  EXPECT_EQ(without->merges, stats.final_merges);
  EXPECT_EQ(with_stats->merges, stats.final_merges);
}

TEST(ShardedTest, UnknownAlgorithmFailsBeforeAnyWork) {
  Dataset data = MakeUniformDataset(100, 2, 83);
  ShardedAnonymizeOptions options;
  options.algorithm = "bogus";
  auto result = ShardedAnonymize(data, options, nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------- Pipeline

TEST(PipelineTest, EndToEndFromCsvWithRolesByName) {
  std::string dir = ::testing::TempDir();
  std::string input = dir + "/engine_pipeline_in.csv";
  std::string output = dir + "/engine_pipeline_out.csv";
  Dataset data = MakeUniformDataset(600, 3, 85);
  // Strip the roles: the pipeline must reassign them by column name.
  ASSERT_TRUE(WriteCsv(data, input).ok());

  PipelineSpec spec;
  spec.input_path = input;
  spec.output_path = output;
  spec.quasi_identifiers = {"QI1", "QI2"};
  spec.confidential = "CONF";
  spec.k = 4;
  spec.t = 0.2;
  spec.shard_size = 150;
  PipelineRunner runner(2);
  auto report = runner.Run(spec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->k_verified);
  EXPECT_TRUE(report->t_verified);
  EXPECT_GT(report->num_shards, 1u);
  EXPECT_EQ(report->threads, 2u);
  EXPECT_GE(report->anonymize_seconds, 0.0);

  auto released = ReadNumericCsv(output);
  ASSERT_TRUE(released.ok());
  EXPECT_EQ(released->NumRecords(), 600u);
  std::remove(input.c_str());
  std::remove(output.c_str());
}

TEST(PipelineTest, UnknownColumnFailsWithAvailableColumns) {
  Dataset data = MakeUniformDataset(100, 2, 87);
  PipelineSpec spec;
  spec.quasi_identifiers = {"QI1", "nope"};
  spec.confidential = "CONF";
  PipelineRunner runner(1);
  auto report = runner.Run(data, spec);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().message().find("'nope'"), std::string::npos);
  EXPECT_NE(report.status().message().find("available columns"),
            std::string::npos);
}

TEST(PipelineTest, InMemoryRunKeepsExistingRoles) {
  Dataset data = MakeMcdDataset();  // roles already assigned
  PipelineSpec spec;
  spec.k = 4;
  spec.t = 0.15;
  spec.shard_size = 0;
  PipelineRunner runner(1);
  auto report = runner.Run(data, spec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->k_verified);
  EXPECT_TRUE(report->t_verified);
  EXPECT_EQ(report->num_shards, 1u);
}

// ------------------------------------------------------------------- Batch

TEST(BatchTest, OutcomesStayInJobOrderAndIsolateFailures) {
  Dataset small = MakeUniformDataset(60, 2, 89);
  Dataset medium = MakeUniformDataset(200, 2, 91);
  std::vector<BatchJob> jobs(3);
  jobs[0].label = "ok-small";
  jobs[0].data = &small;
  jobs[0].params.k = 3;
  jobs[0].params.t = 0.3;
  jobs[1].label = "bad-k";
  jobs[1].data = &small;
  jobs[1].params.k = 1000;  // > n: must fail
  jobs[2].label = "ok-medium";
  jobs[2].data = &medium;
  jobs[2].algorithm = "merge";
  jobs[2].params.k = 4;
  jobs[2].params.t = 0.3;

  ThreadPool pool(3);
  std::vector<BatchOutcome> outcomes = RunBatch(jobs, &pool);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_EQ(outcomes[0].label, "ok-small");
  EXPECT_TRUE(outcomes[0].status.ok());
  EXPECT_GE(outcomes[0].min_cluster_size, 3u);
  EXPECT_EQ(outcomes[1].label, "bad-k");
  EXPECT_FALSE(outcomes[1].status.ok());
  EXPECT_EQ(outcomes[2].label, "ok-medium");
  EXPECT_TRUE(outcomes[2].status.ok());
  EXPECT_LE(outcomes[2].max_cluster_emd, 0.3 + 1e-9);
}

TEST(BatchTest, NullDatasetAndNullPoolAreHandled) {
  std::vector<BatchJob> jobs(1);
  jobs[0].label = "no-data";
  std::vector<BatchOutcome> outcomes = RunBatch(jobs, nullptr);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_FALSE(outcomes[0].status.ok());
  EXPECT_TRUE(RunBatch({}, nullptr).empty());
}

}  // namespace
}  // namespace tcm
