# Shared compile/link settings for every target in the repo.
#
# The codebase requires C++20 (std::erase_if and friends are used
# throughout src/microagg and src/tclose); under C++17 those are hard
# compile errors, so the standard is mandated here rather than left to
# the toolchain default.
#
# TCM_SANITIZE accepts a comma- or semicolon-separated sanitizer list
# (e.g. -DTCM_SANITIZE=address,undefined) applied to both compile and
# link lines of every target that calls tcm_apply_compile_options().

function(tcm_apply_compile_options target)
  target_compile_features(${target} PUBLIC cxx_std_20)
  set_target_properties(${target} PROPERTIES
    CXX_STANDARD 20
    CXX_STANDARD_REQUIRED ON
    CXX_EXTENSIONS OFF)

  if(CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
    target_compile_options(${target} PRIVATE -Wall -Wextra)
    if(CMAKE_CXX_COMPILER_ID STREQUAL "GNU"
       AND CMAKE_CXX_COMPILER_VERSION VERSION_GREATER_EQUAL 12
       AND CMAKE_CXX_COMPILER_VERSION VERSION_LESS 13)
      # GCC 12 emits spurious -Wrestrict errors from libstdc++'s inlined
      # std::string operator+ at -O3 (GCC PR105651), and spurious
      # -Wmaybe-uninitialized reads of std::optional payloads whose
      # members hold vectors (GCC PR105562 family; hit by
      # std::optional<JobSweep> in the Job API).
      target_compile_options(${target} PRIVATE
        -Wno-restrict -Wno-maybe-uninitialized)
    endif()
    if(TCM_THREAD_SAFETY AND CMAKE_CXX_COMPILER_ID MATCHES "Clang")
      # The annotations in common/thread_annotations.h only bite under
      # clang; the `clang-analysis` preset turns them into build errors.
      target_compile_options(${target} PRIVATE -Wthread-safety)
    endif()
    if(TCM_WERROR)
      target_compile_options(${target} PRIVATE -Werror)
    endif()
  elseif(MSVC)
    target_compile_options(${target} PRIVATE /W4)
    if(TCM_WERROR)
      target_compile_options(${target} PRIVATE /WX)
    endif()
  endif()

  if(TCM_SANITIZE AND CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
    string(REPLACE "," ";" _tcm_san_list "${TCM_SANITIZE}")
    string(REPLACE ";" "," _tcm_san_flag "${_tcm_san_list}")
    target_compile_options(${target} PRIVATE
      -fsanitize=${_tcm_san_flag} -fno-omit-frame-pointer)
    target_link_options(${target} PRIVATE -fsanitize=${_tcm_san_flag})
  elseif(TCM_SANITIZE)
    message(WARNING
      "TCM_SANITIZE is only wired up for GCC/Clang; ignoring it for "
      "${CMAKE_CXX_COMPILER_ID}")
  endif()
endfunction()
