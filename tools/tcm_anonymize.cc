// tcm_anonymize: command-line anonymizer over CSV files.
//
//   tcm_anonymize --input data.csv --output release.csv
//       --qi age,zipcode --confidential salary
//       --k 5 --t 0.1 [--algorithm merge|kanon|tclose] [--report]
//
// The input must be a numeric CSV with a header row. Columns named in
// --qi become quasi-identifiers, the --confidential column drives
// t-closeness, everything else is released unchanged. Exit code 0 only
// when the release was produced AND re-verified.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/strings.h"
#include "data/csv.h"
#include "privacy/kanonymity.h"
#include "privacy/tcloseness.h"
#include "tclose/anonymizer.h"

namespace {

struct CliOptions {
  std::string input;
  std::string output;
  std::vector<std::string> qi;
  std::string confidential;
  size_t k = 5;
  double t = 0.1;
  tcm::TCloseAlgorithm algorithm = tcm::TCloseAlgorithm::kTClosenessFirst;
  bool report = false;
};

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: tcm_anonymize --input FILE --output FILE --qi A,B,...\n"
      "                     --confidential C [--k N] [--t X]\n"
      "                     [--algorithm merge|kanon|tclose] [--report]\n");
}

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (flag == "--report") {
      options->report = true;
    } else if (flag == "--input") {
      const char* v = next();
      if (!v) return false;
      options->input = v;
    } else if (flag == "--output") {
      const char* v = next();
      if (!v) return false;
      options->output = v;
    } else if (flag == "--qi") {
      const char* v = next();
      if (!v) return false;
      options->qi = tcm::SplitString(v, ',');
    } else if (flag == "--confidential") {
      const char* v = next();
      if (!v) return false;
      options->confidential = v;
    } else if (flag == "--k") {
      const char* v = next();
      if (!v) return false;
      options->k = static_cast<size_t>(std::strtoul(v, nullptr, 10));
    } else if (flag == "--t") {
      const char* v = next();
      if (!v) return false;
      options->t = std::strtod(v, nullptr);
    } else if (flag == "--algorithm") {
      const char* v = next();
      if (!v) return false;
      if (std::strcmp(v, "merge") == 0) {
        options->algorithm = tcm::TCloseAlgorithm::kMicroaggregationMerge;
      } else if (std::strcmp(v, "kanon") == 0) {
        options->algorithm = tcm::TCloseAlgorithm::kKAnonymityFirst;
      } else if (std::strcmp(v, "tclose") == 0) {
        options->algorithm = tcm::TCloseAlgorithm::kTClosenessFirst;
      } else {
        std::fprintf(stderr, "unknown algorithm '%s'\n", v);
        return false;
      }
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
      return false;
    }
  }
  return !options->input.empty() && !options->output.empty() &&
         !options->qi.empty() && !options->confidential.empty();
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!ParseArgs(argc, argv, &options)) {
    PrintUsage();
    return 2;
  }

  auto loaded = tcm::ReadNumericCsv(options.input);
  if (!loaded.ok()) {
    std::fprintf(stderr, "cannot read %s: %s\n", options.input.c_str(),
                 loaded.status().ToString().c_str());
    return 1;
  }

  // Assign roles.
  tcm::Schema schema = loaded->schema();
  for (const std::string& name : options.qi) {
    auto updated =
        schema.WithRole(name, tcm::AttributeRole::kQuasiIdentifier);
    if (!updated.ok()) {
      std::fprintf(stderr, "--qi: %s\n", updated.status().ToString().c_str());
      return 1;
    }
    schema = std::move(updated).value();
  }
  auto updated =
      schema.WithRole(options.confidential, tcm::AttributeRole::kConfidential);
  if (!updated.ok()) {
    std::fprintf(stderr, "--confidential: %s\n",
                 updated.status().ToString().c_str());
    return 1;
  }
  schema = std::move(updated).value();
  if (auto status = loaded->ReplaceSchema(schema); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  tcm::AnonymizerOptions anonymizer_options;
  anonymizer_options.k = options.k;
  anonymizer_options.t = options.t;
  anonymizer_options.algorithm = options.algorithm;
  auto result = tcm::Anonymize(*loaded, anonymizer_options);
  if (!result.ok()) {
    std::fprintf(stderr, "anonymization failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  auto k_ok = tcm::IsKAnonymous(result->anonymized, options.k);
  auto t_ok = tcm::IsTClose(result->anonymized, options.t);
  if (!k_ok.ok() || !t_ok.ok() || !*k_ok || !*t_ok) {
    std::fprintf(stderr, "release failed verification\n");
    return 1;
  }

  if (auto status = tcm::WriteCsv(result->anonymized, options.output);
      !status.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", options.output.c_str(),
                 status.ToString().c_str());
    return 1;
  }

  if (options.report) {
    std::printf("records            : %zu\n", loaded->NumRecords());
    std::printf("algorithm          : %s\n",
                tcm::TCloseAlgorithmName(options.algorithm));
    std::printf("clusters           : %zu\n",
                result->partition.NumClusters());
    std::printf("cluster size       : min=%zu avg=%.2f max=%zu\n",
                result->min_cluster_size, result->average_cluster_size,
                result->max_cluster_size);
    std::printf("max cluster EMD    : %.4f (t=%.4f)\n",
                result->max_cluster_emd, options.t);
    std::printf("normalized SSE     : %.6f\n", result->normalized_sse);
    std::printf("elapsed            : %.3f s\n", result->elapsed_seconds);
  }
  return 0;
}
