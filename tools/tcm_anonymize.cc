// tcm_anonymize: command-line anonymizer over CSV files, a thin shell
// around the public Job API (tcm/api.h).
//
//   tcm_anonymize --job job.json [overrides...]
//   tcm_anonymize --input data.csv --output release.csv
//       --qi age,zipcode --confidential salary
//       --k 5 --t 0.1 [--algorithm NAME] [--threads N] [--shard-size N]
//       [--seed N] [--merge-strategy sequential|hierarchical]
//       [--stream] [--max-resident-rows N] [--overlap-io] [--report]
//       [--report-json FILE] [--trace-out FILE] [--list-algorithms]
//
// --job loads a versioned JobSpec from JSON (schema documented in
// README.md); every other flag is sugar that overrides the corresponding
// JobSpec field, so the two forms compose — a config-driven deployment
// can pin a job.json and override, say, --output per run. Without
// --job, the input must be a numeric CSV with a header row; --qi names
// become quasi-identifiers and --confidential drives t-closeness.
// --algorithm takes any registry name (see --list-algorithms), --stream
// switches to the bounded-memory out-of-core engine,
// --merge-strategy hierarchical runs the parallel subtree repair pass
// with EMD-bound pruning (deterministic at any thread count, different
// release bytes than the sequential default), --overlap-io overlaps the
// next window's read with the current window's processing (streaming
// only), and --report-json writes the machine-readable RunReport.
// --trace-out records one
// Chrome trace-event JSON file of the run's stage spans (load, shard,
// per-shard anonymize, each MergeUntilTClose round, verify, write) —
// open it in chrome://tracing or https://ui.perfetto.dev. The release is byte-identical
// for any thread count. Exit code 0 only when the release was produced
// AND re-verified (sweep specs are the exception: they measure cells
// without producing or verifying a release); failures print a
// structured "Code: message" line to stderr and exit with the contract
// of tools/exit_codes.h (3 InvalidSpec, 4 UnknownAlgorithm, 5 IoError,
// 6 PrivacyViolation), pinned end to end by tools/exit_codes.cmake.
//
// Audit mode re-checks an existing release the way an external auditor
// would, without running any anonymizer:
//
//   tcm_anonymize --audit release.csv --qi age,zipcode
//       --confidential salary --k 5 --t 0.1
//
// Exit 0 when the file is k-anonymous and t-close under those roles,
// 6 (PrivacyViolation) naming the violated guarantee otherwise.
//
// Convert mode translates a CSV into the zero-copy binary dataset
// format (.tcmb, layout documented in README.md "Binary dataset
// format") and nothing else:
//
//   tcm_anonymize --convert data.csv --output data.tcmb
//
// The converted file is accepted anywhere a CSV path is: --input
// auto-detects the .tcmb extension (equivalent to input.format "tcmb"
// in a job file), and the release bytes are identical either way.
// Unreadable or truncated .tcmb inputs exit 5 (IoError); malformed
// headers or a format-version mismatch exit 3 (InvalidSpec).

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "arg_parser.h"
#include "data/csv.h"
#include "engine/pipeline.h"
#include "engine/registry.h"
#include "exit_codes.h"
#include "tcm/api.h"

namespace {

constexpr char kUsage[] =
    "usage: tcm_anonymize [--job FILE] [--input FILE] [--output FILE]\n"
    "                     [--qi A,B,...] [--confidential C]\n"
    "                     [--k N] [--t X] [--algorithm NAME]\n"
    "                     [--threads N] [--shard-size N] [--seed N]\n"
    "                     [--merge-strategy sequential|hierarchical]\n"
    "                     [--stream] [--max-resident-rows N] [--overlap-io]\n"
    "                     [--report] [--report-json FILE]\n"
    "                     [--trace-out FILE] [--list-algorithms]\n"
    "       tcm_anonymize --audit FILE --qi A,B,... --confidential C\n"
    "                     --k N --t X\n"
    "       tcm_anonymize --convert IN.csv --output OUT.tcmb\n";

// File inputs ending in ".tcmb" are treated as the binary dataset
// format; everything else stays CSV. Job files say input.format
// explicitly — the extension sniff is CLI sugar only.
bool HasTcmbExtension(const std::string& path) {
  constexpr char kExt[] = ".tcmb";
  constexpr size_t kExtLen = sizeof(kExt) - 1;
  return path.size() >= kExtLen &&
         path.compare(path.size() - kExtLen, kExtLen, kExt) == 0;
}

// Re-verifies an existing release CSV against k/t: the VerifyRelease
// facade on the command line. The only CLI path that can legitimately
// end in exit code 6 — the anonymizers themselves repair violations
// before writing.
int RunAudit(const std::string& path, const std::vector<std::string>& qi,
             const std::string& confidential, size_t k, double t) {
  tcm::Dataset data{tcm::Schema{}};
  if (HasTcmbExtension(path)) {
    auto table = tcm::ReadTcmb(path);
    if (!table.ok()) {
      std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
      return tcm::tools::ExitCodeForStatus(table.status());
    }
    data = table->ToDataset();
  } else {
    auto loaded = tcm::ReadNumericCsv(path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return tcm::tools::ExitCodeForStatus(loaded.status());
    }
    data = std::move(loaded).value();
  }
  tcm::Status roles = tcm::AssignRoles(&data, qi, confidential);
  if (!roles.ok()) {
    std::fprintf(stderr, "%s\n", roles.ToString().c_str());
    return tcm::tools::ExitCodeForStatus(roles);
  }
  tcm::Status verdict = tcm::VerifyRelease(data, k, t);
  if (!verdict.ok()) {
    std::fprintf(stderr, "%s\n", verdict.ToString().c_str());
    return tcm::tools::ExitCodeForStatus(verdict);
  }
  std::printf("audit OK: %s is %zu-anonymous and %.4f-close (%zu records)\n",
              path.c_str(), k, t, data.NumRecords());
  return tcm::tools::kExitOk;
}

// CSV -> .tcmb translation, the only mode that never touches the
// anonymizers. Prints the converted shape so scripted pipelines can log
// what was written.
int RunConvert(const std::string& csv_path, const std::string& tcmb_path) {
  tcm::Status status = tcm::ConvertCsvToTcmb(csv_path, tcmb_path);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return tcm::tools::ExitCodeForStatus(status);
  }
  auto table = tcm::ReadTcmb(tcmb_path);
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return tcm::tools::ExitCodeForStatus(table.status());
  }
  std::printf("converted %s -> %s (%zu rows, %zu columns)\n",
              csv_path.c_str(), tcmb_path.c_str(), table->num_rows(),
              table->schema().size());
  return tcm::tools::kExitOk;
}

void PrintAlgorithms() {
  const tcm::AlgorithmRegistry& registry =
      tcm::AlgorithmRegistry::BuiltIns();
  std::printf("registered algorithms:\n");
  for (const std::string& name : registry.Names()) {
    std::printf("  %-18s %s\n", name.c_str(),
                registry.Description(name).c_str());
  }
}

void PrintReport(const tcm::JobSpec& spec, const tcm::RunReport& report) {
  const bool streamed = report.mode == tcm::ExecutionMode::kStreaming;
  std::printf("records            : %zu\n", report.rows);
  std::printf("algorithm          : %s%s\n", report.algorithm.c_str(),
              streamed ? " (streamed)" : "");
  std::printf("threads            : %zu\n", report.threads);
  if (streamed) {
    std::printf("windows            : %zu (budget %zu rows, peak resident "
                "%zu)\n",
                report.num_windows, spec.execution.max_resident_rows,
                report.peak_resident_rows);
  }
  std::printf("shards             : %zu (merges to restore t: %zu)\n",
              report.num_shards, report.final_merges);
  std::printf("merge strategy     : %s (subtrees %zu, pruned %zu/%zu "
              "checks)\n",
              tcm::MergeStrategyName(report.merge_strategy),
              report.merge_subtrees, report.pruned_checks,
              report.candidate_checks);
  if (!streamed) {
    std::printf("clusters           : %zu\n", report.clusters);
    std::printf("cluster size       : min=%zu avg=%.2f max=%zu\n",
                report.min_cluster_size, report.average_cluster_size,
                report.max_cluster_size);
    std::printf("max cluster EMD    : %.4f (t=%.4f)\n",
                report.max_cluster_emd, report.t);
    std::printf("normalized SSE     : %.6f\n", report.normalized_sse);
    std::printf("verified           : k-anonymity=%s t-closeness=%s\n",
                report.k_verified ? "yes" : "no",
                report.t_verified ? "yes" : "no");
    std::printf(
        "elapsed            : %.3f s (load %.3f, anonymize %.3f, "
        "verify %.3f, write %.3f)\n",
        report.total_seconds, report.load_seconds, report.anonymize_seconds,
        report.verify_seconds, report.write_seconds);
  } else {
    std::printf("cluster size       : min=%zu max=%zu\n",
                report.min_cluster_size, report.max_cluster_size);
    std::printf("max cluster EMD    : %.4f (t=%.4f, per window)\n",
                report.max_cluster_emd, report.t);
    std::printf("normalized SSE     : %.6f (row-weighted over windows)\n",
                report.normalized_sse);
    std::printf("verified           : k-anonymity=%s t-closeness=%s "
                "(every window)\n",
                report.k_verified ? "yes" : "no",
                report.t_verified ? "yes" : "no");
    std::printf(
        "elapsed            : %.3f s (read %.3f, anonymize %.3f, "
        "verify %.3f, write %.3f)\n",
        report.total_seconds, report.load_seconds, report.anonymize_seconds,
        report.verify_seconds, report.write_seconds);
  }
}

void PrintSweep(const tcm::RunReport& report) {
  std::printf("sweep              : %zu cells over %zu records\n",
              report.sweep.size(), report.rows);
  for (const tcm::SweepOutcome& cell : report.sweep) {
    if (!cell.error_code.empty()) {
      std::printf("  %-28s %s: %s\n", cell.label.c_str(),
                  cell.error_code.c_str(), cell.error.c_str());
    } else {
      std::printf("  %-28s SSE=%.4f maxEMD=%.4f clusters=%zu (%.3fs)\n",
                  cell.label.c_str(), cell.normalized_sse,
                  cell.max_cluster_emd, cell.clusters,
                  cell.elapsed_seconds);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string job_path, input, output, confidential, algorithm, report_json;
  std::string trace_out;
  std::string audit_path;
  std::string convert_path;
  std::vector<std::string> qi;
  std::string merge_strategy;
  size_t k = 0, threads = 0, shard_size = 0, max_resident_rows = 0;
  uint64_t seed = 0;
  double t = 0.0;
  bool stream = false, overlap_io = false;
  bool report_flag = false, list_algorithms = false;

  tcm::tools::ArgParser parser(kUsage);
  parser.AddString("--job", &job_path);
  parser.AddString("--audit", &audit_path);
  parser.AddString("--convert", &convert_path);
  parser.AddString("--input", &input);
  parser.AddString("--output", &output);
  parser.AddStringList("--qi", &qi);
  parser.AddString("--confidential", &confidential);
  parser.AddSize("--k", &k);
  parser.AddNonNegativeDouble("--t", &t);
  parser.AddString("--algorithm", &algorithm);
  parser.AddSize("--threads", &threads);
  parser.AddSize("--shard-size", &shard_size);
  parser.AddUint64("--seed", &seed);
  parser.AddString("--merge-strategy", &merge_strategy);
  parser.AddFlag("--stream", &stream);
  parser.AddSize("--max-resident-rows", &max_resident_rows);
  parser.AddFlag("--overlap-io", &overlap_io);
  parser.AddFlag("--report", &report_flag);
  parser.AddString("--report-json", &report_json);
  parser.AddString("--trace-out", &trace_out);
  parser.AddFlag("--list-algorithms", &list_algorithms);
  if (!parser.Parse(argc, argv)) return tcm::tools::kExitUsage;

  if (list_algorithms) {
    PrintAlgorithms();
    return tcm::tools::kExitOk;
  }

  if (!convert_path.empty()) {
    // Convert mode stands alone like --audit: it only translates bytes,
    // so every anonymization/audit flag is refused rather than silently
    // ignored.
    for (const char* flag :
         {"--job", "--audit", "--input", "--qi", "--confidential", "--k",
          "--t", "--algorithm", "--threads", "--shard-size", "--seed",
          "--merge-strategy", "--stream", "--max-resident-rows",
          "--overlap-io", "--report", "--report-json", "--trace-out"}) {
      if (parser.Seen(flag)) {
        std::fprintf(stderr, "%s does not apply to --convert mode\n%s", flag,
                     kUsage);
        return tcm::tools::kExitUsage;
      }
    }
    if (output.empty()) {
      std::fprintf(stderr, "--convert requires --output\n%s", kUsage);
      return tcm::tools::kExitUsage;
    }
    return RunConvert(convert_path, output);
  }

  if (!audit_path.empty()) {
    // Audit mode stands alone: the roles and thresholds must be explicit
    // so the verdict is unambiguous, and anonymization flags are refused
    // rather than silently ignored (the ArgParser's no-silent-skip
    // philosophy applies across modes too).
    for (const char* flag :
         {"--job", "--input", "--output", "--algorithm", "--threads",
          "--shard-size", "--seed", "--merge-strategy", "--stream",
          "--max-resident-rows", "--overlap-io", "--report",
          "--report-json", "--trace-out"}) {
      if (parser.Seen(flag)) {
        std::fprintf(stderr, "%s does not apply to --audit mode\n%s", flag,
                     kUsage);
        return tcm::tools::kExitUsage;
      }
    }
    if (qi.empty() || confidential.empty() || !parser.Seen("--k") ||
        !parser.Seen("--t")) {
      std::fprintf(stderr,
                   "--audit requires --qi, --confidential, --k and --t\n%s",
                   kUsage);
      return tcm::tools::kExitUsage;
    }
    return RunAudit(audit_path, qi, confidential, k, t);
  }

  // The spec: a --job file when given, defaults otherwise; explicit flags
  // override either.
  tcm::JobSpec spec;
  if (!job_path.empty()) {
    auto loaded = tcm::JobSpec::FromJsonFile(job_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return tcm::tools::ExitCodeForStatus(loaded.status());
    }
    spec = std::move(loaded).value();
  }
  if (parser.Seen("--input")) {
    spec.input = tcm::JobInput{};
    spec.input.kind = tcm::InputKind::kCsvPath;
    spec.input.path = input;
    if (HasTcmbExtension(input)) {
      spec.input.format = tcm::InputFormat::kTcmb;
    }
  }
  if (parser.Seen("--output")) spec.output.release_path = output;
  if (parser.Seen("--report-json")) spec.output.report_path = report_json;
  if (parser.Seen("--trace-out")) spec.output.trace_path = trace_out;
  if (parser.Seen("--qi")) spec.roles.quasi_identifiers = qi;
  if (parser.Seen("--confidential")) spec.roles.confidential = confidential;
  if (parser.Seen("--algorithm")) spec.algorithm.name = algorithm;
  if (parser.Seen("--k")) spec.algorithm.k = k;
  if (parser.Seen("--t")) spec.algorithm.t = t;
  if (parser.Seen("--seed")) spec.algorithm.seed = seed;
  if (parser.Seen("--threads")) spec.execution.threads = threads;
  if (parser.Seen("--shard-size")) spec.execution.shard_size = shard_size;
  if (parser.Seen("--merge-strategy")) {
    auto parsed = tcm::ParseMergeStrategy(merge_strategy);
    if (!parsed.ok()) {
      std::fprintf(stderr, "--merge-strategy: %s\n%s",
                   parsed.status().message().c_str(), kUsage);
      return tcm::tools::kExitUsage;
    }
    spec.execution.merge_strategy = *parsed;
  }
  if (parser.Seen("--stream")) {
    spec.execution.mode = tcm::ExecutionMode::kStreaming;
  }
  if (parser.Seen("--max-resident-rows")) {
    spec.execution.max_resident_rows = max_resident_rows;
  }
  if (parser.Seen("--overlap-io")) spec.execution.overlap_io = true;

  // Without a job file the classic required flags still apply, so the
  // historical CLI contract is unchanged.
  if (job_path.empty() &&
      (spec.input.path.empty() || spec.output.release_path.empty() ||
       spec.roles.quasi_identifiers.empty() ||
       spec.roles.confidential.empty())) {
    std::fprintf(stderr, "%s", kUsage);
    return tcm::tools::kExitUsage;
  }

  auto report = tcm::RunJob(spec);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return tcm::tools::ExitCodeForStatus(report.status());
  }
  if (report_flag) {
    if (report->swept) {
      PrintSweep(*report);
    } else {
      PrintReport(spec, *report);
    }
  }
  return tcm::tools::kExitOk;
}
