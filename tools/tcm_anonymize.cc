// tcm_anonymize: command-line anonymizer over CSV files, driven by the
// parallel engine (algorithm registry + sharded pipeline runner).
//
//   tcm_anonymize --input data.csv --output release.csv
//       --qi age,zipcode --confidential salary
//       --k 5 --t 0.1 [--algorithm NAME] [--threads N] [--shard-size N]
//       [--seed N] [--stream] [--max-resident-rows N] [--report]
//       [--list-algorithms]
//
// The input must be a numeric CSV with a header row. Columns named in
// --qi become quasi-identifiers, the --confidential column drives
// t-closeness, everything else is released unchanged. --algorithm takes
// any name registered in the engine's AlgorithmRegistry (see
// --list-algorithms); large inputs are sharded (--shard-size rows per
// shard, 0 disables) and the shards are anonymized in parallel on
// --threads workers. The release is byte-identical for any thread
// count. Exit code 0 only when the release was produced AND re-verified.
//
// --stream switches to the out-of-core path: the CSV is consumed in
// bounded memory (at most --max-resident-rows input rows resident),
// anonymized window by window through the same engine, and each window
// is re-verified k-anonymous and t-close before its rows are appended
// to the output. With --max-resident-rows covering the whole input the
// streamed release is byte-identical to the in-memory one.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/strings.h"
#include "data/csv_stream.h"
#include "engine/pipeline.h"
#include "engine/registry.h"
#include "engine/streaming.h"

namespace {

struct CliOptions {
  std::string input;
  std::string output;
  std::vector<std::string> qi;
  std::string confidential;
  size_t k = 5;
  double t = 0.1;
  std::string algorithm = "tclose_first";
  size_t threads = 1;
  size_t shard_size = 4096;
  uint64_t seed = 1;
  bool stream = false;
  size_t max_resident_rows = 200000;
  bool report = false;
  bool list_algorithms = false;
};

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: tcm_anonymize --input FILE --output FILE --qi A,B,...\n"
      "                     --confidential C [--k N] [--t X]\n"
      "                     [--algorithm NAME] [--threads N]\n"
      "                     [--shard-size N] [--seed N] [--stream]\n"
      "                     [--max-resident-rows N] [--report]\n"
      "                     [--list-algorithms]\n");
}

// Strict non-negative integer parse: rejects signs, garbage and overflow
// (strtoul would wrap "-1" to ULONG_MAX and read "abc" as 0).
bool ParseSize(const char* text, size_t* out) {
  if (text == nullptr || *text == '\0') return false;
  size_t value = 0;
  for (const char* p = text; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return false;
    size_t digit = static_cast<size_t>(*p - '0');
    if (value > (SIZE_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

bool ParseSizeFlag(const char* flag, const char* text, size_t* out) {
  if (text != nullptr && ParseSize(text, out)) return true;
  std::fprintf(stderr, "%s expects a non-negative integer, got '%s'\n",
               flag, text == nullptr ? "" : text);
  return false;
}

void PrintAlgorithms() {
  const tcm::AlgorithmRegistry& registry =
      tcm::AlgorithmRegistry::BuiltIns();
  std::printf("registered algorithms:\n");
  for (const std::string& name : registry.Names()) {
    std::printf("  %-18s %s\n", name.c_str(),
                registry.Description(name).c_str());
  }
}

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (flag == "--report") {
      options->report = true;
    } else if (flag == "--stream") {
      options->stream = true;
    } else if (flag == "--max-resident-rows") {
      if (!ParseSizeFlag("--max-resident-rows", next(),
                         &options->max_resident_rows)) {
        return false;
      }
    } else if (flag == "--list-algorithms") {
      options->list_algorithms = true;
    } else if (flag == "--input") {
      const char* v = next();
      if (!v) return false;
      options->input = v;
    } else if (flag == "--output") {
      const char* v = next();
      if (!v) return false;
      options->output = v;
    } else if (flag == "--qi") {
      const char* v = next();
      if (!v) return false;
      options->qi = tcm::SplitString(v, ',');
    } else if (flag == "--confidential") {
      const char* v = next();
      if (!v) return false;
      options->confidential = v;
    } else if (flag == "--k") {
      if (!ParseSizeFlag("--k", next(), &options->k)) return false;
    } else if (flag == "--t") {
      const char* v = next();
      if (!v || !tcm::ParseDouble(v, &options->t) || options->t < 0.0) {
        std::fprintf(stderr,
                     "--t expects a non-negative number, got '%s'\n",
                     v == nullptr ? "" : v);
        return false;
      }
    } else if (flag == "--algorithm") {
      const char* v = next();
      if (!v) return false;
      options->algorithm = v;
    } else if (flag == "--threads") {
      if (!ParseSizeFlag("--threads", next(), &options->threads)) {
        return false;
      }
    } else if (flag == "--shard-size") {
      if (!ParseSizeFlag("--shard-size", next(), &options->shard_size)) {
        return false;
      }
    } else if (flag == "--seed") {
      size_t seed = 0;
      if (!ParseSizeFlag("--seed", next(), &seed)) return false;
      options->seed = seed;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
      return false;
    }
  }
  if (options->list_algorithms) return true;
  return !options->input.empty() && !options->output.empty() &&
         !options->qi.empty() && !options->confidential.empty();
}

// Out-of-core path: stream the CSV window by window through the engine
// under the --max-resident-rows budget.
int RunStreaming(const CliOptions& options) {
  auto reader = tcm::StreamingCsvReader::OpenNumeric(options.input);
  if (!reader.ok()) {
    std::fprintf(stderr, "%s\n", reader.status().message().c_str());
    return 1;
  }
  auto schema = tcm::SchemaWithRoles((*reader)->schema(), options.qi,
                                     options.confidential);
  if (!schema.ok()) {
    std::fprintf(stderr, "%s\n", schema.status().message().c_str());
    return 1;
  }
  if (auto replaced = (*reader)->ReplaceSchema(std::move(schema).value());
      !replaced.ok()) {
    std::fprintf(stderr, "%s\n", replaced.message().c_str());
    return 1;
  }

  tcm::StreamingSpec spec;
  spec.algorithm = options.algorithm;
  spec.k = options.k;
  spec.t = options.t;
  spec.seed = options.seed;
  spec.shard_size = options.shard_size;
  spec.max_resident_rows = options.max_resident_rows;
  spec.verify = true;
  spec.output_path = options.output;

  tcm::StreamingPipelineRunner runner(options.threads);
  auto report = runner.Run(reader->get(), spec);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().message().c_str());
    return 1;
  }

  if (options.report) {
    std::printf("records            : %zu\n", report->total_rows);
    std::printf("algorithm          : %s (streamed)\n",
                options.algorithm.c_str());
    std::printf("threads            : %zu\n", report->threads);
    std::printf("windows            : %zu (budget %zu rows, peak resident "
                "%zu)\n",
                report->num_windows, options.max_resident_rows,
                report->peak_resident_rows);
    std::printf("shards             : %zu (merges to restore t: %zu)\n",
                report->num_shards, report->final_merges);
    std::printf("cluster size       : min=%zu max=%zu\n",
                report->min_cluster_size, report->max_cluster_size);
    std::printf("max cluster EMD    : %.4f (t=%.4f, per window)\n",
                report->max_cluster_emd, options.t);
    std::printf("normalized SSE     : %.6f (row-weighted over windows)\n",
                report->normalized_sse);
    std::printf("verified           : k-anonymity=%s t-closeness=%s "
                "(every window)\n",
                report->k_verified ? "yes" : "no",
                report->t_verified ? "yes" : "no");
    std::printf(
        "elapsed            : %.3f s (read %.3f, anonymize %.3f, "
        "verify %.3f, write %.3f)\n",
        report->read_seconds + report->anonymize_seconds +
            report->verify_seconds + report->write_seconds,
        report->read_seconds, report->anonymize_seconds,
        report->verify_seconds, report->write_seconds);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!ParseArgs(argc, argv, &options)) {
    PrintUsage();
    return 2;
  }
  if (options.list_algorithms) {
    PrintAlgorithms();
    return 0;
  }

  // Registry-driven dispatch: validate the name up front so a typo fails
  // fast, before any CSV is read.
  if (auto fn = tcm::AlgorithmRegistry::BuiltIns().Find(options.algorithm);
      !fn.ok()) {
    std::fprintf(stderr, "%s\n", fn.status().message().c_str());
    return 1;
  }

  if (options.stream) return RunStreaming(options);

  tcm::PipelineSpec spec;
  spec.input_path = options.input;
  spec.output_path = options.output;
  spec.quasi_identifiers = options.qi;
  spec.confidential = options.confidential;
  spec.algorithm = options.algorithm;
  spec.k = options.k;
  spec.t = options.t;
  spec.seed = options.seed;
  spec.shard_size = options.shard_size;
  spec.verify = true;

  tcm::PipelineRunner runner(options.threads);
  auto report = runner.Run(spec);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().message().c_str());
    return 1;
  }

  if (options.report) {
    const tcm::AnonymizationResult& result = report->result;
    std::printf("records            : %zu\n",
                result.anonymized.NumRecords());
    std::printf("algorithm          : %s\n", options.algorithm.c_str());
    std::printf("threads            : %zu\n", report->threads);
    std::printf("shards             : %zu (merges to restore t: %zu)\n",
                report->num_shards, report->final_merges);
    std::printf("clusters           : %zu\n",
                result.partition.NumClusters());
    std::printf("cluster size       : min=%zu avg=%.2f max=%zu\n",
                result.min_cluster_size, result.average_cluster_size,
                result.max_cluster_size);
    std::printf("max cluster EMD    : %.4f (t=%.4f)\n",
                result.max_cluster_emd, options.t);
    std::printf("normalized SSE     : %.6f\n", result.normalized_sse);
    std::printf("verified           : k-anonymity=%s t-closeness=%s\n",
                report->k_verified ? "yes" : "no",
                report->t_verified ? "yes" : "no");
    std::printf(
        "elapsed            : %.3f s (load %.3f, anonymize %.3f, "
        "verify %.3f, write %.3f)\n",
        report->load_seconds + report->anonymize_seconds +
            report->verify_seconds + report->write_seconds,
        report->load_seconds, report->anonymize_seconds,
        report->verify_seconds, report->write_seconds);
  }
  return 0;
}
