#!/usr/bin/env bash
# Live-daemon smoke test: boots a REAL tcm_serve process on an ephemeral
# port, drives it with the tcm_submit client, and pins
#   1. the served golden job's release bytes against the committed pin,
#   2. the over-the-wire report (timing-normalized) against the pin,
#   3. the stats verb: a live observability snapshot counting the golden
#      job as succeeded with a populated job-latency histogram,
#   4. wire error codes mapping to the documented tcm_submit exit codes,
#   5. a graceful drain: the shutdown verb ends the daemon with exit 0.
# Registered as ctest `tools.serve_smoke` and run standalone by the CI
# serve-smoke job.
#
# usage: serve_smoke.sh TCM_SERVE TCM_SUBMIT GOLDEN_DIR WORK_DIR
set -u

# Absolutize everything up front: the daemon runs with cwd=GOLDEN_DIR
# (to resolve the job's relative input path), so relative binary and
# work paths from the caller (the CI job passes them) must not break.
SERVE=$(cd "$(dirname "$1")" && pwd)/$(basename "$1")
SUBMIT=$(cd "$(dirname "$2")" && pwd)/$(basename "$2")
GOLDEN=$(cd "$3" && pwd)
mkdir -p "$4"
WORK=$(cd "$4" && pwd)

fail() {
  echo "serve_smoke FAILED: $*" >&2
  [ -f "$WORK/serve.log" ] && sed 's/^/  serve: /' "$WORK/serve.log" >&2
  exit 1
}

rm -rf "$WORK"
mkdir -p "$WORK" || fail "cannot create $WORK"
[ -x "$SERVE" ] || fail "tcm_serve binary not found at $SERVE"
[ -x "$SUBMIT" ] || fail "tcm_submit binary not found at $SUBMIT"

# The daemon resolves the job's relative input path against ITS working
# directory, so it runs from the golden dir.
(cd "$GOLDEN" && exec "$SERVE" --port 0 --port-file "$WORK/port" \
    --threads 2 --max-pending 8) 2>"$WORK/serve.log" &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null; wait "$SERVE_PID" 2>/dev/null' EXIT

for _ in $(seq 1 200); do
  [ -s "$WORK/port" ] && break
  kill -0 "$SERVE_PID" 2>/dev/null || fail "daemon died before binding"
  sleep 0.05
done
[ -s "$WORK/port" ] || fail "daemon never wrote its port file"
PORT=$(cat "$WORK/port")

"$SUBMIT" --port "$PORT" --ping >"$WORK/ping.json" \
  || fail "ping failed"
grep -q '"event":"pong"' "$WORK/ping.json" || fail "no pong in ping reply"

# 1 + 2: the golden job, served; release and report must match the pins.
"$SUBMIT" --port "$PORT" --job "$GOLDEN/job_tclose_first.json" \
    --output "$WORK/release.csv" --save-report "$WORK/report.json" \
    >"$WORK/events.ndjson" \
  || fail "golden submit exited $?"
cmp -s "$WORK/release.csv" "$GOLDEN/release_tclose_first_k5_t30.csv" \
  || fail "served release bytes drifted from the golden pin"

sed -E -e 's/"([a-z_]*_seconds)": [-+.eE0-9]+/"\1": 0/g' \
    -e 's/"release_path": "[^"]*"/"release_path": "<release>"/' \
    "$WORK/report.json" >"$WORK/report_norm.json"
diff -u "$GOLDEN/report_tclose_first.json" "$WORK/report_norm.json" \
  || fail "served report (timing-normalized) drifted from the pin"

# 3: live observability — the stats verb must count the golden job as
# succeeded and carry non-empty latency quantiles.
"$SUBMIT" --port "$PORT" --stats >"$WORK/stats.json" \
  || fail "stats verb failed"
grep -q '"event": "stats"' "$WORK/stats.json" || fail "no stats event"
grep -q '"succeeded": 1' "$WORK/stats.json" \
  || fail "stats does not count the golden job as succeeded"
grep -q '"serve.job_latency_seconds"' "$WORK/stats.json" \
  || fail "stats missing the job-latency histogram"
grep -q '"p99":' "$WORK/stats.json" || fail "stats missing p99 quantile"

# 4: taxonomy errors over the wire become the documented exit codes.
cat >"$WORK/invalid_spec.json" <<'EOF'
{"version": 1, "input": {"kind": "synthetic"}, "algorithm": {"k": 0}}
EOF
"$SUBMIT" --port "$PORT" --job "$WORK/invalid_spec.json" \
    >>"$WORK/events.ndjson"
[ $? -eq 3 ] || fail "InvalidSpec over the wire should exit 3"

cat >"$WORK/unknown_algorithm.json" <<'EOF'
{"version": 1, "input": {"kind": "synthetic"},
 "algorithm": {"name": "definitely_not_registered"}}
EOF
"$SUBMIT" --port "$PORT" --job "$WORK/unknown_algorithm.json" \
    >>"$WORK/events.ndjson"
[ $? -eq 4 ] || fail "UnknownAlgorithm over the wire should exit 4"

cat >"$WORK/io_error.json" <<'EOF'
{"version": 1,
 "input": {"kind": "csv", "path": "/nonexistent/tcm_smoke.csv"},
 "roles": {"quasi_identifiers": ["a"], "confidential": "b"}}
EOF
"$SUBMIT" --port "$PORT" --job "$WORK/io_error.json" \
    >>"$WORK/events.ndjson"
[ $? -eq 5 ] || fail "IoError over the wire should exit 5"

# 5: graceful drain via the shutdown verb; the daemon must exit 0.
"$SUBMIT" --port "$PORT" --shutdown >>"$WORK/events.ndjson" \
  || fail "shutdown verb failed"
wait "$SERVE_PID"
SERVE_RC=$?
trap - EXIT
[ "$SERVE_RC" -eq 0 ] || fail "daemon exited $SERVE_RC after drain"
grep -q "drained, exiting" "$WORK/serve.log" \
  || fail "daemon log missing the drain marker"

# And with the daemon gone, clients get the documented IoError code.
"$SUBMIT" --port "$PORT" --ping >/dev/null 2>&1
[ $? -eq 5 ] || fail "connecting to a dead daemon should exit 5"

echo "serve_smoke OK: golden release + report served byte-identically,"
echo "live stats, wire error codes and graceful drain as documented"
exit 0
