#ifndef TCM_TOOLS_EXIT_CODES_H_
#define TCM_TOOLS_EXIT_CODES_H_

// The documented CLI exit-code contract shared by tcm_anonymize,
// tcm_profile, tcm_serve, tcm_submit and tcm_lint (README "Exit
// codes"), pinned end
// to end by tools/exit_codes.cmake, tools/serve_smoke.sh and
// tools/lint_check.cmake. Scripts branch on these numbers the way
// in-process callers branch on StatusCode: the four public taxonomy
// entries get distinct codes, everything else collapses to the generic
// failure.
//
//   0  success
//   1  uncategorized failure
//   2  usage error (bad flags / missing required arguments)
//   3  InvalidSpec        - a job spec failed validation
//   4  UnknownAlgorithm   - algorithm name not in the registry
//   5  IoError            - unreadable input / unwritable sink / no daemon
//   6  PrivacyViolation   - a release failed independent re-verification
//
// tcm_lint maps its findings onto the same contract: any failed
// artifact or consistency check is 3 (the artifact IS an invalid spec),
// an unreadable named file is 5, bad flags are 2. The README exit-code
// table is itself one of tcm_lint's checks, so this comment, the table
// and the constants below cannot drift apart silently.

#include <string_view>

#include "common/status.h"

namespace tcm {
namespace tools {

inline constexpr int kExitOk = 0;
inline constexpr int kExitFailure = 1;
inline constexpr int kExitUsage = 2;
inline constexpr int kExitInvalidSpec = 3;
inline constexpr int kExitUnknownAlgorithm = 4;
inline constexpr int kExitIoError = 5;
inline constexpr int kExitPrivacyViolation = 6;

inline int ExitCodeForStatusCode(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return kExitOk;
    case StatusCode::kInvalidSpec:
      return kExitInvalidSpec;
    case StatusCode::kUnknownAlgorithm:
      return kExitUnknownAlgorithm;
    case StatusCode::kIoError:
      return kExitIoError;
    case StatusCode::kPrivacyViolation:
      return kExitPrivacyViolation;
    default:
      return kExitFailure;
  }
}

inline int ExitCodeForStatus(const Status& status) {
  return ExitCodeForStatusCode(status.code());
}

// Maps a StatusCodeName string (how taxonomy codes travel over the
// tcm_serve wire) onto the same contract, so tcm_submit exits with the
// code the daemon reported.
inline int ExitCodeForCodeName(std::string_view name) {
  if (name == "OK") return kExitOk;
  if (name == "InvalidSpec") return kExitInvalidSpec;
  if (name == "UnknownAlgorithm") return kExitUnknownAlgorithm;
  if (name == "IoError") return kExitIoError;
  if (name == "PrivacyViolation") return kExitPrivacyViolation;
  return kExitFailure;
}

}  // namespace tools
}  // namespace tcm

#endif  // TCM_TOOLS_EXIT_CODES_H_
