# ctest smoke script: build a small deterministic CSV, run tcm_anonymize
# end-to-end on it, and check that the run exits 0 (the tool only does so
# after re-verifying k-anonymity and t-closeness of the release) and that
# the --report output actually reports the cluster/EMD stats.
#
# Invoked as:
#   cmake -DTCM_ANONYMIZE=<binary> -DWORK_DIR=<dir> -P anonymize_smoke.cmake

if(NOT TCM_ANONYMIZE OR NOT WORK_DIR)
  message(FATAL_ERROR "TCM_ANONYMIZE and WORK_DIR must be defined")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(input "${WORK_DIR}/input.csv")
set(output "${WORK_DIR}/release.csv")
file(REMOVE "${output}")

set(csv "age,zipcode,salary\n")
foreach(i RANGE 0 59)
  math(EXPR age "20 + (7 * ${i}) % 50")
  math(EXPR zip "46000 + (13 * ${i}) % 90")
  math(EXPR salary "20000 + 1000 * ((11 * ${i}) % 40)")
  string(APPEND csv "${age},${zip},${salary}\n")
endforeach()
file(WRITE "${input}" "${csv}")

execute_process(
  COMMAND "${TCM_ANONYMIZE}"
    --input "${input}" --output "${output}"
    --qi age,zipcode --confidential salary
    --k 3 --t 0.35 --report
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE report
  ERROR_VARIABLE errors)

if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "tcm_anonymize exited with ${rc}\nstdout:\n${report}\nstderr:\n${errors}")
endif()

if(NOT report MATCHES "max cluster EMD")
  message(FATAL_ERROR "t-closeness (cluster EMD) missing from report:\n${report}")
endif()
if(NOT report MATCHES "cluster size +: min=")
  message(FATAL_ERROR "k-anonymity (cluster size) missing from report:\n${report}")
endif()

if(NOT EXISTS "${output}")
  message(FATAL_ERROR "release file ${output} was not written")
endif()
file(STRINGS "${output}" release_lines)
list(LENGTH release_lines release_line_count)
if(release_line_count LESS 61)
  message(FATAL_ERROR
    "release has ${release_line_count} lines, expected header + 60 records")
endif()

# Registry-driven dispatch: the same run through a registry name that the
# old enum never knew, on a 2-thread pool.
set(output_merge "${WORK_DIR}/release_merge.csv")
file(REMOVE "${output_merge}")
execute_process(
  COMMAND "${TCM_ANONYMIZE}"
    --input "${input}" --output "${output_merge}"
    --qi age,zipcode --confidential salary
    --k 3 --t 0.35 --algorithm merge_vmdav --threads 2
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE report
  ERROR_VARIABLE errors)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "--algorithm merge_vmdav --threads 2 exited with ${rc}\n${errors}")
endif()
if(NOT EXISTS "${output_merge}")
  message(FATAL_ERROR "merge_vmdav release was not written")
endif()

# An unknown algorithm must fail fast and list the registered names.
execute_process(
  COMMAND "${TCM_ANONYMIZE}"
    --input "${input}" --output "${WORK_DIR}/never.csv"
    --qi age,zipcode --confidential salary --algorithm bogus
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE report
  ERROR_VARIABLE errors)
if(rc EQUAL 0)
  message(FATAL_ERROR "--algorithm bogus unexpectedly succeeded")
endif()
if(NOT errors MATCHES "known algorithms")
  message(FATAL_ERROR
    "unknown-algorithm error does not list the registry:\n${errors}")
endif()

# A misspelled column must fail with the available columns in the message.
execute_process(
  COMMAND "${TCM_ANONYMIZE}"
    --input "${input}" --output "${WORK_DIR}/never.csv"
    --qi age,zipcodee --confidential salary
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE report
  ERROR_VARIABLE errors)
if(rc EQUAL 0)
  message(FATAL_ERROR "--qi zipcodee unexpectedly succeeded")
endif()
if(NOT errors MATCHES "available columns: age, zipcode, salary")
  message(FATAL_ERROR
    "bad-column error does not list the header columns:\n${errors}")
endif()

message(STATUS "anonymize smoke OK: ${release_line_count} lines released")
