// tcm_profile: inspect a numeric CSV before anonymizing it.
//
//   tcm_profile --input data.csv [--qi A,B] [--confidential C]
//               [--histogram COLUMN] [--bins N]
//
// Prints per-attribute summary statistics and, when roles are given, the
// QI <-> confidential multiple correlation (the quantity the paper uses
// to characterize its MCD/HCD/Patient-Discharge data sets) plus the
// Proposition 2 feasibility table: for each t level, the minimum cluster
// size Algorithm 3 would use.

#include <cstdio>
#include <string>
#include <vector>

#include "arg_parser.h"
#include "data/csv.h"
#include "exit_codes.h"
#include "data/summary.h"
#include "distance/emd_bounds.h"

namespace {

constexpr char kUsage[] =
    "usage: tcm_profile --input FILE [--qi A,B,...]\n"
    "                   [--confidential C] [--histogram COL]\n"
    "                   [--bins N]\n";

}  // namespace

int main(int argc, char** argv) {
  std::string input, histogram_col, confidential;
  std::vector<std::string> qi;
  size_t bins = 10;
  tcm::tools::ArgParser parser(kUsage);
  parser.AddString("--input", &input);
  parser.AddStringList("--qi", &qi);
  parser.AddString("--confidential", &confidential);
  parser.AddString("--histogram", &histogram_col);
  parser.AddSize("--bins", &bins);
  if (!parser.Parse(argc, argv)) return tcm::tools::kExitUsage;
  if (input.empty()) {
    std::fprintf(stderr, "--input is required\n%s", kUsage);
    return tcm::tools::kExitUsage;
  }

  auto loaded = tcm::ReadNumericCsv(input);
  if (!loaded.ok()) {
    std::fprintf(stderr, "cannot read %s: %s\n", input.c_str(),
                 loaded.status().ToString().c_str());
    return tcm::tools::ExitCodeForStatus(loaded.status());
  }

  tcm::Schema schema = loaded->schema();
  for (const std::string& name : qi) {
    auto updated =
        schema.WithRole(name, tcm::AttributeRole::kQuasiIdentifier);
    if (!updated.ok()) {
      std::fprintf(stderr, "--qi: %s\n", updated.status().ToString().c_str());
      return tcm::tools::ExitCodeForStatus(updated.status());
    }
    schema = std::move(updated).value();
  }
  if (!confidential.empty()) {
    auto updated =
        schema.WithRole(confidential, tcm::AttributeRole::kConfidential);
    if (!updated.ok()) {
      std::fprintf(stderr, "--confidential: %s\n",
                   updated.status().ToString().c_str());
      return tcm::tools::ExitCodeForStatus(updated.status());
    }
    schema = std::move(updated).value();
  }
  if (auto status = loaded->ReplaceSchema(schema); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return tcm::tools::ExitCodeForStatus(status);
  }

  auto summary = tcm::SummarizeDataset(*loaded);
  if (!summary.ok()) {
    std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
    return tcm::tools::ExitCodeForStatus(summary.status());
  }
  std::printf("%s", tcm::FormatSummary(*summary).c_str());

  if (!qi.empty() && !confidential.empty()) {
    std::printf("\nAlgorithm 3 cluster size needed (Eq. 3 + Eq. 4), n=%zu:\n",
                loaded->NumRecords());
    std::printf("%-8s %s\n", "t", "cluster size");
    for (double t : {0.01, 0.05, 0.1, 0.15, 0.2, 0.25}) {
      size_t k_star = tcm::AdjustClusterSizeForRemainder(
          loaded->NumRecords(),
          tcm::RequiredClusterSize(loaded->NumRecords(), 1, t));
      std::printf("%-8.2f %zu\n", t, k_star);
    }
  }

  if (!histogram_col.empty()) {
    auto index = loaded->schema().IndexOf(histogram_col);
    if (!index.ok()) {
      std::fprintf(stderr, "--histogram: %s\n",
                   index.status().ToString().c_str());
      return tcm::tools::ExitCodeForStatus(index.status());
    }
    auto histogram = tcm::ColumnHistogram(*loaded, *index, bins);
    if (!histogram.ok()) {
      std::fprintf(stderr, "%s\n", histogram.status().ToString().c_str());
      return tcm::tools::ExitCodeForStatus(histogram.status());
    }
    std::printf("\nhistogram of %s (%zu bins):\n", histogram_col.c_str(),
                bins);
    size_t peak = 1;
    for (size_t count : *histogram) peak = std::max(peak, count);
    for (size_t b = 0; b < histogram->size(); ++b) {
      size_t width = (*histogram)[b] * 50 / peak;
      std::printf("%3zu | %-50s %zu\n", b,
                  std::string(width, '#').c_str(), (*histogram)[b]);
    }
  }
  return tcm::tools::kExitOk;
}
