// tcm_lint — the repo's domain lint: statically validates the tree's own
// machine-readable artifacts the way clang-tidy validates its C++. Three
// invariant families, all cheap enough to gate every merge:
//
//   1. JobSpec artifacts. Every job*.json under tests/golden/ and
//      examples/, every --spec file named explicitly, and every JobSpec-
//      shaped JSON snippet embedded in docs/sources (fenced ```json
//      blocks and C++ raw strings) must parse and pass the strict
//      JobSpec::FromJson validation — the same gate the daemon applies
//      to wire submissions. A golden or README snippet that drifted from
//      the schema fails the build here instead of confusing a user.
//
//   2. Exit-code contract. The README "Exit codes" table must agree,
//      code by code, with tools/exit_codes.h (this binary includes the
//      header, so the constants cannot drift from the check). Likewise
//      the README "HTTP serving" status table must agree row-by-row
//      with HttpStatusForCode (serve/http.h) and document every route.
//
//   3. Version pins. JobSpec::kVersion, RunReport::kVersion,
//      kServeProtocolVersion, kStatsSchemaVersion and kTcmbFormatVersion
//      must be consistent everywhere they are spelled: golden documents'
//      "version" keys, the README schema heading, every `"protocol":N` /
//      `"stats_schema":N` in docs and protocol sources, and the README
//      ".tcmb, version N" binary-format pin.
//
// Exit codes follow the shared contract (tools/exit_codes.h): 0 clean,
// 2 usage error, 3 (InvalidSpec) for any failed artifact or consistency
// check, 5 (IoError) for an unreadable named file. Pinned by the
// tools.lint_* ctest suite.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "api/job.h"
#include "api/report.h"
#include "arg_parser.h"
#include "colstore/tcmb.h"
#include "common/json.h"
#include "common/result.h"
#include "exit_codes.h"
#include "serve/http.h"
#include "serve/protocol.h"

namespace tcm {
namespace tools {
namespace {

constexpr const char* kUsage = R"(usage: tcm_lint [options]

Validates the repository's own JobSpec/golden/doc artifacts.

  --root DIR     repository root to lint (default: current directory)
  --spec FILE    validate FILE as a strict JobSpec document; repeatable
                 via a comma-separated list; skips the tree-wide checks
  --quiet        print nothing on success
)";

struct LintReport {
  int checks = 0;
  int failures = 0;
  bool io_error = false;
  bool quiet = false;

  void Pass(const std::string& what) {
    ++checks;
    if (!quiet) std::printf("ok: %s\n", what.c_str());
  }
  void Fail(const std::string& what, const std::string& why) {
    ++checks;
    ++failures;
    std::fprintf(stderr, "FAIL: %s: %s\n", what.c_str(), why.c_str());
  }
  void IoFail(const std::string& what, const std::string& why) {
    Fail(what, why);
    io_error = true;
  }
};

std::optional<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// ------------------------------------------------------------ JobSpec files

void CheckSpecFile(const std::string& path, LintReport* report) {
  auto text = ReadFile(path);
  if (!text) {
    report->IoFail(path, "cannot read file");
    return;
  }
  auto spec = JobSpec::FromJsonText(*text);
  if (!spec.ok()) {
    report->Fail(path, spec.status().message());
    return;
  }
  report->Pass(path + " (strict JobSpec)");
}

// report*.json goldens are RunReport documents, not JobSpecs; the lint
// pins their schema version and checks they are valid JSON objects.
void CheckReportFile(const std::string& path, LintReport* report) {
  auto text = ReadFile(path);
  if (!text) {
    report->IoFail(path, "cannot read file");
    return;
  }
  auto json = ParseJson(*text);
  if (!json.ok()) {
    report->Fail(path, json.status().message());
    return;
  }
  if (!json->is_object()) {
    report->Fail(path, "report document is not a JSON object");
    return;
  }
  const JsonValue* version = json->Find("version");
  if (version == nullptr) {
    report->Fail(path, "report golden has no \"version\" key");
    return;
  }
  auto value = version->GetUint();
  if (!value.ok() ||
      *value != static_cast<uint64_t>(RunReport::kVersion)) {
    report->Fail(path, "report \"version\" is not RunReport::kVersion (" +
                           std::to_string(RunReport::kVersion) + ")");
    return;
  }
  report->Pass(path + " (report version pin)");
}

void CheckArtifactDirectory(const std::string& dir, LintReport* report) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return;  // absent directory is fine (examples/ has no JSON yet)
  bool saw_any = false;
  std::vector<std::filesystem::path> paths;
  for (const auto& entry : it) {
    if (entry.is_regular_file() && entry.path().extension() == ".json") {
      paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());  // deterministic output order
  for (const auto& path : paths) {
    const std::string name = path.filename().string();
    saw_any = true;
    if (name.rfind("job", 0) == 0) {
      CheckSpecFile(path.string(), report);
    } else if (name.rfind("report", 0) == 0) {
      CheckReportFile(path.string(), report);
    }
  }
  if (!saw_any && !report->quiet) {
    std::printf("note: no JSON artifacts under %s\n", dir.c_str());
  }
}

// ------------------------------------------------------------ doc snippets

// Extracts candidate JSON object texts embedded in a file: C++ raw
// strings R"( ... )" and fenced ```json blocks. Returns the inner texts.
std::vector<std::string> ExtractEmbeddedJson(const std::string& text) {
  std::vector<std::string> out;
  // R"( ... )" — the repo convention for inline spec documents.
  for (size_t pos = text.find("R\"("); pos != std::string::npos;
       pos = text.find("R\"(", pos)) {
    pos += 3;
    size_t end = text.find(")\"", pos);
    if (end == std::string::npos) break;
    out.push_back(text.substr(pos, end - pos));
    pos = end + 2;
  }
  // ```json fenced blocks in markdown.
  for (size_t pos = text.find("```json"); pos != std::string::npos;
       pos = text.find("```json", pos)) {
    pos = text.find('\n', pos);
    if (pos == std::string::npos) break;
    ++pos;
    size_t end = text.find("```", pos);
    if (end == std::string::npos) break;
    out.push_back(text.substr(pos, end - pos));
    pos = end + 3;
  }
  return out;
}

// A snippet is treated as a JobSpec when it parses as a JSON object
// carrying any of the spec's section keys. Snippets that do not parse at
// all are skipped — docs legitimately show elided documents ({...}).
bool LooksLikeJobSpec(const JsonValue& json) {
  if (!json.is_object()) return false;
  for (const char* key : {"input", "algorithm", "roles", "sweep"}) {
    if (json.Find(key) != nullptr) return true;
  }
  return false;
}

void CheckDocSnippets(const std::string& path, LintReport* report) {
  auto text = ReadFile(path);
  if (!text) {
    report->IoFail(path, "cannot read file");
    return;
  }
  int index = 0;
  for (const std::string& snippet : ExtractEmbeddedJson(*text)) {
    auto json = ParseJson(snippet);
    if (!json.ok() || !LooksLikeJobSpec(*json)) continue;
    ++index;
    const std::string what =
        path + " embedded spec #" + std::to_string(index);
    auto spec = JobSpec::FromJson(*json);
    if (!spec.ok()) {
      report->Fail(what, spec.status().message());
    } else {
      report->Pass(what);
    }
  }
}

// ------------------------------------------------------------- exit codes

// One expected README table row per constant in tools/exit_codes.h: the
// code number must appear as a `| N |` row whose text mentions the
// token. Included straight from the header, so renumbering a constant
// without updating the docs fails here.
struct ExpectedExitCode {
  int code;
  const char* token;
};

constexpr ExpectedExitCode kExpectedExitCodes[] = {
    {kExitOk, "success"},
    {kExitFailure, "failure"},
    {kExitUsage, "usage"},
    {kExitInvalidSpec, "InvalidSpec"},
    {kExitUnknownAlgorithm, "UnknownAlgorithm"},
    {kExitIoError, "IoError"},
    {kExitPrivacyViolation, "PrivacyViolation"},
};

void CheckExitCodeTable(const std::string& readme_path,
                        LintReport* report) {
  auto text = ReadFile(readme_path);
  if (!text) {
    report->IoFail(readme_path, "cannot read file");
    return;
  }
  size_t section = text->find("### Exit codes");
  if (section == std::string::npos) {
    report->Fail(readme_path, "no \"### Exit codes\" section");
    return;
  }
  size_t section_end = text->find("\n## ", section);
  const std::string body =
      text->substr(section, section_end == std::string::npos
                                ? std::string::npos
                                : section_end - section);

  // Collect `| N | description |` rows.
  std::vector<std::pair<int, std::string>> rows;
  std::istringstream lines(body);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("| ", 0) != 0) continue;
    size_t bar = line.find('|', 2);
    if (bar == std::string::npos) continue;
    const std::string first = line.substr(1, bar - 1);
    char* end = nullptr;
    long code = std::strtol(first.c_str(), &end, 10);
    if (end == first.c_str()) continue;  // header/separator row
    while (end && *end == ' ') ++end;
    if (end && *end != '\0') continue;  // not a bare number cell
    rows.emplace_back(static_cast<int>(code), line.substr(bar + 1));
  }

  bool ok = true;
  for (const ExpectedExitCode& expected : kExpectedExitCodes) {
    int matches = 0;
    bool token_found = false;
    for (const auto& [code, description] : rows) {
      if (code != expected.code) continue;
      ++matches;
      if (description.find(expected.token) != std::string::npos) {
        token_found = true;
      }
    }
    if (matches != 1 || !token_found) {
      report->Fail(readme_path,
                   "exit-code table: code " +
                       std::to_string(expected.code) +
                       " must appear exactly once and mention \"" +
                       expected.token + "\"");
      ok = false;
    }
  }
  const size_t expected_count =
      sizeof(kExpectedExitCodes) / sizeof(kExpectedExitCodes[0]);
  if (rows.size() != expected_count) {
    report->Fail(readme_path,
                 "exit-code table has " + std::to_string(rows.size()) +
                     " numeric rows; tools/exit_codes.h defines " +
                     std::to_string(expected_count));
    ok = false;
  }
  if (ok) report->Pass(readme_path + " (exit-code table)");
}

// The README "HTTP serving" section must carry the taxonomy-to-status
// mapping exactly as HttpStatusForCode implements it (this binary
// includes serve/http.h, so the function cannot drift from the check),
// plus every route the front serves.
void CheckHttpStatusTable(const std::string& readme_path,
                          LintReport* report) {
  auto text = ReadFile(readme_path);
  if (!text) {
    report->IoFail(readme_path, "cannot read file");
    return;
  }
  size_t section = text->find("### HTTP serving");
  if (section == std::string::npos) {
    report->Fail(readme_path, "no \"### HTTP serving\" section");
    return;
  }
  size_t section_end = text->find("\n## ", section);
  const std::string body =
      text->substr(section, section_end == std::string::npos
                                ? std::string::npos
                                : section_end - section);

  // Collect "| `CodeName` | NNN |" rows (route-table rows have a
  // non-numeric second cell and fall through).
  std::vector<std::pair<std::string, int>> rows;
  std::istringstream lines(body);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("| `", 0) != 0) continue;
    size_t name_end = line.find('`', 3);
    if (name_end == std::string::npos) continue;
    size_t bar = line.find('|', name_end);
    if (bar == std::string::npos) continue;
    const std::string cell = line.substr(bar + 1);
    char* end = nullptr;
    long status = std::strtol(cell.c_str(), &end, 10);
    if (end == cell.c_str()) continue;
    while (end && (*end == ' ' || *end == '|')) ++end;
    if (end && *end != '\0') continue;  // not a bare "| NNN |" cell
    rows.emplace_back(line.substr(3, name_end - 3),
                      static_cast<int>(status));
  }

  constexpr StatusCode kTaxonomy[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kNotFound,     StatusCode::kFailedPrecondition,
      StatusCode::kOutOfRange,   StatusCode::kInternal,
      StatusCode::kIoError,      StatusCode::kUnimplemented,
      StatusCode::kInvalidSpec,  StatusCode::kUnknownAlgorithm,
      StatusCode::kPrivacyViolation};
  bool ok = true;
  for (StatusCode code : kTaxonomy) {
    const std::string name = StatusCodeName(code);
    const int expected = HttpStatusForCode(code);
    int matches = 0;
    bool value_ok = false;
    for (const auto& [row_name, row_status] : rows) {
      if (row_name != name) continue;
      ++matches;
      value_ok = row_status == expected;
    }
    if (matches != 1 || !value_ok) {
      report->Fail(readme_path,
                   "HTTP status table: `" + name +
                       "` must appear exactly once mapping to " +
                       std::to_string(expected));
      ok = false;
    }
  }
  const size_t taxonomy_count = sizeof(kTaxonomy) / sizeof(kTaxonomy[0]);
  if (rows.size() != taxonomy_count) {
    report->Fail(readme_path,
                 "HTTP status table has " + std::to_string(rows.size()) +
                     " code rows; HttpStatusForCode maps " +
                     std::to_string(taxonomy_count));
    ok = false;
  }
  for (const char* route :
       {"POST /jobs", "GET /jobs/N", "DELETE /jobs/N", "GET /healthz",
        "GET /metricsz"}) {
    if (body.find(route) == std::string::npos) {
      report->Fail(readme_path, std::string("HTTP serving section does "
                                            "not document the route \"") +
                                    route + "\"");
      ok = false;
    }
  }
  if (ok) report->Pass(readme_path + " (HTTP status table + routes)");
}

// ------------------------------------------------------------ version pins

void CheckProtocolVersionPins(const std::string& path,
                              LintReport* report) {
  auto text = ReadFile(path);
  if (!text) {
    report->IoFail(path, "cannot read file");
    return;
  }
  bool ok = true;
  int occurrences = 0;
  for (size_t pos = text->find("\"protocol\":"); pos != std::string::npos;
       pos = text->find("\"protocol\":", pos + 1)) {
    size_t value = pos + 11;
    while (value < text->size() && (*text)[value] == ' ') ++value;
    char* end = nullptr;
    long version = std::strtol(text->c_str() + value, &end, 10);
    if (end == text->c_str() + value) continue;  // not a literal number
    ++occurrences;
    if (version != kServeProtocolVersion) {
      report->Fail(path, "\"protocol\":" + std::to_string(version) +
                             " disagrees with kServeProtocolVersion (" +
                             std::to_string(kServeProtocolVersion) + ")");
      ok = false;
    }
  }
  if (ok) {
    report->Pass(path + " (protocol version, " +
                 std::to_string(occurrences) + " pins)");
  }
}

// Same discipline for the stats event's payload version: every literal
// `"stats_schema":N` in docs and protocol sources must spell
// kStatsSchemaVersion.
void CheckStatsSchemaPins(const std::string& path, LintReport* report) {
  auto text = ReadFile(path);
  if (!text) {
    report->IoFail(path, "cannot read file");
    return;
  }
  const std::string needle = "\"stats_schema\":";
  bool ok = true;
  int occurrences = 0;
  for (size_t pos = text->find(needle); pos != std::string::npos;
       pos = text->find(needle, pos + 1)) {
    size_t value = pos + needle.size();
    while (value < text->size() && (*text)[value] == ' ') ++value;
    char* end = nullptr;
    long version = std::strtol(text->c_str() + value, &end, 10);
    if (end == text->c_str() + value) continue;  // not a literal number
    ++occurrences;
    if (version != kStatsSchemaVersion) {
      report->Fail(path, "\"stats_schema\":" + std::to_string(version) +
                             " disagrees with kStatsSchemaVersion (" +
                             std::to_string(kStatsSchemaVersion) + ")");
      ok = false;
    }
  }
  if (ok) {
    report->Pass(path + " (stats schema, " + std::to_string(occurrences) +
                 " pins)");
  }
}

void CheckReadmeSchemaVersion(const std::string& readme_path,
                              LintReport* report) {
  auto text = ReadFile(readme_path);
  if (!text) {
    report->IoFail(readme_path, "cannot read file");
    return;
  }
  const std::string needle = "schema (version ";
  size_t pos = text->find(needle);
  if (pos == std::string::npos) {
    report->Fail(readme_path, "no \"job.json schema (version N)\" heading");
    return;
  }
  long version =
      std::strtol(text->c_str() + pos + needle.size(), nullptr, 10);
  if (version != JobSpec::kVersion) {
    report->Fail(readme_path,
                 "schema heading says version " + std::to_string(version) +
                     "; JobSpec::kVersion is " +
                     std::to_string(JobSpec::kVersion));
    return;
  }
  report->Pass(readme_path + " (job.json schema version heading)");
}

// The README "Binary dataset format" section pins the on-disk version it
// documents as ".tcmb, version N"; every such mention must spell
// kTcmbFormatVersion, so bumping the format without rewriting the layout
// docs fails the lint.
void CheckTcmbFormatVersion(const std::string& readme_path,
                            LintReport* report) {
  auto text = ReadFile(readme_path);
  if (!text) {
    report->IoFail(readme_path, "cannot read file");
    return;
  }
  const std::string needle = ".tcmb, version ";
  bool ok = true;
  int occurrences = 0;
  for (size_t pos = text->find(needle); pos != std::string::npos;
       pos = text->find(needle, pos + 1)) {
    size_t value = pos + needle.size();
    char* end = nullptr;
    long version = std::strtol(text->c_str() + value, &end, 10);
    if (end == text->c_str() + value) continue;  // not a literal number
    ++occurrences;
    if (version != static_cast<long>(kTcmbFormatVersion)) {
      report->Fail(readme_path,
                   "\".tcmb, version " + std::to_string(version) +
                       "\" disagrees with kTcmbFormatVersion (" +
                       std::to_string(kTcmbFormatVersion) + ")");
      ok = false;
    }
  }
  if (occurrences == 0) {
    report->Fail(readme_path,
                 "no \".tcmb, version N\" pin (Binary dataset format "
                 "section)");
    return;
  }
  if (ok) {
    report->Pass(readme_path + " (.tcmb format version, " +
                 std::to_string(occurrences) + " pins)");
  }
}

// ----------------------------------------------------------------- driver

int Run(int argc, char** argv) {
  std::string root = ".";
  std::vector<std::string> spec_files;
  bool quiet = false;
  ArgParser parser(kUsage);
  parser.AddString("--root", &root);
  parser.AddStringList("--spec", &spec_files);
  parser.AddFlag("--quiet", &quiet);
  if (!parser.Parse(argc, argv)) return kExitUsage;

  LintReport report;
  report.quiet = quiet;

  if (!spec_files.empty()) {
    for (const std::string& file : spec_files) {
      CheckSpecFile(file, &report);
    }
  } else {
    const std::filesystem::path base(root);
    if (!std::filesystem::exists(base)) {
      std::fprintf(stderr, "FAIL: root %s does not exist\n", root.c_str());
      return kExitIoError;
    }
    CheckArtifactDirectory((base / "tests" / "golden").string(), &report);
    CheckArtifactDirectory((base / "examples").string(), &report);
    const std::string readme = (base / "README.md").string();
    CheckDocSnippets(readme, &report);
    CheckExitCodeTable(readme, &report);
    CheckHttpStatusTable(readme, &report);
    CheckReadmeSchemaVersion(readme, &report);
    CheckTcmbFormatVersion(readme, &report);
    CheckProtocolVersionPins(readme, &report);
    CheckStatsSchemaPins(readme, &report);
    const std::string protocol_header =
        (base / "src" / "serve" / "protocol.h").string();
    if (std::filesystem::exists(protocol_header)) {
      CheckDocSnippets(protocol_header, &report);
      CheckProtocolVersionPins(protocol_header, &report);
      CheckStatsSchemaPins(protocol_header, &report);
    }
  }

  if (!quiet || report.failures > 0) {
    std::fprintf(report.failures ? stderr : stdout,
                 "tcm_lint: %d checks, %d failures\n", report.checks,
                 report.failures);
  }
  if (report.io_error) return kExitIoError;
  return report.failures == 0 ? kExitOk : kExitInvalidSpec;
}

}  // namespace
}  // namespace tools
}  // namespace tcm

int main(int argc, char** argv) { return tcm::tools::Run(argc, argv); }
