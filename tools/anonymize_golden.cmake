# ctest golden script: run tcm_anonymize on the committed golden input
# (tests/golden/input_mcd_120.csv) with a pinned flag set and require the
# release bytes to EQUAL the committed golden release — in-memory and
# --stream mode both. This pins the binary's output bytes end to end
# (flag parsing, CSV I/O, role assignment, engine, verification), so a
# refactor cannot silently change what the tool releases.
#
# Invoked as:
#   cmake -DTCM_ANONYMIZE=<binary> -DGOLDEN_DIR=<tests/golden>
#         -DWORK_DIR=<dir> -P anonymize_golden.cmake

if(NOT TCM_ANONYMIZE OR NOT GOLDEN_DIR OR NOT WORK_DIR)
  message(FATAL_ERROR "TCM_ANONYMIZE, GOLDEN_DIR and WORK_DIR must be defined")
endif()

set(input "${GOLDEN_DIR}/input_mcd_120.csv")
set(golden "${GOLDEN_DIR}/release_tclose_first_k5_t30.csv")
foreach(file IN ITEMS "${input}" "${golden}")
  if(NOT EXISTS "${file}")
    message(FATAL_ERROR "missing golden file ${file}")
  endif()
endforeach()
file(MAKE_DIRECTORY "${WORK_DIR}")

set(common_flags
  --input "${input}"
  --qi TAXINC,POTHVAL --confidential FEDTAX
  --k 5 --t 0.3 --seed 9 --shard-size 64 --algorithm tclose_first)

# In-memory path, 2 threads (thread count must not change the bytes).
set(mem_out "${WORK_DIR}/golden_mem.csv")
file(REMOVE "${mem_out}")
execute_process(
  COMMAND "${TCM_ANONYMIZE}" ${common_flags} --threads 2
    --output "${mem_out}"
  RESULT_VARIABLE rc
  ERROR_VARIABLE errors)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "in-memory golden run exited with ${rc}\n${errors}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files "${mem_out}" "${golden}"
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
    "in-memory release bytes drifted from ${golden}; if intentional, "
    "regenerate the goldens (TCM_REGENERATE_GOLDEN=1 golden_release_test) "
    "and review the diff")
endif()

# Streaming path with a budget covering the whole input: byte-identical
# to the same golden.
set(stream_out "${WORK_DIR}/golden_stream.csv")
file(REMOVE "${stream_out}")
execute_process(
  COMMAND "${TCM_ANONYMIZE}" ${common_flags} --threads 2 --stream
    --max-resident-rows 4096 --output "${stream_out}"
  RESULT_VARIABLE rc
  ERROR_VARIABLE errors)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--stream golden run exited with ${rc}\n${errors}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files "${stream_out}" "${golden}"
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
    "--stream release bytes differ from the in-memory golden ${golden}")
endif()

# Streaming path with a tight budget: must still verify every window
# (exit 0) and release every record, in bounded memory.
set(window_out "${WORK_DIR}/golden_windows.csv")
file(REMOVE "${window_out}")
execute_process(
  COMMAND "${TCM_ANONYMIZE}" ${common_flags} --threads 2 --stream
    --max-resident-rows 50 --report --output "${window_out}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE report
  ERROR_VARIABLE errors)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "windowed golden run exited with ${rc}\n${errors}")
endif()
if(NOT report MATCHES "verified           : k-anonymity=yes t-closeness=yes")
  message(FATAL_ERROR "windowed run did not verify both guarantees:\n${report}")
endif()
file(STRINGS "${window_out}" release_lines)
list(LENGTH release_lines release_line_count)
if(NOT release_line_count EQUAL 121)
  message(FATAL_ERROR
    "windowed release has ${release_line_count} lines, expected 121")
endif()

message(STATUS "anonymize golden OK: releases match pinned bytes")
