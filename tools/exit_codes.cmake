# ctest script pinning the CLI exit-code contract of tools/exit_codes.h
# end to end: each public taxonomy entry must surface as its distinct
# documented code from a real tcm_anonymize invocation —
#   0 success, 2 usage, 3 InvalidSpec, 4 UnknownAlgorithm, 5 IoError,
#   6 PrivacyViolation.
#
# Invoked as:
#   cmake -DTCM_ANONYMIZE=<binary> -DWORK_DIR=<dir> -P exit_codes.cmake

if(NOT TCM_ANONYMIZE OR NOT WORK_DIR)
  message(FATAL_ERROR "TCM_ANONYMIZE and WORK_DIR must be defined")
endif()
file(MAKE_DIRECTORY "${WORK_DIR}")

# Runs the tool and asserts the exit code; extra arguments are the
# command line after the binary.
function(expect_exit expected label)
  execute_process(
    COMMAND "${TCM_ANONYMIZE}" ${ARGN}
    WORKING_DIRECTORY "${WORK_DIR}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL expected)
    message(FATAL_ERROR
      "${label}: expected exit ${expected}, got ${rc}\n"
      "stdout:\n${out}\nstderr:\n${err}")
  endif()
  message(STATUS "${label}: exit ${rc} as documented")
endfunction()

# --- fixtures -------------------------------------------------------------

file(WRITE "${WORK_DIR}/ok_job.json" [[{
  "version": 1,
  "input": {"kind": "synthetic", "generator": "uniform",
            "rows": 120, "quasi_identifiers": 2, "seed": 1},
  "algorithm": {"name": "tclose_first", "k": 4, "t": 0.3}
}]])

file(WRITE "${WORK_DIR}/invalid_spec_job.json" [[{
  "version": 1,
  "input": {"kind": "synthetic"},
  "algorithm": {"k": 0}
}]])

file(WRITE "${WORK_DIR}/unknown_algorithm_job.json" [[{
  "version": 1,
  "input": {"kind": "synthetic"},
  "algorithm": {"name": "definitely_not_registered"}
}]])

file(WRITE "${WORK_DIR}/io_error_job.json" [[{
  "version": 1,
  "input": {"kind": "csv", "path": "does_not_exist.csv"},
  "roles": {"quasi_identifiers": ["a"], "confidential": "b"}
}]])

# Ten identical QI rows then ten distinct ones: trivially NOT
# 5-anonymous once the distinct half is considered, so an audit at k=5
# must report a privacy violation.
file(WRITE "${WORK_DIR}/leaky_release.csv"
  "age,zip,salary\n")
foreach(i RANGE 1 10)
  file(APPEND "${WORK_DIR}/leaky_release.csv" "30,1000,${i}\n")
endforeach()
foreach(i RANGE 1 10)
  math(EXPR age "30 + ${i}")
  file(APPEND "${WORK_DIR}/leaky_release.csv" "${age},${i},5\n")
endforeach()

# --- the contract ---------------------------------------------------------

expect_exit(0 "success"
  --job "${WORK_DIR}/ok_job.json" --output "${WORK_DIR}/ok_release.csv")

expect_exit(2 "usage error (unknown flag)" --definitely-not-a-flag)

expect_exit(2 "usage error (audit without roles)"
  --audit "${WORK_DIR}/leaky_release.csv")

expect_exit(2 "usage error (audit refuses anonymization flags)"
  --audit "${WORK_DIR}/leaky_release.csv"
  --qi age,zip --confidential salary --k 5 --t 0.5
  --output "${WORK_DIR}/never.csv")

expect_exit(3 "InvalidSpec" --job "${WORK_DIR}/invalid_spec_job.json"
  --output "${WORK_DIR}/never.csv")

expect_exit(4 "UnknownAlgorithm"
  --job "${WORK_DIR}/unknown_algorithm_job.json"
  --output "${WORK_DIR}/never.csv")

# The same code whether the bad name comes from the file or a flag.
expect_exit(4 "UnknownAlgorithm (flag override)"
  --job "${WORK_DIR}/ok_job.json" --algorithm bogus
  --output "${WORK_DIR}/never.csv")

expect_exit(5 "IoError (missing input csv)"
  --job "${WORK_DIR}/io_error_job.json" --output "${WORK_DIR}/never.csv")

expect_exit(5 "IoError (missing job file)"
  --job "${WORK_DIR}/no_such_job.json" --output "${WORK_DIR}/never.csv")

expect_exit(6 "PrivacyViolation (audit of a leaky release)"
  --audit "${WORK_DIR}/leaky_release.csv"
  --qi age,zip --confidential salary --k 5 --t 0.5)

expect_exit(0 "audit passes on a compliant threshold"
  --audit "${WORK_DIR}/leaky_release.csv"
  --qi age,zip --confidential salary --k 1 --t 10)

# --- convert mode and the .tcmb error contract -----------------------------

expect_exit(2 "usage error (convert without --output)"
  --convert "${WORK_DIR}/leaky_release.csv")

expect_exit(2 "usage error (convert refuses anonymization flags)"
  --convert "${WORK_DIR}/leaky_release.csv"
  --output "${WORK_DIR}/never.tcmb" --k 5)

expect_exit(0 "success (convert csv to .tcmb)"
  --convert "${WORK_DIR}/leaky_release.csv"
  --output "${WORK_DIR}/leaky_release.tcmb")

expect_exit(5 "IoError (convert missing input csv)"
  --convert "${WORK_DIR}/does_not_exist.csv"
  --output "${WORK_DIR}/never.tcmb")

# Not a .tcmb file at all (wrong magic): the input is not this format,
# so the spec naming it is invalid — exit 3.
file(WRITE "${WORK_DIR}/junk.tcmb" "definitely,not,binary\n1,2,3\n")
expect_exit(3 "InvalidSpec (bad .tcmb magic)"
  --input "${WORK_DIR}/junk.tcmb" --output "${WORK_DIR}/never.csv"
  --qi definitely,not --confidential binary --k 2 --t 0.5)

# Correct magic but the file ends before the version field: damaged
# goods — exit 5.
file(WRITE "${WORK_DIR}/truncated.tcmb" "TCMB")
expect_exit(5 "IoError (truncated .tcmb)"
  --input "${WORK_DIR}/truncated.tcmb" --output "${WORK_DIR}/never.csv"
  --qi a,b --confidential c --k 2 --t 0.5)

# The audit path accepts the binary format too, with the same verdicts
# as the CSV it came from.
expect_exit(6 "PrivacyViolation (audit of a leaky .tcmb)"
  --audit "${WORK_DIR}/leaky_release.tcmb"
  --qi age,zip --confidential salary --k 5 --t 0.5)

expect_exit(0 "audit of a converted .tcmb passes"
  --audit "${WORK_DIR}/leaky_release.tcmb"
  --qi age,zip --confidential salary --k 1 --t 10)

message(STATUS "exit-code contract OK: all documented codes observed")
