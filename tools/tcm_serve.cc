// tcm_serve: the long-running job daemon — the versioned Job API
// (tcm/api.h) served over a localhost TCP socket as newline-delimited
// JSON (protocol in serve/protocol.h, README "Serving jobs").
//
//   tcm_serve [--host A.B.C.D] [--port N] [--port-file FILE]
//             [--http-port N] [--http-port-file FILE]
//             [--auth-token TOKEN] [--max-connections N]
//             [--idle-timeout-ms N] [--threads N] [--max-pending N]
//             [--no-remote-shutdown] [--log-level LEVEL]
//
// --port 0 (the default) binds an ephemeral port; the chosen port is
// logged to stderr and, with --port-file, written as a single line to
// FILE once the daemon is accepting — scripts poll that file instead of
// racing the bind. Port files are written to a temporary name and
// renamed into place, so a poller never reads a half-written file. Jobs
// execute on a shared thread pool (--threads) behind a bounded queue
// (--max-pending, backpressure for clients).
//
// --http-port additionally serves the HTTP/1.1 front (README "HTTP
// serving") on a second listener: the same verbs as routes, sharing the
// queue with the NDJSON port. --auth-token requires "Authorization:
// Bearer TOKEN" on every HTTP route but GET /healthz. --max-connections
// (default 1024) caps concurrent connections across both fronts with a
// clean wire-level rejection past the cap; --idle-timeout-ms (default
// 300000) drops connections whose peer goes silent mid-read, so stalled
// clients cannot pin handler threads.
//
// The daemon speaks structured key=value log lines on stderr (obs/log.h)
// at level info by default — unlike the one-shot tools, which stay
// silent unless TCM_LOG is set. --log-level debug|info|warn|error|off
// overrides both the default and the environment. Live metrics (jobs by
// state, queue depth, job-latency quantiles) are served over the wire by
// the "stats" verb: `tcm_submit --port N --stats`.
//
// Shutdown is always a graceful drain: SIGTERM, SIGINT or a client's
// "shutdown" verb (disable with --no-remote-shutdown) stop new
// connections and submissions, every queued or running job finishes and
// delivers its final event, then the process exits 0. Exit codes follow
// tools/exit_codes.h (5 when the address cannot be bound).

#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "arg_parser.h"
#include "exit_codes.h"
#include "tcm/api.h"

namespace {

constexpr char kUsage[] =
    "usage: tcm_serve [--host A.B.C.D] [--port N] [--port-file FILE]\n"
    "                 [--http-port N] [--http-port-file FILE]\n"
    "                 [--auth-token TOKEN] [--max-connections N]\n"
    "                 [--idle-timeout-ms N] [--threads N]\n"
    "                 [--max-pending N] [--max-terminal-jobs N]\n"
    "                 [--no-remote-shutdown]\n"
    "                 [--log-level debug|info|warn|error|off]\n";

// Writes "port\n" to `path` atomically: a temporary sibling first, then
// rename into place, so a concurrent poller sees the old content or the
// new — never a torn line.
bool WritePortFile(const std::string& path, unsigned int port) {
  const std::string temp = path + ".tmp";
  std::FILE* out = std::fopen(temp.c_str(), "w");
  if (out == nullptr) return false;
  bool ok = std::fprintf(out, "%u\n", port) > 0;
  ok = std::fclose(out) == 0 && ok;
  ok = ok && std::rename(temp.c_str(), path.c_str()) == 0;
  if (!ok) std::remove(temp.c_str());
  return ok;
}

// Self-pipe: the handler only writes a byte (async-signal-safe); a
// watcher thread turns it into the orderly RequestShutdown call.
int g_signal_pipe[2] = {-1, -1};

void HandleSignal(int) {
  char byte = 1;
  // The pipe is never full (one byte per signal, drained immediately);
  // a failed write just means shutdown was already requested.
  [[maybe_unused]] ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::string port_file, http_port_file, auth_token, log_level;
  size_t port = 0, http_port = 0, threads = 0, max_pending = 64;
  size_t max_terminal_jobs = 1024;
  size_t max_connections = 1024, idle_timeout_ms = 300000;
  bool no_remote_shutdown = false;

  tcm::tools::ArgParser parser(kUsage);
  parser.AddString("--host", &host);
  parser.AddSize("--port", &port);
  parser.AddString("--port-file", &port_file);
  parser.AddSize("--http-port", &http_port);
  parser.AddString("--http-port-file", &http_port_file);
  parser.AddString("--auth-token", &auth_token);
  parser.AddSize("--max-connections", &max_connections);
  parser.AddSize("--idle-timeout-ms", &idle_timeout_ms);
  parser.AddSize("--threads", &threads);
  parser.AddSize("--max-pending", &max_pending);
  parser.AddSize("--max-terminal-jobs", &max_terminal_jobs);
  parser.AddFlag("--no-remote-shutdown", &no_remote_shutdown);
  parser.AddString("--log-level", &log_level);
  if (!parser.Parse(argc, argv)) return tcm::tools::kExitUsage;
  if (port > 65535 || http_port > 65535) {
    std::fprintf(stderr, "--port/--http-port must be in [0, 65535]\n%s",
                 kUsage);
    return tcm::tools::kExitUsage;
  }
  if (idle_timeout_ms > 86400000) {
    std::fprintf(stderr, "--idle-timeout-ms must be at most one day\n%s",
                 kUsage);
    return tcm::tools::kExitUsage;
  }
  const bool enable_http =
      parser.Seen("--http-port") || parser.Seen("--http-port-file");
  if (parser.Seen("--log-level")) {
    tcm::LogLevel level = tcm::LogLevel::kInfo;
    if (!tcm::ParseLogLevel(log_level, &level)) {
      std::fprintf(stderr, "unknown --log-level \"%s\"\n%s",
                   log_level.c_str(), kUsage);
      return tcm::tools::kExitUsage;
    }
    tcm::Logger::Global().SetLevel(level);
  } else if (std::getenv("TCM_LOG") == nullptr) {
    // A daemon that says nothing is undebuggable: default to info unless
    // the environment asked for something else explicitly.
    tcm::Logger::Global().SetLevel(tcm::LogLevel::kInfo);
  }

  tcm::ServeOptions options;
  options.host = host;
  options.port = static_cast<uint16_t>(port);
  options.threads = threads;
  options.max_pending = max_pending;
  // 0 = unbounded retention, an explicit operator choice on a daemon.
  options.max_terminal_jobs = max_terminal_jobs;
  options.allow_remote_shutdown = !no_remote_shutdown;
  // 0 = uncapped / no deadline, explicit operator choices on a daemon.
  options.max_connections = max_connections;
  options.idle_timeout_ms = static_cast<int>(idle_timeout_ms);
  options.enable_http = enable_http;
  options.http_port = static_cast<uint16_t>(http_port);
  options.http_auth_token = auth_token;
  // A whole HTTP request must land within this budget regardless of how
  // slowly its bytes trickle in (the slowloris bound; distinct from the
  // between-requests idle timeout above).
  options.http_limits.request_deadline_ms = 30000;

  tcm::JobServer server(options);
  tcm::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return tcm::tools::ExitCodeForStatus(started);
  }
  TCM_LOG(kInfo)
      .Msg("tcm_serve listening")
      .Kv("host", host)
      .Kv("port", static_cast<unsigned int>(server.port()))
      .Kv("http_port", static_cast<unsigned int>(server.http_port()))
      .Kv("pid", static_cast<long>(::getpid()))
      .Kv("threads", threads)
      .Kv("max_pending", max_pending)
      .Kv("max_terminal_jobs", max_terminal_jobs)
      .Kv("max_connections", max_connections)
      .Kv("idle_timeout_ms", idle_timeout_ms);

  if (!port_file.empty() && !WritePortFile(port_file, server.port())) {
    std::fprintf(stderr, "cannot write port file %s\n", port_file.c_str());
    return tcm::tools::kExitIoError;
  }
  if (!http_port_file.empty() &&
      !WritePortFile(http_port_file, server.http_port())) {
    std::fprintf(stderr, "cannot write port file %s\n",
                 http_port_file.c_str());
    return tcm::tools::kExitIoError;
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "pipe failed\n");
    return tcm::tools::kExitFailure;
  }
  struct sigaction action {};
  action.sa_handler = HandleSignal;
  ::sigemptyset(&action.sa_mask);
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  std::thread watcher([&server]() {
    char byte = 0;
    while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
    }
    server.RequestShutdown();
  });

  server.Wait();  // returns after the graceful drain completes

  // Unblock the watcher in case shutdown came from the wire, not a
  // signal; RequestShutdown is idempotent so the extra call is harmless.
  HandleSignal(0);
  watcher.join();

  TCM_LOG(kInfo).Msg("tcm_serve drained, exiting");
  return tcm::tools::kExitOk;
}
