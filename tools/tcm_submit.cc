// tcm_submit: command-line client for a running tcm_serve daemon.
//
//   tcm_submit --port N [--host A.B.C.D] --job FILE [--no-wait]
//       [--output FILE] [--report-json FILE] [--save-report FILE]
//   tcm_submit --port N --status ID
//   tcm_submit --port N --cancel ID
//   tcm_submit --port N --shutdown
//   tcm_submit --port N --ping
//   tcm_submit --port N --stats
//
// --job submits the JobSpec JSON as-is: the file is checked to be JSON
// but NOT validated client side, so spec errors come back over the wire
// with the daemon's taxonomy code — which becomes this tool's exit code
// per tools/exit_codes.h (3 InvalidSpec, 4 UnknownAlgorithm, 5 IoError,
// 6 PrivacyViolation; 5 also when no daemon is listening). --output and
// --report-json override the spec's sinks; the daemon writes them, so
// the paths resolve on the SERVER side — use absolute paths unless the
// daemon shares your working directory. Every event received is echoed
// to stdout as one JSON line; --save-report additionally extracts the
// final RunReport into FILE (pretty-printed, like --report-json writes
// it). --no-wait returns right after the job is accepted: poll with
// --status, stop with --cancel, and drain the daemon with --shutdown.
// --stats prints the daemon's live observability snapshot (jobs by
// state, queue depth, serve.* metrics with latency quantiles) as one
// pretty-printed JSON document.

#include <cstdio>
#include <string>

#include "arg_parser.h"
#include "exit_codes.h"
#include "tcm/api.h"

namespace {

constexpr char kUsage[] =
    "usage: tcm_submit --port N [--host A.B.C.D]\n"
    "                  (--job FILE [--no-wait] [--output FILE]\n"
    "                   [--report-json FILE] [--save-report FILE]\n"
    "                   | --status ID | --cancel ID | --shutdown |"
    " --ping\n"
    "                   | --stats)\n";

void PrintEvent(const tcm::JsonValue& event) {
  std::printf("%s\n", event.Write(-1).c_str());
}

// The event's "code" mapped through the exit-code contract (generic
// failure when absent).
int ExitCodeForEvent(const tcm::JsonValue& event) {
  const tcm::JsonValue* code = event.Find("code");
  if (code == nullptr || !code->is_string()) {
    return tcm::tools::kExitFailure;
  }
  return tcm::tools::ExitCodeForCodeName(code->string_value());
}

// Sets spec.output.<key> = path on the raw spec document, creating the
// "output" object when the spec had none.
void OverrideOutput(tcm::JsonValue* spec, const std::string& key,
                    const std::string& path) {
  const tcm::JsonValue* existing = spec->Find("output");
  tcm::JsonValue output = (existing != nullptr && existing->is_object())
                              ? *existing
                              : tcm::JsonValue::MakeObject();
  output.Set(key, path);
  spec->Set("output", std::move(output));
}

int RunSubmit(tcm::ServeClient* client, const std::string& job_path,
              bool no_wait, const std::string& output,
              const std::string& report_json,
              const std::string& save_report) {
  auto spec = tcm::ReadJsonFile(job_path);
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return tcm::tools::ExitCodeForStatus(spec.status());
  }
  if (!output.empty()) {
    OverrideOutput(&spec.value(), "release_path", output);
  }
  if (!report_json.empty()) {
    OverrideOutput(&spec.value(), "report_path", report_json);
  }

  tcm::JsonValue request = tcm::JsonValue::MakeObject();
  request.Set("verb", "submit");
  request.Set("spec", std::move(spec).value());
  if (no_wait) request.Set("wait", false);
  tcm::Status sent = client->Send(request);
  if (!sent.ok()) {
    std::fprintf(stderr, "%s\n", sent.ToString().c_str());
    return tcm::tools::ExitCodeForStatus(sent);
  }

  if (no_wait) {
    // One reply — accepted or refused — and we are done.
    auto event = client->ReadEvent();
    if (!event.ok()) {
      std::fprintf(stderr, "%s\n", event.status().ToString().c_str());
      return tcm::tools::ExitCodeForStatus(event.status());
    }
    PrintEvent(*event);
    const tcm::JsonValue* name = event->Find("event");
    if (name != nullptr && name->is_string() &&
        name->string_value() == "error") {
      return ExitCodeForEvent(*event);
    }
    return tcm::tools::kExitOk;
  }

  // Echo every event as it streams in; the terminal one decides the exit
  // code.
  while (true) {
    auto event = client->ReadEvent();
    if (!event.ok()) {
      std::fprintf(stderr, "%s\n", event.status().ToString().c_str());
      return tcm::tools::ExitCodeForStatus(event.status());
    }
    PrintEvent(*event);
    const tcm::JsonValue* name = event->Find("event");
    if (name == nullptr || !name->is_string()) {
      std::fprintf(stderr, "daemon sent an event without a name\n");
      return tcm::tools::kExitFailure;
    }
    if (name->string_value() == "error") return ExitCodeForEvent(*event);
    if (name->string_value() != "state") continue;  // accepted, ...
    const tcm::JsonValue* state = event->Find("state");
    const std::string state_name =
        (state != nullptr && state->is_string()) ? state->string_value()
                                                 : "";
    if (state_name == "succeeded") {
      if (!save_report.empty()) {
        const tcm::JsonValue* report = event->Find("report");
        if (report == nullptr) {
          std::fprintf(stderr, "terminal event carried no report\n");
          return tcm::tools::kExitFailure;
        }
        tcm::Status written = tcm::WriteJsonFile(*report, save_report);
        if (!written.ok()) {
          std::fprintf(stderr, "%s\n", written.ToString().c_str());
          return tcm::tools::ExitCodeForStatus(written);
        }
      }
      return tcm::tools::kExitOk;
    }
    if (state_name == "failed") return ExitCodeForEvent(*event);
    if (state_name == "cancelled") return tcm::tools::kExitFailure;
    // queued / running: keep streaming.
  }
}

// status / cancel / shutdown / ping: one request, one event back.
int RunSimpleVerb(tcm::ServeClient* client, tcm::ServeRequest request) {
  tcm::Status sent = client->Send(request);
  if (!sent.ok()) {
    std::fprintf(stderr, "%s\n", sent.ToString().c_str());
    return tcm::tools::ExitCodeForStatus(sent);
  }
  auto event = client->ReadEvent();
  if (!event.ok()) {
    std::fprintf(stderr, "%s\n", event.status().ToString().c_str());
    return tcm::tools::ExitCodeForStatus(event.status());
  }
  PrintEvent(*event);
  const tcm::JsonValue* name = event->Find("event");
  if (name != nullptr && name->is_string() &&
      name->string_value() == "error") {
    return ExitCodeForEvent(*event);
  }
  return tcm::tools::kExitOk;
}

// stats: one request, the snapshot pretty-printed — the one verb whose
// reply is meant for human eyes (and scripts via the JSON keys).
int RunStats(tcm::ServeClient* client) {
  auto event = client->Stats();
  if (!event.ok()) {
    std::fprintf(stderr, "%s\n", event.status().ToString().c_str());
    return tcm::tools::ExitCodeForStatus(event.status());
  }
  std::printf("%s\n", event->Write(2).c_str());
  const tcm::JsonValue* name = event->Find("event");
  if (name != nullptr && name->is_string() &&
      name->string_value() == "error") {
    return ExitCodeForEvent(*event);
  }
  return tcm::tools::kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::string job_path, output, report_json, save_report;
  size_t port = 0, status_id = 0, cancel_id = 0;
  bool no_wait = false, do_shutdown = false, do_ping = false;
  bool do_stats = false;

  tcm::tools::ArgParser parser(kUsage);
  parser.AddString("--host", &host);
  parser.AddSize("--port", &port);
  parser.AddString("--job", &job_path);
  parser.AddFlag("--no-wait", &no_wait);
  parser.AddString("--output", &output);
  parser.AddString("--report-json", &report_json);
  parser.AddString("--save-report", &save_report);
  parser.AddSize("--status", &status_id);
  parser.AddSize("--cancel", &cancel_id);
  parser.AddFlag("--shutdown", &do_shutdown);
  parser.AddFlag("--ping", &do_ping);
  parser.AddFlag("--stats", &do_stats);
  if (!parser.Parse(argc, argv)) return tcm::tools::kExitUsage;

  const int verbs = (job_path.empty() ? 0 : 1) +
                    (parser.Seen("--status") ? 1 : 0) +
                    (parser.Seen("--cancel") ? 1 : 0) +
                    (do_shutdown ? 1 : 0) + (do_ping ? 1 : 0) +
                    (do_stats ? 1 : 0);
  if (verbs != 1 || !parser.Seen("--port") || port == 0 || port > 65535) {
    std::fprintf(stderr, "%s", kUsage);
    return tcm::tools::kExitUsage;
  }
  if (no_wait && !save_report.empty()) {
    // The report only exists in the terminal event, which --no-wait
    // never reads; refuse rather than silently not writing the file.
    std::fprintf(stderr, "--save-report requires waiting (drop --no-wait "
                         "or poll with --status)\n%s", kUsage);
    return tcm::tools::kExitUsage;
  }

  auto client = tcm::ServeClient::Connect(host,
                                          static_cast<uint16_t>(port));
  if (!client.ok()) {
    std::fprintf(stderr, "%s\n", client.status().ToString().c_str());
    return tcm::tools::ExitCodeForStatus(client.status());
  }

  if (!job_path.empty()) {
    return RunSubmit(&client.value(), job_path, no_wait, output,
                     report_json, save_report);
  }
  if (do_stats) return RunStats(&client.value());

  tcm::ServeRequest request;
  if (parser.Seen("--status")) {
    request.verb = tcm::ServeVerb::kStatus;
    request.job = status_id;
  } else if (parser.Seen("--cancel")) {
    request.verb = tcm::ServeVerb::kCancel;
    request.job = cancel_id;
  } else if (do_shutdown) {
    request.verb = tcm::ServeVerb::kShutdown;
  } else {
    request.verb = tcm::ServeVerb::kPing;
  }
  return RunSimpleVerb(&client.value(), request);
}
