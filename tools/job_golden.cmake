# ctest golden script for the Job API surface of tcm_anonymize: run the
# tool on the checked-in tests/golden/job_tclose_first.json and require
#   1. the release bytes to EQUAL the committed golden release, and
#   2. the --report-json document, with every volatile "*_seconds" timing
#      normalized to 0, to EQUAL the committed golden report.
# Together with anonymize_golden.cmake (the flag spelling of the same
# run) this pins the whole --job path: JSON spec parsing, the facade
# lowering, and the RunReport schema — a schema change shows up as a
# golden diff to review, exactly like release bytes.
#
# Invoked as:
#   cmake -DTCM_ANONYMIZE=<binary> -DGOLDEN_DIR=<tests/golden>
#         -DWORK_DIR=<dir> -P job_golden.cmake

if(NOT TCM_ANONYMIZE OR NOT GOLDEN_DIR OR NOT WORK_DIR)
  message(FATAL_ERROR "TCM_ANONYMIZE, GOLDEN_DIR and WORK_DIR must be defined")
endif()

set(job "${GOLDEN_DIR}/job_tclose_first.json")
set(golden_release "${GOLDEN_DIR}/release_tclose_first_k5_t30.csv")
set(golden_report "${GOLDEN_DIR}/report_tclose_first.json")
foreach(file IN ITEMS "${job}" "${golden_release}" "${golden_report}")
  if(NOT EXISTS "${file}")
    message(FATAL_ERROR "missing golden file ${file}")
  endif()
endforeach()
file(MAKE_DIRECTORY "${WORK_DIR}")

set(release_out "${WORK_DIR}/job_release.csv")
set(report_out "${WORK_DIR}/job_report.json")
file(REMOVE "${release_out}" "${report_out}")

# The job file names its input relative to the golden directory, so the
# tool runs from there; output sinks come in as flag overrides — the
# "flags are sugar over a JobSpec" contract under test.
execute_process(
  COMMAND "${TCM_ANONYMIZE}" --job "${job}"
    --output "${release_out}" --report-json "${report_out}"
  WORKING_DIRECTORY "${GOLDEN_DIR}"
  RESULT_VARIABLE rc
  ERROR_VARIABLE errors)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--job golden run exited with ${rc}\n${errors}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files "${release_out}"
    "${golden_release}"
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
    "--job release bytes drifted from ${golden_release}; if intentional, "
    "regenerate the goldens and review the diff")
endif()

# Normalize the volatile fields — timings (every key ending in _seconds)
# and the run-local release path — and compare the rest byte for byte.
file(READ "${report_out}" report)
string(REGEX REPLACE "\"([a-z_]*_seconds)\": [-+.eE0-9]+" "\"\\1\": 0"
  report "${report}")
string(REGEX REPLACE "\"release_path\": \"[^\"]*\""
  "\"release_path\": \"<release>\"" report "${report}")
file(READ "${golden_report}" expected)
if(NOT report STREQUAL expected)
  file(WRITE "${WORK_DIR}/job_report_normalized.json" "${report}")
  message(FATAL_ERROR
    "--report-json schema drifted from ${golden_report} "
    "(normalized copy at ${WORK_DIR}/job_report_normalized.json); if "
    "intentional, regenerate the golden and review the diff")
endif()

# A spec typo must fail fast with the structured code on stderr.
execute_process(
  COMMAND "${TCM_ANONYMIZE}" --job "${job}" --algorithm bogus
    --output "${WORK_DIR}/never.csv"
  WORKING_DIRECTORY "${GOLDEN_DIR}"
  RESULT_VARIABLE rc
  ERROR_VARIABLE errors)
if(rc EQUAL 0)
  message(FATAL_ERROR "--job with --algorithm bogus unexpectedly succeeded")
endif()
if(NOT errors MATCHES "UnknownAlgorithm")
  message(FATAL_ERROR
    "unknown-algorithm failure lacks the structured code:\n${errors}")
endif()

message(STATUS "job golden OK: release and report match pinned bytes")
