# ctest convert-equivalence smoke: convert the committed golden CSV to
# the binary .tcmb format, run the SAME pinned job over both inputs —
# in-memory and --stream, at 1 and 4 threads — and require every release
# to be byte-identical to the committed golden. This is the format's
# core guarantee (CSV and .tcmb are interchangeable inputs) pinned end
# to end through the CLI, plus the convert-mode error contract on
# damaged files.
#
# Invoked as:
#   cmake -DTCM_ANONYMIZE=<binary> -DGOLDEN_DIR=<tests/golden>
#         -DWORK_DIR=<dir> -P convert_golden.cmake

if(NOT TCM_ANONYMIZE OR NOT GOLDEN_DIR OR NOT WORK_DIR)
  message(FATAL_ERROR "TCM_ANONYMIZE, GOLDEN_DIR and WORK_DIR must be defined")
endif()

set(csv_input "${GOLDEN_DIR}/input_mcd_120.csv")
set(golden "${GOLDEN_DIR}/release_tclose_first_k5_t30.csv")
foreach(file IN ITEMS "${csv_input}" "${golden}")
  if(NOT EXISTS "${file}")
    message(FATAL_ERROR "missing golden file ${file}")
  endif()
endforeach()
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# --- convert the golden input --------------------------------------------
set(tcmb_input "${WORK_DIR}/input_mcd_120.tcmb")
execute_process(
  COMMAND "${TCM_ANONYMIZE}" --convert "${csv_input}"
    --output "${tcmb_input}"
  RESULT_VARIABLE rc
  ERROR_VARIABLE errors)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--convert exited with ${rc}\n${errors}")
endif()

# --- the equivalence matrix ----------------------------------------------
# {csv, tcmb} x {in-memory, --stream} x {1, 4 threads}: eight runs, one
# pinned byte sequence.
set(common_flags
  --qi TAXINC,POTHVAL --confidential FEDTAX
  --k 5 --t 0.3 --seed 9 --shard-size 64 --algorithm tclose_first)

foreach(format csv tcmb)
  set(input "${${format}_input}")
  foreach(threads 1 4)
    foreach(mode mem stream)
      set(out "${WORK_DIR}/release_${format}_${mode}_t${threads}.csv")
      set(mode_flags "")
      if(mode STREQUAL "stream")
        set(mode_flags --stream --max-resident-rows 4096)
      endif()
      execute_process(
        COMMAND "${TCM_ANONYMIZE}" --input "${input}" ${common_flags}
          --threads ${threads} ${mode_flags} --output "${out}"
        RESULT_VARIABLE rc
        ERROR_VARIABLE errors)
      if(NOT rc EQUAL 0)
        message(FATAL_ERROR
          "${format}/${mode}/threads=${threads} exited with ${rc}\n${errors}")
      endif()
      execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files "${out}" "${golden}"
        RESULT_VARIABLE diff)
      if(NOT diff EQUAL 0)
        message(FATAL_ERROR
          "${format}/${mode}/threads=${threads} release differs from "
          "${golden}: CSV and .tcmb inputs must be byte-equivalent")
      endif()
    endforeach()
  endforeach()
endforeach()

# --- damaged-file error contract -----------------------------------------
function(expect_exit expected label)
  execute_process(
    COMMAND "${TCM_ANONYMIZE}" ${ARGN}
    WORKING_DIRECTORY "${WORK_DIR}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL expected)
    message(FATAL_ERROR
      "${label}: expected exit ${expected}, got ${rc}\n"
      "stdout:\n${out}\nstderr:\n${err}")
  endif()
  message(STATUS "${label}: exit ${rc} as documented")
endfunction()

expect_exit(5 "IoError (convert missing input)"
  --convert "${WORK_DIR}/no_such.csv" --output "${WORK_DIR}/never.tcmb")

# A file with the .tcmb extension but the wrong magic is not this
# format: InvalidSpec.
file(WRITE "${WORK_DIR}/junk.tcmb" "age,zip,salary\n1,2,3\n")
expect_exit(3 "InvalidSpec (junk bytes behind a .tcmb extension)"
  --input "${WORK_DIR}/junk.tcmb" --output "${WORK_DIR}/never.csv"
  --qi age,zip --confidential salary --k 2 --t 0.5)

# A truncated .tcmb (magic intact, body cut off) is damaged goods:
# IoError. CMake strings cannot hold the NUL bytes a longer genuine
# prefix contains, so the fixture stops right after the magic — the
# shortest member of the truncation ladder tests/tcmb_fuzz_test.cc
# walks exhaustively.
file(WRITE "${WORK_DIR}/truncated.tcmb" "TCMB")
expect_exit(5 "IoError (truncated .tcmb)"
  --input "${WORK_DIR}/truncated.tcmb" --output "${WORK_DIR}/never.csv"
  --qi TAXINC,POTHVAL --confidential FEDTAX --k 2 --t 0.5)

message(STATUS
  "convert equivalence OK: 8/8 releases byte-identical across "
  "csv/tcmb x mem/stream x 1/4 threads")
