# ctest driver for tcm_lint: the whole-tree lint must pass on the
# committed repository, the exit-code contract of tools/exit_codes.h
# must hold on the tool itself, and an injected-bad-artifact negative
# test proves the gate actually bites (a lint that cannot fail pins
# nothing).
#
# Invoked by tools/CMakeLists.txt with:
#   TCM_LINT    path to the tcm_lint binary
#   REPO_ROOT   the source tree to lint
#   WORK_DIR    scratch directory for corpora

function(expect_exit label expected actual output)
  if(NOT actual EQUAL expected)
    message(FATAL_ERROR
      "${label}: expected exit ${expected}, got ${actual}\n${output}")
  endif()
endfunction()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# --- 1. The committed tree lints clean (exit 0). ---------------------------
execute_process(
  COMMAND ${TCM_LINT} --root ${REPO_ROOT}
  RESULT_VARIABLE result
  OUTPUT_VARIABLE output
  ERROR_VARIABLE output)
expect_exit("clean tree" 0 "${result}" "${output}")
if(NOT output MATCHES "0 failures")
  message(FATAL_ERROR "clean tree: summary line missing\n${output}")
endif()

# --- 2. Valid spec corpus: the golden job passes in --spec mode. -----------
execute_process(
  COMMAND ${TCM_LINT} --spec ${REPO_ROOT}/tests/golden/job_tclose_first.json
  RESULT_VARIABLE result
  OUTPUT_VARIABLE output
  ERROR_VARIABLE output)
expect_exit("valid spec" 0 "${result}" "${output}")

# --- 3. Invalid spec corpus (the json_fuzz rejection classes): every -------
# one must exit 3 (InvalidSpec per tools/exit_codes.h), never 0/crash.
file(WRITE "${WORK_DIR}/bad_version.json"
  "{\"version\": 99, \"input\": {\"kind\": \"synthetic\"}}\n")
file(WRITE "${WORK_DIR}/bad_unknown_key.json"
  "{\"input\": {\"kind\": \"synthetic\"}, \"no_such_key\": 1}\n")
file(WRITE "${WORK_DIR}/bad_type.json"
  "{\"algorithm\": {\"name\": \"tclose_first\", \"k\": \"five\"}}\n")
file(WRITE "${WORK_DIR}/bad_truncated.json"
  "{\"input\": {\"kind\": \"synthetic\"")
file(WRITE "${WORK_DIR}/bad_range.json"
  "{\"algorithm\": {\"name\": \"tclose_first\", \"k\": 0}}\n")
foreach(bad
    bad_version bad_unknown_key bad_type bad_truncated bad_range)
  execute_process(
    COMMAND ${TCM_LINT} --spec ${WORK_DIR}/${bad}.json
    RESULT_VARIABLE result
    OUTPUT_VARIABLE output
    ERROR_VARIABLE output)
  expect_exit("${bad}" 3 "${result}" "${output}")
endforeach()

# An unregistered algorithm is still a failed spec artifact: exit 3.
file(WRITE "${WORK_DIR}/bad_algorithm.json"
  "{\"algorithm\": {\"name\": \"definitely_not_registered\"}}\n")
execute_process(
  COMMAND ${TCM_LINT} --spec ${WORK_DIR}/bad_algorithm.json
  RESULT_VARIABLE result
  OUTPUT_VARIABLE output
  ERROR_VARIABLE output)
expect_exit("bad_algorithm" 3 "${result}" "${output}")

# --- 4. Injected bad golden: a tree whose job artifact drifted fails. ------
set(BAD_TREE "${WORK_DIR}/bad_tree")
file(MAKE_DIRECTORY "${BAD_TREE}/tests/golden")
configure_file("${REPO_ROOT}/README.md" "${BAD_TREE}/README.md" COPYONLY)
file(WRITE "${BAD_TREE}/tests/golden/job_drifted.json"
  "{\"version\": 1, \"input\": {\"kind\": \"csv\"}}\n")
execute_process(
  COMMAND ${TCM_LINT} --root ${BAD_TREE}
  RESULT_VARIABLE result
  OUTPUT_VARIABLE output
  ERROR_VARIABLE output)
expect_exit("injected bad golden" 3 "${result}" "${output}")
if(NOT output MATCHES "job_drifted")
  message(FATAL_ERROR
    "injected bad golden: failure does not name the artifact\n${output}")
endif()

# --- 5. Drifted docs: a README whose exit-code table disagrees with --------
# tools/exit_codes.h fails the consistency check.
set(DOC_TREE "${WORK_DIR}/doc_tree")
file(MAKE_DIRECTORY "${DOC_TREE}/tests/golden")
file(READ "${REPO_ROOT}/README.md" readme)
string(REPLACE "| 6 | `PrivacyViolation`" "| 9 | `PrivacyViolation`"
  readme_drifted "${readme}")
if(readme_drifted STREQUAL readme)
  message(FATAL_ERROR "doc drift setup: exit-code row not found in README")
endif()
file(WRITE "${DOC_TREE}/README.md" "${readme_drifted}")
execute_process(
  COMMAND ${TCM_LINT} --root ${DOC_TREE}
  RESULT_VARIABLE result
  OUTPUT_VARIABLE output
  ERROR_VARIABLE output)
expect_exit("drifted exit-code table" 3 "${result}" "${output}")

# A README whose "protocol":N literal disagrees with
# kServeProtocolVersion fails the version-pin check.
set(PROTO_TREE "${WORK_DIR}/proto_tree")
file(MAKE_DIRECTORY "${PROTO_TREE}/tests/golden")
string(REPLACE "\"protocol\":2" "\"protocol\":9"
  readme_proto "${readme}")
if(readme_proto STREQUAL readme)
  message(FATAL_ERROR "protocol drift setup: no \"protocol\":2 in README")
endif()
file(WRITE "${PROTO_TREE}/README.md" "${readme_proto}")
execute_process(
  COMMAND ${TCM_LINT} --root ${PROTO_TREE}
  RESULT_VARIABLE result
  OUTPUT_VARIABLE output
  ERROR_VARIABLE output)
expect_exit("drifted protocol pin" 3 "${result}" "${output}")

# A README whose ".tcmb, version N" binary-format pin disagrees with
# kTcmbFormatVersion fails the version-pin check.
set(TCMB_TREE "${WORK_DIR}/tcmb_tree")
file(MAKE_DIRECTORY "${TCMB_TREE}/tests/golden")
string(REPLACE ".tcmb, version 1" ".tcmb, version 9"
  readme_tcmb "${readme}")
if(readme_tcmb STREQUAL readme)
  message(FATAL_ERROR "tcmb drift setup: no \".tcmb, version 1\" in README")
endif()
file(WRITE "${TCMB_TREE}/README.md" "${readme_tcmb}")
execute_process(
  COMMAND ${TCM_LINT} --root ${TCMB_TREE}
  RESULT_VARIABLE result
  OUTPUT_VARIABLE output
  ERROR_VARIABLE output)
expect_exit("drifted .tcmb format pin" 3 "${result}" "${output}")

# Same for the stats event's "stats_schema":N vs kStatsSchemaVersion.
set(STATS_TREE "${WORK_DIR}/stats_tree")
file(MAKE_DIRECTORY "${STATS_TREE}/tests/golden")
string(REPLACE "\"stats_schema\":1" "\"stats_schema\":9"
  readme_stats "${readme}")
if(readme_stats STREQUAL readme)
  message(FATAL_ERROR "stats drift setup: no \"stats_schema\":1 in README")
endif()
file(WRITE "${STATS_TREE}/README.md" "${readme_stats}")
execute_process(
  COMMAND ${TCM_LINT} --root ${STATS_TREE}
  RESULT_VARIABLE result
  OUTPUT_VARIABLE output
  ERROR_VARIABLE output)
expect_exit("drifted stats-schema pin" 3 "${result}" "${output}")

# A README whose HTTP-status mapping table disagrees with
# HttpStatusForCode (serve/http.h) fails the mapping check.
set(HTTP_TREE "${WORK_DIR}/http_tree")
file(MAKE_DIRECTORY "${HTTP_TREE}/tests/golden")
string(REPLACE "| `InvalidSpec` | 422 |" "| `InvalidSpec` | 418 |"
  readme_http "${readme}")
if(readme_http STREQUAL readme)
  message(FATAL_ERROR
    "http drift setup: no \"| \`InvalidSpec\` | 422 |\" row in README")
endif()
file(WRITE "${HTTP_TREE}/README.md" "${readme_http}")
execute_process(
  COMMAND ${TCM_LINT} --root ${HTTP_TREE}
  RESULT_VARIABLE result
  OUTPUT_VARIABLE output
  ERROR_VARIABLE output)
expect_exit("drifted HTTP status table" 3 "${result}" "${output}")
if(NOT output MATCHES "InvalidSpec")
  message(FATAL_ERROR
    "drifted HTTP status table: failure does not name the code\n${output}")
endif()

# A section that silently dropped a route fails the route-presence pin.
set(ROUTE_TREE "${WORK_DIR}/route_tree")
file(MAKE_DIRECTORY "${ROUTE_TREE}/tests/golden")
string(REPLACE "GET /metricsz" "GET /statz" readme_route "${readme}")
if(readme_route STREQUAL readme)
  message(FATAL_ERROR "route drift setup: no \"GET /metricsz\" in README")
endif()
file(WRITE "${ROUTE_TREE}/README.md" "${readme_route}")
execute_process(
  COMMAND ${TCM_LINT} --root ${ROUTE_TREE}
  RESULT_VARIABLE result
  OUTPUT_VARIABLE output
  ERROR_VARIABLE output)
expect_exit("dropped HTTP route" 3 "${result}" "${output}")

# --- 6. IO and usage errors keep their contract codes. ---------------------
execute_process(
  COMMAND ${TCM_LINT} --spec ${WORK_DIR}/definitely_missing.json
  RESULT_VARIABLE result
  OUTPUT_VARIABLE output
  ERROR_VARIABLE output)
expect_exit("missing spec file" 5 "${result}" "${output}")

execute_process(
  COMMAND ${TCM_LINT} --no-such-flag
  RESULT_VARIABLE result
  OUTPUT_VARIABLE output
  ERROR_VARIABLE output)
expect_exit("usage error" 2 "${result}" "${output}")

message(STATUS "tcm_lint contract holds: clean tree 0, bad artifacts, "
  "drifted docs/version pins and HTTP mapping drift 3, missing file 5, "
  "usage 2")
