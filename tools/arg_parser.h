#ifndef TCM_TOOLS_ARG_PARSER_H_
#define TCM_TOOLS_ARG_PARSER_H_

// Shared command-line parsing for the tcm_* tools. Replaces the
// copy-pasted per-tool flag loops with one strict parser: every flag is
// declared up front, unknown flags and missing/malformed values fail
// with a clear message (never a silent skip), and Seen() lets a tool
// distinguish "flag given" from "default kept" — which is how
// tcm_anonymize layers flag overrides on top of a --job spec.

#include <cstdint>
#include <cstdio>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/strings.h"

namespace tcm {
namespace tools {

class ArgParser {
 public:
  // `usage` is printed to stderr after any parse error.
  explicit ArgParser(std::string usage) : usage_(std::move(usage)) {}

  // Value-less flag (presence sets *out to true).
  void AddFlag(const std::string& name, bool* out) {
    specs_[name] = {Kind::kFlag, out};
  }
  void AddString(const std::string& name, std::string* out) {
    specs_[name] = {Kind::kString, out};
  }
  // Comma-separated list ("a,b,c").
  void AddStringList(const std::string& name,
                     std::vector<std::string>* out) {
    specs_[name] = {Kind::kStringList, out};
  }
  void AddSize(const std::string& name, size_t* out) {
    specs_[name] = {Kind::kSize, out};
  }
  void AddUint64(const std::string& name, uint64_t* out) {
    specs_[name] = {Kind::kUint64, out};
  }
  void AddNonNegativeDouble(const std::string& name, double* out) {
    specs_[name] = {Kind::kDouble, out};
  }

  // Parses argv. On any error — unknown flag, missing value, malformed
  // number — prints the problem and the usage text to stderr and returns
  // false (callers exit 2).
  bool Parse(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string flag = argv[i];
      auto spec = specs_.find(flag);
      if (spec == specs_.end()) {
        return Fail("unknown flag '" + flag + "'");
      }
      seen_.insert(flag);
      if (spec->second.kind == Kind::kFlag) {
        *static_cast<bool*>(spec->second.out) = true;
        continue;
      }
      if (i + 1 >= argc) {
        return Fail(flag + " expects a value");
      }
      const char* value = argv[++i];
      switch (spec->second.kind) {
        case Kind::kFlag:
          break;  // handled above
        case Kind::kString:
          *static_cast<std::string*>(spec->second.out) = value;
          break;
        case Kind::kStringList:
          *static_cast<std::vector<std::string>*>(spec->second.out) =
              SplitString(value, ',');
          break;
        case Kind::kSize: {
          size_t parsed = 0;
          if (!ParseSize(value, &parsed)) {
            return Fail(flag + " expects a non-negative integer, got '" +
                        value + "'");
          }
          *static_cast<size_t*>(spec->second.out) = parsed;
          break;
        }
        case Kind::kUint64: {
          uint64_t parsed = 0;
          if (!ParseUint64(value, &parsed)) {
            return Fail(flag + " expects a non-negative integer, got '" +
                        value + "'");
          }
          *static_cast<uint64_t*>(spec->second.out) = parsed;
          break;
        }
        case Kind::kDouble: {
          double parsed = 0.0;
          if (!ParseDouble(value, &parsed) || parsed < 0.0) {
            return Fail(flag + " expects a non-negative number, got '" +
                        std::string(value) + "'");
          }
          *static_cast<double*>(spec->second.out) = parsed;
          break;
        }
      }
    }
    return true;
  }

  // Whether the flag appeared on the command line.
  bool Seen(const std::string& name) const { return seen_.count(name) > 0; }

 private:
  enum class Kind { kFlag, kString, kStringList, kSize, kUint64, kDouble };
  struct Spec {
    Kind kind;
    void* out;
  };

  // Strict non-negative integer parse: rejects signs, garbage and
  // overflow (strtoul would wrap "-1" to ULONG_MAX and read "abc" as 0).
  static bool ParseUint64(const char* text, uint64_t* out) {
    if (text == nullptr || *text == '\0') return false;
    uint64_t value = 0;
    for (const char* p = text; *p != '\0'; ++p) {
      if (*p < '0' || *p > '9') return false;
      uint64_t digit = static_cast<uint64_t>(*p - '0');
      if (value > (UINT64_MAX - digit) / 10) return false;
      value = value * 10 + digit;
    }
    *out = value;
    return true;
  }

  // Same, bounded to size_t (64-bit seeds use ParseUint64 directly).
  static bool ParseSize(const char* text, size_t* out) {
    uint64_t value = 0;
    if (!ParseUint64(text, &value)) return false;
    if constexpr (sizeof(size_t) < sizeof(uint64_t)) {
      if (value > std::numeric_limits<size_t>::max()) return false;
    }
    *out = static_cast<size_t>(value);
    return true;
  }

  bool Fail(const std::string& message) const {
    std::fprintf(stderr, "%s\n%s", message.c_str(), usage_.c_str());
    return false;
  }

  std::string usage_;
  std::map<std::string, Spec> specs_;
  std::set<std::string> seen_;
};

}  // namespace tools
}  // namespace tcm

#endif  // TCM_TOOLS_ARG_PARSER_H_
