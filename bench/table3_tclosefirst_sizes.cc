// Table 3 of the paper: actual microaggregation level (minimum / average
// cluster size) of Algorithm 3 — t-closeness-first microaggregation —
// over the k x t grid for MCD and HCD. Expected shape: min == avg
// everywhere (perfectly balanced clusters, n=1080 divisible by the
// effective k), sizes equal to max{k, k*(t)} (49 at t=0.01 for small k),
// and identical values for MCD and HCD.

#include "bench/table_sizes_common.h"

int main() {
  tcm_bench::RunSizesTable(
      "Table 3: Algorithm 3 (t-closeness-first) cluster sizes min/avg, "
      "MCD & HCD (n=1080)",
      tcm::TCloseAlgorithm::kTClosenessFirst);
  return 0;
}
