// Ablation A4 (ours): the differential-privacy continuation the paper's
// conclusions point to (microaggregation-based DP, Soria-Comas et al.
// 2014). Measures the utility (normalized SSE) of the noisy-centroid
// release as a function of the privacy budget epsilon and the cluster
// size k. Expected shape: SSE falls as epsilon grows; for small epsilon,
// larger k wins (sensitivity range/k shrinks the noise faster than the
// aggregation error grows); for large epsilon the plain-microaggregation
// error floor of the larger k dominates and the ordering flips.

#include <cstdio>

#include "bench/bench_util.h"
#include "data/generator.h"
#include "dp/dp_release.h"
#include "utility/sse.h"

int main() {
  tcm_bench::PrintHeader(
      "Ablation A4: DP microaggregation release, normalized SSE vs epsilon "
      "and k, MCD");
  tcm::Dataset mcd = tcm::MakeMcdDataset();
  const std::vector<size_t> ks = {2, 5, 20, 50};
  std::vector<double> epsilons = {0.1, 0.5, 1.0, 2.0, 5.0, 10.0};
  if (tcm_bench::FastMode()) epsilons = {0.5, 5.0};

  std::printf("%-8s", "eps\\k");
  for (size_t k : ks) std::printf(" %11zu", k);
  std::printf("\n");
  for (double epsilon : epsilons) {
    std::printf("%-8.2f", epsilon);
    for (size_t k : ks) {
      tcm::DpReleaseOptions options;
      options.k = k;
      options.epsilon = epsilon;
      options.seed = 17;
      auto result = tcm::DpMicroaggregationRelease(mcd, options);
      double sse = -1.0;
      if (result.ok()) {
        auto value = tcm::NormalizedSse(mcd, result->released);
        if (value.ok()) sse = *value;
      }
      std::printf(" %11.5f", sse);
    }
    std::printf("\n");
  }
  return 0;
}
