// Companion to Figure 5: run time vs data set SIZE (t fixed) for the
// three algorithms plus chunked microaggregation, verifying the paper's
// complexity claims empirically — O(n^2/k) for Algorithms 1 and 3,
// O(n^3/k) worst case for Algorithm 2, ~O(n * chunk) for the chunked
// variant. Expected shape: doubling n roughly quadruples Alg 1/3 time
// and octuples Alg 2's at strict t, while chunked stays near-linear.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "data/generator.h"
#include "distance/qi_space.h"
#include "microagg/chunked.h"
#include "tclose/anonymizer.h"

int main() {
  tcm_bench::PrintHeader(
      "Figure 5 companion: run time (s) vs n, patient-discharge-like, "
      "k=2, t=0.05");
  std::printf("%-8s %12s %12s %12s %12s\n", "n", "alg1", "alg2", "alg3",
              "chunked512");
  std::vector<size_t> sizes = {1000, 2000, 4000, 8000};
  if (tcm_bench::FastMode()) sizes = {500, 1000};
  for (size_t n : sizes) {
    tcm::PatientDischargeOptions gen;
    gen.num_records = n;
    tcm::Dataset data = tcm::MakePatientDischargeLike(gen);

    double seconds[4] = {0, 0, 0, 0};
    const tcm::TCloseAlgorithm algorithms[3] = {
        tcm::TCloseAlgorithm::kMicroaggregationMerge,
        tcm::TCloseAlgorithm::kKAnonymityFirst,
        tcm::TCloseAlgorithm::kTClosenessFirst};
    for (int i = 0; i < 3; ++i) {
      tcm::AnonymizerOptions options;
      options.k = 2;
      options.t = 0.05;
      options.algorithm = algorithms[i];
      auto result = tcm::Anonymize(data, options);
      seconds[i] = result.ok() ? result->elapsed_seconds : -1;
    }
    {
      tcm::QiSpace space(data);
      tcm::WallTimer timer;
      tcm::ChunkedOptions options;
      options.chunk_size = 512;
      auto partition = tcm::ChunkedMicroaggregation(space, 2, options);
      seconds[3] = partition.ok() ? timer.ElapsedSeconds() : -1;
    }
    std::printf("%-8zu %12.4f %12.4f %12.4f %12.4f\n", n, seconds[0],
                seconds[1], seconds[2], seconds[3]);
  }
  return 0;
}
