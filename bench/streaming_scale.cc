// Out-of-core streaming throughput: drive a generated million-row
// record stream through StreamingPipelineRunner at 1/2/4/8 threads and
// measure rows/sec, window count and the peak resident rows against the
// --max-resident-rows budget. Seeds the BENCH_streaming.json perf
// trajectory: one JSON object per thread count, printed as a line on
// stdout and collected into a JSON array file.
//
// Environment knobs (see bench_util.h):
//   TCM_N         — streamed record count      (default 1000000)
//   TCM_RESIDENT  — resident-row budget        (default 100000)
//   TCM_SHARD     — rows per shard             (default 4096)
//   TCM_ALGO      — registry algorithm name    (default merge_chunked)
//   TCM_BENCH_OUT — output JSON path           (default BENCH_streaming.json)
//   TCM_TRACE_OUT — Chrome trace-event JSON of the runs' spans (default off)
//   TCM_FAST      — nonzero: 60k rows / 20k budget for smoke runs

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "data/record_source.h"
#include "engine/streaming.h"
#include "obs/trace.h"

int main() {
  const bool fast = tcm_bench::FastMode();
  const size_t n = tcm_bench::EnvSize("TCM_N", fast ? 60000 : 1000000);
  const size_t resident =
      tcm_bench::EnvSize("TCM_RESIDENT", fast ? 20000 : 100000);
  const size_t shard_size = tcm_bench::EnvSize("TCM_SHARD", 4096);
  const char* algo_env = std::getenv("TCM_ALGO");
  const std::string algorithm =
      (algo_env != nullptr && *algo_env != '\0') ? algo_env : "merge_chunked";
  const char* out_env = std::getenv("TCM_BENCH_OUT");
  const std::string out_path =
      (out_env != nullptr && *out_env != '\0') ? out_env
                                               : "BENCH_streaming.json";

  tcm_bench::PrintHeader("streaming_scale: out-of-core " + algorithm +
                         ", n=" + std::to_string(n) +
                         ", resident budget=" + std::to_string(resident));

  tcm::StreamingSpec spec;
  spec.algorithm = algorithm;
  spec.k = 5;
  spec.t = 0.2;
  spec.seed = 2016;
  spec.shard_size = shard_size;
  spec.max_resident_rows = resident;
  spec.verify = true;

  // With TCM_TRACE_OUT, every run's stage and window spans land in one
  // Chrome trace file (the CI bench-smoke job uploads it as an artifact).
  std::optional<tcm::TraceSink> trace_sink;
  const char* trace_env = std::getenv("TCM_TRACE_OUT");
  if (trace_env != nullptr && *trace_env != '\0') {
    trace_sink.emplace(trace_env);
  }

  std::vector<std::string> json_lines;
  double reference_seconds = 0.0;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    // A source is single-pass: regenerate the identical stream per run.
    auto source = tcm::MakeUniformSource(n, 3, 2016);
    tcm::StreamingPipelineRunner runner(threads);
    tcm::WallTimer timer;
    auto report = runner.Run(source.get(), spec);
    double seconds = timer.ElapsedSeconds();
    if (!report.ok()) {
      std::fprintf(stderr, "threads=%zu failed: %s\n", threads,
                   report.status().ToString().c_str());
      return 1;
    }
    if (threads == 1) reference_seconds = seconds;
    bool bounded = report->peak_resident_rows <= resident;
    bool verified = report->k_verified && report->t_verified;

    char line[512];
    std::snprintf(
        line, sizeof(line),
        "{\"bench\":\"streaming_scale\",\"algorithm\":\"%s\",\"n\":%zu,"
        "\"max_resident_rows\":%zu,\"peak_resident_rows\":%zu,"
        "\"bounded\":%s,\"windows\":%zu,\"shard_size\":%zu,\"threads\":%zu,"
        "\"seconds\":%.3f,\"rows_per_sec\":%.0f,\"speedup\":%.2f,"
        "\"verified\":%s,\"final_merges\":%zu,\"sse\":%.6f,"
        "\"max_emd\":%.4f}",
        algorithm.c_str(), n, resident, report->peak_resident_rows,
        bounded ? "true" : "false", report->num_windows, shard_size, threads,
        seconds, static_cast<double>(n) / seconds,
        reference_seconds / seconds, verified ? "true" : "false",
        report->final_merges, report->normalized_sse,
        report->max_cluster_emd);
    std::printf("%s\n", line);
    json_lines.push_back(line);
    if (!bounded || !verified) return 1;
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "[\n");
  for (size_t i = 0; i < json_lines.size(); ++i) {
    std::fprintf(out, "  %s%s\n", json_lines[i].c_str(),
                 i + 1 < json_lines.size() ? "," : "");
  }
  std::fprintf(out, "]\n");
  std::fclose(out);
  std::printf("# wrote %s\n", out_path.c_str());

  if (trace_sink.has_value()) {
    tcm::Status finished = trace_sink->Finish();
    if (!finished.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n",
                   finished.ToString().c_str());
      return 1;
    }
    std::printf("# wrote %s\n", trace_env);
  }
  return 0;
}
