// Out-of-core streaming throughput: drive a generated million-row
// record stream through StreamingPipelineRunner and measure rows/sec,
// window count and the peak resident rows against the
// --max-resident-rows budget. Seeds the BENCH_streaming.json perf
// trajectory: one JSON object per run, printed as a line on stdout and
// collected into a JSON array file.
//
// The first row is the BASELINE: the pre-pipelined configuration
// (merge_chunked, sequential repair, serial reads) at one thread — the
// engine as it stood before the hierarchical merge landed. Every later
// row is the current configuration (merge_projection, hierarchical
// repair with EMD-bound pruning, overlapped reads) at 1/2/4/8 threads;
// its "speedup" field is baseline_seconds / row_seconds, i.e. the
// end-to-end gain of the new pipeline over the old serialized one.
//
// After the synthetic rows, the identical stream is materialized once
// (untimed), written as CSV, converted to .tcmb, and both files are
// streamed back through the measured configuration: the "csv" and
// "tcmb" input rows isolate input-format cost (text parsing and row
// copies versus zero-copy mapped columns). File rows do not move the
// TCM_REQUIRE_SPEEDUP gate, which pins the synthetic trajectory.
//
// Environment knobs (see bench_util.h):
//   TCM_N         — streamed record count      (default 1000000)
//   TCM_RESIDENT  — resident-row budget        (default 100000)
//   TCM_SHARD     — rows per shard             (default 4096)
//   TCM_ALGO      — measured algorithm         (default merge_projection)
//   TCM_BASE_ALGO — baseline algorithm         (default merge_chunked)
//   TCM_BENCH_OUT — output JSON path           (default BENCH_streaming.json)
//   TCM_TRACE_OUT — Chrome trace-event JSON of the runs' spans (default off)
//   TCM_FAST      — nonzero: 60k rows / 20k budget for smoke runs
//   TCM_REQUIRE_SPEEDUP — fail (exit 1) unless the highest-thread
//                   measured row reaches this speedup over the baseline

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "colstore/columnar_source.h"
#include "colstore/convert.h"
#include "common/timer.h"
#include "data/csv.h"
#include "data/csv_stream.h"
#include "data/record_source.h"
#include "engine/streaming.h"
#include "obs/trace.h"
#include "tclose/merge.h"

namespace {

struct RunConfig {
  std::string algorithm;
  tcm::MergeStrategy merge_strategy = tcm::MergeStrategy::kSequential;
  bool overlap_io = false;
  size_t threads = 1;
};

// One BENCH_streaming.json row. `input` names the record source
// (synthetic | csv | tcmb); mapped/copied bytes are zero for synthetic
// rows and carry the RunReport-style input accounting for file rows.
std::string FormatRow(const RunConfig& config, const char* input,
                      bool is_baseline, size_t n, size_t resident,
                      size_t shard_size, const tcm::StreamingReport& report,
                      double seconds, double speedup, size_t mapped_bytes,
                      size_t copied_bytes) {
  const bool bounded = report.peak_resident_rows <= resident;
  const bool verified = report.k_verified && report.t_verified;
  char line[768];
  std::snprintf(
      line, sizeof(line),
      "{\"bench\":\"streaming_scale\",\"input\":\"%s\",\"algorithm\":\"%s\","
      "\"merge_strategy\":\"%s\",\"overlap_io\":%s,\"baseline\":%s,"
      "\"n\":%zu,\"max_resident_rows\":%zu,\"peak_resident_rows\":%zu,"
      "\"bounded\":%s,\"windows\":%zu,\"shard_size\":%zu,\"threads\":%zu,"
      "\"seconds\":%.3f,\"rows_per_sec\":%.0f,\"speedup\":%.2f,"
      "\"verified\":%s,\"final_merges\":%zu,\"pruned_checks\":%zu,"
      "\"input_mapped_bytes\":%zu,\"input_copied_bytes\":%zu,"
      "\"sse\":%.6f,\"max_emd\":%.4f}",
      input, config.algorithm.c_str(),
      tcm::MergeStrategyName(config.merge_strategy),
      config.overlap_io ? "true" : "false", is_baseline ? "true" : "false",
      n, resident, report.peak_resident_rows, bounded ? "true" : "false",
      report.num_windows, shard_size, config.threads, seconds,
      static_cast<double>(n) / seconds, speedup,
      verified ? "true" : "false", report.final_merges, report.pruned_checks,
      mapped_bytes, copied_bytes, report.normalized_sse,
      report.max_cluster_emd);
  return line;
}

}  // namespace

int main() {
  const bool fast = tcm_bench::FastMode();
  const size_t n = tcm_bench::EnvSize("TCM_N", fast ? 60000 : 1000000);
  const size_t resident =
      tcm_bench::EnvSize("TCM_RESIDENT", fast ? 20000 : 100000);
  const size_t shard_size = tcm_bench::EnvSize("TCM_SHARD", 4096);
  const char* algo_env = std::getenv("TCM_ALGO");
  const std::string algorithm = (algo_env != nullptr && *algo_env != '\0')
                                    ? algo_env
                                    : "merge_projection";
  const char* base_env = std::getenv("TCM_BASE_ALGO");
  const std::string baseline_algorithm =
      (base_env != nullptr && *base_env != '\0') ? base_env : "merge_chunked";
  const char* out_env = std::getenv("TCM_BENCH_OUT");
  const std::string out_path =
      (out_env != nullptr && *out_env != '\0') ? out_env
                                               : "BENCH_streaming.json";
  const char* require_env = std::getenv("TCM_REQUIRE_SPEEDUP");
  const double required_speedup =
      (require_env != nullptr && *require_env != '\0')
          ? std::strtod(require_env, nullptr)
          : 0.0;

  tcm_bench::PrintHeader(
      "streaming_scale: out-of-core " + algorithm +
      " (hierarchical+overlap) vs baseline " + baseline_algorithm +
      " (sequential), n=" + std::to_string(n) +
      ", resident budget=" + std::to_string(resident));

  // With TCM_TRACE_OUT, every run's stage and window spans land in one
  // Chrome trace file (the CI bench-smoke job uploads it as an artifact).
  std::optional<tcm::TraceSink> trace_sink;
  const char* trace_env = std::getenv("TCM_TRACE_OUT");
  if (trace_env != nullptr && *trace_env != '\0') {
    trace_sink.emplace(trace_env);
  }

  std::vector<RunConfig> configs;
  configs.push_back({baseline_algorithm, tcm::MergeStrategy::kSequential,
                     /*overlap_io=*/false, /*threads=*/1});
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    configs.push_back({algorithm, tcm::MergeStrategy::kHierarchical,
                       /*overlap_io=*/true, threads});
  }

  std::vector<std::string> json_lines;
  double baseline_seconds = 0.0;
  double last_speedup = 0.0;
  size_t last_threads = 0;
  for (const RunConfig& config : configs) {
    tcm::StreamingSpec spec;
    spec.algorithm = config.algorithm;
    spec.k = 5;
    spec.t = 0.2;
    spec.seed = 2016;
    spec.shard_size = shard_size;
    spec.max_resident_rows = resident;
    spec.merge_strategy = config.merge_strategy;
    spec.overlap_io = config.overlap_io;
    spec.verify = true;

    // A source is single-pass: regenerate the identical stream per run.
    auto source = tcm::MakeUniformSource(n, 3, 2016);
    tcm::StreamingPipelineRunner runner(config.threads);
    tcm::WallTimer timer;
    auto report = runner.Run(source.get(), spec);
    double seconds = timer.ElapsedSeconds();
    if (!report.ok()) {
      std::fprintf(stderr, "%s threads=%zu failed: %s\n",
                   config.algorithm.c_str(), config.threads,
                   report.status().ToString().c_str());
      return 1;
    }
    const bool is_baseline = baseline_seconds == 0.0;
    if (is_baseline) baseline_seconds = seconds;
    bool bounded = report->peak_resident_rows <= resident;
    bool verified = report->k_verified && report->t_verified;
    double speedup = baseline_seconds / seconds;
    if (!is_baseline) {
      last_speedup = speedup;
      last_threads = config.threads;
    }

    const std::string line =
        FormatRow(config, "synthetic", is_baseline, n, resident, shard_size,
                  *report, seconds, speedup, /*mapped_bytes=*/0,
                  /*copied_bytes=*/0);
    std::printf("%s\n", line.c_str());
    json_lines.push_back(line);
    if (!bounded || !verified) return 1;
  }

  // ------------------------------------------------- file-backed inputs
  // Materialize the identical stream once (untimed), persist it in both
  // formats, and stream each file through the measured pipeline. The
  // timer covers open + run, so the rows price the whole input path:
  // text parsing for CSV, mmap + column materialization for .tcmb. These
  // rows report speedup over the same baseline but are excluded from the
  // TCM_REQUIRE_SPEEDUP gate (they measure input format, not the merge
  // pipeline).
  {
    auto generator = tcm::MakeUniformSource(n, 3, 2016);
    tcm::Dataset materialized(generator->schema());
    auto appended = generator->ReadInto(&materialized, n);
    if (!appended.ok() || *appended != n) {
      std::fprintf(stderr, "failed to materialize the %zu-row stream\n", n);
      return 1;
    }
    const std::string csv_path = out_path + ".input.csv";
    const std::string tcmb_path = out_path + ".input.tcmb";
    tcm::Status wrote = tcm::WriteCsv(materialized, csv_path);
    if (!wrote.ok()) {
      std::fprintf(stderr, "%s\n", wrote.ToString().c_str());
      return 1;
    }
    tcm::Status converted = tcm::ConvertCsvToTcmb(csv_path, tcmb_path);
    if (!converted.ok()) {
      std::fprintf(stderr, "%s\n", converted.ToString().c_str());
      return 1;
    }

    for (const std::string input : {"csv", "tcmb"}) {
      RunConfig config{algorithm, tcm::MergeStrategy::kHierarchical,
                       /*overlap_io=*/true, /*threads=*/4};
      tcm::StreamingSpec spec;
      spec.algorithm = config.algorithm;
      spec.k = 5;
      spec.t = 0.2;
      spec.seed = 2016;
      spec.shard_size = shard_size;
      spec.max_resident_rows = resident;
      spec.merge_strategy = config.merge_strategy;
      spec.overlap_io = config.overlap_io;
      spec.verify = true;

      std::unique_ptr<tcm::StreamingCsvReader> reader;
      std::unique_ptr<tcm::ColumnarSource> columnar;
      tcm::RecordSource* source = nullptr;
      tcm::WallTimer timer;
      if (input == "csv") {
        auto opened = tcm::StreamingCsvReader::OpenNumeric(csv_path);
        if (!opened.ok()) {
          std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
          return 1;
        }
        reader = std::move(*opened);
        tcm::Status roles = reader->ReplaceSchema(materialized.schema());
        if (!roles.ok()) {
          std::fprintf(stderr, "%s\n", roles.ToString().c_str());
          return 1;
        }
        source = reader.get();
      } else {
        auto opened = tcm::ColumnarSource::Open(tcmb_path);
        if (!opened.ok()) {
          std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
          return 1;
        }
        columnar = std::move(*opened);
        tcm::Status roles = columnar->ReplaceSchema(materialized.schema());
        if (!roles.ok()) {
          std::fprintf(stderr, "%s\n", roles.ToString().c_str());
          return 1;
        }
        source = columnar.get();
      }

      tcm::StreamingPipelineRunner runner(config.threads);
      auto report = runner.Run(source, spec);
      double seconds = timer.ElapsedSeconds();
      if (!report.ok()) {
        std::fprintf(stderr, "%s input failed: %s\n", input.c_str(),
                     report.status().ToString().c_str());
        return 1;
      }
      size_t mapped_bytes = 0;
      size_t copied_bytes = 0;
      if (columnar != nullptr) {
        mapped_bytes = columnar->mapped_bytes();
        copied_bytes = columnar->copied_bytes();
      } else {
        std::error_code ec;
        const auto size = std::filesystem::file_size(csv_path, ec);
        copied_bytes = ec ? 0 : static_cast<size_t>(size);
      }

      const std::string line = FormatRow(
          config, input.c_str(), /*is_baseline=*/false, n, resident,
          shard_size, *report, seconds, baseline_seconds / seconds,
          mapped_bytes, copied_bytes);
      std::printf("%s\n", line.c_str());
      json_lines.push_back(line);
      if (report->peak_resident_rows > resident ||
          !(report->k_verified && report->t_verified)) {
        return 1;
      }
    }
    std::remove(csv_path.c_str());
    std::remove(tcmb_path.c_str());
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "[\n");
  for (size_t i = 0; i < json_lines.size(); ++i) {
    std::fprintf(out, "  %s%s\n", json_lines[i].c_str(),
                 i + 1 < json_lines.size() ? "," : "");
  }
  std::fprintf(out, "]\n");
  std::fclose(out);
  std::printf("# wrote %s\n", out_path.c_str());

  if (trace_sink.has_value()) {
    tcm::Status finished = trace_sink->Finish();
    if (!finished.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n",
                   finished.ToString().c_str());
      return 1;
    }
    std::printf("# wrote %s\n", trace_env);
  }

  if (required_speedup > 0.0 && last_speedup < required_speedup) {
    std::fprintf(stderr,
                 "speedup %.2fx at %zu threads is below the required "
                 "%.2fx over the sequential baseline\n",
                 last_speedup, last_threads, required_speedup);
    return 1;
  }
  return 0;
}
