// Ablation A7 (ours): local-search refinement after MDAV. Quantifies how
// much within-cluster SSE the classic exchange refinement recovers, and
// what it does to t-closeness (refinement optimizes homogeneity, which
// *raises* per-cluster EMD — the tension at the heart of the paper).

#include <cstdio>

#include "bench/bench_util.h"
#include "data/generator.h"
#include "distance/emd.h"
#include "distance/qi_space.h"
#include "microagg/mdav.h"
#include "microagg/refine.h"

namespace {

double MaxEmd(const tcm::EmdCalculator& emd, const tcm::Partition& p) {
  double worst = 0.0;
  for (const auto& cluster : p.clusters) {
    worst = std::max(worst, emd.ClusterEmd(cluster));
  }
  return worst;
}

}  // namespace

int main() {
  tcm_bench::PrintHeader(
      "Ablation A7: exchange refinement after MDAV, MCD: SSE gain vs EMD "
      "cost");
  tcm::Dataset mcd = tcm::MakeMcdDataset();
  tcm::QiSpace space(mcd);
  tcm::EmdCalculator emd(mcd);
  std::printf("%-6s %12s %12s %10s %12s %12s\n", "k", "sse_before",
              "sse_after", "moves", "emd_before", "emd_after");
  std::vector<size_t> ks = {2, 5, 10, 20};
  if (tcm_bench::FastMode()) ks = {5};
  for (size_t k : ks) {
    auto initial = tcm::Mdav(space, k);
    if (!initial.ok()) continue;
    double emd_before = MaxEmd(emd, *initial);
    tcm::RefineOptions options;
    options.min_cluster_size = k;
    tcm::RefineStats stats;
    auto refined = tcm::RefinePartition(space, *initial, options, &stats);
    if (!refined.ok()) continue;
    std::printf("%-6zu %12.4f %12.4f %10zu %12.4f %12.4f\n", k,
                stats.sse_before, stats.sse_after, stats.moves, emd_before,
                MaxEmd(emd, *refined));
  }
  return 0;
}
