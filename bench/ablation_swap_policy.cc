// Ablation A2 (ours): how much of Algorithm 2's utility advantage over
// Algorithm 1 comes from the swap refinement inside GenerateCluster?
// Disabling swaps degenerates Algorithm 2 to MDAV-style clustering with
// the merge fallback doing all the t-closeness work. Reported on both
// census-like data sets; the gap should widen as t shrinks and be larger
// on HCD (correlated clusters need more rearrangement).

#include <cstdio>

#include "bench/bench_util.h"
#include "data/generator.h"
#include "tclose/anonymizer.h"

namespace {

void RunPanel(const char* name, const tcm::Dataset& data) {
  std::printf("## %s\n", name);
  std::printf("%-6s %12s %12s %10s %10s %10s %10s\n", "t", "swaps_sse",
              "noswap_sse", "swaps_avg", "noswap_avg", "nswaps", "nmerges");
  std::vector<double> ts = tcm_bench::FigureTGrid();
  if (tcm_bench::FastMode()) ts = {0.05, 0.25};
  for (double t : ts) {
    double sse[2], avg[2];
    size_t swaps = 0, merges_noswap = 0;
    for (int variant = 0; variant < 2; ++variant) {
      tcm::AnonymizerOptions options;
      options.k = 3;
      options.t = t;
      options.algorithm = tcm::TCloseAlgorithm::kKAnonymityFirst;
      options.kanon_first.enable_swaps = (variant == 0);
      auto result = tcm::Anonymize(data, options);
      sse[variant] = result.ok() ? result->normalized_sse : -1;
      avg[variant] = result.ok() ? result->average_cluster_size : -1;
      if (result.ok() && variant == 0) swaps = result->swaps;
      if (result.ok() && variant == 1) merges_noswap = result->merges;
    }
    std::printf("%-6.2f %12.6f %12.6f %10.1f %10.1f %10zu %10zu\n", t,
                sse[0], sse[1], avg[0], avg[1], swaps, merges_noswap);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  tcm_bench::PrintHeader(
      "Ablation A2: Algorithm 2 swap refinement on vs off (k=3)");
  RunPanel("MCD", tcm::MakeMcdDataset());
  RunPanel("HCD", tcm::MakeHcdDataset());
  return 0;
}
