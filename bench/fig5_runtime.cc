// Figure 5 of the paper: run time (seconds, log10 in the paper's plot) of
// the three algorithms on the Patient Discharge data set with k=2 as a
// function of t. Expected shape: Algorithm 2 is orders of magnitude slower
// (cubic swap refinement) and speeds up as t grows; Algorithms 1 and 3 are
// quadratic, with Algorithm 3 fastest at small t because Eq. (3) raises
// the effective cluster size and so lowers the cluster count.
//
// The paper uses n = 23,435. Algorithm 2's cubic cost makes the full size
// impractical for a default run, so the bench defaults to TCM_N = 4000
// synthetic records (same dimensionality and correlation); set TCM_N to
// reproduce at other scales. EXPERIMENTS.md records the sizes used.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "data/generator.h"
#include "tclose/anonymizer.h"

int main() {
  const size_t n = tcm_bench::EnvSize("TCM_N", tcm_bench::FastMode() ? 800
                                                                     : 4000);
  tcm::PatientDischargeOptions gen;
  gen.num_records = n;
  tcm::Dataset data = tcm::MakePatientDischargeLike(gen);
  tcm_bench::PrintHeader(
      "Figure 5: run time (s) vs t, Patient-Discharge-like (n=" +
      std::to_string(n) + "), k=2");

  std::printf("%-6s %14s %14s %14s\n", "t", "alg1_merge", "alg2_kanon1st",
              "alg3_tclose1st");
  std::vector<double> ts = tcm_bench::FigureTGrid();
  if (tcm_bench::FastMode()) ts = {0.05, 0.25};
  for (double t : ts) {
    double seconds[3] = {0, 0, 0};
    const tcm::TCloseAlgorithm algorithms[3] = {
        tcm::TCloseAlgorithm::kMicroaggregationMerge,
        tcm::TCloseAlgorithm::kKAnonymityFirst,
        tcm::TCloseAlgorithm::kTClosenessFirst};
    for (int i = 0; i < 3; ++i) {
      tcm::AnonymizerOptions options;
      options.k = 2;
      options.t = t;
      options.algorithm = algorithms[i];
      auto result = tcm::Anonymize(data, options);
      seconds[i] = result.ok() ? result->elapsed_seconds : -1.0;
    }
    std::printf("%-6.2f %14.4f %14.4f %14.4f\n", t, seconds[0], seconds[1],
                seconds[2]);
  }
  return 0;
}
