// Figure 7 of the paper: normalized SSE of the three algorithms on the
// MCD data set as a function of BOTH k (2..30) and t (0.02..0.25) — the
// paper shows three surfaces. Printed here as one table per algorithm.
// Expected shape: SSE rises with k for Algorithm 3 (its effective cluster
// size is max{k, k*}); Algorithms 1-2 show spikes at k values that do not
// divide n=1080 (leftover records degrade cluster homogeneity) while
// Algorithm 3 is immune to them.

#include <cstdio>

#include "bench/bench_util.h"
#include "data/generator.h"
#include "tclose/anonymizer.h"

namespace {

void RunSurface(const char* name, tcm::TCloseAlgorithm algorithm,
                const tcm::Dataset& data) {
  std::printf("## %s\n", name);
  std::vector<size_t> ks = {2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24,
                            26, 28, 30};
  std::vector<double> ts = tcm_bench::FigureTGrid();
  if (tcm_bench::FastMode()) {
    ks = {2, 10, 30};
    ts = {0.05, 0.25};
  }
  std::printf("%-6s", "k\\t");
  for (double t : ts) std::printf(" %9.2f", t);
  std::printf("\n");
  for (size_t k : ks) {
    std::printf("%-6zu", k);
    for (double t : ts) {
      tcm::AnonymizerOptions options;
      options.k = k;
      options.t = t;
      options.algorithm = algorithm;
      auto result = tcm::Anonymize(data, options);
      std::printf(" %9.6f", result.ok() ? result->normalized_sse : -1.0);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  tcm_bench::PrintHeader(
      "Figure 7: normalized SSE vs (k, t), MCD data set, three algorithms");
  tcm::Dataset mcd = tcm::MakeMcdDataset();
  RunSurface("Algorithm 1 (microaggregation + merging)",
             tcm::TCloseAlgorithm::kMicroaggregationMerge, mcd);
  RunSurface("Algorithm 2 (k-anonymity-first)",
             tcm::TCloseAlgorithm::kKAnonymityFirst, mcd);
  RunSurface("Algorithm 3 (t-closeness-first)",
             tcm::TCloseAlgorithm::kTClosenessFirst, mcd);
  return 0;
}
