// M1: google-benchmark micro-benchmarks of the library's hot primitives.
// Documents why the closed-form EMD matters: Algorithm 2 evaluates EMD
// O(n k) times per cluster, so the O(c) fast path vs the O(n) reference
// is the difference between seconds and hours at paper scale.

#include <numeric>
#include <vector>

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "data/generator.h"
#include "distance/emd.h"
#include "distance/qi_space.h"
#include "microagg/mdav.h"
#include "tclose/tclose_first.h"

namespace {

std::vector<size_t> RandomCluster(size_t n, size_t c, uint64_t seed) {
  tcm::Rng rng(seed);
  std::vector<size_t> all(n);
  std::iota(all.begin(), all.end(), 0);
  rng.Shuffle(all);
  all.resize(c);
  return all;
}

void BM_EmdFastPath(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t c = static_cast<size_t>(state.range(1));
  std::vector<double> values(n);
  tcm::Rng rng(1);
  for (double& v : values) v = rng.NextDouble();
  tcm::EmdCalculator emd(values);
  std::vector<size_t> cluster = RandomCluster(n, c, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(emd.ClusterEmd(cluster));
  }
}
BENCHMARK(BM_EmdFastPath)
    ->Args({1080, 2})
    ->Args({1080, 10})
    ->Args({1080, 30})
    ->Args({23435, 30});

void BM_EmdReference(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t c = static_cast<size_t>(state.range(1));
  std::vector<double> values(n);
  tcm::Rng rng(1);
  for (double& v : values) v = rng.NextDouble();
  tcm::EmdCalculator emd(values);
  std::vector<size_t> cluster = RandomCluster(n, c, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(emd.ReferenceClusterEmd(cluster));
  }
}
BENCHMARK(BM_EmdReference)
    ->Args({1080, 2})
    ->Args({1080, 30})
    ->Args({23435, 30});

void BM_QiSpaceConstruction(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  tcm::Dataset data = tcm::MakeUniformDataset(n, 4, 3);
  for (auto _ : state) {
    tcm::QiSpace space(data);
    benchmark::DoNotOptimize(space.num_records());
  }
}
BENCHMARK(BM_QiSpaceConstruction)->Arg(1080)->Arg(8000);

void BM_MdavPartition(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t k = static_cast<size_t>(state.range(1));
  tcm::Dataset data = tcm::MakeUniformDataset(n, 2, 5);
  tcm::QiSpace space(data);
  for (auto _ : state) {
    auto partition = tcm::Mdav(space, k);
    benchmark::DoNotOptimize(partition.ok());
  }
}
BENCHMARK(BM_MdavPartition)->Args({1080, 2})->Args({1080, 30})->Args({4000, 2});

void BM_TCloseFirstPartition(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  tcm::Dataset data = tcm::MakeUniformDataset(n, 2, 7);
  tcm::QiSpace space(data);
  tcm::EmdCalculator emd(data);
  for (auto _ : state) {
    auto partition = tcm::TCloseFirstTCloseness(space, emd, 2, 0.05);
    benchmark::DoNotOptimize(partition.ok());
  }
}
BENCHMARK(BM_TCloseFirstPartition)->Arg(1080)->Arg(4000);

}  // namespace

BENCHMARK_MAIN();
