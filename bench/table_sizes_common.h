#ifndef TCM_BENCH_TABLE_SIZES_COMMON_H_
#define TCM_BENCH_TABLE_SIZES_COMMON_H_

// Shared driver for Tables 1-3: for every (k, t) cell of the paper's grid
// and both census-like data sets, runs one t-closeness algorithm and
// prints the achieved microaggregation level as "min/avg" cluster sizes,
// matching the tables' cell format.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "data/generator.h"
#include "tclose/anonymizer.h"

namespace tcm_bench {

inline void RunSizesTable(const std::string& title,
                          tcm::TCloseAlgorithm algorithm) {
  PrintHeader(title);
  tcm::Dataset mcd = tcm::MakeMcdDataset();
  tcm::Dataset hcd = tcm::MakeHcdDataset();

  std::vector<size_t> ks = PaperKGrid();
  std::vector<double> ts = PaperTGrid();
  if (FastMode()) {
    ks = {2, 10, 30};
    ts = {0.05, 0.25};
  }

  std::printf("%-6s", "k");
  for (double t : ts) std::printf(" | t=%-4.2f MCD   t=%-4.2f HCD  ", t, t);
  std::printf("\n");
  for (size_t k : ks) {
    std::printf("k=%-4zu", k);
    for (double t : ts) {
      std::string cells[2];
      const tcm::Dataset* sets[2] = {&mcd, &hcd};
      for (int which = 0; which < 2; ++which) {
        tcm::AnonymizerOptions options;
        options.k = k;
        options.t = t;
        options.algorithm = algorithm;
        auto result = tcm::Anonymize(*sets[which], options);
        if (!result.ok()) {
          cells[which] = "error";
          continue;
        }
        char buffer[48];
        std::snprintf(buffer, sizeof(buffer), "%zu/%.0f",
                      result->min_cluster_size,
                      result->average_cluster_size);
        cells[which] = buffer;
      }
      std::printf(" | %-11s %-11s", cells[0].c_str(), cells[1].c_str());
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace tcm_bench

#endif  // TCM_BENCH_TABLE_SIZES_COMMON_H_
