// Ablation A3 (ours): Algorithm 3's analytically minimal bucket count vs
// SABRE-style greedy (conservative) bucketization. The paper's related-
// work section argues SABRE "may yield more buckets than our algorithm
// [which] leads to equivalence classes with more records and, thus, to
// more information loss" — this bench quantifies that claim as a function
// of the greedy overshoot factor.

#include <cstdio>

#include "baseline/sabre_like.h"
#include "bench/bench_util.h"
#include "data/generator.h"
#include "distance/emd.h"
#include "distance/qi_space.h"
#include "microagg/aggregate.h"
#include "tclose/anonymizer.h"
#include "utility/sse.h"

int main() {
  tcm_bench::PrintHeader(
      "Ablation A3: Algorithm 3 (analytic buckets) vs SABRE-like greedy "
      "bucketization, MCD, k=2");
  tcm::Dataset mcd = tcm::MakeMcdDataset();
  tcm::QiSpace space(mcd);
  tcm::EmdCalculator emd(mcd);

  std::printf("%-6s %10s %12s | %28s | %28s\n", "t", "alg3_kxx", "alg3_sse",
              "sabre x1.5 (buckets, sse)", "sabre x2.0 (buckets, sse)");
  std::vector<double> ts = tcm_bench::FigureTGrid();
  if (tcm_bench::FastMode()) ts = {0.05, 0.25};
  for (double t : ts) {
    tcm::AnonymizerOptions options;
    options.k = 2;
    options.t = t;
    options.algorithm = tcm::TCloseAlgorithm::kTClosenessFirst;
    auto alg3 = tcm::Anonymize(mcd, options);
    double alg3_sse = alg3.ok() ? alg3->normalized_sse : -1;
    size_t alg3_k = alg3.ok() ? alg3->effective_k : 0;

    struct Cell {
      size_t buckets = 0;
      double sse = -1;
    } cells[2];
    const double factors[2] = {1.5, 2.0};
    for (int i = 0; i < 2; ++i) {
      tcm::SabreLikeOptions sabre_options;
      sabre_options.bucket_oversampling = factors[i];
      tcm::SabreLikeStats stats;
      auto partition =
          tcm::SabreLikePartition(space, emd, 2, t, sabre_options, &stats);
      if (!partition.ok()) continue;
      auto release = tcm::AggregatePartition(mcd, *partition);
      if (!release.ok()) continue;
      auto sse = tcm::NormalizedSse(mcd, *release);
      cells[i].buckets = stats.buckets;
      cells[i].sse = sse.ok() ? *sse : -1;
    }
    std::printf("%-6.2f %10zu %12.6f | %12zu %15.6f | %12zu %15.6f\n", t,
                alg3_k, alg3_sse, cells[0].buckets, cells[0].sse,
                cells[1].buckets, cells[1].sse);
  }
  return 0;
}
