#ifndef TCM_BENCH_BENCH_UTIL_H_
#define TCM_BENCH_BENCH_UTIL_H_

// Shared helpers for the reproduction benches. Each bench binary prints
// one paper artefact (table or figure series) as aligned text/TSV on
// stdout so `for b in build/bench/*; do $b; done` regenerates the whole
// evaluation. Environment knobs:
//   TCM_N     — record count for the patient-discharge benches
//   TCM_FAST  — nonzero: shrink grids for smoke runs

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace tcm_bench {

// The paper's parameter grids (Tables 1-3: k x t; figures: t at k=2).
inline std::vector<size_t> PaperKGrid() { return {2, 5, 10, 15, 20, 25, 30}; }

inline std::vector<double> PaperTGrid() {
  return {0.01, 0.05, 0.09, 0.13, 0.17, 0.21, 0.25};
}

// Figures 5-6 sweep t in [0.02, 0.25].
inline std::vector<double> FigureTGrid() {
  return {0.02, 0.05, 0.09, 0.13, 0.17, 0.21, 0.25};
}

inline size_t EnvSize(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return static_cast<size_t>(std::strtoull(value, nullptr, 10));
}

inline bool FastMode() { return EnvSize("TCM_FAST", 0) != 0; }

inline void PrintHeader(const std::string& title) {
  std::printf("# %s\n", title.c_str());
}

}  // namespace tcm_bench

#endif  // TCM_BENCH_BENCH_UTIL_H_
