// Ablation A6 (ours): chunked microaggregation — the scalability lever
// for data sets at the Patient Discharge scale (Fig. 5's concern).
// Sweeps the chunk size and reports run time and normalized SSE against
// full MDAV. Expected shape: time grows ~linearly with chunk size while
// SSE decays toward the full-MDAV value; chunks of a few hundred records
// capture most of the quality at a fraction of the cost.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "data/generator.h"
#include "distance/qi_space.h"
#include "microagg/aggregate.h"
#include "microagg/chunked.h"
#include "microagg/mdav.h"
#include "utility/sse.h"

int main() {
  const size_t n = tcm_bench::EnvSize("TCM_N", tcm_bench::FastMode() ? 2000
                                                                     : 12000);
  tcm::PatientDischargeOptions gen;
  gen.num_records = n;
  tcm::Dataset data = tcm::MakePatientDischargeLike(gen);
  tcm::QiSpace space(data);
  tcm_bench::PrintHeader(
      "Ablation A6: chunked microaggregation, k=5, patient-discharge-like "
      "(n=" + std::to_string(n) + ")");
  std::printf("%-12s %12s %12s\n", "chunk", "seconds", "sse");

  auto measure = [&](const char* label, auto&& partition_fn) {
    tcm::WallTimer timer;
    auto partition = partition_fn();
    double seconds = timer.ElapsedSeconds();
    double sse = -1.0;
    if (partition.ok()) {
      auto release = tcm::AggregatePartition(data, *partition);
      if (release.ok()) {
        auto value = tcm::NormalizedSse(data, *release);
        if (value.ok()) sse = *value;
      }
    }
    std::printf("%-12s %12.3f %12.6f\n", label, seconds, sse);
  };

  std::vector<size_t> chunks = {128, 512, 2048};
  if (tcm_bench::FastMode()) chunks = {256};
  for (size_t chunk : chunks) {
    tcm::ChunkedOptions options;
    options.chunk_size = chunk;
    char label[32];
    std::snprintf(label, sizeof(label), "%zu", chunk);
    measure(label, [&] {
      return tcm::ChunkedMicroaggregation(space, 5, options);
    });
  }
  measure("full-mdav", [&] { return tcm::Mdav(space, 5); });
  return 0;
}
