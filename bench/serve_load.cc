// Mixed-protocol load proof for the tcm_serve daemon: boot a real
// JobServer with both fronts (NDJSON + HTTP/1.1) on loopback, hammer it
// with TCM_SERVE_CLIENTS concurrent client threads — half speaking the
// NDJSON protocol through ServeClient, half speaking raw HTTP/1.1 over
// bare sockets — each submitting waited jobs with a unique seed, and
// prove the service contract under that load:
//
//   * zero lost submissions — every job a client sends is eventually
//     confirmed by a terminal "succeeded" state event (backpressure
//     rejections are retried; they are flow control, not loss);
//   * zero corrupted reports — every terminal event carries a
//     well-formed report whose row count echoes the submitted spec;
//   * bounded memory — peak RSS stays under TCM_SERVE_MAX_RSS_MB while
//     thousands of connections come and go;
//   * the slowloris defense holds mid-load — a connection that starts a
//     request and stalls is answered 408 and evicted within a small
//     multiple of the request deadline, instead of pinning a handler.
//
// One JSON row lands in BENCH_serve.json (same shape discipline as
// BENCH_streaming.json) and on stdout. Any violated property exits 1.
//
// Environment knobs (see bench_util.h):
//   TCM_SERVE_CLIENTS    — concurrent client connections (default 1000)
//   TCM_SERVE_JOBS       — waited submissions per client  (default 2)
//   TCM_SERVE_ROWS       — rows per synthetic job         (default 48)
//   TCM_SERVE_THREADS    — job pool workers               (default 4)
//   TCM_SERVE_PENDING    — queue bound (backpressure)     (default 256)
//   TCM_SERVE_MAX_RSS_MB — peak-RSS ceiling               (default 512)
//   TCM_BENCH_OUT        — output JSON path    (default BENCH_serve.json)
//   TCM_FAST             — nonzero: 128 clients for smoke runs

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "tcm/api.h"

namespace {

// Retry pacing for backpressure rejections: spread by client id so a
// thousand rejected clients do not retry in lockstep.
void Backoff(size_t client, int attempt) {
  const int ms = 2 + static_cast<int>(client % 16) + (attempt < 8 ? 0 : 20);
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

tcm::JobSpec LoadSpec(uint64_t seed, size_t rows) {
  tcm::JobSpec spec;
  spec.input.kind = tcm::InputKind::kSynthetic;
  spec.input.generator = "uniform";
  spec.input.rows = rows;
  spec.input.quasi_identifiers = 2;
  spec.input.seed = seed;
  spec.algorithm.name = "tclose_first";
  spec.algorithm.k = 5;
  spec.algorithm.t = 0.3;
  spec.algorithm.seed = seed;
  spec.execution.shard_size = 64;
  return spec;
}

// The terminal event a waited submit must resolve to, on either front:
// a "state" event in "succeeded" whose report echoes the row count.
bool IsGoodTerminalEvent(const tcm::JsonValue& event, size_t rows) {
  const tcm::JsonValue* name = event.Find("event");
  const tcm::JsonValue* state = event.Find("state");
  if (name == nullptr || !name->is_string() ||
      name->string_value() != "state") {
    return false;
  }
  if (state == nullptr || !state->is_string() ||
      state->string_value() != "succeeded") {
    return false;
  }
  const tcm::JsonValue* report = event.Find("report");
  if (report == nullptr) return false;
  const tcm::JsonValue* reported_rows = report->Find("rows");
  return reported_rows != nullptr && reported_rows->is_number() &&
         reported_rows->GetUint().value_or(0) == rows;
}

bool IsBackpressureEvent(const tcm::JsonValue& event) {
  const tcm::JsonValue* name = event.Find("event");
  const tcm::JsonValue* code = event.Find("code");
  return name != nullptr && name->is_string() &&
         name->string_value() == "error" && code != nullptr &&
         code->is_string() && code->string_value() == "FailedPrecondition";
}

// ----- a raw socket, shared by the HTTP workers and the probes ------------

class RawSocket {
 public:
  ~RawSocket() { Close(); }

  bool Connect(uint16_t port, int recv_timeout_ms) {
    Close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    timeval tv{};
    tv.tv_sec = recv_timeout_ms / 1000;
    tv.tv_usec = static_cast<suseconds_t>((recv_timeout_ms % 1000) * 1000);
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&address),
                  sizeof(address)) != 0) {
      Close();
      return false;
    }
    return true;
  }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
    buffer_.clear();
  }

  bool connected() const { return fd_ >= 0; }

  bool Send(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                         MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  // One full response (head + Content-Length body); empty on EOF/error.
  std::string ReadResponse() {
    size_t head_end;
    while ((head_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
      if (!Fill()) return "";
    }
    size_t body_size = 0;
    size_t marker = buffer_.find("Content-Length: ");
    if (marker != std::string::npos && marker < head_end) {
      body_size = static_cast<size_t>(
          std::strtoul(buffer_.c_str() + marker + 16, nullptr, 10));
    }
    while (buffer_.size() < head_end + 4 + body_size) {
      if (!Fill()) return "";
    }
    std::string response = buffer_.substr(0, head_end + 4 + body_size);
    buffer_.erase(0, head_end + 4 + body_size);
    return response;
  }

  bool AtEof() {
    if (!buffer_.empty()) return false;
    return !Fill();
  }

 private:
  bool Fill() {
    char chunk[4096];
    ssize_t n;
    do {
      n = ::recv(fd_, chunk, sizeof(chunk), 0);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<size_t>(n));
    return true;
  }

  int fd_ = -1;
  std::string buffer_;
};

int StatusOf(const std::string& response) {
  if (response.size() < 12) return 0;
  return std::atoi(response.c_str() + 9);
}

tcm::JsonValue BodyOf(const std::string& response) {
  size_t head_end = response.find("\r\n\r\n");
  if (head_end == std::string::npos) return tcm::JsonValue();
  auto parsed = tcm::ParseJson(response.substr(head_end + 4));
  return parsed.ok() ? std::move(parsed).value() : tcm::JsonValue();
}

// ----- shared tallies ------------------------------------------------------

struct Tally {
  std::atomic<size_t> confirmed{0};
  std::atomic<size_t> corrupted{0};
  std::atomic<size_t> lost{0};
  std::atomic<size_t> backpressure_retries{0};
  std::atomic<size_t> io_retries{0};
};

constexpr int kMaxAttemptsPerJob = 4096;

// One NDJSON client: a ServeClient connection submitting `jobs` waited
// jobs, reconnecting and retrying through backpressure and transient
// socket failures. A job that cannot be confirmed within the attempt
// budget counts as lost.
void NdjsonWorker(uint16_t port, size_t client, size_t jobs, size_t rows,
                  Tally* tally) {
  std::optional<tcm::ServeClient> connection;
  for (size_t j = 0; j < jobs; ++j) {
    const uint64_t seed = 1 + client * 1000 + j;
    bool confirmed = false;
    for (int attempt = 0; attempt < kMaxAttemptsPerJob; ++attempt) {
      if (!connection.has_value()) {
        auto connected = tcm::ServeClient::Connect("127.0.0.1", port);
        if (!connected.ok()) {
          // Connection-cap rejection or transient refusal: back off.
          tally->io_retries.fetch_add(1, std::memory_order_relaxed);
          Backoff(client, attempt);
          continue;
        }
        connection.emplace(std::move(*connected));
      }
      auto event =
          connection->SubmitAndWait(LoadSpec(seed, rows).ToJson());
      if (!event.ok()) {
        // Socket failure mid-exchange: reconnect and retry the job.
        connection.reset();
        tally->io_retries.fetch_add(1, std::memory_order_relaxed);
        Backoff(client, attempt);
        continue;
      }
      if (IsBackpressureEvent(*event)) {
        tally->backpressure_retries.fetch_add(1,
                                              std::memory_order_relaxed);
        Backoff(client, attempt);
        continue;
      }
      if (IsGoodTerminalEvent(*event, rows)) {
        tally->confirmed.fetch_add(1, std::memory_order_relaxed);
      } else {
        tally->corrupted.fetch_add(1, std::memory_order_relaxed);
        std::fprintf(stderr, "ndjson client %zu: corrupt terminal %s\n",
                     client, event->Write(-1).c_str());
      }
      confirmed = true;
      break;
    }
    if (!confirmed) tally->lost.fetch_add(1, std::memory_order_relaxed);
  }
}

// One HTTP client: raw keep-alive POST /jobs?wait=1 exchanges. 409 is
// the backpressure rejection (FailedPrecondition over HTTP); socket
// failures reconnect; anything else but a clean succeeded state event
// is corruption.
void HttpWorker(uint16_t http_port, size_t client, size_t jobs, size_t rows,
                Tally* tally) {
  RawSocket socket;
  for (size_t j = 0; j < jobs; ++j) {
    const uint64_t seed = 1 + client * 1000 + j;
    const std::string body = LoadSpec(seed, rows).ToJson().Write(-1);
    const std::string request =
        "POST /jobs?wait=1 HTTP/1.1\r\nHost: 127.0.0.1\r\n"
        "Content-Length: " +
        std::to_string(body.size()) + "\r\n\r\n" + body;
    bool confirmed = false;
    for (int attempt = 0; attempt < kMaxAttemptsPerJob; ++attempt) {
      if (!socket.connected() &&
          !socket.Connect(http_port, /*recv_timeout_ms=*/120000)) {
        tally->io_retries.fetch_add(1, std::memory_order_relaxed);
        Backoff(client, attempt);
        continue;
      }
      if (!socket.Send(request)) {
        socket.Close();
        tally->io_retries.fetch_add(1, std::memory_order_relaxed);
        Backoff(client, attempt);
        continue;
      }
      const std::string response = socket.ReadResponse();
      if (response.empty()) {  // EOF/timeout: cap rejection or drop
        socket.Close();
        tally->io_retries.fetch_add(1, std::memory_order_relaxed);
        Backoff(client, attempt);
        continue;
      }
      const int status = StatusOf(response);
      if (status == 409 || status == 503) {
        if (status == 503) socket.Close();  // cap rejections also close
        tally->backpressure_retries.fetch_add(1,
                                              std::memory_order_relaxed);
        Backoff(client, attempt);
        continue;
      }
      if (status == 200 && IsGoodTerminalEvent(BodyOf(response), rows)) {
        tally->confirmed.fetch_add(1, std::memory_order_relaxed);
      } else {
        tally->corrupted.fetch_add(1, std::memory_order_relaxed);
        std::fprintf(stderr, "http client %zu: corrupt response %s\n",
                     client, response.substr(0, 200).c_str());
      }
      confirmed = true;
      break;
    }
    if (!confirmed) tally->lost.fetch_add(1, std::memory_order_relaxed);
  }
}

// The slowloris probe, run while the load is in full swing: start a
// request, go silent, and demand the 408 + eviction within a small
// multiple of the request deadline.
struct SlowlorisResult {
  bool evicted = false;
  double elapsed_ms = 0.0;
};

SlowlorisResult SlowlorisProbe(uint16_t http_port, int deadline_ms) {
  SlowlorisResult result;
  RawSocket socket;
  if (!socket.Connect(http_port, /*recv_timeout_ms=*/deadline_ms * 20)) {
    return result;
  }
  tcm::WallTimer timer;
  if (!socket.Send("GET /healthz HTTP/1.1\r\nHost: x\r\nX-Slow: ")) {
    return result;
  }
  const std::string response = socket.ReadResponse();
  result.elapsed_ms = timer.ElapsedMillis();
  result.evicted = StatusOf(response) == 408 && socket.AtEof() &&
                   result.elapsed_ms < 5.0 * deadline_ms;
  return result;
}

size_t MaxRssMb() {
  rusage usage{};
  ::getrusage(RUSAGE_SELF, &usage);
  return static_cast<size_t>(usage.ru_maxrss) / 1024;  // Linux: KiB
}

// Room for every client socket on both ends of loopback plus slack;
// without this a kernel default of 1024 descriptors would turn the
// bench into an EMFILE test.
void RaiseFdLimit(size_t clients) {
  rlimit limit{};
  if (::getrlimit(RLIMIT_NOFILE, &limit) != 0) return;
  const rlim_t wanted = static_cast<rlim_t>(4 * clients + 64);
  if (limit.rlim_cur >= wanted) return;
  limit.rlim_cur = wanted > limit.rlim_max ? limit.rlim_max : wanted;
  ::setrlimit(RLIMIT_NOFILE, &limit);
}

}  // namespace

int main() {
  const bool fast = tcm_bench::FastMode();
  const size_t clients =
      tcm_bench::EnvSize("TCM_SERVE_CLIENTS", fast ? 128 : 1000);
  const size_t jobs_per_client = tcm_bench::EnvSize("TCM_SERVE_JOBS", 2);
  const size_t rows = tcm_bench::EnvSize("TCM_SERVE_ROWS", 48);
  const size_t pool_threads = tcm_bench::EnvSize("TCM_SERVE_THREADS", 4);
  const size_t max_pending = tcm_bench::EnvSize("TCM_SERVE_PENDING", 256);
  const size_t max_rss_mb =
      tcm_bench::EnvSize("TCM_SERVE_MAX_RSS_MB", 512);
  const char* out_env = std::getenv("TCM_BENCH_OUT");
  const std::string out_path =
      (out_env != nullptr && *out_env != '\0') ? out_env
                                               : "BENCH_serve.json";
  constexpr int kRequestDeadlineMs = 1000;

  RaiseFdLimit(clients);

  tcm_bench::PrintHeader(
      "serve_load: " + std::to_string(clients) + " concurrent clients x " +
      std::to_string(jobs_per_client) + " waited jobs, NDJSON+HTTP mixed");

  tcm::ServeOptions options;
  options.threads = pool_threads;
  options.max_pending = max_pending;
  options.max_terminal_jobs = 1024;
  options.max_connections = clients + 32;
  options.idle_timeout_ms = 10000;
  options.enable_http = true;
  options.http_limits.request_deadline_ms = kRequestDeadlineMs;
  tcm::JobServer server(options);
  tcm::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }

  Tally tally;
  tcm::WallTimer timer;
  std::vector<std::thread> workers;
  workers.reserve(clients);
  for (size_t client = 0; client < clients; ++client) {
    if (client % 2 == 0) {
      workers.emplace_back(NdjsonWorker, server.port(), client,
                           jobs_per_client, rows, &tally);
    } else {
      workers.emplace_back(HttpWorker, server.http_port(), client,
                           jobs_per_client, rows, &tally);
    }
  }

  // The slowloris probe runs against the same daemon while every worker
  // is hammering it: the defense must hold mid-load, not just when idle.
  SlowlorisResult slowloris =
      SlowlorisProbe(server.http_port(), kRequestDeadlineMs);

  for (std::thread& worker : workers) worker.join();
  const double seconds = timer.ElapsedSeconds();

  // Cross-check against the daemon's own lifetime accounting: every
  // confirmed submission became exactly one succeeded job.
  size_t server_succeeded = 0;
  {
    auto connection = tcm::ServeClient::Connect("127.0.0.1", server.port());
    if (connection.ok()) {
      auto stats = connection->Stats();
      if (stats.ok()) {
        const tcm::JsonValue* jobs = stats->Find("jobs");
        const tcm::JsonValue* succeeded =
            jobs != nullptr ? jobs->Find("succeeded") : nullptr;
        if (succeeded != nullptr && succeeded->is_number()) {
          server_succeeded = succeeded->GetUint().value_or(0);
        }
      }
    }
  }

  server.RequestShutdown();
  server.Wait();

  const size_t total_jobs = clients * jobs_per_client;
  const size_t rss_mb = MaxRssMb();
  const bool rss_bounded = rss_mb <= max_rss_mb;
  const size_t lost = tally.lost.load();
  const size_t corrupted = tally.corrupted.load();
  const size_t confirmed = tally.confirmed.load();
  const bool accounted = server_succeeded == confirmed;

  char line[768];
  std::snprintf(
      line, sizeof(line),
      "{\"bench\":\"serve_load\",\"clients\":%zu,\"jobs_per_client\":%zu,"
      "\"jobs\":%zu,\"confirmed\":%zu,\"server_succeeded\":%zu,"
      "\"lost\":%zu,\"corrupted\":%zu,\"backpressure_retries\":%zu,"
      "\"io_retries\":%zu,\"rows_per_job\":%zu,\"pool_threads\":%zu,"
      "\"max_pending\":%zu,\"seconds\":%.3f,\"jobs_per_sec\":%.0f,"
      "\"slowloris_evicted\":%s,\"slowloris_ms\":%.0f,"
      "\"max_rss_mb\":%zu,\"rss_bounded\":%s}",
      clients, jobs_per_client, total_jobs, confirmed, server_succeeded,
      lost, corrupted, tally.backpressure_retries.load(),
      tally.io_retries.load(), rows, pool_threads, max_pending, seconds,
      static_cast<double>(total_jobs) / seconds,
      slowloris.evicted ? "true" : "false", slowloris.elapsed_ms, rss_mb,
      rss_bounded ? "true" : "false");
  std::printf("%s\n", line);

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "[\n  %s\n]\n", line);
  std::fclose(out);
  std::printf("# wrote %s\n", out_path.c_str());

  bool ok = true;
  if (lost != 0 || corrupted != 0 || confirmed != total_jobs) {
    std::fprintf(stderr,
                 "LOST/CORRUPTED reports: confirmed %zu of %zu, lost %zu, "
                 "corrupted %zu\n",
                 confirmed, total_jobs, lost, corrupted);
    ok = false;
  }
  if (!accounted) {
    std::fprintf(stderr,
                 "accounting mismatch: server counted %zu succeeded jobs, "
                 "clients confirmed %zu\n",
                 server_succeeded, confirmed);
    ok = false;
  }
  if (!slowloris.evicted) {
    std::fprintf(stderr,
                 "slowloris connection was NOT evicted (%.0f ms observed, "
                 "deadline %d ms)\n",
                 slowloris.elapsed_ms, kRequestDeadlineMs);
    ok = false;
  }
  if (!rss_bounded) {
    std::fprintf(stderr, "peak RSS %zu MiB exceeds the %zu MiB bound\n",
                 rss_mb, max_rss_mb);
    ok = false;
  }
  return ok ? 0 : 1;
}
