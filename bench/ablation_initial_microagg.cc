// Ablation A1 (ours): does the choice of the initial microaggregation
// heuristic inside Algorithm 1 matter? Compares MDAV against V-MDAV
// (variable-size) as the pre-merge partitioner on the MCD data set.
// DESIGN.md motivation: the paper fixes MDAV; V-MDAV's variable cluster
// sizes could in principle leave fewer mergers to do.

#include <cstdio>

#include "bench/bench_util.h"
#include "data/generator.h"
#include "tclose/anonymizer.h"

int main() {
  tcm_bench::PrintHeader(
      "Ablation A1: Algorithm 1 with MDAV vs V-MDAV initial "
      "microaggregation, MCD, k=2");
  tcm::Dataset mcd = tcm::MakeMcdDataset();
  std::printf("%-6s %12s %12s %14s %14s %10s %10s\n", "t", "mdav_sse",
              "vmdav_sse", "mdav_avgsize", "vmdav_avgsize", "mdav_s",
              "vmdav_s");
  std::vector<double> ts = tcm_bench::FigureTGrid();
  if (tcm_bench::FastMode()) ts = {0.05, 0.25};
  for (double t : ts) {
    double sse[2], avg[2], secs[2];
    for (int variant = 0; variant < 2; ++variant) {
      tcm::AnonymizerOptions options;
      options.k = 2;
      options.t = t;
      options.algorithm = tcm::TCloseAlgorithm::kMicroaggregationMerge;
      options.microagg.method = variant == 0 ? tcm::MicroaggMethod::kMdav
                                             : tcm::MicroaggMethod::kVMdav;
      options.microagg.vmdav.gamma = 0.2;
      auto result = tcm::Anonymize(mcd, options);
      sse[variant] = result.ok() ? result->normalized_sse : -1;
      avg[variant] = result.ok() ? result->average_cluster_size : -1;
      secs[variant] = result.ok() ? result->elapsed_seconds : -1;
    }
    std::printf("%-6.2f %12.6f %12.6f %14.1f %14.1f %10.4f %10.4f\n", t,
                sse[0], sse[1], avg[0], avg[1], secs[0], secs[1]);
  }
  return 0;
}
