// Figure 6 of the paper: normalized SSE (Eq. 5) of the three algorithms
// with k=2 as a function of t, for the HCD (top), MCD (middle) and
// Patient Discharge (bottom) data sets. Expected shape: SSE grows as t
// shrinks; Algorithm 2 improves on Algorithm 1 and Algorithm 3 improves
// on Algorithm 2, with Algorithm 3's margin largest on MCD and Patient
// Discharge and smallest on HCD (high QI<->confidential correlation makes
// cluster homogeneity clash with the forced confidential spread).

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "data/generator.h"
#include "tclose/anonymizer.h"

namespace {

void RunPanel(const std::string& name, const tcm::Dataset& data) {
  std::printf("## %s (n=%zu)\n", name.c_str(), data.NumRecords());
  std::printf("%-6s %14s %14s %14s\n", "t", "alg1_merge", "alg2_kanon1st",
              "alg3_tclose1st");
  std::vector<double> ts = tcm_bench::FigureTGrid();
  if (tcm_bench::FastMode()) ts = {0.05, 0.25};
  for (double t : ts) {
    double sse[3] = {0, 0, 0};
    const tcm::TCloseAlgorithm algorithms[3] = {
        tcm::TCloseAlgorithm::kMicroaggregationMerge,
        tcm::TCloseAlgorithm::kKAnonymityFirst,
        tcm::TCloseAlgorithm::kTClosenessFirst};
    for (int i = 0; i < 3; ++i) {
      tcm::AnonymizerOptions options;
      options.k = 2;
      options.t = t;
      options.algorithm = algorithms[i];
      auto result = tcm::Anonymize(data, options);
      sse[i] = result.ok() ? result->normalized_sse : -1.0;
    }
    std::printf("%-6.2f %14.6f %14.6f %14.6f\n", t, sse[0], sse[1], sse[2]);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  tcm_bench::PrintHeader(
      "Figure 6: normalized SSE vs t (k=2) for HCD, MCD and "
      "Patient-Discharge-like data");
  RunPanel("HCD (highly correlated)", tcm::MakeHcdDataset());
  RunPanel("MCD (moderately correlated)", tcm::MakeMcdDataset());
  tcm::PatientDischargeOptions gen;
  gen.num_records =
      tcm_bench::EnvSize("TCM_N", tcm_bench::FastMode() ? 800 : 4000);
  RunPanel("Patient-Discharge-like", tcm::MakePatientDischargeLike(gen));
  return 0;
}
