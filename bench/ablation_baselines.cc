// Ablation A5 (ours): the paper's Section 4 argument quantified — the
// microaggregation algorithms against the generalization-style
// comparators (global recoding a la Incognito, Mondrian with the
// t-closeness constraint) at equal (k, t). Expected shape: recoding pays
// the granularity loss the paper describes (largest SSE); Mondrian sits
// between recoding and the microaggregation algorithms; Algorithm 3 wins.

#include <cstdio>

#include "baseline/mondrian.h"
#include "baseline/recoding.h"
#include "bench/bench_util.h"
#include "data/generator.h"
#include "distance/emd.h"
#include "distance/qi_space.h"
#include "microagg/aggregate.h"
#include "privacy/interval_disclosure.h"
#include "tclose/anonymizer.h"
#include "utility/sse.h"

namespace {

struct Row {
  const char* name;
  double sse = -1;
  double disclosure = -1;
};

void Measure(const tcm::Dataset& original, const tcm::Dataset& release,
             Row* row) {
  auto sse = tcm::NormalizedSse(original, release);
  if (sse.ok()) row->sse = *sse;
  auto interval = tcm::EvaluateIntervalDisclosure(original, release, 0.01);
  if (interval.ok()) row->disclosure = interval->disclosure_rate;
}

}  // namespace

int main() {
  tcm_bench::PrintHeader(
      "Ablation A5: microaggregation vs generalization baselines, MCD, "
      "k=3, SSE + 1%-rank interval disclosure");
  tcm::Dataset mcd = tcm::MakeMcdDataset();
  tcm::QiSpace space(mcd);
  tcm::EmdCalculator emd(mcd);
  constexpr size_t kK = 3;

  std::vector<double> ts = {0.05, 0.13, 0.25};
  if (tcm_bench::FastMode()) ts = {0.13};
  std::printf("%-6s %-26s %12s %12s\n", "t", "method", "sse", "disclosure");
  for (double t : ts) {
    std::vector<Row> rows;

    for (tcm::TCloseAlgorithm algorithm :
         {tcm::TCloseAlgorithm::kMicroaggregationMerge,
          tcm::TCloseAlgorithm::kKAnonymityFirst,
          tcm::TCloseAlgorithm::kTClosenessFirst}) {
      tcm::AnonymizerOptions options;
      options.k = kK;
      options.t = t;
      options.algorithm = algorithm;
      auto result = tcm::Anonymize(mcd, options);
      Row row{tcm::TCloseAlgorithmName(algorithm)};
      if (result.ok()) Measure(mcd, result->anonymized, &row);
      rows.push_back(row);
    }

    {
      Row row{"Mondrian (t-close)"};
      auto partition = tcm::MondrianTClosePartition(space, emd, kK, t);
      if (partition.ok()) {
        auto release = tcm::AggregatePartition(mcd, *partition);
        if (release.ok()) Measure(mcd, *release, &row);
      }
      rows.push_back(row);
    }

    {
      Row row{"global recoding"};
      tcm::RecodingOptions options;
      options.t = t;
      auto result = tcm::GlobalRecodingAnonymize(mcd, kK, options);
      if (result.ok()) Measure(mcd, result->anonymized, &row);
      rows.push_back(row);
    }

    for (const Row& row : rows) {
      std::printf("%-6.2f %-26s %12.6f %12.4f\n", t, row.name, row.sse,
                  row.disclosure);
    }
    std::printf("\n");
  }
  return 0;
}
