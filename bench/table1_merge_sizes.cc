// Table 1 of the paper: actual microaggregation level (minimum / average
// cluster size) of Algorithm 1 — standard microaggregation followed by
// cluster merging — over the k x t grid for the MCD and HCD data sets.
// Expected shape: sizes blow up as t decreases (single 1080-record cluster
// around t = 0.01-0.05) and as k grows; min and avg diverge widely.

#include "bench/table_sizes_common.h"

int main() {
  tcm_bench::RunSizesTable(
      "Table 1: Algorithm 1 (microaggregation + merging) cluster sizes "
      "min/avg, MCD & HCD (n=1080)",
      tcm::TCloseAlgorithm::kMicroaggregationMerge);
  return 0;
}
