// Table 2 of the paper: actual microaggregation level (minimum / average
// cluster size) of Algorithm 2 — k-anonymity-first t-closeness-aware
// microaggregation (with the Algorithm 1 merge fallback) — over the k x t
// grid for MCD and HCD. Expected shape: sizes much closer to k than
// Table 1; mergers only for the strictest t (0.01-0.05); HCD needs larger
// average clusters than MCD.

#include "bench/table_sizes_common.h"

int main() {
  tcm_bench::RunSizesTable(
      "Table 2: Algorithm 2 (k-anonymity-first) cluster sizes min/avg, "
      "MCD & HCD (n=1080)",
      tcm::TCloseAlgorithm::kKAnonymityFirst);
  return 0;
}
