// Shard-parallel scaling of the anonymization engine: anonymize a
// generated 100k-row dataset with the same spec at 1/2/4/8 threads and
// measure wall-clock speedup. The engine contract makes the release
// byte-identical across thread counts; each config re-checks that and the
// k/t guarantees, and emits one JSON line for the BENCH trajectory.
//
// Environment knobs (see bench_util.h):
//   TCM_N       — record count            (default 100000)
//   TCM_SHARD   — rows per shard          (default 4096)
//   TCM_FAST    — nonzero: 20k rows for smoke runs

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "data/csv.h"
#include "data/generator.h"
#include "engine/sharded.h"
#include "engine/thread_pool.h"
#include "privacy/kanonymity.h"
#include "privacy/tcloseness.h"

int main() {
  const size_t n =
      tcm_bench::EnvSize("TCM_N", tcm_bench::FastMode() ? 20000 : 100000);
  const size_t shard_size = tcm_bench::EnvSize("TCM_SHARD", 4096);
  constexpr size_t kK = 5;
  constexpr double kT = 0.1;

  tcm::Dataset data = tcm::MakeUniformDataset(n, 4, 2016);
  tcm_bench::PrintHeader("parallel_scaling: sharded t-closeness-first, n=" +
                         std::to_string(n));

  tcm::ShardedAnonymizeOptions options;
  options.algorithm = "tclose_first";
  options.params.k = kK;
  options.params.t = kT;
  options.shard_size = shard_size;

  std::string reference_release;
  double reference_seconds = 0.0;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    tcm::ThreadPool pool(threads);
    tcm::ShardedAnonymizeStats stats;
    tcm::WallTimer timer;
    auto result = tcm::ShardedAnonymize(data, options, &pool, &stats);
    double seconds = timer.ElapsedSeconds();
    if (!result.ok()) {
      std::fprintf(stderr, "threads=%zu failed: %s\n", threads,
                   result.status().ToString().c_str());
      return 1;
    }

    std::string release = tcm::WriteCsvString(result->anonymized);
    bool identical = true;
    if (threads == 1) {
      reference_release = release;
      reference_seconds = seconds;
    } else {
      identical = (release == reference_release);
    }
    auto k_ok = tcm::IsKAnonymous(result->anonymized, kK);
    auto t_ok = tcm::IsTClose(result->anonymized, kT);
    bool verified =
        k_ok.ok() && t_ok.ok() && *k_ok && *t_ok;

    std::printf(
        "{\"bench\":\"parallel_scaling\",\"n\":%zu,\"shard_size\":%zu,"
        "\"shards\":%zu,\"threads\":%zu,\"seconds\":%.3f,"
        "\"speedup\":%.2f,\"identical_to_t1\":%s,\"verified\":%s,"
        "\"final_merges\":%zu,\"sse\":%.6f,\"max_emd\":%.4f}\n",
        n, shard_size, stats.num_shards, threads, seconds,
        reference_seconds / seconds, identical ? "true" : "false",
        verified ? "true" : "false", stats.final_merges,
        result->normalized_sse, result->max_cluster_emd);
    if (!identical || !verified) return 1;
  }
  return 0;
}
