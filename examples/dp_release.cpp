// Differential-privacy example: the research direction named in the
// paper's conclusions. Builds an epsilon-DP-style release by
// microaggregating the quasi-identifiers and publishing noisy centroids,
// and shows the k/epsilon/utility trade-off on census-like data.
//
//   ./build/examples/dp_release

#include <cstdio>

#include "data/generator.h"
#include "dp/dp_release.h"
#include "utility/info_loss.h"
#include "utility/sse.h"

int main() {
  tcm::Dataset data = tcm::MakeMcdDataset();
  std::printf("census-like data, n=%zu\n\n", data.NumRecords());
  std::printf("%-8s %-6s %12s %18s\n", "epsilon", "k", "SSE",
              "corr. MAD (QIs)");
  for (double epsilon : {0.2, 1.0, 5.0}) {
    for (size_t k : {5u, 25u}) {
      tcm::DpReleaseOptions options;
      options.k = k;
      options.epsilon = epsilon;
      options.seed = 99;
      auto result = tcm::DpMicroaggregationRelease(data, options);
      if (!result.ok()) {
        std::fprintf(stderr, "release failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      auto sse = tcm::NormalizedSse(data, result->released);
      auto stats = tcm::EvaluateStatisticsPreservation(data, result->released);
      std::printf("%-8.1f %-6zu %12.5f %18.4f\n", epsilon, k,
                  sse.ok() ? *sse : -1.0,
                  stats.ok() ? stats->correlation_mad : -1.0);
    }
  }
  std::printf(
      "\nNote: larger k lowers centroid sensitivity (range/k), so at small\n"
      "epsilon the bigger clusters give the better utility — the effect\n"
      "the microaggregation-DP line of work exploits.\n");
  return 0;
}
