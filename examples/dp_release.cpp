// Differential-privacy example: the research direction named in the
// paper's conclusions. Builds an epsilon-DP-style release by
// microaggregating the quasi-identifiers and publishing noisy centroids,
// and shows the k/epsilon/utility trade-off on census-like data. A
// noise-free t-closeness release produced through the Job API anchors
// the comparison: the utility every DP row gives up relative to the
// paper's syntactic guarantee.
//
//   ./build/examples/dp_release

#include <cstdio>

#include "data/generator.h"
#include "dp/dp_release.h"
#include "tcm/api.h"
#include "utility/info_loss.h"
#include "utility/sse.h"

int main() {
  tcm::Dataset data = tcm::MakeMcdDataset();
  std::printf("census-like data, n=%zu\n\n", data.NumRecords());

  // Baseline: the syntactic (k, t) release, no noise — one in-memory job.
  tcm::JobSpec baseline;
  baseline.algorithm.name = "tclose_first";
  baseline.algorithm.k = 5;
  baseline.algorithm.t = 0.1;
  auto anchored = tcm::RunJob(data, baseline);
  if (!anchored.ok()) {
    std::fprintf(stderr, "baseline failed: %s\n",
                 anchored.status().ToString().c_str());
    return 1;
  }
  std::printf("baseline %s k=%zu t=%.2f: SSE=%.5f (no noise)\n\n",
              anchored->algorithm.c_str(), anchored->k, anchored->t,
              anchored->normalized_sse);

  std::printf("%-8s %-6s %12s %18s\n", "epsilon", "k", "SSE",
              "corr. MAD (QIs)");
  for (double epsilon : {0.2, 1.0, 5.0}) {
    for (size_t k : {5u, 25u}) {
      tcm::DpReleaseOptions options;
      options.k = k;
      options.epsilon = epsilon;
      options.seed = 99;
      auto result = tcm::DpMicroaggregationRelease(data, options);
      if (!result.ok()) {
        std::fprintf(stderr, "release failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      auto sse = tcm::NormalizedSse(data, result->released);
      auto stats = tcm::EvaluateStatisticsPreservation(data, result->released);
      std::printf("%-8.1f %-6zu %12.5f %18.4f\n", epsilon, k,
                  sse.ok() ? *sse : -1.0,
                  stats.ok() ? stats->correlation_mad : -1.0);
    }
  }
  std::printf(
      "\nNote: larger k lowers centroid sensitivity (range/k), so at small\n"
      "epsilon the bigger clusters give the better utility — the effect\n"
      "the microaggregation-DP line of work exploits.\n");
  return 0;
}
