// End-to-end CSV pipeline: the workflow of a data custodian.
//  1. Export an original microdata set to CSV.
//  2. Re-load it declaring attribute roles (identifier / QI / confidential).
//  3. Anonymize with each of the paper's algorithms; keep the best release.
//  4. Compare against the generalization (global recoding) and Mondrian
//     baselines, then write the chosen release back to CSV.
//
//   ./build/examples/csv_pipeline [output_dir]

#include <cstdio>
#include <string>

#include "baseline/mondrian.h"
#include "baseline/recoding.h"
#include "data/csv.h"
#include "data/generator.h"
#include "microagg/aggregate.h"
#include "privacy/tcloseness.h"
#include "tclose/anonymizer.h"
#include "utility/sse.h"

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "/tmp";
  const std::string original_path = dir + "/census_original.csv";
  const std::string release_path = dir + "/census_release.csv";

  // 1. Export the original data.
  tcm::Dataset data = tcm::MakeMcdDataset();
  if (auto status = tcm::WriteCsv(data, original_path); !status.ok()) {
    std::fprintf(stderr, "write failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // 2. Load it back with explicit roles, as a custodian would for a file
  //    received from a third party.
  auto loaded = tcm::ReadCsv(original_path, data.schema());
  if (!loaded.ok()) {
    std::fprintf(stderr, "read failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu records x %zu attributes from %s\n",
              loaded->NumRecords(), loaded->NumAttributes(),
              original_path.c_str());

  // 3. Try all three algorithms, keep the lowest-SSE release.
  constexpr size_t kK = 4;
  constexpr double kT = 0.12;
  tcm::AnonymizerOptions options;
  options.k = kK;
  options.t = kT;
  double best_sse = 2.0;
  tcm::Dataset best_release;
  for (tcm::TCloseAlgorithm algorithm :
       {tcm::TCloseAlgorithm::kMicroaggregationMerge,
        tcm::TCloseAlgorithm::kKAnonymityFirst,
        tcm::TCloseAlgorithm::kTClosenessFirst}) {
    options.algorithm = algorithm;
    auto result = tcm::Anonymize(*loaded, options);
    if (!result.ok()) continue;
    std::printf("  %-24s SSE=%.4f maxEMD=%.4f\n",
                tcm::TCloseAlgorithmName(algorithm), result->normalized_sse,
                result->max_cluster_emd);
    if (result->normalized_sse < best_sse) {
      best_sse = result->normalized_sse;
      best_release = std::move(result->anonymized);
    }
  }

  // 4. Baselines for comparison.
  tcm::RecodingOptions recoding_options;
  recoding_options.t = kT;
  auto recoded = tcm::GlobalRecodingAnonymize(*loaded, kK, recoding_options);
  if (recoded.ok()) {
    auto sse = tcm::NormalizedSse(*loaded, recoded->anonymized);
    std::printf("  %-24s SSE=%.4f (bins:", "global recoding",
                sse.ok() ? *sse : -1.0);
    for (size_t bins : recoded->bins_per_attribute) {
      std::printf(" %zu", bins);
    }
    std::printf(")\n");
  }
  tcm::QiSpace space(*loaded);
  tcm::EmdCalculator emd(*loaded);
  auto mondrian = tcm::MondrianTClosePartition(space, emd, kK, kT);
  if (mondrian.ok()) {
    auto aggregated = tcm::AggregatePartition(*loaded, *mondrian);
    if (aggregated.ok()) {
      auto sse = tcm::NormalizedSse(*loaded, *aggregated);
      std::printf("  %-24s SSE=%.4f\n", "Mondrian (t-close)",
                  sse.ok() ? *sse : -1.0);
    }
  }

  // Publish the winner.
  auto verified = tcm::IsTClose(best_release, kT);
  if (!verified.ok() || !*verified) {
    std::fprintf(stderr, "release failed verification!\n");
    return 1;
  }
  if (auto status = tcm::WriteCsv(best_release, release_path); !status.ok()) {
    std::fprintf(stderr, "write failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("released %s (normalized SSE %.4f, verified %.2f-close)\n",
              release_path.c_str(), best_sse, kT);
  return 0;
}
