// End-to-end CSV pipeline on the parallel engine: the workflow of a data
// custodian with a parameter sweep.
//  1. Export an original microdata set to CSV.
//  2. Fan a batch of jobs — every algorithm in the registry — across a
//     thread pool and compare their releases.
//  3. Re-run the winner through the declarative PipelineRunner
//     (load -> shard -> anonymize -> verify -> metrics -> write), which
//     re-loads the CSV, assigns roles by column name, verifies the
//     release and writes it back out.
//
//   ./build/examples/example_csv_pipeline [output_dir]

#include <cstdio>
#include <string>
#include <vector>

#include "data/csv.h"
#include "data/generator.h"
#include "engine/batch.h"
#include "engine/pipeline.h"
#include "engine/registry.h"

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "/tmp";
  const std::string original_path = dir + "/census_original.csv";
  const std::string release_path = dir + "/census_release.csv";

  // 1. Export the original data.
  tcm::Dataset data = tcm::MakeMcdDataset();
  if (auto status = tcm::WriteCsv(data, original_path); !status.ok()) {
    std::fprintf(stderr, "write failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("exported %zu records x %zu attributes to %s\n",
              data.NumRecords(), data.NumAttributes(),
              original_path.c_str());

  // 2. One batch job per registered algorithm (paper algorithms AND
  //    baselines — the registry makes them interchangeable), fanned
  //    across a 4-worker pool.
  constexpr size_t kK = 4;
  constexpr double kT = 0.12;
  tcm::ThreadPool pool(4);
  std::vector<tcm::BatchJob> jobs;
  for (const std::string& name :
       tcm::AlgorithmRegistry::BuiltIns().Names()) {
    if (name == "kanon" || name == "tclose") continue;  // CLI aliases
    tcm::BatchJob job;
    job.label = name;
    job.data = &data;
    job.algorithm = name;
    job.params.k = kK;
    job.params.t = kT;
    jobs.push_back(std::move(job));
  }
  std::vector<tcm::BatchOutcome> outcomes = tcm::RunBatch(jobs, &pool);

  std::string best_algorithm;
  double best_sse = 2.0;
  for (const tcm::BatchOutcome& outcome : outcomes) {
    if (!outcome.status.ok()) {
      std::printf("  %-18s failed: %s\n", outcome.label.c_str(),
                  outcome.status.message().c_str());
      continue;
    }
    std::printf("  %-18s SSE=%.4f maxEMD=%.4f clusters=%zu (%.3fs)\n",
                outcome.label.c_str(), outcome.normalized_sse,
                outcome.max_cluster_emd, outcome.clusters,
                outcome.elapsed_seconds);
    if (outcome.normalized_sse < best_sse) {
      best_sse = outcome.normalized_sse;
      best_algorithm = outcome.label;
    }
  }
  if (best_algorithm.empty()) {
    std::fprintf(stderr, "every algorithm failed\n");
    return 1;
  }
  std::printf("winner: %s\n", best_algorithm.c_str());

  // 3. Publish the winner through the full pipeline. Roles are assigned
  //    by column name from the CSV header, the release is re-verified
  //    (k-anonymity + t-closeness) before the write stage runs.
  tcm::PipelineSpec spec;
  spec.input_path = original_path;
  spec.output_path = release_path;
  spec.quasi_identifiers = {"TAXINC", "POTHVAL"};
  spec.confidential = "FEDTAX";
  spec.algorithm = best_algorithm;
  spec.k = kK;
  spec.t = kT;
  spec.shard_size = 0;  // 1080 records: no need to shard
  tcm::PipelineRunner runner(/*threads=*/2);
  auto report = runner.Run(spec);
  if (!report.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "released %s (normalized SSE %.4f, verified %.2f-close, "
      "%zu shard(s) on %zu thread(s))\n",
      release_path.c_str(), report->result.normalized_sse, kT,
      report->num_shards, report->threads);
  return 0;
}
