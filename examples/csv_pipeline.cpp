// End-to-end CSV workflow on the Job API: a data custodian picking an
// algorithm by sweep, then publishing through the same facade.
//  1. Export an original microdata set to CSV.
//  2. Run a sweep JobSpec — every algorithm in the registry over the
//     same (k, t) — in one RunJob call and compare the outcomes.
//  3. Publish the winner with a second JobSpec that reads the CSV back,
//     assigns roles by column name, re-verifies the release and writes
//     both the release CSV and a machine-readable JSON report.
//
//   ./build/examples/example_csv_pipeline [output_dir]

#include <cstdio>
#include <string>

#include "data/csv.h"
#include "data/generator.h"
#include "engine/registry.h"
#include "tcm/api.h"

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "/tmp";
  const std::string original_path = dir + "/census_original.csv";
  const std::string release_path = dir + "/census_release.csv";
  const std::string report_path = dir + "/census_report.json";

  // 1. Export the original data.
  tcm::Dataset data = tcm::MakeMcdDataset();
  if (auto status = tcm::WriteCsv(data, original_path); !status.ok()) {
    std::fprintf(stderr, "write failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("exported %zu records x %zu attributes to %s\n",
              data.NumRecords(), data.NumAttributes(),
              original_path.c_str());

  // 2. One sweep cell per registered algorithm (paper algorithms AND
  //    baselines — the registry makes them interchangeable), fanned
  //    across a 4-worker pool by a single JobSpec.
  constexpr size_t kK = 4;
  constexpr double kT = 0.12;
  tcm::JobSpec sweep_spec;
  sweep_spec.algorithm.k = kK;
  sweep_spec.algorithm.t = kT;
  sweep_spec.execution.threads = 4;
  sweep_spec.sweep.emplace();
  for (const std::string& name :
       tcm::AlgorithmRegistry::BuiltIns().Names()) {
    if (name == "kanon" || name == "tclose") continue;  // CLI aliases
    sweep_spec.sweep->algorithms.push_back(name);
  }
  auto swept = tcm::RunJob(data, sweep_spec);
  if (!swept.ok()) {
    std::fprintf(stderr, "sweep failed: %s\n",
                 swept.status().ToString().c_str());
    return 1;
  }

  std::string best_algorithm;
  double best_sse = 2.0;
  for (const tcm::SweepOutcome& outcome : swept->sweep) {
    if (!outcome.error_code.empty()) {
      std::printf("  %-28s failed (%s): %s\n", outcome.label.c_str(),
                  outcome.error_code.c_str(), outcome.error.c_str());
      continue;
    }
    std::printf("  %-28s SSE=%.4f maxEMD=%.4f clusters=%zu (%.3fs)\n",
                outcome.label.c_str(), outcome.normalized_sse,
                outcome.max_cluster_emd, outcome.clusters,
                outcome.elapsed_seconds);
    if (outcome.normalized_sse < best_sse) {
      best_sse = outcome.normalized_sse;
      best_algorithm = outcome.algorithm;
    }
  }
  if (best_algorithm.empty()) {
    std::fprintf(stderr, "every algorithm failed\n");
    return 1;
  }
  std::printf("winner: %s\n", best_algorithm.c_str());

  // 3. Publish the winner through the full pipeline. Roles are assigned
  //    by column name from the CSV header, the release is re-verified
  //    (k-anonymity + t-closeness) before the write stage runs, and the
  //    JSON report lands next to the release for the audit trail.
  tcm::JobSpec publish;
  publish.input.kind = tcm::InputKind::kCsvPath;
  publish.input.path = original_path;
  publish.roles.quasi_identifiers = {"TAXINC", "POTHVAL"};
  publish.roles.confidential = "FEDTAX";
  publish.algorithm.name = best_algorithm;
  publish.algorithm.k = kK;
  publish.algorithm.t = kT;
  publish.execution.threads = 2;
  publish.execution.shard_size = 0;  // 1080 records: no need to shard
  publish.output.release_path = release_path;
  publish.output.report_path = report_path;
  auto published = tcm::RunJob(publish);
  if (!published.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 published.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "released %s (normalized SSE %.4f, verified %.2f-close, "
      "%zu shard(s) on %zu thread(s)); report at %s\n",
      release_path.c_str(), published->normalized_sse, kT,
      published->num_shards, published->threads, report_path.c_str());
  return 0;
}
