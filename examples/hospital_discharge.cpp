// Hospital discharge scenario: the paper's scalability data set (7
// quasi-identifiers, one charge attribute, very weak QI<->confidential
// dependence). Demonstrates anonymizing a larger release through the Job
// API — sharded across a thread pool — and evaluating statistical
// fidelity: preserved means/variances/correlations and the accuracy of
// random subdomain (range) COUNT queries.
//
//   ./build/examples/hospital_discharge [num_records]

#include <cstdio>
#include <cstdlib>

#include "data/generator.h"
#include "data/stats.h"
#include "tcm/api.h"
#include "utility/info_loss.h"
#include "utility/query.h"

int main(int argc, char** argv) {
  tcm::PatientDischargeOptions gen_options;
  gen_options.num_records = 6000;  // keep the demo fast; pass n to scale up
  if (argc > 1) {
    gen_options.num_records = static_cast<size_t>(std::strtoul(argv[1],
                                                               nullptr, 10));
  }
  tcm::Dataset data = tcm::MakePatientDischargeLike(gen_options);
  std::printf("patient-discharge-like: n=%zu, QI R=%.3f\n", data.NumRecords(),
              tcm::QiConfidentialCorrelation(data));

  tcm::JobSpec spec;
  spec.algorithm.name = "tclose_first";
  spec.algorithm.k = 3;
  spec.algorithm.t = 0.1;
  spec.execution.threads = 4;
  auto report = tcm::RunJob(data, spec);
  if (!report.ok()) {
    std::fprintf(stderr, "anonymization failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("clusters=%zu  size(min/avg/max)=%zu/%.1f/%zu  maxEMD=%.4f  "
              "SSE=%.4f  %zu shard(s) on %zu thread(s)  %.2fs\n\n",
              report->clusters, report->min_cluster_size,
              report->average_cluster_size, report->max_cluster_size,
              report->max_cluster_emd, report->normalized_sse,
              report->num_shards, report->threads,
              report->anonymize_seconds);
  const tcm::Dataset& release = *report->release;

  auto stats = tcm::EvaluateStatisticsPreservation(data, release);
  if (stats.ok()) {
    std::printf("%-16s %12s %12s %12s\n", "QI attribute", "|d mean|",
                "var ratio", "range ratio");
    for (const auto& attr : stats->attributes) {
      std::printf("%-16s %12.4f %12.4f %12.4f\n", attr.name.c_str(),
                  attr.mean_absolute_error, attr.variance_ratio,
                  attr.range_ratio);
    }
    std::printf("pairwise QI correlation MAD       : %.4f\n",
                stats->correlation_mad);
    std::printf("QI<->confidential correlation MAD : %.4f\n\n",
                stats->qi_confidential_correlation_mad);
  }

  tcm::RangeQueryOptions query_options;
  query_options.num_queries = 300;
  query_options.selectivity = 0.4;
  auto queries = tcm::EvaluateRangeQueries(data, release, query_options);
  if (queries.ok()) {
    std::printf("range COUNT queries (%zu, selectivity %.0f%%): "
                "mean abs err=%.2f  mean rel err=%.2f%%  max abs err=%.0f\n",
                queries->num_queries, query_options.selectivity * 100,
                queries->mean_absolute_error,
                queries->mean_relative_error * 100,
                queries->max_absolute_error);
  }
  return 0;
}
