// Audit example: the receiving side of a data release. Given an original
// data set and a candidate anonymized release, run the full verifier
// battery — the syntactic models (k-anonymity, t-closeness,
// (n,t)-closeness, l-diversity, p-sensitivity), the empirical attacks
// (record linkage, interval disclosure) and the utility measures (SSE,
// statistics preservation, range queries, pMSE) — and print a one-page
// audit report.
//
//   ./build/examples/audit

#include <cstdio>

#include "data/generator.h"
#include "privacy/interval_disclosure.h"
#include "privacy/kanonymity.h"
#include "privacy/ldiversity.h"
#include "privacy/linkage.h"
#include "privacy/ntcloseness.h"
#include "privacy/psensitive.h"
#include "privacy/tcloseness.h"
#include "tcm/api.h"
#include "utility/pmse.h"
#include "utility/query.h"
#include "utility/sse.h"

int main() {
  // Produce a release to audit through the Job API (a real auditor would
  // load two CSVs; the report's JSON doubles as the producer-side trail).
  tcm::Dataset original = tcm::MakeMcdDataset();
  tcm::JobSpec spec;
  spec.algorithm.k = 5;
  spec.algorithm.t = 0.1;
  spec.execution.shard_size = 0;
  auto produced = tcm::RunJob(original, spec);
  if (!produced.ok()) {
    std::fprintf(stderr, "%s\n", produced.status().ToString().c_str());
    return 1;
  }
  const tcm::Dataset& release = *produced->release;

  std::printf("=== privacy models =====================================\n");
  auto k_anon = tcm::EvaluateKAnonymity(release);
  if (k_anon.ok()) {
    std::printf("k-anonymity        : k=%zu (%zu classes, avg %.1f)\n",
                k_anon->min_class_size, k_anon->num_equivalence_classes,
                k_anon->average_class_size);
  }
  auto t_close = tcm::EvaluateTCloseness(release);
  if (t_close.ok()) {
    std::printf("t-closeness        : max EMD %.4f, mean %.4f\n",
                t_close->max_emd, t_close->mean_emd);
  }
  auto nt = tcm::EvaluateNTCloseness(release, /*min_superset_size=*/200);
  if (nt.ok()) {
    std::printf("(200,t)-closeness  : max EMD %.4f (local supersets)\n",
                nt->max_emd);
  }
  auto diversity = tcm::EvaluateLDiversity(release);
  if (diversity.ok()) {
    std::printf("l-diversity        : distinct %zu, entropy-l %.2f\n",
                diversity->min_distinct_values, diversity->min_entropy_l);
  }
  auto p = tcm::MaxSensitiveP(release);
  if (p.ok()) {
    std::printf("p-sensitivity      : p=%zu\n", *p);
  }

  std::printf("\n=== empirical attacks ==================================\n");
  auto linkage = tcm::EvaluateLinkageRisk(original, release);
  if (linkage.ok()) {
    std::printf("record linkage     : E[reid] = %.4f (1/k bound %.4f)\n",
                linkage->expected_reidentification_rate,
                1.0 / static_cast<double>(spec.algorithm.k));
  }
  auto interval = tcm::EvaluateIntervalDisclosure(original, release, 0.01);
  if (interval.ok()) {
    std::printf("interval disclosure: %.2f%% of QI cells within 1%% ranks\n",
                interval->disclosure_rate * 100);
  }

  std::printf("\n=== utility ============================================\n");
  auto sse = tcm::NormalizedSse(original, release);
  if (sse.ok()) {
    std::printf("normalized SSE     : %.5f\n", *sse);
  }
  auto queries = tcm::EvaluateRangeQueries(original, release);
  if (queries.ok()) {
    std::printf("range queries      : mean rel err %.2f%%\n",
                queries->mean_relative_error * 100);
  }
  auto pmse = tcm::PropensityMse(original, release);
  if (pmse.ok()) {
    std::printf("pMSE               : %.5f (0 = indistinguishable)\n",
                *pmse);
  }

  std::printf("\n=== machine-readable ===================================\n");
  std::printf("%s\n", produced->ToJsonText().c_str());
  return 0;
}
