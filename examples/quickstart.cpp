// Quickstart: anonymize a small synthetic microdata set so that it is both
// 5-anonymous and 0.15-close, then verify the guarantees with the privacy
// checkers. Build and run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "data/generator.h"
#include "privacy/kanonymity.h"
#include "privacy/tcloseness.h"
#include "tclose/anonymizer.h"

int main() {
  // 1. Get a microdata set. Real applications load a CSV (see the
  //    csv_pipeline example); here we synthesize 500 records with three
  //    quasi-identifiers and one confidential attribute.
  tcm::Dataset data = tcm::MakeUniformDataset(/*num_records=*/500,
                                              /*num_quasi_identifiers=*/3,
                                              /*seed=*/42);

  // 2. Configure the anonymizer: k-anonymity level, t-closeness level and
  //    which of the paper's three algorithms to run. t-closeness-first
  //    (Algorithm 3) is the recommended default: best utility, fastest.
  tcm::AnonymizerOptions options;
  options.k = 5;
  options.t = 0.15;
  options.algorithm = tcm::TCloseAlgorithm::kTClosenessFirst;

  auto result = tcm::Anonymize(data, options);
  if (!result.ok()) {
    std::fprintf(stderr, "anonymization failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("algorithm          : %s\n",
              tcm::TCloseAlgorithmName(options.algorithm));
  std::printf("clusters           : %zu\n",
              result->partition.NumClusters());
  std::printf("cluster sizes      : min=%zu avg=%.2f max=%zu\n",
              result->min_cluster_size, result->average_cluster_size,
              result->max_cluster_size);
  std::printf("effective k (Eq.3) : %zu\n", result->effective_k);
  std::printf("max cluster EMD    : %.4f (required <= %.2f)\n",
              result->max_cluster_emd, options.t);
  std::printf("normalized SSE     : %.4f\n", result->normalized_sse);
  std::printf("elapsed            : %.3f s\n", result->elapsed_seconds);

  // 3. Independently verify the release: the checkers look only at the
  //    anonymized data set, exactly like an auditor would.
  auto k_anon = tcm::IsKAnonymous(result->anonymized, options.k);
  auto t_close = tcm::IsTClose(result->anonymized, options.t);
  if (!k_anon.ok() || !t_close.ok()) {
    std::fprintf(stderr, "verification failed to run\n");
    return 1;
  }
  std::printf("verified %zu-anonymous : %s\n", options.k,
              *k_anon ? "yes" : "NO");
  std::printf("verified %.2f-close    : %s\n", options.t,
              *t_close ? "yes" : "NO");
  return (*k_anon && *t_close) ? 0 : 1;
}
