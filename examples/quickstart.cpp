// Quickstart: anonymize a small synthetic microdata set so that it is
// both 5-anonymous and 0.15-close, using the public Job API (tcm/api.h)
// — a JobSpec in, a RunReport out — then independently verify the
// guarantees the way an auditor would. Build and run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "tcm/api.h"

int main() {
  // 1. Describe the job. The same spec could have come from a job.json
  //    (JobSpec::FromJsonFile) — this is the programmatic spelling.
  //    "uniform" synthesizes 500 records with three quasi-identifiers
  //    and one confidential attribute; real applications point
  //    input.kind at a CSV instead (see the csv_pipeline example).
  tcm::JobSpec spec;
  spec.input.kind = tcm::InputKind::kSynthetic;
  spec.input.generator = "uniform";
  spec.input.rows = 500;
  spec.input.quasi_identifiers = 3;
  spec.input.seed = 42;
  spec.algorithm.name = "tclose_first";  // Algorithm 3: best utility
  spec.algorithm.k = 5;
  spec.algorithm.t = 0.15;
  spec.verify = true;

  // 2. Run it. The report carries the measurements and (for in-memory
  //    jobs) the release itself.
  auto report = tcm::RunJob(spec);
  if (!report.ok()) {
    std::fprintf(stderr, "anonymization failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  std::printf("algorithm          : %s\n", report->algorithm.c_str());
  std::printf("clusters           : %zu\n", report->clusters);
  std::printf("cluster sizes      : min=%zu avg=%.2f max=%zu\n",
              report->min_cluster_size, report->average_cluster_size,
              report->max_cluster_size);
  std::printf("max cluster EMD    : %.4f (required <= %.2f)\n",
              report->max_cluster_emd, spec.algorithm.t);
  std::printf("normalized SSE     : %.4f\n", report->normalized_sse);
  std::printf("elapsed            : %.3f s\n", report->total_seconds);

  // 3. Independently re-verify the release: VerifyRelease looks only at
  //    the anonymized data set and answers with a structured error code
  //    (kPrivacyViolation) instead of a string to match on.
  tcm::Status audit = tcm::VerifyRelease(*report->release, spec.algorithm.k,
                                         spec.algorithm.t);
  std::printf("verified %zu-anonymous and %.2f-close: %s\n",
              spec.algorithm.k, spec.algorithm.t,
              audit.ok() ? "yes" : audit.ToString().c_str());
  return audit.ok() ? 0 : 1;
}
