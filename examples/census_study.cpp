// Census study: reproduces the paper's Section 8.1 setting on the
// synthetic census-like data (MCD: moderately correlated confidential
// attribute; HCD: highly correlated). For a few (k, t) combinations it
// compares the three algorithms on achieved cluster sizes, t-closeness,
// utility (normalized SSE, Eq. 5) and empirical re-identification risk.
//
//   ./build/examples/census_study

#include <cstdio>
#include <vector>

#include "data/generator.h"
#include "data/stats.h"
#include "privacy/linkage.h"
#include "tclose/anonymizer.h"

namespace {

void RunOne(const char* dataset_name, const tcm::Dataset& data, size_t k,
            double t) {
  static constexpr tcm::TCloseAlgorithm kAlgorithms[] = {
      tcm::TCloseAlgorithm::kMicroaggregationMerge,
      tcm::TCloseAlgorithm::kKAnonymityFirst,
      tcm::TCloseAlgorithm::kTClosenessFirst,
  };
  for (tcm::TCloseAlgorithm algorithm : kAlgorithms) {
    tcm::AnonymizerOptions options;
    options.k = k;
    options.t = t;
    options.algorithm = algorithm;
    auto result = tcm::Anonymize(data, options);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n",
                   tcm::TCloseAlgorithmName(algorithm),
                   result.status().ToString().c_str());
      continue;
    }
    auto linkage = tcm::EvaluateLinkageRisk(data, result->anonymized);
    double reid = linkage.ok() ? linkage->expected_reidentification_rate : -1;
    std::printf(
        "%-4s k=%-3zu t=%-5.2f %-24s size(min/avg)=%zu/%.1f  maxEMD=%.4f  "
        "SSE=%.4f  reid=%.4f  %.2fs\n",
        dataset_name, k, t, tcm::TCloseAlgorithmName(algorithm),
        result->min_cluster_size, result->average_cluster_size,
        result->max_cluster_emd, result->normalized_sse, reid,
        result->elapsed_seconds);
  }
}

}  // namespace

int main() {
  tcm::Dataset mcd = tcm::MakeMcdDataset();
  tcm::Dataset hcd = tcm::MakeHcdDataset();
  std::printf("MCD: n=%zu, QI<->confidential correlation R=%.3f\n",
              mcd.NumRecords(), tcm::QiConfidentialCorrelation(mcd));
  std::printf("HCD: n=%zu, QI<->confidential correlation R=%.3f\n\n",
              hcd.NumRecords(), tcm::QiConfidentialCorrelation(hcd));

  const std::vector<std::pair<size_t, double>> settings = {
      {2, 0.05}, {2, 0.15}, {5, 0.10}, {10, 0.25}};
  for (const auto& [k, t] : settings) {
    RunOne("MCD", mcd, k, t);
    RunOne("HCD", hcd, k, t);
    std::printf("\n");
  }
  return 0;
}
