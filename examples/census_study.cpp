// Census study: reproduces the paper's Section 8.1 setting on the
// synthetic census-like data (MCD: moderately correlated confidential
// attribute; HCD: highly correlated). For a few (k, t) combinations it
// compares the three paper algorithms — addressed by their registry
// names through the Job API — on achieved cluster sizes, t-closeness,
// utility (normalized SSE, Eq. 5) and empirical re-identification risk
// (which needs the release itself, so each cell runs as its own
// in-memory job rather than a sweep).
//
//   ./build/examples/census_study

#include <cstdio>
#include <vector>

#include "data/generator.h"
#include "data/stats.h"
#include "privacy/linkage.h"
#include "tcm/api.h"

namespace {

void RunOne(const char* dataset_name, const tcm::Dataset& data, size_t k,
            double t) {
  static constexpr const char* kAlgorithms[] = {
      "merge",        // Algorithm 1: microaggregation + merge
      "kanon_first",  // Algorithm 2: k-anonymity first
      "tclose_first", // Algorithm 3: t-closeness first
  };
  for (const char* algorithm : kAlgorithms) {
    tcm::JobSpec spec;
    spec.algorithm.name = algorithm;
    spec.algorithm.k = k;
    spec.algorithm.t = t;
    spec.execution.shard_size = 0;  // study the unsharded algorithms
    spec.verify = false;            // measured below via the release
    auto report = tcm::RunJob(data, spec);
    if (!report.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", algorithm,
                   report.status().ToString().c_str());
      continue;
    }
    auto linkage = tcm::EvaluateLinkageRisk(data, *report->release);
    double reid = linkage.ok() ? linkage->expected_reidentification_rate : -1;
    std::printf(
        "%-4s k=%-3zu t=%-5.2f %-24s size(min/avg)=%zu/%.1f  maxEMD=%.4f  "
        "SSE=%.4f  reid=%.4f  %.2fs\n",
        dataset_name, k, t, algorithm, report->min_cluster_size,
        report->average_cluster_size, report->max_cluster_emd,
        report->normalized_sse, reid, report->anonymize_seconds);
  }
}

}  // namespace

int main() {
  tcm::Dataset mcd = tcm::MakeMcdDataset();
  tcm::Dataset hcd = tcm::MakeHcdDataset();
  std::printf("MCD: n=%zu, QI<->confidential correlation R=%.3f\n",
              mcd.NumRecords(), tcm::QiConfidentialCorrelation(mcd));
  std::printf("HCD: n=%zu, QI<->confidential correlation R=%.3f\n\n",
              hcd.NumRecords(), tcm::QiConfidentialCorrelation(hcd));

  const std::vector<std::pair<size_t, double>> settings = {
      {2, 0.05}, {2, 0.15}, {5, 0.10}, {10, 0.25}};
  for (const auto& [k, t] : settings) {
    RunOne("MCD", mcd, k, t);
    RunOne("HCD", hcd, k, t);
    std::printf("\n");
  }
  return 0;
}
