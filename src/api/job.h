#ifndef TCM_API_JOB_H_
#define TCM_API_JOB_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "tclose/merge.h"

namespace tcm {

class Dataset;
class RecordSource;

// ---------------------------------------------------------------------------
// JobSpec: the one versioned description of an anonymization job, the
// public API boundary of this library. It subsumes the engine's sibling
// entry points — PipelineSpec (in-memory), StreamingSpec (out-of-core)
// and RunBatch (parameter sweeps) — which remain thin internals the
// facade lowers onto (api/runner.h). A JobSpec round-trips through JSON
// (FromJson/ToJson) with strict unknown-key and type validation, so
// config-driven deployments, services and the CLI all speak the same
// schema. See README.md ("API") for the documented job.json layout.
// ---------------------------------------------------------------------------

// Where the records come from. kCsvPath and kSynthetic serialize to
// JSON; kDataset and kRecordSource are programmatic-only (in-process
// callers handing over live objects) and are rejected by FromJson.
enum class InputKind { kCsvPath, kSynthetic, kDataset, kRecordSource };

// On-disk encoding of a file input (kCsvPath): the CSV text format, or
// the .tcmb columnar binary format (colstore/tcmb.h) produced by
// `tcm_anonymize --convert`. A .tcmb input memory-maps zero-copy, carries
// its own schema (including categorical dictionaries), and yields
// byte-identical releases to the CSV it was converted from.
enum class InputFormat { kCsv, kTcmb };

// How the job executes: fully in memory through PipelineRunner, or
// window by window through StreamingPipelineRunner under a bounded
// resident-row budget.
enum class ExecutionMode { kInMemory, kStreaming };

const char* InputKindName(InputKind kind);
const char* InputFormatName(InputFormat format);
const char* ExecutionModeName(ExecutionMode mode);

struct JobInput {
  InputKind kind = InputKind::kCsvPath;

  // kCsvPath: numeric CSV with a header row, or a .tcmb columnar file
  // when format is kTcmb. Relative paths resolve against the process
  // working directory.
  std::string path;
  InputFormat format = InputFormat::kCsv;

  // kSynthetic: one of the library's generators —
  //   "uniform", "clustered"           (streaming-capable)
  //   "mcd", "hcd", "adult", "patient_discharge"  (in-memory only)
  // rows/quasi_identifiers/modes/seed parameterize them; generators that
  // fix a parameter (e.g. mcd's schema) ignore the inapplicable fields.
  std::string generator = "uniform";
  size_t rows = 1000;
  size_t quasi_identifiers = 2;
  size_t modes = 4;  // clustered only
  uint64_t seed = 1;

  // kDataset / kRecordSource: non-owning; the object must outlive RunJob.
  const Dataset* dataset = nullptr;
  RecordSource* source = nullptr;
};

// Column roles, assigned by name against the input's schema. May stay
// empty for inputs whose schema already carries roles (datasets, record
// sources, every synthetic generator); must name real columns for CSV
// inputs.
struct JobRoles {
  std::vector<std::string> quasi_identifiers;
  std::string confidential;
};

// The anonymization algorithm and its privacy parameters.
struct JobAlgorithm {
  std::string name = "tclose_first";  // any AlgorithmRegistry name
  size_t k = 5;
  double t = 0.1;
  uint64_t seed = 1;
};

// Execution shape: mode, parallelism and memory budget.
struct JobExecution {
  ExecutionMode mode = ExecutionMode::kInMemory;
  size_t threads = 1;        // 0 = one per hardware thread
  size_t shard_size = 4096;  // rows per shard; 0 disables sharding
  // Streaming only: resident input-row budget (see engine/streaming.h).
  size_t max_resident_rows = 200000;
  // Engine for the global t-closeness repair pass: "sequential" is the
  // byte-stable legacy loop, "hierarchical" repairs deterministic
  // subtrees in parallel with EMD-bound pruning (reproducible at any
  // thread count, but legitimately different release bytes). See
  // ShardedAnonymizeOptions::merge_strategy.
  MergeStrategy merge_strategy = MergeStrategy::kSequential;
  // Streaming only: overlap the next window's read/parse with the
  // current window's processing (see StreamingSpec::overlap_io; halves
  // the window target to stay inside max_resident_rows).
  bool overlap_io = false;
};

// Optional parameter-sweep fan-out: the cross product of algorithms x ks
// x ts runs as one batch (in-memory only) and the report carries one
// outcome per cell. Empty lists default to the spec's own algorithm
// section, so a sweep over just ks is `{"ks": [2, 5, 10]}`. Sweeps
// MEASURE without keeping or verifying releases (`verify` does not
// apply, and RunReport.verify_requested stays false): publish the
// winning cell as its own non-sweep job to get a verified release.
struct JobSweep {
  std::vector<std::string> algorithms;
  std::vector<size_t> ks;
  std::vector<double> ts;
};

// Output sinks. Empty paths skip the corresponding write.
struct JobOutput {
  std::string release_path;  // anonymized CSV
  std::string report_path;   // machine-readable RunReport JSON
  // Chrome trace-event JSON of the run (obs/trace.h). Naming a path
  // enables tracing for the duration of the job; open the file in
  // chrome://tracing or https://ui.perfetto.dev.
  std::string trace_path;
};

struct JobSpec {
  // The schema version this library reads and writes. FromJson rejects
  // documents with any other "version".
  static constexpr int kVersion = 1;

  int version = kVersion;
  JobInput input;
  JobRoles roles;
  JobAlgorithm algorithm;
  JobExecution execution;
  // Re-check the release (every window, when streaming) with the
  // independent privacy evaluators; a failure is kPrivacyViolation.
  // Sweeps ignore this: they measure cells without producing releases.
  bool verify = true;
  JobOutput output;
  std::optional<JobSweep> sweep;

  // Strict deserialization: unknown keys anywhere, wrong JSON types,
  // out-of-range parameters (k = 0, t < 0, ...) and unsupported version
  // all fail with StatusCode::kInvalidSpec and a message naming the
  // offending key. An unregistered algorithm name fails with
  // kUnknownAlgorithm (listing the registered names).
  static Result<JobSpec> FromJson(const JsonValue& json);
  static Result<JobSpec> FromJsonText(std::string_view text);
  static Result<JobSpec> FromJsonFile(const std::string& path);

  // Serialization. Programmatic input kinds serialize with their kind
  // name ("dataset"/"record_source") so reports can echo the spec, but
  // such documents are rejected on the way back in.
  JsonValue ToJson() const;
  std::string ToJsonText(int indent = 2) const;

  // Semantic validation shared by FromJson and RunJob: parameter ranges,
  // kind/mode compatibility (e.g. only uniform/clustered generators can
  // stream), sweep contents, registered algorithm names. kInvalidSpec or
  // kUnknownAlgorithm on failure.
  Status Validate() const;
};

}  // namespace tcm

#endif  // TCM_API_JOB_H_
