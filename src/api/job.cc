#include "api/job.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "engine/registry.h"

namespace tcm {
namespace {

constexpr std::string_view kStreamingGenerators[] = {"uniform", "clustered"};
constexpr std::string_view kGenerators[] = {
    "uniform", "clustered", "mcd", "hcd", "adult", "patient_discharge"};

bool IsKnownGenerator(const std::string& name) {
  return std::find(std::begin(kGenerators), std::end(kGenerators), name) !=
         std::end(kGenerators);
}

bool IsStreamingGenerator(const std::string& name) {
  return std::find(std::begin(kStreamingGenerators),
                   std::end(kStreamingGenerators),
                   name) != std::end(kStreamingGenerators);
}

Status SpecError(std::string message) {
  return Status::InvalidSpec(std::move(message));
}

// Every key of `object` must be in `allowed`; the error names the first
// stray key and the accepted set, so typos surface immediately instead of
// being silently ignored.
Status CheckKeys(const JsonValue& object, const std::string& context,
                 std::initializer_list<std::string_view> allowed) {
  for (const JsonValue::Member& member : object.members()) {
    if (std::find(allowed.begin(), allowed.end(), member.first) ==
        allowed.end()) {
      std::string keys;
      for (std::string_view key : allowed) {
        if (!keys.empty()) keys += ", ";
        keys += key;
      }
      return SpecError("unknown key \"" + member.first + "\" in " + context +
                       "; allowed keys: " + keys);
    }
  }
  return Status::Ok();
}

Status RequireObject(const JsonValue& value, const std::string& context) {
  if (!value.is_object()) {
    return SpecError(context + " must be a JSON object");
  }
  return Status::Ok();
}

// Field readers: absent keys keep the default already in *out; present
// keys must have the right type, and errors carry the "section.key" path.
Status ReadString(const JsonValue& object, const std::string& context,
                  std::string_view key, std::string* out) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr) return Status::Ok();
  auto text = value->GetString();
  if (!text.ok()) {
    return SpecError(context + "." + std::string(key) + ": " +
                     text.status().message());
  }
  *out = std::move(text).value();
  return Status::Ok();
}

Status ReadBool(const JsonValue& object, const std::string& context,
                std::string_view key, bool* out) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr) return Status::Ok();
  auto parsed = value->GetBool();
  if (!parsed.ok()) {
    return SpecError(context + "." + std::string(key) + ": " +
                     parsed.status().message());
  }
  *out = parsed.value();
  return Status::Ok();
}

Status ReadSize(const JsonValue& object, const std::string& context,
                std::string_view key, size_t* out) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr) return Status::Ok();
  auto parsed = value->GetUint();
  if (!parsed.ok()) {
    return SpecError(context + "." + std::string(key) + ": " +
                     parsed.status().message());
  }
  *out = static_cast<size_t>(parsed.value());
  return Status::Ok();
}

Status ReadUint64(const JsonValue& object, const std::string& context,
                  std::string_view key, uint64_t* out) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr) return Status::Ok();
  auto parsed = value->GetUint();
  if (!parsed.ok()) {
    return SpecError(context + "." + std::string(key) + ": " +
                     parsed.status().message());
  }
  *out = parsed.value();
  return Status::Ok();
}

Status ReadDouble(const JsonValue& object, const std::string& context,
                  std::string_view key, double* out) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr) return Status::Ok();
  auto parsed = value->GetNumber();
  if (!parsed.ok()) {
    return SpecError(context + "." + std::string(key) + ": " +
                     parsed.status().message());
  }
  *out = parsed.value();
  return Status::Ok();
}

Status ReadStringList(const JsonValue& object, const std::string& context,
                      std::string_view key, std::vector<std::string>* out) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr) return Status::Ok();
  if (!value->is_array()) {
    return SpecError(context + "." + std::string(key) +
                     ": expected an array of strings");
  }
  std::vector<std::string> items;
  for (const JsonValue& element : value->items()) {
    auto text = element.GetString();
    if (!text.ok()) {
      return SpecError(context + "." + std::string(key) + ": " +
                       text.status().message());
    }
    items.push_back(std::move(text).value());
  }
  *out = std::move(items);
  return Status::Ok();
}

Status ReadSizeList(const JsonValue& object, const std::string& context,
                    std::string_view key, std::vector<size_t>* out) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr) return Status::Ok();
  if (!value->is_array()) {
    return SpecError(context + "." + std::string(key) +
                     ": expected an array of non-negative integers");
  }
  std::vector<size_t> items;
  for (const JsonValue& element : value->items()) {
    auto parsed = element.GetUint();
    if (!parsed.ok()) {
      return SpecError(context + "." + std::string(key) + ": " +
                       parsed.status().message());
    }
    items.push_back(static_cast<size_t>(parsed.value()));
  }
  *out = std::move(items);
  return Status::Ok();
}

Status ReadDoubleList(const JsonValue& object, const std::string& context,
                      std::string_view key, std::vector<double>* out) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr) return Status::Ok();
  if (!value->is_array()) {
    return SpecError(context + "." + std::string(key) +
                     ": expected an array of numbers");
  }
  std::vector<double> items;
  for (const JsonValue& element : value->items()) {
    auto parsed = element.GetNumber();
    if (!parsed.ok()) {
      return SpecError(context + "." + std::string(key) + ": " +
                       parsed.status().message());
    }
    items.push_back(parsed.value());
  }
  *out = std::move(items);
  return Status::Ok();
}

Status ParseInput(const JsonValue& json, JobInput* input) {
  TCM_RETURN_IF_ERROR(RequireObject(json, "input"));
  std::string kind = "csv";
  TCM_RETURN_IF_ERROR(ReadString(json, "input", "kind", &kind));
  if (kind == "csv") {
    input->kind = InputKind::kCsvPath;
    TCM_RETURN_IF_ERROR(CheckKeys(json, "input (kind \"csv\")",
                                  {"kind", "path", "format"}));
    TCM_RETURN_IF_ERROR(ReadString(json, "input", "path", &input->path));
    std::string format = InputFormatName(input->format);
    TCM_RETURN_IF_ERROR(ReadString(json, "input", "format", &format));
    if (format == "csv") {
      input->format = InputFormat::kCsv;
    } else if (format == "tcmb") {
      input->format = InputFormat::kTcmb;
    } else {
      return SpecError("input.format must be \"csv\" or \"tcmb\", got \"" +
                       format + "\"");
    }
  } else if (kind == "synthetic") {
    input->kind = InputKind::kSynthetic;
    TCM_RETURN_IF_ERROR(CheckKeys(
        json, "input (kind \"synthetic\")",
        {"kind", "generator", "rows", "quasi_identifiers", "modes", "seed"}));
    TCM_RETURN_IF_ERROR(
        ReadString(json, "input", "generator", &input->generator));
    TCM_RETURN_IF_ERROR(ReadSize(json, "input", "rows", &input->rows));
    TCM_RETURN_IF_ERROR(ReadSize(json, "input", "quasi_identifiers",
                                 &input->quasi_identifiers));
    TCM_RETURN_IF_ERROR(ReadSize(json, "input", "modes", &input->modes));
    TCM_RETURN_IF_ERROR(ReadUint64(json, "input", "seed", &input->seed));
  } else if (kind == "dataset" || kind == "record_source") {
    return SpecError("input.kind \"" + kind +
                     "\" is programmatic-only and cannot be loaded from "
                     "JSON; use \"csv\" or \"synthetic\"");
  } else {
    return SpecError("input.kind must be \"csv\" or \"synthetic\", got \"" +
                     kind + "\"");
  }
  return Status::Ok();
}

Status ParseRoles(const JsonValue& json, JobRoles* roles) {
  TCM_RETURN_IF_ERROR(RequireObject(json, "roles"));
  TCM_RETURN_IF_ERROR(
      CheckKeys(json, "roles", {"quasi_identifiers", "confidential"}));
  TCM_RETURN_IF_ERROR(ReadStringList(json, "roles", "quasi_identifiers",
                                     &roles->quasi_identifiers));
  TCM_RETURN_IF_ERROR(
      ReadString(json, "roles", "confidential", &roles->confidential));
  return Status::Ok();
}

Status ParseAlgorithm(const JsonValue& json, JobAlgorithm* algorithm) {
  TCM_RETURN_IF_ERROR(RequireObject(json, "algorithm"));
  TCM_RETURN_IF_ERROR(
      CheckKeys(json, "algorithm", {"name", "k", "t", "seed"}));
  TCM_RETURN_IF_ERROR(ReadString(json, "algorithm", "name", &algorithm->name));
  TCM_RETURN_IF_ERROR(ReadSize(json, "algorithm", "k", &algorithm->k));
  TCM_RETURN_IF_ERROR(ReadDouble(json, "algorithm", "t", &algorithm->t));
  TCM_RETURN_IF_ERROR(ReadUint64(json, "algorithm", "seed", &algorithm->seed));
  return Status::Ok();
}

Status ParseExecution(const JsonValue& json, JobExecution* execution) {
  TCM_RETURN_IF_ERROR(RequireObject(json, "execution"));
  TCM_RETURN_IF_ERROR(CheckKeys(
      json, "execution",
      {"mode", "threads", "shard_size", "max_resident_rows",
       "merge_strategy", "overlap_io"}));
  std::string mode = ExecutionModeName(execution->mode);
  TCM_RETURN_IF_ERROR(ReadString(json, "execution", "mode", &mode));
  if (mode == "in_memory") {
    execution->mode = ExecutionMode::kInMemory;
  } else if (mode == "streaming") {
    execution->mode = ExecutionMode::kStreaming;
  } else {
    return SpecError(
        "execution.mode must be \"in_memory\" or \"streaming\", got \"" +
        mode + "\"");
  }
  TCM_RETURN_IF_ERROR(ReadSize(json, "execution", "threads",
                               &execution->threads));
  TCM_RETURN_IF_ERROR(ReadSize(json, "execution", "shard_size",
                               &execution->shard_size));
  TCM_RETURN_IF_ERROR(ReadSize(json, "execution", "max_resident_rows",
                               &execution->max_resident_rows));
  std::string strategy = MergeStrategyName(execution->merge_strategy);
  TCM_RETURN_IF_ERROR(
      ReadString(json, "execution", "merge_strategy", &strategy));
  auto parsed = ParseMergeStrategy(strategy);
  if (!parsed.ok()) {
    return SpecError("execution.merge_strategy: " +
                     parsed.status().message());
  }
  execution->merge_strategy = *parsed;
  TCM_RETURN_IF_ERROR(
      ReadBool(json, "execution", "overlap_io", &execution->overlap_io));
  return Status::Ok();
}

Status ParseOutput(const JsonValue& json, JobOutput* output) {
  TCM_RETURN_IF_ERROR(RequireObject(json, "output"));
  TCM_RETURN_IF_ERROR(CheckKeys(json, "output",
                                {"release_path", "report_path", "trace_path"}));
  TCM_RETURN_IF_ERROR(
      ReadString(json, "output", "release_path", &output->release_path));
  TCM_RETURN_IF_ERROR(
      ReadString(json, "output", "report_path", &output->report_path));
  TCM_RETURN_IF_ERROR(
      ReadString(json, "output", "trace_path", &output->trace_path));
  return Status::Ok();
}

Status ParseSweep(const JsonValue& json, JobSweep* sweep) {
  TCM_RETURN_IF_ERROR(RequireObject(json, "sweep"));
  TCM_RETURN_IF_ERROR(CheckKeys(json, "sweep", {"algorithms", "ks", "ts"}));
  TCM_RETURN_IF_ERROR(
      ReadStringList(json, "sweep", "algorithms", &sweep->algorithms));
  TCM_RETURN_IF_ERROR(ReadSizeList(json, "sweep", "ks", &sweep->ks));
  TCM_RETURN_IF_ERROR(ReadDoubleList(json, "sweep", "ts", &sweep->ts));
  return Status::Ok();
}

Status CheckAlgorithmName(const std::string& name) {
  auto found = AlgorithmRegistry::BuiltIns().Find(name);
  if (!found.ok()) {
    // Re-code the registry's NotFound (whose message already lists the
    // registered names) into the public taxonomy.
    return Status::UnknownAlgorithm(found.status().message());
  }
  return Status::Ok();
}

}  // namespace

const char* InputKindName(InputKind kind) {
  switch (kind) {
    case InputKind::kCsvPath:
      return "csv";
    case InputKind::kSynthetic:
      return "synthetic";
    case InputKind::kDataset:
      return "dataset";
    case InputKind::kRecordSource:
      return "record_source";
  }
  return "unknown";
}

const char* InputFormatName(InputFormat format) {
  switch (format) {
    case InputFormat::kCsv:
      return "csv";
    case InputFormat::kTcmb:
      return "tcmb";
  }
  return "unknown";
}

const char* ExecutionModeName(ExecutionMode mode) {
  switch (mode) {
    case ExecutionMode::kInMemory:
      return "in_memory";
    case ExecutionMode::kStreaming:
      return "streaming";
  }
  return "unknown";
}

Result<JobSpec> JobSpec::FromJson(const JsonValue& json) {
  TCM_RETURN_IF_ERROR(RequireObject(json, "job spec"));
  TCM_RETURN_IF_ERROR(CheckKeys(json, "job spec",
                                {"version", "input", "roles", "algorithm",
                                 "execution", "verify", "output", "sweep"}));
  JobSpec spec;
  if (const JsonValue* version = json.Find("version")) {
    auto parsed = version->GetUint();
    if (!parsed.ok()) {
      return SpecError("version: " + parsed.status().message());
    }
    spec.version = static_cast<int>(parsed.value());
  }
  if (spec.version != kVersion) {
    return SpecError("unsupported job spec version " +
                     std::to_string(spec.version) + " (this library reads "
                     "version " + std::to_string(kVersion) + ")");
  }
  if (const JsonValue* input = json.Find("input")) {
    TCM_RETURN_IF_ERROR(ParseInput(*input, &spec.input));
  }
  if (const JsonValue* roles = json.Find("roles")) {
    TCM_RETURN_IF_ERROR(ParseRoles(*roles, &spec.roles));
  }
  if (const JsonValue* algorithm = json.Find("algorithm")) {
    TCM_RETURN_IF_ERROR(ParseAlgorithm(*algorithm, &spec.algorithm));
  }
  if (const JsonValue* execution = json.Find("execution")) {
    TCM_RETURN_IF_ERROR(ParseExecution(*execution, &spec.execution));
  }
  TCM_RETURN_IF_ERROR(ReadBool(json, "job spec", "verify", &spec.verify));
  if (const JsonValue* output = json.Find("output")) {
    TCM_RETURN_IF_ERROR(ParseOutput(*output, &spec.output));
  }
  if (const JsonValue* sweep = json.Find("sweep")) {
    JobSweep parsed;
    TCM_RETURN_IF_ERROR(ParseSweep(*sweep, &parsed));
    spec.sweep = std::move(parsed);
  }
  TCM_RETURN_IF_ERROR(spec.Validate());
  return spec;
}

Result<JobSpec> JobSpec::FromJsonText(std::string_view text) {
  auto parsed = ParseJson(text);
  if (!parsed.ok()) {
    return SpecError("job spec is not valid JSON: " +
                     parsed.status().message());
  }
  return FromJson(parsed.value());
}

Result<JobSpec> JobSpec::FromJsonFile(const std::string& path) {
  auto parsed = ReadJsonFile(path);
  if (!parsed.ok()) {
    if (parsed.status().code() == StatusCode::kIoError) {
      return parsed.status();
    }
    return SpecError("job spec is not valid JSON: " +
                     parsed.status().message());
  }
  return FromJson(parsed.value());
}

JsonValue JobSpec::ToJson() const {
  JsonValue json = JsonValue::MakeObject();
  json.Set("version", version);

  JsonValue input_json = JsonValue::MakeObject();
  input_json.Set("kind", InputKindName(input.kind));
  switch (input.kind) {
    case InputKind::kCsvPath:
      input_json.Set("path", input.path);
      // The default ("csv") is left implicit so existing specs round-trip
      // byte for byte.
      if (input.format != InputFormat::kCsv) {
        input_json.Set("format", InputFormatName(input.format));
      }
      break;
    case InputKind::kSynthetic:
      input_json.Set("generator", input.generator);
      input_json.Set("rows", input.rows);
      input_json.Set("quasi_identifiers", input.quasi_identifiers);
      input_json.Set("modes", input.modes);
      // Exact as a double: Validate bounds seeds at 2^53.
      input_json.Set("seed", static_cast<double>(input.seed));
      break;
    case InputKind::kDataset:
    case InputKind::kRecordSource:
      break;  // programmatic: the kind name alone documents the source
  }
  json.Set("input", std::move(input_json));

  if (!roles.quasi_identifiers.empty() || !roles.confidential.empty()) {
    JsonValue roles_json = JsonValue::MakeObject();
    if (!roles.quasi_identifiers.empty()) {
      JsonValue list = JsonValue::MakeArray();
      for (const std::string& name : roles.quasi_identifiers) {
        list.Append(name);
      }
      roles_json.Set("quasi_identifiers", std::move(list));
    }
    if (!roles.confidential.empty()) {
      roles_json.Set("confidential", roles.confidential);
    }
    json.Set("roles", std::move(roles_json));
  }

  JsonValue algorithm_json = JsonValue::MakeObject();
  algorithm_json.Set("name", algorithm.name);
  algorithm_json.Set("k", algorithm.k);
  algorithm_json.Set("t", algorithm.t);
  algorithm_json.Set("seed", static_cast<double>(algorithm.seed));
  json.Set("algorithm", std::move(algorithm_json));

  JsonValue execution_json = JsonValue::MakeObject();
  execution_json.Set("mode", ExecutionModeName(execution.mode));
  execution_json.Set("threads", execution.threads);
  execution_json.Set("shard_size", execution.shard_size);
  if (execution.mode == ExecutionMode::kStreaming) {
    execution_json.Set("max_resident_rows", execution.max_resident_rows);
  }
  if (execution.merge_strategy != MergeStrategy::kSequential) {
    execution_json.Set("merge_strategy",
                       MergeStrategyName(execution.merge_strategy));
  }
  if (execution.overlap_io) {
    execution_json.Set("overlap_io", execution.overlap_io);
  }
  json.Set("execution", std::move(execution_json));

  json.Set("verify", verify);

  if (!output.release_path.empty() || !output.report_path.empty() ||
      !output.trace_path.empty()) {
    JsonValue output_json = JsonValue::MakeObject();
    if (!output.release_path.empty()) {
      output_json.Set("release_path", output.release_path);
    }
    if (!output.report_path.empty()) {
      output_json.Set("report_path", output.report_path);
    }
    if (!output.trace_path.empty()) {
      output_json.Set("trace_path", output.trace_path);
    }
    json.Set("output", std::move(output_json));
  }

  if (sweep.has_value()) {
    JsonValue sweep_json = JsonValue::MakeObject();
    if (!sweep->algorithms.empty()) {
      JsonValue list = JsonValue::MakeArray();
      for (const std::string& name : sweep->algorithms) list.Append(name);
      sweep_json.Set("algorithms", std::move(list));
    }
    if (!sweep->ks.empty()) {
      JsonValue list = JsonValue::MakeArray();
      for (size_t k : sweep->ks) list.Append(k);
      sweep_json.Set("ks", std::move(list));
    }
    if (!sweep->ts.empty()) {
      JsonValue list = JsonValue::MakeArray();
      for (double t : sweep->ts) list.Append(t);
      sweep_json.Set("ts", std::move(list));
    }
    json.Set("sweep", std::move(sweep_json));
  }
  return json;
}

std::string JobSpec::ToJsonText(int indent) const {
  return ToJson().Write(indent);
}

Status JobSpec::Validate() const {
  if (version != kVersion) {
    return SpecError("unsupported job spec version " +
                     std::to_string(version));
  }

  // Input.
  switch (input.kind) {
    case InputKind::kCsvPath:
      if (input.path.empty()) {
        return SpecError("input.path must name an input file");
      }
      // A .tcmb file carries a full schema and may already carry roles;
      // CSV headers carry names only, so roles are mandatory there.
      if (input.format == InputFormat::kCsv &&
          (roles.quasi_identifiers.empty() || roles.confidential.empty())) {
        return SpecError(
            "CSV input needs roles.quasi_identifiers and "
            "roles.confidential (column names in the header)");
      }
      break;
    case InputKind::kSynthetic:
      if (!IsKnownGenerator(input.generator)) {
        return SpecError(
            "input.generator must be one of uniform, clustered, mcd, hcd, "
            "adult, patient_discharge; got \"" + input.generator + "\"");
      }
      if (input.rows < 2) {
        return SpecError("input.rows must be at least 2");
      }
      if ((input.generator == "uniform" || input.generator == "clustered") &&
          input.quasi_identifiers < 1) {
        return SpecError("input.quasi_identifiers must be at least 1");
      }
      break;
    case InputKind::kDataset:
      if (input.dataset == nullptr) {
        return SpecError("input kind \"dataset\" needs a non-null dataset");
      }
      break;
    case InputKind::kRecordSource:
      if (input.source == nullptr) {
        return SpecError(
            "input kind \"record_source\" needs a non-null source");
      }
      break;
  }
  if (input.format != InputFormat::kCsv &&
      input.kind != InputKind::kCsvPath) {
    return SpecError("input.format applies to file inputs (kind \"csv\") "
                     "only");
  }

  // Algorithm parameters. Sweep cells are checked below; the base section
  // always validates because sweeps fall back to it for empty lists.
  TCM_RETURN_IF_ERROR(CheckAlgorithmName(algorithm.name));
  if (algorithm.k < 1) {
    return SpecError("algorithm.k must be at least 1");
  }
  if (!(algorithm.t >= 0.0)) {  // rejects NaN too
    return SpecError("algorithm.t must be a number >= 0");
  }
  // Seeds serialize as JSON numbers (doubles), which are exact only up
  // to 2^53 — larger values would not survive ToJson -> FromJson, so the
  // whole spec surface rejects them rather than round-tripping lossily.
  constexpr uint64_t kMaxJsonSeed = uint64_t{1} << 53;
  if (algorithm.seed > kMaxJsonSeed) {
    return SpecError("algorithm.seed must be <= 2^53 (seeds travel as "
                     "JSON numbers)");
  }
  if (input.kind == InputKind::kSynthetic && input.seed > kMaxJsonSeed) {
    return SpecError("input.seed must be <= 2^53 (seeds travel as JSON "
                     "numbers)");
  }

  // Execution.
  if (execution.mode == ExecutionMode::kStreaming) {
    if (input.kind == InputKind::kDataset) {
      return SpecError(
          "streaming execution reads a csv, record_source or streaming-"
          "capable synthetic input, not an in-memory dataset");
    }
    if (input.kind == InputKind::kSynthetic &&
        !IsStreamingGenerator(input.generator)) {
      return SpecError("synthetic generator \"" + input.generator +
                       "\" cannot stream; streaming-capable generators: "
                       "uniform, clustered");
    }
    if ((input.kind == InputKind::kSynthetic ||
         input.kind == InputKind::kRecordSource) &&
        (!roles.quasi_identifiers.empty() || !roles.confidential.empty())) {
      return SpecError(
          "synthetic and record-source streaming inputs carry their own "
          "roles (their schemas cannot be rewritten mid-stream); leave "
          "the roles section empty");
    }
    const size_t floor =
        algorithm.k + std::max<size_t>(algorithm.k, 2);
    if (execution.max_resident_rows < floor) {
      return SpecError(
          "execution.max_resident_rows (" +
          std::to_string(execution.max_resident_rows) +
          ") too small: need at least k + max(k, 2) = " +
          std::to_string(floor) + " rows for k = " +
          std::to_string(algorithm.k));
    }
    if (sweep.has_value()) {
      return SpecError("sweep requires in-memory execution");
    }
  } else if (execution.overlap_io) {
    return SpecError("execution.overlap_io applies to streaming "
                     "execution only");
  }

  // Sweep cells.
  if (sweep.has_value()) {
    if (!output.release_path.empty()) {
      return SpecError(
          "sweeps measure without keeping releases; leave "
          "output.release_path empty (run the winning cell as its own "
          "job to publish it)");
    }
    for (const std::string& name : sweep->algorithms) {
      TCM_RETURN_IF_ERROR(CheckAlgorithmName(name));
    }
    for (size_t k : sweep->ks) {
      if (k < 1) return SpecError("sweep.ks entries must be at least 1");
    }
    for (double t : sweep->ts) {
      if (!(t >= 0.0)) {
        return SpecError("sweep.ts entries must be numbers >= 0");
      }
    }
  }
  return Status::Ok();
}

}  // namespace tcm
