#ifndef TCM_API_REPORT_H_
#define TCM_API_REPORT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "api/job.h"
#include "common/json.h"
#include "common/status.h"
#include "data/dataset.h"
#include "engine/streaming.h"

namespace tcm {

// Outcome of one sweep cell (mirrors engine/batch.h's BatchOutcome with
// the cell's coordinates attached). error_code/error are empty on
// success; on failure error_code is the StatusCodeName of the cell's
// status and the measurement fields stay zero.
struct SweepOutcome {
  std::string label;      // "algorithm/k=K/t=T"
  std::string algorithm;
  size_t k = 0;
  double t = 0.0;
  std::string error_code;
  std::string error;
  size_t clusters = 0;
  size_t min_cluster_size = 0;
  size_t max_cluster_size = 0;
  double max_cluster_emd = 0.0;
  double normalized_sse = 0.0;
  double elapsed_seconds = 0.0;
};

// RunReport: the one machine-readable account of a job, a superset of
// the engine's PipelineReport and StreamingReport. Every execution mode
// fills the shared core (rows, cluster stats, verification, timings);
// streaming runs add per-window summaries, sweeps add per-cell outcomes.
// ToJson() serializes everything except the in-memory release dataset;
// all wall-clock fields end in "_seconds" so tooling (and the golden
// report pin) can normalize timings with one pattern.
struct RunReport {
  static constexpr int kVersion = 1;

  int version = kVersion;
  ExecutionMode mode = ExecutionMode::kInMemory;
  bool swept = false;  // true when the job ran a sweep fan-out

  // The algorithm section the job ran with (sweeps: the base section).
  std::string algorithm;
  size_t k = 0;
  double t = 0.0;
  uint64_t seed = 0;

  // Input provenance: "csv" / "tcmb" for file inputs, the input kind
  // name otherwise, plus the zero-copy accounting — bytes served straight
  // from the memory mapping vs bytes copied into row storage while
  // loading. CSV inputs map nothing and copy the whole file.
  std::string input_format;
  size_t input_mapped_bytes = 0;
  size_t input_copied_bytes = 0;

  // Shared measurements.
  size_t rows = 0;
  size_t clusters = 0;  // streaming: summed over windows; sweeps: 0
  size_t min_cluster_size = 0;
  size_t max_cluster_size = 0;
  double average_cluster_size = 0.0;  // in-memory runs only
  double max_cluster_emd = 0.0;
  double normalized_sse = 0.0;

  // Execution shape.
  size_t threads = 1;
  size_t num_shards = 0;
  size_t final_merges = 0;
  size_t num_windows = 0;        // streaming only
  size_t peak_resident_rows = 0; // streaming only
  // Global repair-pass engine and its ledger (see MergeStats): subtree
  // fan-out plus the bound-pruning counters, which always satisfy
  // candidate_checks == pruned_checks + exact_checks.
  MergeStrategy merge_strategy = MergeStrategy::kSequential;
  size_t merge_subtrees = 0;
  size_t subtree_merges = 0;
  size_t tail_merges = 0;
  size_t candidate_checks = 0;
  size_t pruned_checks = 0;
  size_t exact_checks = 0;
  bool overlap_io = false;        // streaming only
  size_t overlapped_reads = 0;    // streaming only

  // Verification verdicts (stay false when verify was off).
  bool verify_requested = false;
  bool k_verified = false;
  bool t_verified = false;

  // Per-stage wall clock. load_seconds covers CSV load / role assignment
  // in-memory and stream reads when streaming.
  double load_seconds = 0.0;
  double anonymize_seconds = 0.0;
  double verify_seconds = 0.0;
  double write_seconds = 0.0;
  double total_seconds = 0.0;

  // Optional finer breakdown of the anonymize stage (insertion-ordered;
  // serialized as the "stage_seconds" object when non-empty). Every key
  // ends in "_seconds" so the golden timing normalization catches these
  // too. Sweeps leave it empty; in-memory and streaming runs report
  // shard / shard_anonymize / merge / metrics splits — the signal the
  // sequential-merge scaling work is judged against.
  std::vector<std::pair<std::string, double>> stage_seconds;

  std::string release_path;  // empty when no release CSV was written

  std::vector<StreamingWindowSummary> windows;  // streaming only
  std::vector<SweepOutcome> sweep;              // sweeps only

  // In-memory (non-sweep) runs keep the release here so programmatic
  // callers can audit or post-process it; never serialized.
  std::optional<Dataset> release;

  JsonValue ToJson() const;
  std::string ToJsonText(int indent = 2) const;
};

}  // namespace tcm

#endif  // TCM_API_REPORT_H_
