#include "api/runner.h"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "colstore/column_table.h"
#include "colstore/columnar_source.h"
#include "colstore/tcmb.h"
#include "common/strings.h"
#include "common/timer.h"
#include "data/csv.h"
#include "data/csv_stream.h"
#include "data/generator.h"
#include "engine/batch.h"
#include "engine/pipeline.h"
#include "engine/streaming.h"
#include "obs/trace.h"

namespace tcm {
namespace {

Dataset MakeSyntheticDataset(const JobInput& input) {
  if (input.generator == "uniform") {
    return MakeUniformDataset(input.rows, input.quasi_identifiers,
                              input.seed);
  }
  if (input.generator == "clustered") {
    return MakeClusteredDataset(input.rows, input.quasi_identifiers,
                                input.modes, input.seed);
  }
  if (input.generator == "mcd") {
    return MakeMcdDataset({.num_records = input.rows, .seed = input.seed});
  }
  if (input.generator == "hcd") {
    return MakeHcdDataset({.num_records = input.rows, .seed = input.seed});
  }
  if (input.generator == "adult") {
    return MakeAdultLike({.num_records = input.rows, .seed = input.seed});
  }
  // Validate() restricted the name, so this is the only one left.
  return MakePatientDischargeLike(
      {.num_records = input.rows, .seed = input.seed});
}

Result<Dataset> DrainSource(RecordSource* source) {
  constexpr size_t kBatch = 65536;
  Dataset out(source->schema());
  while (true) {
    TCM_ASSIGN_OR_RETURN(size_t got, source->ReadInto(&out, kBatch));
    if (got < kBatch) break;
  }
  return out;
}

// Zero-copy accounting carried up into RunReport's "input" object.
struct InputBytes {
  size_t mapped = 0;
  size_t copied = 0;
};

// Logical payload bytes of one materialized row (8 per numeric cell, 4
// per dictionary code): the copy cost of turning columns into Records.
size_t RowPayloadBytes(const Schema& schema) {
  size_t width = 0;
  for (const Attribute& attr : schema.attributes()) {
    width += attr.is_categorical() ? sizeof(int32_t) : sizeof(double);
  }
  return width;
}

// A .tcmb file may carry roles of its own; when neither it nor the spec
// provides both role kinds the job cannot anonymize anything — fail as an
// invalid spec (exit 3 at the CLI) rather than deep inside the engine.
Status CheckTcmbRoles(const Schema& schema) {
  if (schema.QuasiIdentifierIndices().empty() ||
      schema.ConfidentialIndices().empty()) {
    return Status::InvalidSpec(
        ".tcmb input carries no quasi-identifier/confidential roles; set "
        "roles.quasi_identifiers and roles.confidential in the spec");
  }
  return Status::Ok();
}

// Materializes the job's input as an in-memory dataset with the spec's
// roles applied. To avoid copying a caller-provided dataset whose roles
// are already set (the common programmatic path), the result is a
// pointer: either into the spec or into *storage. `bytes` (optional)
// receives the input's map/copy accounting.
Result<const Dataset*> MaterializeDataset(const JobSpec& spec,
                                          Dataset* storage,
                                          InputBytes* bytes = nullptr) {
  switch (spec.input.kind) {
    case InputKind::kCsvPath: {
      if (spec.input.format == InputFormat::kTcmb) {
        TCM_ASSIGN_OR_RETURN(ColumnTable table, ReadTcmb(spec.input.path));
        if (bytes != nullptr) {
          bytes->mapped = table.mapped_bytes();
          bytes->copied = table.copied_bytes() +
                          table.num_rows() * RowPayloadBytes(table.schema());
        }
        *storage = table.ToDataset();
      } else {
        TCM_ASSIGN_OR_RETURN(*storage, ReadNumericCsv(spec.input.path));
        if (bytes != nullptr) {
          std::error_code ec;
          const auto size =
              std::filesystem::file_size(spec.input.path, ec);
          bytes->copied = ec ? 0 : static_cast<size_t>(size);
        }
      }
      break;
    }
    case InputKind::kSynthetic:
      *storage = MakeSyntheticDataset(spec.input);
      break;
    case InputKind::kDataset:
      if (spec.roles.quasi_identifiers.empty() &&
          spec.roles.confidential.empty()) {
        return spec.input.dataset;  // roles kept: no copy needed
      }
      *storage = *spec.input.dataset;
      break;
    case InputKind::kRecordSource: {
      TCM_ASSIGN_OR_RETURN(*storage, DrainSource(spec.input.source));
      break;
    }
  }
  if (!spec.roles.quasi_identifiers.empty() ||
      !spec.roles.confidential.empty()) {
    TCM_RETURN_IF_ERROR(AssignRoles(storage, spec.roles.quasi_identifiers,
                                    spec.roles.confidential));
  }
  if (spec.input.kind == InputKind::kCsvPath &&
      spec.input.format == InputFormat::kTcmb) {
    TCM_RETURN_IF_ERROR(CheckTcmbRoles(storage->schema()));
  }
  return storage;
}

Status RunInMemoryJob(const JobSpec& spec, RunReport* report) {
  PipelineSpec pipeline;
  pipeline.algorithm = spec.algorithm.name;
  pipeline.k = spec.algorithm.k;
  pipeline.t = spec.algorithm.t;
  pipeline.seed = spec.algorithm.seed;
  pipeline.shard_size = spec.execution.shard_size;
  pipeline.merge_strategy = spec.execution.merge_strategy;
  pipeline.verify = spec.verify;
  pipeline.output_path = spec.output.release_path;

  PipelineRunner runner(spec.execution.threads);
  Result<PipelineReport> run = Status::Internal("unreachable");
  if (spec.input.kind == InputKind::kCsvPath &&
      spec.input.format == InputFormat::kCsv) {
    pipeline.input_path = spec.input.path;
    pipeline.quasi_identifiers = spec.roles.quasi_identifiers;
    pipeline.confidential = spec.roles.confidential;
    run = runner.Run(pipeline);
    std::error_code ec;
    const auto size = std::filesystem::file_size(spec.input.path, ec);
    report->input_copied_bytes = ec ? 0 : static_cast<size_t>(size);
  } else {
    Dataset storage;
    InputBytes bytes;
    TCM_ASSIGN_OR_RETURN(const Dataset* data,
                         MaterializeDataset(spec, &storage, &bytes));
    report->input_mapped_bytes = bytes.mapped;
    report->input_copied_bytes = bytes.copied;
    run = runner.Run(*data, pipeline);
  }
  TCM_RETURN_IF_ERROR(run.status());
  PipelineReport& pipeline_report = run.value();

  const AnonymizationResult& result = pipeline_report.result;
  report->rows = result.anonymized.NumRecords();
  report->clusters = result.partition.NumClusters();
  report->min_cluster_size = result.min_cluster_size;
  report->max_cluster_size = result.max_cluster_size;
  report->average_cluster_size = result.average_cluster_size;
  report->max_cluster_emd = result.max_cluster_emd;
  report->normalized_sse = result.normalized_sse;
  report->threads = pipeline_report.threads;
  report->num_shards = pipeline_report.num_shards;
  report->final_merges = pipeline_report.final_merges;
  report->k_verified = pipeline_report.k_verified;
  report->t_verified = pipeline_report.t_verified;
  report->load_seconds = pipeline_report.load_seconds;
  report->anonymize_seconds = pipeline_report.anonymize_seconds;
  report->verify_seconds = pipeline_report.verify_seconds;
  report->write_seconds = pipeline_report.write_seconds;
  report->stage_seconds = {
      {"shard_seconds", pipeline_report.shard_seconds},
      {"shard_anonymize_seconds", pipeline_report.shard_anonymize_seconds},
      {"merge_seconds", pipeline_report.merge_seconds},
      {"metrics_seconds", pipeline_report.metrics_seconds},
  };
  report->merge_subtrees = pipeline_report.merge_subtrees;
  report->subtree_merges = pipeline_report.subtree_merges;
  report->tail_merges = pipeline_report.tail_merges;
  report->candidate_checks = pipeline_report.candidate_checks;
  report->pruned_checks = pipeline_report.pruned_checks;
  report->exact_checks = pipeline_report.exact_checks;
  report->release = std::move(pipeline_report.result.anonymized);
  return Status::Ok();
}

Status RunStreamingJob(const JobSpec& spec, RunReport* report) {
  // Build the record source the spec names.
  std::unique_ptr<StreamingCsvReader> reader;
  std::unique_ptr<ColumnarSource> columnar;
  std::unique_ptr<SyntheticSource> synthetic;
  RecordSource* source = nullptr;
  switch (spec.input.kind) {
    case InputKind::kCsvPath: {
      if (spec.input.format == InputFormat::kTcmb) {
        TCM_ASSIGN_OR_RETURN(columnar, ColumnarSource::Open(spec.input.path));
        if (!spec.roles.quasi_identifiers.empty() ||
            !spec.roles.confidential.empty()) {
          TCM_ASSIGN_OR_RETURN(
              Schema schema,
              SchemaWithRoles(columnar->schema(),
                              spec.roles.quasi_identifiers,
                              spec.roles.confidential));
          TCM_RETURN_IF_ERROR(columnar->ReplaceSchema(std::move(schema)));
        }
        TCM_RETURN_IF_ERROR(CheckTcmbRoles(columnar->schema()));
        source = columnar.get();
        break;
      }
      TCM_ASSIGN_OR_RETURN(reader,
                           StreamingCsvReader::OpenNumeric(spec.input.path));
      TCM_ASSIGN_OR_RETURN(
          Schema schema,
          SchemaWithRoles(reader->schema(), spec.roles.quasi_identifiers,
                          spec.roles.confidential));
      TCM_RETURN_IF_ERROR(reader->ReplaceSchema(std::move(schema)));
      source = reader.get();
      break;
    }
    case InputKind::kSynthetic:
      if (spec.input.generator == "uniform") {
        synthetic = MakeUniformSource(
            spec.input.rows, spec.input.quasi_identifiers, spec.input.seed);
      } else {
        synthetic = MakeClusteredSource(spec.input.rows,
                                        spec.input.quasi_identifiers,
                                        spec.input.modes, spec.input.seed);
      }
      source = synthetic.get();
      break;
    case InputKind::kRecordSource:
      source = spec.input.source;
      break;
    case InputKind::kDataset:
      return Status::InvalidSpec(
          "streaming execution cannot read an in-memory dataset");
  }

  StreamingSpec streaming;
  streaming.algorithm = spec.algorithm.name;
  streaming.k = spec.algorithm.k;
  streaming.t = spec.algorithm.t;
  streaming.seed = spec.algorithm.seed;
  streaming.shard_size = spec.execution.shard_size;
  streaming.max_resident_rows = spec.execution.max_resident_rows;
  streaming.merge_strategy = spec.execution.merge_strategy;
  streaming.overlap_io = spec.execution.overlap_io;
  streaming.verify = spec.verify;
  streaming.output_path = spec.output.release_path;

  StreamingPipelineRunner runner(spec.execution.threads);
  TCM_ASSIGN_OR_RETURN(StreamingReport streaming_report,
                       runner.Run(source, streaming));

  report->rows = streaming_report.total_rows;
  size_t clusters = 0;
  for (const StreamingWindowSummary& window : streaming_report.windows) {
    clusters += window.clusters;
  }
  report->clusters = clusters;
  report->min_cluster_size = streaming_report.min_cluster_size;
  report->max_cluster_size = streaming_report.max_cluster_size;
  report->max_cluster_emd = streaming_report.max_cluster_emd;
  report->normalized_sse = streaming_report.normalized_sse;
  report->threads = streaming_report.threads;
  report->num_shards = streaming_report.num_shards;
  report->final_merges = streaming_report.final_merges;
  report->num_windows = streaming_report.num_windows;
  report->peak_resident_rows = streaming_report.peak_resident_rows;
  report->k_verified = streaming_report.k_verified;
  report->t_verified = streaming_report.t_verified;
  report->load_seconds = streaming_report.read_seconds;
  report->anonymize_seconds = streaming_report.anonymize_seconds;
  report->verify_seconds = streaming_report.verify_seconds;
  report->write_seconds = streaming_report.write_seconds;
  report->stage_seconds = {
      {"shard_seconds", streaming_report.shard_seconds},
      {"shard_anonymize_seconds", streaming_report.shard_anonymize_seconds},
      {"merge_seconds", streaming_report.merge_seconds},
      {"metrics_seconds", streaming_report.metrics_seconds},
  };
  report->merge_subtrees = streaming_report.merge_subtrees;
  report->subtree_merges = streaming_report.subtree_merges;
  report->tail_merges = streaming_report.tail_merges;
  report->candidate_checks = streaming_report.candidate_checks;
  report->pruned_checks = streaming_report.pruned_checks;
  report->exact_checks = streaming_report.exact_checks;
  report->overlapped_reads = streaming_report.overlapped_reads;
  report->windows = std::move(streaming_report.windows);
  if (columnar != nullptr) {
    report->input_mapped_bytes = columnar->mapped_bytes();
    report->input_copied_bytes = columnar->copied_bytes();
  } else if (reader != nullptr) {
    std::error_code ec;
    const auto size = std::filesystem::file_size(spec.input.path, ec);
    report->input_copied_bytes = ec ? 0 : static_cast<size_t>(size);
  }
  return Status::Ok();
}

Status RunSweepJob(const JobSpec& spec, RunReport* report) {
  WallTimer timer;
  Dataset storage;
  InputBytes bytes;
  TCM_ASSIGN_OR_RETURN(const Dataset* data,
                       MaterializeDataset(spec, &storage, &bytes));
  report->input_mapped_bytes = bytes.mapped;
  report->input_copied_bytes = bytes.copied;
  report->load_seconds = timer.ElapsedSeconds();
  report->rows = data->NumRecords();

  const JobSweep& sweep = *spec.sweep;
  const std::vector<std::string> algorithms =
      sweep.algorithms.empty() ? std::vector<std::string>{spec.algorithm.name}
                               : sweep.algorithms;
  const std::vector<size_t> ks =
      sweep.ks.empty() ? std::vector<size_t>{spec.algorithm.k} : sweep.ks;
  const std::vector<double> ts =
      sweep.ts.empty() ? std::vector<double>{spec.algorithm.t} : sweep.ts;

  // One enumeration of the cross product: the coordinates drive both the
  // batch jobs and the outcome rows, so they can never fall out of step.
  struct SweepCell {
    std::string algorithm;
    size_t k;
    double t;
  };
  std::vector<SweepCell> cells;
  cells.reserve(algorithms.size() * ks.size() * ts.size());
  for (const std::string& algorithm : algorithms) {
    for (size_t k : ks) {
      for (double t : ts) cells.push_back({algorithm, k, t});
    }
  }

  std::vector<BatchJob> jobs;
  jobs.reserve(cells.size());
  for (const SweepCell& cell : cells) {
    BatchJob job;
    job.label = cell.algorithm + "/k=" + std::to_string(cell.k) +
                "/t=" + FormatDouble(cell.t);
    job.data = data;
    job.algorithm = cell.algorithm;
    job.params.k = cell.k;
    job.params.t = cell.t;
    job.params.seed = spec.algorithm.seed;
    jobs.push_back(std::move(job));
  }

  ThreadPool pool(spec.execution.threads);
  report->threads = pool.num_threads();
  timer.Restart();
  std::vector<BatchOutcome> outcomes = RunBatch(jobs, &pool);
  // Wall clock of the fan-out; each cell's own time is in its outcome
  // (their sum exceeds this when cells run concurrently).
  report->anonymize_seconds = timer.ElapsedSeconds();

  report->sweep.reserve(outcomes.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    const BatchOutcome& outcome = outcomes[i];
    SweepOutcome out;
    out.label = outcome.label;
    out.algorithm = cells[i].algorithm;
    out.k = cells[i].k;
    out.t = cells[i].t;
    if (!outcome.status.ok()) {
      out.error_code = StatusCodeName(outcome.status.code());
      out.error = outcome.status.message();
    } else {
      out.clusters = outcome.clusters;
      out.min_cluster_size = outcome.min_cluster_size;
      out.max_cluster_size = outcome.max_cluster_size;
      out.max_cluster_emd = outcome.max_cluster_emd;
      out.normalized_sse = outcome.normalized_sse;
      out.elapsed_seconds = outcome.elapsed_seconds;
    }
    report->sweep.push_back(std::move(out));
  }
  return Status::Ok();
}

}  // namespace

Result<RunReport> RunJob(const JobSpec& spec) {
  TCM_RETURN_IF_ERROR(spec.Validate());

  // Trace sink: collect spans for the duration of this job and export
  // them as Chrome trace-event JSON. The recorder is process-global, so
  // concurrent jobs (the serve daemon) share one trace when any of them
  // asks for it.
  std::optional<TraceSink> trace_sink;
  if (!spec.output.trace_path.empty()) {
    trace_sink.emplace(spec.output.trace_path);
  }

  WallTimer total;
  RunReport report;
  report.mode = spec.execution.mode;
  report.swept = spec.sweep.has_value();
  report.algorithm = spec.algorithm.name;
  report.k = spec.algorithm.k;
  report.t = spec.algorithm.t;
  report.seed = spec.algorithm.seed;
  report.merge_strategy = spec.execution.merge_strategy;
  report.overlap_io = spec.execution.overlap_io;
  report.input_format = spec.input.kind == InputKind::kCsvPath
                            ? InputFormatName(spec.input.format)
                            : InputKindName(spec.input.kind);
  report.verify_requested = spec.verify && !report.swept;
  if (!report.swept) report.release_path = spec.output.release_path;

  {
    TraceSpan job_span("job");
    if (report.swept) {
      TCM_RETURN_IF_ERROR(RunSweepJob(spec, &report));
    } else if (spec.execution.mode == ExecutionMode::kStreaming) {
      TCM_RETURN_IF_ERROR(RunStreamingJob(spec, &report));
    } else {
      TCM_RETURN_IF_ERROR(RunInMemoryJob(spec, &report));
    }
  }
  report.total_seconds = total.ElapsedSeconds();

  if (!spec.output.report_path.empty()) {
    TCM_RETURN_IF_ERROR(
        WriteJsonFile(report.ToJson(), spec.output.report_path));
  }
  if (trace_sink.has_value()) {
    TCM_RETURN_IF_ERROR(trace_sink->Finish());
  }
  return report;
}

Result<RunReport> RunJob(const Dataset& data, JobSpec spec) {
  spec.input = JobInput{};
  spec.input.kind = InputKind::kDataset;
  spec.input.dataset = &data;
  return RunJob(spec);
}

Result<RunReport> RunJob(RecordSource* source, JobSpec spec) {
  spec.input = JobInput{};
  spec.input.kind = InputKind::kRecordSource;
  spec.input.source = source;
  return RunJob(spec);
}

Status VerifyRelease(const Dataset& release, size_t k, double t) {
  TCM_ASSIGN_OR_RETURN(ReleaseVerification verification,
                       CheckRelease(release, k, t));
  if (!verification.ok()) return PrivacyViolationError(verification);
  return Status::Ok();
}

}  // namespace tcm
