#ifndef TCM_API_RUNNER_H_
#define TCM_API_RUNNER_H_

#include "api/job.h"
#include "api/report.h"
#include "common/result.h"
#include "data/dataset.h"
#include "data/record_source.h"

namespace tcm {

// Executes one JobSpec end to end and returns its RunReport. This is the
// public entry point the CLI, the examples and external services program
// against; internally it validates the spec (kInvalidSpec /
// kUnknownAlgorithm), lowers it onto PipelineRunner,
// StreamingPipelineRunner or RunBatch, and — when the spec names a
// report_path — writes the JSON report before returning. Failures carry
// the structured taxonomy: kIoError for unreadable inputs/sinks,
// kPrivacyViolation when a verified release fails re-verification.
//
// Determinism: a JobSpec maps onto the engine exactly the way the
// pre-facade spec structs did, so release bytes are unchanged for any
// thread count and for streamed-vs-in-memory single-window runs (pinned
// by tests/golden/).
Result<RunReport> RunJob(const JobSpec& spec);

// Sugar for in-process callers: runs `spec` against a live dataset or
// record source (overriding spec.input). Non-owning; the object must
// outlive the call.
Result<RunReport> RunJob(const Dataset& data, JobSpec spec);
Result<RunReport> RunJob(RecordSource* source, JobSpec spec);

// Independent re-check of a release the way an auditor would: OK when
// `release` is k-anonymous and t-close, kPrivacyViolation naming the
// violated guarantee otherwise. The same check (and code) the verify
// stage applies inside RunJob.
Status VerifyRelease(const Dataset& release, size_t k, double t);

}  // namespace tcm

#endif  // TCM_API_RUNNER_H_
