#include "api/report.h"

#include <utility>

namespace tcm {

JsonValue RunReport::ToJson() const {
  JsonValue json = JsonValue::MakeObject();
  json.Set("version", version);
  json.Set("mode", swept ? "sweep" : ExecutionModeName(mode));

  JsonValue algorithm_json = JsonValue::MakeObject();
  algorithm_json.Set("name", algorithm);
  algorithm_json.Set("k", k);
  algorithm_json.Set("t", t);
  algorithm_json.Set("seed", static_cast<double>(seed));
  json.Set("algorithm", std::move(algorithm_json));

  if (!input_format.empty()) {
    JsonValue input_json = JsonValue::MakeObject();
    input_json.Set("format", input_format);
    input_json.Set("mapped_bytes", input_mapped_bytes);
    input_json.Set("copied_bytes", input_copied_bytes);
    json.Set("input", std::move(input_json));
  }

  json.Set("rows", rows);
  if (!swept) {
    json.Set("clusters", clusters);
    JsonValue sizes = JsonValue::MakeObject();
    sizes.Set("min", min_cluster_size);
    sizes.Set("max", max_cluster_size);
    if (mode == ExecutionMode::kInMemory) {
      sizes.Set("average", average_cluster_size);
    }
    json.Set("cluster_size", std::move(sizes));
    json.Set("max_cluster_emd", max_cluster_emd);
    json.Set("normalized_sse", normalized_sse);
  }

  JsonValue execution_json = JsonValue::MakeObject();
  execution_json.Set("threads", threads);
  execution_json.Set("shards", num_shards);
  execution_json.Set("final_merges", final_merges);
  if (!swept) {
    execution_json.Set("merge_strategy", MergeStrategyName(merge_strategy));
    JsonValue merge_json = JsonValue::MakeObject();
    merge_json.Set("subtrees", merge_subtrees);
    merge_json.Set("subtree_merges", subtree_merges);
    merge_json.Set("tail_merges", tail_merges);
    merge_json.Set("candidate_checks", candidate_checks);
    merge_json.Set("pruned_checks", pruned_checks);
    merge_json.Set("exact_checks", exact_checks);
    execution_json.Set("merge", std::move(merge_json));
  }
  if (mode == ExecutionMode::kStreaming) {
    execution_json.Set("windows", num_windows);
    execution_json.Set("peak_resident_rows", peak_resident_rows);
    execution_json.Set("overlap_io", overlap_io);
    execution_json.Set("overlapped_reads", overlapped_reads);
  }
  json.Set("execution", std::move(execution_json));

  JsonValue verification = JsonValue::MakeObject();
  verification.Set("requested", verify_requested);
  verification.Set("k_anonymous", k_verified);
  verification.Set("t_close", t_verified);
  json.Set("verification", std::move(verification));

  JsonValue timings = JsonValue::MakeObject();
  timings.Set("load_seconds", load_seconds);
  timings.Set("anonymize_seconds", anonymize_seconds);
  timings.Set("verify_seconds", verify_seconds);
  timings.Set("write_seconds", write_seconds);
  timings.Set("total_seconds", total_seconds);
  json.Set("timings", std::move(timings));

  if (!stage_seconds.empty()) {
    JsonValue stages = JsonValue::MakeObject();
    for (const auto& [name, seconds] : stage_seconds) {
      stages.Set(name, seconds);
    }
    json.Set("stage_seconds", std::move(stages));
  }

  if (!release_path.empty()) {
    JsonValue output_json = JsonValue::MakeObject();
    output_json.Set("release_path", release_path);
    json.Set("output", std::move(output_json));
  }

  if (mode == ExecutionMode::kStreaming) {
    JsonValue windows_json = JsonValue::MakeArray();
    for (const StreamingWindowSummary& window : windows) {
      JsonValue w = JsonValue::MakeObject();
      w.Set("rows", window.rows);
      w.Set("clusters", window.clusters);
      w.Set("shards", window.num_shards);
      w.Set("shard_size", window.shard_size);
      w.Set("threads", window.threads);
      w.Set("final_merges", window.final_merges);
      w.Set("min_cluster_size", window.min_cluster_size);
      w.Set("max_cluster_size", window.max_cluster_size);
      w.Set("max_cluster_emd", window.max_cluster_emd);
      w.Set("normalized_sse", window.normalized_sse);
      w.Set("anonymize_seconds", window.anonymize_seconds);
      windows_json.Append(std::move(w));
    }
    json.Set("windows", std::move(windows_json));
  }

  if (swept) {
    JsonValue sweep_json = JsonValue::MakeArray();
    for (const SweepOutcome& outcome : sweep) {
      JsonValue cell = JsonValue::MakeObject();
      cell.Set("label", outcome.label);
      cell.Set("algorithm", outcome.algorithm);
      cell.Set("k", outcome.k);
      cell.Set("t", outcome.t);
      if (!outcome.error_code.empty()) {
        cell.Set("error_code", outcome.error_code);
        cell.Set("error", outcome.error);
      } else {
        cell.Set("clusters", outcome.clusters);
        cell.Set("min_cluster_size", outcome.min_cluster_size);
        cell.Set("max_cluster_size", outcome.max_cluster_size);
        cell.Set("max_cluster_emd", outcome.max_cluster_emd);
        cell.Set("normalized_sse", outcome.normalized_sse);
        cell.Set("elapsed_seconds", outcome.elapsed_seconds);
      }
      sweep_json.Append(std::move(cell));
    }
    json.Set("sweep", std::move(sweep_json));
  }
  return json;
}

std::string RunReport::ToJsonText(int indent) const {
  return ToJson().Write(indent);
}

}  // namespace tcm
