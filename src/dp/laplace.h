#ifndef TCM_DP_LAPLACE_H_
#define TCM_DP_LAPLACE_H_

#include "common/rng.h"

namespace tcm {

// Laplace(0, scale) sampler via inverse-CDF over the library Rng; the
// building block of the epsilon-differentially-private release below.
class LaplaceSampler {
 public:
  explicit LaplaceSampler(uint64_t seed) : rng_(seed) {}

  // One draw from Laplace(0, scale); scale must be positive.
  double Sample(double scale);

  // Convenience: noise calibrated to sensitivity/epsilon.
  double SampleForSensitivity(double sensitivity, double epsilon) {
    return Sample(sensitivity / epsilon);
  }

 private:
  Rng rng_;
};

}  // namespace tcm

#endif  // TCM_DP_LAPLACE_H_
