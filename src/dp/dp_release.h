#ifndef TCM_DP_DP_RELEASE_H_
#define TCM_DP_DP_RELEASE_H_

#include <cstdint>

#include "common/result.h"
#include "data/dataset.h"
#include "microagg/microagg.h"

namespace tcm {

// Microaggregation-based epsilon-differential privacy, the continuation
// the paper names in its conclusions (Soria-Comas et al., VLDB J. 2014:
// "Enhancing data utility in differential privacy via microaggregation-
// based k-anonymity"). The idea: first microaggregate into clusters of k
// records, then release the cluster centroids through the Laplace
// mechanism. Because a centroid is a mean of k records, one individual's
// contribution to it is bounded by range/k, so the noise needed for a
// given epsilon shrinks linearly in k — that is the utility gain over
// naive record-level DP.
//
// Caveat (documented, as in the original work): the sensitivity argument
// assumes an *insensitive* microaggregation whose cluster composition
// changes by at most one record per neighbouring data set. MDAV does not
// strictly satisfy this; the release should be read as the utility model
// of the cited paper rather than a formally airtight DP mechanism. The
// benches use it to show the epsilon/k/utility trade-off shape.

struct DpReleaseOptions {
  size_t k = 10;            // microaggregation cluster size
  double epsilon = 1.0;     // total privacy budget for the QI block
  uint64_t seed = 1;        // Laplace noise seed (deterministic release)
  MicroaggOptions microagg; // which heuristic builds the clusters
};

struct DpReleaseResult {
  Dataset released;          // QIs replaced by noisy centroids
  double epsilon = 0.0;
  double per_attribute_scale_sum = 0.0;  // total Laplace scale applied
  size_t clusters = 0;
};

// InvalidArgument if epsilon <= 0, k == 0 or k > n, or the dataset has no
// quasi-identifiers.
Result<DpReleaseResult> DpMicroaggregationRelease(
    const Dataset& data, const DpReleaseOptions& options = {});

}  // namespace tcm

#endif  // TCM_DP_DP_RELEASE_H_
