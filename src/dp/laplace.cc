#include "dp/laplace.h"

#include <cmath>

#include "common/check.h"

namespace tcm {

double LaplaceSampler::Sample(double scale) {
  TCM_CHECK_GT(scale, 0.0);
  // Inverse CDF: u uniform in (-1/2, 1/2),
  // x = -scale * sign(u) * ln(1 - 2|u|).
  double u = rng_.NextDouble() - 0.5;
  // Guard against ln(0) when u is exactly +/- 0.5 (NextDouble < 1).
  double magnitude = std::min(std::fabs(u), 0.5 - 1e-17);
  double draw = -scale * std::log(1.0 - 2.0 * magnitude);
  return u < 0 ? -draw : draw;
}

}  // namespace tcm
