#include "dp/dp_release.h"

#include <vector>

#include "data/stats.h"
#include "distance/qi_space.h"
#include "dp/laplace.h"

namespace tcm {

Result<DpReleaseResult> DpMicroaggregationRelease(
    const Dataset& data, const DpReleaseOptions& options) {
  if (options.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (options.k == 0 || options.k > data.NumRecords()) {
    return Status::InvalidArgument("k must be in [1, n]");
  }
  std::vector<size_t> qi = data.schema().QuasiIdentifierIndices();
  if (qi.empty()) {
    return Status::InvalidArgument("dataset has no quasi-identifiers");
  }
  for (size_t col : qi) {
    if (data.schema().at(col).is_categorical()) {
      return Status::Unimplemented(
          "DP release supports numeric quasi-identifiers only");
    }
  }

  QiSpace space(data);
  TCM_ASSIGN_OR_RETURN(Partition partition,
                       Microaggregate(space, options.k, options.microagg));

  // Budget split evenly across the QI attributes (L1 composition).
  const double epsilon_per_attribute =
      options.epsilon / static_cast<double>(qi.size());

  DpReleaseResult result{data, options.epsilon, 0.0, partition.NumClusters()};
  LaplaceSampler sampler(options.seed);
  for (size_t j = 0; j < qi.size(); ++j) {
    std::vector<double> column = data.ColumnAsDouble(qi[j]);
    double range = Range(column);
    for (const Cluster& cluster : partition.clusters) {
      // Mean of |cluster| >= k records: one record moves it by at most
      // range / |cluster|.
      double sensitivity = range / static_cast<double>(cluster.size());
      double mean = 0.0;
      for (size_t row : cluster) mean += column[row];
      mean /= static_cast<double>(cluster.size());
      double noisy = mean;
      if (range > 0.0) {
        double scale = sensitivity / epsilon_per_attribute;
        noisy += sampler.Sample(scale);
        result.per_attribute_scale_sum += scale;
      }
      for (size_t row : cluster) {
        TCM_RETURN_IF_ERROR(
            result.released.SetCell(row, qi[j], Value::Numeric(noisy)));
      }
    }
  }
  return result;
}

}  // namespace tcm
