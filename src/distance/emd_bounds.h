#ifndef TCM_DISTANCE_EMD_BOUNDS_H_
#define TCM_DISTANCE_EMD_BOUNDS_H_

#include <cstddef>

namespace tcm {

// Analytic EMD bounds from the paper (Section 7). All take the data set
// size n and a cluster size k with 1 <= k <= n.

// Proposition 1: the smallest EMD any cluster of size k can achieve
// against a data set of n rankable records,
//   min EMD = (n + k)(n - k) / (4 n (n - 1) k).
// Tight when k divides n (cluster = medians of the k equal subsets).
double MinClusterEmd(size_t n, size_t k);

// Proposition 2: the largest EMD of a cluster holding exactly one record
// from each of the k equal-frequency subsets of the sort order,
//   max EMD = (n - k) / (2 (n - 1) k).
double MaxClusterEmdOnePerSubset(size_t n, size_t k);

// Equation (3): the minimum cluster size guaranteeing that any
// one-record-per-subset cluster is t-close,
//   k* = max{ k, ceil(n / (2 (n - 1) t + 1)) }.
// t <= 0 collapses to a single cluster (returns n).
size_t RequiredClusterSize(size_t n, size_t k, double t);

// Upper bound on the EMD of a merged cluster from its parts: for disjoint
// clusters A (|A| = na, EMD emd_a) and B (|B| = nb, EMD emd_b) over the
// same reference distribution,
//   EMD(A ∪ B) <= (na * emd_a + nb * emd_b) / (na + nb).
// The union's distribution is exactly the na:nb mixture of the parts'
// (each member keeps mass 1/|A ∪ B|), and the ordered EMD against a fixed
// reference is an L1 norm of the linear cumulative-difference map — hence
// convex in its first argument, so the mixture's EMD is at most the
// mixture of the EMDs. Also valid when emd_a/emd_b are themselves upper
// bounds. The merge loop uses it to prove a fresh merger t-close without
// an exact evaluation.
double MixtureEmdUpperBound(size_t na, double emd_a, size_t nb,
                            double emd_b);

// Equation (4): enlarges k until the leftover records (n mod k) do not
// outnumber the clusters (floor(n/k)), so every leftover can be absorbed
// by giving one extra record to some cluster. The paper states this as a
// single floor/ceil increment; we iterate, which agrees with the paper on
// every n, k it considers and is robust when one increment is not enough.
// Result is capped at n.
size_t AdjustClusterSizeForRemainder(size_t n, size_t k);

}  // namespace tcm

#endif  // TCM_DISTANCE_EMD_BOUNDS_H_
