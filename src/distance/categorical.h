#ifndef TCM_DISTANCE_CATEGORICAL_H_
#define TCM_DISTANCE_CATEGORICAL_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace tcm {

// Distribution distances for categorical confidential attributes, covering
// the paper's "research directions" item (i): an EMD suitable for
// categorical values. Distributions are given as counts over the same
// category universe; counts are normalized internally.

// Ordinal categories (sortable, e.g. severity grades): the ordered EMD over
// the category bins, identical in form to the numerical case.
double OrdinalCategoricalEmd(const std::vector<size_t>& counts_p,
                             const std::vector<size_t>& counts_q);

// Nominal categories (no order): the ground distance between distinct
// categories is 1, which makes EMD collapse to total variation distance,
//   EMD = (1/2) * sum_i |p_i - q_i|.
double NominalCategoricalEmd(const std::vector<size_t>& counts_p,
                             const std::vector<size_t>& counts_q);

// Jensen-Shannon divergence (bounded, symmetric) as an alternative
// categorical dissimilarity for sensitivity analyses; natural log base,
// range [0, ln 2].
double JensenShannonDivergence(const std::vector<size_t>& counts_p,
                               const std::vector<size_t>& counts_q);

// --- Integer-indexed (dictionary-code) kernels ---
//
// The columnar store hands categorical columns around as int32 dictionary
// codes; these entry points bin codes into dense count vectors and reuse the
// distances above, so the hot loop never touches a string. Every code must
// lie in [0, universe) — out-of-range aborts (the .tcmb reader has already
// range-checked persisted payloads; anything else is a programming error).

// Histogram of `codes` over a dictionary of `universe` categories.
std::vector<size_t> CountCategoryCodes(std::span<const int32_t> codes,
                                       size_t universe);

// OrdinalCategoricalEmd over two code sequences sharing one dictionary.
double OrdinalCategoricalEmdCodes(std::span<const int32_t> codes_p,
                                  std::span<const int32_t> codes_q,
                                  size_t universe);

// NominalCategoricalEmd over two code sequences sharing one dictionary.
double NominalCategoricalEmdCodes(std::span<const int32_t> codes_p,
                                  std::span<const int32_t> codes_q,
                                  size_t universe);

}  // namespace tcm

#endif  // TCM_DISTANCE_CATEGORICAL_H_
