#ifndef TCM_DISTANCE_EMD_H_
#define TCM_DISTANCE_EMD_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"

namespace tcm {

// Earth Mover's Distance with the ordered (rank) ground distance, as used
// by t-closeness for numerical attributes (Li et al. 2007, and Props. 1-2
// of Soria-Comas et al.). Two granularities are provided:
//
//  * Distribution-level: EMD between two probability vectors over the same
//    ordered support of m bins,
//        EMD(P,Q) = (1/(m-1)) * sum_i |sum_{j<=i} (p_j - q_j)|.
//
//  * Record-level (EmdCalculator): the reference distribution places mass
//    1/n on each record of the data set in confidential-attribute order
//    (each record is its own bin, ties resolved by stable sort); a cluster
//    of c records places mass 1/c on its members' bins. This is the
//    formulation the paper's bounds assume.

// Distribution-level ordered EMD; `p` and `q` must have equal size >= 1 and
// each should sum to ~1 (not enforced; the formula is linear in the bins).
double OrderedEmd(const std::vector<double>& p, const std::vector<double>& q);

// Record-level ordered EMD for one data set's confidential attribute.
// Construction is O(n log n); cluster evaluations are O(c) after an O(c log c)
// sort of member ranks, independent of n, via the closed-form piecewise
// evaluation of the cumulative difference.
class EmdCalculator {
 public:
  // `data` must have at least one confidential attribute;
  // `confidential_offset` picks among several.
  explicit EmdCalculator(const Dataset& data, size_t confidential_offset = 0);

  // Constructs directly from the confidential column (used by tests).
  explicit EmdCalculator(const std::vector<double>& confidential_values);

  size_t num_records() const { return static_cast<size_t>(n_); }

  // 0-based position of `row` in the confidential sort order.
  uint32_t RankOf(size_t row) const { return ranks_[row]; }

  // EMD between the cluster containing `rows` and the whole data set.
  // Requires a non-empty cluster; rows must be distinct.
  double ClusterEmd(const std::vector<size_t>& rows) const;

  // Same, but from 0-based ranks sorted ascending (no duplicates).
  double EmdFromSortedRanks(const std::vector<uint32_t>& sorted_ranks) const;

  // O(n + c) reference implementation (direct cumulative sums); the test
  // oracle for EmdFromSortedRanks.
  double ReferenceClusterEmd(const std::vector<size_t>& rows) const;

 private:
  int64_t n_ = 0;
  std::vector<uint32_t> ranks_;  // ranks_[row] = sorted position of row
};

}  // namespace tcm

#endif  // TCM_DISTANCE_EMD_H_
