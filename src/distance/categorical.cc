#include "distance/categorical.h"

#include <cmath>
#include <numeric>

#include "common/check.h"
#include "distance/emd.h"

namespace tcm {
namespace {

std::vector<double> Normalize(const std::vector<size_t>& counts) {
  double total = static_cast<double>(
      std::accumulate(counts.begin(), counts.end(), size_t{0}));
  TCM_CHECK_GT(total, 0.0) << "empty distribution";
  std::vector<double> out(counts.size());
  for (size_t i = 0; i < counts.size(); ++i) {
    out[i] = static_cast<double>(counts[i]) / total;
  }
  return out;
}

}  // namespace

double OrdinalCategoricalEmd(const std::vector<size_t>& counts_p,
                             const std::vector<size_t>& counts_q) {
  TCM_CHECK_EQ(counts_p.size(), counts_q.size());
  TCM_CHECK(!counts_p.empty());
  return OrderedEmd(Normalize(counts_p), Normalize(counts_q));
}

double NominalCategoricalEmd(const std::vector<size_t>& counts_p,
                             const std::vector<size_t>& counts_q) {
  TCM_CHECK_EQ(counts_p.size(), counts_q.size());
  TCM_CHECK(!counts_p.empty());
  std::vector<double> p = Normalize(counts_p);
  std::vector<double> q = Normalize(counts_q);
  double total = 0.0;
  for (size_t i = 0; i < p.size(); ++i) total += std::fabs(p[i] - q[i]);
  return 0.5 * total;
}

std::vector<size_t> CountCategoryCodes(std::span<const int32_t> codes,
                                       size_t universe) {
  TCM_CHECK_GT(universe, 0u);
  std::vector<size_t> counts(universe, 0);
  for (int32_t code : codes) {
    TCM_CHECK(code >= 0 && static_cast<size_t>(code) < universe)
        << "dictionary code " << code << " outside universe of " << universe;
    ++counts[static_cast<size_t>(code)];
  }
  return counts;
}

double OrdinalCategoricalEmdCodes(std::span<const int32_t> codes_p,
                                  std::span<const int32_t> codes_q,
                                  size_t universe) {
  return OrdinalCategoricalEmd(CountCategoryCodes(codes_p, universe),
                               CountCategoryCodes(codes_q, universe));
}

double NominalCategoricalEmdCodes(std::span<const int32_t> codes_p,
                                  std::span<const int32_t> codes_q,
                                  size_t universe) {
  return NominalCategoricalEmd(CountCategoryCodes(codes_p, universe),
                               CountCategoryCodes(codes_q, universe));
}

double JensenShannonDivergence(const std::vector<size_t>& counts_p,
                               const std::vector<size_t>& counts_q) {
  TCM_CHECK_EQ(counts_p.size(), counts_q.size());
  TCM_CHECK(!counts_p.empty());
  std::vector<double> p = Normalize(counts_p);
  std::vector<double> q = Normalize(counts_q);
  auto kl_to_mixture = [](const std::vector<double>& a,
                          const std::vector<double>& b) {
    double sum = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i] <= 0.0) continue;
      double mix = 0.5 * (a[i] + b[i]);
      sum += a[i] * std::log(a[i] / mix);
    }
    return sum;
  };
  return 0.5 * kl_to_mixture(p, q) + 0.5 * kl_to_mixture(q, p);
}

}  // namespace tcm
