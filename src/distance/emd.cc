#include "distance/emd.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "data/stats.h"

namespace tcm {
namespace {

// Sum_{i=a}^{b} |x - i| for integer i, real x, in closed form.
double AbsRankSum(int64_t a, int64_t b, double x) {
  if (b < a) return 0.0;
  double count = static_cast<double>(b - a + 1);
  double mid_sum = 0.5 * static_cast<double>(a + b) * count;  // sum of i
  if (x <= static_cast<double>(a)) return mid_sum - count * x;
  if (x >= static_cast<double>(b)) return count * x - mid_sum;
  // a < x < b: split at the last i below (or at) x.
  int64_t split = static_cast<int64_t>(std::floor(x));
  double left_count = static_cast<double>(split - a + 1);
  double left = left_count * x -
                0.5 * static_cast<double>(a + split) * left_count;
  double right_count = static_cast<double>(b - split);
  double right = 0.5 * static_cast<double>(split + 1 + b) * right_count -
                 right_count * x;
  return left + right;
}

std::vector<uint32_t> RanksFromColumn(const std::vector<double>& values) {
  std::vector<size_t> order = SortOrder(values);
  std::vector<uint32_t> ranks(values.size());
  for (size_t position = 0; position < order.size(); ++position) {
    ranks[order[position]] = static_cast<uint32_t>(position);
  }
  return ranks;
}

// Shared core of EmdFromSortedRanks. The cumulative cluster mass cumP is a
// step function over 1-based bins: 0 before the first member's bin, j/c
// from the j-th member's bin up to the bin before member j+1, and 1 from
// the last member's bin onward. Each constant segment contributes
// sum_i |v - i/n| = AbsRankSum(start, end, v*n) / n.
double EmdFromSortedRanksImpl(const std::vector<uint32_t>& sorted_ranks,
                              int64_t n) {
  const size_t c = sorted_ranks.size();
  double total = 0.0;
  for (size_t j = 0; j <= c; ++j) {
    int64_t start =
        (j == 0) ? 1 : static_cast<int64_t>(sorted_ranks[j - 1]) + 1;
    int64_t end = (j == c) ? n : static_cast<int64_t>(sorted_ranks[j]);
    double v = static_cast<double>(j) / static_cast<double>(c);
    total += AbsRankSum(start, end, v * static_cast<double>(n));
  }
  return total / (static_cast<double>(n) * static_cast<double>(n - 1));
}

}  // namespace

double OrderedEmd(const std::vector<double>& p, const std::vector<double>& q) {
  TCM_DCHECK_EQ(p.size(), q.size());
  TCM_DCHECK(!p.empty());
  const size_t m = p.size();
  if (m == 1) return 0.0;
  double cumulative = 0.0;
  double total = 0.0;
  for (size_t i = 0; i < m; ++i) {
    cumulative += p[i] - q[i];
    total += std::fabs(cumulative);
  }
  return total / static_cast<double>(m - 1);
}

EmdCalculator::EmdCalculator(const Dataset& data, size_t confidential_offset) {
  std::vector<size_t> conf = data.schema().ConfidentialIndices();
  TCM_CHECK(!conf.empty()) << "dataset has no confidential attribute";
  TCM_CHECK_LT(confidential_offset, conf.size());
  std::vector<double> values = data.ColumnAsDouble(conf[confidential_offset]);
  n_ = static_cast<int64_t>(values.size());
  TCM_CHECK_GT(n_, 1);
  ranks_ = RanksFromColumn(values);
}

EmdCalculator::EmdCalculator(const std::vector<double>& confidential_values) {
  n_ = static_cast<int64_t>(confidential_values.size());
  TCM_CHECK_GT(n_, 1);
  ranks_ = RanksFromColumn(confidential_values);
}

double EmdCalculator::ClusterEmd(const std::vector<size_t>& rows) const {
  TCM_DCHECK(!rows.empty());
  std::vector<uint32_t> sorted;
  sorted.reserve(rows.size());
  for (size_t row : rows) {
    TCM_DCHECK(row < ranks_.size());
    sorted.push_back(ranks_[row]);
  }
  std::sort(sorted.begin(), sorted.end());
  return EmdFromSortedRanks(sorted);
}

double EmdCalculator::EmdFromSortedRanks(
    const std::vector<uint32_t>& sorted_ranks) const {
  TCM_DCHECK(!sorted_ranks.empty());
  TCM_DCHECK(sorted_ranks.back() < static_cast<uint32_t>(n_));
  return EmdFromSortedRanksImpl(sorted_ranks, n_);
}

double EmdCalculator::ReferenceClusterEmd(
    const std::vector<size_t>& rows) const {
  TCM_CHECK(!rows.empty());
  const size_t n = static_cast<size_t>(n_);
  std::vector<double> cluster_mass(n, 0.0);
  double share = 1.0 / static_cast<double>(rows.size());
  for (size_t row : rows) cluster_mass[ranks_[row]] += share;
  double cumulative = 0.0;
  double total = 0.0;
  double step = 1.0 / static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) {
    cumulative += cluster_mass[i] - step;
    total += std::fabs(cumulative);
  }
  return total / static_cast<double>(n - 1);
}

}  // namespace tcm
