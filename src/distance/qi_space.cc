#include "distance/qi_space.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.h"
#include "data/stats.h"

namespace tcm {

QiSpace::QiSpace(const Dataset& data, QiNormalization normalization) {
  std::vector<size_t> qi = data.schema().QuasiIdentifierIndices();
  TCM_CHECK(!qi.empty()) << "dataset has no quasi-identifier attributes";
  num_records_ = data.NumRecords();
  num_dims_ = qi.size();
  coords_.assign(num_records_ * num_dims_, 0.0);

  for (size_t d = 0; d < num_dims_; ++d) {
    std::vector<double> col = data.ColumnAsDouble(qi[d]);
    double shift = 0.0, scale = 1.0;
    switch (normalization) {
      case QiNormalization::kRange: {
        double lo = Min(col), hi = Max(col);
        shift = lo;
        scale = (hi > lo) ? (hi - lo) : 1.0;
        break;
      }
      case QiNormalization::kStandardize: {
        shift = Mean(col);
        double sd = StdDev(col);
        scale = (sd > 0.0) ? sd : 1.0;
        break;
      }
      case QiNormalization::kNone:
        break;
    }
    for (size_t row = 0; row < num_records_; ++row) {
      coords_[row * num_dims_ + d] = (col[row] - shift) / scale;
    }
  }
}

double QiSpace::SquaredDistance(size_t row_a, size_t row_b) const {
  const double* a = point(row_a);
  const double* b = point(row_b);
  double sum = 0.0;
  for (size_t d = 0; d < num_dims_; ++d) {
    double diff = a[d] - b[d];
    sum += diff * diff;
  }
  return sum;
}

double QiSpace::SquaredDistanceToPoint(size_t row,
                                       const std::vector<double>& p) const {
  TCM_DCHECK(p.size() == num_dims_);
  const double* a = point(row);
  double sum = 0.0;
  for (size_t d = 0; d < num_dims_; ++d) {
    double diff = a[d] - p[d];
    sum += diff * diff;
  }
  return sum;
}

double QiSpace::Distance(size_t row_a, size_t row_b) const {
  return std::sqrt(SquaredDistance(row_a, row_b));
}

std::vector<double> QiSpace::Centroid(const std::vector<size_t>& rows) const {
  TCM_DCHECK(!rows.empty());
  std::vector<double> centroid(num_dims_, 0.0);
  for (size_t row : rows) {
    const double* p = point(row);
    for (size_t d = 0; d < num_dims_; ++d) centroid[d] += p[d];
  }
  for (double& c : centroid) c /= static_cast<double>(rows.size());
  return centroid;
}

std::vector<double> QiSpace::GlobalCentroid() const {
  std::vector<size_t> all(num_records_);
  std::iota(all.begin(), all.end(), 0);
  return Centroid(all);
}

size_t QiSpace::FarthestFromPoint(const std::vector<size_t>& candidates,
                                  const std::vector<double>& p) const {
  TCM_DCHECK(!candidates.empty());
  size_t best = candidates[0];
  double best_dist = -1.0;
  for (size_t row : candidates) {
    double dist = SquaredDistanceToPoint(row, p);
    if (dist > best_dist) {
      best_dist = dist;
      best = row;
    }
  }
  return best;
}

size_t QiSpace::ClosestToRecord(const std::vector<size_t>& candidates,
                                size_t row) const {
  size_t best = std::numeric_limits<size_t>::max();
  double best_dist = std::numeric_limits<double>::infinity();
  for (size_t candidate : candidates) {
    if (candidate == row) continue;
    double dist = SquaredDistance(candidate, row);
    if (dist < best_dist) {
      best_dist = dist;
      best = candidate;
    }
  }
  TCM_DCHECK(best != std::numeric_limits<size_t>::max())
      << "no candidate other than the record itself";
  return best;
}

std::vector<size_t> QiSpace::NearestToRecord(
    const std::vector<size_t>& candidates, size_t row, size_t count) const {
  std::vector<std::pair<double, size_t>> scored;
  scored.reserve(candidates.size());
  for (size_t candidate : candidates) {
    scored.emplace_back(SquaredDistance(candidate, row), candidate);
  }
  size_t take = std::min(count, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + take, scored.end());
  std::vector<size_t> out;
  out.reserve(take);
  for (size_t i = 0; i < take; ++i) out.push_back(scored[i].second);
  return out;
}

}  // namespace tcm
