#ifndef TCM_DISTANCE_QI_SPACE_H_
#define TCM_DISTANCE_QI_SPACE_H_

#include <cstddef>
#include <vector>

#include "data/dataset.h"

namespace tcm {

// How each quasi-identifier dimension is scaled before computing Euclidean
// distances. Range normalization matches the paper's "normalized Euclidean
// distance"; standardization (z-scores) is the classic MDAV choice.
enum class QiNormalization {
  kRange,        // (x - min) / (max - min)
  kStandardize,  // (x - mean) / stddev
  kNone,
};

// A dense, normalized view of the quasi-identifier block of a dataset.
// Every algorithm in the library measures record similarity through this
// class, so the QI projection and scaling are computed once. Records are
// addressed by their row index in the originating dataset.
class QiSpace {
 public:
  // Builds the view; `data` must have at least one quasi-identifier.
  explicit QiSpace(const Dataset& data,
                   QiNormalization normalization = QiNormalization::kRange);

  size_t num_records() const { return num_records_; }
  size_t num_dims() const { return num_dims_; }

  // Normalized coordinates of record `row` (contiguous, num_dims() wide).
  const double* point(size_t row) const {
    return coords_.data() + row * num_dims_;
  }

  // Squared Euclidean distance between two records.
  double SquaredDistance(size_t row_a, size_t row_b) const;

  // Squared Euclidean distance between a record and an arbitrary point.
  double SquaredDistanceToPoint(size_t row,
                                const std::vector<double>& point) const;

  double Distance(size_t row_a, size_t row_b) const;

  // Mean point of the given rows; requires a non-empty set.
  std::vector<double> Centroid(const std::vector<size_t>& rows) const;

  // Mean point of every record.
  std::vector<double> GlobalCentroid() const;

  // Among `candidates`, the row farthest from `point` (ties -> lowest row).
  // Requires non-empty candidates.
  size_t FarthestFromPoint(const std::vector<size_t>& candidates,
                           const std::vector<double>& point) const;

  // Among `candidates`, the row closest to record `row` (`row` itself is
  // skipped if present). Requires at least one other candidate.
  size_t ClosestToRecord(const std::vector<size_t>& candidates,
                         size_t row) const;

  // The `count` rows among `candidates` closest to record `row`, including
  // `row` itself if present; ordered by increasing distance.
  std::vector<size_t> NearestToRecord(const std::vector<size_t>& candidates,
                                      size_t row, size_t count) const;

 private:
  size_t num_records_ = 0;
  size_t num_dims_ = 0;
  std::vector<double> coords_;  // row-major num_records x num_dims
};

}  // namespace tcm

#endif  // TCM_DISTANCE_QI_SPACE_H_
