#include "distance/emd_bounds.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace tcm {

double MinClusterEmd(size_t n, size_t k) {
  TCM_DCHECK_GE(k, 1u);
  TCM_DCHECK_LE(k, n);
  TCM_DCHECK_GT(n, 1u);
  double nd = static_cast<double>(n), kd = static_cast<double>(k);
  return (nd + kd) * (nd - kd) / (4.0 * nd * (nd - 1.0) * kd);
}

double MaxClusterEmdOnePerSubset(size_t n, size_t k) {
  TCM_DCHECK_GE(k, 1u);
  TCM_DCHECK_LE(k, n);
  TCM_DCHECK_GT(n, 1u);
  double nd = static_cast<double>(n), kd = static_cast<double>(k);
  return (nd - kd) / (2.0 * (nd - 1.0) * kd);
}

size_t RequiredClusterSize(size_t n, size_t k, double t) {
  TCM_CHECK_GE(k, 1u);
  TCM_CHECK_GT(n, 1u);
  if (t <= 0.0) return n;
  double nd = static_cast<double>(n);
  double bound = nd / (2.0 * (nd - 1.0) * t + 1.0);
  size_t k_t = static_cast<size_t>(std::ceil(bound - 1e-12));
  return std::min(n, std::max(k, k_t));
}

double MixtureEmdUpperBound(size_t na, double emd_a, size_t nb,
                            double emd_b) {
  TCM_DCHECK_GE(na, 1u);
  TCM_DCHECK_GE(nb, 1u);
  double wa = static_cast<double>(na), wb = static_cast<double>(nb);
  return (wa * emd_a + wb * emd_b) / (wa + wb);
}

size_t AdjustClusterSizeForRemainder(size_t n, size_t k) {
  TCM_CHECK_GE(k, 1u);
  TCM_CHECK_LE(k, n);
  while (k < n && (n % k) > (n / k)) {
    // Eq. (4): distribute the remainder over the clusters; at least one
    // more record per cluster is needed.
    size_t increment = std::max<size_t>(1, (n % k) / (n / k));
    k += increment;
  }
  return std::min(k, n);
}

}  // namespace tcm
