#include "microagg/chunked.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "data/stats.h"
#include "microagg/univariate.h"

namespace tcm {

Result<Partition> ChunkedMicroaggregation(const QiSpace& space, size_t k,
                                          const ChunkedOptions& options) {
  const size_t n = space.num_records();
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (k > n) {
    return Status::InvalidArgument("k=" + std::to_string(k) +
                                   " exceeds number of records " +
                                   std::to_string(n));
  }
  if (options.chunk_size == 0) {
    return Status::InvalidArgument("chunk_size must be positive");
  }
  size_t chunk_size = std::max(options.chunk_size, 3 * k);
  if (chunk_size >= n) {
    return Microaggregate(space, k, options.inner);
  }

  // Records in first-principal-component order.
  std::vector<double> scores = PrincipalComponentScores(space);
  std::vector<size_t> order = SortOrder(scores);

  // Chunk boundaries: equal slices, with the tail folded into the last
  // chunk when it would be smaller than 3k (so inner MDAV stays valid).
  Partition out;
  size_t begin = 0;
  while (begin < n) {
    size_t end = std::min(n, begin + chunk_size);
    if (n - end < 3 * k) end = n;  // absorb a short tail
    std::vector<size_t> chunk_rows(order.begin() + begin,
                                   order.begin() + end);

    // Run the inner heuristic on the chunk: build a dense sub-problem by
    // translating row ids through the chunk, reusing the global QiSpace
    // geometry via an index indirection.
    // MDAV variants operate on a QiSpace; rather than materializing a
    // sub-space we exploit that all heuristics only touch the rows they
    // are given — so we run them on a temporary QiSpace-like projection
    // by re-microaggregating through Microaggregate on a sub-QiSpace.
    // Simpler and allocation-light: build the sub-space from scratch.
    TCM_ASSIGN_OR_RETURN(Partition sub,
                         MicroaggregateRows(space, chunk_rows, k,
                                            options.inner));
    for (Cluster& cluster : sub.clusters) {
      out.clusters.push_back(std::move(cluster));
    }
    begin = end;
  }
  return out;
}

}  // namespace tcm
