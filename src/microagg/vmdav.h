#ifndef TCM_MICROAGG_VMDAV_H_
#define TCM_MICROAGG_VMDAV_H_

#include "common/result.h"
#include "distance/qi_space.h"
#include "microagg/partition.h"

namespace tcm {

struct VMdavOptions {
  // Gain threshold for extending a cluster beyond k records: an unassigned
  // record u joins the cluster when its distance to the cluster is less
  // than gamma times its distance to the nearest other unassigned record.
  // gamma = 0 degenerates to fixed-size clusters; the original paper
  // suggests values around 0.2 for scattered data.
  double gamma = 0.2;
};

// V-MDAV (Solanas & Martinez-Balleste 2006): variable-size variant of
// MDAV. Builds a cluster of the k nearest records around the unassigned
// record farthest from the global centroid, then greedily extends it up to
// 2k-1 records while the gain criterion holds. Remaining (< k) records
// join the cluster with the nearest centroid.
//
// InvalidArgument if k == 0, k > n, or gamma < 0.
Result<Partition> VMdav(const QiSpace& space, size_t k,
                        const VMdavOptions& options = {});

// V-MDAV restricted to a subset of rows; the extreme-point reference is
// the subset centroid. InvalidArgument if k == 0 or k > rows.size().
Result<Partition> VMdavOnRows(const QiSpace& space, std::vector<size_t> rows,
                              size_t k, const VMdavOptions& options = {});

}  // namespace tcm

#endif  // TCM_MICROAGG_VMDAV_H_
