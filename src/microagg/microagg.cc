#include "microagg/microagg.h"

namespace tcm {

const char* MicroaggMethodName(MicroaggMethod method) {
  switch (method) {
    case MicroaggMethod::kMdav:
      return "MDAV";
    case MicroaggMethod::kVMdav:
      return "V-MDAV";
    case MicroaggMethod::kProjection:
      return "projection";
  }
  return "unknown";
}

Result<Partition> Microaggregate(const QiSpace& space, size_t k,
                                 const MicroaggOptions& options) {
  switch (options.method) {
    case MicroaggMethod::kMdav:
      return Mdav(space, k);
    case MicroaggMethod::kVMdav:
      return VMdav(space, k, options.vmdav);
    case MicroaggMethod::kProjection:
      return ProjectionMicroaggregation(space, k);
  }
  return Status::InvalidArgument("unknown microaggregation method");
}

Result<Partition> MicroaggregateRows(const QiSpace& space,
                                     const std::vector<size_t>& rows,
                                     size_t k,
                                     const MicroaggOptions& options) {
  switch (options.method) {
    case MicroaggMethod::kMdav:
      return MdavOnRows(space, rows, k);
    case MicroaggMethod::kVMdav:
      return VMdavOnRows(space, rows, k, options.vmdav);
    case MicroaggMethod::kProjection: {
      // Order the subset by the global first principal component and run
      // the optimal univariate DP on the subset's scores.
      std::vector<double> scores = PrincipalComponentScores(space);
      std::vector<double> subset_scores;
      subset_scores.reserve(rows.size());
      for (size_t row : rows) subset_scores.push_back(scores[row]);
      TCM_ASSIGN_OR_RETURN(
          Partition local,
          OptimalUnivariateMicroaggregation(subset_scores, k));
      for (Cluster& cluster : local.clusters) {
        for (size_t& index : cluster) index = rows[index];
      }
      return local;
    }
  }
  return Status::InvalidArgument("unknown microaggregation method");
}

Result<Dataset> MicroaggregateDataset(const Dataset& data, size_t k,
                                      const MicroaggOptions& options) {
  QiSpace space(data);
  TCM_ASSIGN_OR_RETURN(Partition partition, Microaggregate(space, k, options));
  return AggregatePartition(data, partition);
}

}  // namespace tcm
