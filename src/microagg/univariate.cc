#include "microagg/univariate.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.h"
#include "data/stats.h"

namespace tcm {
namespace {

// Sum and sum-of-squares prefix tables over the sorted values let the DP
// evaluate the SSE of any consecutive group in O(1):
//   sse(i..j) = sumsq - sum^2 / count.
struct PrefixTables {
  std::vector<double> sum;     // sum[i] = values[0] + ... + values[i-1]
  std::vector<double> sum_sq;

  explicit PrefixTables(const std::vector<double>& sorted) {
    sum.assign(sorted.size() + 1, 0.0);
    sum_sq.assign(sorted.size() + 1, 0.0);
    for (size_t i = 0; i < sorted.size(); ++i) {
      sum[i + 1] = sum[i] + sorted[i];
      sum_sq[i + 1] = sum_sq[i] + sorted[i] * sorted[i];
    }
  }

  // SSE of the half-open sorted range [begin, end).
  double GroupSse(size_t begin, size_t end) const {
    double count = static_cast<double>(end - begin);
    double total = sum[end] - sum[begin];
    double total_sq = sum_sq[end] - sum_sq[begin];
    return total_sq - total * total / count;
  }
};

}  // namespace

Result<Partition> OptimalUnivariateMicroaggregation(
    const std::vector<double>& values, size_t k) {
  const size_t n = values.size();
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (k > n) {
    return Status::InvalidArgument("k=" + std::to_string(k) +
                                   " exceeds number of records " +
                                   std::to_string(n));
  }

  std::vector<size_t> order = SortOrder(values);
  std::vector<double> sorted(n);
  for (size_t i = 0; i < n; ++i) sorted[i] = values[order[i]];
  PrefixTables tables(sorted);

  // best[j] = minimal SSE partitioning sorted[0..j); cut[j] = start of the
  // last group in that optimum. Groups sizes constrained to [k, 2k-1]
  // (an optimal partition never needs a group of 2k or more: splitting it
  // cannot increase SSE).
  constexpr double kInfinity = std::numeric_limits<double>::infinity();
  std::vector<double> best(n + 1, kInfinity);
  std::vector<size_t> cut(n + 1, 0);
  best[0] = 0.0;
  for (size_t j = k; j <= n; ++j) {
    size_t lo = (j >= 2 * k - 1) ? j - (2 * k - 1) : 0;
    size_t hi = j - k;  // j >= k
    for (size_t i = lo; i <= hi; ++i) {
      if (best[i] == kInfinity) continue;
      double candidate = best[i] + tables.GroupSse(i, j);
      if (candidate < best[j]) {
        best[j] = candidate;
        cut[j] = i;
      }
    }
  }
  TCM_CHECK(best[n] != kInfinity) << "univariate DP infeasible";

  Partition partition;
  size_t end = n;
  while (end > 0) {
    size_t begin = cut[end];
    Cluster cluster;
    cluster.reserve(end - begin);
    for (size_t pos = begin; pos < end; ++pos) {
      cluster.push_back(order[pos]);
    }
    partition.clusters.push_back(std::move(cluster));
    end = begin;
  }
  std::reverse(partition.clusters.begin(), partition.clusters.end());
  return partition;
}

double UnivariateSse(const std::vector<double>& values,
                     const Partition& partition) {
  double total = 0.0;
  for (const Cluster& cluster : partition.clusters) {
    if (cluster.empty()) continue;
    double mean = 0.0;
    for (size_t row : cluster) mean += values[row];
    mean /= static_cast<double>(cluster.size());
    for (size_t row : cluster) {
      total += (values[row] - mean) * (values[row] - mean);
    }
  }
  return total;
}

std::vector<double> PrincipalComponentScores(const QiSpace& space) {
  const size_t n = space.num_records();
  const size_t d = space.num_dims();

  // Column means for centering.
  std::vector<double> mean(d, 0.0);
  for (size_t row = 0; row < n; ++row) {
    const double* p = space.point(row);
    for (size_t j = 0; j < d; ++j) mean[j] += p[j];
  }
  for (double& m : mean) m /= static_cast<double>(n);

  // Covariance matrix (d is tiny — the number of QIs).
  std::vector<std::vector<double>> cov(d, std::vector<double>(d, 0.0));
  for (size_t row = 0; row < n; ++row) {
    const double* p = space.point(row);
    for (size_t a = 0; a < d; ++a) {
      for (size_t b = a; b < d; ++b) {
        cov[a][b] += (p[a] - mean[a]) * (p[b] - mean[b]);
      }
    }
  }
  for (size_t a = 0; a < d; ++a) {
    for (size_t b = a; b < d; ++b) {
      cov[a][b] /= static_cast<double>(n);
      cov[b][a] = cov[a][b];
    }
  }

  // Power iteration for the dominant eigenvector. Deterministic start
  // (all-ones) suffices: covariance matrices are PSD and the iteration
  // only fails if the start is exactly orthogonal to the eigenvector,
  // which the tie-break perturbation below avoids.
  std::vector<double> direction(d, 1.0);
  direction[0] = 1.0 + 1e-3;
  for (int iteration = 0; iteration < 200; ++iteration) {
    std::vector<double> next(d, 0.0);
    for (size_t a = 0; a < d; ++a) {
      for (size_t b = 0; b < d; ++b) next[a] += cov[a][b] * direction[b];
    }
    double norm = 0.0;
    for (double v : next) norm += v * v;
    norm = std::sqrt(norm);
    if (norm < 1e-15) break;  // zero-variance data: any direction works
    for (double& v : next) v /= norm;
    double delta = 0.0;
    for (size_t j = 0; j < d; ++j) {
      delta = std::max(delta, std::fabs(next[j] - direction[j]));
    }
    direction = std::move(next);
    if (delta < 1e-12) break;
  }
  // Fix the sign for determinism.
  for (size_t j = 0; j < d; ++j) {
    if (std::fabs(direction[j]) > 1e-12) {
      if (direction[j] < 0) {
        for (double& v : direction) v = -v;
      }
      break;
    }
  }

  std::vector<double> scores(n, 0.0);
  for (size_t row = 0; row < n; ++row) {
    const double* p = space.point(row);
    for (size_t j = 0; j < d; ++j) {
      scores[row] += (p[j] - mean[j]) * direction[j];
    }
  }
  return scores;
}

Result<Partition> ProjectionMicroaggregation(const QiSpace& space, size_t k) {
  return OptimalUnivariateMicroaggregation(PrincipalComponentScores(space),
                                           k);
}

}  // namespace tcm
