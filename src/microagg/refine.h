#ifndef TCM_MICROAGG_REFINE_H_
#define TCM_MICROAGG_REFINE_H_

#include "common/result.h"
#include "distance/qi_space.h"
#include "microagg/partition.h"

namespace tcm {

struct RefineOptions {
  size_t max_passes = 10;   // full sweeps over the records
  size_t min_cluster_size = 2;  // k: donors may not shrink below this
};

struct RefineStats {
  size_t moves = 0;    // records relocated
  size_t passes = 0;   // sweeps performed (including the final no-op one)
  double sse_before = 0.0;  // within-cluster QI SSE (normalized space)
  double sse_after = 0.0;
};

// Local-search refinement of a microaggregation partition (the classic
// second stage of two-phase heuristics such as TFRP): repeatedly move a
// record to the cluster whose centroid is nearer than its own, provided
// the donor keeps at least k records and the move strictly lowers the
// within-cluster SSE. Monotone in SSE, so it terminates; k-anonymity of
// the partition is preserved by construction.
//
// NOTE: refinement optimizes QI homogeneity only — it knows nothing about
// t-closeness, so run it on plain microaggregation partitions (or re-check
// EMD afterwards). The ablation bench quantifies both effects.
Result<Partition> RefinePartition(const QiSpace& space, Partition partition,
                                  const RefineOptions& options = {},
                                  RefineStats* stats = nullptr);

// Within-cluster squared-error of a partition in the normalized QI space
// (the objective the refinement descends).
double PartitionQiSse(const QiSpace& space, const Partition& partition);

}  // namespace tcm

#endif  // TCM_MICROAGG_REFINE_H_
