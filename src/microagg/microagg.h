#ifndef TCM_MICROAGG_MICROAGG_H_
#define TCM_MICROAGG_MICROAGG_H_

#include "common/result.h"
#include "distance/qi_space.h"
#include "microagg/aggregate.h"
#include "microagg/mdav.h"
#include "microagg/partition.h"
#include "microagg/univariate.h"
#include "microagg/vmdav.h"

namespace tcm {

// Convenience front-end over the microaggregation heuristics.
enum class MicroaggMethod {
  kMdav,
  kVMdav,
  // First-principal-component projection + optimal univariate DP.
  kProjection,
};

const char* MicroaggMethodName(MicroaggMethod method);

struct MicroaggOptions {
  MicroaggMethod method = MicroaggMethod::kMdav;
  VMdavOptions vmdav;  // used only when method == kVMdav
};

// Partitions the records of `space` into clusters of at least k records
// using the selected heuristic.
Result<Partition> Microaggregate(const QiSpace& space, size_t k,
                                 const MicroaggOptions& options = {});

// Same, restricted to a subset of rows: clusters contain indices from
// `rows` only. V-MDAV uses the subset centroid as its extreme-point
// reference; the projection method orders the subset by the global first
// principal component. Used by chunked microaggregation.
Result<Partition> MicroaggregateRows(const QiSpace& space,
                                     const std::vector<size_t>& rows,
                                     size_t k,
                                     const MicroaggOptions& options = {});

// End-to-end helper: microaggregates the quasi-identifiers of `data` and
// returns the k-anonymous dataset produced by the aggregation step.
Result<Dataset> MicroaggregateDataset(const Dataset& data, size_t k,
                                      const MicroaggOptions& options = {});

}  // namespace tcm

#endif  // TCM_MICROAGG_MICROAGG_H_
