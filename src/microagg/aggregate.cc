#include "microagg/aggregate.h"

#include <algorithm>
#include <map>

#include "common/check.h"

namespace tcm {

Value ClusterAggregate(const Dataset& data, const Cluster& rows,
                       size_t attribute_index) {
  TCM_CHECK(!rows.empty());
  const Attribute& attr = data.schema().at(attribute_index);
  switch (attr.type) {
    case AttributeType::kNumeric: {
      double sum = 0.0;
      for (size_t row : rows) sum += data.cell(row, attribute_index).numeric();
      return Value::Numeric(sum / static_cast<double>(rows.size()));
    }
    case AttributeType::kOrdinal: {
      // Median category: lower median for even sizes, as is conventional
      // for ordinal microaggregation.
      std::vector<int32_t> codes;
      codes.reserve(rows.size());
      for (size_t row : rows) {
        codes.push_back(data.cell(row, attribute_index).category());
      }
      std::sort(codes.begin(), codes.end());
      return Value::Categorical(codes[(codes.size() - 1) / 2]);
    }
    case AttributeType::kNominal: {
      // Modal category; ties broken toward the smallest code for
      // determinism.
      std::map<int32_t, size_t> counts;
      for (size_t row : rows) {
        ++counts[data.cell(row, attribute_index).category()];
      }
      int32_t best_code = counts.begin()->first;
      size_t best_count = 0;
      for (const auto& [code, count] : counts) {
        if (count > best_count) {
          best_count = count;
          best_code = code;
        }
      }
      return Value::Categorical(best_code);
    }
  }
  TCM_CHECK(false) << "unreachable";
  return Value();
}

Result<Dataset> AggregatePartition(const Dataset& data,
                                   const Partition& partition) {
  TCM_RETURN_IF_ERROR(ValidatePartition(partition, data.NumRecords(), 1));
  std::vector<size_t> qi = data.schema().QuasiIdentifierIndices();
  if (qi.empty()) {
    return Status::FailedPrecondition(
        "dataset has no quasi-identifier attributes to aggregate");
  }
  Dataset out = data;
  for (const Cluster& cluster : partition.clusters) {
    for (size_t col : qi) {
      Value aggregate = ClusterAggregate(data, cluster, col);
      for (size_t row : cluster) {
        TCM_RETURN_IF_ERROR(out.SetCell(row, col, aggregate));
      }
    }
  }
  return out;
}

}  // namespace tcm
