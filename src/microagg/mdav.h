#ifndef TCM_MICROAGG_MDAV_H_
#define TCM_MICROAGG_MDAV_H_

#include "common/result.h"
#include "distance/qi_space.h"
#include "microagg/partition.h"

namespace tcm {

// MDAV-generic (Maximum Distance to Average Vector; Domingo-Ferrer &
// Torra 2005): the standard fixed-size microaggregation heuristic.
// Repeatedly takes the record farthest from the centroid of the remaining
// records, groups it with its k-1 nearest neighbours, then does the same
// around the record farthest from that one. Every cluster has exactly k
// records except possibly the last (k..2k-1).
//
// InvalidArgument if k == 0 or k > number of records.
Result<Partition> Mdav(const QiSpace& space, size_t k);

// MDAV restricted to a subset of rows (used by chunked microaggregation).
// The returned clusters contain indices from `rows` only and cover each
// exactly once. InvalidArgument if k == 0 or k > rows.size().
Result<Partition> MdavOnRows(const QiSpace& space, std::vector<size_t> rows,
                             size_t k);

}  // namespace tcm

#endif  // TCM_MICROAGG_MDAV_H_
