#include "microagg/partition.h"

#include <algorithm>

#include "common/check.h"

namespace tcm {

size_t Partition::NumRecords() const {
  size_t total = 0;
  for (const Cluster& cluster : clusters) total += cluster.size();
  return total;
}

size_t Partition::MinClusterSize() const {
  size_t best = 0;
  bool first = true;
  for (const Cluster& cluster : clusters) {
    if (first || cluster.size() < best) {
      best = cluster.size();
      first = false;
    }
  }
  return first ? 0 : best;
}

size_t Partition::MaxClusterSize() const {
  size_t best = 0;
  for (const Cluster& cluster : clusters) {
    best = std::max(best, cluster.size());
  }
  return best;
}

double Partition::AverageClusterSize() const {
  if (clusters.empty()) return 0.0;
  return static_cast<double>(NumRecords()) /
         static_cast<double>(clusters.size());
}

std::vector<size_t> Partition::AssignmentVector() const {
  size_t n = NumRecords();
  std::vector<size_t> assignment(n, clusters.size());
  for (size_t c = 0; c < clusters.size(); ++c) {
    for (size_t row : clusters[c]) {
      TCM_DCHECK_LT(row, n) << "record index out of range";
      TCM_DCHECK_EQ(assignment[row], clusters.size())
          << "record " << row << " appears in two clusters";
      assignment[row] = c;
    }
  }
  return assignment;
}

Status ValidatePartition(const Partition& partition, size_t expected_records,
                         size_t min_cluster_size) {
  std::vector<bool> seen(expected_records, false);
  for (size_t c = 0; c < partition.clusters.size(); ++c) {
    const Cluster& cluster = partition.clusters[c];
    if (cluster.size() < min_cluster_size) {
      return Status::FailedPrecondition(
          "cluster " + std::to_string(c) + " has " +
          std::to_string(cluster.size()) + " records, fewer than " +
          std::to_string(min_cluster_size));
    }
    for (size_t row : cluster) {
      if (row >= expected_records) {
        return Status::OutOfRange("record index " + std::to_string(row) +
                                  " out of range");
      }
      if (seen[row]) {
        return Status::FailedPrecondition("record " + std::to_string(row) +
                                          " covered twice");
      }
      seen[row] = true;
    }
  }
  for (size_t row = 0; row < expected_records; ++row) {
    if (!seen[row]) {
      return Status::FailedPrecondition("record " + std::to_string(row) +
                                        " not covered by any cluster");
    }
  }
  return Status::Ok();
}

}  // namespace tcm
