#include "microagg/refine.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/check.h"

namespace tcm {
namespace {

// Incremental cluster state. With per-cluster coordinate sums and the sum
// of squared norms, a cluster's exact within-SSE is
//   sumsq - ||sum||^2 / count,
// so the exact SSE change of any move (relocation or swap) is O(d).
struct ClusterState {
  std::vector<double> sum;  // per dimension
  double sumsq = 0.0;       // sum over members of ||x||^2
  size_t count = 0;

  double Sse() const {
    if (count == 0) return 0.0;
    double norm = 0.0;
    for (double s : sum) norm += s * s;
    return sumsq - norm / static_cast<double>(count);
  }
};

double SquaredNorm(const double* p, size_t d) {
  double total = 0.0;
  for (size_t i = 0; i < d; ++i) total += p[i] * p[i];
  return total;
}

// SSE of `cluster` after adding `add` (nullable) and removing `remove`
// (nullable) — without mutating it.
double SseAfter(const ClusterState& cluster, const double* add,
                const double* remove, size_t d) {
  double count = static_cast<double>(cluster.count) + (add ? 1.0 : 0.0) -
                 (remove ? 1.0 : 0.0);
  if (count <= 0.0) return 0.0;
  double sumsq = cluster.sumsq;
  double norm = 0.0;
  for (size_t i = 0; i < d; ++i) {
    double s = cluster.sum[i] + (add ? add[i] : 0.0) -
               (remove ? remove[i] : 0.0);
    norm += s * s;
  }
  if (add) sumsq += SquaredNorm(add, d);
  if (remove) sumsq -= SquaredNorm(remove, d);
  return sumsq - norm / count;
}

void Apply(ClusterState* cluster, const double* add, const double* remove,
           size_t d) {
  for (size_t i = 0; i < d; ++i) {
    cluster->sum[i] += (add ? add[i] : 0.0) - (remove ? remove[i] : 0.0);
  }
  if (add) {
    cluster->sumsq += SquaredNorm(add, d);
    ++cluster->count;
  }
  if (remove) {
    cluster->sumsq -= SquaredNorm(remove, d);
    --cluster->count;
  }
}

}  // namespace

double PartitionQiSse(const QiSpace& space, const Partition& partition) {
  double total = 0.0;
  for (const Cluster& cluster : partition.clusters) {
    if (cluster.empty()) continue;
    std::vector<double> centroid = space.Centroid(cluster);
    for (size_t row : cluster) {
      total += space.SquaredDistanceToPoint(row, centroid);
    }
  }
  return total;
}

Result<Partition> RefinePartition(const QiSpace& space, Partition partition,
                                  const RefineOptions& options,
                                  RefineStats* stats) {
  TCM_RETURN_IF_ERROR(ValidatePartition(partition, space.num_records(),
                                        options.min_cluster_size));
  const size_t n = space.num_records();
  const size_t d = space.num_dims();
  const size_t k = options.min_cluster_size;
  const size_t num_clusters = partition.clusters.size();

  std::vector<size_t> assignment = partition.AssignmentVector();
  std::vector<std::vector<size_t>> members = partition.clusters;
  std::vector<ClusterState> clusters(num_clusters);
  for (size_t c = 0; c < num_clusters; ++c) {
    clusters[c].sum.assign(d, 0.0);
    clusters[c].count = members[c].size();
    for (size_t row : members[c]) {
      const double* p = space.point(row);
      for (size_t dim = 0; dim < d; ++dim) clusters[c].sum[dim] += p[dim];
      clusters[c].sumsq += SquaredNorm(p, d);
    }
  }

  if (stats != nullptr) {
    stats->sse_before = PartitionQiSse(space, partition);
    stats->moves = 0;
    stats->passes = 0;
  }

  constexpr double kEpsilon = 1e-10;
  auto remove_member = [&members](size_t cluster, size_t row) {
    auto& list = members[cluster];
    auto it = std::find(list.begin(), list.end(), row);
    TCM_CHECK(it != list.end());
    *it = list.back();
    list.pop_back();
  };

  for (size_t pass = 0; pass < options.max_passes; ++pass) {
    if (stats != nullptr) ++stats->passes;
    size_t moves_this_pass = 0;
    for (size_t row = 0; row < n; ++row) {
      size_t source = assignment[row];
      const double* x = space.point(row);
      double source_sse = clusters[source].Sse();

      // Candidate 1: relocate to the best other cluster (donor must keep
      // >= k members).
      double best_delta = -kEpsilon;
      size_t best_target = source;
      size_t best_swap_row = n;  // n = relocation, otherwise the partner
      if (clusters[source].count > k) {
        double source_without = SseAfter(clusters[source], nullptr, x, d);
        for (size_t target = 0; target < num_clusters; ++target) {
          if (target == source || clusters[target].count == 0) continue;
          double delta = (source_without +
                          SseAfter(clusters[target], x, nullptr, d)) -
                         (source_sse + clusters[target].Sse());
          if (delta < best_delta) {
            best_delta = delta;
            best_target = target;
            best_swap_row = n;
          }
        }
      }

      // Candidate 2: swap with a member of the cluster whose centroid is
      // nearest to x (sizes unchanged, so exact-k partitions improve too).
      size_t nearest = source;
      double nearest_dist = std::numeric_limits<double>::infinity();
      for (size_t target = 0; target < num_clusters; ++target) {
        if (target == source || clusters[target].count == 0) continue;
        double dist = 0.0;
        double inv = 1.0 / static_cast<double>(clusters[target].count);
        for (size_t dim = 0; dim < d; ++dim) {
          double diff = x[dim] - clusters[target].sum[dim] * inv;
          dist += diff * diff;
        }
        if (dist < nearest_dist) {
          nearest_dist = dist;
          nearest = target;
        }
      }
      if (nearest != source) {
        double target_sse = clusters[nearest].Sse();
        for (size_t partner : members[nearest]) {
          const double* y = space.point(partner);
          double delta =
              (SseAfter(clusters[source], y, x, d) +
               SseAfter(clusters[nearest], x, y, d)) -
              (source_sse + target_sse);
          if (delta < best_delta) {
            best_delta = delta;
            best_target = nearest;
            best_swap_row = partner;
          }
        }
      }

      if (best_target == source) continue;
      if (best_swap_row == n) {
        // Relocation.
        Apply(&clusters[source], nullptr, x, d);
        Apply(&clusters[best_target], x, nullptr, d);
        remove_member(source, row);
        members[best_target].push_back(row);
        assignment[row] = best_target;
      } else {
        // Swap.
        const double* y = space.point(best_swap_row);
        Apply(&clusters[source], y, x, d);
        Apply(&clusters[best_target], x, y, d);
        remove_member(source, row);
        remove_member(best_target, best_swap_row);
        members[source].push_back(best_swap_row);
        members[best_target].push_back(row);
        assignment[row] = best_target;
        assignment[best_swap_row] = source;
      }
      ++moves_this_pass;
    }
    if (stats != nullptr) stats->moves += moves_this_pass;
    if (moves_this_pass == 0) break;
  }

  Partition refined;
  refined.clusters.assign(num_clusters, {});
  for (size_t row = 0; row < n; ++row) {
    refined.clusters[assignment[row]].push_back(row);
  }
  std::erase_if(refined.clusters,
                [](const Cluster& cluster) { return cluster.empty(); });
  if (stats != nullptr) {
    stats->sse_after = PartitionQiSse(space, refined);
  }
  return refined;
}

}  // namespace tcm
