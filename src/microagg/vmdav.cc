#include "microagg/vmdav.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace tcm {
namespace {

void RemoveRows(const Cluster& cluster, std::vector<size_t>* remaining) {
  size_t max_index = 0;
  for (size_t row : *remaining) max_index = std::max(max_index, row);
  std::vector<bool> in_cluster(max_index + 1, false);
  for (size_t row : cluster) {
    if (row <= max_index) in_cluster[row] = true;
  }
  std::erase_if(*remaining, [&](size_t row) { return in_cluster[row]; });
}

// Minimum squared distance from `row` to any member of `cluster`.
double MinSquaredDistanceToCluster(const QiSpace& space, size_t row,
                                   const Cluster& cluster) {
  double best = std::numeric_limits<double>::infinity();
  for (size_t member : cluster) {
    best = std::min(best, space.SquaredDistance(row, member));
  }
  return best;
}

}  // namespace

Result<Partition> VMdav(const QiSpace& space, size_t k,
                        const VMdavOptions& options) {
  std::vector<size_t> all(space.num_records());
  std::iota(all.begin(), all.end(), 0);
  return VMdavOnRows(space, std::move(all), k, options);
}

Result<Partition> VMdavOnRows(const QiSpace& space, std::vector<size_t> rows,
                              size_t k, const VMdavOptions& options) {
  const size_t n = rows.size();
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (k > n) {
    return Status::InvalidArgument("k=" + std::to_string(k) +
                                   " exceeds number of records " +
                                   std::to_string(n));
  }
  if (options.gamma < 0.0) {
    return Status::InvalidArgument("gamma must be non-negative");
  }

  Partition partition;
  std::vector<size_t> remaining = std::move(rows);
  const std::vector<double> global_centroid = space.Centroid(remaining);

  while (remaining.size() >= k) {
    size_t extreme = space.FarthestFromPoint(remaining, global_centroid);
    Cluster cluster = space.NearestToRecord(remaining, extreme, k);
    RemoveRows(cluster, &remaining);

    // Variable-size extension: add unassigned records while they are
    // gamma-closer to the cluster than to their unassigned neighbourhood.
    while (cluster.size() < 2 * k - 1 && !remaining.empty()) {
      size_t best_row = remaining[0];
      double best_din = std::numeric_limits<double>::infinity();
      for (size_t row : remaining) {
        double din = MinSquaredDistanceToCluster(space, row, cluster);
        if (din < best_din) {
          best_din = din;
          best_row = row;
        }
      }
      double dout = std::numeric_limits<double>::infinity();
      for (size_t row : remaining) {
        if (row == best_row) continue;
        dout = std::min(dout, space.SquaredDistance(best_row, row));
      }
      // Compare Euclidean (not squared) distances against gamma.
      bool gain = remaining.size() == 1 ||
                  std::sqrt(best_din) < options.gamma * std::sqrt(dout);
      if (!gain) break;
      cluster.push_back(best_row);
      RemoveRows({best_row}, &remaining);
    }
    partition.clusters.push_back(std::move(cluster));
  }

  // Fewer than k records left: each joins the cluster with the nearest
  // centroid.
  for (size_t row : remaining) {
    size_t best_cluster = 0;
    double best_dist = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < partition.clusters.size(); ++c) {
      std::vector<double> centroid = space.Centroid(partition.clusters[c]);
      double dist = space.SquaredDistanceToPoint(row, centroid);
      if (dist < best_dist) {
        best_dist = dist;
        best_cluster = c;
      }
    }
    partition.clusters[best_cluster].push_back(row);
  }
  return partition;
}

}  // namespace tcm
