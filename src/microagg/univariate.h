#ifndef TCM_MICROAGG_UNIVARIATE_H_
#define TCM_MICROAGG_UNIVARIATE_H_

#include <vector>

#include "common/result.h"
#include "distance/qi_space.h"
#include "microagg/partition.h"

namespace tcm {

// Optimal univariate microaggregation (Hansen & Mukherjee 2003): for a
// totally ordered attribute, the SSE-minimal partition into groups of
// consecutive sorted values with sizes in [k, 2k-1] can be found exactly
// by dynamic programming in O(n k) time after an O(n log n) sort. This is
// the one case where microaggregation is solvable to optimality (the
// multivariate problem is NP-hard, paper Sec. 2.3).
//
// Returns clusters of record indices into `values`.
// InvalidArgument if k == 0 or k > n.
Result<Partition> OptimalUnivariateMicroaggregation(
    const std::vector<double>& values, size_t k);

// SSE of a partition of `values` against per-cluster means (the quantity
// the DP minimizes); useful for comparing heuristics.
double UnivariateSse(const std::vector<double>& values,
                     const Partition& partition);

// Projection microaggregation: projects the (normalized) quasi-identifier
// space onto its first principal component — computed by power iteration —
// and runs the optimal univariate DP on the scores. A classic cheap
// heuristic for multivariate data; exact when the data is intrinsically
// one-dimensional.
Result<Partition> ProjectionMicroaggregation(const QiSpace& space, size_t k);

// First-principal-component scores of the QI block (unit-norm direction,
// sign fixed so the first nonzero loading is positive). Exposed for tests.
std::vector<double> PrincipalComponentScores(const QiSpace& space);

}  // namespace tcm

#endif  // TCM_MICROAGG_UNIVARIATE_H_
