#ifndef TCM_MICROAGG_CHUNKED_H_
#define TCM_MICROAGG_CHUNKED_H_

#include "common/result.h"
#include "distance/qi_space.h"
#include "microagg/microagg.h"
#include "microagg/partition.h"

namespace tcm {

struct ChunkedOptions {
  // Records per chunk. MDAV is O(m^2) within a chunk, so the total cost
  // is O(n * chunk_size): chunk_size trades SSE for speed. Must be at
  // least 3k to give MDAV room to work; it is clamped up if not.
  size_t chunk_size = 2048;
  // Heuristic applied within each chunk.
  MicroaggOptions inner;
};

// Chunked microaggregation for large data sets (the scalability concern
// behind the paper's Fig. 5): orders records by their first principal
// component, slices that order into chunks, and microaggregates each
// chunk independently. Neighbouring records in PC order are usually
// neighbours in QI space, so the partition quality degrades gracefully
// while the quadratic MDAV cost drops to O(n * chunk_size).
//
// InvalidArgument if k == 0 or k > n or chunk_size == 0.
Result<Partition> ChunkedMicroaggregation(const QiSpace& space, size_t k,
                                          const ChunkedOptions& options = {});

}  // namespace tcm

#endif  // TCM_MICROAGG_CHUNKED_H_
