#ifndef TCM_MICROAGG_PARTITION_H_
#define TCM_MICROAGG_PARTITION_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace tcm {

// A cluster is a set of record indices into some dataset.
using Cluster = std::vector<size_t>;

// A partition of the records 0..n-1 into disjoint clusters. This is the
// output of every microaggregation / t-closeness algorithm in the library;
// the aggregation step (see aggregate.h) turns it into an anonymized
// dataset.
struct Partition {
  std::vector<Cluster> clusters;

  size_t NumClusters() const { return clusters.size(); }

  // Total number of records across clusters.
  size_t NumRecords() const;

  // Size of the smallest cluster — the k-anonymity level actually achieved.
  // 0 for an empty partition.
  size_t MinClusterSize() const;

  size_t MaxClusterSize() const;

  // Mean cluster size; 0 for an empty partition.
  double AverageClusterSize() const;

  // cluster id of each record; records must be covered exactly once
  // (checked), n inferred as NumRecords().
  std::vector<size_t> AssignmentVector() const;
};

// OK iff the clusters cover every index in [0, expected_records) exactly
// once and every cluster has at least min_cluster_size records.
Status ValidatePartition(const Partition& partition, size_t expected_records,
                         size_t min_cluster_size);

}  // namespace tcm

#endif  // TCM_MICROAGG_PARTITION_H_
