#include "microagg/mdav.h"

#include <algorithm>
#include <numeric>

namespace tcm {
namespace {

// Removes `cluster` members from `remaining` (order preserved).
void RemoveRows(const Cluster& cluster, std::vector<size_t>* remaining) {
  std::vector<bool> in_cluster_lookup;
  // Clusters are tiny relative to n; a sorted probe is cheap and avoids an
  // O(n) bitmap rebuild per call only when clusters are large. Simplicity
  // wins: use a bitmap sized to the max index.
  size_t max_index = 0;
  for (size_t row : *remaining) max_index = std::max(max_index, row);
  in_cluster_lookup.assign(max_index + 1, false);
  for (size_t row : cluster) {
    if (row <= max_index) in_cluster_lookup[row] = true;
  }
  std::erase_if(*remaining,
                [&](size_t row) { return in_cluster_lookup[row]; });
}

}  // namespace

Result<Partition> Mdav(const QiSpace& space, size_t k) {
  std::vector<size_t> all(space.num_records());
  std::iota(all.begin(), all.end(), 0);
  return MdavOnRows(space, std::move(all), k);
}

Result<Partition> MdavOnRows(const QiSpace& space, std::vector<size_t> rows,
                             size_t k) {
  const size_t n = rows.size();
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (k > n) {
    return Status::InvalidArgument("k=" + std::to_string(k) +
                                   " exceeds number of records " +
                                   std::to_string(n));
  }

  Partition partition;
  std::vector<size_t> remaining = std::move(rows);

  while (remaining.size() >= 3 * k) {
    std::vector<double> centroid = space.Centroid(remaining);
    size_t extreme_r = space.FarthestFromPoint(remaining, centroid);
    Cluster cluster_r = space.NearestToRecord(remaining, extreme_r, k);
    RemoveRows(cluster_r, &remaining);
    partition.clusters.push_back(std::move(cluster_r));

    const double* extreme_point = space.point(extreme_r);
    std::vector<double> extreme_coords(extreme_point,
                                       extreme_point + space.num_dims());
    size_t extreme_s = space.FarthestFromPoint(remaining, extreme_coords);
    Cluster cluster_s = space.NearestToRecord(remaining, extreme_s, k);
    RemoveRows(cluster_s, &remaining);
    partition.clusters.push_back(std::move(cluster_s));
  }

  if (remaining.size() >= 2 * k) {
    std::vector<double> centroid = space.Centroid(remaining);
    size_t extreme_r = space.FarthestFromPoint(remaining, centroid);
    Cluster cluster_r = space.NearestToRecord(remaining, extreme_r, k);
    RemoveRows(cluster_r, &remaining);
    partition.clusters.push_back(std::move(cluster_r));
  }
  if (!remaining.empty()) {
    partition.clusters.push_back(std::move(remaining));
  }
  return partition;
}

}  // namespace tcm
