#ifndef TCM_MICROAGG_AGGREGATE_H_
#define TCM_MICROAGG_AGGREGATE_H_

#include "common/result.h"
#include "data/dataset.h"
#include "microagg/partition.h"

namespace tcm {

// The aggregation step of microaggregation (paper Sec. 2.3): within each
// cluster, every quasi-identifier cell is replaced by the cluster's
// aggregate for that attribute — the mean for numeric attributes, the
// median category for ordinal ones and the modal category for nominal
// ones. Confidential and other attributes are released unchanged, so the
// result is k-anonymous with k = the partition's minimum cluster size.

// Aggregate value of `attribute_index` over the records in `rows`.
// Requires a non-empty cluster.
Value ClusterAggregate(const Dataset& data, const Cluster& rows,
                       size_t attribute_index);

// Returns the anonymized dataset; FailedPrecondition if the partition does
// not exactly cover the dataset.
Result<Dataset> AggregatePartition(const Dataset& data,
                                   const Partition& partition);

}  // namespace tcm

#endif  // TCM_MICROAGG_AGGREGATE_H_
