#ifndef TCM_DATA_GENERATOR_H_
#define TCM_DATA_GENERATOR_H_

#include <cstdint>

#include "data/dataset.h"

namespace tcm {

// Synthetic stand-ins for the paper's evaluation data. The real data
// (CASC Census, OSHPD Patient Discharge 2010) are not redistributable, so
// we generate data sets that reproduce the properties the paper's analysis
// depends on: record counts, attribute roles, and the strength of the
// dependence between quasi-identifiers and the confidential attribute
// (the paper reports multiple correlations of 0.52 for MCD, 0.92 for HCD
// and 0.129 for Patient Discharge). See DESIGN.md for the substitution
// rationale.

struct CensusLikeOptions {
  size_t num_records = 1080;  // paper's Census extract size
  uint64_t seed = 7;
};

// Four numeric attributes mirroring the paper's Census extract:
//   TAXINC, POTHVAL  — quasi-identifiers
//   FEDTAX           — confidential candidate, QI correlation ~ 0.52
//   FICA             — confidential candidate, QI correlation ~ 0.92
// Roles: TAXINC/POTHVAL are kQuasiIdentifier; FEDTAX/FICA are kOther until
// one of them is promoted by MakeMcdDataset / MakeHcdDataset.
Dataset MakeCensusLike(const CensusLikeOptions& options = {});

// Moderately correlated data set: FEDTAX confidential (paper Sec. 8.1).
Dataset MakeMcdDataset(const CensusLikeOptions& options = {});

// Highly correlated data set: FICA confidential (paper Sec. 8.1).
Dataset MakeHcdDataset(const CensusLikeOptions& options = {});

struct PatientDischargeOptions {
  // Paper: 23,435 records after removing missing values. Algorithm 2 has
  // cubic cost, so benches typically pass a smaller n; the generator
  // defaults to the paper's size.
  size_t num_records = 23435;
  uint64_t seed = 11;
};

// Seven numeric quasi-identifiers (age, zip region, admission day, length
// of stay, severity, sex, payer) plus one confidential attribute (charge)
// with aggregate QI correlation ~ 0.13.
Dataset MakePatientDischargeLike(const PatientDischargeOptions& options = {});

// Uniform-[0,1] quasi-identifiers plus one uniform confidential attribute;
// a neutral workload for tests and micro-benchmarks.
Dataset MakeUniformDataset(size_t num_records, size_t num_quasi_identifiers,
                           uint64_t seed);

struct AdultLikeOptions {
  size_t num_records = 2000;
  uint64_t seed = 23;
};

// Mixed-type microdata in the style of the UCI Adult census: numeric,
// ordinal and nominal quasi-identifiers plus a numeric confidential
// attribute. Exercises the full attribute taxonomy (median/mode
// aggregation, category labels in CSV I/O):
//   AGE (numeric QI), EDUCATION (ordinal QI, 5 levels),
//   OCCUPATION (nominal QI, 6 categories), HOURS (numeric QI),
//   INCOME (numeric confidential).
Dataset MakeAdultLike(const AdultLikeOptions& options = {});

// Gaussian mixture in QI space (distinct modes make microaggregation
// clusters meaningful) with a confidential attribute correlated to the
// mode. Used to exercise outlier/cluster behaviour in tests.
Dataset MakeClusteredDataset(size_t num_records, size_t num_quasi_identifiers,
                             size_t num_modes, uint64_t seed);

}  // namespace tcm

#endif  // TCM_DATA_GENERATOR_H_
