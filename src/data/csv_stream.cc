#include "data/csv_stream.h"

#include <istream>
#include <sstream>
#include <utility>

#include "common/strings.h"

namespace tcm {

// --- CsvTokenizer ---

void CsvTokenizer::Feed(std::string_view chunk) {
  if (finished_) return;
  for (char c : chunk) {
    if (!error_.ok()) return;
    Consume(c);
  }
}

void CsvTokenizer::Finish() {
  if (finished_) return;
  finished_ = true;
  if (!error_.ok()) return;
  if (pending_cr_) {
    pending_cr_ = false;
    if (state_ == State::kQuoteSeen) {
      // "...x"\r<EOF>: accept the CR as the record terminator.
      EndRecord();
      return;
    }
    field_.push_back('\r');
    if (state_ != State::kQuoted) state_ = State::kUnquoted;
  }
  switch (state_) {
    case State::kRecordStart:
      break;  // input ended cleanly after a newline (or was empty)
    case State::kFieldStart:
    case State::kUnquoted:
    case State::kQuoteSeen:
      EndRecord();  // final record without a trailing newline
      break;
    case State::kQuoted:
      Fail("unterminated quoted field at end of input");
      break;
  }
}

Result<bool> CsvTokenizer::Next(std::vector<std::string>* fields) {
  if (!ready_.empty()) {
    PendingRecord& front = ready_.front();
    *fields = std::move(front.fields);
    last_record_line_ = front.line;
    ready_.pop_front();
    return true;
  }
  if (!error_.ok()) return error_;
  return false;
}

void CsvTokenizer::Consume(char c) {
  if (pending_cr_) {
    pending_cr_ = false;
    if (c == '\n') {
      ++line_;
      EndRecord();
      return;
    }
    if (state_ == State::kQuoteSeen) {
      Fail("unexpected character after closing quote");
      return;
    }
    // A CR not followed by LF is field data, like any other byte.
    field_.push_back('\r');
    if (state_ != State::kQuoted) state_ = State::kUnquoted;
  }
  switch (state_) {
    case State::kRecordStart:
    case State::kFieldStart:
      if (c == '"') {
        state_ = State::kQuoted;
      } else if (c == ',') {
        EndField();
        state_ = State::kFieldStart;
      } else if (c == '\n') {
        ++line_;
        EndRecord();
      } else if (c == '\r') {
        pending_cr_ = true;
      } else {
        field_.push_back(c);
        state_ = State::kUnquoted;
      }
      break;
    case State::kUnquoted:
      if (c == ',') {
        EndField();
        state_ = State::kFieldStart;
      } else if (c == '\n') {
        ++line_;
        EndRecord();
      } else if (c == '\r') {
        pending_cr_ = true;
      } else if (c == '"') {
        Fail("quote character inside unquoted field");
      } else {
        field_.push_back(c);
      }
      break;
    case State::kQuoted:
      if (c == '"') {
        state_ = State::kQuoteSeen;
      } else {
        if (c == '\n') ++line_;
        field_.push_back(c);
      }
      break;
    case State::kQuoteSeen:
      if (c == '"') {
        field_.push_back('"');  // "" escape
        state_ = State::kQuoted;
      } else if (c == ',') {
        EndField();
        state_ = State::kFieldStart;
      } else if (c == '\n') {
        ++line_;
        EndRecord();
      } else if (c == '\r') {
        pending_cr_ = true;
      } else {
        Fail("unexpected character after closing quote");
      }
      break;
  }
}

void CsvTokenizer::EndField() {
  record_.push_back(std::move(field_));
  field_.clear();
}

void CsvTokenizer::EndRecord() {
  EndField();
  ready_.push_back(PendingRecord{std::move(record_), record_start_line_});
  record_.clear();
  state_ = State::kRecordStart;
  record_start_line_ = line_;
}

void CsvTokenizer::Fail(const std::string& message) {
  if (!error_.ok()) return;
  error_ = Status::IoError("line " + std::to_string(line_) + ": " + message);
}

// --- Shared record-level helpers ---

bool IsBlankCsvRecord(const std::vector<std::string>& fields) {
  return fields.size() == 1 && StripWhitespace(fields[0]).empty();
}

Status ValidateCsvHeader(const std::vector<std::string>& fields,
                         const Schema& schema) {
  if (fields.size() != schema.size()) {
    return Status::IoError("header has " + std::to_string(fields.size()) +
                           " columns, schema expects " +
                           std::to_string(schema.size()));
  }
  for (size_t i = 0; i < fields.size(); ++i) {
    if (std::string(StripWhitespace(fields[i])) != schema.at(i).name) {
      return Status::IoError("header column " + std::to_string(i) + " is '" +
                             fields[i] + "', expected '" + schema.at(i).name +
                             "'");
    }
  }
  return Status::Ok();
}

Schema NumericSchemaFromHeader(const std::vector<std::string>& fields) {
  std::vector<Attribute> attrs;
  attrs.reserve(fields.size());
  for (const std::string& name : fields) {
    attrs.push_back(Attribute{std::string(StripWhitespace(name)),
                              AttributeType::kNumeric, AttributeRole::kOther,
                              {}});
  }
  return Schema(std::move(attrs));
}

Result<Record> CsvFieldsToRecord(const std::vector<std::string>& fields,
                                 const Schema& schema, size_t line) {
  if (fields.size() != schema.size()) {
    return Status::IoError("line " + std::to_string(line) + " has " +
                           std::to_string(fields.size()) + " fields");
  }
  Record record;
  record.reserve(fields.size());
  for (size_t i = 0; i < fields.size(); ++i) {
    std::string field(StripWhitespace(fields[i]));
    const Attribute& attr = schema.at(i);
    if (attr.is_categorical()) {
      int32_t code = -1;
      for (size_t c = 0; c < attr.categories.size(); ++c) {
        if (attr.categories[c] == field) {
          code = static_cast<int32_t>(c);
          break;
        }
      }
      if (code < 0) {
        return Status::IoError("line " + std::to_string(line) +
                               ": unknown category '" + field +
                               "' for attribute '" + attr.name + "'");
      }
      record.push_back(Value::Categorical(code));
    } else {
      double value = 0.0;
      if (!ParseDouble(field, &value)) {
        return Status::IoError("line " + std::to_string(line) +
                               ": cannot parse '" + field +
                               "' as a number for attribute '" + attr.name +
                               "'");
      }
      record.push_back(Value::Numeric(value));
    }
  }
  return record;
}

// --- Shared formatting ---

namespace {

void AppendCsvField(std::string_view text, std::string* out) {
  if (text.find_first_of(",\"\n\r") == std::string_view::npos) {
    out->append(text);
    return;
  }
  out->push_back('"');
  for (char c : text) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

void AppendCsvHeader(const Schema& schema, std::string* out) {
  for (size_t i = 0; i < schema.size(); ++i) {
    if (i > 0) out->push_back(',');
    AppendCsvField(schema.at(i).name, out);
  }
  out->push_back('\n');
}

void AppendCsvRow(const Dataset& data, size_t row, std::string* out) {
  const Schema& schema = data.schema();
  for (size_t col = 0; col < schema.size(); ++col) {
    if (col > 0) out->push_back(',');
    const Value& v = data.cell(row, col);
    if (v.is_categorical()) {
      const auto& categories = schema.at(col).categories;
      size_t code = static_cast<size_t>(v.category());
      if (code < categories.size()) {
        AppendCsvField(categories[code], out);
      } else {
        out->append(std::to_string(v.category()));
      }
    } else {
      // 17 significant digits: doubles round-trip exactly.
      out->append(FormatDouble(v.numeric(), 17));
    }
  }
  out->push_back('\n');
}

void WriteCsvRows(const Dataset& data, std::ostream& out) {
  std::string buffer;
  for (size_t row = 0; row < data.NumRecords(); ++row) {
    AppendCsvRow(data, row, &buffer);
    if (buffer.size() >= (1u << 16)) {
      out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
      buffer.clear();
    }
  }
  out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
}

// --- StreamingCsvReader ---

Result<std::unique_ptr<StreamingCsvReader>> StreamingCsvReader::Make(
    std::unique_ptr<std::istream> input, const Schema* schema,
    const StreamingCsvOptions& options) {
  if (options.buffer_bytes == 0) {
    return Status::InvalidArgument("buffer_bytes must be positive");
  }
  std::unique_ptr<StreamingCsvReader> reader(new StreamingCsvReader(
      std::move(input), schema != nullptr ? *schema : Schema(), options));
  std::vector<std::string> header;
  TCM_ASSIGN_OR_RETURN(bool got_header, reader->NextRecord(&header));
  if (!got_header) {
    return Status::IoError("empty input: missing header row");
  }
  if (schema != nullptr) {
    TCM_RETURN_IF_ERROR(ValidateCsvHeader(header, *schema));
  } else {
    reader->schema_ = NumericSchemaFromHeader(header);
  }
  return reader;
}

Result<std::unique_ptr<StreamingCsvReader>> StreamingCsvReader::Open(
    const std::string& path, const Schema& schema,
    const StreamingCsvOptions& options) {
  auto file = std::make_unique<std::ifstream>(path, std::ios::binary);
  if (!*file) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  return Make(std::move(file), &schema, options);
}

Result<std::unique_ptr<StreamingCsvReader>> StreamingCsvReader::OpenNumeric(
    const std::string& path, const StreamingCsvOptions& options) {
  auto file = std::make_unique<std::ifstream>(path, std::ios::binary);
  if (!*file) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  return Make(std::move(file), nullptr, options);
}

Result<std::unique_ptr<StreamingCsvReader>> StreamingCsvReader::FromStream(
    std::unique_ptr<std::istream> input, const Schema& schema,
    const StreamingCsvOptions& options) {
  return Make(std::move(input), &schema, options);
}

Result<std::unique_ptr<StreamingCsvReader>>
StreamingCsvReader::FromStreamNumeric(std::unique_ptr<std::istream> input,
                                      const StreamingCsvOptions& options) {
  return Make(std::move(input), nullptr, options);
}

Status StreamingCsvReader::ReplaceSchema(Schema schema) {
  if (schema.size() != schema_.size()) {
    return Status::InvalidArgument(
        "replacement schema has " + std::to_string(schema.size()) +
        " attributes, reader has " + std::to_string(schema_.size()));
  }
  for (size_t i = 0; i < schema.size(); ++i) {
    if (schema.at(i).name != schema_.at(i).name ||
        schema.at(i).type != schema_.at(i).type ||
        schema.at(i).categories != schema_.at(i).categories) {
      return Status::InvalidArgument(
          "replacement schema changes attribute " + std::to_string(i) +
          " ('" + schema_.at(i).name + "'); only roles may change");
    }
  }
  schema_ = std::move(schema);
  return Status::Ok();
}

Result<bool> StreamingCsvReader::NextRecord(std::vector<std::string>* fields) {
  while (true) {
    TCM_ASSIGN_OR_RETURN(bool got, tokenizer_.Next(fields));
    if (got) return true;
    if (input_done_) return false;
    chunk_.resize(options_.buffer_bytes);
    input_->read(chunk_.data(), static_cast<std::streamsize>(chunk_.size()));
    std::streamsize n = input_->gcount();
    if (n > 0) {
      tokenizer_.Feed(
          std::string_view(chunk_.data(), static_cast<size_t>(n)));
    }
    if (input_->bad()) {
      return Status::IoError("error reading CSV input");
    }
    if (input_->eof()) {
      tokenizer_.Finish();
      input_done_ = true;
    }
  }
}

Result<size_t> StreamingCsvReader::ReadInto(Dataset* out, size_t max_rows) {
  size_t appended = 0;
  std::vector<std::string> fields;
  while (appended < max_rows) {
    TCM_ASSIGN_OR_RETURN(bool got, NextRecord(&fields));
    if (!got) break;
    if (IsBlankCsvRecord(fields)) continue;
    TCM_ASSIGN_OR_RETURN(
        Record record,
        CsvFieldsToRecord(fields, schema_, tokenizer_.record_line()));
    TCM_RETURN_IF_ERROR(out->Append(std::move(record)));
    ++rows_read_;
    ++appended;
  }
  return appended;
}

// --- StreamingCsvWriter ---

Result<std::unique_ptr<StreamingCsvWriter>> StreamingCsvWriter::Open(
    const std::string& path, const Schema& schema) {
  std::ofstream file(path, std::ios::binary);
  if (!file) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  std::string header;
  AppendCsvHeader(schema, &header);
  file.write(header.data(), static_cast<std::streamsize>(header.size()));
  if (!file.good()) {
    return Status::IoError("write to '" + path + "' failed");
  }
  return std::unique_ptr<StreamingCsvWriter>(
      new StreamingCsvWriter(std::move(file), path));
}

Status StreamingCsvWriter::WriteRows(const Dataset& batch) {
  WriteCsvRows(batch, file_);
  if (!file_.good()) {
    return Status::IoError("write to '" + path_ + "' failed");
  }
  rows_written_ += batch.NumRecords();
  return Status::Ok();
}

Status StreamingCsvWriter::Close() {
  file_.flush();
  if (!file_.good()) {
    return Status::IoError("write to '" + path_ + "' failed");
  }
  file_.close();
  return Status::Ok();
}

}  // namespace tcm
