#ifndef TCM_DATA_ATTRIBUTE_H_
#define TCM_DATA_ATTRIBUTE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace tcm {

// Statistical-disclosure-control attribute taxonomy (Hundepool et al. 2012).
enum class AttributeRole {
  kIdentifier,       // directly identifying (name, SSN); dropped on release
  kQuasiIdentifier,  // externally linkable (age, zip); masked
  kConfidential,     // the sensitive payload (diagnosis, income)
  kOther,            // released as-is
};

enum class AttributeType {
  kNumeric,  // continuous or integer-valued, totally ordered
  kOrdinal,  // categorical with a meaningful order (education level)
  kNominal,  // categorical without order (job, diagnosis)
};

const char* AttributeRoleName(AttributeRole role);
const char* AttributeTypeName(AttributeType type);

// Description of one column: name, type, SDC role and — for categorical
// attributes — the category labels (the Value code indexes this list).
struct Attribute {
  std::string name;
  AttributeType type = AttributeType::kNumeric;
  AttributeRole role = AttributeRole::kOther;
  std::vector<std::string> categories;  // empty for numeric attributes

  bool is_categorical() const { return type != AttributeType::kNumeric; }
};

// An ordered collection of attributes with name lookup and role queries.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attributes);

  size_t size() const { return attributes_.size(); }
  bool empty() const { return attributes_.empty(); }
  const Attribute& at(size_t index) const;
  const std::vector<Attribute>& attributes() const { return attributes_; }

  // Index of the attribute named `name`, or NotFound.
  Result<size_t> IndexOf(const std::string& name) const;

  // Indices of all attributes with the given role, in schema order.
  std::vector<size_t> IndicesWithRole(AttributeRole role) const;

  std::vector<size_t> QuasiIdentifierIndices() const {
    return IndicesWithRole(AttributeRole::kQuasiIdentifier);
  }
  std::vector<size_t> ConfidentialIndices() const {
    return IndicesWithRole(AttributeRole::kConfidential);
  }

  // Returns a copy of this schema with the role of `name` replaced.
  // NotFound if no attribute has that name.
  Result<Schema> WithRole(const std::string& name, AttributeRole role) const;

 private:
  std::vector<Attribute> attributes_;
};

}  // namespace tcm

#endif  // TCM_DATA_ATTRIBUTE_H_
