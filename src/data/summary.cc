#include "data/summary.h"

#include <algorithm>
#include <cstdio>
#include <set>

#include "data/stats.h"

namespace tcm {

Result<DatasetSummary> SummarizeDataset(const Dataset& data) {
  if (data.NumRecords() == 0) {
    return Status::InvalidArgument("empty dataset");
  }
  DatasetSummary summary;
  summary.records = data.NumRecords();
  for (size_t col = 0; col < data.NumAttributes(); ++col) {
    const Attribute& attr = data.schema().at(col);
    std::vector<double> values = data.ColumnAsDouble(col);
    AttributeSummary out;
    out.name = attr.name;
    out.type = AttributeTypeName(attr.type);
    out.role = AttributeRoleName(attr.role);
    out.min = Min(values);
    out.max = Max(values);
    out.mean = Mean(values);
    out.stddev = StdDev(values);
    out.median = Median(values);
    out.distinct_values =
        std::set<double>(values.begin(), values.end()).size();
    summary.attributes.push_back(std::move(out));
  }
  size_t confidential_count = data.schema().ConfidentialIndices().size();
  for (size_t offset = 0; offset < confidential_count; ++offset) {
    summary.qi_confidential_correlation.push_back(
        QiConfidentialCorrelation(data, offset));
  }
  return summary;
}

Result<std::vector<size_t>> ColumnHistogram(const Dataset& data, size_t col,
                                            size_t bins) {
  if (col >= data.NumAttributes()) {
    return Status::OutOfRange("column out of range");
  }
  if (bins == 0) return Status::InvalidArgument("bins must be positive");
  if (data.NumRecords() == 0) {
    return Status::InvalidArgument("empty dataset");
  }
  std::vector<double> values = data.ColumnAsDouble(col);
  double lo = Min(values);
  double width = Range(values);
  std::vector<size_t> histogram(bins, 0);
  for (double v : values) {
    size_t bin = 0;
    if (width > 0.0) {
      bin = std::min(bins - 1,
                     static_cast<size_t>((v - lo) / width *
                                         static_cast<double>(bins)));
    }
    ++histogram[bin];
  }
  return histogram;
}

std::string FormatSummary(const DatasetSummary& summary) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "records: %zu\n", summary.records);
  out += line;
  std::snprintf(line, sizeof(line), "%-16s %-8s %-16s %12s %12s %12s %12s %9s\n",
                "attribute", "type", "role", "min", "max", "mean", "stddev",
                "distinct");
  out += line;
  for (const AttributeSummary& attr : summary.attributes) {
    std::snprintf(line, sizeof(line),
                  "%-16s %-8s %-16s %12.2f %12.2f %12.2f %12.2f %9zu\n",
                  attr.name.c_str(), attr.type.c_str(), attr.role.c_str(),
                  attr.min, attr.max, attr.mean, attr.stddev,
                  attr.distinct_values);
    out += line;
  }
  for (size_t i = 0; i < summary.qi_confidential_correlation.size(); ++i) {
    std::snprintf(line, sizeof(line),
                  "QI<->confidential[%zu] multiple correlation R = %.3f\n", i,
                  summary.qi_confidential_correlation[i]);
    out += line;
  }
  return out;
}

}  // namespace tcm
