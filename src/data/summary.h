#ifndef TCM_DATA_SUMMARY_H_
#define TCM_DATA_SUMMARY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"

namespace tcm {

// Dataset profiling: what a custodian inspects before choosing attribute
// roles and anonymization parameters. Backs the tcm_profile CLI and the
// examples' data descriptions.

struct AttributeSummary {
  std::string name;
  std::string type;   // AttributeTypeName
  std::string role;   // AttributeRoleName
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  double median = 0.0;
  size_t distinct_values = 0;
};

struct DatasetSummary {
  size_t records = 0;
  std::vector<AttributeSummary> attributes;
  // QI block <-> confidential multiple correlation per confidential
  // attribute (empty when roles are not assigned).
  std::vector<double> qi_confidential_correlation;
};

// InvalidArgument on an empty dataset.
Result<DatasetSummary> SummarizeDataset(const Dataset& data);

// Histogram of one column with `bins` equal-width bins over [min, max];
// every count sums to the record count. OutOfRange/InvalidArgument on bad
// arguments. Constant columns put everything in the first bin.
Result<std::vector<size_t>> ColumnHistogram(const Dataset& data, size_t col,
                                            size_t bins);

// Renders the summary as an aligned table for terminals.
std::string FormatSummary(const DatasetSummary& summary);

}  // namespace tcm

#endif  // TCM_DATA_SUMMARY_H_
