#ifndef TCM_DATA_CSV_H_
#define TCM_DATA_CSV_H_

#include <string>

#include "common/result.h"
#include "common/status.h"
#include "data/dataset.h"

namespace tcm {

// Reads a comma-separated file whose first line is a header matching
// `schema` attribute names (order must match). Numeric attributes parse as
// doubles; categorical attributes map labels to codes via the schema's
// category list (unknown labels are an IoError). Returns the populated
// dataset or an error describing the first offending line.
Result<Dataset> ReadCsv(const std::string& path, const Schema& schema);

// Reads a CSV treating every column as a numeric attribute with role
// kOther; header row required.
Result<Dataset> ReadNumericCsv(const std::string& path);

// Writes the dataset (header + rows). Categorical cells are written as
// their labels.
Status WriteCsv(const Dataset& data, const std::string& path);

// In-memory variants used by tests (no filesystem dependency).
Result<Dataset> ParseCsvString(const std::string& text, const Schema& schema);
std::string WriteCsvString(const Dataset& data);

}  // namespace tcm

#endif  // TCM_DATA_CSV_H_
