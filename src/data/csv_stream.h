#ifndef TCM_DATA_CSV_STREAM_H_
#define TCM_DATA_CSV_STREAM_H_

#include <deque>
#include <fstream>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "data/dataset.h"
#include "data/record_source.h"

namespace tcm {

// Incremental CSV plumbing shared by the in-memory reader (csv.h) and
// the streaming reader below. Both paths tokenize, validate and convert
// with exactly this code, so every input — well-formed or adversarial —
// receives the same verdict whether it is parsed from a string or
// streamed from a file in fixed-size chunks.
//
// Dialect: RFC 4180 with pragmatic relaxations.
//   - Records end at LF or CRLF; the final record may omit the newline.
//   - A field starting with '"' is quoted: it may contain commas,
//     newlines and doubled quotes ("" -> "); the closing quote must be
//     followed by a comma, a record end, or end of input.
//   - A '"' inside an unquoted field, a closing quote followed by other
//     characters, and an unterminated quote at end of input are errors.
//   - A lone CR inside an unquoted field is kept as data (field-level
//     whitespace stripping later removes it at field edges).
//   - Records consisting of a single whitespace-only field (blank lines)
//     are skipped by the readers, matching the line-based parser.

// Push tokenizer: Feed() raw bytes in any chunking, call Finish() at end
// of input, pull complete records with Next(). The chunking never
// changes the token stream or the verdict (fuzzed in tests).
class CsvTokenizer {
 public:
  // Feeds the next chunk. Complete records become available via Next();
  // a malformed construct poisons the tokenizer after the records that
  // precede it.
  void Feed(std::string_view chunk);

  // Marks end of input, flushing a trailing record without a newline.
  // IoError if the input ends inside a quoted field.
  void Finish();

  // Pulls the next complete record into *fields. Returns true when one
  // was produced, false when more input is needed (or, after Finish(),
  // when the input is exhausted). Records queued before a malformed
  // construct are returned first; then the error.
  Result<bool> Next(std::vector<std::string>* fields);

  // 1-based physical line on which the record returned by the last
  // successful Next() began (quoted fields may span lines).
  size_t record_line() const { return last_record_line_; }

 private:
  enum class State {
    kRecordStart,  // nothing of the current record seen yet
    kFieldStart,   // just after a comma
    kUnquoted,     // inside an unquoted field
    kQuoted,       // inside a quoted field
    kQuoteSeen,    // saw '"' inside a quoted field: escape or close
  };

  void Consume(char c);
  void EndField();
  void EndRecord();
  void Fail(const std::string& message);

  struct PendingRecord {
    std::vector<std::string> fields;
    size_t line = 0;
  };

  State state_ = State::kRecordStart;
  bool pending_cr_ = false;   // saw CR, waiting to see if LF follows
  bool finished_ = false;
  std::string field_;
  std::vector<std::string> record_;
  std::deque<PendingRecord> ready_;
  Status error_ = Status::Ok();
  size_t line_ = 1;               // current physical line
  size_t record_start_line_ = 1;  // line the in-progress record began on
  size_t last_record_line_ = 1;
};

// --- Shared record-level helpers (used by both readers) ---

// True for a blank-line record: a single field that strips to empty.
bool IsBlankCsvRecord(const std::vector<std::string>& fields);

// Validates a header record against `schema`: same column count, names
// match in order after whitespace stripping.
Status ValidateCsvHeader(const std::vector<std::string>& fields,
                         const Schema& schema);

// Builds the all-numeric, role-kOther schema ReadNumericCsv infers from
// a header record.
Schema NumericSchemaFromHeader(const std::vector<std::string>& fields);

// Converts one CSV record into a schema-validated Record. `line` is the
// physical line the record began on, used in error messages. Fields are
// whitespace-stripped before interpretation; categorical fields must be
// known labels, numeric fields must parse as doubles.
Result<Record> CsvFieldsToRecord(const std::vector<std::string>& fields,
                                 const Schema& schema, size_t line);

// --- Shared formatting (used by WriteCsv and StreamingCsvWriter) ---

// Appends the header line (attribute names + '\n'). Names containing
// separators or quotes are RFC 4180-quoted.
void AppendCsvHeader(const Schema& schema, std::string* out);

// Appends one data row + '\n'. Numeric cells print with 17 significant
// digits (doubles round-trip exactly); categorical cells print their
// label, quoted when it contains separators or quotes.
void AppendCsvRow(const Dataset& data, size_t row, std::string* out);

// Writes every row of `data` (no header) to `out` through a bounded
// buffer — the one row-emission loop behind WriteCsv and
// StreamingCsvWriter, so their bytes cannot drift apart.
void WriteCsvRows(const Dataset& data, std::ostream& out);

// --- Streaming reader / writer ---

struct StreamingCsvOptions {
  // Bytes read from the input per I/O call; the reader never holds more
  // than one chunk plus the records of the batch being built.
  size_t buffer_bytes = 1 << 16;
};

// Pull-based CSV record stream over a file (or any istream): the
// streaming counterpart of ReadCsv/ReadNumericCsv. The header is parsed
// at open; ReadInto() then yields records batch by batch without ever
// buffering the whole file.
class StreamingCsvReader : public RecordSource {
 public:
  // Opens `path`; the header must match `schema` (same error messages as
  // ReadCsv).
  static Result<std::unique_ptr<StreamingCsvReader>> Open(
      const std::string& path, const Schema& schema,
      const StreamingCsvOptions& options = {});

  // Opens `path`, inferring an all-numeric schema from the header (the
  // streaming counterpart of ReadNumericCsv).
  static Result<std::unique_ptr<StreamingCsvReader>> OpenNumeric(
      const std::string& path, const StreamingCsvOptions& options = {});

  // In-memory/test variants over an owned istream.
  static Result<std::unique_ptr<StreamingCsvReader>> FromStream(
      std::unique_ptr<std::istream> input, const Schema& schema,
      const StreamingCsvOptions& options = {});
  static Result<std::unique_ptr<StreamingCsvReader>> FromStreamNumeric(
      std::unique_ptr<std::istream> input,
      const StreamingCsvOptions& options = {});

  const Schema& schema() const override { return schema_; }

  // Replaces the schema (e.g. to assign roles after OpenNumeric). The
  // attribute names and types must be unchanged.
  Status ReplaceSchema(Schema schema);

  // RecordSource: appends up to max_rows records; a short count means
  // end of file. Parse errors carry the same messages as ReadCsv.
  Result<size_t> ReadInto(Dataset* out, size_t max_rows) override;

  // Records emitted so far (header excluded).
  size_t rows_read() const { return rows_read_; }

 private:
  StreamingCsvReader(std::unique_ptr<std::istream> input, Schema schema,
                     const StreamingCsvOptions& options)
      : input_(std::move(input)),
        schema_(std::move(schema)),
        options_(options) {}

  static Result<std::unique_ptr<StreamingCsvReader>> Make(
      std::unique_ptr<std::istream> input, const Schema* schema,
      const StreamingCsvOptions& options);

  // Pulls the next record from the tokenizer, feeding chunks as needed.
  // Returns false at end of input.
  Result<bool> NextRecord(std::vector<std::string>* fields);

  std::unique_ptr<std::istream> input_;
  Schema schema_;
  StreamingCsvOptions options_;
  CsvTokenizer tokenizer_;
  std::vector<char> chunk_;
  bool input_done_ = false;
  size_t rows_read_ = 0;
};

// Append-as-you-go CSV writer: the write tail of the streaming pipeline.
// Writes the header at Open, then rows batch by batch; the bytes are
// identical to WriteCsv of the concatenated batches.
class StreamingCsvWriter {
 public:
  static Result<std::unique_ptr<StreamingCsvWriter>> Open(
      const std::string& path, const Schema& schema);

  // Appends every row of `batch` (whose schema must have the same names
  // and types as the writer's).
  Status WriteRows(const Dataset& batch);

  // Flushes and checks the stream; further writes are invalid.
  Status Close();

  size_t rows_written() const { return rows_written_; }

 private:
  StreamingCsvWriter(std::ofstream file, const std::string& path)
      : file_(std::move(file)), path_(path) {}

  std::ofstream file_;
  std::string path_;
  size_t rows_written_ = 0;
};

}  // namespace tcm

#endif  // TCM_DATA_CSV_STREAM_H_
