#include "data/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace tcm {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double mean = Mean(xs);
  double sum = 0.0;
  for (double x : xs) sum += (x - mean) * (x - mean);
  return sum / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) { return std::sqrt(Variance(xs)); }

double Min(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double Max(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double Range(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  auto [lo, hi] = std::minmax_element(xs.begin(), xs.end());
  return *hi - *lo;
}

double Quantile(std::vector<double> xs, double q) {
  TCM_CHECK(!xs.empty());
  TCM_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(xs.begin(), xs.end());
  double position = q * static_cast<double>(xs.size() - 1);
  size_t lower = static_cast<size_t>(position);
  size_t upper = std::min(lower + 1, xs.size() - 1);
  double fraction = position - static_cast<double>(lower);
  return xs[lower] * (1.0 - fraction) + xs[upper] * fraction;
}

double Median(std::vector<double> xs) { return Quantile(std::move(xs), 0.5); }

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  TCM_CHECK_EQ(xs.size(), ys.size());
  if (xs.empty()) return 0.0;
  double mx = Mean(xs), my = Mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    double dx = xs[i] - mx, dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> AverageRanks(const std::vector<double>& xs) {
  const size_t n = xs.size();
  std::vector<size_t> order = SortOrder(xs);
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    // positions i..j (0-based) tie; average 1-based rank.
    double rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1;
    for (size_t p = i; p <= j; ++p) ranks[order[p]] = rank;
    i = j + 1;
  }
  return ranks;
}

double SpearmanCorrelation(const std::vector<double>& xs,
                           const std::vector<double>& ys) {
  return PearsonCorrelation(AverageRanks(xs), AverageRanks(ys));
}

std::vector<size_t> SortOrder(const std::vector<double>& xs) {
  std::vector<size_t> order(xs.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&xs](size_t a, size_t b) { return xs[a] < xs[b]; });
  return order;
}

bool SolveLinearSystem(std::vector<std::vector<double>> a,
                       std::vector<double> b, std::vector<double>* x) {
  const size_t d = b.size();
  for (size_t col = 0; col < d; ++col) {
    size_t pivot = col;
    for (size_t row = col + 1; row < d; ++row) {
      if (std::fabs(a[row][col]) > std::fabs(a[pivot][col])) pivot = row;
    }
    if (std::fabs(a[pivot][col]) < 1e-12) return false;
    std::swap(a[pivot], a[col]);
    std::swap(b[pivot], b[col]);
    double inv = 1.0 / a[col][col];
    for (size_t j = col; j < d; ++j) a[col][j] *= inv;
    b[col] *= inv;
    for (size_t row = 0; row < d; ++row) {
      if (row == col) continue;
      double factor = a[row][col];
      if (factor == 0.0) continue;
      for (size_t j = col; j < d; ++j) a[row][j] -= factor * a[col][j];
      b[row] -= factor * b[col];
    }
  }
  *x = std::move(b);
  return true;
}

double QiConfidentialCorrelation(const Dataset& data,
                                 size_t confidential_offset) {
  std::vector<size_t> qi = data.schema().QuasiIdentifierIndices();
  std::vector<size_t> conf = data.schema().ConfidentialIndices();
  if (qi.empty() || confidential_offset >= conf.size() ||
      data.NumRecords() < 2) {
    return 0.0;
  }
  std::vector<double> y = data.ColumnAsDouble(conf[confidential_offset]);
  std::vector<std::vector<double>> x;
  x.reserve(qi.size());
  for (size_t col : qi) x.push_back(data.ColumnAsDouble(col));

  const size_t d = qi.size();
  // Correlation matrix among QIs and correlation vector with the target.
  std::vector<std::vector<double>> rxx(d, std::vector<double>(d, 0.0));
  std::vector<double> rxy(d, 0.0);
  for (size_t i = 0; i < d; ++i) {
    rxx[i][i] = 1.0;
    for (size_t j = i + 1; j < d; ++j) {
      rxx[i][j] = rxx[j][i] = PearsonCorrelation(x[i], x[j]);
    }
    rxy[i] = PearsonCorrelation(x[i], y);
  }
  std::vector<double> beta;
  if (!SolveLinearSystem(rxx, rxy, &beta)) {
    // Degenerate QI correlation matrix: fall back to the strongest single
    // QI correlation, which is the R value for that reduced predictor.
    double best = 0.0;
    for (double r : rxy) best = std::max(best, std::fabs(r));
    return best;
  }
  double r_squared = 0.0;
  for (size_t i = 0; i < d; ++i) r_squared += beta[i] * rxy[i];
  return std::sqrt(std::clamp(r_squared, 0.0, 1.0));
}

}  // namespace tcm
