#include "data/generator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace tcm {
namespace {

// Loading of each quasi-identifier on a shared latent factor; the QI
// pairwise correlation is the square of this. Kept moderate so the QI
// space is genuinely two-dimensional — with near-collinear QIs every
// QI-neighbourhood maps to a narrow confidential slice and the merge
// algorithm degenerates, which real census data does not exhibit.
constexpr double kQiLoading = 0.6;

Dataset FinishCensus(const std::vector<std::vector<double>>& cols) {
  auto made = DatasetFromColumns(
      {"TAXINC", "POTHVAL", "FEDTAX", "FICA"}, cols,
      {AttributeRole::kQuasiIdentifier, AttributeRole::kQuasiIdentifier,
       AttributeRole::kOther, AttributeRole::kOther});
  TCM_CHECK(made.ok()) << made.status().ToString();
  return std::move(made).value();
}

}  // namespace

Dataset MakeCensusLike(const CensusLikeOptions& options) {
  TCM_CHECK_GT(options.num_records, 0u);
  Rng rng(options.seed);
  const size_t n = options.num_records;
  // The confidential attributes load directly on the normalized QI span
  // u = (z1 + z2) / sqrt(2 + 2 rho12): conf = R*u + sqrt(1-R^2)*noise has
  // multiple correlation exactly R with the QI block, for any QI
  // collinearity. Paper targets: R = 0.52 (FEDTAX/MCD), 0.92 (FICA/HCD).
  constexpr double kRMcd = 0.52;
  // Raw (pre-cap) loading for FICA; the cap below lowers the measured
  // multiple correlation to roughly the paper's 0.92.
  constexpr double kRFicaRaw = 0.97;
  const double rho12 = kQiLoading * kQiLoading;
  const double span_norm = std::sqrt(2.0 + 2.0 * rho12);
  const double resid = std::sqrt(1.0 - kQiLoading * kQiLoading);

  std::vector<double> taxinc(n), pothval(n), fedtax(n), fica(n);
  for (size_t i = 0; i < n; ++i) {
    double factor = rng.NextGaussian();
    double z_tax = kQiLoading * factor + resid * rng.NextGaussian();
    double z_oth = kQiLoading * factor + resid * rng.NextGaussian();
    double span = (z_tax + z_oth) / span_norm;  // unit variance
    double z_fed =
        kRMcd * span + std::sqrt(1.0 - kRMcd * kRMcd) * rng.NextGaussian();
    double z_fic =
        kRFicaRaw * span +
        std::sqrt(1.0 - kRFicaRaw * kRFicaRaw) * rng.NextGaussian();
    // Affine maps to income-like magnitudes; affine preserves correlations.
    taxinc[i] = 43000.0 + 21000.0 * z_tax;
    pothval[i] = 18000.0 + 9000.0 * z_oth;
    fedtax[i] = 7800.0 + 3900.0 * z_fed;
    // FICA is a capped payroll percentage: many subjects sit exactly at
    // the contribution ceiling and amounts are quantized. The cap + the
    // rounding pull the raw correlation down to the paper's 0.92 and
    // produce the heavy ties real payroll data exhibits.
    fica[i] = std::min(4650.0, 3400.0 + 1500.0 * z_fic);
    fica[i] = std::round(fica[i] / 25.0) * 25.0;
  }
  return FinishCensus({taxinc, pothval, fedtax, fica});
}

Dataset MakeMcdDataset(const CensusLikeOptions& options) {
  Dataset census = MakeCensusLike(options);
  auto schema = census.schema().WithRole("FEDTAX", AttributeRole::kConfidential);
  TCM_CHECK(schema.ok());
  TCM_CHECK(census.ReplaceSchema(std::move(schema).value()).ok());
  return census;
}

Dataset MakeHcdDataset(const CensusLikeOptions& options) {
  Dataset census = MakeCensusLike(options);
  auto schema = census.schema().WithRole("FICA", AttributeRole::kConfidential);
  TCM_CHECK(schema.ok());
  TCM_CHECK(census.ReplaceSchema(std::move(schema).value()).ok());
  return census;
}

Dataset MakePatientDischargeLike(const PatientDischargeOptions& options) {
  TCM_CHECK_GT(options.num_records, 0u);
  Rng rng(options.seed);
  const size_t n = options.num_records;

  std::vector<double> age(n), zip(n), admission(n), los(n), severity(n),
      sex(n), payer(n), charge(n);
  // Target multiple correlation between the QI block and charge. Only
  // length-of-stay and severity load on the charge's latent driver; the
  // other five QIs are independent noise, which matches the paper's very
  // weak overall dependence (0.129).
  constexpr double kTargetR = 0.129;
  for (size_t i = 0; i < n; ++i) {
    double z_los = rng.NextGaussian();
    double z_sev = rng.NextGaussian();
    // Driver shared between (los, sev) and charge.
    double driver = (z_los + z_sev) / std::sqrt(2.0);
    double z_charge =
        kTargetR * driver + std::sqrt(1.0 - kTargetR * kTargetR) * rng.NextGaussian();

    age[i] = std::clamp(std::round(41.0 + 23.0 * rng.NextGaussian()), 0.0, 99.0);
    zip[i] = static_cast<double>(rng.NextBounded(50));
    admission[i] = static_cast<double>(1 + rng.NextBounded(365));
    los[i] = std::max(1.0, std::round(4.0 + 2.2 * z_los));
    severity[i] = std::clamp(std::round(3.0 + 1.1 * z_sev), 1.0, 5.0);
    sex[i] = static_cast<double>(rng.NextBounded(2));
    payer[i] = static_cast<double>(rng.NextBounded(6));
    charge[i] = std::max(100.0, 21500.0 + 9400.0 * z_charge);
  }
  auto made = DatasetFromColumns(
      {"AGE", "ZIP", "ADMISSION_DAY", "LENGTH_OF_STAY", "SEVERITY", "SEX",
       "PAYER", "CHARGE"},
      {age, zip, admission, los, severity, sex, payer, charge},
      {AttributeRole::kQuasiIdentifier, AttributeRole::kQuasiIdentifier,
       AttributeRole::kQuasiIdentifier, AttributeRole::kQuasiIdentifier,
       AttributeRole::kQuasiIdentifier, AttributeRole::kQuasiIdentifier,
       AttributeRole::kQuasiIdentifier, AttributeRole::kConfidential});
  TCM_CHECK(made.ok()) << made.status().ToString();
  return std::move(made).value();
}

Dataset MakeUniformDataset(size_t num_records, size_t num_quasi_identifiers,
                           uint64_t seed) {
  TCM_CHECK_GT(num_records, 0u);
  TCM_CHECK_GT(num_quasi_identifiers, 0u);
  Rng rng(seed);
  std::vector<std::string> names;
  std::vector<AttributeRole> roles;
  std::vector<std::vector<double>> cols(num_quasi_identifiers + 1,
                                        std::vector<double>(num_records));
  for (size_t j = 0; j < num_quasi_identifiers; ++j) {
    names.push_back("QI" + std::to_string(j));
    roles.push_back(AttributeRole::kQuasiIdentifier);
  }
  names.push_back("CONF");
  roles.push_back(AttributeRole::kConfidential);
  for (size_t i = 0; i < num_records; ++i) {
    for (size_t j = 0; j <= num_quasi_identifiers; ++j) {
      cols[j][i] = rng.NextDouble();
    }
  }
  auto made = DatasetFromColumns(names, cols, roles);
  TCM_CHECK(made.ok()) << made.status().ToString();
  return std::move(made).value();
}

Dataset MakeAdultLike(const AdultLikeOptions& options) {
  TCM_CHECK_GT(options.num_records, 0u);
  Rng rng(options.seed);
  Schema schema({
      Attribute{"AGE", AttributeType::kNumeric,
                AttributeRole::kQuasiIdentifier, {}},
      Attribute{"EDUCATION", AttributeType::kOrdinal,
                AttributeRole::kQuasiIdentifier,
                {"none", "primary", "secondary", "bachelor", "graduate"}},
      Attribute{"OCCUPATION", AttributeType::kNominal,
                AttributeRole::kQuasiIdentifier,
                {"admin", "craft", "sales", "service", "tech", "transport"}},
      Attribute{"HOURS", AttributeType::kNumeric,
                AttributeRole::kQuasiIdentifier, {}},
      Attribute{"INCOME", AttributeType::kNumeric,
                AttributeRole::kConfidential, {}},
  });
  Dataset data(schema);
  for (size_t i = 0; i < options.num_records; ++i) {
    double age = std::clamp(
        std::round(38.0 + 13.0 * rng.NextGaussian()), 17.0, 90.0);
    // Education skews upward with age up to a point, plus noise.
    int32_t education = static_cast<int32_t>(std::clamp(
        std::round(2.0 + 0.02 * (age - 38.0) + 1.1 * rng.NextGaussian()),
        0.0, 4.0));
    int32_t occupation = static_cast<int32_t>(rng.NextBounded(6));
    double hours = std::clamp(
        std::round(40.0 + 9.0 * rng.NextGaussian()), 5.0, 90.0);
    // Income driven by education and hours with heavy noise.
    double income =
        22000.0 + 9000.0 * education + 450.0 * (hours - 40.0) +
        12000.0 * rng.NextGaussian();
    Record record = {Value::Numeric(age), Value::Categorical(education),
                     Value::Categorical(occupation), Value::Numeric(hours),
                     Value::Numeric(income)};
    TCM_CHECK(data.Append(std::move(record)).ok());
  }
  return data;
}

Dataset MakeClusteredDataset(size_t num_records, size_t num_quasi_identifiers,
                             size_t num_modes, uint64_t seed) {
  TCM_CHECK_GT(num_records, 0u);
  TCM_CHECK_GT(num_quasi_identifiers, 0u);
  TCM_CHECK_GT(num_modes, 0u);
  Rng rng(seed);
  std::vector<std::string> names;
  std::vector<AttributeRole> roles;
  std::vector<std::vector<double>> cols(num_quasi_identifiers + 1,
                                        std::vector<double>(num_records));
  for (size_t j = 0; j < num_quasi_identifiers; ++j) {
    names.push_back("QI" + std::to_string(j));
    roles.push_back(AttributeRole::kQuasiIdentifier);
  }
  names.push_back("CONF");
  roles.push_back(AttributeRole::kConfidential);

  // Mode centres spread on a coarse grid so modes are well separated.
  std::vector<std::vector<double>> centres(num_modes);
  for (size_t m = 0; m < num_modes; ++m) {
    centres[m].resize(num_quasi_identifiers);
    for (size_t j = 0; j < num_quasi_identifiers; ++j) {
      centres[m][j] = 10.0 * static_cast<double>(rng.NextBounded(10));
    }
  }
  for (size_t i = 0; i < num_records; ++i) {
    size_t mode = static_cast<size_t>(rng.NextBounded(num_modes));
    for (size_t j = 0; j < num_quasi_identifiers; ++j) {
      cols[j][i] = centres[mode][j] + rng.NextGaussian();
    }
    // Confidential value tied to the mode with noise: moderate dependence.
    cols[num_quasi_identifiers][i] =
        static_cast<double>(mode) + 0.75 * rng.NextGaussian();
  }
  auto made = DatasetFromColumns(names, cols, roles);
  TCM_CHECK(made.ok()) << made.status().ToString();
  return std::move(made).value();
}

}  // namespace tcm
