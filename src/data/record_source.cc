#include "data/record_source.h"

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace tcm {

Result<Dataset> RecordSource::NextBatch(size_t max_rows) {
  Dataset batch(schema());
  TCM_RETURN_IF_ERROR(ReadInto(&batch, max_rows).status());
  return batch;
}

Result<size_t> DatasetSource::ReadInto(Dataset* out, size_t max_rows) {
  size_t appended = 0;
  while (appended < max_rows && next_row_ < data_->NumRecords()) {
    TCM_RETURN_IF_ERROR(out->Append(data_->record(next_row_)));
    ++next_row_;
    ++appended;
  }
  return appended;
}

Result<size_t> SyntheticSource::ReadInto(Dataset* out, size_t max_rows) {
  size_t appended = 0;
  while (appended < max_rows && next_row_ < num_records_) {
    TCM_RETURN_IF_ERROR(out->Append(row_fn_()));
    ++next_row_;
    ++appended;
  }
  return appended;
}

namespace {

// QI0..QIn-1 + CONF, all numeric — the schema DatasetFromColumns builds
// for MakeUniformDataset / MakeClusteredDataset.
Schema UniformLikeSchema(size_t num_quasi_identifiers) {
  std::vector<Attribute> attrs;
  attrs.reserve(num_quasi_identifiers + 1);
  for (size_t j = 0; j < num_quasi_identifiers; ++j) {
    attrs.push_back(Attribute{"QI" + std::to_string(j),
                              AttributeType::kNumeric,
                              AttributeRole::kQuasiIdentifier,
                              {}});
  }
  attrs.push_back(Attribute{"CONF", AttributeType::kNumeric,
                            AttributeRole::kConfidential,
                            {}});
  return Schema(std::move(attrs));
}

}  // namespace

std::unique_ptr<SyntheticSource> MakeUniformSource(
    size_t num_records, size_t num_quasi_identifiers, uint64_t seed) {
  TCM_CHECK_GT(num_records, 0u);
  TCM_CHECK_GT(num_quasi_identifiers, 0u);
  // MakeUniformDataset draws row-major (all of row i before row i+1), so
  // one RNG carried across calls reproduces its stream exactly.
  auto row_fn = [rng = Rng(seed), num_quasi_identifiers]() mutable {
    Record record;
    record.reserve(num_quasi_identifiers + 1);
    for (size_t j = 0; j <= num_quasi_identifiers; ++j) {
      record.push_back(Value::Numeric(rng.NextDouble()));
    }
    return record;
  };
  return std::make_unique<SyntheticSource>(
      UniformLikeSchema(num_quasi_identifiers), num_records,
      std::move(row_fn));
}

std::unique_ptr<SyntheticSource> MakeClusteredSource(
    size_t num_records, size_t num_quasi_identifiers, size_t num_modes,
    uint64_t seed) {
  TCM_CHECK_GT(num_records, 0u);
  TCM_CHECK_GT(num_quasi_identifiers, 0u);
  TCM_CHECK_GT(num_modes, 0u);
  // MakeClusteredDataset draws the mode centres up front, then the rows
  // row-major; mirror both phases with the same RNG.
  Rng rng(seed);
  std::vector<std::vector<double>> centres(num_modes);
  for (size_t m = 0; m < num_modes; ++m) {
    centres[m].resize(num_quasi_identifiers);
    for (size_t j = 0; j < num_quasi_identifiers; ++j) {
      centres[m][j] = 10.0 * static_cast<double>(rng.NextBounded(10));
    }
  }
  auto row_fn = [rng, centres = std::move(centres), num_quasi_identifiers,
                 num_modes]() mutable {
    Record record;
    record.reserve(num_quasi_identifiers + 1);
    size_t mode = static_cast<size_t>(rng.NextBounded(num_modes));
    for (size_t j = 0; j < num_quasi_identifiers; ++j) {
      record.push_back(Value::Numeric(centres[mode][j] + rng.NextGaussian()));
    }
    record.push_back(Value::Numeric(static_cast<double>(mode) +
                                    0.75 * rng.NextGaussian()));
    return record;
  };
  return std::make_unique<SyntheticSource>(
      UniformLikeSchema(num_quasi_identifiers), num_records,
      std::move(row_fn));
}

}  // namespace tcm
