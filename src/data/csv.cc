#include "data/csv.h"

#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <utility>

#include "data/csv_stream.h"

// The in-memory API is a thin wrapper over the incremental plumbing in
// csv_stream.h: both this reader and StreamingCsvReader tokenize,
// validate and convert with the same code, so any input — including
// adversarial quoting — gets the same verdict from either path.

namespace tcm {
namespace {

constexpr size_t kAllRows = std::numeric_limits<size_t>::max();

Result<Dataset> DrainReader(
    Result<std::unique_ptr<StreamingCsvReader>> reader) {
  TCM_RETURN_IF_ERROR(reader.status());
  Dataset out((*reader)->schema());
  TCM_RETURN_IF_ERROR((*reader)->ReadInto(&out, kAllRows).status());
  return out;
}

void WriteLines(const Dataset& data, std::ostream& out) {
  std::string header;
  AppendCsvHeader(data.schema(), &header);
  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  WriteCsvRows(data, out);
}

}  // namespace

Result<Dataset> ReadCsv(const std::string& path, const Schema& schema) {
  return DrainReader(StreamingCsvReader::Open(path, schema));
}

Result<Dataset> ReadNumericCsv(const std::string& path) {
  return DrainReader(StreamingCsvReader::OpenNumeric(path));
}

Status WriteCsv(const Dataset& data, const std::string& path) {
  std::ofstream file(path, std::ios::binary);
  if (!file) return Status::IoError("cannot open '" + path + "' for writing");
  WriteLines(data, file);
  if (!file.good()) return Status::IoError("write to '" + path + "' failed");
  return Status::Ok();
}

Result<Dataset> ParseCsvString(const std::string& text, const Schema& schema) {
  return DrainReader(StreamingCsvReader::FromStream(
      std::make_unique<std::istringstream>(text), schema));
}

std::string WriteCsvString(const Dataset& data) {
  std::ostringstream out;
  WriteLines(data, out);
  return out.str();
}

}  // namespace tcm
