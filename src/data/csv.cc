#include "data/csv.h"

#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace tcm {
namespace {

Result<Dataset> ParseLines(std::istream& in, const Schema& schema) {
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IoError("empty input: missing header row");
  }
  std::vector<std::string> header = SplitString(line, ',');
  if (header.size() != schema.size()) {
    return Status::IoError("header has " + std::to_string(header.size()) +
                           " columns, schema expects " +
                           std::to_string(schema.size()));
  }
  for (size_t i = 0; i < header.size(); ++i) {
    if (std::string(StripWhitespace(header[i])) != schema.at(i).name) {
      return Status::IoError("header column " + std::to_string(i) + " is '" +
                             header[i] + "', expected '" + schema.at(i).name +
                             "'");
    }
  }

  Dataset out{schema};
  size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (StripWhitespace(line).empty()) continue;
    std::vector<std::string> fields = SplitString(line, ',');
    if (fields.size() != schema.size()) {
      return Status::IoError("line " + std::to_string(line_number) + " has " +
                             std::to_string(fields.size()) + " fields");
    }
    Record record;
    record.reserve(fields.size());
    for (size_t i = 0; i < fields.size(); ++i) {
      std::string field(StripWhitespace(fields[i]));
      const Attribute& attr = schema.at(i);
      if (attr.is_categorical()) {
        int32_t code = -1;
        for (size_t c = 0; c < attr.categories.size(); ++c) {
          if (attr.categories[c] == field) {
            code = static_cast<int32_t>(c);
            break;
          }
        }
        if (code < 0) {
          return Status::IoError("line " + std::to_string(line_number) +
                                 ": unknown category '" + field +
                                 "' for attribute '" + attr.name + "'");
        }
        record.push_back(Value::Categorical(code));
      } else {
        double value = 0.0;
        if (!ParseDouble(field, &value)) {
          return Status::IoError("line " + std::to_string(line_number) +
                                 ": cannot parse '" + field +
                                 "' as a number for attribute '" + attr.name +
                                 "'");
        }
        record.push_back(Value::Numeric(value));
      }
    }
    TCM_RETURN_IF_ERROR(out.Append(std::move(record)));
  }
  return out;
}

void WriteLines(const Dataset& data, std::ostream& out) {
  const Schema& schema = data.schema();
  for (size_t i = 0; i < schema.size(); ++i) {
    if (i > 0) out << ',';
    out << schema.at(i).name;
  }
  out << '\n';
  for (size_t row = 0; row < data.NumRecords(); ++row) {
    for (size_t col = 0; col < schema.size(); ++col) {
      if (col > 0) out << ',';
      const Value& v = data.cell(row, col);
      if (v.is_categorical()) {
        const auto& categories = schema.at(col).categories;
        size_t code = static_cast<size_t>(v.category());
        if (code < categories.size()) {
          out << categories[code];
        } else {
          out << v.category();
        }
      } else {
        // 17 significant digits: doubles round-trip exactly.
        out << FormatDouble(v.numeric(), 17);
      }
    }
    out << '\n';
  }
}

}  // namespace

Result<Dataset> ReadCsv(const std::string& path, const Schema& schema) {
  std::ifstream file(path);
  if (!file) return Status::IoError("cannot open '" + path + "' for reading");
  return ParseLines(file, schema);
}

Result<Dataset> ReadNumericCsv(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::IoError("cannot open '" + path + "' for reading");
  std::string header;
  if (!std::getline(file, header)) {
    return Status::IoError("empty input: missing header row");
  }
  std::vector<Attribute> attrs;
  for (const std::string& name : SplitString(header, ',')) {
    attrs.push_back(Attribute{std::string(StripWhitespace(name)),
                              AttributeType::kNumeric, AttributeRole::kOther,
                              {}});
  }
  Schema schema(std::move(attrs));
  // Re-parse from the top so ParseLines can validate the header uniformly.
  file.clear();
  file.seekg(0);
  return ParseLines(file, schema);
}

Status WriteCsv(const Dataset& data, const std::string& path) {
  std::ofstream file(path);
  if (!file) return Status::IoError("cannot open '" + path + "' for writing");
  WriteLines(data, file);
  if (!file.good()) return Status::IoError("write to '" + path + "' failed");
  return Status::Ok();
}

Result<Dataset> ParseCsvString(const std::string& text, const Schema& schema) {
  std::istringstream in(text);
  return ParseLines(in, schema);
}

std::string WriteCsvString(const Dataset& data) {
  std::ostringstream out;
  WriteLines(data, out);
  return out.str();
}

}  // namespace tcm
