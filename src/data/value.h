#ifndef TCM_DATA_VALUE_H_
#define TCM_DATA_VALUE_H_

#include <cstdint>
#include <string>

#include "common/check.h"

namespace tcm {

// A single cell of a microdata table. Numeric cells carry a double;
// categorical cells carry an integer category code whose meaning (label,
// ordering) lives in the attribute schema. Keeping the value this small
// (16 bytes) matters: microaggregation touches every cell many times.
class Value {
 public:
  enum class Kind : uint8_t { kNumeric, kCategorical };

  // Default: numeric zero, so vectors of Value are cheaply resizable.
  Value() : kind_(Kind::kNumeric), numeric_(0.0) {}

  static Value Numeric(double v) {
    Value out;
    out.kind_ = Kind::kNumeric;
    out.numeric_ = v;
    return out;
  }

  static Value Categorical(int32_t code) {
    Value out;
    out.kind_ = Kind::kCategorical;
    out.category_ = code;
    return out;
  }

  Kind kind() const { return kind_; }
  bool is_numeric() const { return kind_ == Kind::kNumeric; }
  bool is_categorical() const { return kind_ == Kind::kCategorical; }

  double numeric() const {
    TCM_DCHECK(is_numeric());
    return numeric_;
  }

  int32_t category() const {
    TCM_DCHECK(is_categorical());
    return category_;
  }

  // Uniform numeric view: category codes are exposed as doubles so that
  // distance and centroid code can treat ordinal attributes numerically.
  double AsDouble() const {
    return is_numeric() ? numeric_ : static_cast<double>(category_);
  }

  friend bool operator==(const Value& a, const Value& b) {
    if (a.kind_ != b.kind_) return false;
    return a.is_numeric() ? a.numeric_ == b.numeric_
                          : a.category_ == b.category_;
  }

 private:
  Kind kind_;
  union {
    double numeric_;
    int32_t category_;
  };
};

}  // namespace tcm

#endif  // TCM_DATA_VALUE_H_
