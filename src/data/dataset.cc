#include "data/dataset.h"

#include <utility>

namespace tcm {
namespace {

bool KindMatchesType(const Value& value, const Attribute& attribute) {
  return attribute.is_categorical() ? value.is_categorical()
                                    : value.is_numeric();
}

}  // namespace

Status Dataset::Append(Record record) {
  if (record.size() != schema_.size()) {
    return Status::InvalidArgument(
        "record arity " + std::to_string(record.size()) +
        " does not match schema arity " + std::to_string(schema_.size()));
  }
  for (size_t i = 0; i < record.size(); ++i) {
    if (!KindMatchesType(record[i], schema_.at(i))) {
      return Status::InvalidArgument("cell kind mismatch for attribute '" +
                                     schema_.at(i).name + "'");
    }
  }
  records_.push_back(std::move(record));
  return Status::Ok();
}

Status Dataset::SetCell(size_t row, size_t col, Value value) {
  if (row >= records_.size()) {
    return Status::OutOfRange("row " + std::to_string(row) + " out of range");
  }
  if (col >= schema_.size()) {
    return Status::OutOfRange("column " + std::to_string(col) +
                              " out of range");
  }
  if (!KindMatchesType(value, schema_.at(col))) {
    return Status::InvalidArgument("cell kind mismatch for attribute '" +
                                   schema_.at(col).name + "'");
  }
  records_[row][col] = value;
  return Status::Ok();
}

std::vector<double> Dataset::ColumnAsDouble(size_t col) const {
  TCM_CHECK_LT(col, schema_.size());
  std::vector<double> out;
  out.reserve(records_.size());
  for (const Record& r : records_) out.push_back(r[col].AsDouble());
  return out;
}

Result<Dataset> Dataset::Project(const std::vector<size_t>& columns) const {
  std::vector<Attribute> attrs;
  attrs.reserve(columns.size());
  for (size_t col : columns) {
    if (col >= schema_.size()) {
      return Status::OutOfRange("column " + std::to_string(col) +
                                " out of range");
    }
    attrs.push_back(schema_.at(col));
  }
  Dataset out{Schema(std::move(attrs))};
  for (const Record& r : records_) {
    Record projected;
    projected.reserve(columns.size());
    for (size_t col : columns) projected.push_back(r[col]);
    TCM_RETURN_IF_ERROR(out.Append(std::move(projected)));
  }
  return out;
}

Result<Dataset> Dataset::Select(const std::vector<size_t>& rows) const {
  Dataset out{schema_};
  for (size_t row : rows) {
    if (row >= records_.size()) {
      return Status::OutOfRange("row " + std::to_string(row) +
                                " out of range");
    }
    TCM_RETURN_IF_ERROR(out.Append(records_[row]));
  }
  return out;
}

Status Dataset::ReplaceSchema(Schema schema) {
  if (schema.size() != schema_.size()) {
    return Status::InvalidArgument("schema arity mismatch");
  }
  for (size_t i = 0; i < schema.size(); ++i) {
    if (schema.at(i).name != schema_.at(i).name ||
        schema.at(i).type != schema_.at(i).type) {
      return Status::InvalidArgument("schema name/type mismatch at index " +
                                     std::to_string(i));
    }
  }
  schema_ = std::move(schema);
  return Status::Ok();
}

bool operator==(const Dataset& a, const Dataset& b) {
  if (a.schema_.size() != b.schema_.size()) return false;
  for (size_t i = 0; i < a.schema_.size(); ++i) {
    const Attribute& lhs = a.schema_.at(i);
    const Attribute& rhs = b.schema_.at(i);
    if (lhs.name != rhs.name || lhs.type != rhs.type || lhs.role != rhs.role) {
      return false;
    }
  }
  return a.records_ == b.records_;
}

Result<Dataset> DatasetFromColumns(
    const std::vector<std::string>& names,
    const std::vector<std::vector<double>>& columns,
    const std::vector<AttributeRole>& roles) {
  if (names.size() != columns.size() || names.size() != roles.size()) {
    return Status::InvalidArgument(
        "names, columns and roles must have the same size");
  }
  if (columns.empty()) return Status::InvalidArgument("no columns given");
  const size_t n = columns[0].size();
  for (const auto& col : columns) {
    if (col.size() != n) {
      return Status::InvalidArgument("columns must have equal length");
    }
  }
  std::vector<Attribute> attrs;
  attrs.reserve(names.size());
  for (size_t i = 0; i < names.size(); ++i) {
    attrs.push_back(
        Attribute{names[i], AttributeType::kNumeric, roles[i], {}});
  }
  Dataset out{Schema(std::move(attrs))};
  for (size_t row = 0; row < n; ++row) {
    Record r;
    r.reserve(columns.size());
    for (const auto& col : columns) r.push_back(Value::Numeric(col[row]));
    TCM_RETURN_IF_ERROR(out.Append(std::move(r)));
  }
  return out;
}

}  // namespace tcm
