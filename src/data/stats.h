#ifndef TCM_DATA_STATS_H_
#define TCM_DATA_STATS_H_

#include <cstddef>
#include <vector>

#include "data/dataset.h"

namespace tcm {

// Descriptive statistics over double sequences. All functions tolerate
// empty input by returning 0 unless documented otherwise; callers that
// need to distinguish should check sizes first.

double Mean(const std::vector<double>& xs);

// Population variance (divide by n).
double Variance(const std::vector<double>& xs);
double StdDev(const std::vector<double>& xs);

double Min(const std::vector<double>& xs);
double Max(const std::vector<double>& xs);

// max - min; 0 for empty or constant input.
double Range(const std::vector<double>& xs);

// Linear-interpolated quantile, q in [0,1]. Requires non-empty input.
double Quantile(std::vector<double> xs, double q);
double Median(std::vector<double> xs);

// Pearson correlation; 0 when either side has zero variance.
double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys);

// Spearman rank correlation (average ranks for ties).
double SpearmanCorrelation(const std::vector<double>& xs,
                           const std::vector<double>& ys);

// Average ranks in [1, n] with ties sharing their mean rank.
std::vector<double> AverageRanks(const std::vector<double>& xs);

// Positions 0..n-1 such that xs[order[0]] <= xs[order[1]] <= ...; ties
// broken by original index (stable), giving each record a distinct rank.
std::vector<size_t> SortOrder(const std::vector<double>& xs);

// Solves the dense linear system A x = b by Gauss-Jordan elimination with
// partial pivoting; returns false when A is numerically singular. A is
// row-major square; used for the multiple-correlation solve and the
// logistic-regression Newton step (dimensions = #attributes, tiny).
bool SolveLinearSystem(std::vector<std::vector<double>> a,
                       std::vector<double> b, std::vector<double>* x);

// The paper characterizes its test data sets by "the correlation between
// the quasi-identifier attributes and the confidential attribute" (0.52 MCD,
// 0.92 HCD, 0.129 patient discharge). We reproduce that scalar as the
// multiple-correlation coefficient R of the best linear predictor of the
// confidential attribute from the quasi-identifiers (equals |Pearson| for a
// single QI). `confidential` selects which confidential attribute when the
// schema has several; by default the first.
double QiConfidentialCorrelation(const Dataset& data,
                                 size_t confidential_offset = 0);

}  // namespace tcm

#endif  // TCM_DATA_STATS_H_
