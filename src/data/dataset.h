#ifndef TCM_DATA_DATASET_H_
#define TCM_DATA_DATASET_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "data/attribute.h"
#include "data/value.h"

namespace tcm {

// One row of a microdata table.
using Record = std::vector<Value>;

// Row-store microdata table: a Schema plus n records, each with one Value
// per attribute. This is the substrate every algorithm in the library
// operates on. Mutations validate against the schema; cell access is
// unchecked in release builds for speed.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  size_t NumRecords() const { return records_.size(); }
  size_t NumAttributes() const { return schema_.size(); }
  bool empty() const { return records_.empty(); }

  // Appends a record; InvalidArgument if the arity or any cell kind does
  // not match the schema.
  Status Append(Record record);

  const Record& record(size_t row) const {
    TCM_DCHECK(row < records_.size());
    return records_[row];
  }

  const Value& cell(size_t row, size_t col) const {
    TCM_DCHECK(row < records_.size());
    TCM_DCHECK(col < schema_.size());
    return records_[row][col];
  }

  // Overwrites one cell; kind must match the attribute type.
  Status SetCell(size_t row, size_t col, Value value);

  // Column `col` as doubles (category codes cast). Useful for statistics
  // and distance computations.
  std::vector<double> ColumnAsDouble(size_t col) const;

  // New dataset containing only the given attribute columns (in the given
  // order); OutOfRange on a bad index.
  Result<Dataset> Project(const std::vector<size_t>& columns) const;

  // New dataset containing only the given rows; OutOfRange on a bad index.
  Result<Dataset> Select(const std::vector<size_t>& rows) const;

  // Replaces the schema roles; the attribute list must be otherwise
  // identical (same names/types), or InvalidArgument.
  Status ReplaceSchema(Schema schema);

  // Deep equality (schema names/types/roles and all cells).
  friend bool operator==(const Dataset& a, const Dataset& b);

 private:
  Schema schema_;
  std::vector<Record> records_;
};

// Builds a dataset from named numeric columns of equal length.
// InvalidArgument if lengths differ or `names`/`columns` sizes mismatch.
Result<Dataset> DatasetFromColumns(
    const std::vector<std::string>& names,
    const std::vector<std::vector<double>>& columns,
    const std::vector<AttributeRole>& roles);

}  // namespace tcm

#endif  // TCM_DATA_DATASET_H_
