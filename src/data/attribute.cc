#include "data/attribute.h"

#include <utility>

#include "common/check.h"

namespace tcm {

const char* AttributeRoleName(AttributeRole role) {
  switch (role) {
    case AttributeRole::kIdentifier:
      return "identifier";
    case AttributeRole::kQuasiIdentifier:
      return "quasi-identifier";
    case AttributeRole::kConfidential:
      return "confidential";
    case AttributeRole::kOther:
      return "other";
  }
  return "unknown";
}

const char* AttributeTypeName(AttributeType type) {
  switch (type) {
    case AttributeType::kNumeric:
      return "numeric";
    case AttributeType::kOrdinal:
      return "ordinal";
    case AttributeType::kNominal:
      return "nominal";
  }
  return "unknown";
}

Schema::Schema(std::vector<Attribute> attributes)
    : attributes_(std::move(attributes)) {}

const Attribute& Schema::at(size_t index) const {
  TCM_CHECK_LT(index, attributes_.size());
  return attributes_[index];
}

Result<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return Status::NotFound("no attribute named '" + name + "'");
}

std::vector<size_t> Schema::IndicesWithRole(AttributeRole role) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].role == role) out.push_back(i);
  }
  return out;
}

Result<Schema> Schema::WithRole(const std::string& name,
                                AttributeRole role) const {
  TCM_ASSIGN_OR_RETURN(size_t index, IndexOf(name));
  std::vector<Attribute> updated = attributes_;
  updated[index].role = role;
  return Schema(std::move(updated));
}

}  // namespace tcm
