#ifndef TCM_DATA_RECORD_SOURCE_H_
#define TCM_DATA_RECORD_SOURCE_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "common/result.h"
#include "data/dataset.h"

namespace tcm {

// A bounded-memory stream of records sharing one schema: the input side
// of the streaming execution layer. Sources are pull-based and
// single-pass — callers drain them batch by batch and never hold more
// rows than they asked for. Implementations: StreamingCsvReader
// (csv_stream.h), DatasetSource and SyntheticSource (below).
class RecordSource {
 public:
  virtual ~RecordSource() = default;

  // Schema every emitted record conforms to.
  virtual const Schema& schema() const = 0;

  // Appends up to `max_rows` records to `*out` (whose schema must accept
  // them) and returns the number appended. Reads until `max_rows` or the
  // end of the stream, so a return value smaller than `max_rows` means
  // the stream is exhausted; 0 means it already was.
  virtual Result<size_t> ReadInto(Dataset* out, size_t max_rows) = 0;

  // Convenience wrapper: the next batch as its own dataset (empty when
  // the stream is exhausted).
  Result<Dataset> NextBatch(size_t max_rows);
};

// Streams an in-memory dataset. Non-owning: the dataset must outlive the
// source. Adapts existing tables (and tests) to streaming consumers.
class DatasetSource : public RecordSource {
 public:
  explicit DatasetSource(const Dataset* data) : data_(data) {}

  const Schema& schema() const override { return data_->schema(); }
  Result<size_t> ReadInto(Dataset* out, size_t max_rows) override;

 private:
  const Dataset* data_;
  size_t next_row_ = 0;
};

// Streams synthetic records from a row callback without materializing
// the dataset — the generator-backed source for million-row workloads.
// The callback is invoked exactly once per emitted row, in row order, so
// a generator that carries its RNG in the closure reproduces the
// corresponding Make*Dataset call row for row.
class SyntheticSource : public RecordSource {
 public:
  using RowFn = std::function<Record()>;

  SyntheticSource(Schema schema, size_t num_records, RowFn row_fn)
      : schema_(std::move(schema)),
        num_records_(num_records),
        row_fn_(std::move(row_fn)) {}

  const Schema& schema() const override { return schema_; }
  size_t num_records() const { return num_records_; }
  Result<size_t> ReadInto(Dataset* out, size_t max_rows) override;

 private:
  Schema schema_;
  size_t num_records_;
  size_t next_row_ = 0;
  RowFn row_fn_;
};

// Streaming counterparts of the batch generators in generator.h: the row
// stream is identical to the Make*Dataset call with the same parameters
// (verified by tests), so streamed and in-memory runs of a synthetic
// workload see the same data.
std::unique_ptr<SyntheticSource> MakeUniformSource(
    size_t num_records, size_t num_quasi_identifiers, uint64_t seed);
std::unique_ptr<SyntheticSource> MakeClusteredSource(
    size_t num_records, size_t num_quasi_identifiers, size_t num_modes,
    uint64_t seed);

}  // namespace tcm

#endif  // TCM_DATA_RECORD_SOURCE_H_
