#ifndef TCM_COMMON_MUTEX_H_
#define TCM_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace tcm {

// Annotated mutex primitives for clang's thread-safety analysis.
//
// libstdc++'s std::mutex and std::lock_guard carry no analysis
// attributes, so naming a bare std::mutex in TCM_GUARDED_BY() leaves
// the analysis blind (and, under -Wthread-safety-attributes, warned
// about). These are the zero-cost annotated equivalents the repo's
// concurrent code uses instead:
//
//   tcm::Mutex mutex_;                      // the capability
//   int value_ TCM_GUARDED_BY(mutex_);      // guarded state
//   {
//     MutexLock lock(mutex_);               // scoped acquire
//     ++value_;                             // checked access
//     while (!ready_) cond_.Wait(lock);     // condition wait
//   }
//
// Condition waits go through tcm::CondVar, whose Wait() relocks
// through MutexLock's annotated relock interface. Predicates are
// written as explicit while-loops in the annotated caller (not as
// lambdas handed to wait()): the analysis cannot see that a predicate
// lambda runs with the lock held, so a lambda touching guarded state
// would be a false positive under -Werror.

class TCM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() TCM_ACQUIRE() { impl_.lock(); }
  void unlock() TCM_RELEASE() { impl_.unlock(); }
  bool try_lock() TCM_TRY_ACQUIRE(true) { return impl_.try_lock(); }

 private:
  std::mutex impl_;
};

// Scoped lock over tcm::Mutex. The lock()/unlock() pair is the relock
// interface used by CondVar::Wait; to the analysis they read as
// reacquire/release of the scoped capability.
class TCM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) TCM_ACQUIRE(mutex) : lock_(mutex) {}
  ~MutexLock() TCM_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void lock() TCM_ACQUIRE() { lock_.lock(); }
  void unlock() TCM_RELEASE() { lock_.unlock(); }

 private:
  std::unique_lock<Mutex> lock_;
};

// Condition variable paired with tcm::Mutex. Wait() atomically releases
// and reacquires through the MutexLock; from the analysis's view the
// capability stays held across the wait, which matches how guarded
// state may be read before and after (the caller re-checks its
// predicate in a loop).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) TCM_NO_THREAD_SAFETY_ANALYSIS {
    impl_.wait(lock);
  }

  void NotifyOne() { impl_.notify_one(); }
  void NotifyAll() { impl_.notify_all(); }

 private:
  std::condition_variable_any impl_;
};

}  // namespace tcm

#endif  // TCM_COMMON_MUTEX_H_
