#include "common/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <system_error>

#include "common/check.h"

namespace tcm {
namespace {

// Largest integer magnitude a double represents exactly; integers in this
// range print without a fraction and read back as the same value.
constexpr double kMaxExactInteger = 9007199254740992.0;  // 2^53

void AppendEscaped(std::string_view text, std::string* out) {
  out->push_back('"');
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

// All formatting goes through std::to_chars: printf-family conversions
// read LC_NUMERIC, so a comma-decimal host locale would emit "3,5" —
// invalid JSON. to_chars is locale-independent by specification and
// produces the same bytes as %g / %.0f under the "C" locale, so output
// is byte-identical to what this writer always produced.
void AppendNumber(double value, std::string* out) {
  if (!std::isfinite(value)) {
    out->append("null");
    return;
  }
  char buf[40];
  double integral;
  if (std::modf(value, &integral) == 0.0 &&
      std::fabs(value) <= kMaxExactInteger) {
    auto fixed = std::to_chars(buf, buf + sizeof(buf), value,
                               std::chars_format::fixed, 0);
    out->append(buf, fixed.ptr);
    return;
  }
  // Shortest representation that round-trips: try increasing precision
  // until from_chars reads the digits back exactly.
  const char* end = buf;
  for (int precision = 15; precision <= 17; ++precision) {
    auto result = std::to_chars(buf, buf + sizeof(buf), value,
                                std::chars_format::general, precision);
    end = result.ptr;
    double back = 0.0;
    std::from_chars(buf, end, back);
    if (back == value) break;
  }
  out->append(buf, static_cast<size_t>(end - buf));
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipWhitespace();
    TCM_ASSIGN_OR_RETURN(JsonValue value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    size_t line = 1, column = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    return Status::InvalidArgument("JSON parse error at line " +
                                   std::to_string(line) + ", column " +
                                   std::to_string(column) + ": " + message);
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWhitespace() {
    while (!AtEnd()) {
      char c = Peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Result<JsonValue> ParseValue(int depth) {
    // depth counts enclosing containers, so a value at depth N sits at
    // nesting level N+1: >= (not >) keeps the accepted maximum at
    // exactly kMaxJsonDepth levels (the fuzz suite pins both sides).
    if (depth >= kMaxJsonDepth) {
      return Error("document nested deeper than " +
                   std::to_string(kMaxJsonDepth) + " levels");
    }
    if (AtEnd()) return Error("unexpected end of input");
    switch (Peek()) {
      case 'n':
        if (Consume("null")) return JsonValue();
        return Error("invalid literal (expected 'null')");
      case 't':
        if (Consume("true")) return JsonValue(true);
        return Error("invalid literal (expected 'true')");
      case 'f':
        if (Consume("false")) return JsonValue(false);
        return Error("invalid literal (expected 'false')");
      case '"': {
        TCM_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue(std::move(s));
      }
      case '[':
        return ParseArray(depth);
      case '{':
        return ParseObject(depth);
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    ++pos_;  // '['
    JsonValue array = JsonValue::MakeArray();
    SkipWhitespace();
    if (!AtEnd() && Peek() == ']') {
      ++pos_;
      return array;
    }
    while (true) {
      SkipWhitespace();
      TCM_ASSIGN_OR_RETURN(JsonValue element, ParseValue(depth + 1));
      array.Append(std::move(element));
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated array");
      char c = Peek();
      ++pos_;
      if (c == ']') return array;
      if (c != ',') {
        --pos_;
        return Error("expected ',' or ']' in array");
      }
    }
  }

  Result<JsonValue> ParseObject(int depth) {
    ++pos_;  // '{'
    JsonValue object = JsonValue::MakeObject();
    SkipWhitespace();
    if (!AtEnd() && Peek() == '}') {
      ++pos_;
      return object;
    }
    while (true) {
      SkipWhitespace();
      if (AtEnd() || Peek() != '"') return Error("expected object key");
      TCM_ASSIGN_OR_RETURN(std::string key, ParseString());
      if (object.Find(key) != nullptr) {
        return Error("duplicate object key \"" + key + "\"");
      }
      SkipWhitespace();
      if (AtEnd() || Peek() != ':') return Error("expected ':' after key");
      ++pos_;
      SkipWhitespace();
      TCM_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      object.Set(std::move(key), std::move(value));
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated object");
      char c = Peek();
      ++pos_;
      if (c == '}') return object;
      if (c != ',') {
        --pos_;
        return Error("expected ',' or '}' in object");
      }
    }
  }

  Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_ + static_cast<size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
    }
    pos_ += 4;
    return value;
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (true) {
      if (AtEnd()) return Error("unterminated string");
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      ++pos_;
      if (c == '"') return out;
      if (c < 0x20) return Error("unescaped control character in string");
      if (c != '\\') {
        out.push_back(static_cast<char>(c));
        continue;
      }
      if (AtEnd()) return Error("unterminated escape sequence");
      char escape = text_[pos_];
      ++pos_;
      switch (escape) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          TCM_ASSIGN_OR_RETURN(uint32_t cp, ParseHex4());
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate escape must follow.
            if (!Consume("\\u")) return Error("unpaired surrogate");
            TCM_ASSIGN_OR_RETURN(uint32_t low, ParseHex4());
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("unpaired surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("unpaired surrogate");
          }
          AppendUtf8(cp, &out);
          break;
        }
        default:
          return Error(std::string("invalid escape '\\") + escape + "'");
      }
    }
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (!AtEnd() && Peek() == '-') ++pos_;
    auto digits = [&]() {
      size_t count = 0;
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') {
        ++pos_;
        ++count;
      }
      return count;
    };
    if (AtEnd()) return Error("invalid number");
    if (Peek() == '0') {
      ++pos_;  // no leading zeros before further digits
    } else if (digits() == 0) {
      return Error("invalid number");
    }
    if (!AtEnd() && Peek() == '.') {
      ++pos_;
      if (digits() == 0) return Error("digits required after decimal point");
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (digits() == 0) return Error("digits required in exponent");
    }
    // Locale-independent conversion: strtod would read a comma-decimal
    // LC_NUMERIC and misparse the fraction. The token was just validated
    // against the JSON grammar, a strict subset of what from_chars
    // accepts.
    double value = 0.0;
    auto conv = std::from_chars(text_.data() + start, text_.data() + pos_,
                                value, std::chars_format::general);
    if (conv.ec == std::errc::result_out_of_range) {
      return Error("number out of range");
    }
    if (conv.ec != std::errc() || conv.ptr != text_.data() + pos_) {
      return Error("invalid number");
    }
    if (!std::isfinite(value)) return Error("number out of range");
    return JsonValue(value);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

bool JsonValue::bool_value() const {
  TCM_CHECK(is_bool()) << "bool_value() on non-bool JsonValue";
  return bool_;
}

double JsonValue::number_value() const {
  TCM_CHECK(is_number()) << "number_value() on non-number JsonValue";
  return number_;
}

const std::string& JsonValue::string_value() const {
  TCM_CHECK(is_string()) << "string_value() on non-string JsonValue";
  return string_;
}

size_t JsonValue::size() const {
  if (is_array()) return array_.size();
  if (is_object()) return object_.size();
  TCM_CHECK(false) << "size() on scalar JsonValue";
  return 0;
}

const JsonValue& JsonValue::at(size_t index) const {
  TCM_CHECK(is_array()) << "at() on non-array JsonValue";
  TCM_CHECK(index < array_.size()) << "JSON array index out of range";
  return array_[index];
}

const std::vector<JsonValue>& JsonValue::items() const {
  TCM_CHECK(is_array()) << "items() on non-array JsonValue";
  return array_;
}

void JsonValue::Append(JsonValue value) {
  TCM_CHECK(is_array()) << "Append() on non-array JsonValue";
  array_.push_back(std::move(value));
}

const std::vector<JsonValue::Member>& JsonValue::members() const {
  TCM_CHECK(is_object()) << "members() on non-object JsonValue";
  return object_;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  TCM_CHECK(is_object()) << "Find() on non-object JsonValue";
  for (const Member& member : object_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

void JsonValue::Set(std::string key, JsonValue value) {
  TCM_CHECK(is_object()) << "Set() on non-object JsonValue";
  for (Member& member : object_) {
    if (member.first == key) {
      member.second = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
}

Result<bool> JsonValue::GetBool() const {
  if (!is_bool()) return Status::InvalidArgument("expected a boolean");
  return bool_;
}

Result<double> JsonValue::GetNumber() const {
  if (!is_number()) return Status::InvalidArgument("expected a number");
  return number_;
}

Result<uint64_t> JsonValue::GetUint() const {
  if (!is_number()) {
    return Status::InvalidArgument("expected a non-negative integer");
  }
  double integral;
  if (std::modf(number_, &integral) != 0.0 || number_ < 0.0 ||
      number_ > kMaxExactInteger) {
    return Status::InvalidArgument("expected a non-negative integer, got " +
                                   Write());
  }
  return static_cast<uint64_t>(number_);
}

Result<std::string> JsonValue::GetString() const {
  if (!is_string()) return Status::InvalidArgument("expected a string");
  return string_;
}

void JsonValue::WriteTo(std::string* out, int indent, int depth) const {
  auto newline_at = [&](int level) {
    if (indent < 0) return;
    out->push_back('\n');
    out->append(static_cast<size_t>(indent) * static_cast<size_t>(level),
                ' ');
  };
  switch (type_) {
    case Type::kNull:
      out->append("null");
      return;
    case Type::kBool:
      out->append(bool_ ? "true" : "false");
      return;
    case Type::kNumber:
      AppendNumber(number_, out);
      return;
    case Type::kString:
      AppendEscaped(string_, out);
      return;
    case Type::kArray: {
      if (array_.empty()) {
        out->append("[]");
        return;
      }
      out->push_back('[');
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out->push_back(',');
        newline_at(depth + 1);
        array_[i].WriteTo(out, indent, depth + 1);
      }
      newline_at(depth);
      out->push_back(']');
      return;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out->append("{}");
        return;
      }
      out->push_back('{');
      for (size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out->push_back(',');
        newline_at(depth + 1);
        AppendEscaped(object_[i].first, out);
        out->push_back(':');
        if (indent >= 0) out->push_back(' ');
        object_[i].second.WriteTo(out, indent, depth + 1);
      }
      newline_at(depth);
      out->push_back('}');
      return;
    }
  }
}

std::string JsonValue::Write(int indent) const {
  std::string out;
  WriteTo(&out, indent, 0);
  return out;
}

bool operator==(const JsonValue& a, const JsonValue& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case JsonValue::Type::kNull:
      return true;
    case JsonValue::Type::kBool:
      return a.bool_ == b.bool_;
    case JsonValue::Type::kNumber:
      return a.number_ == b.number_;
    case JsonValue::Type::kString:
      return a.string_ == b.string_;
    case JsonValue::Type::kArray:
      return a.array_ == b.array_;
    case JsonValue::Type::kObject:
      return a.object_ == b.object_;
  }
  return false;
}

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

std::string WriteJson(const JsonValue& value, int indent) {
  return value.Write(indent);
}

Result<JsonValue> ReadJsonFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    return Status::IoError("cannot read JSON file " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::IoError("error while reading JSON file " + path);
  }
  auto parsed = ParseJson(buffer.str());
  if (!parsed.ok()) {
    return Status(parsed.status().code(),
                  path + ": " + parsed.status().message());
  }
  return parsed;
}

Status WriteJsonFile(const JsonValue& value, const std::string& path,
                     int indent) {
  std::ofstream out(path, std::ios::binary);
  if (!out.good()) {
    return Status::IoError("cannot write JSON file " + path);
  }
  const std::string text = value.Write(indent) + "\n";
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  out.flush();
  if (!out.good()) {
    return Status::IoError("error while writing JSON file " + path);
  }
  return Status::Ok();
}

}  // namespace tcm
