#include "common/status.h"

namespace tcm {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInvalidSpec:
      return "InvalidSpec";
    case StatusCode::kUnknownAlgorithm:
      return "UnknownAlgorithm";
    case StatusCode::kPrivacyViolation:
      return "PrivacyViolation";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace tcm
