#ifndef TCM_COMMON_THREAD_ANNOTATIONS_H_
#define TCM_COMMON_THREAD_ANNOTATIONS_H_

// Clang thread-safety-analysis annotations, compiled away on every
// other toolchain. Annotating a member with TCM_GUARDED_BY(mutex_) (or
// a function with TCM_REQUIRES / TCM_EXCLUDES) turns the repo's lock
// discipline into compile-time contracts: the `clang-analysis` CMake
// preset builds with -Wthread-safety -Werror, so an access outside the
// required lock is a build break, not a TSan report after the fact.
//
// Conventions (enforced across src/engine and src/serve, documented in
// README "Static analysis"):
//   - Every mutex-guarded member carries TCM_GUARDED_BY(its_mutex_).
//   - Private helpers that assume the lock is already held are named
//     *Locked() and annotated TCM_REQUIRES(its_mutex_).
//   - Public entry points that take the lock themselves are annotated
//     TCM_EXCLUDES(its_mutex_) so self-deadlock is a compile error.
//   - Guarded members use tcm::Mutex / tcm::MutexLock (common/mutex.h),
//     not bare std::mutex: libstdc++'s std::mutex carries no analysis
//     attributes, so the analysis would be silently blind to it.
//
// The macro set mirrors clang's documented names
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) with a TCM_
// prefix to stay out of other libraries' way.

#if defined(__clang__) && (!defined(SWIG))
#define TCM_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define TCM_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op
#endif

#define TCM_CAPABILITY(x) TCM_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

#define TCM_SCOPED_CAPABILITY TCM_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

#define TCM_GUARDED_BY(x) TCM_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

#define TCM_PT_GUARDED_BY(x) TCM_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

#define TCM_ACQUIRED_BEFORE(...) \
  TCM_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))

#define TCM_ACQUIRED_AFTER(...) \
  TCM_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

#define TCM_REQUIRES(...) \
  TCM_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

#define TCM_REQUIRES_SHARED(...) \
  TCM_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

#define TCM_ACQUIRE(...) \
  TCM_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

#define TCM_ACQUIRE_SHARED(...) \
  TCM_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

#define TCM_RELEASE(...) \
  TCM_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

#define TCM_RELEASE_SHARED(...) \
  TCM_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

#define TCM_TRY_ACQUIRE(...) \
  TCM_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

#define TCM_EXCLUDES(...) \
  TCM_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

#define TCM_ASSERT_CAPABILITY(x) \
  TCM_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

#define TCM_RETURN_CAPABILITY(x) \
  TCM_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

#define TCM_NO_THREAD_SAFETY_ANALYSIS \
  TCM_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // TCM_COMMON_THREAD_ANNOTATIONS_H_
