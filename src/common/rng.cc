#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace tcm {
namespace {

inline uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
  // xoshiro must not start in the all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 top bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  TCM_CHECK_GT(bound, 0ULL);
  // Lemire's multiply-shift with rejection to remove modulo bias.
  uint64_t threshold = (-bound) % bound;
  while (true) {
    uint64_t r = Next();
    __uint128_t m = static_cast<__uint128_t>(r) * bound;
    uint64_t low = static_cast<uint64_t>(m);
    if (low >= threshold) return static_cast<uint64_t>(m >> 64);
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  TCM_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller: avoid u1 == 0 so log() stays finite.
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  double u2 = NextDouble();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double angle = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

}  // namespace tcm
