#ifndef TCM_COMMON_STATUS_H_
#define TCM_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace tcm {

// Error categories used across the library. The set is deliberately small:
// callers branch on "did it work" far more often than on the precise cause.
// The last three form the public Job API's structured taxonomy (api/job.h):
// facade callers branch on these codes instead of string-matching messages.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,   // caller passed something malformed
  kNotFound = 2,          // a looked-up entity does not exist
  kFailedPrecondition = 3,// object state does not allow the operation
  kOutOfRange = 4,        // index/parameter outside the valid range
  kInternal = 5,          // invariant violation inside the library
  kIoError = 6,           // file system / parsing failure
  kUnimplemented = 7,     // feature intentionally not available
  kInvalidSpec = 8,       // a job/pipeline spec failed validation
  kUnknownAlgorithm = 9,  // algorithm name not in the registry
  kPrivacyViolation = 10, // release failed independent re-verification
};

// Returns a stable, human-readable name ("OK", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

// Lightweight status object: either OK (no allocation) or an error with a
// code and message. The library does not use exceptions; every fallible
// public operation returns Status or Result<T>.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status InvalidSpec(std::string msg) {
    return Status(StatusCode::kInvalidSpec, std::move(msg));
  }
  static Status UnknownAlgorithm(std::string msg) {
    return Status(StatusCode::kUnknownAlgorithm, std::move(msg));
  }
  static Status PrivacyViolation(std::string msg) {
    return Status(StatusCode::kPrivacyViolation, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace tcm

// Propagates an error Status from an expression, mirroring absl's macro.
#define TCM_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::tcm::Status tcm_status_tmp_ = (expr);        \
    if (!tcm_status_tmp_.ok()) return tcm_status_tmp_; \
  } while (false)

#endif  // TCM_COMMON_STATUS_H_
