#ifndef TCM_COMMON_RESULT_H_
#define TCM_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace tcm {

// Result<T> holds either a value of type T or an error Status, similar to
// absl::StatusOr<T>. Accessing the value of an error Result aborts.
template <typename T>
class Result {
 public:
  // Implicit construction from a value or an error Status keeps call sites
  // terse: `return 42;` / `return Status::InvalidArgument(...)`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    TCM_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  const T& value() const& {
    TCM_CHECK(ok()) << "value() on error Result: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    TCM_CHECK(ok()) << "value() on error Result: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    TCM_CHECK(ok()) << "value() on error Result: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the value, or `fallback` if this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value
};

}  // namespace tcm

// Assigns the value of a Result expression to `lhs`, or propagates the error.
#define TCM_ASSIGN_OR_RETURN(lhs, expr) \
  TCM_ASSIGN_OR_RETURN_IMPL_(TCM_MACRO_CONCAT_(tcm_result_tmp_, __LINE__), \
                             lhs, expr)

#define TCM_MACRO_CONCAT_INNER_(a, b) a##b
#define TCM_MACRO_CONCAT_(a, b) TCM_MACRO_CONCAT_INNER_(a, b)
#define TCM_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#endif  // TCM_COMMON_RESULT_H_
