#ifndef TCM_COMMON_RNG_H_
#define TCM_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tcm {

// Deterministic pseudo-random generator (xoshiro256** seeded via SplitMix64).
// All stochastic components of the library take an explicit seed so that
// every experiment is reproducible bit-for-bit. Satisfies the C++
// UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  // Next raw 64-bit value.
  uint64_t Next();
  result_type operator()() { return Next(); }

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform integer in [0, bound) using Lemire's rejection method;
  // bound must be positive.
  uint64_t NextBounded(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  // Standard normal via Box-Muller (cached second variate).
  double NextGaussian();

  // Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace tcm

#endif  // TCM_COMMON_RNG_H_
