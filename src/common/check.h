#ifndef TCM_COMMON_CHECK_H_
#define TCM_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace tcm {
namespace internal_check {

// Accumulates a failure message and aborts the process when destroyed.
// Used only via the TCM_CHECK* macros; never instantiate directly.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* condition, const char* file, int line) {
    stream_ << "TCM_CHECK failed: " << condition << " at " << file << ":"
            << line << " ";
  }

  CheckFailureStream(const CheckFailureStream&) = delete;
  CheckFailureStream& operator=(const CheckFailureStream&) = delete;

  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_check
}  // namespace tcm

// Aborts with a message when `cond` is false. For programming errors
// (invariant violations), not for recoverable conditions — those use Status.
#define TCM_CHECK(cond)                                     \
  if (cond) {                                               \
  } else /* NOLINT */                                       \
    ::tcm::internal_check::CheckFailureStream(#cond, __FILE__, __LINE__)

#define TCM_CHECK_EQ(a, b) TCM_CHECK((a) == (b))
#define TCM_CHECK_NE(a, b) TCM_CHECK((a) != (b))
#define TCM_CHECK_LT(a, b) TCM_CHECK((a) < (b))
#define TCM_CHECK_LE(a, b) TCM_CHECK((a) <= (b))
#define TCM_CHECK_GT(a, b) TCM_CHECK((a) > (b))
#define TCM_CHECK_GE(a, b) TCM_CHECK((a) >= (b))

// Debug-only variant: per-element invariants on hot paths (merge loops,
// EMD ranking) that would otherwise pay an abort-branch per record in
// release builds. In NDEBUG builds the condition is still parsed and its
// operands odr-used (so variables referenced only by a TCM_DCHECK never
// trip -Wunused), but the short-circuit guarantees it is never evaluated.
#ifndef NDEBUG
#define TCM_DCHECK(cond) TCM_CHECK(cond)
#else
#define TCM_DCHECK(cond)  \
  if (true || (cond)) {   \
  } else /* NOLINT */     \
    ::tcm::internal_check::CheckFailureStream(#cond, __FILE__, __LINE__)
#endif

#define TCM_DCHECK_EQ(a, b) TCM_DCHECK((a) == (b))
#define TCM_DCHECK_NE(a, b) TCM_DCHECK((a) != (b))
#define TCM_DCHECK_LT(a, b) TCM_DCHECK((a) < (b))
#define TCM_DCHECK_LE(a, b) TCM_DCHECK((a) <= (b))
#define TCM_DCHECK_GT(a, b) TCM_DCHECK((a) > (b))
#define TCM_DCHECK_GE(a, b) TCM_DCHECK((a) >= (b))

#endif  // TCM_COMMON_CHECK_H_
