#include "common/strings.h"

#include <cctype>
#include <charconv>
#include <system_error>

namespace tcm {

std::vector<std::string> SplitString(std::string_view text, char delimiter) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view delimiter) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(delimiter);
    out.append(parts[i]);
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

// std::from_chars/std::to_chars instead of strtod/printf: the C calls
// read LC_NUMERIC, so a host running under a comma-decimal locale (e.g.
// de_DE) would misparse "3.5" and format 3.5 as "3,5" — numbers in CSV
// cells and specs must not depend on the process's locale.
bool ParseDouble(std::string_view text, double* out) {
  std::string_view stripped = StripWhitespace(text);
  if (stripped.empty()) return false;
  // strtod accepted an explicit leading '+'; from_chars does not.
  if (stripped.front() == '+') stripped.remove_prefix(1);
  if (stripped.empty()) return false;
  double value = 0.0;
  auto result = std::from_chars(stripped.data(),
                                stripped.data() + stripped.size(), value,
                                std::chars_format::general);
  if (result.ec != std::errc() ||
      result.ptr != stripped.data() + stripped.size()) {
    return false;
  }
  *out = value;
  return true;
}

std::string FormatDouble(double value, int precision) {
  char buffer[64];
  auto result = std::to_chars(buffer, buffer + sizeof(buffer), value,
                              std::chars_format::general, precision);
  if (result.ec != std::errc()) return "0";  // cannot happen at this size
  return std::string(buffer, result.ptr);
}

}  // namespace tcm
