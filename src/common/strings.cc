#include "common/strings.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace tcm {

std::vector<std::string> SplitString(std::string_view text, char delimiter) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view delimiter) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(delimiter);
    out.append(parts[i]);
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool ParseDouble(std::string_view text, double* out) {
  std::string_view stripped = StripWhitespace(text);
  if (stripped.empty()) return false;
  std::string buffer(stripped);
  char* end = nullptr;
  double value = std::strtod(buffer.c_str(), &end);
  if (end != buffer.c_str() + buffer.size()) return false;
  *out = value;
  return true;
}

std::string FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
  return buffer;
}

}  // namespace tcm
