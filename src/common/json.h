#ifndef TCM_COMMON_JSON_H_
#define TCM_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace tcm {

// Minimal dependency-free JSON document model, parser and writer: the
// serialization substrate of the public Job API (api/job.h). Scope is
// deliberately small — RFC 8259 documents, doubles for every number, and
// insertion-ordered objects so written output is deterministic. The
// parser is strict: duplicate object keys, trailing garbage, unpaired
// surrogates and documents nested deeper than kMaxJsonDepth are errors,
// not lenient accepts.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  // Object members keep insertion order; lookup is linear, which is the
  // right trade for the small spec/report documents this backs.
  using Member = std::pair<std::string, JsonValue>;

  JsonValue() : type_(Type::kNull) {}
  JsonValue(bool value) : type_(Type::kBool), bool_(value) {}  // NOLINT
  JsonValue(double value) : type_(Type::kNumber), number_(value) {}  // NOLINT
  JsonValue(int value)  // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(value)) {}
  JsonValue(size_t value)  // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(value)) {}
  JsonValue(std::string value)  // NOLINT
      : type_(Type::kString), string_(std::move(value)) {}
  JsonValue(const char* value) : type_(Type::kString), string_(value) {}  // NOLINT

  static JsonValue MakeArray() { return JsonValue(Type::kArray); }
  static JsonValue MakeObject() { return JsonValue(Type::kObject); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // Typed accessors; calling the wrong one aborts (callers use the
  // Result-returning Get* helpers below for untrusted documents).
  bool bool_value() const;
  double number_value() const;
  const std::string& string_value() const;

  // Array access.
  size_t size() const;
  const JsonValue& at(size_t index) const;
  const std::vector<JsonValue>& items() const;
  void Append(JsonValue value);

  // Object access. Find returns nullptr when the key is absent; Set
  // replaces an existing member in place (keeping its position).
  const std::vector<Member>& members() const;
  const JsonValue* Find(std::string_view key) const;
  void Set(std::string key, JsonValue value);

  // Checked conversions for untrusted documents. GetUint rejects
  // non-integral numbers, negatives and values above 2^53 (not exactly
  // representable in a double, so never written by this library).
  Result<bool> GetBool() const;
  Result<double> GetNumber() const;
  Result<uint64_t> GetUint() const;
  Result<std::string> GetString() const;

  // Serializes the document. indent < 0 writes compact single-line JSON;
  // indent >= 0 pretty-prints with that many spaces per level. Numbers
  // round-trip: integers in [-2^53, 2^53] print without a fraction, other
  // finite doubles with the shortest digit string that parses back
  // exactly. Non-finite numbers serialize as null (JSON has no NaN/Inf).
  std::string Write(int indent = -1) const;

  friend bool operator==(const JsonValue& a, const JsonValue& b);

 private:
  explicit JsonValue(Type type) : type_(type) {}

  void WriteTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<Member> object_;
};

// Maximum container nesting the parser accepts before failing with
// InvalidArgument (guards the recursive descent against stack overflow on
// adversarial input).
inline constexpr int kMaxJsonDepth = 64;

// Parses exactly one JSON document spanning all of `text` (surrounding
// whitespace allowed). InvalidArgument with a line/column pointer on any
// syntax error, duplicate object key, bad escape, or trailing garbage.
Result<JsonValue> ParseJson(std::string_view text);

// Serializes `value` like JsonValue::Write.
std::string WriteJson(const JsonValue& value, int indent = -1);

// Reads and parses a JSON file. IoError when the file cannot be read;
// parse failures are InvalidArgument mentioning the path.
Result<JsonValue> ReadJsonFile(const std::string& path);

// Writes `value` to `path` (pretty-printed, trailing newline). IoError on
// filesystem failure.
Status WriteJsonFile(const JsonValue& value, const std::string& path,
                     int indent = 2);

}  // namespace tcm

#endif  // TCM_COMMON_JSON_H_
