#ifndef TCM_COMMON_STRINGS_H_
#define TCM_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace tcm {

// Splits `text` on `delimiter`, keeping empty fields ("a,,b" -> 3 fields).
std::vector<std::string> SplitString(std::string_view text, char delimiter);

// Joins `parts` with `delimiter`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view delimiter);

// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

// Parses a double; returns false on malformed or trailing garbage.
bool ParseDouble(std::string_view text, double* out);

// Formats a double with `precision` significant decimal digits, trimming
// trailing zeros ("12.5", "0.01", "3").
std::string FormatDouble(double value, int precision = 6);

}  // namespace tcm

#endif  // TCM_COMMON_STRINGS_H_
