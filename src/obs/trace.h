#ifndef TCM_OBS_TRACE_H_
#define TCM_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace tcm {

// One completed span. Timestamps are microseconds on the process-local
// steady clock (zero at the first trace touch); tid is a small dense
// per-thread id; depth is the span-stack depth on that thread when the
// span opened (0 = top-level), so tests can assert nesting without
// re-deriving it from interval containment.
struct TraceEvent {
  std::string name;
  uint64_t ts_us = 0;   // span begin
  uint64_t dur_us = 0;  // span duration
  int tid = 0;
  int depth = 0;
};

// Process-wide span recorder behind `tcm_anonymize --trace-out` and the
// Job API trace sink. Disabled by default and designed so instrumented
// hot paths pay one relaxed atomic load per span when tracing is off —
// cheap enough for a span per MergeUntilTClose round. When enabled,
// completed spans are appended under a tcm::Mutex and exported as Chrome
// trace-event JSON ("X" complete events; open chrome://tracing or
// https://ui.perfetto.dev and load the file).
class TraceRecorder {
 public:
  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  static TraceRecorder& Global();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void Clear() TCM_EXCLUDES(mutex_);
  void Record(TraceEvent event) TCM_EXCLUDES(mutex_);
  std::vector<TraceEvent> Events() const TCM_EXCLUDES(mutex_);
  size_t event_count() const TCM_EXCLUDES(mutex_);

  // {"traceEvents": [{"name","cat","ph":"X","ts","dur","pid","tid",
  //                   "args":{"depth":d}}, ...]}
  JsonValue ChromeTraceJson() const TCM_EXCLUDES(mutex_);
  Status WriteChromeTrace(const std::string& path) const TCM_EXCLUDES(mutex_);

  // Microseconds on the process-local monotonic trace clock.
  static uint64_t NowMicros();
  // Dense id of the calling thread (assigned on first use).
  static int CurrentThreadId();

 private:
  std::atomic<bool> enabled_{false};
  mutable Mutex mutex_;
  std::vector<TraceEvent> events_ TCM_GUARDED_BY(mutex_);
};

// RAII span: records one TraceEvent on the global recorder covering the
// scope's lifetime. Nesting is tracked per thread; a span constructed
// while tracing is disabled stays inert even if tracing is enabled
// before it closes (and vice versa), so enable/disable races never
// corrupt the per-thread depth.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  bool active_;
  uint64_t start_us_ = 0;
  int depth_ = 0;
  std::string name_;
};

// RAII trace collection for one run: Clear()s and Enable()s the global
// recorder on construction; Finish() disables it and, when a path was
// given, writes the Chrome trace file. The destructor calls Finish() if
// the caller did not, dropping any write error (call Finish() to see
// it). This is the `TraceSink` the Job API mounts when a spec asks for
// a trace (output.trace_path / --trace-out).
class TraceSink {
 public:
  explicit TraceSink(std::string path);
  ~TraceSink();

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  Status Finish();

 private:
  std::string path_;
  bool finished_ = false;
};

}  // namespace tcm

#endif  // TCM_OBS_TRACE_H_
