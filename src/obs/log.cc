#include "obs/log.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/timer.h"

namespace tcm {
namespace {

// Seconds since the first log touch, printed as the ts= field. Relative
// time keeps lines short and diffable; absolute time belongs to the
// process supervisor.
double UptimeSeconds() {
  static const WallTimer* timer = new WallTimer();
  return timer->ElapsedSeconds();
}

bool NeedsQuoting(std::string_view value) {
  if (value.empty()) return true;
  for (char c : value) {
    if (c == ' ' || c == '"' || c == '=' || c == '\\' || c == '\n' ||
        c == '\t') {
      return true;
    }
  }
  return false;
}

void AppendQuoted(std::string* out, std::string_view value) {
  out->push_back('"');
  for (char c : value) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        out->push_back(c);
    }
  }
  out->push_back('"');
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "off";
}

bool ParseLogLevel(std::string_view text, LogLevel* level) {
  for (LogLevel candidate :
       {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn, LogLevel::kError,
        LogLevel::kOff}) {
    if (text == LogLevelName(candidate)) {
      *level = candidate;
      return true;
    }
  }
  return false;
}

Logger::Logger() : level_(static_cast<int>(LogLevel::kOff)), fd_(2) {
  const char* env = std::getenv("TCM_LOG");
  if (env != nullptr) {
    LogLevel level = LogLevel::kOff;
    if (ParseLogLevel(env, &level)) {
      level_.store(static_cast<int>(level), std::memory_order_relaxed);
    }
  }
}

Logger& Logger::Global() {
  static Logger* logger = new Logger();
  return *logger;
}

void Logger::Write(std::string_view line) {
  std::string buffer;
  buffer.reserve(line.size() + 1);
  buffer.append(line);
  buffer.push_back('\n');
  // One write(2) per line keeps concurrent writers from interleaving on
  // pipe-backed sinks (POSIX guarantees atomicity up to PIPE_BUF).
  ssize_t ignored = ::write(fd(), buffer.data(), buffer.size());
  (void)ignored;
}

LogLine::LogLine(LogLevel level, bool enabled) : enabled_(enabled) {
  if (!enabled_) return;
  char header[64];
  std::snprintf(header, sizeof(header), "ts=%.3f level=%s", UptimeSeconds(),
                LogLevelName(level));
  line_.assign(header);
}

LogLine::~LogLine() {
  if (!enabled_) return;
  Logger::Global().Write(line_);
}

void LogLine::AppendRaw(std::string_view key, std::string_view value) {
  line_.push_back(' ');
  line_.append(key);
  line_.push_back('=');
  if (NeedsQuoting(value)) {
    AppendQuoted(&line_, value);
  } else {
    line_.append(value);
  }
}

LogLine& LogLine::Kv(std::string_view key, std::string_view value) {
  if (enabled_) AppendRaw(key, value);
  return *this;
}

LogLine& LogLine::Kv(std::string_view key, bool value) {
  return Kv(key, value ? std::string_view("true") : std::string_view("false"));
}

LogLine& LogLine::Kv(std::string_view key, double value) {
  if (!enabled_) return *this;
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  AppendRaw(key, buffer);
  return *this;
}

LogLine& LogLine::Kv(std::string_view key, long long value) {
  if (!enabled_) return *this;
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%lld", value);
  AppendRaw(key, buffer);
  return *this;
}

LogLine& LogLine::Kv(std::string_view key, unsigned long long value) {
  if (!enabled_) return *this;
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%llu", value);
  AppendRaw(key, buffer);
  return *this;
}

LogLine& LogLine::Kv(std::string_view key, int value) {
  return Kv(key, static_cast<long long>(value));
}

LogLine& LogLine::Kv(std::string_view key, unsigned int value) {
  return Kv(key, static_cast<unsigned long long>(value));
}

LogLine& LogLine::Kv(std::string_view key, long value) {
  return Kv(key, static_cast<long long>(value));
}

LogLine& LogLine::Kv(std::string_view key, unsigned long value) {
  return Kv(key, static_cast<unsigned long long>(value));
}

}  // namespace tcm
