#include "obs/trace.h"

#include <chrono>
#include <utility>

namespace tcm {
namespace {

// Per-thread span-stack depth. Only spans that were active at
// construction touch it, so the counter stays balanced across
// enable/disable transitions.
thread_local int g_span_depth = 0;

}  // namespace

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

uint64_t TraceRecorder::NowMicros() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            epoch)
          .count());
}

int TraceRecorder::CurrentThreadId() {
  static std::atomic<int> next_tid{1};
  thread_local const int tid = next_tid.fetch_add(1);
  return tid;
}

void TraceRecorder::Clear() {
  MutexLock lock(mutex_);
  events_.clear();
}

void TraceRecorder::Record(TraceEvent event) {
  MutexLock lock(mutex_);
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  MutexLock lock(mutex_);
  return events_;
}

size_t TraceRecorder::event_count() const {
  MutexLock lock(mutex_);
  return events_.size();
}

JsonValue TraceRecorder::ChromeTraceJson() const {
  JsonValue events = JsonValue::MakeArray();
  {
    MutexLock lock(mutex_);
    for (const TraceEvent& e : events_) {
      JsonValue entry = JsonValue::MakeObject();
      entry.Set("name", e.name);
      entry.Set("cat", "tcm");
      entry.Set("ph", "X");
      entry.Set("ts", JsonValue(static_cast<size_t>(e.ts_us)));
      entry.Set("dur", JsonValue(static_cast<size_t>(e.dur_us)));
      entry.Set("pid", 0);
      entry.Set("tid", e.tid);
      JsonValue args = JsonValue::MakeObject();
      args.Set("depth", e.depth);
      entry.Set("args", std::move(args));
      events.Append(std::move(entry));
    }
  }
  JsonValue out = JsonValue::MakeObject();
  out.Set("traceEvents", std::move(events));
  return out;
}

Status TraceRecorder::WriteChromeTrace(const std::string& path) const {
  return WriteJsonFile(ChromeTraceJson(), path);
}

TraceSpan::TraceSpan(std::string_view name)
    : active_(TraceRecorder::Global().enabled()) {
  if (!active_) return;
  name_.assign(name);
  depth_ = g_span_depth++;
  start_us_ = TraceRecorder::NowMicros();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  uint64_t end_us = TraceRecorder::NowMicros();
  --g_span_depth;
  TraceEvent event;
  event.name = std::move(name_);
  event.ts_us = start_us_;
  event.dur_us = end_us - start_us_;
  event.tid = TraceRecorder::CurrentThreadId();
  event.depth = depth_;
  TraceRecorder::Global().Record(std::move(event));
}

TraceSink::TraceSink(std::string path) : path_(std::move(path)) {
  TraceRecorder::Global().Clear();
  TraceRecorder::Global().Enable();
}

TraceSink::~TraceSink() {
  Status status = Finish();
  (void)status;
}

Status TraceSink::Finish() {
  if (finished_) return Status::Ok();
  finished_ = true;
  TraceRecorder::Global().Disable();
  if (path_.empty()) return Status::Ok();
  return TraceRecorder::Global().WriteChromeTrace(path_);
}

}  // namespace tcm
