#ifndef TCM_OBS_METRICS_H_
#define TCM_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace tcm {

// Point-in-time summary of one histogram. Quantiles are extracted by the
// nearest-rank rule over the fixed buckets: the reported quantile is the
// upper boundary of the bucket in which the cumulative sample count
// reaches ceil(q * count), clamped to the observed [min, max]. With
// bucket boundaries at every distinct sample value the extraction is
// exact (pinned against a sorted-vector oracle in tests/obs_test.cc);
// otherwise it is exact to one bucket width.
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

// Process-wide registry of named counters, gauges and fixed-bucket
// histograms — the measurement substrate behind the serve `stats` verb
// and the README "Observability" metric table. All operations are
// thread-safe (one tcm::Mutex, visible to clang's thread-safety
// analysis); names are created on first touch so instrumentation sites
// never need registration boilerplate. Snapshots serialize through
// common/json.h with deterministic (sorted-name) ordering.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The process-wide instance every subsystem publishes into.
  static MetricsRegistry& Global();

  // Counters: monotonically increasing uint64 values.
  void IncrementCounter(std::string_view name, uint64_t delta = 1)
      TCM_EXCLUDES(mutex_);
  uint64_t CounterValue(std::string_view name) const TCM_EXCLUDES(mutex_);

  // Gauges: last-write-wins doubles (queue depth, rows/s, ...).
  void SetGauge(std::string_view name, double value) TCM_EXCLUDES(mutex_);
  double GaugeValue(std::string_view name) const TCM_EXCLUDES(mutex_);

  // Histograms. A histogram's bucket boundaries are fixed at creation:
  // the first Observe() on a name creates it with kDefaultLatencyBuckets
  // (exponential, seconds-scaled); RegisterHistogram() creates it with
  // caller-chosen boundaries (no-op if the name already exists).
  // Boundaries must be strictly increasing; sample x lands in the first
  // bucket with x <= boundary, or the overflow bucket past the last.
  void RegisterHistogram(std::string_view name,
                         std::vector<double> boundaries) TCM_EXCLUDES(mutex_);
  void Observe(std::string_view name, double value) TCM_EXCLUDES(mutex_);
  HistogramSnapshot HistogramStats(std::string_view name) const
      TCM_EXCLUDES(mutex_);

  // Whole-registry JSON snapshot:
  //   {"counters": {name: n, ...},
  //    "gauges": {name: x, ...},
  //    "histograms": {name: {count,sum,min,max,p50,p90,p99}, ...}}
  JsonValue SnapshotJson() const TCM_EXCLUDES(mutex_);

  // Drops every metric (tests; the global registry is never reset by
  // production code).
  void Reset() TCM_EXCLUDES(mutex_);

  static const std::vector<double>& DefaultLatencyBuckets();

 private:
  struct Histogram {
    std::vector<double> boundaries;       // strictly increasing
    std::vector<uint64_t> bucket_counts;  // boundaries.size() + 1 (overflow)
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  Histogram& HistogramLocked(std::string_view name,
                             const std::vector<double>* boundaries)
      TCM_REQUIRES(mutex_);
  static HistogramSnapshot SnapshotOf(const Histogram& h);

  mutable Mutex mutex_;
  std::map<std::string, uint64_t, std::less<>> counters_
      TCM_GUARDED_BY(mutex_);
  std::map<std::string, double, std::less<>> gauges_ TCM_GUARDED_BY(mutex_);
  std::map<std::string, Histogram, std::less<>> histograms_
      TCM_GUARDED_BY(mutex_);
};

}  // namespace tcm

#endif  // TCM_OBS_METRICS_H_
