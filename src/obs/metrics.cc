#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace tcm {

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

const std::vector<double>& MetricsRegistry::DefaultLatencyBuckets() {
  // Exponential 1ms .. 512s ladder: job latencies from a trivial
  // synthetic spec to a million-row streaming run all resolve to a
  // distinct bucket.
  static const std::vector<double>* buckets = [] {
    auto* b = new std::vector<double>();
    for (double edge = 0.001; edge <= 512.0; edge *= 2.0) b->push_back(edge);
    return b;
  }();
  return *buckets;
}

void MetricsRegistry::IncrementCounter(std::string_view name, uint64_t delta) {
  MutexLock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

uint64_t MetricsRegistry::CounterValue(std::string_view name) const {
  MutexLock lock(mutex_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricsRegistry::SetGauge(std::string_view name, double value) {
  MutexLock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

double MetricsRegistry::GaugeValue(std::string_view name) const {
  MutexLock lock(mutex_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

MetricsRegistry::Histogram& MetricsRegistry::HistogramLocked(
    std::string_view name, const std::vector<double>* boundaries) {
  auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  Histogram h;
  h.boundaries = boundaries != nullptr ? *boundaries : DefaultLatencyBuckets();
  TCM_CHECK(!h.boundaries.empty()) << "histogram needs at least one boundary";
  for (size_t i = 1; i < h.boundaries.size(); ++i) {
    TCM_CHECK(h.boundaries[i - 1] < h.boundaries[i])
        << "histogram boundaries must be strictly increasing";
  }
  h.bucket_counts.assign(h.boundaries.size() + 1, 0);
  return histograms_.emplace(std::string(name), std::move(h)).first->second;
}

void MetricsRegistry::RegisterHistogram(std::string_view name,
                                        std::vector<double> boundaries) {
  MutexLock lock(mutex_);
  HistogramLocked(name, &boundaries);
}

void MetricsRegistry::Observe(std::string_view name, double value) {
  MutexLock lock(mutex_);
  Histogram& h = HistogramLocked(name, nullptr);
  auto it = std::lower_bound(h.boundaries.begin(), h.boundaries.end(), value);
  size_t bucket = static_cast<size_t>(it - h.boundaries.begin());
  ++h.bucket_counts[bucket];
  if (h.count == 0) {
    h.min = value;
    h.max = value;
  } else {
    h.min = std::min(h.min, value);
    h.max = std::max(h.max, value);
  }
  ++h.count;
  h.sum += value;
}

HistogramSnapshot MetricsRegistry::SnapshotOf(const Histogram& h) {
  HistogramSnapshot snap;
  snap.count = h.count;
  snap.sum = h.sum;
  snap.min = h.min;
  snap.max = h.max;
  if (h.count == 0) return snap;
  auto quantile = [&h](double q) {
    uint64_t rank = static_cast<uint64_t>(
        std::ceil(q * static_cast<double>(h.count)));
    if (rank < 1) rank = 1;
    uint64_t seen = 0;
    for (size_t b = 0; b < h.bucket_counts.size(); ++b) {
      seen += h.bucket_counts[b];
      if (seen >= rank) {
        // The overflow bucket has no upper boundary; the observed max is
        // its tightest representative. Clamp to [min, max] so quantiles
        // never leave the observed range.
        double edge = b < h.boundaries.size() ? h.boundaries[b] : h.max;
        return std::min(std::max(edge, h.min), h.max);
      }
    }
    return h.max;  // unreachable: buckets sum to count
  };
  snap.p50 = quantile(0.50);
  snap.p90 = quantile(0.90);
  snap.p99 = quantile(0.99);
  return snap;
}

HistogramSnapshot MetricsRegistry::HistogramStats(
    std::string_view name) const {
  MutexLock lock(mutex_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? HistogramSnapshot{} : SnapshotOf(it->second);
}

JsonValue MetricsRegistry::SnapshotJson() const {
  MutexLock lock(mutex_);
  JsonValue counters = JsonValue::MakeObject();
  for (const auto& [name, value] : counters_) {
    counters.Set(name, JsonValue(static_cast<size_t>(value)));
  }
  JsonValue gauges = JsonValue::MakeObject();
  for (const auto& [name, value] : gauges_) gauges.Set(name, value);
  JsonValue histograms = JsonValue::MakeObject();
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot snap = SnapshotOf(h);
    JsonValue entry = JsonValue::MakeObject();
    entry.Set("count", JsonValue(static_cast<size_t>(snap.count)));
    entry.Set("sum", snap.sum);
    entry.Set("min", snap.min);
    entry.Set("max", snap.max);
    entry.Set("p50", snap.p50);
    entry.Set("p90", snap.p90);
    entry.Set("p99", snap.p99);
    histograms.Set(name, std::move(entry));
  }
  JsonValue out = JsonValue::MakeObject();
  out.Set("counters", std::move(counters));
  out.Set("gauges", std::move(gauges));
  out.Set("histograms", std::move(histograms));
  return out;
}

void MetricsRegistry::Reset() {
  MutexLock lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace tcm
