#ifndef TCM_OBS_LOG_H_
#define TCM_OBS_LOG_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace tcm {

// Severity levels, ordered. kOff disables everything.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Stable lower-case name ("debug", "info", "warn", "error", "off").
const char* LogLevelName(LogLevel level);

// Parses a level name (case-sensitive, the names above). Returns false
// and leaves *level untouched on anything else.
bool ParseLogLevel(std::string_view text, LogLevel* level);

// Process-wide leveled key=value line logger behind the TCM_LOG macro:
//
//   TCM_LOG(kInfo).Msg("listening").Kv("port", port).Kv("threads", n);
//   // -> ts=12.034 level=info msg=listening port=7070 threads=8
//
// Logging is OFF by default (kOff); long-running tools opt in with
// --log-level and everything honors the TCM_LOG environment variable
// (read once, at first use — set TCM_LOG=debug to see library internals
// in any binary). Each line is emitted with a single write(2) to an
// injectable file descriptor (stderr by default), so tests can point the
// sink at a pipe and concurrent lines never interleave.
class Logger {
 public:
  Logger();
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  static Logger& Global();

  void SetLevel(LogLevel level) {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  bool Enabled(LogLevel level) const {
    return level != LogLevel::kOff && level >= this->level();
  }

  // Redirects output; the caller keeps ownership of the descriptor.
  void SetFd(int fd) { fd_.store(fd, std::memory_order_relaxed); }
  int fd() const { return fd_.load(std::memory_order_relaxed); }

  // Emits one already-formatted line (newline appended).
  void Write(std::string_view line);

 private:
  std::atomic<int> level_;
  std::atomic<int> fd_;
};

// One log line under construction; emitted on destruction. When the
// line's level is below the logger's threshold every call is a no-op —
// arguments are still evaluated, so keep expensive values out of log
// statements on hot paths (instrument with TraceSpan/metrics instead).
class LogLine {
 public:
  LogLine(LogLevel level, bool enabled);
  ~LogLine();

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  // The free-form message, conventionally the first field.
  LogLine& Msg(std::string_view text) { return Kv("msg", text); }

  LogLine& Kv(std::string_view key, std::string_view value);
  LogLine& Kv(std::string_view key, const char* value) {
    return Kv(key, std::string_view(value));
  }
  LogLine& Kv(std::string_view key, const std::string& value) {
    return Kv(key, std::string_view(value));
  }
  LogLine& Kv(std::string_view key, bool value);
  LogLine& Kv(std::string_view key, int value);
  LogLine& Kv(std::string_view key, unsigned int value);
  LogLine& Kv(std::string_view key, long value);
  LogLine& Kv(std::string_view key, unsigned long value);
  LogLine& Kv(std::string_view key, long long value);
  LogLine& Kv(std::string_view key, unsigned long long value);
  LogLine& Kv(std::string_view key, double value);

 private:
  void AppendRaw(std::string_view key, std::string_view value);

  bool enabled_;
  std::string line_;
};

}  // namespace tcm

// TCM_LOG(kInfo).Msg("...").Kv("key", value) — the line is emitted when
// the temporary dies at the end of the full expression.
#define TCM_LOG(level)                  \
  ::tcm::LogLine(::tcm::LogLevel::level, \
                 ::tcm::Logger::Global().Enabled(::tcm::LogLevel::level))

#endif  // TCM_OBS_LOG_H_
