#ifndef TCM_TCM_API_H_
#define TCM_TCM_API_H_

// tcm/api.h — the public umbrella header of the t-closeness-through-
// microaggregation library. External consumers include this one header
// and program against the versioned Job API:
//
//   #include "tcm/api.h"
//
//   tcm::JobSpec spec = tcm::JobSpec::FromJsonText(R"({
//     "input": {"kind": "synthetic", "generator": "uniform",
//               "rows": 500, "quasi_identifiers": 3, "seed": 42},
//     "algorithm": {"name": "tclose_first", "k": 5, "t": 0.15}
//   })").value();
//   auto report = tcm::RunJob(spec);
//
// Everything re-exported here is covered by the JobSpec schema version
// (JobSpec::kVersion): JobSpec and its JSON round-trip, RunReport and
// its JSON serialization, RunJob/VerifyRelease, and the structured
// StatusCode taxonomy carried on Status/Result. The serving layer —
// JobServer/JobQueue/ServeClient and the newline-delimited JSON wire
// protocol they speak (serve/protocol.h, versioned separately by
// kServeProtocolVersion) — is re-exported too, so an embedder can host
// or talk to a tcm_serve endpoint with this one include. The columnar
// store (colstore/*.h) is re-exported as well: ColumnTable, the .tcmb
// binary dataset format (versioned separately by kTcmbFormatVersion),
// the CSV converter and the streaming ColumnarSource. Engine internals
// (engine/*.h) remain includable but are not versioned API.

#include "api/job.h"
#include "api/report.h"
#include "api/runner.h"
#include "colstore/column_table.h"
#include "colstore/columnar_source.h"
#include "colstore/convert.h"
#include "colstore/tcmb.h"
#include "common/json.h"
#include "common/result.h"
#include "common/status.h"
#include "data/dataset.h"
#include "data/record_source.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/client.h"
#include "serve/job_queue.h"
#include "serve/protocol.h"
#include "serve/server.h"

#endif  // TCM_TCM_API_H_
