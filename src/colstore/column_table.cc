#include "colstore/column_table.h"

#include <utility>

#include "data/value.h"

namespace tcm {

ColumnTable ColumnTable::Make(Schema schema, size_t num_rows,
                              std::vector<ColumnData> columns,
                              std::shared_ptr<const void> owner,
                              size_t mapped_bytes, size_t copied_bytes) {
  TCM_CHECK_EQ(schema.size(), columns.size())
      << "ColumnTable::Make: schema/column arity mismatch";
  for (size_t c = 0; c < columns.size(); ++c) {
    const Attribute& attr = schema.at(c);
    const ColumnData& col = columns[c];
    if (attr.is_categorical()) {
      TCM_CHECK(num_rows == 0 || col.codes != nullptr)
          << "ColumnTable::Make: categorical column " << c << " has no codes";
      TCM_CHECK(col.numeric == nullptr);
    } else {
      TCM_CHECK(num_rows == 0 || col.numeric != nullptr)
          << "ColumnTable::Make: numeric column " << c << " has no values";
      TCM_CHECK(col.codes == nullptr);
    }
  }
  ColumnTable table;
  table.schema_ = std::move(schema);
  table.num_rows_ = num_rows;
  table.columns_ = std::move(columns);
  table.owner_ = std::move(owner);
  table.mapped_bytes_ = mapped_bytes;
  table.copied_bytes_ = copied_bytes;
  return table;
}

ColumnTable ColumnTable::FromDataset(const Dataset& data) {
  const Schema& schema = data.schema();
  std::vector<ColumnData> columns(schema.size());
  size_t copied = 0;
  for (size_t c = 0; c < schema.size(); ++c) {
    ColumnData& col = columns[c];
    if (schema.at(c).is_categorical()) {
      col.owned_codes.reserve(data.NumRecords());
      for (size_t r = 0; r < data.NumRecords(); ++r) {
        col.owned_codes.push_back(data.cell(r, c).category());
      }
      col.codes = col.owned_codes.data();
      copied += col.owned_codes.size() * sizeof(int32_t);
    } else {
      col.owned_numeric.reserve(data.NumRecords());
      for (size_t r = 0; r < data.NumRecords(); ++r) {
        col.owned_numeric.push_back(data.cell(r, c).numeric());
      }
      col.numeric = col.owned_numeric.data();
      copied += col.owned_numeric.size() * sizeof(double);
    }
  }
  return Make(schema, data.NumRecords(), std::move(columns), nullptr,
              /*mapped_bytes=*/0, /*copied_bytes=*/copied);
}

Dataset ColumnTable::ToDataset() const {
  Dataset out(schema_);
  Result<size_t> appended = AppendRows(&out, 0, num_rows_);
  TCM_CHECK(appended.ok()) << appended.status().ToString();
  return out;
}

Result<size_t> ColumnTable::AppendRows(Dataset* out, size_t begin,
                                       size_t count) const {
  TCM_CHECK(out != nullptr);
  TCM_CHECK_LE(begin, num_rows_);
  TCM_CHECK_LE(count, num_rows_ - begin);
  size_t cells = 0;
  Record record(schema_.size());
  for (size_t r = begin; r < begin + count; ++r) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      const ColumnData& col = columns_[c];
      record[c] = schema_.at(c).is_categorical()
                      ? Value::Categorical(col.codes[r])
                      : Value::Numeric(col.numeric[r]);
    }
    TCM_RETURN_IF_ERROR(out->Append(record));
    cells += schema_.size();
  }
  return cells;
}

std::span<const double> ColumnTable::NumericColumn(size_t col) const {
  TCM_CHECK_LT(col, columns_.size());
  TCM_CHECK(!schema_.at(col).is_categorical())
      << "NumericColumn on categorical attribute \"" << schema_.at(col).name
      << "\"";
  return {columns_[col].numeric, num_rows_};
}

std::span<const int32_t> ColumnTable::CodeColumn(size_t col) const {
  TCM_CHECK_LT(col, columns_.size());
  TCM_CHECK(schema_.at(col).is_categorical())
      << "CodeColumn on numeric attribute \"" << schema_.at(col).name << "\"";
  return {columns_[col].codes, num_rows_};
}

std::string_view ColumnTable::Label(size_t col, int32_t code) const {
  TCM_CHECK_LT(col, columns_.size());
  const Attribute& attr = schema_.at(col);
  TCM_CHECK(attr.is_categorical())
      << "Label on numeric attribute \"" << attr.name << "\"";
  TCM_CHECK(code >= 0 && static_cast<size_t>(code) < attr.categories.size())
      << "dictionary code " << code << " out of range for \"" << attr.name
      << "\" (" << attr.categories.size() << " categories)";
  return attr.categories[static_cast<size_t>(code)];
}

Status ColumnTable::ReplaceSchema(Schema schema) {
  if (schema.size() != schema_.size()) {
    return Status::InvalidArgument("ReplaceSchema: attribute count differs");
  }
  for (size_t c = 0; c < schema.size(); ++c) {
    const Attribute& old_attr = schema_.at(c);
    const Attribute& new_attr = schema.at(c);
    if (old_attr.name != new_attr.name || old_attr.type != new_attr.type ||
        old_attr.categories != new_attr.categories) {
      return Status::InvalidArgument(
          "ReplaceSchema: attribute \"" + old_attr.name +
          "\" differs in more than role");
    }
  }
  schema_ = std::move(schema);
  return Status::Ok();
}

}  // namespace tcm
