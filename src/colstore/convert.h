#ifndef TCM_COLSTORE_CONVERT_H_
#define TCM_COLSTORE_CONVERT_H_

#include <string>

#include "colstore/column_table.h"
#include "common/result.h"
#include "common/status.h"

namespace tcm {

// One-time CSV -> columnar conversion (the engine behind
// `tcm_anonymize --convert`). Two bounded-memory streaming passes over the
// file with the shared CSV tokenizer: pass 1 infers per-column types (a
// column where every stripped field parses as a double is numeric,
// anything else is nominal) and counts rows; pass 2 fills the columns,
// interning nominal labels into per-column dictionaries in first-appearance
// order. Numeric cells go through the same StripWhitespace + ParseDouble
// pair as the CSV readers, so a converted file replays byte-identically.
// Roles are all kOther — the JobSpec assigns roles at run time, exactly as
// it does for CSV inputs. IoError on unreadable or malformed input.
Result<ColumnTable> ConvertCsvToColumnar(const std::string& csv_path);

// Converts and writes the .tcmb image in one call.
Status ConvertCsvToTcmb(const std::string& csv_path,
                        const std::string& tcmb_path);

}  // namespace tcm

#endif  // TCM_COLSTORE_CONVERT_H_
