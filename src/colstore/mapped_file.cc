#include "colstore/mapped_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace tcm {

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    munmap(const_cast<char*>(data_), size_);
  }
}

Result<std::shared_ptr<const MappedFile>> MappedFile::Open(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("cannot open \"" + path +
                           "\": " + std::strerror(errno));
  }
  struct stat st;
  if (fstat(fd, &st) != 0) {
    int saved = errno;
    ::close(fd);
    return Status::IoError("cannot stat \"" + path +
                           "\": " + std::strerror(saved));
  }
  size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return std::shared_ptr<const MappedFile>(new MappedFile(nullptr, 0));
  }
  void* mapping = mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  int saved = errno;
  ::close(fd);  // the mapping keeps its own reference to the file
  if (mapping == MAP_FAILED) {
    return Status::IoError("cannot mmap \"" + path +
                           "\": " + std::strerror(saved));
  }
  return std::shared_ptr<const MappedFile>(
      new MappedFile(static_cast<const char*>(mapping), size));
}

}  // namespace tcm
