#ifndef TCM_COLSTORE_COLUMNAR_SOURCE_H_
#define TCM_COLSTORE_COLUMNAR_SOURCE_H_

#include <memory>
#include <string>
#include <utility>

#include "colstore/column_table.h"
#include "common/result.h"
#include "data/record_source.h"

namespace tcm {

// Streams a ColumnTable as records: the .tcmb counterpart of
// StreamingCsvReader. Rows are materialized batch by batch straight from
// the (usually memory-mapped) columns — categorical cells carry their
// dictionary codes directly, so there is no per-cell label lookup the way
// the CSV reader pays per field. The source owns the table and therefore
// the mapping keep-alive.
class ColumnarSource : public RecordSource {
 public:
  // Memory-maps and parses a .tcmb file (see tcmb.h for the error
  // contract: IoError for damage, InvalidSpec for format mismatch).
  static Result<std::unique_ptr<ColumnarSource>> Open(const std::string& path);

  explicit ColumnarSource(ColumnTable table) : table_(std::move(table)) {}

  const Schema& schema() const override { return table_.schema(); }

  // Replaces attribute roles (e.g. from JobSpec roles); names, types and
  // dictionaries must be unchanged.
  Status ReplaceSchema(Schema schema) {
    return table_.ReplaceSchema(std::move(schema));
  }

  Result<size_t> ReadInto(Dataset* out, size_t max_rows) override;

  const ColumnTable& table() const { return table_; }
  size_t rows_read() const { return next_row_; }

  // Byte accounting for RunReport: bytes served zero-copy by the mapping,
  // and payload bytes materialized into row batches so far.
  size_t mapped_bytes() const { return table_.mapped_bytes(); }
  size_t copied_bytes() const {
    return table_.copied_bytes() + materialized_bytes_;
  }

 private:
  ColumnTable table_;
  size_t next_row_ = 0;
  size_t materialized_bytes_ = 0;
};

}  // namespace tcm

#endif  // TCM_COLSTORE_COLUMNAR_SOURCE_H_
