#include "colstore/columnar_audit.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "distance/categorical.h"

namespace tcm {
namespace {

Result<CategoricalTClosenessReport> EvaluateColumnar(
    const ColumnTable& table, size_t confidential_offset,
    AttributeType required_type,
    double (*distance)(const std::vector<size_t>&,
                       const std::vector<size_t>&)) {
  const auto confidential = table.schema().ConfidentialIndices();
  if (confidential.size() <= confidential_offset) {
    return Status::InvalidArgument("confidential attribute not available");
  }
  const size_t col = confidential[confidential_offset];
  const Attribute& attr = table.schema().at(col);
  if (attr.type != required_type) {
    return Status::InvalidArgument(
        std::string("confidential attribute is ") +
        AttributeTypeName(attr.type) + ", expected " +
        AttributeTypeName(required_type));
  }
  std::span<const int32_t> codes = table.CodeColumn(col);
  // Category universe: the declared dictionary, or the observed code range
  // when the schema does not enumerate them (mirrors the row evaluator).
  size_t universe = attr.categories.size();
  for (int32_t code : codes) {
    TCM_CHECK_GE(code, 0) << "negative dictionary code in column \""
                          << attr.name << "\"";
    universe = std::max(universe, static_cast<size_t>(code) + 1);
  }
  if (universe == 0) {
    return Status::InvalidArgument("no categories declared or observed");
  }

  std::vector<size_t> global = CountCategoryCodes(codes, universe);

  TCM_ASSIGN_OR_RETURN(auto classes, ColumnarEquivalenceClasses(table));
  CategoricalTClosenessReport report;
  report.num_equivalence_classes = classes.size();
  double total = 0.0;
  std::vector<size_t> counts(universe, 0);
  for (const auto& group : classes) {
    std::fill(counts.begin(), counts.end(), 0);
    for (size_t row : group) {
      ++counts[static_cast<size_t>(codes[row])];
    }
    double value = distance(counts, global);
    report.max_distance = std::max(report.max_distance, value);
    total += value;
  }
  if (!classes.empty()) {
    report.mean_distance = total / static_cast<double>(classes.size());
  }
  return report;
}

}  // namespace

Result<std::vector<std::vector<size_t>>> ColumnarEquivalenceClasses(
    const ColumnTable& table) {
  const std::vector<size_t> qi = table.schema().QuasiIdentifierIndices();
  if (qi.empty()) {
    return Status::InvalidArgument("dataset has no quasi-identifiers");
  }
  // Fixed-width byte key per row over the QI columns. Doubles are keyed by
  // bit pattern with -0.0 normalized to 0.0 so byte equality matches the
  // row store's Value operator==.
  size_t key_width = 0;
  for (size_t col : qi) {
    key_width +=
        table.schema().at(col).is_categorical() ? sizeof(int32_t)
                                                : sizeof(double);
  }
  std::unordered_map<std::string, size_t> class_index;
  std::vector<std::vector<size_t>> classes;
  std::string key(key_width, '\0');
  for (size_t row = 0; row < table.num_rows(); ++row) {
    size_t pos = 0;
    for (size_t col : qi) {
      if (table.schema().at(col).is_categorical()) {
        const int32_t code = table.CodeColumn(col)[row];
        std::memcpy(key.data() + pos, &code, sizeof(code));
        pos += sizeof(code);
      } else {
        double v = table.NumericColumn(col)[row];
        if (v == 0.0) v = 0.0;  // collapse -0.0 onto +0.0
        std::memcpy(key.data() + pos, &v, sizeof(v));
        pos += sizeof(v);
      }
    }
    auto [it, inserted] = class_index.emplace(key, classes.size());
    if (inserted) classes.emplace_back();
    classes[it->second].push_back(row);
  }
  return classes;
}

Result<bool> IsColumnarKAnonymous(const ColumnTable& table, size_t k) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  TCM_ASSIGN_OR_RETURN(auto classes, ColumnarEquivalenceClasses(table));
  for (const auto& group : classes) {
    if (group.size() < k) return false;
  }
  return true;
}

Result<CategoricalTClosenessReport> EvaluateColumnarOrdinalTCloseness(
    const ColumnTable& table, size_t confidential_offset) {
  return EvaluateColumnar(table, confidential_offset, AttributeType::kOrdinal,
                          &OrdinalCategoricalEmd);
}

Result<CategoricalTClosenessReport> EvaluateColumnarNominalTCloseness(
    const ColumnTable& table, size_t confidential_offset) {
  return EvaluateColumnar(table, confidential_offset, AttributeType::kNominal,
                          &NominalCategoricalEmd);
}

}  // namespace tcm
