#include "colstore/convert.h"

#include <cstdint>
#include <fstream>
#include <functional>
#include <limits>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "colstore/tcmb.h"
#include "common/strings.h"
#include "data/csv_stream.h"

namespace tcm {
namespace {

constexpr size_t kChunkBytes = 1 << 16;

// Streams `path` through the shared tokenizer, invoking `fn` for every
// non-blank record (header included). `fn` sees the raw fields plus the
// 1-based line the record began on.
Status ForEachCsvRecord(
    const std::string& path,
    const std::function<Status(const std::vector<std::string>&, size_t)>&
        fn) {
  std::ifstream input(path, std::ios::binary);
  if (!input) {
    return Status::IoError("cannot open \"" + path + "\"");
  }
  CsvTokenizer tokenizer;
  std::vector<char> chunk(kChunkBytes);
  std::vector<std::string> fields;
  bool input_done = false;
  while (true) {
    TCM_ASSIGN_OR_RETURN(bool have, tokenizer.Next(&fields));
    if (have) {
      if (IsBlankCsvRecord(fields)) continue;
      TCM_RETURN_IF_ERROR(fn(fields, tokenizer.record_line()));
      continue;
    }
    if (input_done) return Status::Ok();
    input.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
    const std::streamsize got = input.gcount();
    if (got > 0) {
      tokenizer.Feed(std::string_view(chunk.data(), static_cast<size_t>(got)));
    }
    if (got < static_cast<std::streamsize>(chunk.size())) {
      if (input.bad()) {
        return Status::IoError("read error on \"" + path + "\"");
      }
      tokenizer.Finish();
      input_done = true;
    }
  }
}

Status FieldCountError(const std::string& path, size_t line, size_t expected,
                       size_t got) {
  return Status::IoError("\"" + path + "\" line " + std::to_string(line) +
                         ": expected " + std::to_string(expected) +
                         " fields, got " + std::to_string(got));
}

}  // namespace

Result<ColumnTable> ConvertCsvToColumnar(const std::string& csv_path) {
  // Pass 1: header names, per-column numeric-ness, row count.
  std::vector<std::string> names;
  std::vector<bool> numeric;
  size_t rows = 0;
  Status pass1 = ForEachCsvRecord(
      csv_path,
      [&](const std::vector<std::string>& fields, size_t line) -> Status {
        if (names.empty()) {
          for (const std::string& field : fields) {
            names.emplace_back(StripWhitespace(field));
          }
          numeric.assign(names.size(), true);
          return Status::Ok();
        }
        if (fields.size() != names.size()) {
          return FieldCountError(csv_path, line, names.size(), fields.size());
        }
        for (size_t c = 0; c < fields.size(); ++c) {
          double parsed;
          if (numeric[c] && !ParseDouble(StripWhitespace(fields[c]), &parsed)) {
            numeric[c] = false;
          }
        }
        ++rows;
        return Status::Ok();
      });
  TCM_RETURN_IF_ERROR(pass1);
  if (names.empty()) {
    return Status::IoError("\"" + csv_path + "\": no header record");
  }

  // Pass 2: fill columns, interning nominal labels in appearance order.
  std::vector<std::vector<double>> numeric_cols(names.size());
  std::vector<std::vector<int32_t>> code_cols(names.size());
  std::vector<std::vector<std::string>> dictionaries(names.size());
  std::vector<std::unordered_map<std::string, int32_t>> interned(names.size());
  for (size_t c = 0; c < names.size(); ++c) {
    if (numeric[c]) {
      numeric_cols[c].reserve(rows);
    } else {
      code_cols[c].reserve(rows);
    }
  }
  bool seen_header = false;
  Status pass2 = ForEachCsvRecord(
      csv_path,
      [&](const std::vector<std::string>& fields, size_t line) -> Status {
        if (!seen_header) {
          seen_header = true;
          return Status::Ok();
        }
        if (fields.size() != names.size()) {
          return FieldCountError(csv_path, line, names.size(), fields.size());
        }
        for (size_t c = 0; c < fields.size(); ++c) {
          const std::string_view stripped = StripWhitespace(fields[c]);
          if (numeric[c]) {
            double parsed = 0;
            if (!ParseDouble(stripped, &parsed)) {
              return Status::IoError(
                  "\"" + csv_path + "\" line " + std::to_string(line) +
                  ": cannot parse \"" + std::string(stripped) +
                  "\" as a number in column \"" + names[c] + "\"");
            }
            numeric_cols[c].push_back(parsed);
          } else {
            std::string label(stripped);
            auto it = interned[c].find(label);
            if (it == interned[c].end()) {
              if (dictionaries[c].size() >
                  static_cast<size_t>(
                      std::numeric_limits<int32_t>::max())) {
                return Status::IoError("\"" + csv_path + "\": column \"" +
                                       names[c] +
                                       "\" has too many distinct labels");
              }
              const int32_t code =
                  static_cast<int32_t>(dictionaries[c].size());
              dictionaries[c].push_back(label);
              it = interned[c].emplace(std::move(label), code).first;
            }
            code_cols[c].push_back(it->second);
          }
        }
        return Status::Ok();
      });
  TCM_RETURN_IF_ERROR(pass2);

  std::vector<Attribute> attributes(names.size());
  std::vector<ColumnTable::ColumnData> columns(names.size());
  size_t copied = 0;
  for (size_t c = 0; c < names.size(); ++c) {
    Attribute& attr = attributes[c];
    attr.name = names[c];
    attr.role = AttributeRole::kOther;
    ColumnTable::ColumnData& col = columns[c];
    if (numeric[c]) {
      attr.type = AttributeType::kNumeric;
      col.owned_numeric = std::move(numeric_cols[c]);
      col.numeric = col.owned_numeric.data();
      copied += col.owned_numeric.size() * sizeof(double);
    } else {
      attr.type = AttributeType::kNominal;
      attr.categories = std::move(dictionaries[c]);
      col.owned_codes = std::move(code_cols[c]);
      col.codes = col.owned_codes.data();
      copied += col.owned_codes.size() * sizeof(int32_t);
    }
  }
  return ColumnTable::Make(Schema(std::move(attributes)), rows,
                           std::move(columns), nullptr, /*mapped_bytes=*/0,
                           /*copied_bytes=*/copied);
}

Status ConvertCsvToTcmb(const std::string& csv_path,
                        const std::string& tcmb_path) {
  Result<ColumnTable> table = ConvertCsvToColumnar(csv_path);
  if (!table.ok()) return table.status();
  return WriteTcmb(*table, tcmb_path);
}

}  // namespace tcm
