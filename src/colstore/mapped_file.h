#ifndef TCM_COLSTORE_MAPPED_FILE_H_
#define TCM_COLSTORE_MAPPED_FILE_H_

#include <cstddef>
#include <memory>
#include <string>

#include "common/result.h"

namespace tcm {

// A read-only memory mapping of an entire file. The mapping stays valid for
// the lifetime of the object; ColumnTable holds a shared_ptr to its mapping
// so every column span and dictionary string_view handed out remains valid
// while any consumer still owns the table (or a keep-alive copy of the
// owner). Never hand out views that could outlive the last shared_ptr.
class MappedFile {
 public:
  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  // Maps `path` read-only. IoError if the file cannot be opened, stat'ed or
  // mapped. An empty file yields a valid object with data() == nullptr and
  // size() == 0 (nothing is mapped).
  static Result<std::shared_ptr<const MappedFile>> Open(
      const std::string& path);

  const char* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  MappedFile(const char* data, size_t size) : data_(data), size_(size) {}

  const char* data_ = nullptr;  // nullptr iff size_ == 0
  size_t size_ = 0;
};

}  // namespace tcm

#endif  // TCM_COLSTORE_MAPPED_FILE_H_
