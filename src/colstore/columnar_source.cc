#include "colstore/columnar_source.h"

#include <algorithm>
#include <cstdint>

#include "colstore/tcmb.h"

namespace tcm {

Result<std::unique_ptr<ColumnarSource>> ColumnarSource::Open(
    const std::string& path) {
  Result<ColumnTable> table = ReadTcmb(path);
  if (!table.ok()) return table.status();
  return std::make_unique<ColumnarSource>(std::move(table).value());
}

Result<size_t> ColumnarSource::ReadInto(Dataset* out, size_t max_rows) {
  const size_t count = std::min(max_rows, table_.num_rows() - next_row_);
  if (count == 0) return size_t{0};
  TCM_ASSIGN_OR_RETURN(size_t cells, table_.AppendRows(out, next_row_, count));
  (void)cells;
  size_t row_width = 0;
  for (const Attribute& attr : table_.schema().attributes()) {
    row_width += attr.is_categorical() ? sizeof(int32_t) : sizeof(double);
  }
  materialized_bytes_ += count * row_width;
  next_row_ += count;
  return count;
}

}  // namespace tcm
