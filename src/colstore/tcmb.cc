#include "colstore/tcmb.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <string_view>
#include <utility>
#include <vector>

#include "colstore/mapped_file.h"
#include "common/check.h"

namespace tcm {
namespace {

constexpr char kMagic[4] = {'T', 'C', 'M', 'B'};
constexpr size_t kPreambleSize = 32;
constexpr size_t kDirectoryEntrySize = 24;  // offset + size + checksum

// FNV-1a 64-bit: the same cheap, dependency-free checksum for the header
// blob and every payload section.
uint64_t Fnv1a64(const char* data, size_t size) {
  uint64_t hash = 14695981039346656037ull;
  for (size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= 1099511628211ull;
  }
  return hash;
}

size_t AlignUp8(size_t v) { return (v + 7) & ~size_t{7}; }

void AppendU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint32_t LoadU32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

uint64_t LoadU64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

// Bounds-checked sequential reader over the header blob. Any overrun marks
// the cursor bad; callers test ok once after the full parse instead of
// checking every read.
struct HeaderCursor {
  const char* data;
  size_t size;
  size_t pos = 0;
  bool ok = true;

  uint8_t U8() {
    if (pos + 1 > size) {
      ok = false;
      return 0;
    }
    return static_cast<uint8_t>(data[pos++]);
  }
  uint32_t U32() {
    if (pos + 4 > size) {
      ok = false;
      return 0;
    }
    uint32_t v = LoadU32(data + pos);
    pos += 4;
    return v;
  }
  uint64_t U64() {
    if (pos + 8 > size) {
      ok = false;
      return 0;
    }
    uint64_t v = LoadU64(data + pos);
    pos += 8;
    return v;
  }
  std::string_view Bytes(size_t n) {
    if (n > size || pos > size - n) {
      ok = false;
      return {};
    }
    std::string_view v(data + pos, n);
    pos += n;
    return v;
  }
};

Status Truncated(const std::string& context, const std::string& what) {
  return Status::IoError(context + ": truncated .tcmb file (" + what + ")");
}

Status Malformed(const std::string& context, const std::string& what) {
  return Status::InvalidSpec(context + ": malformed .tcmb file (" + what +
                             ")");
}

size_t PayloadWidth(const Attribute& attr) {
  return attr.is_categorical() ? sizeof(int32_t) : sizeof(double);
}

}  // namespace

Result<std::string> SerializeTcmb(const ColumnTable& table) {
  const Schema& schema = table.schema();
  if (schema.empty()) {
    return Status::InvalidArgument(
        "SerializeTcmb: cannot serialize a zero-column table");
  }
  const size_t rows = table.num_rows();

  // Schema section of the header blob.
  std::string header;
  AppendU64(&header, rows);
  AppendU32(&header, static_cast<uint32_t>(schema.size()));
  for (const Attribute& attr : schema.attributes()) {
    if (attr.name.size() > std::numeric_limits<uint32_t>::max()) {
      return Status::InvalidArgument("SerializeTcmb: attribute name too long");
    }
    AppendU32(&header, static_cast<uint32_t>(attr.name.size()));
    header.append(attr.name);
    AppendU8(&header, static_cast<uint8_t>(attr.type));
    AppendU8(&header, static_cast<uint8_t>(attr.role));
    const auto& categories = attr.is_categorical()
                                 ? attr.categories
                                 : std::vector<std::string>{};
    AppendU32(&header, static_cast<uint32_t>(categories.size()));
    for (const std::string& label : categories) {
      AppendU32(&header, static_cast<uint32_t>(label.size()));
      header.append(label);
    }
  }

  // Canonical payload placement: packed in column order, each section
  // aligned to 8 bytes so doubles map directly.
  const size_t header_size =
      header.size() + schema.size() * kDirectoryEntrySize;
  std::vector<std::string> payloads(schema.size());
  std::vector<uint64_t> offsets(schema.size());
  size_t cursor = AlignUp8(kPreambleSize + header_size);
  for (size_t c = 0; c < schema.size(); ++c) {
    std::string& payload = payloads[c];
    if (schema.at(c).is_categorical()) {
      std::span<const int32_t> codes = table.CodeColumn(c);
      payload.resize(rows * sizeof(int32_t));
      if (rows > 0) {
        std::memcpy(payload.data(), codes.data(), payload.size());
      }
    } else {
      std::span<const double> values = table.NumericColumn(c);
      payload.resize(rows * sizeof(double));
      if (rows > 0) {
        std::memcpy(payload.data(), values.data(), payload.size());
      }
    }
    cursor = AlignUp8(cursor);
    offsets[c] = cursor;
    cursor += payload.size();
  }
  const size_t file_size = cursor;

  // Payload directory completes the header blob.
  for (size_t c = 0; c < schema.size(); ++c) {
    AppendU64(&header, offsets[c]);
    AppendU64(&header, payloads[c].size());
    AppendU64(&header, Fnv1a64(payloads[c].data(), payloads[c].size()));
  }
  TCM_CHECK_EQ(header.size(), header_size);

  std::string out;
  out.reserve(file_size);
  out.append(kMagic, sizeof(kMagic));
  AppendU32(&out, kTcmbFormatVersion);
  AppendU64(&out, header_size);
  AppendU64(&out, Fnv1a64(header.data(), header.size()));
  AppendU64(&out, file_size);
  out.append(header);
  for (size_t c = 0; c < schema.size(); ++c) {
    out.resize(offsets[c], '\0');  // zero padding up to the aligned offset
    out.append(payloads[c]);
  }
  TCM_CHECK_EQ(out.size(), file_size);
  return out;
}

Status WriteTcmb(const ColumnTable& table, const std::string& path) {
  Result<std::string> image = SerializeTcmb(table);
  if (!image.ok()) return image.status();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open \"" + path + "\" for writing");
  }
  out.write(image->data(), static_cast<std::streamsize>(image->size()));
  out.flush();
  if (!out.good()) {
    return Status::IoError("failed writing \"" + path + "\"");
  }
  return Status::Ok();
}

Result<ColumnTable> ParseTcmb(const char* data, size_t size,
                              std::shared_ptr<const void> owner,
                              const std::string& context) {
  // Preamble. Too-short files are damage (IoError); an intact preamble
  // that is not ours is a spec problem (InvalidSpec).
  if (size < sizeof(kMagic)) return Truncated(context, "no magic");
  if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidSpec(context + ": not a .tcmb file (bad magic)");
  }
  if (size < 8) return Truncated(context, "no version field");
  const uint32_t version = LoadU32(data + 4);
  if (version != kTcmbFormatVersion) {
    return Status::InvalidSpec(
        context + ": unsupported .tcmb format version " +
        std::to_string(version) + " (expected " +
        std::to_string(kTcmbFormatVersion) + ")");
  }
  if (size < kPreambleSize) return Truncated(context, "preamble");
  const uint64_t header_size = LoadU64(data + 8);
  const uint64_t header_checksum = LoadU64(data + 16);
  const uint64_t declared_size = LoadU64(data + 24);
  if (size < declared_size) {
    return Truncated(context, "file has " + std::to_string(size) +
                                  " bytes, header declares " +
                                  std::to_string(declared_size));
  }
  if (size > declared_size) {
    return Malformed(context, "trailing bytes beyond declared file size");
  }
  if (header_size > declared_size - kPreambleSize) {
    return Malformed(context, "header overruns file");
  }
  const char* header = data + kPreambleSize;
  if (Fnv1a64(header, header_size) != header_checksum) {
    return Status::IoError(context + ": header checksum mismatch");
  }

  // Header blob: schema, then payload directory.
  HeaderCursor cursor{header, static_cast<size_t>(header_size)};
  const uint64_t row_count = cursor.U64();
  const uint32_t column_count = cursor.U32();
  if (cursor.ok && column_count == 0) {
    return Malformed(context, "zero columns");
  }
  if (row_count > std::numeric_limits<size_t>::max() / sizeof(double)) {
    return Malformed(context, "row count overflows");
  }
  std::vector<Attribute> attributes;
  attributes.reserve(cursor.ok ? column_count : 0);
  for (uint32_t c = 0; cursor.ok && c < column_count; ++c) {
    Attribute attr;
    attr.name = std::string(cursor.Bytes(cursor.U32()));
    const uint8_t type = cursor.U8();
    const uint8_t role = cursor.U8();
    if (cursor.ok && type > static_cast<uint8_t>(AttributeType::kNominal)) {
      return Malformed(context, "unknown attribute type " +
                                    std::to_string(type) + " for column \"" +
                                    attr.name + "\"");
    }
    if (cursor.ok && role > static_cast<uint8_t>(AttributeRole::kOther)) {
      return Malformed(context, "unknown attribute role " +
                                    std::to_string(role) + " for column \"" +
                                    attr.name + "\"");
    }
    attr.type = static_cast<AttributeType>(type);
    attr.role = static_cast<AttributeRole>(role);
    const uint32_t category_count = cursor.U32();
    if (cursor.ok && !attr.is_categorical() && category_count != 0) {
      return Malformed(context, "numeric column \"" + attr.name +
                                    "\" carries a dictionary");
    }
    attr.categories.reserve(cursor.ok ? category_count : 0);
    for (uint32_t i = 0; cursor.ok && i < category_count; ++i) {
      attr.categories.emplace_back(cursor.Bytes(cursor.U32()));
    }
    attributes.push_back(std::move(attr));
  }
  struct DirectoryEntry {
    uint64_t offset;
    uint64_t size;
    uint64_t checksum;
  };
  std::vector<DirectoryEntry> directory;
  directory.reserve(cursor.ok ? column_count : 0);
  for (uint32_t c = 0; cursor.ok && c < column_count; ++c) {
    DirectoryEntry entry;
    entry.offset = cursor.U64();
    entry.size = cursor.U64();
    entry.checksum = cursor.U64();
    directory.push_back(entry);
  }
  if (!cursor.ok) {
    return Malformed(context, "header ends mid-field");
  }
  if (cursor.pos != header_size) {
    return Malformed(context, "header has trailing bytes");
  }

  // Directory must describe the canonical packed layout the writer
  // produces: 8-aligned sections in column order, ending exactly at the
  // declared file size.
  Schema schema{std::move(attributes)};
  size_t expected_offset = AlignUp8(kPreambleSize + header_size);
  for (uint32_t c = 0; c < column_count; ++c) {
    const Attribute& attr = schema.at(c);
    const DirectoryEntry& entry = directory[c];
    const uint64_t expected_size = row_count * PayloadWidth(attr);
    expected_offset = AlignUp8(expected_offset);
    if (entry.offset != expected_offset) {
      return Malformed(context, "non-canonical payload offset for column \"" +
                                    attr.name + "\"");
    }
    if (entry.size != expected_size) {
      return Malformed(context, "payload size mismatch for column \"" +
                                    attr.name + "\"");
    }
    if (entry.offset > declared_size ||
        entry.size > declared_size - entry.offset) {
      return Truncated(context, "payload of column \"" + attr.name + "\"");
    }
    expected_offset = entry.offset + entry.size;
  }
  if (expected_offset != declared_size) {
    return Malformed(context, "declared file size does not match payloads");
  }

  // Payload verification: checksums first, then dictionary code ranges —
  // both are damage, not spec problems.
  for (uint32_t c = 0; c < column_count; ++c) {
    const DirectoryEntry& entry = directory[c];
    if (Fnv1a64(data + entry.offset, entry.size) != entry.checksum) {
      return Status::IoError(context +
                             ": payload checksum mismatch for column \"" +
                             schema.at(c).name + "\"");
    }
  }

  std::vector<ColumnTable::ColumnData> columns(column_count);
  size_t copied_bytes = 0;
  for (uint32_t c = 0; c < column_count; ++c) {
    const Attribute& attr = schema.at(c);
    const DirectoryEntry& entry = directory[c];
    const char* payload = data + entry.offset;
    ColumnTable::ColumnData& col = columns[c];
    if (attr.is_categorical()) {
      const bool aliasable =
          owner != nullptr &&
          reinterpret_cast<uintptr_t>(payload) % alignof(int32_t) == 0;
      if (aliasable) {
        col.codes = reinterpret_cast<const int32_t*>(payload);
      } else {
        col.owned_codes.resize(row_count);
        if (entry.size > 0) {
          std::memcpy(col.owned_codes.data(), payload, entry.size);
        }
        col.codes = col.owned_codes.data();
        copied_bytes += entry.size;
      }
      const int64_t universe = static_cast<int64_t>(attr.categories.size());
      for (uint64_t r = 0; r < row_count; ++r) {
        const int32_t code = col.codes[r];
        if (code < 0 || code >= universe) {
          return Status::IoError(
              context + ": dictionary code " + std::to_string(code) +
              " out of range for column \"" + attr.name + "\" (" +
              std::to_string(universe) + " categories)");
        }
      }
    } else {
      const bool aliasable =
          owner != nullptr &&
          reinterpret_cast<uintptr_t>(payload) % alignof(double) == 0;
      if (aliasable) {
        col.numeric = reinterpret_cast<const double*>(payload);
      } else {
        col.owned_numeric.resize(row_count);
        if (entry.size > 0) {
          std::memcpy(col.owned_numeric.data(), payload, entry.size);
        }
        col.numeric = col.owned_numeric.data();
        copied_bytes += entry.size;
      }
    }
  }

  const size_t mapped_bytes = owner != nullptr ? size : 0;
  return ColumnTable::Make(std::move(schema), row_count, std::move(columns),
                           std::move(owner), mapped_bytes, copied_bytes);
}

Result<ColumnTable> ReadTcmb(const std::string& path) {
  Result<std::shared_ptr<const MappedFile>> mapped = MappedFile::Open(path);
  if (!mapped.ok()) return mapped.status();
  const std::shared_ptr<const MappedFile>& file = *mapped;
  return ParseTcmb(file->data(), file->size(), file, path);
}

}  // namespace tcm
