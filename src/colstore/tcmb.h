#ifndef TCM_COLSTORE_TCMB_H_
#define TCM_COLSTORE_TCMB_H_

#include <cstdint>
#include <memory>
#include <string>

#include "colstore/column_table.h"
#include "common/result.h"
#include "common/status.h"

namespace tcm {

// Version of the .tcmb on-disk format. Bumped on any layout change; readers
// reject other versions with InvalidSpec. Pinned by tcm_lint against the
// README "Binary dataset format" section.
inline constexpr uint32_t kTcmbFormatVersion = 1;

// .tcmb v1 layout (all integers little-endian):
//
//   preamble (32 bytes)
//     bytes  0..3   magic "TCMB"
//     bytes  4..7   u32 format version (kTcmbFormatVersion)
//     bytes  8..15  u64 header size in bytes
//     bytes 16..23  u64 FNV-1a-64 checksum of the header blob
//     bytes 24..31  u64 declared total file size (truncation detector)
//   header blob (starts at byte 32)
//     u64 row count, u32 column count, then per column:
//       u32 name length + name bytes,
//       u8 attribute type, u8 attribute role,
//       u32 category count, then per category u32 length + bytes
//     then the payload directory: per column
//       u64 payload offset, u64 payload size, u64 FNV-1a-64 checksum
//   zero padding to the next 8-byte boundary, then per-column payloads,
//   each 8-byte aligned: numeric columns are row-count doubles, categorical
//   columns are row-count int32 dictionary codes.
//
// Error contract (matched by the CLI exit codes): IoError for anything that
// smells like a damaged file — unreadable path, truncation anywhere,
// checksum mismatch, dictionary code outside its column's dictionary.
// InvalidSpec for a file that is intact but not a usable .tcmb v1 — wrong
// magic, unsupported version, malformed header, non-canonical payload
// layout, trailing bytes beyond the declared size.

// Serializes the table into an in-memory .tcmb image.
// InvalidArgument for a zero-column table. Dictionary codes are written as
// stored — the writer trusts, the reader verifies.
Result<std::string> SerializeTcmb(const ColumnTable& table);

// Serializes and writes atomically enough for tooling (write then rename is
// not needed here: callers treat a failed write as fatal). IoError on any
// filesystem failure.
Status WriteTcmb(const ColumnTable& table, const std::string& path);

// Parses a .tcmb image held in memory. When `owner` is non-null and a
// payload is correctly aligned in place, the resulting table aliases the
// buffer zero-copy and keeps `owner` alive; otherwise payload bytes are
// copied into owned storage. `context` names the input in error messages.
Result<ColumnTable> ParseTcmb(const char* data, size_t size,
                              std::shared_ptr<const void> owner,
                              const std::string& context);

// Memory-maps `path` and parses it zero-copy. The returned table keeps the
// mapping alive; mapped_bytes()/copied_bytes() report the split.
Result<ColumnTable> ReadTcmb(const std::string& path);

}  // namespace tcm

#endif  // TCM_COLSTORE_TCMB_H_
