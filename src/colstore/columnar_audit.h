#ifndef TCM_COLSTORE_COLUMNAR_AUDIT_H_
#define TCM_COLSTORE_COLUMNAR_AUDIT_H_

#include <cstddef>
#include <vector>

#include "colstore/column_table.h"
#include "common/result.h"
#include "privacy/categorical_tcloseness.h"

namespace tcm {

// Column-native privacy audits: the same verdicts as the row-store
// evaluators in privacy/, computed straight off the (possibly memory-
// mapped) columns. Categorical work runs on dictionary codes through the
// integer-indexed EMD kernels — no Value materialization and no string
// hashing. Equality with the row-store evaluators is pinned by
// tests/colstore_test.cc on bridged datasets.

// Groups rows by exact equality of their quasi-identifier columns, classes
// in first-appearance order (matching EquivalenceClasses on the bridged
// dataset). InvalidArgument if the schema has no quasi-identifiers.
Result<std::vector<std::vector<size_t>>> ColumnarEquivalenceClasses(
    const ColumnTable& table);

// Minimum equivalence-class size >= k. Mirrors IsKAnonymous.
Result<bool> IsColumnarKAnonymous(const ColumnTable& table, size_t k);

// Ordinal / nominal t-closeness over the confidential dictionary column.
// Same reports (universe, distances, unweighted class mean) as
// EvaluateOrdinalTCloseness / EvaluateNominalTCloseness on the bridged
// dataset; equality is pinned by tests.
Result<CategoricalTClosenessReport> EvaluateColumnarOrdinalTCloseness(
    const ColumnTable& table, size_t confidential_offset = 0);
Result<CategoricalTClosenessReport> EvaluateColumnarNominalTCloseness(
    const ColumnTable& table, size_t confidential_offset = 0);

}  // namespace tcm

#endif  // TCM_COLSTORE_COLUMNAR_AUDIT_H_
