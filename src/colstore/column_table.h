#ifndef TCM_COLSTORE_COLUMN_TABLE_H_
#define TCM_COLSTORE_COLUMN_TABLE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/result.h"
#include "common/status.h"
#include "data/attribute.h"
#include "data/dataset.h"

namespace tcm {

// Column-major microdata table: one fixed-width array per attribute.
// Numeric columns are contiguous doubles; categorical columns are int32
// dictionary codes indexing Attribute::categories (the per-column interned
// dictionary). Move-only. Column pointers may alias a memory-mapped .tcmb
// file; the table keeps that mapping alive through a shared owner, so all
// spans and dictionary labels handed out stay valid while the table — or a
// keep-alive copy of owner() — exists. TCM_CHECKs guard every column/code
// access so a stale or out-of-range index aborts instead of mis-reading.
class ColumnTable {
 public:
  // Storage for one column. Exactly one of numeric/codes is set (matching
  // the attribute type); the pointer either aliases the shared owner (zero
  // copy) or the column's own owned_* vector.
  struct ColumnData {
    std::vector<double> owned_numeric;
    std::vector<int32_t> owned_codes;
    const double* numeric = nullptr;
    const int32_t* codes = nullptr;
  };

  ColumnTable() = default;
  ColumnTable(const ColumnTable&) = delete;
  ColumnTable& operator=(const ColumnTable&) = delete;
  ColumnTable(ColumnTable&&) noexcept = default;
  ColumnTable& operator=(ColumnTable&&) noexcept = default;

  // Structural factory used by the .tcmb reader and tests. Checks arity and
  // per-column type/pointer consistency but deliberately does NOT validate
  // dictionary code ranges: the reader verifies payloads after checksums,
  // and fuzz tests construct intentionally-bad tables through this seam.
  static ColumnTable Make(Schema schema, size_t num_rows,
                          std::vector<ColumnData> columns,
                          std::shared_ptr<const void> owner,
                          size_t mapped_bytes, size_t copied_bytes);

  // Columnarizes a row-store dataset (full copy; no shared owner).
  static ColumnTable FromDataset(const Dataset& data);

  // Materializes the whole table as a row-store dataset.
  Dataset ToDataset() const;

  // Appends rows [begin, begin + count) to `*out`, whose schema must accept
  // them. Returns the number of Value cells materialized (for copy-byte
  // accounting). Bounds are TCM_CHECKed.
  Result<size_t> AppendRows(Dataset* out, size_t begin, size_t count) const;

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return schema_.size(); }

  // Typed column views. The column index must be in range and the attribute
  // type must match (numeric vs categorical), or the process aborts.
  std::span<const double> NumericColumn(size_t col) const;
  std::span<const int32_t> CodeColumn(size_t col) const;

  // Dictionary label for `code` in categorical column `col`. The returned
  // view aliases the schema and is valid for the table's lifetime; an
  // out-of-range code aborts (TCM_CHECK), never reads past the dictionary.
  std::string_view Label(size_t col, int32_t code) const;

  // Replaces attribute roles; names, types and category dictionaries must
  // be otherwise identical, or InvalidArgument. Mirrors Dataset's contract.
  Status ReplaceSchema(Schema schema);

  // Shared keep-alive for zero-copy column storage (the mmap). Consumers
  // that stash spans/labels beyond the table's lifetime must hold a copy.
  const std::shared_ptr<const void>& owner() const { return owner_; }

  // Byte accounting for RunReport: bytes served by the mapping vs bytes
  // copied into owned buffers while building this table.
  size_t mapped_bytes() const { return mapped_bytes_; }
  size_t copied_bytes() const { return copied_bytes_; }

 private:
  Schema schema_;
  size_t num_rows_ = 0;
  std::vector<ColumnData> columns_;
  std::shared_ptr<const void> owner_;
  size_t mapped_bytes_ = 0;
  size_t copied_bytes_ = 0;
};

}  // namespace tcm

#endif  // TCM_COLSTORE_COLUMN_TABLE_H_
