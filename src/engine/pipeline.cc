#include "engine/pipeline.h"

#include <utility>

#include "common/strings.h"
#include "common/timer.h"
#include "data/csv.h"
#include "obs/trace.h"
#include "privacy/equivalence.h"
#include "privacy/kanonymity.h"
#include "privacy/tcloseness.h"

namespace tcm {

Result<ReleaseVerification> CheckRelease(const Dataset& release, size_t k,
                                         double t) {
  ReleaseVerification verification;
  // One grouping pass feeds both checks — grouping dominates verify cost,
  // and the k and t evaluators need the same equivalence classes.
  TCM_ASSIGN_OR_RETURN(auto classes, EquivalenceClasses(release));
  verification.k_anonymous = IsKAnonymous(classes, k);
  TCM_ASSIGN_OR_RETURN(verification.t_close, IsTClose(release, t, classes));
  return verification;
}

Status PrivacyViolationError(const ReleaseVerification& verification,
                             const std::string& context) {
  return Status::PrivacyViolation(
      context + "release failed re-verification: " +
      (verification.k_anonymous ? "" : "k-anonymity ") +
      (verification.t_close ? "" : "t-closeness"));
}

Result<Schema> SchemaWithRoles(
    const Schema& schema, const std::vector<std::string>& quasi_identifiers,
    const std::string& confidential) {
  auto describe_columns = [&schema]() {
    std::vector<std::string> names;
    names.reserve(schema.size());
    for (const Attribute& attribute : schema.attributes()) {
      names.push_back(attribute.name);
    }
    return JoinStrings(names, ", ");
  };
  Schema updated = schema;
  for (const std::string& name : quasi_identifiers) {
    auto with_role = updated.WithRole(name, AttributeRole::kQuasiIdentifier);
    if (!with_role.ok()) {
      return Status::InvalidArgument("quasi-identifier column '" + name +
                                     "' not found in input; available "
                                     "columns: " +
                                     describe_columns());
    }
    updated = std::move(with_role).value();
  }
  if (!confidential.empty()) {
    auto with_role = updated.WithRole(confidential,
                                      AttributeRole::kConfidential);
    if (!with_role.ok()) {
      return Status::InvalidArgument("confidential column '" +
                                     confidential +
                                     "' not found in input; available "
                                     "columns: " +
                                     describe_columns());
    }
    updated = std::move(with_role).value();
  }
  return updated;
}

Status AssignRoles(Dataset* data,
                   const std::vector<std::string>& quasi_identifiers,
                   const std::string& confidential) {
  TCM_ASSIGN_OR_RETURN(
      Schema updated,
      SchemaWithRoles(data->schema(), quasi_identifiers, confidential));
  return data->ReplaceSchema(std::move(updated));
}

Result<PipelineReport> PipelineRunner::Run(const PipelineSpec& spec) {
  if (spec.input_path.empty()) {
    return Status::InvalidArgument(
        "spec.input_path is empty; use Run(data, spec) for in-memory data");
  }
  WallTimer total;
  WallTimer timer;
  Dataset data;
  {
    TraceSpan span("load");
    TCM_ASSIGN_OR_RETURN(data, ReadNumericCsv(spec.input_path));
    TCM_RETURN_IF_ERROR(
        AssignRoles(&data, spec.quasi_identifiers, spec.confidential));
  }
  double load_seconds = timer.ElapsedSeconds();
  // Roles are assigned; clear the name lists so the in-memory stage does
  // not copy the dataset just to re-assign them.
  PipelineSpec staged_spec = spec;
  staged_spec.quasi_identifiers.clear();
  staged_spec.confidential.clear();
  TCM_ASSIGN_OR_RETURN(PipelineReport report, Run(data, staged_spec));
  report.load_seconds = load_seconds;
  report.total_seconds = total.ElapsedSeconds();
  return report;
}

Result<PipelineReport> PipelineRunner::Run(const Dataset& data,
                                           const PipelineSpec& spec) {
  WallTimer total;
  PipelineReport report;
  report.threads = pool_.num_threads();

  // Load stage, reduced to role assignment for in-memory data.
  WallTimer timer;
  Dataset staged;
  const Dataset* input = &data;
  if (!spec.quasi_identifiers.empty() || !spec.confidential.empty()) {
    TraceSpan span("load");
    staged = data;
    TCM_RETURN_IF_ERROR(
        AssignRoles(&staged, spec.quasi_identifiers, spec.confidential));
    input = &staged;
  }
  report.load_seconds = timer.ElapsedSeconds();

  // Shard + anonymize stages.
  timer.Restart();
  ShardedAnonymizeOptions options;
  options.algorithm = spec.algorithm;
  options.params.k = spec.k;
  options.params.t = spec.t;
  options.params.seed = spec.seed;
  options.shard_size = spec.shard_size;
  options.merge_strategy = spec.merge_strategy;
  ShardedAnonymizeStats stats;
  TCM_ASSIGN_OR_RETURN(report.result,
                       ShardedAnonymize(*input, options, &pool_, &stats));
  report.num_shards = stats.num_shards;
  report.final_merges = stats.final_merges;
  report.anonymize_seconds = timer.ElapsedSeconds();
  report.shard_seconds = stats.shard_seconds;
  report.shard_anonymize_seconds = stats.anonymize_seconds;
  report.merge_seconds = stats.merge_seconds;
  report.metrics_seconds = stats.measure_seconds;
  report.merge_subtrees = stats.merge_subtrees;
  report.subtree_merges = stats.subtree_merges;
  report.tail_merges = stats.tail_merges;
  report.candidate_checks = stats.candidate_checks;
  report.pruned_checks = stats.pruned_checks;
  report.exact_checks = stats.exact_checks;

  // Verify stage: independent re-check of both guarantees, the way an
  // auditor (not the algorithm) would.
  if (spec.verify) {
    TraceSpan span("verify");
    timer.Restart();
    TCM_ASSIGN_OR_RETURN(
        ReleaseVerification verification,
        CheckRelease(report.result.anonymized, spec.k, spec.t));
    report.verify_seconds = timer.ElapsedSeconds();
    report.k_verified = verification.k_anonymous;
    report.t_verified = verification.t_close;
    if (!verification.ok()) return PrivacyViolationError(verification);
  }

  // Write stage.
  if (!spec.output_path.empty()) {
    TraceSpan span("write");
    timer.Restart();
    TCM_RETURN_IF_ERROR(WriteCsv(report.result.anonymized,
                                 spec.output_path));
    report.write_seconds = timer.ElapsedSeconds();
  }
  report.total_seconds = total.ElapsedSeconds();
  return report;
}

}  // namespace tcm
