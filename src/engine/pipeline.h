#ifndef TCM_ENGINE_PIPELINE_H_
#define TCM_ENGINE_PIPELINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"
#include "engine/sharded.h"
#include "engine/thread_pool.h"

namespace tcm {

// Declarative description of one anonymization run, executed stage by
// stage by PipelineRunner:
//   load -> shard -> anonymize -> verify -> metrics -> write
// Stages degrade gracefully: an empty input_path skips the load stage
// (the caller passes a Dataset), shard_size 0 skips sharding, verify can
// be disabled, and an empty output_path skips the write stage.
struct PipelineSpec {
  // Load stage: CSV with a header row; every column numeric. The named
  // columns get their roles assigned (and are validated against the
  // header with a clear error). When the spec is run against an
  // in-memory Dataset, empty name lists mean "roles are already set".
  std::string input_path;
  std::vector<std::string> quasi_identifiers;
  std::string confidential;

  // Anonymize stage.
  std::string algorithm = "tclose_first";  // registry name
  size_t k = 5;
  double t = 0.1;
  uint64_t seed = 1;

  // Shard stage: target rows per shard; 0 disables sharding.
  size_t shard_size = 4096;

  // Engine for the global t-closeness repair pass (see
  // ShardedAnonymizeOptions::merge_strategy).
  MergeStrategy merge_strategy = MergeStrategy::kSequential;

  // Verify stage: re-check k-anonymity and t-closeness of the release
  // with the independent privacy evaluators; a failure is an error.
  bool verify = true;

  // Write stage: release CSV path; empty skips the write.
  std::string output_path;
};

// Everything a caller needs to audit the run: the release + measurements,
// the execution shape, and per-stage wall-clock times. Both Run overloads
// populate every timing field: on the in-memory overload load_seconds
// covers role assignment (its whole load stage), and total_seconds is the
// wall-clock of the entire Run call, stage gaps included.
struct PipelineReport {
  AnonymizationResult result;
  size_t num_shards = 1;
  size_t threads = 1;
  size_t final_merges = 0;
  bool k_verified = false;  // stay false when spec.verify is off
  bool t_verified = false;
  double load_seconds = 0.0;
  double anonymize_seconds = 0.0;
  double verify_seconds = 0.0;
  double write_seconds = 0.0;
  double total_seconds = 0.0;
  // Finer breakdown of the anonymize stage (from ShardedAnonymizeStats);
  // single-shard runs report everything under shard_anonymize_seconds.
  double shard_seconds = 0.0;           // plan + shard materialization
  double shard_anonymize_seconds = 0.0; // per-shard fan-out wall clock
  double merge_seconds = 0.0;           // global MergeUntilTClose pass
  double metrics_seconds = 0.0;         // aggregation + utility metrics
  // Final-merge engine detail (see MergeStats).
  size_t merge_subtrees = 0;
  size_t subtree_merges = 0;
  size_t tail_merges = 0;
  size_t candidate_checks = 0;
  size_t pruned_checks = 0;
  size_t exact_checks = 0;
};

// Executes PipelineSpecs on an owned thread pool. The release is
// byte-identical for any thread count (see sharded.h for why); threads
// only change how fast the shard fan-out runs.
class PipelineRunner {
 public:
  // 0 threads means one per hardware thread.
  explicit PipelineRunner(size_t threads = 1) : pool_(threads) {}

  size_t threads() const { return pool_.num_threads(); }
  ThreadPool* pool() { return &pool_; }

  // Full pipeline: loads spec.input_path, assigns/validates the roles
  // named in the spec, then runs the remaining stages.
  Result<PipelineReport> Run(const PipelineSpec& spec);

  // Same, starting from an in-memory dataset (the load stage is limited
  // to role assignment; empty role lists keep the dataset's own roles).
  Result<PipelineReport> Run(const Dataset& data, const PipelineSpec& spec);

 private:
  ThreadPool pool_;
};

// Verdicts of the independent release re-check (the auditor-side view:
// only the released data is consulted, never the algorithm's own
// bookkeeping). Shared by the in-memory and streaming verify stages and
// the public VerifyRelease facade, so the three paths cannot drift.
struct ReleaseVerification {
  bool k_anonymous = false;
  bool t_close = false;

  bool ok() const { return k_anonymous && t_close; }
};

// Re-checks k-anonymity and t-closeness of `release` with the
// independent privacy evaluators.
Result<ReleaseVerification> CheckRelease(const Dataset& release, size_t k,
                                         double t);

// Converts failed verdicts into the structured kPrivacyViolation error,
// naming the violated guarantee(s). `context` prefixes the message
// (e.g. "window 3: ").
Status PrivacyViolationError(const ReleaseVerification& verification,
                             const std::string& context = "");

// Returns a copy of `schema` with kQuasiIdentifier / kConfidential roles
// assigned to the named columns, validating every name: unknown names
// fail with a message listing the available columns. Exposed for the
// CLI tool's streaming path (roles on a reader's schema, no dataset).
Result<Schema> SchemaWithRoles(
    const Schema& schema, const std::vector<std::string>& quasi_identifiers,
    const std::string& confidential);

// Same, applied in place to a dataset's schema.
Status AssignRoles(Dataset* data,
                   const std::vector<std::string>& quasi_identifiers,
                   const std::string& confidential);

}  // namespace tcm

#endif  // TCM_ENGINE_PIPELINE_H_
