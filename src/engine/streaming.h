#ifndef TCM_ENGINE_STREAMING_H_
#define TCM_ENGINE_STREAMING_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "data/dataset.h"
#include "data/record_source.h"
#include "engine/thread_pool.h"
#include "tclose/merge.h"

namespace tcm {

// Out-of-core execution of the anonymization pipeline: consume a
// RecordSource window by window under a max_resident_rows budget, run
// every window through the existing shard/thread-pool machinery
// (ShardedAnonymize), then the same verify -> metrics -> write tail the
// in-memory PipelineRunner runs. Datasets that never fit in memory
// stream through in bounded space; each released window independently
// satisfies k-anonymity and t-closeness (so their concatenation is
// k-anonymous, and t-close per window against the window distribution).
//
// Memory model. The runner holds at most one window plus a k-row
// read-ahead at a time:
//   - a window is filled to max_resident_rows - k input rows;
//   - k more rows are read ahead to decide whether the stream continues;
//     if the stream ends inside the read-ahead, its rows (fewer than k,
//     too few to anonymize alone) join the current window.
// Resident input rows therefore never exceed max_resident_rows. (The
// anonymized copy of the current window roughly doubles the footprint
// while a window is in flight; the bound governs input rows.)
//
// Determinism. Window w derives its seed from spec.seed and w (window 0
// uses spec.seed itself), and ShardedAnonymize is byte-identical for any
// thread count — so streamed releases are too. When the whole stream
// fits in one window (max_resident_rows >= rows + k), the release bytes
// equal the in-memory PipelineRunner's for the same spec, which the
// tests pin.
struct StreamingSpec {
  // Anonymize stage (same meaning as PipelineSpec).
  std::string algorithm = "tclose_first";
  size_t k = 5;
  double t = 0.1;
  uint64_t seed = 1;

  // Rows per shard within a window; 0 disables sharding.
  size_t shard_size = 4096;

  // Resident input-row budget; must be at least k + max(k, 2)
  // (doubled when overlap_io halves the window).
  size_t max_resident_rows = 100000;

  // Engine for each window's global repair pass (see
  // ShardedAnonymizeOptions::merge_strategy).
  MergeStrategy merge_strategy = MergeStrategy::kSequential;

  // Overlap window N+1's read/parse with window N's
  // anonymize/verify/write: while the current window runs on this
  // thread, one prefetch task fills the next window on the pool. The
  // window target is halved so current window + prefetch + read-ahead
  // still fit the max_resident_rows budget — so releases differ from the
  // non-overlapped run of the same spec (different window boundaries),
  // but stay deterministic for any thread count.
  bool overlap_io = false;

  // Re-check k-anonymity and t-closeness of every released window with
  // the independent privacy evaluators; a failure is an error.
  bool verify = true;

  // Release CSV path (header once, then every window's rows); empty
  // skips the write stage.
  std::string output_path;
};

// Per-window measurements, in window order.
struct StreamingWindowSummary {
  size_t rows = 0;
  size_t clusters = 0;
  size_t num_shards = 1;
  // The shard plan the window actually ran with (report-only — recorded
  // so operators can see the fan-out per window; no adaptivity yet).
  size_t shard_size = 0;
  size_t threads = 1;
  size_t final_merges = 0;
  size_t min_cluster_size = 0;
  size_t max_cluster_size = 0;
  double max_cluster_emd = 0.0;
  double normalized_sse = 0.0;
  double anonymize_seconds = 0.0;
};

struct StreamingReport {
  size_t total_rows = 0;
  size_t num_windows = 0;
  // Largest number of input rows resident at once (window + read-ahead).
  size_t peak_resident_rows = 0;
  size_t threads = 1;
  size_t num_shards = 0;     // total across windows
  size_t final_merges = 0;   // total across windows
  bool k_verified = false;   // all windows; stays false when verify is off
  bool t_verified = false;
  size_t min_cluster_size = 0;
  size_t max_cluster_size = 0;
  double max_cluster_emd = 0.0;  // max over windows
  double normalized_sse = 0.0;   // row-weighted mean over windows
  double read_seconds = 0.0;
  double anonymize_seconds = 0.0;
  double verify_seconds = 0.0;
  double write_seconds = 0.0;
  // Wall-clock of the whole Run call (stage gaps included).
  double total_seconds = 0.0;
  // Finer anonymize-stage breakdown, summed across windows (from each
  // window's ShardedAnonymizeStats).
  double shard_seconds = 0.0;           // plan + shard materialization
  double shard_anonymize_seconds = 0.0; // per-shard fan-out wall clock
  double merge_seconds = 0.0;           // global MergeUntilTClose passes
  double metrics_seconds = 0.0;         // aggregation + utility metrics
  // Merge-engine detail summed across windows (see MergeStats).
  size_t merge_subtrees = 0;
  size_t subtree_merges = 0;
  size_t tail_merges = 0;
  size_t candidate_checks = 0;
  size_t pruned_checks = 0;
  size_t exact_checks = 0;
  // Window reads that ran overlapped with the previous window's
  // processing (overlap_io only).
  size_t overlapped_reads = 0;
  std::vector<StreamingWindowSummary> windows;
};

// Executes streaming specs on an owned thread pool (0 = one thread per
// hardware thread).
class StreamingPipelineRunner {
 public:
  // Called with every released window (after verification) in stream
  // order: a custom sink for tests or non-CSV destinations.
  using WindowSink =
      std::function<Status(const Dataset& release,
                           const StreamingWindowSummary& summary)>;

  explicit StreamingPipelineRunner(size_t threads = 1) : pool_(threads) {}

  size_t threads() const { return pool_.num_threads(); }
  ThreadPool* pool() { return &pool_; }

  // Drains `source` and anonymizes it window by window. The source's
  // schema must already carry quasi-identifier/confidential roles.
  Result<StreamingReport> Run(RecordSource* source, const StreamingSpec& spec,
                              const WindowSink& sink = nullptr);

 private:
  ThreadPool pool_;
};

}  // namespace tcm

#endif  // TCM_ENGINE_STREAMING_H_
