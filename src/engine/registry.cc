#include "engine/registry.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "baseline/mondrian.h"
#include "baseline/sabre_like.h"
#include "common/strings.h"
#include "common/timer.h"
#include "distance/emd.h"
#include "microagg/aggregate.h"
#include "microagg/chunked.h"
#include "microagg/microagg.h"
#include "tclose/kanon_first.h"
#include "tclose/merge.h"
#include "tclose/tclose_first.h"
#include "utility/sse.h"

namespace tcm {

Status AlgorithmRegistry::Register(const std::string& name,
                                   const std::string& description,
                                   PartitionFn fn) {
  if (name.empty()) {
    return Status::InvalidArgument("algorithm name must not be empty");
  }
  if (!fn) {
    return Status::InvalidArgument("algorithm '" + name + "' has no factory");
  }
  MutexLock lock(mutex_);
  auto [it, inserted] =
      entries_.emplace(name, Entry{description, std::move(fn)});
  (void)it;
  if (!inserted) {
    return Status::FailedPrecondition("algorithm '" + name +
                                      "' is already registered");
  }
  return Status::Ok();
}

const AlgorithmRegistry::Entry* AlgorithmRegistry::FindEntryLocked(
    const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

Result<PartitionFn> AlgorithmRegistry::Find(const std::string& name) const {
  MutexLock lock(mutex_);
  const Entry* entry = FindEntryLocked(name);
  if (entry == nullptr) {
    std::vector<std::string> names;
    names.reserve(entries_.size());
    for (const auto& [known, unused] : entries_) names.push_back(known);
    return Status::NotFound("unknown algorithm '" + name +
                            "'; known algorithms: " +
                            JoinStrings(names, ", "));
  }
  return entry->fn;
}

bool AlgorithmRegistry::Contains(const std::string& name) const {
  MutexLock lock(mutex_);
  return FindEntryLocked(name) != nullptr;
}

std::vector<std::string> AlgorithmRegistry::Names() const {
  MutexLock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;  // std::map iterates in sorted order
}

std::string AlgorithmRegistry::Description(const std::string& name) const {
  MutexLock lock(mutex_);
  const Entry* entry = FindEntryLocked(name);
  return entry == nullptr ? std::string() : entry->description;
}

AlgorithmRegistry& AlgorithmRegistry::BuiltIns() {
  static AlgorithmRegistry* registry = []() {
    auto* r = new AlgorithmRegistry();
    RegisterBuiltinAlgorithms(r);
    return r;
  }();
  return *registry;
}

namespace {

// Shared preamble of every built-in: QI geometry plus the rank structure
// of the steering confidential attribute.
struct AlgorithmInputs {
  QiSpace space;
  EmdCalculator emd;
  AlgorithmInputs(const Dataset& data, const AlgorithmParams& params)
      : space(data, params.normalization), emd(data, 0) {}
};

PartitionFn MergeVariant(MicroaggMethod method) {
  return [method](const Dataset& data,
                  const AlgorithmParams& params) -> Result<Partition> {
    AlgorithmInputs in(data, params);
    MicroaggOptions inner;
    inner.method = method;
    return MergeTCloseness(in.space, in.emd, params.k, params.t, inner);
  };
}

}  // namespace

void RegisterBuiltinAlgorithms(AlgorithmRegistry* registry) {
  struct Builtin {
    const char* name;
    const char* description;
    PartitionFn fn;
  };
  const Builtin builtins[] = {
      {"merge", "Algorithm 1: MDAV microaggregation, then cluster merging",
       MergeVariant(MicroaggMethod::kMdav)},
      {"merge_vmdav",
       "Algorithm 1 with variable-size V-MDAV initial clusters",
       MergeVariant(MicroaggMethod::kVMdav)},
      {"merge_projection",
       "Algorithm 1 with PCA-projection initial clusters",
       MergeVariant(MicroaggMethod::kProjection)},
      {"merge_chunked",
       "Algorithm 1 with chunked (scalable) initial microaggregation",
       [](const Dataset& data,
          const AlgorithmParams& params) -> Result<Partition> {
         AlgorithmInputs in(data, params);
         TCM_ASSIGN_OR_RETURN(Partition initial,
                              ChunkedMicroaggregation(in.space, params.k));
         return MergeUntilTClose(in.space, in.emd, params.t,
                                 std::move(initial));
       }},
      {"kanon_first",
       "Algorithm 2: k-anonymity first with swap refinement (+ merge "
       "fallback)",
       [](const Dataset& data,
          const AlgorithmParams& params) -> Result<Partition> {
         AlgorithmInputs in(data, params);
         return KAnonFirstTCloseness(in.space, in.emd, params.k, params.t);
       }},
      {"tclose_first",
       "Algorithm 3: t-closeness by construction via analytic subsets",
       [](const Dataset& data,
          const AlgorithmParams& params) -> Result<Partition> {
         AlgorithmInputs in(data, params);
         return TCloseFirstTCloseness(in.space, in.emd, params.k, params.t);
       }},
      {"mondrian",
       "Mondrian baseline with the t-closeness split constraint",
       [](const Dataset& data,
          const AlgorithmParams& params) -> Result<Partition> {
         AlgorithmInputs in(data, params);
         return MondrianTClosePartition(in.space, in.emd, params.k, params.t);
       }},
      {"sabre",
       "SABRE-like baseline: greedy bucketization + redistribution",
       [](const Dataset& data,
          const AlgorithmParams& params) -> Result<Partition> {
         AlgorithmInputs in(data, params);
         return SabreLikePartition(in.space, in.emd, params.k, params.t);
       }},
  };
  for (const Builtin& builtin : builtins) {
    // Ignore duplicates so re-registering into a shared registry is benign.
    (void)registry->Register(builtin.name, builtin.description, builtin.fn);
  }
  // CLI back-compat aliases for the historic --algorithm spellings.
  (void)registry->Register("kanon", "alias of kanon_first",
                           *registry->Find("kanon_first"));
  (void)registry->Register("tclose", "alias of tclose_first",
                           *registry->Find("tclose_first"));
}

Status ValidateAlgorithmInputs(const Dataset& data,
                               const AlgorithmParams& params) {
  if (data.NumRecords() < 2) {
    return Status::InvalidArgument("need at least 2 records");
  }
  if (data.schema().QuasiIdentifierIndices().empty()) {
    return Status::InvalidArgument("dataset has no quasi-identifiers");
  }
  if (data.schema().ConfidentialIndices().empty()) {
    return Status::InvalidArgument("dataset has no confidential attribute");
  }
  if (params.k == 0 || params.k > data.NumRecords()) {
    return Status::InvalidArgument("k must be in [1, n]");
  }
  if (params.t < 0.0) {
    return Status::InvalidArgument("t must be non-negative");
  }
  return Status::Ok();
}

Result<AnonymizationResult> MeasurePartition(const Dataset& data,
                                             Partition partition,
                                             double elapsed_seconds,
                                             const EmdCalculator* emd) {
  TCM_ASSIGN_OR_RETURN(Dataset anonymized,
                       AggregatePartition(data, partition));
  std::optional<EmdCalculator> local;
  if (emd == nullptr) emd = &local.emplace(data, 0);
  AnonymizationResult result{std::move(anonymized), Partition{}};
  result.elapsed_seconds = elapsed_seconds;
  result.min_cluster_size = partition.MinClusterSize();
  result.max_cluster_size = partition.MaxClusterSize();
  result.average_cluster_size = partition.AverageClusterSize();
  for (const Cluster& cluster : partition.clusters) {
    result.max_cluster_emd =
        std::max(result.max_cluster_emd, emd->ClusterEmd(cluster));
  }
  TCM_ASSIGN_OR_RETURN(result.normalized_sse,
                       NormalizedSse(data, result.anonymized));
  result.partition = std::move(partition);
  return result;
}

Result<AnonymizationResult> RunAlgorithm(const Dataset& data,
                                         const std::string& name,
                                         const AlgorithmParams& params,
                                         const AlgorithmRegistry* registry) {
  if (registry == nullptr) registry = &AlgorithmRegistry::BuiltIns();
  TCM_ASSIGN_OR_RETURN(PartitionFn fn, registry->Find(name));
  TCM_RETURN_IF_ERROR(ValidateAlgorithmInputs(data, params));
  WallTimer timer;
  TCM_ASSIGN_OR_RETURN(Partition partition, fn(data, params));
  return MeasurePartition(data, std::move(partition),
                          timer.ElapsedSeconds());
}

}  // namespace tcm
