#include "engine/thread_pool.h"

#include <algorithm>

namespace tcm {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  num_threads_ = num_threads;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_available_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
  workers_.clear();  // second Shutdown() finds nothing to join
}

bool ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // A task enqueued after the stop flag would sit in the queue forever
    // (workers may already be gone), wedging WaitAll — reject instead so
    // the caller's future reports broken_promise.
    if (stopping_) return false;
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
  return true;
}

void ThreadPool::WaitAll() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this]() { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(
          lock, [this]() { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace tcm
