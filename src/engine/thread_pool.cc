#include "engine/thread_pool.h"

#include <algorithm>

namespace tcm {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  num_threads_ = num_threads;
  MutexLock lock(mutex_);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  // Claim the worker threads under the lock: with concurrent Shutdown
  // calls, exactly one caller moves each std::thread out and joins it;
  // the others find an empty vector and return after the flag flip.
  std::vector<std::thread> workers;
  {
    MutexLock lock(mutex_);
    stopping_ = true;
    workers.swap(workers_);
  }
  task_available_.NotifyAll();
  for (std::thread& worker : workers) {
    worker.join();
  }
}

bool ThreadPool::Enqueue(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    // A task enqueued after the stop flag would sit in the queue forever
    // (workers may already be gone), wedging WaitAll — reject instead so
    // the caller's future reports broken_promise.
    if (stopping_) return false;
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_available_.NotifyOne();
  return true;
}

void ThreadPool::WaitAll() {
  MutexLock lock(mutex_);
  while (in_flight_ != 0) all_done_.Wait(lock);
}

bool ThreadPool::TryRunOneTask() {
  std::function<void()> task;
  {
    MutexLock lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  {
    MutexLock lock(mutex_);
    --in_flight_;
    if (in_flight_ == 0) all_done_.NotifyAll();
  }
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) task_available_.Wait(lock);
      if (queue_.empty()) return;  // stopping_ and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      MutexLock lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

}  // namespace tcm
