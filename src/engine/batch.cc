#include "engine/batch.h"

#include <future>
#include <utility>

namespace tcm {

namespace {

BatchOutcome RunOneJob(const BatchJob& job) {
  BatchOutcome outcome;
  outcome.label = job.label;
  if (job.data == nullptr) {
    outcome.status = Status::InvalidArgument("job '" + job.label +
                                             "' has no dataset");
    return outcome;
  }
  auto result = RunAlgorithm(*job.data, job.algorithm, job.params);
  if (!result.ok()) {
    outcome.status = result.status();
    return outcome;
  }
  outcome.clusters = result->partition.NumClusters();
  outcome.min_cluster_size = result->min_cluster_size;
  outcome.max_cluster_size = result->max_cluster_size;
  outcome.max_cluster_emd = result->max_cluster_emd;
  outcome.normalized_sse = result->normalized_sse;
  outcome.elapsed_seconds = result->elapsed_seconds;
  return outcome;
}

}  // namespace

std::vector<BatchOutcome> RunBatch(const std::vector<BatchJob>& jobs,
                                   ThreadPool* pool) {
  std::vector<BatchOutcome> outcomes(jobs.size());
  if (pool == nullptr) {
    for (size_t i = 0; i < jobs.size(); ++i) {
      outcomes[i] = RunOneJob(jobs[i]);
    }
    return outcomes;
  }
  std::vector<std::future<BatchOutcome>> futures;
  futures.reserve(jobs.size());
  for (const BatchJob& job : jobs) {
    futures.push_back(pool->Submit([&job]() { return RunOneJob(job); }));
  }
  for (size_t i = 0; i < jobs.size(); ++i) {
    outcomes[i] = futures[i].get();
  }
  return outcomes;
}

}  // namespace tcm
